// Benchmarks regenerating every table and figure of the paper's evaluation
// section, plus component micro-benchmarks for the substrates. Table rows
// are printed on the first iteration of each bench, so
//
//	go test -bench=. -benchmem
//
// both measures the harness and emits the reproduced tables. The quick
// configuration is used so the full sweep stays laptop-sized; run
// cmd/wisdom-bench for the larger committed configuration.
package wisdom_test

import (
	"math/rand"
	"sync"
	"testing"

	"wisdom/internal/corpus"
	"wisdom/internal/dataset"
	"wisdom/internal/experiments"
	"wisdom/internal/metrics"
	"wisdom/internal/neural"
	"wisdom/internal/ngram"
	"wisdom/internal/tokenizer"
	"wisdom/internal/wisdom"
	"wisdom/internal/yaml"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	suiteErr  error
)

func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = experiments.NewSuite(experiments.Quick())
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

// BenchmarkTable1DatasetConstruction regenerates the dataset-size table:
// corpus generation plus exact-match dedup per source.
func BenchmarkTable1DatasetConstruction(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows := s.Table1()
		if i == 0 {
			for _, r := range rows {
				b.Logf("%-14s files=%d afterDedup=%d type=%s usage=%s",
					r.Source, r.FileCount, r.AfterDedup, r.YAMLType, r.Usage)
			}
		}
	}
}

// BenchmarkTable2ModelMatrix renders the model / pre-training dataset
// matrix.
func BenchmarkTable2ModelMatrix(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		out := experiments.FormatTable2(s.Table2())
		if i == 0 {
			b.Logf("\n%s", out)
		}
	}
}

// BenchmarkTable3FewShot pre-trains and evaluates all ten few-shot rows.
func BenchmarkTable3FewShot(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.Format("Table 3 (few-shot)", rows))
		}
	}
}

// BenchmarkTable4FineTuned fine-tunes and evaluates all twelve Table 4 rows
// (context windows, model size, prefix ablation, Wisdom variants, data
// fractions).
func BenchmarkTable4FineTuned(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.Format("Table 4 (fine-tuned)", rows))
		}
	}
}

// BenchmarkTable5Breakdown evaluates the fine-tuned model per generation
// type over the full test split.
func BenchmarkTable5Breakdown(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Table5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatTable5(rows))
		}
	}
}

// BenchmarkFigure2Extraction extracts one sample per generation type, the
// listings of the paper's Fig. 2.
func BenchmarkFigure2Extraction(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		samples := s.Figure2()
		if len(samples) != 4 {
			b.Fatalf("got %d generation types", len(samples))
		}
	}
}

// BenchmarkThroughputSmallVsLarge reproduces the pre-training section's
// model-size choice: generation throughput of a small vs a large
// transformer (the paper reports the 350M model ~1.9x faster than 2.7B).
func BenchmarkThroughputSmallVsLarge(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Throughput()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("small %.1f tok/s, large %.1f tok/s, ratio %.2fx",
				res.SmallTokensPerSec, res.LargeTokensPerSec, res.Ratio)
		}
	}
}

// ---- component micro-benchmarks ----

func BenchmarkYAMLParsePlaybook(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	src := corpus.Playbook(r, corpus.GalaxyStyle)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := yaml.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkYAMLMarshalPlaybook(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	node, err := yaml.Parse(corpus.Playbook(r, corpus.GalaxyStyle))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = yaml.Marshal(node)
	}
}

func BenchmarkTokenizerEncode(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	var texts []string
	for i := 0; i < 50; i++ {
		texts = append(texts, corpus.RoleTaskFile(r, corpus.GalaxyStyle))
	}
	tok, err := tokenizer.Train(texts, 1024)
	if err != nil {
		b.Fatal(err)
	}
	sample := texts[0]
	b.SetBytes(int64(len(sample)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tok.Encode(sample)
	}
}

func BenchmarkNgramGenerate(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	var texts []string
	for i := 0; i < 100; i++ {
		texts = append(texts, corpus.RoleTaskFile(r, corpus.GalaxyStyle))
	}
	tok, err := tokenizer.Train(texts, 1024)
	if err != nil {
		b.Fatal(err)
	}
	lm, err := ngram.New(5, tok.VocabSize())
	if err != nil {
		b.Fatal(err)
	}
	for _, t := range texts {
		lm.Add(tok.Encode(t))
	}
	prefix := tok.Encode("- name: Install nginx\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lm.Generate(prefix, 64, ngram.GenOptions{StopToken: tok.Sep()})
	}
}

func BenchmarkTransformerTrainStep(b *testing.B) {
	m, err := neural.NewModel(neural.Config{Vocab: 512, Ctx: 64, Dim: 64, Heads: 4, Layers: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	seq := make([]int, 64)
	r := rand.New(rand.NewSource(4))
	for i := range seq {
		seq[i] = r.Intn(512)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Train([][]int{seq}, neural.TrainConfig{Epochs: 1, BatchSize: 1, LR: 1e-3})
	}
}

func BenchmarkAnsibleAware(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	pred := corpus.RoleTaskFile(r, corpus.GalaxyStyle)
	ref := corpus.RoleTaskFile(r, corpus.GalaxyStyle)
	aware := metrics.NewAnsibleAware()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = aware.Score(pred, ref)
	}
}

func BenchmarkBLEU(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	pred := corpus.RoleTaskFile(r, corpus.GalaxyStyle)
	ref := corpus.RoleTaskFile(r, corpus.GalaxyStyle)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = metrics.SentenceBLEU(pred, ref)
	}
}

func BenchmarkSampleExtraction(b *testing.B) {
	files := corpus.Galaxy(7, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dataset.ExtractAll(files)
	}
}

// BenchmarkFinetunedPrediction measures single-prompt inference latency of
// the full fine-tuned model, the number the paper's latency requirement is
// about.
func BenchmarkFinetunedPrediction(b *testing.B) {
	s := benchSuite(b)
	pre, err := s.Pretrained(wisdom.WisdomAnsibleMulti, "", 0, 1024)
	if err != nil {
		b.Fatal(err)
	}
	model, err := wisdom.Finetune(pre, s.Pipe.Train, wisdom.FinetuneConfig{Window: 1024})
	if err != nil {
		b.Fatal(err)
	}
	prompts := []string{"Install nginx", "Start redis", "Create deploy user", "Set timezone to UTC"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = model.Predict("", prompts[i%len(prompts)])
	}
}
