// Package wisdom is the root of the Ansible Wisdom reproduction: a pure-Go
// implementation of "Automated Code generation for Information Technology
// Tasks in YAML through Large Language Models" (DAC 2023).
//
// The library lives under internal/: the YAML engine, the Ansible domain
// model, the trainable tokenizer and language models (n-gram with a lexical
// translation channel, and a full decoder-only transformer), the four
// evaluation metrics including the paper's novel Ansible Aware and Schema
// Correct, the dataset pipeline for the four generation types, the model
// zoo, and the serving layer. Executables live under cmd/ and runnable
// examples under examples/. The benchmarks in bench_test.go regenerate
// every table of the paper; see DESIGN.md and EXPERIMENTS.md.
//
// Operationally, internal/observe provides a dependency-free metrics
// registry (atomic counters, gauges and latency histograms with a
// Prometheus text exporter) and span timers; the serving layer in
// internal/serve exposes them at /metrics and /healthz and over the RPC
// protocol, and cmd/wisdom-serve drains in-flight requests on
// SIGINT/SIGTERM. The package map and data-flow diagram are in
// ARCHITECTURE.md; the operator's guide is the Operations section of
// README.md.
package wisdom
