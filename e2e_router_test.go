// End-to-end router scenario: a real wisdom-router process in front of two
// real wisdom-serve replicas, exercised over HTTP, SSE and RPC, then one
// replica is SIGTERMed and — once the heartbeat window has marked it dead —
// every request must still succeed.

package wisdom_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"wisdom/internal/router"
	"wisdom/internal/serve"
)

// fleetSnapshot fetches the router's aggregated /v1/stats.
func fleetSnapshot(t *testing.T, base string) router.FleetStats {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fs router.FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestE2ERouterShardedFleet(t *testing.T) {
	model := e2eModelPath(t)
	rep1 := startServe(t, "-load", model)
	rep2 := startServe(t, "-load", model)
	rt := startProc(t, "wisdom-router",
		"-backends", rep1.rpcAddr+","+rep2.rpcAddr,
		"-heartbeat", "200ms",
		"-heartbeat-timeout", "150ms",
		"-dead-after", "2",
		"-breaker-threshold", "2",
		"-breaker-cooldown", "30s",
	)
	base := "http://" + rt.httpAddr

	// Unary predictions through the router: transparent to the client.
	for i := 0; i < 6; i++ {
		resp, out := postJSON(t, base+"/v1/completions", serve.Request{Prompt: fmt.Sprintf("install nginx %d", i)})
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		if !strings.HasPrefix(out.Suggestion, "- name:") {
			t.Fatalf("request %d: suggestion %q", i, out.Suggestion)
		}
	}

	// Streamed SSE through the router tier.
	body, _ := json.Marshal(serve.Request{Prompt: "configure the firewall"})
	sresp, err := http.Post(base+"/v1/completions/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	sawDone := false
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: done") {
			sawDone = true
		}
		if strings.HasPrefix(sc.Text(), "event: error") {
			t.Fatalf("router SSE stream errored\n%s", rt.stderr.String())
		}
	}
	sresp.Body.Close()
	if sresp.StatusCode != 200 || !sawDone {
		t.Fatalf("router SSE stream: status %d, done=%v", sresp.StatusCode, sawDone)
	}

	// RPC through the router, same binary protocol as a replica.
	client, err := serve.Dial(rt.rpcAddr)
	if err != nil {
		t.Fatal(err)
	}
	rresp, err := client.Predict(serve.Request{Prompt: "restart postgresql"})
	client.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(rresp.Suggestion, "- name:") {
		t.Fatalf("rpc suggestion = %q", rresp.Suggestion)
	}

	// Aggregated fleet view lists both replicas, alive, with real traffic.
	fs := fleetSnapshot(t, base)
	if len(fs.Backends) != 2 {
		t.Fatalf("fleet lists %d backends, want 2", len(fs.Backends))
	}
	total := 0
	for _, row := range fs.Backends {
		if !row.Alive {
			t.Errorf("backend %s reported dead on a healthy fleet", row.Addr)
		}
		if row.Stats != nil {
			total += row.Stats.Requests
		}
	}
	if total == 0 {
		t.Error("aggregated fleet reports zero replica requests after real traffic")
	}

	// Kill one replica and wait out the heartbeat window (dead-after 2 x
	// 200ms sweeps, plus margin) until the router reports it dead.
	if err := rep1.terminate(t); err != nil {
		t.Fatalf("replica SIGTERM drain: %v\n%s", err, rep1.stderr.String())
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		fs = fleetSnapshot(t, base)
		dead := 0
		for _, row := range fs.Backends {
			if !row.Alive {
				dead++
			}
		}
		if dead == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never marked the killed replica dead\n%s", rt.stderr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// After the heartbeat window: zero failed requests, the survivor owns
	// the whole keyspace.
	for i := 0; i < 10; i++ {
		resp, out := postJSON(t, base+"/v1/completions", serve.Request{Prompt: fmt.Sprintf("post-failover task %d", i)})
		if resp.StatusCode != 200 {
			t.Fatalf("post-failover request %d: status %d\n%s", i, resp.StatusCode, rt.stderr.String())
		}
		if !strings.HasPrefix(out.Suggestion, "- name:") {
			t.Fatalf("post-failover request %d: suggestion %q", i, out.Suggestion)
		}
	}

	// The router itself drains cleanly.
	if err := rt.terminate(t); err != nil {
		t.Fatalf("router SIGTERM drain: %v\n%s", err, rt.stderr.String())
	}
	if !strings.Contains(rt.stderr.String(), "shutdown complete") {
		t.Errorf("router never announced shutdown complete\n%s", rt.stderr.String())
	}
}
