# Standard-library-only Go project; these targets are conveniences over the
# go tool, not a build system.

GO ?= go

.PHONY: all build test race vet check fuzz bench bench-decode bench-stream bench-session bench-continuous bench-router fmt clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the gate this repository holds itself to (see scripts/check.sh).
check:
	./scripts/check.sh

# fuzz runs each fuzz target for FUZZTIME (default 30s here; CI uses 10s
# via check.sh).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzParseYAML$$' -fuzztime=$(FUZZTIME) ./internal/yaml
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeFrame$$' -fuzztime=$(FUZZTIME) ./internal/serve
	$(GO) test -run='^$$' -fuzz='^FuzzEncodeFrame$$' -fuzztime=$(FUZZTIME) ./internal/serve
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeStreamFrame$$' -fuzztime=$(FUZZTIME) ./internal/serve
	$(GO) test -run='^$$' -fuzz='^FuzzAdminRequest$$' -fuzztime=$(FUZZTIME) ./internal/serve
	$(GO) test -run='^$$' -fuzz='^FuzzEncode$$' -fuzztime=$(FUZZTIME) ./internal/tokenizer
	$(GO) test -run='^$$' -fuzz='^FuzzRingLookup$$' -fuzztime=$(FUZZTIME) ./internal/router

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-decode runs the decode-engine microbenchmarks that back
# BENCH_PR3.json (step kernels, cached beam, batched generation).
bench-decode:
	$(GO) test ./internal/neural/ -run XXX -benchmem -benchtime 2s \
		-bench 'BenchmarkStep$$|BenchmarkStepBatch8|BenchmarkBeamDecode|BenchmarkGenerateBatch8|BenchmarkGenerateFullForward|BenchmarkGenerateKVCached'

# bench-stream runs the streaming-latency microbenchmarks that back
# BENCH_PR6.json: time-to-first-delta (reported as ttft-ns/op) against the
# total generation latency of the streamed and unary prediction paths.
bench-stream:
	$(GO) test ./internal/wisdom/ -run XXX -benchtime 20x \
		-bench 'BenchmarkPredictStream$$|BenchmarkPredictUnary$$'

# bench-session runs the warm-vs-cold session benchmarks that back
# BENCH_PR7.json: time-to-first-generated-delta (first-body-ns/op) of the
# editor keystroke trace with and without per-session prefix KV reuse.
bench-session:
	$(GO) test ./internal/wisdom/ -run XXX -benchtime 50x \
		-bench 'BenchmarkPredictSessionWarm$$|BenchmarkPredictSessionCold$$'

# bench-continuous runs the continuous-batching benchmarks that back
# BENCH_PR8.json: the parallel tiled step kernels at 1/2/4/8 kernel workers
# (single-row and 8-row batched) and the end-to-end engine throughput over a
# mixed-length request fleet (tok/s plus batch occupancy).
bench-continuous:
	$(GO) test ./internal/neural/ -run XXX -benchmem -benchtime 2s \
		-bench 'BenchmarkStepParallel|BenchmarkStepBatchParallel|BenchmarkEngineMixed'

# bench-router runs the sharded-serving benchmarks that back BENCH_PR9.json:
# router-forwarded throughput over a single replica and a 3-replica fleet,
# and the spillover path (dead owner, breaker open, request served by the
# ring successor).
bench-router:
	$(GO) test ./internal/router/ -run XXX -benchmem -benchtime 2s \
		-bench 'BenchmarkRouterUnary|BenchmarkRouterSpillover'

fmt:
	gofmt -l -w .

clean:
	$(GO) clean ./...
