# Standard-library-only Go project; these targets are conveniences over the
# go tool, not a build system.

GO ?= go

.PHONY: all build test race vet check bench fmt clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the gate this repository holds itself to (see scripts/check.sh).
check:
	./scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem ./...

fmt:
	gofmt -l -w .

clean:
	$(GO) clean ./...
