package wisdom_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// docGatePackages are the packages held to the documentation gate: every
// exported identifier (functions, methods — including methods on unexported
// receivers — types, constants, variables) must carry a doc comment, and
// the package itself must have a package comment. scripts/check.sh runs
// this test explicitly so documentation drift fails CI the same way a
// broken test does. Extend the list as other packages are brought up to
// the same standard.
var docGatePackages = []string{
	"internal/serve",
	"internal/resilience",
	"internal/neural",
	"internal/router",
}

func TestDocGate(t *testing.T) {
	for _, dir := range docGatePackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			hasPkgDoc := false
			for _, file := range pkg.Files {
				if file.Doc != nil {
					hasPkgDoc = true
				}
				checkFileDocs(t, fset, file)
			}
			if !hasPkgDoc {
				t.Errorf("%s: package %s has no package comment", dir, pkg.Name)
			}
		}
	}
}

// checkFileDocs reports every exported top-level declaration in one file
// that lacks a doc comment. For grouped declarations (var/const/type
// blocks) either the group comment or a per-spec comment satisfies the
// gate, matching what godoc renders.
func checkFileDocs(t *testing.T, fset *token.FileSet, file *ast.File) {
	t.Helper()
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				t.Errorf("%s: exported func %s lacks a doc comment",
					fset.Position(d.Pos()), d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						t.Errorf("%s: exported type %s lacks a doc comment",
							fset.Position(s.Pos()), s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							t.Errorf("%s: exported %s lacks a doc comment",
								fset.Position(n.Pos()), n.Name)
						}
					}
				}
			}
		}
	}
}
