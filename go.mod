module wisdom

go 1.22
