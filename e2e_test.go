package wisdom_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"wisdom/internal/serve"
)

// serveProc is a server process (wisdom-serve or wisdom-router) started for
// an e2e test, with the listener addresses parsed from its stderr.
type serveProc struct {
	tool     string
	cmd      *exec.Cmd
	httpAddr string
	rpcAddr  string
	stderr   *lockedBuffer
	waitErr  chan error
}

type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) WriteLine(s string) {
	b.mu.Lock()
	b.buf.WriteString(s)
	b.buf.WriteByte('\n')
	b.mu.Unlock()
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startServe launches wisdom-serve with args on random ports and waits
// until both listeners have announced themselves on stderr. The process is
// killed (if still alive) when the test ends.
func startServe(t *testing.T, extra ...string) *serveProc {
	t.Helper()
	return startProc(t, "wisdom-serve", extra...)
}

// startProc launches one cmd/ server binary (wisdom-serve or wisdom-router;
// both share the flag and stderr-announcement conventions) on random ports
// and waits until both listeners have announced themselves.
func startProc(t *testing.T, tool string, extra ...string) *serveProc {
	t.Helper()
	bin := buildTool(t, tool)
	args := append([]string{"-http", "127.0.0.1:0", "-rpc", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{tool: tool, cmd: cmd, stderr: &lockedBuffer{}, waitErr: make(chan error, 1)}
	t.Cleanup(func() {
		cmd.Process.Kill()
		select {
		case <-p.waitErr:
		case <-time.After(5 * time.Second):
		}
	})

	httpc := make(chan string, 1)
	rpcc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.stderr.WriteLine(line)
			if addr, ok := strings.CutPrefix(line, "rest listening on "); ok {
				httpc <- addr
			}
			if addr, ok := strings.CutPrefix(line, "rpc listening on "); ok {
				rpcc <- addr
			}
		}
		p.waitErr <- cmd.Wait()
	}()

	// Training a quick model takes seconds; loading one is instant. Give
	// the slower path room.
	deadline := time.After(120 * time.Second)
	for p.httpAddr == "" || p.rpcAddr == "" {
		select {
		case a := <-httpc:
			p.httpAddr = a
		case a := <-rpcc:
			p.rpcAddr = a
		case err := <-p.waitErr:
			p.waitErr <- err
			t.Fatalf("%s exited before listening: %v\n%s", tool, err, p.stderr.String())
		case <-deadline:
			t.Fatalf("%s never announced its listeners\n%s", tool, p.stderr.String())
		}
	}
	return p
}

// terminate sends SIGTERM and returns the process's exit error (nil for
// exit status 0) once it finishes draining.
func (p *serveProc) terminate(t *testing.T) error {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-p.waitErr:
		return err
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not exit after SIGTERM\n%s", p.tool, p.stderr.String())
		return nil
	}
}

// e2eModel trains a quick model once per test process and returns the saved
// file, so only the first e2e test pays the training cost.
var (
	e2eModelOnce sync.Once
	e2eModelFile string
)

func e2eModelPath(t *testing.T) string {
	t.Helper()
	e2eModelOnce.Do(func() {
		path := filepath.Join(sharedBinDir(t), "e2e-model.json")
		p := startServe(t, "-quick", "-save", path)
		if err := p.terminate(t); err != nil {
			t.Fatalf("train-and-save server exited with %v\n%s", err, p.stderr.String())
		}
		e2eModelFile = path
	})
	if e2eModelFile == "" {
		t.Skip("model training failed in an earlier test")
	}
	return e2eModelFile
}

func postJSON(t *testing.T, url string, req serve.Request) (*http.Response, serve.Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out serve.Response
	data, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(data, &out)
	return resp, out
}

// TestE2EHappyPath boots the real binary, trains a quick model, and
// exercises both protocols plus the observability endpoints, then drains it
// with SIGTERM.
func TestE2EHappyPath(t *testing.T) {
	p := startServe(t, "-load", e2eModelPath(t))

	// HTTP prediction.
	base := "http://" + p.httpAddr
	resp, out := postJSON(t, base+"/v1/completions", serve.Request{Prompt: "install nginx"})
	if resp.StatusCode != 200 {
		t.Fatalf("http status = %d", resp.StatusCode)
	}
	if !strings.HasPrefix(out.Suggestion, "- name:") {
		t.Errorf("http suggestion = %q", out.Suggestion)
	}

	// RPC prediction over the real socket.
	client, err := serve.Dial(p.rpcAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rresp, err := client.Predict(serve.Request{Prompt: "restart postgresql"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(rresp.Suggestion, "- name:") {
		t.Errorf("rpc suggestion = %q", rresp.Suggestion)
	}

	// Liveness and metrics endpoints.
	hz, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hzBody, _ := io.ReadAll(hz.Body)
	hz.Body.Close()
	if hz.StatusCode != 200 || !strings.Contains(string(hzBody), `"status":"ok"`) {
		t.Errorf("healthz = %d %s", hz.StatusCode, hzBody)
	}
	mt, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mtBody, _ := io.ReadAll(mt.Body)
	mt.Body.Close()
	for _, want := range []string{"wisdom_requests_total", "wisdom_pool_workers", "wisdom_degraded_responses_total"} {
		if !strings.Contains(string(mtBody), want) {
			t.Errorf("metrics missing %s", want)
		}
	}

	// Graceful shutdown: SIGTERM drains and exits 0.
	if err := p.terminate(t); err != nil {
		t.Errorf("SIGTERM exit: %v\n%s", err, p.stderr.String())
	}
	if logs := p.stderr.String(); !strings.Contains(logs, "shutdown complete") {
		t.Errorf("drain log missing:\n%s", logs)
	}
}

// TestE2ESchedFallback boots the binary with -sched over the persisted
// (n-gram) model: the scheduler must report itself unavailable — only
// transformer-backed models batch decode steps — while the ordinary pipeline
// keeps serving, /v1/stats reports the scheduler disabled, and SIGTERM still
// drains cleanly. The scheduler's live decode path is stress-tested against
// a real transformer in TestSchedStressHTTP (sched_stress_test.go); the
// persistence format only carries n-gram models, so the binary cannot -load
// a neural one.
func TestE2ESchedFallback(t *testing.T) {
	p := startServe(t, "-load", e2eModelPath(t), "-sched", "-sched-max-batch", "4")
	if logs := p.stderr.String(); !strings.Contains(logs, "scheduler unavailable") {
		t.Fatalf("scheduler fallback notice missing:\n%s", logs)
	}

	base := "http://" + p.httpAddr
	resp, out := postJSON(t, base+"/v1/completions", serve.Request{Prompt: "install nginx"})
	if resp.StatusCode != 200 || !strings.HasPrefix(out.Suggestion, "- name:") {
		t.Errorf("request under -sched fallback: %d %q", resp.StatusCode, out.Suggestion)
	}

	st, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stBody, _ := io.ReadAll(st.Body)
	st.Body.Close()
	var stats struct {
		SchedEnabled bool `json:"sched_enabled"`
	}
	if err := json.Unmarshal(stBody, &stats); err != nil {
		t.Fatalf("bad /v1/stats payload %s: %v", stBody, err)
	}
	if stats.SchedEnabled {
		t.Error("/v1/stats reports the scheduler enabled on an n-gram model")
	}

	if err := p.terminate(t); err != nil {
		t.Errorf("SIGTERM exit: %v\n%s", err, p.stderr.String())
	}
	if logs := p.stderr.String(); !strings.Contains(logs, "shutdown complete") {
		t.Errorf("drain log missing:\n%s", logs)
	}
}

// TestE2EOverloadShedding pins the shedding behaviour of a deliberately
// tiny deployment: one worker, no queue — concurrent distinct requests must
// produce 503s carrying a Retry-After header, and the server must keep
// serving afterwards.
func TestE2EOverloadShedding(t *testing.T) {
	p := startServe(t, "-load", e2eModelPath(t), "-workers", "1", "-queue", "-1", "-cache", "0")

	base := "http://" + p.httpAddr
	const n = 40
	// Each request drags a large distinct context so the single worker is
	// held for a macroscopic time per prediction (context tokenisation is
	// linear in its size); without it an n-gram prediction finishes in
	// microseconds and 40 "concurrent" HTTP requests never actually collide.
	filler := strings.Repeat("- name: previously generated task\n  ansible.builtin.debug:\n    msg: filler\n", 4000)
	var wg sync.WaitGroup
	codes := make([]int, n)
	retryAfter := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(serve.Request{
				Prompt:  fmt.Sprintf("install package number %d", i),
				Context: fmt.Sprintf("# request %d\n%s", i, filler),
			})
			resp, err := http.Post(base+"/v1/completions", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i := 0; i < n; i++ {
		switch codes[i] {
		case 200:
			ok++
		case 503:
			shed++
			if retryAfter[i] == "" {
				t.Errorf("request %d shed without Retry-After", i)
			}
		}
	}
	if ok == 0 {
		t.Error("no request succeeded under overload")
	}
	if shed == 0 {
		t.Error("one worker with no queue never shed under 40 concurrent requests")
	}
	t.Logf("overload: %d ok, %d shed", ok, shed)

	// The server recovers: a lone request succeeds.
	resp, out := postJSON(t, base+"/v1/completions", serve.Request{Prompt: "install nginx"})
	if resp.StatusCode != 200 || !strings.HasPrefix(out.Suggestion, "- name:") {
		t.Errorf("post-overload request: %d %q", resp.StatusCode, out.Suggestion)
	}
	if err := p.terminate(t); err != nil {
		t.Errorf("SIGTERM exit: %v", err)
	}
}

// TestE2EDegradedServing boots the binary with the degradation chain and an
// aggressive tier timeout, verifying the resilience flags wire through: the
// loaded model alone (no fallback sibling) must still answer requests, and
// the breaker metric must be exported.
func TestE2EDegradedServing(t *testing.T) {
	p := startServe(t, "-load", e2eModelPath(t), "-degrade",
		"-degrade-timeout", "5s", "-breaker-threshold", "3", "-breaker-cooldown", "2s")

	base := "http://" + p.httpAddr
	resp, out := postJSON(t, base+"/v1/completions", serve.Request{Prompt: "install nginx"})
	if resp.StatusCode != 200 {
		t.Fatalf("http status = %d", resp.StatusCode)
	}
	if out.Degraded {
		t.Errorf("healthy primary served degraded: %+v", out)
	}
	if !strings.HasPrefix(out.Suggestion, "- name:") {
		t.Errorf("suggestion = %q", out.Suggestion)
	}

	mt, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mtBody, _ := io.ReadAll(mt.Body)
	mt.Body.Close()
	if !strings.Contains(string(mtBody), "wisdom_breaker_state") {
		t.Error("metrics missing wisdom_breaker_state")
	}
	if err := p.terminate(t); err != nil {
		t.Errorf("SIGTERM exit: %v", err)
	}
}

// TestE2EGenAgainstServer drives the wisdom-gen client path against a live
// server: the -server flag must fetch a suggestion over RPC through the
// retrying client.
func TestE2EGenAgainstServer(t *testing.T) {
	p := startServe(t, "-load", e2eModelPath(t))
	gen := buildTool(t, "wisdom-gen")

	out, err := exec.Command(gen, "-server", p.rpcAddr, "-prompt", "install nginx").CombinedOutput()
	if err != nil {
		t.Fatalf("wisdom-gen -server: %v\n%s", err, out)
	}
	if !strings.HasPrefix(string(out), "- name:") {
		t.Errorf("wisdom-gen output = %q", out)
	}
	if err := p.terminate(t); err != nil {
		t.Errorf("SIGTERM exit: %v", err)
	}
}

// TestE2EStreaming drives the streaming path end to end against the real
// binaries: wisdom-gen -stream over RPC must print byte-identical output to
// the unary call, and the SSE endpoint must deliver the same answer as
// incremental delta events.
func TestE2EStreaming(t *testing.T) {
	p := startServe(t, "-load", e2eModelPath(t))
	gen := buildTool(t, "wisdom-gen")

	// Distinct prompts so the streamed run is not a cache hit of the unary
	// one (a cached answer arrives as a single delta, which would weaken
	// the equivalence check); the same prompt streamed twice then exercises
	// the cache-hit stream.
	unary, err := exec.Command(gen, "-server", p.rpcAddr, "-prompt", "install nginx").Output()
	if err != nil {
		t.Fatalf("unary wisdom-gen: %v", err)
	}
	streamed, err := exec.Command(gen, "-server", p.rpcAddr, "-prompt", "install nginx", "-stream").Output()
	if err != nil {
		t.Fatalf("wisdom-gen -stream: %v", err)
	}
	if !bytes.Equal(unary, streamed) {
		t.Errorf("streamed output differs from unary:\nunary:    %q\nstreamed: %q", unary, streamed)
	}

	// SSE over the HTTP listener: deltas must concatenate to the done
	// event's suggestion (or the done event must say "replaced").
	body, _ := json.Marshal(serve.Request{Prompt: "start redis"})
	resp, err := http.Post("http://"+p.httpAddr+"/v1/completions/stream",
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	var sb strings.Builder
	var final serve.Response
	done := false
	event := ""
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "delta":
				var d struct {
					Text string `json:"text"`
				}
				if err := json.Unmarshal([]byte(data), &d); err != nil {
					t.Fatalf("bad delta payload %q: %v", data, err)
				}
				sb.WriteString(d.Text)
			case "done":
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					t.Fatalf("bad done payload %q: %v", data, err)
				}
				done = true
			case "error":
				t.Fatalf("stream error event: %s", data)
			}
		}
	}
	if !done {
		t.Fatal("stream ended without a done event")
	}
	if !final.Replaced && sb.String() != final.Suggestion {
		t.Errorf("concatenated deltas = %q, final suggestion = %q", sb.String(), final.Suggestion)
	}
	if !strings.HasPrefix(final.Suggestion, "- name: start redis") {
		t.Errorf("suggestion = %q", final.Suggestion)
	}

	if err := p.terminate(t); err != nil {
		t.Errorf("SIGTERM exit: %v", err)
	}
}
