// Command wisdom-data builds the synthetic corpora that substitute the
// paper's crawled datasets, optionally writing them to disk as JSONL, and
// prints the Table 1 dataset statistics together with the fine-tuning
// pipeline summary (dedup, split, generation-type counts).
//
// Usage:
//
//	wisdom-data                 # print stats at the default scale
//	wisdom-data -factor 1000    # Table 1 counts scaled by 1/1000
//	wisdom-data -out ./data     # also write the corpora as JSONL files
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"wisdom/internal/corpus"
	"wisdom/internal/dataset"
)

func main() {
	factor := flag.Int("factor", 400, "divide the paper's Table 1 file counts by this factor")
	seed := flag.Int64("seed", 7, "generator seed")
	out := flag.String("out", "", "directory to write JSONL corpora into (empty skips writing)")
	flag.Parse()

	counts := corpus.ScaledCounts(*factor)
	galaxy := corpus.Galaxy(*seed+900, counts.Galaxy)
	gitlab := corpus.GitLabAnsible(*seed+500, counts.GitLab)
	github := corpus.GitHubGBQAnsible(*seed+600, counts.GitHubAnsible)
	generic := corpus.GitHubGBQGeneric(*seed+400, counts.GitHubGeneric)

	fmt.Printf("Table 1 (scale 1/%d): extracted file count per data source\n", *factor)
	fmt.Printf("%-14s %10s %12s %-8s %-5s\n", "Source", "Files", "AfterDedup", "Type", "Usage")
	stat := func(name string, files []corpus.File, typ, usage string) {
		fmt.Printf("%-14s %10d %12d %-8s %-5s\n", name, len(files), len(dataset.DedupFiles(files)), typ, usage)
	}
	stat("Galaxy", galaxy, "Ansible", "FT")
	stat("GitLab", gitlab, "Ansible", "PT")
	stat("GitHub + GBQ", github, "Ansible", "PT")
	stat("GitHub + GBQ", generic, "Generic", "PT")

	pipe := dataset.BuildPipeline(galaxy, *seed)
	fmt.Printf("\nfine-tuning pipeline (Galaxy): %d files after dedup; %d/%d/%d train/valid/test samples\n",
		len(pipe.Files), len(pipe.Train), len(pipe.Valid), len(pipe.Test))
	fmt.Println("samples per generation type (train):")
	for typ, n := range dataset.CountByType(pipe.Train) {
		fmt.Printf("  %-10s %6d\n", typ, n)
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		write := func(name string, files []corpus.File) {
			path := filepath.Join(*out, name+".jsonl")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w := bufio.NewWriter(f)
			enc := json.NewEncoder(w)
			for _, file := range files {
				if err := enc.Encode(map[string]string{
					"source": file.Source, "path": file.Path,
					"kind": file.Kind.String(), "text": file.Text,
				}); err != nil {
					fatal(err)
				}
			}
			if err := w.Flush(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d files)\n", path, len(files))
		}
		write("galaxy", galaxy)
		write("gitlab-ansible", gitlab)
		write("github-gbq-ansible", github)
		write("github-gbq-generic", generic)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wisdom-data:", err)
	os.Exit(1)
}
