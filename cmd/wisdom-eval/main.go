// Command wisdom-eval scores predictions against references with the four
// paper metrics: Schema Correct, Exact Match, BLEU and Ansible Aware.
//
// Usage:
//
//	wisdom-eval -pred predicted.yml -ref reference.yml
//	wisdom-eval -pred-text "$(cat p.yml)" -ref-text "$(cat r.yml)"
//	wisdom-eval -batch pairs.jsonl         # {"pred": ..., "ref": ...} lines
//	wisdom-eval -pred p.yml -ref r.yml -explain
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"wisdom/internal/metrics"
)

func main() {
	predFile := flag.String("pred", "", "file holding the predicted snippet")
	refFile := flag.String("ref", "", "file holding the reference snippet")
	predText := flag.String("pred-text", "", "predicted snippet as a literal argument")
	refText := flag.String("ref-text", "", "reference snippet as a literal argument")
	batch := flag.String("batch", "", `JSONL file of {"pred": ..., "ref": ...} pairs; prints the corpus-level report`)
	explain := flag.Bool("explain", false, "also print the Ansible Aware edit list")
	flag.Parse()

	if *batch != "" {
		runBatch(*batch)
		return
	}

	pred, err := textOrFile(*predText, *predFile)
	if err != nil {
		fatal(err)
	}
	ref, err := textOrFile(*refText, *refFile)
	if err != nil {
		fatal(err)
	}
	if pred == "" || ref == "" {
		fmt.Fprintln(os.Stderr, "wisdom-eval: both a prediction and a reference are required")
		flag.Usage()
		os.Exit(2)
	}

	e := metrics.NewEvaluator()
	schemaOK, exact, bleu, aware := e.Score(pred, ref)
	fmt.Printf("Schema Correct : %v\n", schemaOK)
	fmt.Printf("Exact Match    : %v\n", exact)
	fmt.Printf("BLEU           : %.2f\n", bleu)
	fmt.Printf("Ansible Aware  : %.2f\n", 100*aware)
	if *explain {
		fmt.Println()
		fmt.Print(metrics.NewAnsibleAware().Explain(pred, ref))
	}
}

// runBatch scores a JSONL pair file and prints the aggregate report, the
// same corpus-level numbers the paper's tables report.
func runBatch(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var preds, refs []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var pair struct {
			Pred string `json:"pred"`
			Ref  string `json:"ref"`
		}
		if err := json.Unmarshal(line, &pair); err != nil {
			fatal(fmt.Errorf("line %d: %w", lineNo, err))
		}
		preds = append(preds, pair.Pred)
		refs = append(refs, pair.Ref)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(preds) == 0 {
		fatal(fmt.Errorf("no pairs in %s", path))
	}
	r := metrics.NewEvaluator().Evaluate(preds, refs)
	fmt.Printf("pairs          : %d\n", r.Count)
	fmt.Printf("Schema Correct : %.2f\n", r.SchemaCorrect)
	fmt.Printf("Exact Match    : %.2f\n", r.ExactMatch)
	fmt.Printf("BLEU           : %.2f\n", r.BLEU)
	fmt.Printf("Ansible Aware  : %.2f\n", r.AnsibleAware)
}

func textOrFile(text, file string) (string, error) {
	if text != "" {
		return text, nil
	}
	if file == "" {
		return "", nil
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wisdom-eval:", err)
	os.Exit(1)
}
