// Command wisdom-train runs the pre-training → fine-tuning pipeline for one
// model variant and reports its evaluation on the held-out test split —
// the command-line equivalent of producing one row of Table 3 (with
// -few-shot) or Table 4.
//
// Usage:
//
//	wisdom-train -variant wisdom-ansible-multi
//	wisdom-train -variant codegen-multi -few-shot
//	wisdom-train -variant codegen-multi -window 512 -fraction 0.5
//	wisdom-train -quick -trace -metrics      # stage timings + metrics dump
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"wisdom/internal/dataset"
	"wisdom/internal/experiments"
	"wisdom/internal/observe"
	"wisdom/internal/wisdom"
)

func main() {
	variant := flag.String("variant", string(wisdom.WisdomAnsibleMulti), "model variant to train")
	fewShot := flag.Bool("few-shot", false, "stop after pre-training (Table 3 setting)")
	window := flag.Int("window", 1024, "context window in tokens")
	fraction := flag.Float64("fraction", 0, "fine-tune on only this fraction of training data (0 = all)")
	prefix := flag.Bool("prefix-prompt", false, "use the prefix prompt ablation instead of name completion")
	quick := flag.Bool("quick", false, "use the reduced configuration")
	limit := flag.Int("limit", 0, "cap evaluated test samples (0 = config default)")
	savePath := flag.String("save", "", "save the trained model to this file")
	selectOnValid := flag.Bool("select", false, "select the fine-tuning blend weight on validation BLEU (the paper's checkpoint selection)")
	metricsOn := flag.Bool("metrics", false, "dump collected metrics in Prometheus text format to stderr at exit")
	traceOn := flag.Bool("trace", false, "log stage span timings to stderr and print a stage summary at exit")
	flag.Parse()

	var reg *observe.Registry
	if *metricsOn {
		reg = observe.NewRegistry()
	}
	var tracer *observe.Tracer
	if *metricsOn || *traceOn {
		var logw io.Writer
		if *traceOn {
			logw = os.Stderr
		}
		tracer = observe.NewTracer(reg, logw)
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *limit > 0 {
		cfg.EvalLimit = *limit
	}
	fmt.Println("building corpora and tokenizer...")
	suite, err := experiments.NewSuiteTraced(cfg, tracer)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pre-training %s (window %d)...\n", *variant, *window)
	sp := tracer.Start("train.pretrain")
	model, err := suite.Pretrained(wisdom.VariantID(*variant), "", 0, *window)
	sp.End()
	if err != nil {
		fatal(err)
	}
	if !*fewShot {
		style := dataset.NameCompletion
		if *prefix {
			style = dataset.PrefixPrompt
		}
		ftCfg := wisdom.FinetuneConfig{Window: *window, Style: style, Fraction: *fraction}
		fmt.Printf("fine-tuning on %d Galaxy samples...\n", len(suite.Pipe.Train))
		sp := tracer.Start("train.finetune")
		if *selectOnValid {
			var validBLEU float64
			model, validBLEU, err = wisdom.FinetuneWithValidation(model, suite.Pipe.Train, suite.Pipe.Valid, ftCfg, cfg.EvalLimit)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("selected blend weight by validation BLEU %.2f\n", validBLEU)
		} else {
			model, err = wisdom.Finetune(model, suite.Pipe.Train, ftCfg)
			if err != nil {
				fatal(err)
			}
		}
		sp.End()
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal(err)
		}
		if err := model.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("saved model to %s\n", *savePath)
	}
	fmt.Printf("evaluating %s on %d test samples...\n", model.Name, min(cfg.EvalLimit, len(suite.Pipe.Test)))
	sp = tracer.Start("train.evaluate")
	res := wisdom.Evaluate(model, suite.Pipe.Test, cfg.EvalLimit)
	sp.End()
	fmt.Printf("\n%-16s %8s\n", "Metric", "Score")
	fmt.Printf("%-16s %8.2f\n", "Schema Correct", res.Overall.SchemaCorrect)
	fmt.Printf("%-16s %8.2f\n", "Exact Match", res.Overall.ExactMatch)
	fmt.Printf("%-16s %8.2f\n", "BLEU", res.Overall.BLEU)
	fmt.Printf("%-16s %8.2f\n", "Ansible Aware", res.Overall.AnsibleAware)

	if *traceOn {
		if s := tracer.Summary(); s != "" {
			fmt.Fprintf(os.Stderr, "\nstage timings:\n%s", s)
		}
	}
	if *metricsOn {
		fmt.Fprintln(os.Stderr, "\ncollected metrics:")
		if err := reg.WritePrometheus(os.Stderr); err != nil {
			fatal(err)
		}
	}
}

func min(a, b int) int {
	if a == 0 || (b != 0 && b < a) {
		return b
	}
	return a
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wisdom-train:", err)
	os.Exit(1)
}
