// Command wisdom-lint validates Ansible YAML files against the strict
// lint-style schema behind the Schema Correct metric: playbook/task
// structure, known keywords, module parameters with type and choice checks,
// mutually-exclusive and required-one-of groups, and rejection of historical
// forms (legacy "k=v" arguments, bare unknown module names).
//
// Usage:
//
//	wisdom-lint playbook.yml roles/web/tasks/main.yml
//	wisdom-lint -fix-fqcn tasks.yml        # also print the normalised form
//
// Exit status is 0 when every file passes, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"wisdom/internal/ansible"
	"wisdom/internal/yaml"
)

func main() {
	fixFQCN := flag.Bool("fix-fqcn", false, "print each file normalised (FQCN module names, k=v converted to dicts)")
	quiet := flag.Bool("q", false, "suppress per-file PASS lines")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "wisdom-lint: no files given")
		flag.Usage()
		os.Exit(2)
	}
	validator := ansible.NewValidator()
	reg := ansible.DefaultRegistry()
	failed := false
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wisdom-lint: %v\n", err)
			failed = true
			continue
		}
		docs, err := yaml.ParseAll(string(data))
		if err != nil {
			fmt.Printf("%s: FAIL (yaml: %v)\n", path, err)
			failed = true
			continue
		}
		fileOK := true
		for di, doc := range docs {
			errs := validate(validator, doc)
			for _, e := range errs {
				fmt.Printf("%s: doc %d: %v\n", path, di+1, e)
			}
			if len(errs) > 0 {
				fileOK = false
			}
			if *fixFQCN {
				fmt.Print(yaml.MarshalDocument(normalize(reg, doc)))
			}
		}
		if fileOK {
			if !*quiet {
				fmt.Printf("%s: PASS\n", path)
			}
		} else {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// validate picks the schema (playbook vs task list vs single task) by shape.
func validate(v *ansible.Validator, doc *yaml.Node) []ansible.SchemaError {
	switch {
	case doc.IsNull():
		return nil
	case ansible.LooksLikePlaybook(doc):
		return v.ValidatePlaybook(doc)
	case doc.Kind == yaml.MappingNode:
		return v.ValidateTask(doc)
	default:
		return v.ValidateTaskList(doc)
	}
}

// normalize applies the FQCN / k=v normalisation appropriate for the shape.
func normalize(reg *ansible.Registry, doc *yaml.Node) *yaml.Node {
	switch {
	case ansible.LooksLikePlaybook(doc):
		return ansible.NormalizePlaybook(doc, reg)
	case doc.Kind == yaml.MappingNode:
		return ansible.NormalizeTask(doc, reg)
	case doc.Kind == yaml.SequenceNode:
		out := yaml.Sequence()
		for _, item := range doc.Items {
			out.Items = append(out.Items, ansible.NormalizeTask(item, reg))
		}
		return out
	default:
		return doc.Clone()
	}
}
