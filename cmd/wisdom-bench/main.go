// Command wisdom-bench regenerates the paper's evaluation tables from the
// synthetic reproduction pipeline.
//
// Usage:
//
//	wisdom-bench [-quick] [-table 1|2|3|4|5|throughput|engine|all] [-figure 2]
//	wisdom-bench -quick -trace -metrics   # per-stage timings + metrics dump
//
// Each run is fully deterministic for a given configuration; -trace and
// -metrics only observe, they never perturb results.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"wisdom/internal/dataset"
	"wisdom/internal/experiments"
	"wisdom/internal/observe"
)

func main() {
	quick := flag.Bool("quick", false, "use the reduced (smoke-test) configuration")
	table := flag.String("table", "all", "table to regenerate: 1, 2, 3, 4, 5, throughput, sensitivity, ablation, decoding, engine, or all")
	figure := flag.Int("figure", 0, "figure to print (2 prints one sample per generation type)")
	metricsOn := flag.Bool("metrics", false, "dump collected metrics in Prometheus text format to stderr at exit")
	traceOn := flag.Bool("trace", false, "log stage span timings to stderr and print a stage summary at exit")
	flag.Parse()

	var reg *observe.Registry
	if *metricsOn {
		reg = observe.NewRegistry()
	}
	var tracer *observe.Tracer
	if *metricsOn || *traceOn {
		var logw io.Writer
		if *traceOn {
			logw = os.Stderr
		}
		tracer = observe.NewTracer(reg, logw)
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	fmt.Printf("building suite (seed %d, vocab %d, galaxy %d files)...\n",
		cfg.Seed, cfg.VocabSize, cfg.GalaxyFiles)
	suite, err := experiments.NewSuiteTraced(cfg, tracer)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fine-tuning pipeline: %d train / %d valid / %d test samples\n\n",
		len(suite.Pipe.Train), len(suite.Pipe.Valid), len(suite.Pipe.Test))

	if *figure == 2 {
		printFigure2(suite)
		return
	}

	run := map[string]bool{}
	if *table == "all" {
		for _, t := range []string{"1", "2", "3", "4", "5", "throughput", "sensitivity", "ablation", "decoding", "engine"} {
			run[t] = true
		}
	} else {
		run[*table] = true
	}

	if run["1"] {
		fmt.Println("Table 1: extracted file count per data source")
		fmt.Printf("%-14s %10s %12s %-8s %-5s\n", "Source", "Files", "AfterDedup", "Type", "Usage")
		for _, r := range suite.Table1() {
			fmt.Printf("%-14s %10d %12d %-8s %-5s\n", r.Source, r.FileCount, r.AfterDedup, r.YAMLType, r.Usage)
		}
		fmt.Println()
	}
	if run["2"] {
		fmt.Println(experiments.FormatTable2(suite.Table2()))
	}
	if run["3"] {
		rows, err := suite.Table3()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Format("Table 3: few-shot evaluation", rows))
	}
	if run["4"] {
		rows, err := suite.Table4()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Format("Table 4: fine-tuned evaluation", rows))
	}
	if run["5"] {
		rows, err := suite.Table5()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatTable5(rows))
	}
	if run["sensitivity"] {
		rows, err := suite.Sensitivity()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatSensitivity(rows))
	}
	if run["ablation"] {
		rows, err := suite.InsertionPenaltyAblation()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatAblation(rows))
	}
	if run["decoding"] {
		rows, err := suite.DecodingAblation()
		if err != nil {
			fatal(err)
		}
		fmt.Println("Decoding ablation (greedy vs temperature sampling, fine-tuned CodeGen-Multi)")
		for _, r := range rows {
			fmt.Printf("%-16s Schema %6.2f  EM %6.2f  BLEU %6.2f  Aware %6.2f\n", r.Name,
				r.Report.SchemaCorrect, r.Report.ExactMatch, r.Report.BLEU, r.Report.AnsibleAware)
		}
		fmt.Println()
	}
	if run["engine"] {
		rows, err := suite.DecodeEngine()
		if err != nil {
			fatal(err)
		}
		fmt.Println("Decode engine throughput (emitted tokens/second, benchmark model)")
		for _, r := range rows {
			fmt.Printf("%-24s %10.1f tok/s\n", r.Path, r.TokensPerSec)
		}
		fmt.Println()
	}
	if run["throughput"] {
		res, err := suite.Throughput()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Throughput (pre-training section): small %.1f tok/s, large %.1f tok/s, ratio %.2fx\n",
			res.SmallTokensPerSec, res.LargeTokensPerSec, res.Ratio)
		fmt.Println("(the paper reports the 350M model ~1.9x faster than the 2.7B on one GPU)")
	}

	if *traceOn {
		if s := tracer.Summary(); s != "" {
			fmt.Fprintf(os.Stderr, "\nstage timings:\n%s", s)
		}
	}
	if *metricsOn {
		fmt.Fprintln(os.Stderr, "\ncollected metrics:")
		if err := reg.WritePrometheus(os.Stderr); err != nil {
			fatal(err)
		}
	}
}

func printFigure2(suite *experiments.Suite) {
	samples := suite.Figure2()
	order := []dataset.GenType{dataset.PBNLtoT, dataset.NLtoPB, dataset.TNLtoT, dataset.NLtoT}
	for _, t := range order {
		s, ok := samples[t]
		if !ok {
			continue
		}
		fmt.Printf("=== Figure 2: %s ===\n", t)
		fmt.Printf("# NL prompt: %s\n", s.Prompt)
		fmt.Printf("# model input:\n%s", s.Input())
		fmt.Printf("# expected output:\n%s\n", s.Target)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wisdom-bench:", err)
	os.Exit(1)
}
