// Command wisdom-router runs the sharded-serving frontend: it speaks the
// same REST + binary RPC surface as wisdom-serve (docs/PROTOCOL.md — the
// router is protocol-transparent) and fans every request out to a fleet
// of wisdom-serve replicas by consistent hashing on the request key, or
// on session_id when present so a session stays on the replica holding
// its warm prefix KV state.
//
// Usage:
//
//	wisdom-serve  -http :8080 -rpc :9001 &        # replica 1
//	wisdom-serve  -http :8081 -rpc :9002 &        # replica 2
//	wisdom-router -http :8000 -rpc :8001 -backends 127.0.0.1:9001,127.0.0.1:9002
//	curl -s localhost:8000/v1/completions -d '{"prompt":"install nginx"}'
//	curl -s localhost:8000/v1/stats        # aggregated fleet view
//	curl -s localhost:8000/metrics         # per-backend series + spillover
//
// The -backends list is only the starting fleet: with -admin-token set,
// backends join, drain and leave at runtime through the authenticated
// admin surface (docs/PROTOCOL.md §7) — /admin/backends on the main HTTP
// listener, on the dedicated operator-only -admin listener when given,
// and as the RPC "admin" op:
//
//	wisdom-router ... -admin-token "$TOKEN" -admin 127.0.0.1:8100
//	curl -s -H "X-Wisdom-Admin-Token: $TOKEN" localhost:8100/admin/backends
//	curl -s -H "X-Wisdom-Admin-Token: $TOKEN" localhost:8100/admin/backends \
//	     -d '{"action":"join","backend":"127.0.0.1:9003"}'
//
// Each backend is guarded by a circuit breaker (-breaker-threshold,
// -breaker-cooldown, -breaker-probes) and a heartbeat (-heartbeat,
// -heartbeat-timeout, -dead-after) reusing the RPC health op; a backend
// that is open, dead or shedding spills to the next ring node
// (-spillover caps how many backends one request may try).
//
// SIGINT/SIGTERM drain in-flight requests within the -drain deadline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wisdom/internal/observe"
	"wisdom/internal/resilience"
	"wisdom/internal/router"
	"wisdom/internal/serve"
)

func main() {
	httpAddr := flag.String("http", ":8080", "REST listen address")
	rpcAddr := flag.String("rpc", "", "binary RPC listen address (empty disables)")
	backends := flag.String("backends", "", "comma-separated backend RPC addresses (required)")
	vnodes := flag.Int("vnodes", router.DefaultVNodes, "virtual nodes per backend on the hash ring")
	spillover := flag.Int("spillover", 0, "max backends one request may try: owner plus successors (0 = all live, -1 disables spillover)")
	heartbeat := flag.Duration("heartbeat", router.DefaultHeartbeatInterval, "backend health-sweep period (negative disables)")
	heartbeatTimeout := flag.Duration("heartbeat-timeout", router.DefaultHeartbeatTimeout, "deadline for one health round trip")
	deadAfter := flag.Int("dead-after", router.DefaultDeadAfter, "consecutive failed heartbeats that mark a backend dead")
	forwardTimeout := flag.Duration("forward-timeout", router.DefaultForwardTimeout, "deadline per forwarded round trip (per frame gap for streams)")
	maxIdle := flag.Int("max-idle", router.DefaultMaxIdle, "idle pooled connections kept per backend")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive transport failures that open a backend's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker waits before probing its backend")
	breakerProbes := flag.Int("breaker-probes", 1, "concurrent probe requests allowed while half-open")
	cacheSize := flag.Int("cache", 1024, "LRU response cache entries in front of the ring (0 disables)")
	workers := flag.Int("workers", 64, "max concurrent forwarded requests (forwarding is I/O-bound, so this exceeds GOMAXPROCS)")
	queueDepth := flag.Int("queue", 0, "max requests waiting for a forward slot (0 = 4x workers, -1 disables queueing)")
	queueTimeout := flag.Duration("request-timeout", serve.DefaultQueueTimeout, "max wait for admission before shedding (0 = no deadline)")
	maxBody := flag.Int64("max-body", 1<<20, "max HTTP request body bytes")
	metricsOn := flag.Bool("metrics", true, "record runtime metrics and serve them at /metrics")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	adminToken := flag.String("admin-token", os.Getenv("WISDOM_ADMIN_TOKEN"),
		"token authenticating fleet-admin requests (empty disables the admin surface; defaults to $WISDOM_ADMIN_TOKEN)")
	adminAddr := flag.String("admin", "",
		"dedicated admin HTTP listen address (empty serves /admin/backends on the main listener only)")
	flag.Parse()

	addrs := strings.Split(*backends, ",")
	rt, err := router.New(addrs, router.Options{
		VNodes:            *vnodes,
		MaxSpill:          *spillover,
		HeartbeatInterval: *heartbeat,
		HeartbeatTimeout:  *heartbeatTimeout,
		DeadAfter:         *deadAfter,
		ForwardTimeout:    *forwardTimeout,
		MaxIdle:           *maxIdle,
		Breaker: resilience.BreakerConfig{
			FailureThreshold: *breakerThreshold,
			Cooldown:         *breakerCooldown,
			HalfOpenProbes:   *breakerProbes,
		},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "routing over %d backends: %s\n",
		len(rt.Backends()), strings.Join(rt.Backends(), ", "))

	var reg *observe.Registry
	if *metricsOn {
		reg = observe.NewRegistry()
		rt.Instrument(reg)
	}

	qt := *queueTimeout
	if qt == 0 {
		qt = -1 // flag 0 means "no admission deadline"
	}
	srv := serve.NewServerWithOptions(rt, "router", serve.Options{
		CacheSize:    *cacheSize,
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		QueueTimeout: qt,
		MaxBodyBytes: *maxBody,
		AdminToken:   *adminToken,
	})
	if *adminToken == "" {
		fmt.Fprintln(os.Stderr, "admin surface disabled (no -admin-token)")
	}
	srv.Instrument(reg)
	fmt.Fprintf(os.Stderr, "worker pool: %d workers, queue %d\n",
		srv.Pool().Workers(), srv.Pool().QueueCap())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 3)
	if *rpcAddr != "" {
		ln, err := net.Listen("tcp", *rpcAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rpc listening on %s\n", ln.Addr())
		go func() { errc <- srv.ServeRPC(ln) }()
	}
	httpLn, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		fmt.Fprintf(os.Stderr, "rest listening on %s\n", httpLn.Addr())
		if err := httpSrv.Serve(httpLn); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	var adminSrv *http.Server
	if *adminAddr != "" {
		adminLn, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			fatal(err)
		}
		adminSrv = &http.Server{Handler: srv.AdminMux()}
		go func() {
			fmt.Fprintf(os.Stderr, "admin listening on %s\n", adminLn.Addr())
			if err := adminSrv.Serve(adminLn); !errors.Is(err, http.ErrServerClosed) {
				errc <- err
			}
		}()
	}

	exitCode := 0
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "signal received; draining in-flight requests...")
	case err := <-errc:
		if err != nil {
			fmt.Fprintln(os.Stderr, "wisdom-router:", err)
			exitCode = 1
		}
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "wisdom-router: http drain:", err)
		exitCode = 1
	}
	if adminSrv != nil {
		if err := adminSrv.Shutdown(dctx); err != nil {
			fmt.Fprintln(os.Stderr, "wisdom-router: admin drain:", err)
			exitCode = 1
		}
	}
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "wisdom-router: rpc drain:", err)
		exitCode = 1
	}
	rt.Close()
	fmt.Fprintln(os.Stderr, "shutdown complete")
	os.Exit(exitCode)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wisdom-router:", err)
	os.Exit(1)
}
