// Command wisdom-gen generates an Ansible task (or playbook snippet) from a
// natural-language prompt, the command-line face of the Wisdom assistant.
//
// Usage:
//
//	wisdom-gen -prompt "install nginx and start it"
//	wisdom-gen -prompt "restart postgresql" -context tasks.yml
//	wisdom-gen -prompt "open port 443" -variant wisdom-yaml-multi -few-shot
//	wisdom-gen -prompt "install nginx" -server localhost:8081
//	wisdom-gen -prompt "install nginx" -server localhost:8081 -stream
//	wisdom-gen -prompt "install ngi" -server localhost:8081 -session editor-1
//
// Without -server the model is trained locally on startup from the seeded
// synthetic corpora (a few seconds at the default scale); -quick shrinks
// the corpora further. With -server the prompt is sent to a running
// wisdom-serve RPC endpoint instead, through a retrying client: transient
// transport failures and overload sheds are retried up to -retries times
// with exponentially backed-off, jittered waits starting at -backoff.
//
// -stream prints the suggestion incrementally as the server (or the local
// decode loop) produces it, instead of waiting for the full answer. The
// printed bytes are identical either way; in the rare case where the
// server's final validation pass rewrites the streamed text (the response's
// "replaced" flag), the corrected answer is printed in full after a
// separator note on stderr.
//
// -session names a decode session on the server: successive invocations
// sharing the key reuse the server's retained prefix KV state, so a prompt
// extending the previous one re-steps only the changed suffix. Output is
// byte-identical either way; servers without session support ignore it.
package main

import (
	contextpkg "context"
	"flag"
	"fmt"
	"os"
	"time"

	"wisdom/internal/experiments"
	"wisdom/internal/serve"
	"wisdom/internal/wisdom"
)

func main() {
	prompt := flag.String("prompt", "", "natural-language task description (required)")
	contextFile := flag.String("context", "", "YAML file providing the Ansible context above the cursor")
	variant := flag.String("variant", string(wisdom.WisdomAnsibleMulti), "model variant (see wisdom-bench -table 2)")
	fewShot := flag.Bool("few-shot", false, "skip fine-tuning (paper's few-shot setting)")
	quick := flag.Bool("quick", false, "use the reduced training configuration")
	server := flag.String("server", "", "wisdom-serve RPC address; query it instead of training locally")
	retries := flag.Int("retries", 2, "extra attempts after a failed request (with -server)")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "base backoff before the first retry (with -server)")
	stream := flag.Bool("stream", false, "print the suggestion incrementally as it is generated")
	session := flag.String("session", "", "decode-session key (with -server): successive requests sharing it reuse the server's prefix KV state")
	flag.Parse()

	if *prompt == "" {
		fmt.Fprintln(os.Stderr, "wisdom-gen: -prompt is required")
		flag.Usage()
		os.Exit(2)
	}
	context := ""
	if *contextFile != "" {
		data, err := os.ReadFile(*contextFile)
		if err != nil {
			fatal(err)
		}
		context = string(data)
	}

	if *server != "" {
		rc := serve.NewRetryClient(*server, serve.RetryOptions{
			Retries: *retries,
			Backoff: *backoff,
		})
		defer rc.Close()
		req := serve.Request{Prompt: *prompt, Context: context, SessionID: *session}
		var resp serve.Response
		var err error
		if *stream {
			resp, err = rc.PredictStream(req, func(delta string) {
				fmt.Print(delta)
			})
		} else {
			resp, err = rc.Predict(req)
		}
		if err != nil {
			fatal(err)
		}
		if resp.Degraded {
			fmt.Fprintln(os.Stderr, "wisdom-gen: note: degraded answer (server fell back to a lower tier)")
		}
		if *stream {
			if resp.Replaced {
				// The final validation pass rewrote the streamed text: the
				// authoritative answer follows in full.
				fmt.Fprintln(os.Stderr, "wisdom-gen: note: streamed text was superseded; corrected answer follows")
				fmt.Print(resp.Suggestion)
			}
			return
		}
		fmt.Print(resp.Suggestion)
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	fmt.Fprintln(os.Stderr, "training model (seeded synthetic corpora)...")
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		fatal(err)
	}
	model, err := suite.Pretrained(wisdom.VariantID(*variant), "", 0, 1024)
	if err != nil {
		fatal(err)
	}
	if !*fewShot {
		model, err = wisdom.Finetune(model, suite.Pipe.Train, wisdom.FinetuneConfig{Window: 1024})
		if err != nil {
			fatal(err)
		}
	}
	if *stream {
		sent := ""
		final := model.PredictStream(contextpkg.Background(), context, *prompt, func(delta string) {
			sent += delta
			fmt.Print(delta)
		})
		if sent != final {
			fmt.Fprintln(os.Stderr, "wisdom-gen: note: streamed text was superseded; corrected answer follows")
			fmt.Print(final)
		}
		return
	}
	fmt.Print(model.Predict(context, *prompt))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wisdom-gen:", err)
	os.Exit(1)
}
