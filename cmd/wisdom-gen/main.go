// Command wisdom-gen generates an Ansible task (or playbook snippet) from a
// natural-language prompt, the command-line face of the Wisdom assistant.
//
// Usage:
//
//	wisdom-gen -prompt "install nginx and start it"
//	wisdom-gen -prompt "restart postgresql" -context tasks.yml
//	wisdom-gen -prompt "open port 443" -variant wisdom-yaml-multi -few-shot
//	wisdom-gen -prompt "install nginx" -server localhost:8081
//
// Without -server the model is trained locally on startup from the seeded
// synthetic corpora (a few seconds at the default scale); -quick shrinks
// the corpora further. With -server the prompt is sent to a running
// wisdom-serve RPC endpoint instead, through a retrying client: transient
// transport failures and overload sheds are retried up to -retries times
// with exponentially backed-off, jittered waits starting at -backoff.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wisdom/internal/experiments"
	"wisdom/internal/serve"
	"wisdom/internal/wisdom"
)

func main() {
	prompt := flag.String("prompt", "", "natural-language task description (required)")
	contextFile := flag.String("context", "", "YAML file providing the Ansible context above the cursor")
	variant := flag.String("variant", string(wisdom.WisdomAnsibleMulti), "model variant (see wisdom-bench -table 2)")
	fewShot := flag.Bool("few-shot", false, "skip fine-tuning (paper's few-shot setting)")
	quick := flag.Bool("quick", false, "use the reduced training configuration")
	server := flag.String("server", "", "wisdom-serve RPC address; query it instead of training locally")
	retries := flag.Int("retries", 2, "extra attempts after a failed request (with -server)")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "base backoff before the first retry (with -server)")
	flag.Parse()

	if *prompt == "" {
		fmt.Fprintln(os.Stderr, "wisdom-gen: -prompt is required")
		flag.Usage()
		os.Exit(2)
	}
	context := ""
	if *contextFile != "" {
		data, err := os.ReadFile(*contextFile)
		if err != nil {
			fatal(err)
		}
		context = string(data)
	}

	if *server != "" {
		rc := serve.NewRetryClient(*server, serve.RetryOptions{
			Retries: *retries,
			Backoff: *backoff,
		})
		defer rc.Close()
		resp, err := rc.Predict(serve.Request{Prompt: *prompt, Context: context})
		if err != nil {
			fatal(err)
		}
		if resp.Degraded {
			fmt.Fprintln(os.Stderr, "wisdom-gen: note: degraded answer (server fell back to a lower tier)")
		}
		fmt.Print(resp.Suggestion)
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	fmt.Fprintln(os.Stderr, "training model (seeded synthetic corpora)...")
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		fatal(err)
	}
	model, err := suite.Pretrained(wisdom.VariantID(*variant), "", 0, 1024)
	if err != nil {
		fatal(err)
	}
	if !*fewShot {
		model, err = wisdom.Finetune(model, suite.Pipe.Train, wisdom.FinetuneConfig{Window: 1024})
		if err != nil {
			fatal(err)
		}
	}
	fmt.Print(model.Predict(context, *prompt))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wisdom-gen:", err)
	os.Exit(1)
}
