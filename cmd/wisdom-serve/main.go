// Command wisdom-serve runs the Wisdom inference service: the REST endpoint
// and the binary RPC endpoint from the paper's Demo/Plugin section, with the
// LRU response cache.
//
// Usage:
//
//	wisdom-serve -http :8080 -rpc :8081
//	curl -s localhost:8080/v1/completions -d '{"prompt":"install nginx"}'
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"wisdom/internal/experiments"
	"wisdom/internal/serve"
	"wisdom/internal/wisdom"
)

func main() {
	httpAddr := flag.String("http", ":8080", "REST listen address")
	rpcAddr := flag.String("rpc", "", "binary RPC listen address (empty disables)")
	variant := flag.String("variant", string(wisdom.WisdomAnsibleMulti), "model variant to serve")
	cacheSize := flag.Int("cache", 1024, "LRU response cache entries (0 disables)")
	quick := flag.Bool("quick", false, "use the reduced training configuration")
	loadPath := flag.String("load", "", "load a previously saved model instead of training")
	savePath := flag.String("save", "", "save the trained model to this file before serving")
	flag.Parse()

	var model *wisdom.Model
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fatal(err)
		}
		model, err = wisdom.LoadModel(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %s from %s\n", model.Name, *loadPath)
	} else {
		cfg := experiments.Default()
		if *quick {
			cfg = experiments.Quick()
		}
		fmt.Fprintln(os.Stderr, "training model (seeded synthetic corpora)...")
		suite, err := experiments.NewSuite(cfg)
		if err != nil {
			fatal(err)
		}
		pre, err := suite.Pretrained(wisdom.VariantID(*variant), "", 0, 1024)
		if err != nil {
			fatal(err)
		}
		model, err = wisdom.Finetune(pre, suite.Pipe.Train, wisdom.FinetuneConfig{Window: 1024})
		if err != nil {
			fatal(err)
		}
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal(err)
		}
		if err := model.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved model to %s\n", *savePath)
	}

	srv := serve.NewServer(model, model.Name, *cacheSize)
	if *rpcAddr != "" {
		ln, err := net.Listen("tcp", *rpcAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rpc listening on %s\n", ln.Addr())
		go func() {
			if err := srv.ServeRPC(ln); err != nil {
				fatal(err)
			}
		}()
	}
	fmt.Fprintf(os.Stderr, "rest listening on %s\n", *httpAddr)
	if err := srv.ListenHTTP(*httpAddr); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wisdom-serve:", err)
	os.Exit(1)
}
