// Command wisdom-serve runs the Wisdom inference service: the REST endpoint
// and the binary RPC endpoint from the paper's Demo/Plugin section, with the
// LRU response cache, Prometheus-format metrics and graceful shutdown.
//
// Usage:
//
//	wisdom-serve -http :8080 -rpc :8081
//	curl -s localhost:8080/v1/completions -d '{"prompt":"install nginx"}'
//	curl -s localhost:8080/metrics     # Prometheus text format
//	curl -s localhost:8080/healthz     # liveness probe
//
// -batch-window/-max-batch enable the micro-batching decode path;
// -sched enables the continuous-batching scheduler, which supersedes the
// micro-batcher (see docs/ARCHITECTURE.md, "Continuous batching");
// -pprof :6060 exposes net/http/pprof on a side listener.
//
// SIGINT/SIGTERM drain in-flight HTTP and RPC requests within the -drain
// deadline before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof side listener
	"os"
	"os/signal"
	"syscall"
	"time"

	"wisdom/internal/experiments"
	"wisdom/internal/neural"
	"wisdom/internal/observe"
	"wisdom/internal/resilience"
	"wisdom/internal/serve"
	"wisdom/internal/wisdom"
)

func main() {
	httpAddr := flag.String("http", ":8080", "REST listen address")
	rpcAddr := flag.String("rpc", "", "binary RPC listen address (empty disables)")
	variant := flag.String("variant", string(wisdom.WisdomAnsibleMulti), "model variant to serve")
	cacheSize := flag.Int("cache", 1024, "LRU response cache entries (0 disables)")
	workers := flag.Int("workers", 0, "max concurrent model predictions (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 0, "max requests waiting for a worker (0 = 4x workers, -1 disables queueing)")
	queueTimeout := flag.Duration("request-timeout", serve.DefaultQueueTimeout, "max wait for worker admission before shedding (0 = no deadline)")
	maxBody := flag.Int64("max-body", 1<<20, "max HTTP request body bytes")
	batchWindow := flag.Duration("batch-window", 0, "micro-batching gather window (0 disables batching)")
	maxBatch := flag.Int("max-batch", 8, "max requests decoded together per micro-batch")
	pprofAddr := flag.String("pprof", "", "net/http/pprof listen address on a side port (empty disables)")
	quick := flag.Bool("quick", false, "use the reduced training configuration")
	loadPath := flag.String("load", "", "load a previously saved model instead of training")
	savePath := flag.String("save", "", "save the trained model to this file before serving")
	metricsOn := flag.Bool("metrics", true, "record runtime metrics and serve them at /metrics")
	traceOn := flag.Bool("trace", false, "log stage span timings to stderr")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	degrade := flag.Bool("degrade", false, "serve through the degradation chain (primary -> n-gram fallback -> retrieval)")
	degradeTimeout := flag.Duration("degrade-timeout", time.Second, "per-tier prediction deadline before falling to the next tier")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive primary failures that open the circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker waits before probing the primary")
	breakerProbes := flag.Int("breaker-probes", 1, "concurrent probe requests allowed while half-open")
	sessions := flag.Int("sessions", 64, "max resident per-session prefix KV decode states (0 disables sessions)")
	sessionTTL := flag.Duration("session-ttl", 5*time.Minute, "evict sessions idle longer than this (negative disables idle eviction)")
	sessionMem := flag.Int64("session-mem", 0, "cap estimated session-state memory in bytes (0 = unbounded)")
	sched := flag.Bool("sched", false, "decode through the continuous-batching scheduler (transformer models only)")
	schedMaxBatch := flag.Int("sched-max-batch", 8, "step-batch slots of the continuous-batching scheduler")
	schedQueue := flag.Int("sched-queue", 0, "admission queue depth of the scheduler (0 = 4x slots)")
	flag.Parse()

	var reg *observe.Registry
	if *metricsOn {
		reg = observe.NewRegistry()
	}
	var tracer *observe.Tracer
	if *traceOn {
		tracer = observe.NewTracer(reg, os.Stderr)
	}

	model, fallback := buildModel(*loadPath, *savePath, *variant, *quick, tracer)

	// Per-session prefix KV caching: only transformer-backed models hold
	// reusable decode state (the n-gram zoo decodes from counts), and the
	// degradation chain re-routes requests across tiers, which breaks
	// session affinity — so sessions engage only on a neural model served
	// directly.
	if *sessions > 0 && !*degrade {
		ttl := *sessionTTL
		if ttl < 0 {
			ttl = -1
		}
		if model.EnableSessions(neural.SessionCacheConfig{
			MaxSessions: *sessions, TTL: ttl, MaxBytes: *sessionMem,
		}) {
			fmt.Fprintf(os.Stderr, "sessions on: %d max, ttl %s\n", *sessions, *sessionTTL)
		} else {
			fmt.Fprintf(os.Stderr, "sessions unavailable: %s has no per-session decode state (n-gram LM)\n", model.Name)
		}
	} else if *sessions > 0 && *degrade {
		fmt.Fprintln(os.Stderr, "sessions unavailable: disabled under -degrade (the chain re-routes requests across tiers)")
	}

	// Continuous-batching scheduler: concurrent decodes share one step batch
	// through a persistent engine loop. Like sessions it needs the
	// transformer's batched step kernel, and the degradation chain's tier
	// re-routing would bypass the engine — so it engages only on a neural
	// model served directly.
	workerCount := *workers
	if *sched && !*degrade {
		if model.EnableScheduler(neural.EngineConfig{MaxBatch: *schedMaxBatch, Queue: *schedQueue}) {
			fmt.Fprintf(os.Stderr, "scheduler on: %d step-batch slots, kernel procs %d\n",
				*schedMaxBatch, neural.KernelProcs())
			// The engine decodes many requests per worker slot, so the pool
			// should admit at least a full batch plus queued headroom.
			if workerCount == 0 {
				workerCount = 2 * *schedMaxBatch
			}
		} else {
			fmt.Fprintf(os.Stderr, "scheduler unavailable: %s has no batched decode path (n-gram LM)\n", model.Name)
		}
	} else if *sched && *degrade {
		fmt.Fprintln(os.Stderr, "scheduler unavailable: disabled under -degrade (the chain re-routes requests across tiers)")
	}

	// The served predictor is either the raw model or, with -degrade, the
	// degradation chain around it: the fine-tuned model as primary, the
	// pre-trained model (when this process trained one) as the generative
	// fallback, the retrieval memory as last resort, a circuit breaker
	// guarding the primary.
	var predictor serve.Predictor = model
	if *degrade {
		b := resilience.NewBreaker(resilience.BreakerConfig{
			FailureThreshold: *breakerThreshold,
			Cooldown:         *breakerCooldown,
			HalfOpenProbes:   *breakerProbes,
		})
		chain := wisdom.NewModelChain(model, fallback, wisdom.ChainConfig{
			Timeout: *degradeTimeout,
			Breaker: b,
		})
		if reg != nil {
			resilience.InstrumentBreaker(reg, "primary", b)
		}
		predictor = chain
		fmt.Fprintf(os.Stderr, "degradation chain on: tier timeout %s, breaker %d failures / %s cooldown\n",
			*degradeTimeout, *breakerThreshold, *breakerCooldown)
	}

	qt := *queueTimeout
	if qt == 0 {
		qt = -1 // flag 0 means "no admission deadline"
	}
	srv := serve.NewServerWithOptions(predictor, model.Name, serve.Options{
		CacheSize:    *cacheSize,
		Workers:      workerCount,
		QueueDepth:   *queueDepth,
		QueueTimeout: qt,
		MaxBodyBytes: *maxBody,
		BatchWindow:  *batchWindow,
		MaxBatch:     *maxBatch,
	})
	srv.Instrument(reg)
	fmt.Fprintf(os.Stderr, "worker pool: %d workers, queue %d\n",
		srv.Pool().Workers(), srv.Pool().QueueCap())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Listener failures land on errc instead of os.Exit-ing from a
	// goroutine, so a dying listener still drains the other protocol.
	errc := make(chan error, 3)
	if *pprofAddr != "" {
		// The profiling endpoint lives on its own listener so it is never
		// exposed alongside the public API by accident.
		go func() {
			fmt.Fprintf(os.Stderr, "pprof listening on %s\n", *pprofAddr)
			errc <- http.ListenAndServe(*pprofAddr, nil)
		}()
	}
	if *rpcAddr != "" {
		ln, err := net.Listen("tcp", *rpcAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rpc listening on %s\n", ln.Addr())
		go func() { errc <- srv.ServeRPC(ln) }()
	}
	// The HTTP listener is opened here (not inside ListenAndServe) so the
	// resolved address is printed — ":0" gets a real port, which is what
	// the e2e tests parse.
	httpLn, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		fmt.Fprintf(os.Stderr, "rest listening on %s\n", httpLn.Addr())
		if err := httpSrv.Serve(httpLn); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	exitCode := 0
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "signal received; draining in-flight requests...")
	case err := <-errc:
		if err != nil {
			fmt.Fprintln(os.Stderr, "wisdom-serve:", err)
			exitCode = 1
		}
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "wisdom-serve: http drain:", err)
		exitCode = 1
	}
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "wisdom-serve: rpc drain:", err)
		exitCode = 1
	}
	// Drain the decode engine after the servers stop feeding it requests;
	// in-flight scheduled decodes finish within the same deadline.
	if err := model.CloseScheduler(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "wisdom-serve: scheduler drain:", err)
		exitCode = 1
	}
	fmt.Fprintln(os.Stderr, "shutdown complete")
	os.Exit(exitCode)
}

// buildModel loads a saved model or trains one from the seeded corpora.
// When this process trains, the pre-trained (not fine-tuned) model is also
// returned as the degradation chain's generative fallback tier; a loaded
// model has no such sibling, so fallback is nil and the chain degrades
// straight to retrieval.
func buildModel(loadPath, savePath, variant string, quick bool, tracer *observe.Tracer) (model, fallback *wisdom.Model) {
	if loadPath != "" {
		sp := tracer.Start("serve.load_model")
		f, err := os.Open(loadPath)
		if err != nil {
			fatal(err)
		}
		model, err = wisdom.LoadModel(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		sp.End()
		fmt.Fprintf(os.Stderr, "loaded %s from %s\n", model.Name, loadPath)
	} else {
		cfg := experiments.Default()
		if quick {
			cfg = experiments.Quick()
		}
		fmt.Fprintln(os.Stderr, "training model (seeded synthetic corpora)...")
		suite, err := experiments.NewSuiteTraced(cfg, tracer)
		if err != nil {
			fatal(err)
		}
		pre, err := suite.Pretrained(wisdom.VariantID(variant), "", 0, 1024)
		if err != nil {
			fatal(err)
		}
		sp := tracer.Start("serve.finetune")
		model, err = wisdom.Finetune(pre, suite.Pipe.Train, wisdom.FinetuneConfig{Window: 1024})
		if err != nil {
			fatal(err)
		}
		sp.End()
		fallback = pre
	}
	if savePath != "" {
		f, err := os.Create(savePath)
		if err != nil {
			fatal(err)
		}
		if err := model.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved model to %s\n", savePath)
	}
	return model, fallback
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wisdom-serve:", err)
	os.Exit(1)
}
