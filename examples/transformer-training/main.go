// Transformer-training demo: the pure-Go decoder-only transformer (the
// architecture-faithful counterpart of the paper's CodeGen models) trained
// end to end on a small Ansible corpus — tokenizer training, context
// packing with the separator token, the Adam + cosine-schedule training
// loop, perplexity on held-out text, and greedy generation.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"wisdom/internal/corpus"
	"wisdom/internal/neural"
	"wisdom/internal/tokenizer"
)

// firstTaskNameLine returns the first "- name:" line of a role file.
func firstTaskNameLine(text string) string {
	for _, l := range strings.Split(text, "\n") {
		if strings.HasPrefix(l, "- name: ") {
			return l
		}
	}
	return "- name: Install nginx"
}

func main() {
	fmt.Println("== training a transformer on Ansible-YAML ==")

	// A deliberately tiny, highly regular corpus (a handful of role files,
	// seen several times per epoch): small enough that the 138k-parameter
	// model can practically memorise the task shape (name -> module ->
	// params) in a couple of hundred CPU training steps.
	r := rand.New(rand.NewSource(3))
	var distinct []string
	for i := 0; i < 8; i++ {
		distinct = append(distinct, corpus.RoleTaskFile(r, corpus.GalaxyStyle))
	}
	var texts []string
	for i := 0; i < 3; i++ {
		texts = append(texts, distinct...)
	}
	heldOut := distinct[0]

	tok, err := tokenizer.Train(texts, 384)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tokenizer: %d entries (256 bytes + %d merges + 3 specials)\n",
		tok.VocabSize(), tok.VocabSize()-259)

	// Pack files into fixed windows exactly like the paper's pre-training.
	// For this miniature run each window is one (truncated) file, so every
	// sequence starts at a task boundary and the positional embeddings see
	// a consistent layout — packing across files needs more capacity than
	// a demo-sized model has.
	const ctx = 96
	var windows [][]int
	for _, text := range texts {
		ids := tok.Encode(text)
		if len(ids) > ctx {
			ids = ids[:ctx]
		}
		windows = append(windows, ids)
	}
	fmt.Printf("prepared %d training sequences of <=%d tokens\n", len(windows), ctx)

	model, err := neural.NewModel(neural.Config{
		Vocab: tok.VocabSize(), Ctx: ctx, Dim: 64, Heads: 4, Layers: 2, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d parameters (dim 64, 4 heads, 2 layers)\n\n", model.NumParams())

	held := tok.Encode(heldOut)
	fmt.Printf("held-out perplexity before training: %8.1f\n", model.Perplexity(held))

	loss := model.Train(windows, neural.TrainConfig{
		Epochs: 60, LR: 3e-3, BatchSize: 8, Seed: 5,
		Schedule: neural.CosineDecay,
		Progress: func(step, total int, loss float64) {
			if step%30 == 0 || step == total {
				fmt.Printf("  step %4d/%d  loss %.3f\n", step, total, loss)
			}
		},
	})
	fmt.Printf("final training loss: %.3f\n", loss)
	fmt.Printf("held-out perplexity after training:  %8.1f\n\n", model.Perplexity(held))

	// Greedy completion of a task prefix.
	prefix := "---\n" + firstTaskNameLine(distinct[0]) + "\n"
	ids := tok.Encode(prefix)
	out := model.Generate(ids, 40, neural.GenOptions{StopToken: tok.Sep()})
	fmt.Println("greedy completion of a task prefix:")
	fmt.Printf("%s%s\n", prefix, tok.Decode(out))
}
