// Quickstart: train an Ansible Wisdom model on the synthetic corpora and
// generate tasks from natural-language prompts — the 30-second tour of the
// library. The model trains from scratch on startup (seeded, deterministic,
// a few seconds at this scale).
package main

import (
	"fmt"
	"log"

	"wisdom/internal/experiments"
	"wisdom/internal/wisdom"
)

func main() {
	fmt.Println("== Ansible Wisdom quickstart ==")
	fmt.Println("building corpora, tokenizer and fine-tuning data...")
	suite, err := experiments.NewSuite(experiments.Quick())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pre-training Wisdom-Ansible-Multi on the YAML corpora...")
	pre, err := suite.Pretrained(wisdom.WisdomAnsibleMulti, "", 0, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fine-tuning on %d Galaxy samples...\n\n", len(suite.Pipe.Train))
	model, err := wisdom.Finetune(pre, suite.Pipe.Train, wisdom.FinetuneConfig{Window: 1024})
	if err != nil {
		log.Fatal(err)
	}

	prompts := []string{
		"Install nginx",
		"Start and enable redis",
		"Create deploy user",
		"Allow https through the firewall",
		"Set timezone to UTC",
	}
	for _, p := range prompts {
		fmt.Printf("prompt: %q\n", p)
		fmt.Println(model.Predict("", p))
	}

	// The paper's Fig. 1 flow: the playbook's earlier tasks provide the
	// context for the next suggestion.
	context := `---
- hosts: servers
  tasks:
    - name: Install SSH server
      ansible.builtin.apt:
        name: openssh-server
        state: present
`
	fmt.Println("with playbook context (Fig. 1):")
	fmt.Print(context)
	fmt.Println(model.Predict(context, "Start SSH server"))
}
