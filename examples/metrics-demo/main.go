// Metrics demo: a walkthrough of the paper's two novel metrics — Ansible
// Aware and Schema Correct — on hand-written prediction/reference pairs
// that exercise each rule from the paper's metric definition: FQCN
// normalisation, legacy k=v arguments, ignored name fields, missing keys,
// ignored insertions, near-equivalent modules, and recursive list/dict
// scoring.
package main

import (
	"fmt"

	"wisdom/internal/metrics"
)

type demo struct {
	title string
	pred  string
	ref   string
	note  string
}

func main() {
	ref := `name: Install nginx
ansible.builtin.apt:
  name: nginx
  state: present
become: true
`
	demos := []demo{
		{
			title: "identical task",
			pred:  ref,
			ref:   ref,
			note:  "perfect score on every metric",
		},
		{
			title: "different name field",
			pred: `name: make sure the web server package is there
ansible.builtin.apt:
  name: nginx
  state: present
become: true
`,
			ref:  ref,
			note: "the name is ignored by Ansible Aware (no effect on execution) but breaks Exact Match",
		},
		{
			title: "short module name",
			pred: `name: Install nginx
apt:
  name: nginx
  state: present
become: true
`,
			ref:  ref,
			note: "apt is normalised to ansible.builtin.apt before comparison",
		},
		{
			title: "legacy k=v arguments",
			pred: `name: Install nginx
apt: name=nginx state=present
become: true
`,
			ref:  ref,
			note: "k=v is converted to a dict; full Ansible Aware, but Schema Correct rejects the historical form",
		},
		{
			title: "missing keyword",
			pred: `name: Install nginx
ansible.builtin.apt:
  name: nginx
  state: present
`,
			ref:  ref,
			note: "keys missing from the prediction score 0 (become is one of two scored pairs)",
		},
		{
			title: "inserted keys",
			pred: `name: Install nginx
ansible.builtin.apt:
  name: nginx
  state: present
become: true
register: out
tags:
  - web
`,
			ref:  ref,
			note: "insertions are ignored: easy for the user to delete",
		},
		{
			title: "equivalent module (yum for apt)",
			pred: `name: Install nginx
ansible.builtin.yum:
  name: nginx
  state: present
become: true
`,
			ref:  ref,
			note: "package-manager modules are near-equivalent: partial key credit, arguments still compared",
		},
		{
			title: "unrelated module",
			pred: `name: Install nginx
ansible.builtin.service:
  name: nginx
  state: present
become: true
`,
			ref:  ref,
			note: "service is not equivalent to apt: the module pair scores 0",
		},
		{
			title: "wrong parameter value",
			pred: `name: Install nginx
ansible.builtin.apt:
  name: nginx
  state: absent
become: true
`,
			ref:  ref,
			note: "the state pair loses its value score; everything else still counts",
		},
		{
			title: "invalid schema",
			pred: `name: Install nginx
ansible.builtin.apt:
  name: nginx
  not_a_real_param: true
become: true
`,
			ref:  ref,
			note: "unknown parameters fail the strict schema, like the ansible-lint schema the paper uses",
		},
	}

	e := metrics.NewEvaluator()
	fmt.Println("reference task:")
	fmt.Println(ref)
	fmt.Printf("%-34s %-7s %-6s %7s %7s\n", "Case", "Schema", "EM", "BLEU", "Aware")
	for _, d := range demos {
		schemaOK, exact, bleu, aware := e.Score(d.pred, d.ref)
		fmt.Printf("%-34s %-7v %-6v %7.2f %7.2f\n", d.title, schemaOK, exact, bleu, 100*aware)
	}
	fmt.Println()
	for _, d := range demos {
		fmt.Printf("- %s: %s\n", d.title, d.note)
	}

	// The explanation view: the metric's motivation is "how many changes
	// must be made to correct it", and Explain lists exactly those.
	fmt.Println("\nexplanation of the 'wrong parameter value' case:")
	pred := `name: Install nginx
ansible.builtin.apt:
  name: nginx
  state: absent
register: out
`
	fmt.Print(metrics.NewAnsibleAware().Explain(pred, ref))
}
