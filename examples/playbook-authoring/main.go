// Playbook-authoring scenario: a complete web-stack playbook written turn
// by turn with the Wisdom assistant, with each accepted suggestion becoming
// context for the next — the incremental authoring loop the paper's
// introduction motivates. The finished playbook is validated against the
// strict schema and scored against a hand-written reference.
package main

import (
	"fmt"
	"log"
	"strings"

	"wisdom/internal/ansible"
	"wisdom/internal/experiments"
	"wisdom/internal/metrics"
	"wisdom/internal/wisdom"
	"wisdom/internal/yaml"
)

func main() {
	fmt.Println("== playbook authoring with Wisdom ==")
	suite, err := experiments.NewSuite(experiments.Quick())
	if err != nil {
		log.Fatal(err)
	}
	pre, err := suite.Pretrained(wisdom.WisdomAnsibleMulti, "", 0, 1024)
	if err != nil {
		log.Fatal(err)
	}
	model, err := wisdom.Finetune(pre, suite.Pipe.Train, wisdom.FinetuneConfig{Window: 1024})
	if err != nil {
		log.Fatal(err)
	}

	playbook := "---\n- name: Provision web servers\n  hosts: webservers\n  become: true\n  tasks:\n"
	intents := []string{
		"Install nginx",
		"Create /var/www/html directory",
		"Deploy nginx.conf from template",
		"Start and enable nginx",
		"Allow https through the firewall",
		"Open port 443 with ufw",
	}
	for i, intent := range intents {
		suggestion := model.Predict(playbook, intent)
		fmt.Printf("turn %d: %-40q -> %s\n", i+1, intent, firstBodyLine(suggestion))
		playbook += suggestion
	}

	fmt.Println("\nfinished playbook:")
	fmt.Println(playbook)

	// Validate with the strict schema.
	node, err := yaml.Parse(playbook)
	if err != nil {
		log.Fatalf("authored playbook does not parse: %v", err)
	}
	v := ansible.NewValidator()
	if errs := v.ValidatePlaybook(node); len(errs) == 0 {
		fmt.Println("schema check: PASS (valid playbook under the strict schema)")
	} else {
		fmt.Printf("schema check: %d violations\n", len(errs))
		for _, e := range errs {
			fmt.Printf("  - %v\n", e)
		}
	}

	// Score one suggested task against a hand-written reference.
	reference := `- name: Start and enable nginx
  ansible.builtin.service:
    name: nginx
    state: started
    enabled: true
`
	suggested := model.Predict("", "Start and enable nginx")
	aware := metrics.NewAnsibleAware().Score(suggested, reference)
	fmt.Printf("\nAnsible Aware of the 'Start and enable nginx' suggestion vs a hand-written reference: %.2f\n", 100*aware)
}

func firstBodyLine(task string) string {
	lines := strings.Split(task, "\n")
	if len(lines) > 1 {
		return strings.TrimSpace(lines[1])
	}
	return "(empty)"
}
