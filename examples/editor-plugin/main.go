// Editor-plugin simulation: the end-to-end flow of the paper's Visual
// Studio Code plugin. A Wisdom model is served over both the REST API and
// the binary RPC protocol; a simulated editor session types task names into
// a playbook, requests completions on Enter, and accepts or rejects the
// suggestions — including the repeated-request case that exercises the
// response cache.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"

	"wisdom/internal/experiments"
	"wisdom/internal/serve"
	"wisdom/internal/wisdom"
)

func main() {
	fmt.Println("== editor plugin simulation ==")
	fmt.Println("training the serving model...")
	suite, err := experiments.NewSuite(experiments.Quick())
	if err != nil {
		log.Fatal(err)
	}
	pre, err := suite.Pretrained(wisdom.WisdomAnsibleMulti, "", 0, 1024)
	if err != nil {
		log.Fatal(err)
	}
	model, err := wisdom.Finetune(pre, suite.Pipe.Train, wisdom.FinetuneConfig{Window: 1024})
	if err != nil {
		log.Fatal(err)
	}

	srv := serve.NewServer(model, model.Name, 128)

	// REST endpoint (what the real plugin calls).
	rest := httptest.NewServer(srv.Handler())
	defer rest.Close()
	fmt.Printf("REST endpoint: %s\n", rest.URL)

	// RPC endpoint (the GRPC-shaped alternative).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.ServeRPC(ln) }()
	rpc, err := serve.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer rpc.Close()
	fmt.Printf("RPC endpoint:  %s\n\n", ln.Addr())

	// The simulated editing session: the user builds a playbook task by
	// task. Each entry is the prompt typed after "- name:"; the growing
	// buffer is the context.
	buffer := "---\n- hosts: webservers\n  tasks:\n"
	prompts := []string{
		"Install nginx",
		"Deploy nginx.conf from template",
		"Start and enable nginx",
		"Allow https through the firewall",
	}
	for turn, prompt := range prompts {
		fmt.Printf("--- turn %d: user types %q and hits Enter\n", turn+1, prompt)
		resp := restComplete(rest.URL, rest.Client(), serve.Request{Prompt: prompt, Context: buffer})
		fmt.Printf("[suggestion in %.1f ms, cached=%v]\n%s", resp.LatencyMS, resp.Cached, resp.Suggestion)
		// The user accepts with Tab: the suggestion lands in the buffer.
		buffer += resp.Suggestion
		fmt.Println("[user hits Tab: accepted]")
	}

	fmt.Println("\n--- the user re-requests the first completion (cache hit expected)")
	again := restComplete(rest.URL, rest.Client(), serve.Request{
		Prompt: prompts[0], Context: "---\n- hosts: webservers\n  tasks:\n",
	})
	fmt.Printf("[cached=%v, latency %.1f ms]\n", again.Cached, again.LatencyMS)

	fmt.Println("\n--- same request over the RPC protocol")
	rpcResp, err := rpc.Predict(serve.Request{Prompt: "Create backup directory"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[rpc answered in %.1f ms]\n%s", rpcResp.LatencyMS, rpcResp.Suggestion)

	fmt.Println("\nfinal playbook:")
	fmt.Println(strings.TrimRight(buffer, "\n"))
	fmt.Printf("\nserver handled %d predictions\n", srv.Requests())
}

func restComplete(url string, client *http.Client, req serve.Request) serve.Response {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	httpResp, err := client.Post(url+"/v1/completions", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer httpResp.Body.Close()
	var out serve.Response
	if err := json.NewDecoder(httpResp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return out
}
