// Editor-plugin simulation: the end-to-end flow of the paper's Visual
// Studio Code plugin. A Wisdom model is served over both the REST API and
// the binary RPC protocol; a simulated editor session types task names into
// a playbook, requests completions on Enter, and accepts or rejects the
// suggestions — including the repeated-request case that exercises the
// response cache and the streaming variants of both protocols (the typing
// effect a real editor renders while the decode loop is still running).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"

	"wisdom/internal/dataset"
	"wisdom/internal/experiments"
	"wisdom/internal/neural"
	"wisdom/internal/serve"
	"wisdom/internal/tokenizer"
	"wisdom/internal/wisdom"
)

func main() {
	fmt.Println("== editor plugin simulation ==")
	fmt.Println("training the serving model...")
	suite, err := experiments.NewSuite(experiments.Quick())
	if err != nil {
		log.Fatal(err)
	}
	pre, err := suite.Pretrained(wisdom.WisdomAnsibleMulti, "", 0, 1024)
	if err != nil {
		log.Fatal(err)
	}
	model, err := wisdom.Finetune(pre, suite.Pipe.Train, wisdom.FinetuneConfig{Window: 1024})
	if err != nil {
		log.Fatal(err)
	}

	srv := serve.NewServer(model, model.Name, 128)

	// REST endpoint (what the real plugin calls).
	rest := httptest.NewServer(srv.Handler())
	defer rest.Close()
	fmt.Printf("REST endpoint: %s\n", rest.URL)

	// RPC endpoint (the GRPC-shaped alternative).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.ServeRPC(ln) }()
	rpc, err := serve.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer rpc.Close()
	fmt.Printf("RPC endpoint:  %s\n\n", ln.Addr())

	// The simulated editing session: the user builds a playbook task by
	// task. Each entry is the prompt typed after "- name:"; the growing
	// buffer is the context.
	buffer := "---\n- hosts: webservers\n  tasks:\n"
	prompts := []string{
		"Install nginx",
		"Deploy nginx.conf from template",
		"Start and enable nginx",
		"Allow https through the firewall",
	}
	for turn, prompt := range prompts {
		fmt.Printf("--- turn %d: user types %q and hits Enter\n", turn+1, prompt)
		resp := restComplete(rest.URL, rest.Client(), serve.Request{Prompt: prompt, Context: buffer})
		fmt.Printf("[suggestion in %.1f ms, cached=%v]\n%s", resp.LatencyMS, resp.Cached, resp.Suggestion)
		// The user accepts with Tab: the suggestion lands in the buffer.
		buffer += resp.Suggestion
		fmt.Println("[user hits Tab: accepted]")
	}

	fmt.Println("\n--- the user re-requests the first completion (cache hit expected)")
	again := restComplete(rest.URL, rest.Client(), serve.Request{
		Prompt: prompts[0], Context: "---\n- hosts: webservers\n  tasks:\n",
	})
	fmt.Printf("[cached=%v, latency %.1f ms]\n", again.Cached, again.LatencyMS)

	fmt.Println("\n--- same request over the RPC protocol")
	rpcResp, err := rpc.Predict(serve.Request{Prompt: "Create backup directory"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[rpc answered in %.1f ms]\n%s", rpcResp.LatencyMS, rpcResp.Suggestion)

	// Streaming turns: the editor renders the suggestion as it is decoded
	// instead of waiting for the full answer — SSE over HTTP, then the
	// frame-sequence variant over RPC. Deltas concatenate to exactly the
	// unary answer (the terminal response's "replaced" flag marks the rare
	// post-processing rewrite).
	fmt.Println("\n--- streaming over SSE: suggestion renders as it decodes")
	streamed, final := sseComplete(rest.URL, rest.Client(),
		serve.Request{Prompt: "Copy application config", Context: buffer})
	fmt.Printf("[%d deltas; replaced=%v; byte-identical=%v]\n",
		streamed, final.Replaced, !final.Replaced)

	fmt.Println("\n--- streaming over RPC frames")
	deltas := 0
	rpcFinal, err := rpc.PredictStream(
		serve.Request{Prompt: "Remove temporary files", Context: buffer},
		func(delta string) {
			deltas++
			fmt.Print(delta)
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[%d delta frames; replaced=%v]\n", deltas, rpcFinal.Replaced)

	fmt.Println("\nfinal playbook:")
	fmt.Println(strings.TrimRight(buffer, "\n"))
	fmt.Printf("\nserver handled %d predictions\n", srv.Requests())

	sessionAct()
}

// sessionAct demonstrates per-session prefix KV reuse: a transformer-backed
// model with sessions enabled answers a keystroke sequence — the user typing
// a task name character by character, each keystroke a full request — and
// every warm request re-steps only the tokens typed since the last one
// instead of re-priming the whole rendered prompt.
func sessionAct() {
	fmt.Println("\n== session act: per-keystroke completion on a transformer ==")
	fmt.Println("training a tiny transformer (the n-gram zoo holds no decode state)...")
	task := "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n"
	texts := []string{task, task, task, task}
	tok, err := tokenizer.Train(texts, 300)
	if err != nil {
		log.Fatal(err)
	}
	const ctx = 64
	nm, err := neural.NewModel(neural.Config{
		Vocab: tok.VocabSize(), Ctx: ctx, Dim: 32, Heads: 2, Layers: 2, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	nm.Train(dataset.PackFiles(tok, texts, ctx), neural.TrainConfig{Epochs: 120, LR: 3e-3, BatchSize: 4, Seed: 1})
	model := &wisdom.Model{
		Name:       "wisdom-neural-demo",
		Tok:        tok,
		LM:         &wisdom.NeuralLM{Model: nm},
		CtxWindow:  ctx,
		Style:      dataset.NameCompletion,
		MaxNewTask: 28,
	}
	model.EnableSessions(neural.SessionCacheConfig{})

	// No response cache: every keystroke is a distinct request anyway, and
	// the point here is the decode-state reuse underneath.
	srv := serve.NewServerWithOptions(model, model.Name, serve.Options{})
	rest := httptest.NewServer(srv.Handler())
	defer rest.Close()

	keystrokes := []string{"Insta", "Install ngi", "Install nginx"}
	for i, typed := range keystrokes {
		req := serve.Request{Prompt: typed}
		warm := restCompleteSession(rest.URL, rest.Client(), req, "editor-42")
		cold := restCompleteSession(rest.URL, rest.Client(), req, "")
		fmt.Printf("keystroke %d %-15q warm %6.2f ms  cold %6.2f ms  identical=%v\n",
			i+1, typed, warm.LatencyMS, cold.LatencyMS, warm.Suggestion == cold.Suggestion)
	}

	var stats serve.Stats
	resp, err := rest.Client().Get(rest.URL + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sessions: enabled=%v active=%d prefix-reuse=%.0f%%\n",
		stats.SessionsEnabled, stats.SessionsActive, 100*stats.SessionReuseRatio)
}

// restCompleteSession is restComplete with the session pinned through the
// X-Wisdom-Session header (empty sessionID sends a stateless request).
func restCompleteSession(url string, client *http.Client, req serve.Request, sessionID string) serve.Response {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	httpReq, err := http.NewRequest(http.MethodPost, url+"/v1/completions", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if sessionID != "" {
		httpReq.Header.Set(serve.SessionHeader, sessionID)
	}
	httpResp, err := client.Do(httpReq)
	if err != nil {
		log.Fatal(err)
	}
	defer httpResp.Body.Close()
	var out serve.Response
	if err := json.NewDecoder(httpResp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return out
}

// sseComplete drives one POST /v1/completions/stream exchange, printing
// delta text as the events arrive and returning the delta count plus the
// terminal done event's Response.
func sseComplete(url string, client *http.Client, req serve.Request) (int, serve.Response) {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	httpResp, err := client.Post(url+"/v1/completions/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		log.Fatalf("stream rejected: %s", httpResp.Status)
	}

	deltas := 0
	var final serve.Response
	event := ""
	sc := bufio.NewScanner(httpResp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "delta":
				var d struct {
					Text string `json:"text"`
				}
				if err := json.Unmarshal([]byte(data), &d); err != nil {
					log.Fatal(err)
				}
				deltas++
				fmt.Print(d.Text)
			case "done":
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					log.Fatal(err)
				}
				return deltas, final
			case "error":
				log.Fatalf("stream error event: %s", data)
			}
		}
	}
	log.Fatal("stream ended without a done event")
	return deltas, final
}

func restComplete(url string, client *http.Client, req serve.Request) serve.Response {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	httpResp, err := client.Post(url+"/v1/completions", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer httpResp.Body.Close()
	var out serve.Response
	if err := json.NewDecoder(httpResp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return out
}
