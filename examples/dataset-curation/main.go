// Dataset-curation walkthrough: the paper's data pipeline step by step —
// crawl simulation, exact-match deduplication at file level, the 80/10/10
// split, extraction of the four generation types, cross-split sample
// deduplication, and context packing with the separator token.
package main

import (
	"fmt"
	"log"

	"wisdom/internal/corpus"
	"wisdom/internal/dataset"
	"wisdom/internal/tokenizer"
)

func main() {
	fmt.Println("== dataset curation walkthrough ==")

	// 1. Crawl simulation: the Galaxy fine-tuning corpus.
	raw := corpus.Galaxy(42, 300)
	fmt.Printf("1. crawled %d Galaxy files\n", len(raw))
	kinds := map[corpus.Kind]int{}
	for _, f := range raw {
		kinds[f.Kind]++
	}
	for k, n := range kinds {
		fmt.Printf("   %-18s %d\n", k, n)
	}

	// 2. File-level exact-match dedup.
	files := dataset.DedupFiles(raw)
	fmt.Printf("2. %d files after exact-match dedup (-%d duplicates)\n", len(files), len(raw)-len(files))

	// 3. 80/10/10 split.
	split := dataset.SplitFiles(files, 1)
	fmt.Printf("3. split: %d train / %d valid / %d test files\n",
		len(split.Train), len(split.Valid), len(split.Test))

	// 4. Sample extraction per generation type.
	train := dataset.ExtractAll(split.Train)
	fmt.Printf("4. extracted %d training samples\n", len(train))
	for typ, n := range dataset.CountByType(train) {
		fmt.Printf("   %-10s %d\n", typ, n)
	}

	// 5. Cross-split sample dedup.
	tr, va, te := dataset.CrossSplitDedup(train,
		dataset.ExtractAll(split.Valid), dataset.ExtractAll(split.Test))
	fmt.Printf("5. after cross-split dedup: %d / %d / %d samples\n", len(tr), len(va), len(te))

	// 6. One rendered sample.
	if len(tr) > 0 {
		s := tr[0]
		fmt.Printf("6. first training sample (%s):\n", s.Type)
		fmt.Printf("--- model input ---\n%s", s.Input())
		fmt.Printf("--- expected completion ---\n%s", s.Target)
	}

	// 7. Pre-training context packing with the separator token.
	tok, err := tokenizer.Train(textsOf(files[:50]), 512)
	if err != nil {
		log.Fatal(err)
	}
	packed := dataset.PackFiles(tok, textsOf(files[:50]), 1024)
	total := 0
	for _, w := range packed {
		total += len(w)
	}
	fmt.Printf("7. packed 50 files into %d windows of <=1024 tokens (%d tokens total, %q separated)\n",
		len(packed), total, tokenizer.SepToken)
}

func textsOf(files []corpus.File) []string {
	out := make([]string, len(files))
	for i, f := range files {
		out[i] = f.Text
	}
	return out
}
