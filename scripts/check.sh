#!/bin/sh
# The repository's verification gate: formatting, static analysis, build,
# the full test suite under the race detector, a short fuzz smoke per fuzz
# target, and a coverage floor. Run from the repo root (or via `make check`).
#
# FUZZTIME=0 skips the fuzz smoke (local iteration); the default 10s per
# target matches the CI budget.
set -eu

cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"
# Statement-coverage floor for the -short suite. Raise it when coverage
# grows; never lower it to make a failing change pass.
COVER_FLOOR=78

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race -shuffle=on ./..."
# -shuffle randomises test order so inter-test state dependencies surface;
# a failure prints the seed to reproduce the order.
go test -race -shuffle=on ./...

echo "== bench smoke (continuous-batching kernels compile and run)"
go test ./internal/neural/ -run XXX -benchtime 100ms \
    -bench 'BenchmarkStepParallel|BenchmarkEngineMixed' >/dev/null

echo "== docs freshness (exported identifiers documented)"
go test -run '^TestDocGate$' -count=1 .

echo "== coverage floor (${COVER_FLOOR}%)"
go test -short -count=1 -coverprofile=coverage.out ./... >/dev/null
total=$(go tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
rm -f coverage.out
echo "total statement coverage: ${total}%"
awk -v got="$total" -v floor="$COVER_FLOOR" 'BEGIN {
    if (got + 0 < floor + 0) {
        printf "coverage %.1f%% is below the %.0f%% floor\n", got, floor > "/dev/stderr"
        exit 1
    }
}'

if [ "$FUZZTIME" != "0" ]; then
    echo "== fuzz smoke (${FUZZTIME} per target)"
    go test -run='^$' -fuzz='^FuzzParseYAML$' -fuzztime="$FUZZTIME" ./internal/yaml
    go test -run='^$' -fuzz='^FuzzDecodeFrame$' -fuzztime="$FUZZTIME" ./internal/serve
    go test -run='^$' -fuzz='^FuzzEncodeFrame$' -fuzztime="$FUZZTIME" ./internal/serve
    go test -run='^$' -fuzz='^FuzzDecodeStreamFrame$' -fuzztime="$FUZZTIME" ./internal/serve
    go test -run='^$' -fuzz='^FuzzAdminRequest$' -fuzztime="$FUZZTIME" ./internal/serve
    go test -run='^$' -fuzz='^FuzzEncode$' -fuzztime="$FUZZTIME" ./internal/tokenizer
    go test -run='^$' -fuzz='^FuzzRingLookup$' -fuzztime="$FUZZTIME" ./internal/router
fi

echo "OK"
