package ansible

import (
	"testing"
)

func TestValidateTaskOK(t *testing.T) {
	v := NewValidator()
	good := []string{
		"name: install nginx\nansible.builtin.apt:\n  name: nginx\n  state: present\n",
		"name: run\nansible.builtin.shell: echo hello\n", // free-form OK
		"ansible.builtin.debug:\n  msg: hi\n",            // name optional
		"name: copy\nansible.builtin.copy:\n  dest: /etc/motd\n  content: hi\n  mode: '0644'\n",
		"name: loop\nansible.builtin.user:\n  name: '{{ item }}'\n  state: present\nloop:\n  - alice\n  - bob\n",
		"name: cond\nansible.builtin.service:\n  name: nginx\n  state: started\nwhen: start_nginx | bool\nbecome: true\n",
		"name: templated choice\nansible.builtin.file:\n  path: /tmp/x\n  state: '{{ desired_state }}'\n",
		"name: unknown module\nmy.custom.thing:\n  anything: goes\n",
	}
	for _, src := range good {
		n := parseNode(t, src)
		if errs := v.ValidateTask(n); len(errs) != 0 {
			t.Errorf("ValidateTask(%q) = %v, want none", src, errs)
		}
	}
}

func TestValidateTaskBad(t *testing.T) {
	v := NewValidator()
	bad := map[string]string{
		"name: x\nansible.builtin.apt:\n  name: nginx\n  bogus_param: 1\n":          "unknown parameter",
		"name: x\nansible.builtin.apt: name=nginx state=present\n":                  "legacy string",
		"name: x\nansible.builtin.apt:\n  name: nginx\n  state: sideways\n":         "not one of the accepted choices",
		"name: x\nansible.builtin.copy:\n  src: a\n":                                "missing required parameter dest",
		"name: x\nansible.builtin.apt:\n  name: nginx\nfrobnicate: yes\n":           "unknown task keyword",
		"name: x\nansible.builtin.apt:\n  name: nginx\n  update_cache: sometimes\n": "expected a boolean",
		"name: x\nansible.builtin.user:\n  name: bob\n  uid: abc\n":                 "expected an integer",
		"name: x\nansible.builtin.apt:\n  name: nginx\nretries: many\n":             "expected an integer",
		"name: x\nansible.builtin.debug:\n  msg: hi\nlisten: restart\n":             "listen is only valid on handlers",
	}
	for src, wantSub := range bad {
		n := parseNode(t, src)
		errs := v.ValidateTask(n)
		if len(errs) == 0 {
			t.Errorf("ValidateTask(%q) passed, want error containing %q", src, wantSub)
			continue
		}
		found := false
		for _, e := range errs {
			if containsSub(e.Error(), wantSub) {
				found = true
			}
		}
		if !found {
			t.Errorf("ValidateTask(%q) = %v, want message containing %q", src, errs, wantSub)
		}
	}
}

func TestValidatePlaybookOK(t *testing.T) {
	v := NewValidator()
	src := `- name: Network Setup Playbook
  connection: ansible.netcommon.network_cli
  gather_facts: false
  hosts: all
  tasks:
    - name: Get config for VyOS devices
      vyos.vyos.vyos_facts:
        gather_subset: all
    - name: Update the hostname
      vyos.vyos.vyos_config:
        backup: yes
        lines:
          - set system host-name vyos-changed
`
	n := parseNode(t, src)
	if errs := v.ValidatePlaybook(n); len(errs) != 0 {
		t.Errorf("paper Fig.2 playbook rejected: %v", errs)
	}
}

func TestValidatePlaybookBad(t *testing.T) {
	v := NewValidator()
	bad := map[string]string{
		"- tasks:\n    - ansible.builtin.debug:\n        msg: hi\n": "missing required key hosts",
		"- hosts: all\n": "no tasks, roles or handlers",
		"- hosts: all\n  bogus_keyword: 1\n  tasks:\n    - ansible.builtin.debug:\n        msg: x\n": "unknown play keyword",
		"- hosts: all\n  tasks: not-a-list\n":                                                        "must be a sequence of tasks",
		"key: value\n":                                                                               "must be a sequence",
	}
	for src, wantSub := range bad {
		n := parseNode(t, src)
		errs := v.ValidatePlaybook(n)
		found := false
		for _, e := range errs {
			if containsSub(e.Error(), wantSub) {
				found = true
			}
		}
		if !found {
			t.Errorf("ValidatePlaybook(%q) = %v, want %q", src, errs, wantSub)
		}
	}
}

func TestValidateBlocks(t *testing.T) {
	v := NewValidator()
	src := `name: install and verify
block:
  - name: install
    ansible.builtin.apt:
      name: nginx
      state: present
rescue:
  - name: report
    ansible.builtin.debug:
      msg: install failed
always:
  - name: cleanup
    ansible.builtin.file:
      path: /tmp/lock
      state: absent
when: ansible_os_family == 'Debian'
`
	n := parseNode(t, src)
	if errs := v.ValidateTask(n); len(errs) != 0 {
		t.Errorf("block task rejected: %v", errs)
	}

	badSrc := "block: not-a-list\n"
	n = parseNode(t, badSrc)
	if errs := v.ValidateTask(n); len(errs) == 0 {
		t.Error("scalar block accepted")
	}
}

func TestValidateHandlersListen(t *testing.T) {
	v := NewValidator()
	src := `- hosts: all
  tasks:
    - name: t
      ansible.builtin.debug:
        msg: x
  handlers:
    - name: restart nginx
      ansible.builtin.service:
        name: nginx
        state: restarted
      listen: restart web stack
`
	n := parseNode(t, src)
	if errs := v.ValidatePlaybook(n); len(errs) != 0 {
		t.Errorf("listen on handler rejected: %v", errs)
	}
}

func TestValidateTaskList(t *testing.T) {
	v := NewValidator()
	src := `- name: Ensure apache is at the latest version
  ansible.builtin.yum:
    name: httpd
    state: latest
- name: Write the apache config file
  ansible.builtin.template:
    src: /srv/httpd.j2
    dest: /etc/httpd.conf
`
	n := parseNode(t, src)
	if errs := v.ValidateTaskList(n); len(errs) != 0 {
		t.Errorf("paper Fig.2c task list rejected: %v", errs)
	}
	if !v.Valid(n) {
		t.Error("Valid() = false for good task list")
	}
	if v.Valid(parseNode(t, "just a string\n")) {
		t.Error("Valid() = true for scalar")
	}
}

func TestValidateRoles(t *testing.T) {
	v := NewValidator()
	src := `- hosts: web
  roles:
    - common
    - role: nginx
      vars:
        port: 80
`
	n := parseNode(t, src)
	if errs := v.ValidatePlaybook(n); len(errs) != 0 {
		t.Errorf("roles play rejected: %v", errs)
	}
	bad := parseNode(t, "- hosts: web\n  roles:\n    - 42\n")
	if errs := v.ValidatePlaybook(bad); len(errs) == 0 {
		t.Error("numeric role accepted")
	}
}

func containsSub(s, sub string) bool {
	return len(sub) == 0 || len(s) >= len(sub) && contains(s, sub)
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMutuallyExclusiveParams(t *testing.T) {
	v := NewValidator()
	// copy with both src and content: rejected.
	bad := parseNode(t, "name: x\nansible.builtin.copy:\n  dest: /etc/motd\n  src: motd\n  content: hi\n")
	found := false
	for _, e := range v.ValidateTask(bad) {
		if contains(e.Error(), "mutually exclusive") {
			found = true
		}
	}
	if !found {
		t.Error("src+content accepted on copy")
	}
	// debug with both msg and var: rejected.
	bad = parseNode(t, "ansible.builtin.debug:\n  msg: hi\n  var: result\n")
	if len(v.ValidateTask(bad)) == 0 {
		t.Error("msg+var accepted on debug")
	}
	// lineinfile with both insertafter and insertbefore: rejected.
	bad = parseNode(t, "ansible.builtin.lineinfile:\n  path: /etc/hosts\n  line: x\n  insertafter: EOF\n  insertbefore: BOF\n")
	if len(v.ValidateTask(bad)) == 0 {
		t.Error("insertafter+insertbefore accepted")
	}
}

func TestRequiredOneOfParams(t *testing.T) {
	v := NewValidator()
	// copy with neither src nor content: rejected.
	bad := parseNode(t, "name: x\nansible.builtin.copy:\n  dest: /etc/motd\n  mode: '0644'\n")
	found := false
	for _, e := range v.ValidateTask(bad) {
		if contains(e.Error(), "is required") {
			found = true
		}
	}
	if !found {
		t.Error("copy without src/content accepted")
	}
	// With exactly one of them: accepted.
	good := parseNode(t, "name: x\nansible.builtin.copy:\n  dest: /etc/motd\n  content: hi\n")
	if errs := v.ValidateTask(good); len(errs) != 0 {
		t.Errorf("valid copy rejected: %v", errs)
	}
}
