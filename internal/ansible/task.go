package ansible

import (
	"fmt"
	"strings"

	"wisdom/internal/yaml"
)

// Task is the analysed view of one task mapping: its module, arguments and
// execution keywords, referencing (not copying) the underlying YAML nodes.
type Task struct {
	// Node is the task's mapping node.
	Node *yaml.Node
	// Name is the value of the "name" field, empty when absent.
	Name string
	// ModuleKey is the module key exactly as written ("apt" or
	// "ansible.builtin.apt"); empty for block tasks.
	ModuleKey string
	// FQCN is the canonical module name; equals ModuleKey when unknown.
	FQCN string
	// Module is the catalogue entry, nil when the module is unknown.
	Module *Module
	// Args is the module's argument node: a mapping, or a scalar for
	// free-form / legacy "k=v" usage.
	Args *yaml.Node
	// IsBlock marks tasks defined by block/rescue/always sections.
	IsBlock bool
}

// AnalyzeTask classifies the keys of a task mapping. It is tolerant: an
// unknown non-keyword key containing a dot (or the single unknown non-keyword
// key) is taken as the module, matching how Ansible itself resolves actions.
func AnalyzeTask(n *yaml.Node, reg *Registry) (*Task, error) {
	if n == nil || n.Kind != yaml.MappingNode {
		return nil, fmt.Errorf("ansible: task is not a mapping")
	}
	if reg == nil {
		reg = DefaultRegistry()
	}
	t := &Task{Node: n}
	if name := n.Get("name"); name != nil && name.Kind == yaml.ScalarNode {
		t.Name = name.Value
	}
	var unknown []int
	for i, k := range n.Keys {
		if k.Kind != yaml.ScalarNode {
			return nil, fmt.Errorf("ansible: non-scalar task key")
		}
		key := k.Value
		switch {
		case IsBlockKeyword(key):
			t.IsBlock = true
		case IsTaskKeyword(key):
			// execution keyword
		case reg.IsModule(key):
			if t.ModuleKey != "" {
				return nil, fmt.Errorf("ansible: task has two module keys: %s and %s", t.ModuleKey, key)
			}
			t.ModuleKey = key
			t.Args = n.Values[i]
		default:
			unknown = append(unknown, i)
		}
	}
	if t.IsBlock {
		if t.ModuleKey != "" {
			return nil, fmt.Errorf("ansible: block task also names module %s", t.ModuleKey)
		}
		return t, nil
	}
	// Resolve a module among unknown keys when none matched the catalogue.
	if t.ModuleKey == "" {
		for _, i := range unknown {
			key := n.Keys[i].Value
			if strings.Contains(key, ".") || len(unknown) == 1 {
				t.ModuleKey = key
				t.Args = n.Values[i]
				break
			}
		}
	}
	if t.ModuleKey == "" {
		return nil, fmt.Errorf("ansible: task has no module key")
	}
	t.FQCN = reg.Canonical(t.ModuleKey)
	t.Module, _ = reg.Lookup(t.ModuleKey)
	return t, nil
}

// Keywords returns the task's execution keyword entries (excluding name and
// the module key) in document order.
func (t *Task) Keywords() (keys []string, values []*yaml.Node) {
	for i, k := range t.Node.Keys {
		key := k.Value
		if key == "name" || key == t.ModuleKey {
			continue
		}
		if IsTaskKeyword(key) || IsBlockKeyword(key) {
			keys = append(keys, key)
			values = append(values, t.Node.Values[i])
		}
	}
	return keys, values
}

// ParseKV parses the legacy "k1=v1 k2=v2" module-argument syntax into an
// ordered list of pairs. Values may be single- or double-quoted to contain
// spaces. Tokens without "=" are returned in freeForm (joined by spaces), as
// for command/shell where the command itself is free text.
func ParseKV(s string) (pairs [][2]string, freeForm string) {
	var free []string
	for _, tok := range splitKVTokens(s) {
		eq := strings.IndexByte(tok, '=')
		if eq <= 0 {
			free = append(free, tok)
			continue
		}
		key, val := tok[:eq], tok[eq+1:]
		if !isIdentifier(key) {
			free = append(free, tok)
			continue
		}
		val = unquoteKV(val)
		pairs = append(pairs, [2]string{key, val})
	}
	return pairs, strings.Join(free, " ")
}

// splitKVTokens splits on spaces outside quotes.
func splitKVTokens(s string) []string {
	var toks []string
	var cur strings.Builder
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\'' && !inDouble:
			inSingle = !inSingle
			cur.WriteByte(c)
		case c == '"' && !inSingle:
			inDouble = !inDouble
			cur.WriteByte(c)
		case c == ' ' && !inSingle && !inDouble:
			if cur.Len() > 0 {
				toks = append(toks, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		toks = append(toks, cur.String())
	}
	return toks
}

func unquoteKV(v string) string {
	if len(v) >= 2 {
		if (v[0] == '\'' && v[len(v)-1] == '\'') || (v[0] == '"' && v[len(v)-1] == '"') {
			return v[1 : len(v)-1]
		}
	}
	return v
}

func isIdentifier(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || (i > 0 && c >= '0' && c <= '9') {
			continue
		}
		return false
	}
	return true
}

// NormalizeTask returns a normalised deep copy of a task node, applying the
// two normalisations the paper's Ansible Aware metric specifies:
//
//   - module names are replaced by their FQCN (copy -> ansible.builtin.copy);
//   - legacy "k1=v1 k2=v2" argument strings are converted to a dict; for
//     free-form modules the residual command text becomes the "cmd"
//     parameter (or "_raw_params" when the module has no cmd parameter).
//
// Nodes that do not analyse as tasks are returned as plain deep copies.
func NormalizeTask(n *yaml.Node, reg *Registry) *yaml.Node {
	if reg == nil {
		reg = DefaultRegistry()
	}
	t, err := AnalyzeTask(n, reg)
	if err != nil {
		return n.Clone()
	}
	out := yaml.Mapping()
	out.Line, out.Col = n.Line, n.Col
	for i, k := range n.Keys {
		key, val := k.Value, n.Values[i]
		if t.IsBlock && IsBlockKeyword(key) {
			// Recursively normalise the tasks inside block sections.
			section := yaml.Sequence()
			if val != nil && val.Kind == yaml.SequenceNode {
				for _, item := range val.Items {
					section.Items = append(section.Items, NormalizeTask(item, reg))
				}
			}
			out.Set(key, section)
			continue
		}
		if key != t.ModuleKey {
			out.Set(key, val.Clone())
			continue
		}
		out.Set(t.FQCN, normalizeArgs(t, val))
	}
	return out
}

// normalizeArgs converts legacy string arguments into a parameter mapping.
func normalizeArgs(t *Task, val *yaml.Node) *yaml.Node {
	if val == nil || val.Kind != yaml.ScalarNode || val.Tag != yaml.StrTag {
		return val.Clone()
	}
	pairs, free := ParseKV(val.Value)
	freeForm := t.Module != nil && t.Module.FreeForm
	if len(pairs) == 0 && freeForm {
		// Pure free-form command: canonical form keeps the scalar.
		return val.Clone()
	}
	if len(pairs) == 0 {
		return val.Clone()
	}
	m := yaml.Mapping()
	if free != "" {
		key := "_raw_params"
		if t.Module != nil && t.Module.Param("cmd") != nil {
			key = "cmd"
		}
		m.Set(key, yaml.ScalarTyped(free, yaml.StrTag, yaml.Plain))
	}
	for _, kv := range pairs {
		m.Set(kv[0], yaml.Scalar(kv[1]))
	}
	return m
}

// NormalizePlaybook returns a normalised deep copy of a playbook node,
// normalising every task in tasks/pre_tasks/post_tasks/handlers sections of
// every play.
func NormalizePlaybook(n *yaml.Node, reg *Registry) *yaml.Node {
	if n == nil || n.Kind != yaml.SequenceNode {
		return n.Clone()
	}
	out := yaml.Sequence()
	for _, play := range n.Items {
		if play.Kind != yaml.MappingNode {
			out.Items = append(out.Items, play.Clone())
			continue
		}
		np := yaml.Mapping()
		for i, k := range play.Keys {
			key, val := k.Value, play.Values[i]
			if isTaskSection(key) && val != nil && val.Kind == yaml.SequenceNode {
				section := yaml.Sequence()
				for _, task := range val.Items {
					section.Items = append(section.Items, NormalizeTask(task, reg))
				}
				np.Set(key, section)
				continue
			}
			np.Set(key, val.Clone())
		}
		out.Items = append(out.Items, np)
	}
	return out
}

// isTaskSection reports whether a play key holds a list of tasks.
func isTaskSection(key string) bool {
	switch key {
	case "tasks", "pre_tasks", "post_tasks", "handlers":
		return true
	}
	return false
}

// LooksLikePlaybook reports whether a parsed document is shaped like a
// playbook: a sequence whose mapping items carry play keywords such as hosts.
func LooksLikePlaybook(n *yaml.Node) bool {
	if n == nil || n.Kind != yaml.SequenceNode || len(n.Items) == 0 {
		return false
	}
	for _, item := range n.Items {
		if item.Kind != yaml.MappingNode {
			return false
		}
		if !item.Has("hosts") && !item.Has("import_playbook") {
			return false
		}
	}
	return true
}

// LooksLikeTaskList reports whether a parsed document is shaped like a role
// task file: a sequence of task mappings (and not a playbook).
func LooksLikeTaskList(n *yaml.Node) bool {
	if n == nil || n.Kind != yaml.SequenceNode || len(n.Items) == 0 {
		return false
	}
	if LooksLikePlaybook(n) {
		return false
	}
	for _, item := range n.Items {
		if item.Kind != yaml.MappingNode || item.Len() == 0 {
			return false
		}
	}
	return true
}
