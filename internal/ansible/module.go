// Package ansible models the Ansible language: playbooks, plays, tasks, the
// module catalogue with fully-qualified collection names (FQCN), play/task
// keywords, legacy "k=v" free-form syntax, and the strict lint-style schema
// used by the Schema Correct metric from the paper.
package ansible

import (
	"sort"
	"strings"
)

// ParamType describes the expected YAML shape of a module parameter or
// keyword value.
type ParamType int

const (
	// StrParam accepts any scalar rendered as text.
	StrParam ParamType = iota
	// IntParam accepts integer scalars.
	IntParam
	// BoolParam accepts boolean scalars (including YAML 1.1 yes/no forms).
	BoolParam
	// ListParam accepts sequences (or a single scalar promoted to one).
	ListParam
	// DictParam accepts mappings.
	DictParam
	// PathParam accepts filesystem path strings.
	PathParam
	// AnyParam accepts any node.
	AnyParam
)

// ParamSpec describes one parameter of a module.
type ParamSpec struct {
	Name     string
	Type     ParamType
	Required bool
	// Choices restricts string values when non-empty.
	Choices []string
	// Aliases are alternative accepted spellings (e.g. dest/path).
	Aliases []string
}

// Module describes one entry of the module catalogue.
type Module struct {
	// FQCN is the fully qualified collection name, e.g.
	// "ansible.builtin.apt".
	FQCN string
	// Description is a short imperative summary used by the corpus
	// generator to build natural "name" fields.
	Description string
	// Params lists the accepted parameters. A module with UnknownParams
	// set additionally accepts arbitrary parameters (e.g. set_fact).
	Params []ParamSpec
	// FreeForm marks modules that accept a free-form command string
	// (command, shell, raw, script) instead of / besides a parameter dict.
	FreeForm bool
	// UnknownParams marks modules accepting arbitrary extra parameters.
	UnknownParams bool
	// EquivGroup names the near-equivalence class used by the Ansible
	// Aware metric: modules in the same group (e.g. apt/dnf/yum/package)
	// receive partial credit when exchanged.
	EquivGroup string
	// MutuallyExclusive lists parameter groups of which at most one member
	// may be set (e.g. copy's src vs content).
	MutuallyExclusive [][]string
	// RequiredOneOf lists parameter groups of which at least one member
	// must be set.
	RequiredOneOf [][]string
}

// ShortName returns the final component of the module FQCN.
func (m *Module) ShortName() string {
	i := strings.LastIndexByte(m.FQCN, '.')
	if i < 0 {
		return m.FQCN
	}
	return m.FQCN[i+1:]
}

// Collection returns the collection prefix of the FQCN, e.g.
// "ansible.builtin".
func (m *Module) Collection() string {
	i := strings.LastIndexByte(m.FQCN, '.')
	if i < 0 {
		return ""
	}
	return m.FQCN[:i]
}

// Param returns the spec for a parameter name or alias, or nil.
func (m *Module) Param(name string) *ParamSpec {
	for i := range m.Params {
		p := &m.Params[i]
		if p.Name == name {
			return p
		}
		for _, a := range p.Aliases {
			if a == name {
				return p
			}
		}
	}
	return nil
}

// p is a compact ParamSpec constructor used by the catalogue below.
func p(name string, t ParamType) ParamSpec { return ParamSpec{Name: name, Type: t} }

func preq(name string, t ParamType) ParamSpec {
	return ParamSpec{Name: name, Type: t, Required: true}
}

func pcho(name string, choices ...string) ParamSpec {
	return ParamSpec{Name: name, Type: StrParam, Choices: choices}
}

var stateAbsent = pcho("state", "present", "absent")
var statePkg = pcho("state", "present", "absent", "latest")
var stateSvc = pcho("state", "started", "stopped", "restarted", "reloaded")

// catalogue is the module registry. It covers the modules that dominate
// public Ansible content (and therefore the synthetic Galaxy corpus): package
// management, services, files, users, source control, networking and a slice
// of popular community collections.
var catalogue = []Module{
	// --- package management (equivalence group "package") ---
	{FQCN: "ansible.builtin.apt", Description: "manage apt packages", EquivGroup: "package", Params: []ParamSpec{
		p("name", ListParam), statePkg, p("update_cache", BoolParam), p("cache_valid_time", IntParam),
		p("install_recommends", BoolParam), p("upgrade", StrParam), p("force", BoolParam), p("autoremove", BoolParam)}},
	{FQCN: "ansible.builtin.yum", Description: "manage yum packages", EquivGroup: "package", Params: []ParamSpec{
		p("name", ListParam), statePkg, p("enablerepo", StrParam), p("disablerepo", StrParam),
		p("update_cache", BoolParam), p("disable_gpg_check", BoolParam)}},
	{FQCN: "ansible.builtin.dnf", Description: "manage dnf packages", EquivGroup: "package", Params: []ParamSpec{
		p("name", ListParam), statePkg, p("enablerepo", StrParam), p("update_cache", BoolParam),
		p("disable_gpg_check", BoolParam)}},
	{FQCN: "ansible.builtin.package", Description: "manage packages with the system package manager", EquivGroup: "package", Params: []ParamSpec{
		preq("name", ListParam), statePkg, p("use", StrParam)}},
	{FQCN: "ansible.builtin.pip", Description: "manage python packages", EquivGroup: "package", Params: []ParamSpec{
		p("name", ListParam), statePkg, p("requirements", PathParam), p("virtualenv", PathParam),
		p("executable", PathParam), p("extra_args", StrParam)}},
	{FQCN: "community.general.zypper", Description: "manage zypper packages", EquivGroup: "package", Params: []ParamSpec{
		preq("name", ListParam), statePkg, p("update_cache", BoolParam), p("disable_recommends", BoolParam)}},
	{FQCN: "community.general.pacman", Description: "manage pacman packages", EquivGroup: "package", Params: []ParamSpec{
		p("name", ListParam), statePkg, p("update_cache", BoolParam), p("force", BoolParam)}},
	{FQCN: "community.general.homebrew", Description: "manage homebrew packages", EquivGroup: "package", Params: []ParamSpec{
		p("name", ListParam), statePkg, p("update_homebrew", BoolParam)}},
	{FQCN: "community.general.npm", Description: "manage node.js packages", EquivGroup: "package", Params: []ParamSpec{
		p("name", StrParam), stateAbsent, p("global", BoolParam), p("path", PathParam), p("version", StrParam)}},

	// --- services (group "service") ---
	{FQCN: "ansible.builtin.service", Description: "manage services", EquivGroup: "service", Params: []ParamSpec{
		preq("name", StrParam), stateSvc, p("enabled", BoolParam), p("daemon_reload", BoolParam), p("pattern", StrParam)}},
	{FQCN: "ansible.builtin.systemd", Description: "manage systemd units", EquivGroup: "service", Params: []ParamSpec{
		p("name", StrParam), stateSvc, p("enabled", BoolParam), p("daemon_reload", BoolParam),
		p("masked", BoolParam), pcho("scope", "system", "user", "global")}},
	{FQCN: "community.general.supervisorctl", Description: "manage supervisord programs", EquivGroup: "service", Params: []ParamSpec{
		preq("name", StrParam), stateSvc, p("config", PathParam)}},

	// --- commands (group "command") ---
	{FQCN: "ansible.builtin.command", Description: "run a command", EquivGroup: "command", FreeForm: true, Params: []ParamSpec{
		p("cmd", StrParam), p("argv", ListParam), p("chdir", PathParam), p("creates", PathParam),
		p("removes", PathParam), p("stdin", StrParam)}},
	{FQCN: "ansible.builtin.shell", Description: "run a shell command", EquivGroup: "command", FreeForm: true, Params: []ParamSpec{
		p("cmd", StrParam), p("chdir", PathParam), p("creates", PathParam), p("removes", PathParam),
		p("executable", PathParam)}},
	{FQCN: "ansible.builtin.raw", Description: "run a raw command over ssh", EquivGroup: "command", FreeForm: true, Params: []ParamSpec{
		p("executable", PathParam)}},
	{FQCN: "ansible.builtin.script", Description: "run a local script on the remote node", EquivGroup: "command", FreeForm: true, Params: []ParamSpec{
		p("cmd", StrParam), p("chdir", PathParam), p("creates", PathParam), p("executable", PathParam)}},

	// --- files (groups "copy", "file") ---
	{FQCN: "ansible.builtin.copy", Description: "copy a file to the remote node", EquivGroup: "copy",
		MutuallyExclusive: [][]string{{"src", "content"}},
		RequiredOneOf:     [][]string{{"src", "content"}},
		Params: []ParamSpec{
			preq("dest", PathParam), p("src", PathParam), p("content", StrParam), p("owner", StrParam),
			p("group", StrParam), p("mode", StrParam), p("backup", BoolParam), p("remote_src", BoolParam),
			p("validate", StrParam), p("force", BoolParam)}},
	{FQCN: "ansible.builtin.template", Description: "render a template to the remote node", EquivGroup: "copy", Params: []ParamSpec{
		preq("src", PathParam), preq("dest", PathParam), p("owner", StrParam), p("group", StrParam),
		p("mode", StrParam), p("backup", BoolParam), p("validate", StrParam), p("trim_blocks", BoolParam)}},
	{FQCN: "ansible.builtin.file", Description: "manage file and directory properties", EquivGroup: "file", Params: []ParamSpec{
		preq("path", PathParam), pcho("state", "file", "directory", "link", "hard", "touch", "absent"),
		p("owner", StrParam), p("group", StrParam), p("mode", StrParam), p("src", PathParam),
		p("recurse", BoolParam), p("force", BoolParam)}},
	{FQCN: "ansible.builtin.lineinfile", Description: "manage lines in a file", EquivGroup: "file",
		MutuallyExclusive: [][]string{{"insertafter", "insertbefore"}},
		Params: []ParamSpec{
			preq("path", PathParam), p("line", StrParam), p("regexp", StrParam), stateAbsent,
			p("insertafter", StrParam), p("insertbefore", StrParam), p("create", BoolParam), p("backup", BoolParam),
			p("owner", StrParam), p("group", StrParam), p("mode", StrParam)}},
	{FQCN: "ansible.builtin.blockinfile", Description: "manage a block of lines in a file", EquivGroup: "file", Params: []ParamSpec{
		preq("path", PathParam), p("block", StrParam), p("marker", StrParam), stateAbsent,
		p("insertafter", StrParam), p("create", BoolParam), p("backup", BoolParam)}},
	{FQCN: "ansible.builtin.stat", Description: "get file status", EquivGroup: "file", Params: []ParamSpec{
		preq("path", PathParam), p("follow", BoolParam), p("get_checksum", BoolParam)}},
	{FQCN: "ansible.builtin.fetch", Description: "fetch a file from the remote node", EquivGroup: "copy", Params: []ParamSpec{
		preq("src", PathParam), preq("dest", PathParam), p("flat", BoolParam), p("fail_on_missing", BoolParam)}},
	{FQCN: "ansible.builtin.unarchive", Description: "extract an archive on the remote node", EquivGroup: "copy", Params: []ParamSpec{
		preq("src", PathParam), preq("dest", PathParam), p("remote_src", BoolParam), p("creates", PathParam),
		p("owner", StrParam), p("group", StrParam), p("mode", StrParam)}},
	{FQCN: "ansible.posix.synchronize", Description: "synchronize files with rsync", EquivGroup: "copy", Params: []ParamSpec{
		preq("src", PathParam), preq("dest", PathParam), p("delete", BoolParam), p("recursive", BoolParam),
		pcho("mode", "push", "pull"), p("rsync_opts", ListParam)}},

	// --- accounts ---
	{FQCN: "ansible.builtin.user", Description: "manage user accounts", Params: []ParamSpec{
		preq("name", StrParam), stateAbsent, p("uid", IntParam), p("group", StrParam), p("groups", ListParam),
		p("shell", PathParam), p("home", PathParam), p("createhome", BoolParam), p("password", StrParam),
		p("append", BoolParam), p("system", BoolParam), p("comment", StrParam)}},
	{FQCN: "ansible.builtin.group", Description: "manage groups", Params: []ParamSpec{
		preq("name", StrParam), stateAbsent, p("gid", IntParam), p("system", BoolParam)}},
	{FQCN: "ansible.posix.authorized_key", Description: "manage ssh authorized keys", Params: []ParamSpec{
		preq("user", StrParam), preq("key", StrParam), stateAbsent, p("exclusive", BoolParam),
		p("manage_dir", BoolParam), p("path", PathParam)}},
	{FQCN: "ansible.builtin.known_hosts", Description: "manage ssh known hosts", Params: []ParamSpec{
		preq("name", StrParam), p("key", StrParam), stateAbsent, p("path", PathParam)}},
	{FQCN: "community.general.htpasswd", Description: "manage htpasswd entries", Params: []ParamSpec{
		preq("path", PathParam), preq("name", StrParam), p("password", StrParam), stateAbsent,
		p("owner", StrParam), p("group", StrParam), p("mode", StrParam)}},

	// --- source control / downloads ---
	{FQCN: "ansible.builtin.git", Description: "manage git checkouts", Params: []ParamSpec{
		preq("repo", StrParam), preq("dest", PathParam), p("version", StrParam), p("update", BoolParam),
		p("force", BoolParam), p("depth", IntParam), p("accept_hostkey", BoolParam)}},
	{FQCN: "ansible.builtin.get_url", Description: "download a file over http", Params: []ParamSpec{
		preq("url", StrParam), preq("dest", PathParam), p("mode", StrParam), p("owner", StrParam),
		p("group", StrParam), p("checksum", StrParam), p("timeout", IntParam), p("validate_certs", BoolParam),
		p("force", BoolParam)}},
	{FQCN: "ansible.builtin.uri", Description: "interact with web services", Params: []ParamSpec{
		preq("url", StrParam), pcho("method", "GET", "POST", "PUT", "DELETE", "PATCH", "HEAD"),
		p("body", AnyParam), pcho("body_format", "json", "form-urlencoded", "raw"), p("status_code", ListParam),
		p("return_content", BoolParam), p("headers", DictParam), p("timeout", IntParam), p("validate_certs", BoolParam)}},

	// --- system configuration ---
	{FQCN: "ansible.builtin.cron", Description: "manage cron entries", Params: []ParamSpec{
		preq("name", StrParam), p("job", StrParam), p("minute", StrParam), p("hour", StrParam),
		p("day", StrParam), p("month", StrParam), p("weekday", StrParam), p("user", StrParam),
		stateAbsent, pcho("special_time", "reboot", "hourly", "daily", "weekly", "monthly", "yearly", "annually")}},
	{FQCN: "ansible.posix.mount", Description: "manage mount points", Params: []ParamSpec{
		preq("path", PathParam), p("src", StrParam), p("fstype", StrParam), p("opts", StrParam),
		pcho("state", "mounted", "unmounted", "present", "absent", "remounted")}},
	{FQCN: "ansible.builtin.hostname", Description: "set the system hostname", Params: []ParamSpec{
		preq("name", StrParam), p("use", StrParam)}},
	{FQCN: "ansible.builtin.reboot", Description: "reboot the remote node", Params: []ParamSpec{
		p("reboot_timeout", IntParam), p("msg", StrParam), p("pre_reboot_delay", IntParam),
		p("post_reboot_delay", IntParam), p("test_command", StrParam)}},
	{FQCN: "ansible.builtin.wait_for", Description: "wait for a condition", Params: []ParamSpec{
		p("host", StrParam), p("port", IntParam), p("path", PathParam), p("timeout", IntParam),
		p("delay", IntParam), pcho("state", "started", "stopped", "present", "absent", "drained"),
		p("search_regex", StrParam)}},
	{FQCN: "ansible.posix.sysctl", Description: "manage sysctl settings", Params: []ParamSpec{
		preq("name", StrParam), p("value", StrParam), stateAbsent, p("reload", BoolParam),
		p("sysctl_file", PathParam), p("sysctl_set", BoolParam)}},
	{FQCN: "ansible.posix.firewalld", Description: "manage firewalld rules", Params: []ParamSpec{
		p("service", StrParam), p("port", StrParam), p("zone", StrParam), p("permanent", BoolParam),
		p("immediate", BoolParam), pcho("state", "enabled", "disabled", "present", "absent"),
		p("rich_rule", StrParam), p("source", StrParam)}},
	{FQCN: "community.general.ufw", Description: "manage ufw firewall rules", Params: []ParamSpec{
		pcho("rule", "allow", "deny", "limit", "reject"), p("port", StrParam), p("proto", StrParam),
		pcho("state", "enabled", "disabled", "reloaded", "reset"), pcho("direction", "in", "out", "incoming", "outgoing"),
		p("from_ip", StrParam), pcho("default", "allow", "deny", "reject")}},
	{FQCN: "ansible.builtin.iptables", Description: "manage iptables rules", Params: []ParamSpec{
		p("chain", StrParam), p("protocol", StrParam), p("destination_port", StrParam),
		pcho("jump", "ACCEPT", "DROP", "REJECT", "LOG"), p("source", StrParam), p("comment", StrParam),
		pcho("state", "present", "absent"), p("table", StrParam)}},
	{FQCN: "community.general.timezone", Description: "set the system timezone", Params: []ParamSpec{
		preq("name", StrParam), p("hwclock", StrParam)}},
	{FQCN: "community.general.locale_gen", Description: "manage locales", Params: []ParamSpec{
		preq("name", StrParam), stateAbsent}},
	{FQCN: "community.general.modprobe", Description: "manage kernel modules", Params: []ParamSpec{
		preq("name", StrParam), stateAbsent, p("params", StrParam)}},
	{FQCN: "community.general.alternatives", Description: "manage alternative symlinks", Params: []ParamSpec{
		preq("name", StrParam), preq("path", PathParam), p("link", PathParam), p("priority", IntParam)}},
	{FQCN: "ansible.posix.seboolean", Description: "manage selinux booleans", Params: []ParamSpec{
		preq("name", StrParam), preq("state", BoolParam), p("persistent", BoolParam)}},
	{FQCN: "ansible.posix.selinux", Description: "configure selinux mode and policy", Params: []ParamSpec{
		pcho("state", "enforcing", "permissive", "disabled"), p("policy", StrParam)}},

	// --- repositories ---
	{FQCN: "ansible.builtin.apt_repository", Description: "manage apt repositories", Params: []ParamSpec{
		preq("repo", StrParam), stateAbsent, p("filename", StrParam), p("update_cache", BoolParam)}},
	{FQCN: "ansible.builtin.apt_key", Description: "manage apt keys", Params: []ParamSpec{
		p("url", StrParam), p("id", StrParam), p("keyserver", StrParam), stateAbsent, p("keyring", PathParam)}},
	{FQCN: "ansible.builtin.yum_repository", Description: "manage yum repositories", Params: []ParamSpec{
		preq("name", StrParam), p("description", StrParam), p("baseurl", StrParam), p("gpgcheck", BoolParam),
		p("gpgkey", StrParam), p("enabled", BoolParam), stateAbsent}},

	// --- control flow / facts ---
	{FQCN: "ansible.builtin.debug", Description: "print a debug message",
		MutuallyExclusive: [][]string{{"msg", "var"}},
		Params: []ParamSpec{
			p("msg", StrParam), p("var", StrParam), p("verbosity", IntParam)}},
	{FQCN: "ansible.builtin.set_fact", Description: "set host facts", UnknownParams: true, Params: []ParamSpec{
		p("cacheable", BoolParam)}},
	{FQCN: "ansible.builtin.assert", Description: "assert expressions are true", Params: []ParamSpec{
		preq("that", ListParam), p("fail_msg", StrParam), p("success_msg", StrParam), p("quiet", BoolParam)}},
	{FQCN: "ansible.builtin.fail", Description: "fail with a message", Params: []ParamSpec{
		p("msg", StrParam)}},
	{FQCN: "ansible.builtin.meta", Description: "execute ansible meta actions", FreeForm: true, Params: []ParamSpec{}},
	{FQCN: "ansible.builtin.setup", Description: "gather facts", Params: []ParamSpec{
		p("gather_subset", ListParam), p("filter", StrParam), p("gather_timeout", IntParam)}},
	{FQCN: "ansible.builtin.include_tasks", Description: "include a task list", FreeForm: true, Params: []ParamSpec{
		p("file", PathParam), p("apply", DictParam)}},
	{FQCN: "ansible.builtin.import_tasks", Description: "import a task list", FreeForm: true, Params: []ParamSpec{
		p("file", PathParam)}},
	{FQCN: "ansible.builtin.include_role", Description: "include a role", Params: []ParamSpec{
		preq("name", StrParam), p("tasks_from", StrParam), p("vars_from", StrParam), p("public", BoolParam)}},
	{FQCN: "ansible.builtin.import_role", Description: "import a role", Params: []ParamSpec{
		preq("name", StrParam), p("tasks_from", StrParam)}},
	{FQCN: "ansible.builtin.include_vars", Description: "include variables from a file", FreeForm: true, Params: []ParamSpec{
		p("file", PathParam), p("name", StrParam), p("dir", PathParam)}},
	{FQCN: "ansible.builtin.pause", Description: "pause playbook execution", Params: []ParamSpec{
		p("seconds", IntParam), p("minutes", IntParam), p("prompt", StrParam)}},
	{FQCN: "ansible.builtin.add_host", Description: "add a host to the inventory", UnknownParams: true, Params: []ParamSpec{
		preq("name", StrParam), p("groups", ListParam)}},

	// --- databases ---
	{FQCN: "community.mysql.mysql_db", Description: "manage mysql databases", Params: []ParamSpec{
		preq("name", StrParam), pcho("state", "present", "absent", "dump", "import"), p("login_user", StrParam),
		p("login_password", StrParam), p("target", PathParam), p("encoding", StrParam)}},
	{FQCN: "community.mysql.mysql_user", Description: "manage mysql users", Params: []ParamSpec{
		preq("name", StrParam), p("password", StrParam), p("priv", StrParam), p("host", StrParam),
		stateAbsent, p("login_user", StrParam), p("login_password", StrParam)}},
	{FQCN: "community.postgresql.postgresql_db", Description: "manage postgresql databases", Params: []ParamSpec{
		preq("name", StrParam), pcho("state", "present", "absent", "dump", "restore"), p("owner", StrParam),
		p("encoding", StrParam), p("template", StrParam)}},
	{FQCN: "community.postgresql.postgresql_user", Description: "manage postgresql users", Params: []ParamSpec{
		preq("name", StrParam), p("password", StrParam), p("db", StrParam), stateAbsent,
		p("priv", StrParam), p("role_attr_flags", StrParam)}},

	// --- containers / cloud ---
	{FQCN: "community.docker.docker_container", Description: "manage docker containers", Params: []ParamSpec{
		preq("name", StrParam), p("image", StrParam), pcho("state", "present", "absent", "started", "stopped"),
		p("ports", ListParam), p("volumes", ListParam), p("env", DictParam), pcho("restart_policy", "always", "no", "on-failure", "unless-stopped"),
		p("detach", BoolParam), p("pull", BoolParam)}},
	{FQCN: "community.docker.docker_image", Description: "manage docker images", Params: []ParamSpec{
		preq("name", StrParam), p("tag", StrParam), pcho("source", "pull", "build", "load", "local"),
		stateAbsent, p("force_source", BoolParam)}},
	{FQCN: "kubernetes.core.k8s", Description: "manage kubernetes objects", Params: []ParamSpec{
		stateAbsent, p("definition", DictParam), p("src", PathParam), p("namespace", StrParam),
		p("kind", StrParam), p("name", StrParam), p("api_version", StrParam), p("wait", BoolParam)}},
	{FQCN: "amazon.aws.s3_object", Description: "manage s3 objects", Params: []ParamSpec{
		preq("bucket", StrParam), p("object", StrParam), pcho("mode", "get", "put", "delete", "create", "list"),
		p("src", PathParam), p("dest", PathParam), p("region", StrParam)}},
	{FQCN: "amazon.aws.ec2_instance", Description: "manage ec2 instances", Params: []ParamSpec{
		p("name", StrParam), pcho("state", "present", "absent", "running", "stopped", "restarted"),
		p("instance_type", StrParam), p("image_id", StrParam), p("key_name", StrParam),
		p("security_group", StrParam), p("region", StrParam), p("tags", DictParam)}},

	// --- network devices ---
	{FQCN: "vyos.vyos.vyos_facts", Description: "gather facts from vyos devices", Params: []ParamSpec{
		p("gather_subset", ListParam), p("gather_network_resources", ListParam)}},
	{FQCN: "vyos.vyos.vyos_config", Description: "manage vyos configuration", Params: []ParamSpec{
		p("lines", ListParam), p("src", PathParam), p("backup", BoolParam), p("save", BoolParam),
		pcho("match", "line", "none"), p("comment", StrParam)}},
	{FQCN: "cisco.ios.ios_config", Description: "manage cisco ios configuration", Params: []ParamSpec{
		p("lines", ListParam), p("parents", ListParam), p("src", PathParam), p("backup", BoolParam),
		pcho("match", "line", "strict", "exact", "none"), p("save_when", StrParam)}},
	{FQCN: "cisco.ios.ios_facts", Description: "gather facts from cisco ios devices", Params: []ParamSpec{
		p("gather_subset", ListParam), p("gather_network_resources", ListParam)}},
	{FQCN: "junipernetworks.junos.junos_config", Description: "manage juniper junos configuration", Params: []ParamSpec{
		p("lines", ListParam), p("src", PathParam), p("backup", BoolParam), p("confirm", IntParam),
		p("comment", StrParam), pcho("update", "merge", "override", "replace")}},

	// --- misc ---
	{FQCN: "ansible.builtin.slurp", Description: "read a remote file", Params: []ParamSpec{
		preq("src", PathParam)}},
	{FQCN: "ansible.builtin.tempfile", Description: "create a temporary file or directory", Params: []ParamSpec{
		pcho("state", "file", "directory"), p("suffix", StrParam), p("prefix", StrParam), p("path", PathParam)}},
	{FQCN: "ansible.builtin.find", Description: "find files matching criteria", Params: []ParamSpec{
		preq("paths", ListParam), p("patterns", ListParam), pcho("file_type", "file", "directory", "link", "any"),
		p("recurse", BoolParam), p("age", StrParam), p("size", StrParam)}},
	{FQCN: "ansible.builtin.replace", Description: "replace text in a file", EquivGroup: "file", Params: []ParamSpec{
		preq("path", PathParam), preq("regexp", StrParam), p("replace", StrParam), p("backup", BoolParam),
		p("owner", StrParam), p("group", StrParam), p("mode", StrParam)}},
	{FQCN: "ansible.builtin.git_config", Description: "manage git configuration", Params: []ParamSpec{
		preq("name", StrParam), p("value", StrParam), pcho("scope", "local", "global", "system"),
		p("repo", PathParam), stateAbsent}},
	{FQCN: "ansible.windows.win_service", Description: "manage windows services", EquivGroup: "service", Params: []ParamSpec{
		preq("name", StrParam), stateSvc, pcho("start_mode", "auto", "manual", "disabled", "delayed")}},
	{FQCN: "ansible.windows.win_package", Description: "manage windows packages", EquivGroup: "package", Params: []ParamSpec{
		p("path", PathParam), p("product_id", StrParam), stateAbsent, p("arguments", StrParam)}},
	{FQCN: "chocolatey.chocolatey.win_chocolatey", Description: "manage chocolatey packages", EquivGroup: "package", Params: []ParamSpec{
		preq("name", ListParam), statePkg, p("version", StrParam), p("source", StrParam)}},

	// --- additional widely used modules ---
	{FQCN: "ansible.builtin.expect", Description: "run a command answering prompts", EquivGroup: "command", FreeForm: true, Params: []ParamSpec{
		p("command", StrParam), p("responses", DictParam), p("timeout", IntParam), p("chdir", PathParam)}},
	{FQCN: "ansible.posix.acl", Description: "manage file acl entries", Params: []ParamSpec{
		preq("path", PathParam), p("entity", StrParam), pcho("etype", "user", "group", "other", "mask"),
		p("permissions", StrParam), stateAbsent, p("recursive", BoolParam)}},
	{FQCN: "ansible.posix.at", Description: "schedule one-shot at jobs", Params: []ParamSpec{
		p("command", StrParam), preq("count", IntParam), pcho("units", "minutes", "hours", "days", "weeks"),
		stateAbsent}},
	{FQCN: "community.general.sudoers", Description: "manage sudoers rules", Params: []ParamSpec{
		preq("name", StrParam), stateAbsent, p("user", StrParam), p("group", StrParam),
		p("commands", ListParam), p("nopassword", BoolParam)}},
	{FQCN: "community.general.snap", Description: "manage snap packages", EquivGroup: "package", Params: []ParamSpec{
		preq("name", ListParam), stateAbsent, p("classic", BoolParam), p("channel", StrParam)}},
	{FQCN: "community.general.flatpak", Description: "manage flatpak packages", EquivGroup: "package", Params: []ParamSpec{
		preq("name", ListParam), stateAbsent, pcho("method", "system", "user"), p("remote", StrParam)}},
	{FQCN: "community.general.gem", Description: "manage ruby gems", EquivGroup: "package", Params: []ParamSpec{
		preq("name", StrParam), stateAbsent, p("version", StrParam), p("user_install", BoolParam)}},
	{FQCN: "community.general.cargo", Description: "manage rust crates", EquivGroup: "package", Params: []ParamSpec{
		preq("name", ListParam), stateAbsent, p("version", StrParam), p("locked", BoolParam)}},
	{FQCN: "community.crypto.openssl_certificate", Description: "manage tls certificates", Params: []ParamSpec{
		preq("path", PathParam), pcho("provider", "selfsigned", "ownca", "acme"), p("privatekey_path", PathParam),
		p("csr_path", PathParam), stateAbsent}},
	{FQCN: "community.crypto.openssh_keypair", Description: "manage ssh keypairs", Params: []ParamSpec{
		preq("path", PathParam), pcho("type", "rsa", "ed25519", "ecdsa"), p("size", IntParam),
		p("comment", StrParam), stateAbsent}},
	{FQCN: "community.general.lvol", Description: "manage lvm logical volumes", Params: []ParamSpec{
		preq("vg", StrParam), preq("lv", StrParam), p("size", StrParam), stateAbsent,
		p("resizefs", BoolParam), p("shrink", BoolParam)}},
	{FQCN: "community.general.filesystem", Description: "create filesystems", Params: []ParamSpec{
		preq("dev", PathParam), pcho("fstype", "ext4", "xfs", "btrfs", "vfat", "swap"),
		p("force", BoolParam), p("resizefs", BoolParam)}},
	{FQCN: "community.general.parted", Description: "manage disk partitions", Params: []ParamSpec{
		preq("device", PathParam), p("number", IntParam), pcho("state", "present", "absent", "info"),
		p("part_start", StrParam), p("part_end", StrParam), pcho("label", "gpt", "msdos")}},
	{FQCN: "community.zabbix.zabbix_host", Description: "manage zabbix hosts", Params: []ParamSpec{
		preq("host_name", StrParam), p("host_groups", ListParam), p("link_templates", ListParam),
		stateAbsent, pcho("status", "enabled", "disabled")}},
	{FQCN: "community.grafana.grafana_dashboard", Description: "manage grafana dashboards", Params: []ParamSpec{
		p("dashboard_id", IntParam), p("path", PathParam), stateAbsent, p("overwrite", BoolParam),
		p("folder", StrParam)}},
	{FQCN: "ansible.windows.win_copy", Description: "copy files to windows nodes", EquivGroup: "copy", Params: []ParamSpec{
		preq("dest", PathParam), p("src", PathParam), p("content", StrParam), p("remote_src", BoolParam)}},
	{FQCN: "ansible.windows.win_regedit", Description: "manage windows registry entries", Params: []ParamSpec{
		preq("path", StrParam), p("name", StrParam), p("data", StrParam),
		pcho("type", "string", "dword", "binary", "expandstring"), stateAbsent}},
}

// Registry resolves module names (short or fully qualified) to catalogue
// entries and answers equivalence queries for the Ansible Aware metric.
type Registry struct {
	byFQCN  map[string]*Module
	byShort map[string]*Module
}

// NewRegistry builds a registry over the built-in module catalogue.
func NewRegistry() *Registry {
	r := &Registry{
		byFQCN:  make(map[string]*Module, len(catalogue)),
		byShort: make(map[string]*Module, len(catalogue)),
	}
	for i := range catalogue {
		m := &catalogue[i]
		r.byFQCN[m.FQCN] = m
		// Short names resolve builtin first, then first registration.
		short := m.ShortName()
		if prev, ok := r.byShort[short]; !ok || (prev.Collection() != "ansible.builtin" && m.Collection() == "ansible.builtin") {
			r.byShort[short] = m
		}
	}
	return r
}

// defaultRegistry is shared by the package-level helpers; the registry is
// immutable after construction, so sharing is safe.
var defaultRegistry = NewRegistry()

// DefaultRegistry returns the shared registry over the built-in catalogue.
func DefaultRegistry() *Registry { return defaultRegistry }

// Lookup resolves a module name, accepting both short names ("apt") and
// FQCNs ("ansible.builtin.apt").
func (r *Registry) Lookup(name string) (*Module, bool) {
	if m, ok := r.byFQCN[name]; ok {
		return m, true
	}
	m, ok := r.byShort[name]
	return m, ok
}

// Canonical returns the FQCN for a module name, normalising short names
// ("copy" -> "ansible.builtin.copy"). Unknown names are returned unchanged.
func (r *Registry) Canonical(name string) string {
	if m, ok := r.Lookup(name); ok {
		return m.FQCN
	}
	return name
}

// IsModule reports whether name resolves to a catalogue module.
func (r *Registry) IsModule(name string) bool {
	_, ok := r.Lookup(name)
	return ok
}

// Equivalent reports whether two module names are near-equivalent (same
// equivalence group, e.g. command/shell or apt/yum/dnf/package) without being
// the same module.
func (r *Registry) Equivalent(a, b string) bool {
	ma, oka := r.Lookup(a)
	mb, okb := r.Lookup(b)
	if !oka || !okb || ma.FQCN == mb.FQCN {
		return false
	}
	return ma.EquivGroup != "" && ma.EquivGroup == mb.EquivGroup
}

// Modules returns all catalogue entries sorted by FQCN.
func (r *Registry) Modules() []*Module {
	out := make([]*Module, 0, len(r.byFQCN))
	for _, m := range r.byFQCN {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FQCN < out[j].FQCN })
	return out
}
