package ansible

import (
	"testing"

	"wisdom/internal/yaml"
)

func parseNode(t *testing.T, src string) *yaml.Node {
	t.Helper()
	n, err := yaml.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return n
}

func TestAnalyzeTask(t *testing.T) {
	n := parseNode(t, `name: Install nginx
ansible.builtin.apt:
  name: nginx
  state: present
become: true
when: ansible_os_family == 'Debian'
`)
	task, err := AnalyzeTask(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if task.Name != "Install nginx" {
		t.Errorf("Name = %q", task.Name)
	}
	if task.ModuleKey != "ansible.builtin.apt" || task.FQCN != "ansible.builtin.apt" {
		t.Errorf("module = %q / %q", task.ModuleKey, task.FQCN)
	}
	if task.Module == nil || task.Args == nil || task.Args.Get("state").Value != "present" {
		t.Errorf("args = %+v", task.Args)
	}
	keys, _ := task.Keywords()
	if len(keys) != 2 || keys[0] != "become" || keys[1] != "when" {
		t.Errorf("keywords = %v", keys)
	}
}

func TestAnalyzeTaskShortName(t *testing.T) {
	n := parseNode(t, "name: copy file\ncopy:\n  src: a\n  dest: /b\n")
	task, err := AnalyzeTask(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if task.FQCN != "ansible.builtin.copy" || task.ModuleKey != "copy" {
		t.Errorf("got %q / %q", task.ModuleKey, task.FQCN)
	}
}

func TestAnalyzeTaskUnknownDottedModule(t *testing.T) {
	n := parseNode(t, "name: x\nmy.collection.widget:\n  opt: 1\n")
	task, err := AnalyzeTask(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if task.FQCN != "my.collection.widget" || task.Module != nil {
		t.Errorf("got %q module=%v", task.FQCN, task.Module)
	}
}

func TestAnalyzeTaskBlock(t *testing.T) {
	n := parseNode(t, `name: handle failures
block:
  - name: try
    ansible.builtin.command: /bin/true
rescue:
  - name: recover
    ansible.builtin.debug:
      msg: failed
`)
	task, err := AnalyzeTask(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !task.IsBlock || task.ModuleKey != "" {
		t.Errorf("block = %v, module = %q", task.IsBlock, task.ModuleKey)
	}
}

func TestAnalyzeTaskErrors(t *testing.T) {
	for _, src := range []string{
		"- a\n- b\n",                         // not a mapping
		"name: only a name\n",                // no module
		"apt:\n  name: x\nyum:\n  name: y\n", // two modules
	} {
		n := parseNode(t, src)
		if _, err := AnalyzeTask(n, nil); err == nil {
			t.Errorf("AnalyzeTask(%q) succeeded", src)
		}
	}
}

func TestParseKV(t *testing.T) {
	pairs, free := ParseKV("name=httpd state=latest")
	if len(pairs) != 2 || pairs[0] != [2]string{"name", "httpd"} || pairs[1] != [2]string{"state", "latest"} {
		t.Errorf("pairs = %v", pairs)
	}
	if free != "" {
		t.Errorf("free = %q", free)
	}

	pairs, free = ParseKV(`content='hello world' dest="/etc/motd"`)
	if len(pairs) != 2 || pairs[0][1] != "hello world" || pairs[1][1] != "/etc/motd" {
		t.Errorf("quoted pairs = %v", pairs)
	}
	_ = free

	pairs, free = ParseKV("echo hello chdir=/tmp")
	if free != "echo hello" || len(pairs) != 1 || pairs[0][0] != "chdir" {
		t.Errorf("free-form: pairs=%v free=%q", pairs, free)
	}

	// Equals inside the command should not create bogus pairs.
	pairs, free = ParseKV("export PATH=/usr/bin && run")
	if free == "" {
		t.Errorf("expected free-form text, got pairs=%v", pairs)
	}
}

func TestNormalizeTaskFQCN(t *testing.T) {
	n := parseNode(t, "name: copy\ncopy:\n  src: a\n  dest: /b\n")
	out := NormalizeTask(n, nil)
	if !out.Has("ansible.builtin.copy") || out.Has("copy") {
		t.Errorf("normalised keys: %v", keysOf(out))
	}
	// Original untouched.
	if !n.Has("copy") {
		t.Error("NormalizeTask mutated its input")
	}
}

func TestNormalizeTaskKV(t *testing.T) {
	n := parseNode(t, "name: install\nyum: name=httpd state=latest\n")
	out := NormalizeTask(n, nil)
	args := out.Get("ansible.builtin.yum")
	if args == nil || args.Kind != yaml.MappingNode {
		t.Fatalf("args = %+v", args)
	}
	if args.Get("name").Value != "httpd" || args.Get("state").Value != "latest" {
		t.Errorf("args = %v", yaml.Marshal(args))
	}
}

func TestNormalizeTaskFreeFormPreserved(t *testing.T) {
	n := parseNode(t, "name: run\nshell: echo hello\n")
	out := NormalizeTask(n, nil)
	args := out.Get("ansible.builtin.shell")
	if args == nil || args.Kind != yaml.ScalarNode || args.Value != "echo hello" {
		t.Errorf("args = %+v", args)
	}
}

func TestNormalizeTaskFreeFormWithKV(t *testing.T) {
	n := parseNode(t, "name: run\nshell: echo hello chdir=/tmp\n")
	out := NormalizeTask(n, nil)
	args := out.Get("ansible.builtin.shell")
	if args == nil || args.Kind != yaml.MappingNode {
		t.Fatalf("args = %+v", args)
	}
	if args.Get("cmd").Value != "echo hello" || args.Get("chdir").Value != "/tmp" {
		t.Errorf("args = %v", yaml.Marshal(args))
	}
}

func TestNormalizeTaskBlock(t *testing.T) {
	n := parseNode(t, `block:
  - name: inner
    copy: src=a dest=/b
`)
	out := NormalizeTask(n, nil)
	inner := out.Get("block").Items[0]
	if !inner.Has("ansible.builtin.copy") {
		t.Errorf("inner = %v", yaml.Marshal(inner))
	}
}

func TestNormalizePlaybook(t *testing.T) {
	n := parseNode(t, `- hosts: all
  tasks:
    - name: install
      apt: name=nginx state=present
  handlers:
    - name: restart
      service: name=nginx state=restarted
`)
	out := NormalizePlaybook(n, nil)
	task := out.Items[0].Get("tasks").Items[0]
	if !task.Has("ansible.builtin.apt") {
		t.Errorf("task = %v", yaml.Marshal(task))
	}
	h := out.Items[0].Get("handlers").Items[0]
	if !h.Has("ansible.builtin.service") {
		t.Errorf("handler = %v", yaml.Marshal(h))
	}
}

func TestLooksLike(t *testing.T) {
	pb := parseNode(t, "- hosts: all\n  tasks:\n    - ansible.builtin.debug:\n        msg: hi\n")
	if !LooksLikePlaybook(pb) || LooksLikeTaskList(pb) {
		t.Error("playbook misclassified")
	}
	tl := parseNode(t, "- name: a\n  ansible.builtin.debug:\n    msg: hi\n")
	if LooksLikePlaybook(tl) || !LooksLikeTaskList(tl) {
		t.Error("task list misclassified")
	}
	scalar := parseNode(t, "just a string\n")
	if LooksLikePlaybook(scalar) || LooksLikeTaskList(scalar) {
		t.Error("scalar misclassified")
	}
}

func keysOf(n *yaml.Node) []string {
	var out []string
	for _, k := range n.Keys {
		out = append(out, k.Value)
	}
	return out
}
