package ansible

import (
	"fmt"
	"strings"

	"wisdom/internal/yaml"
)

// SchemaError is one violation of the strict playbook/task schema.
type SchemaError struct {
	Path string // dotted location, e.g. "[0].tasks[1].apt.state"
	Msg  string
}

// Error implements the error interface.
func (e SchemaError) Error() string { return e.Path + ": " + e.Msg }

// Validator checks documents against the strict lint-style schema the paper
// uses for its Schema Correct metric. As the paper notes, the schema is
// stricter than Ansible itself: historical forms (legacy "k=v" arguments on
// non-free-form modules, unqualified module names treated leniently by
// Ansible, unknown parameters) are rejected.
type Validator struct {
	reg *Registry
	// AllowUnknownModules accepts tasks whose module is not in the
	// catalogue (their parameters then go unchecked). The strict linter
	// behaviour used by Schema Correct leaves this false only for module
	// *parameters*; unknown module names themselves are accepted when they
	// are fully qualified, mirroring ansible-lint with offline schemas.
	AllowUnknownModules bool
}

// NewValidator returns a Validator over the default module catalogue.
func NewValidator() *Validator {
	return &Validator{reg: DefaultRegistry(), AllowUnknownModules: true}
}

// ValidateTask checks one task mapping and returns every violation found.
func (v *Validator) ValidateTask(n *yaml.Node) []SchemaError {
	return v.validateTask(n, "task", false)
}

// ValidateTaskList checks a role-style list of tasks.
func (v *Validator) ValidateTaskList(n *yaml.Node) []SchemaError {
	if n == nil || n.Kind != yaml.SequenceNode {
		return []SchemaError{{Path: "$", Msg: "task list must be a sequence"}}
	}
	if len(n.Items) == 0 {
		return []SchemaError{{Path: "$", Msg: "task list is empty"}}
	}
	var errs []SchemaError
	for i, item := range n.Items {
		errs = append(errs, v.validateTask(item, fmt.Sprintf("[%d]", i), false)...)
	}
	return errs
}

// ValidatePlaybook checks a playbook: a non-empty sequence of plays.
func (v *Validator) ValidatePlaybook(n *yaml.Node) []SchemaError {
	if n == nil || n.Kind != yaml.SequenceNode {
		return []SchemaError{{Path: "$", Msg: "playbook must be a sequence of plays"}}
	}
	if len(n.Items) == 0 {
		return []SchemaError{{Path: "$", Msg: "playbook is empty"}}
	}
	var errs []SchemaError
	for i, play := range n.Items {
		errs = append(errs, v.validatePlay(play, fmt.Sprintf("[%d]", i))...)
	}
	return errs
}

// Valid reports whether a document passes as either a playbook or a task
// list, the acceptance criterion of the Schema Correct metric.
func (v *Validator) Valid(n *yaml.Node) bool {
	if n == nil {
		return false
	}
	if n.Kind == yaml.MappingNode {
		return len(v.ValidateTask(n)) == 0
	}
	if LooksLikePlaybook(n) {
		return len(v.ValidatePlaybook(n)) == 0
	}
	return len(v.ValidateTaskList(n)) == 0
}

func (v *Validator) validatePlay(n *yaml.Node, path string) []SchemaError {
	if n == nil || n.Kind != yaml.MappingNode {
		return []SchemaError{{Path: path, Msg: "play must be a mapping"}}
	}
	var errs []SchemaError
	if !n.Has("hosts") && !n.Has("import_playbook") {
		errs = append(errs, SchemaError{Path: path, Msg: "play is missing required key hosts"})
	}
	hasSection := false
	for i, k := range n.Keys {
		key, val := k.Value, n.Values[i]
		switch {
		case key == "import_playbook":
			hasSection = true
		case isTaskSection(key):
			hasSection = true
			if val == nil || val.Kind != yaml.SequenceNode {
				errs = append(errs, SchemaError{Path: path + "." + key, Msg: "must be a sequence of tasks"})
				continue
			}
			for j, task := range val.Items {
				p := fmt.Sprintf("%s.%s[%d]", path, key, j)
				errs = append(errs, v.validateTask(task, p, key == "handlers")...)
			}
		case key == "roles":
			hasSection = true
			errs = append(errs, v.validateRoles(val, path+".roles")...)
		case IsPlayKeyword(key):
			kw, _ := PlayKeyword(key)
			errs = append(errs, checkType(val, kw.Type, path+"."+key)...)
		default:
			errs = append(errs, SchemaError{Path: path + "." + key, Msg: "unknown play keyword"})
		}
	}
	if !hasSection {
		errs = append(errs, SchemaError{Path: path, Msg: "play has no tasks, roles or handlers section"})
	}
	return errs
}

func (v *Validator) validateRoles(n *yaml.Node, path string) []SchemaError {
	if n == nil || n.Kind != yaml.SequenceNode {
		return []SchemaError{{Path: path, Msg: "roles must be a sequence"}}
	}
	var errs []SchemaError
	for i, item := range n.Items {
		p := fmt.Sprintf("%s[%d]", path, i)
		switch item.Kind {
		case yaml.ScalarNode:
			if item.Tag != yaml.StrTag {
				errs = append(errs, SchemaError{Path: p, Msg: "role name must be a string"})
			}
		case yaml.MappingNode:
			if !item.Has("role") && !item.Has("name") {
				errs = append(errs, SchemaError{Path: p, Msg: "role entry is missing role key"})
			}
		default:
			errs = append(errs, SchemaError{Path: p, Msg: "role entry must be a string or mapping"})
		}
	}
	return errs
}

func (v *Validator) validateTask(n *yaml.Node, path string, handler bool) []SchemaError {
	if n == nil || n.Kind != yaml.MappingNode {
		return []SchemaError{{Path: path, Msg: "task must be a mapping"}}
	}
	if n.Len() == 0 {
		return []SchemaError{{Path: path, Msg: "task is empty"}}
	}
	t, err := AnalyzeTask(n, v.reg)
	if err != nil {
		return []SchemaError{{Path: path, Msg: err.Error()}}
	}
	var errs []SchemaError
	if t.IsBlock {
		for i, k := range n.Keys {
			key, val := k.Value, n.Values[i]
			switch {
			case IsBlockKeyword(key):
				if val == nil || val.Kind != yaml.SequenceNode || len(val.Items) == 0 {
					errs = append(errs, SchemaError{Path: path + "." + key, Msg: "block section must be a non-empty sequence"})
					continue
				}
				for j, inner := range val.Items {
					errs = append(errs, v.validateTask(inner, fmt.Sprintf("%s.%s[%d]", path, key, j), handler)...)
				}
			case IsTaskKeyword(key):
				kw, _ := TaskKeyword(key)
				errs = append(errs, checkType(val, kw.Type, path+"."+key)...)
			default:
				errs = append(errs, SchemaError{Path: path + "." + key, Msg: "unknown block keyword"})
			}
		}
		return errs
	}

	for i, k := range n.Keys {
		key, val := k.Value, n.Values[i]
		switch {
		case key == t.ModuleKey:
			errs = append(errs, v.validateModuleArgs(t, val, path+"."+key)...)
		case IsTaskKeyword(key):
			if key == "listen" && !handler {
				errs = append(errs, SchemaError{Path: path + ".listen", Msg: "listen is only valid on handlers"})
				continue
			}
			kw, _ := TaskKeyword(key)
			errs = append(errs, checkType(val, kw.Type, path+"."+key)...)
		default:
			errs = append(errs, SchemaError{Path: path + "." + key, Msg: "unknown task keyword"})
		}
	}
	if t.Module == nil {
		// Unknown modules are accepted only when fully qualified (and
		// only if the validator allows unknown modules at all): the
		// strict schema has no way to check a bare unknown name.
		if !v.AllowUnknownModules || strings.Count(t.ModuleKey, ".") < 2 {
			errs = append(errs, SchemaError{Path: path + "." + t.ModuleKey, Msg: "unknown module " + t.ModuleKey})
		}
	}
	return errs
}

func (v *Validator) validateModuleArgs(t *Task, val *yaml.Node, path string) []SchemaError {
	m := t.Module
	// Free-form usage: a scalar value.
	if val != nil && val.Kind == yaml.ScalarNode {
		if m == nil {
			return nil
		}
		if m.FreeForm {
			return nil
		}
		// The strict schema rejects the historical "k=v" string form.
		return []SchemaError{{Path: path, Msg: "legacy string arguments are not accepted; use a parameter mapping"}}
	}
	if val == nil || val.IsNull() {
		if m != nil && requiredParams(m) > 0 {
			return []SchemaError{{Path: path, Msg: "missing required parameters"}}
		}
		return nil
	}
	if val.Kind != yaml.MappingNode {
		return []SchemaError{{Path: path, Msg: "module arguments must be a mapping"}}
	}
	if m == nil {
		return nil
	}
	var errs []SchemaError
	seen := make(map[string]bool)
	for i, k := range val.Keys {
		name := k.Value
		spec := m.Param(name)
		if spec == nil {
			if m.UnknownParams {
				continue
			}
			errs = append(errs, SchemaError{Path: path + "." + name, Msg: "unknown parameter"})
			continue
		}
		seen[spec.Name] = true
		errs = append(errs, checkParam(val.Values[i], spec, path+"."+name)...)
	}
	for i := range m.Params {
		spec := &m.Params[i]
		if spec.Required && !seen[spec.Name] {
			errs = append(errs, SchemaError{Path: path, Msg: "missing required parameter " + spec.Name})
		}
	}
	for _, group := range m.MutuallyExclusive {
		set := presentOf(group, seen)
		if len(set) > 1 {
			errs = append(errs, SchemaError{Path: path,
				Msg: "parameters " + strings.Join(set, " and ") + " are mutually exclusive"})
		}
	}
	for _, group := range m.RequiredOneOf {
		if len(presentOf(group, seen)) == 0 {
			errs = append(errs, SchemaError{Path: path,
				Msg: "one of " + strings.Join(group, ", ") + " is required"})
		}
	}
	return errs
}

// presentOf returns the members of group present in seen, in group order.
func presentOf(group []string, seen map[string]bool) []string {
	var out []string
	for _, name := range group {
		if seen[name] {
			out = append(out, name)
		}
	}
	return out
}

func requiredParams(m *Module) int {
	n := 0
	for i := range m.Params {
		if m.Params[i].Required {
			n++
		}
	}
	return n
}

// checkParam validates one parameter value against its spec.
func checkParam(val *yaml.Node, spec *ParamSpec, path string) []SchemaError {
	errs := checkType(val, spec.Type, path)
	if len(errs) > 0 || len(spec.Choices) == 0 || val == nil || val.Kind != yaml.ScalarNode {
		return errs
	}
	if isTemplated(val.Value) {
		return nil
	}
	for _, c := range spec.Choices {
		if val.Value == c {
			return nil
		}
	}
	return []SchemaError{{Path: path, Msg: fmt.Sprintf("value %q is not one of the accepted choices", val.Value)}}
}

// checkType validates a node against a ParamType. Jinja2-templated values
// ("{{ ... }}") are accepted for any type, as the real schema does.
func checkType(val *yaml.Node, t ParamType, path string) []SchemaError {
	if val == nil || val.IsNull() || t == AnyParam {
		return nil
	}
	if val.Kind == yaml.ScalarNode && isTemplated(val.Value) {
		return nil
	}
	bad := func(want string) []SchemaError {
		return []SchemaError{{Path: path, Msg: fmt.Sprintf("expected %s, found %s", want, describe(val))}}
	}
	switch t {
	case StrParam, PathParam:
		if val.Kind != yaml.ScalarNode {
			return bad("a string")
		}
	case IntParam:
		if val.Kind != yaml.ScalarNode || val.Tag != yaml.IntTag {
			return bad("an integer")
		}
	case BoolParam:
		if val.Kind != yaml.ScalarNode || val.Tag != yaml.BoolTag {
			return bad("a boolean")
		}
	case ListParam:
		// A single scalar is promoted to a one-element list by Ansible.
		if val.Kind == yaml.MappingNode {
			return bad("a list")
		}
	case DictParam:
		if val.Kind != yaml.MappingNode {
			return bad("a mapping")
		}
	}
	return nil
}

func describe(n *yaml.Node) string {
	if n.Kind == yaml.ScalarNode {
		return "a " + n.Tag.String() + " scalar"
	}
	return "a " + n.Kind.String()
}

// isTemplated reports whether a scalar contains a Jinja2 expression.
func isTemplated(v string) bool {
	for i := 0; i+1 < len(v); i++ {
		if v[i] == '{' && (v[i+1] == '{' || v[i+1] == '%') {
			return true
		}
	}
	return false
}
