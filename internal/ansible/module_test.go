package ansible

import (
	"strings"
	"testing"
)

func TestRegistryLookup(t *testing.T) {
	r := DefaultRegistry()
	m, ok := r.Lookup("ansible.builtin.apt")
	if !ok || m.ShortName() != "apt" {
		t.Fatalf("FQCN lookup failed: %v %v", m, ok)
	}
	m, ok = r.Lookup("apt")
	if !ok || m.FQCN != "ansible.builtin.apt" {
		t.Fatalf("short lookup failed: %v %v", m, ok)
	}
	if _, ok := r.Lookup("no_such_module"); ok {
		t.Error("lookup of unknown module succeeded")
	}
}

func TestCanonical(t *testing.T) {
	r := DefaultRegistry()
	tests := map[string]string{
		"copy":                 "ansible.builtin.copy",
		"ansible.builtin.copy": "ansible.builtin.copy",
		"firewalld":            "ansible.posix.firewalld",
		"docker_container":     "community.docker.docker_container",
		"vyos_config":          "vyos.vyos.vyos_config",
		"custom.coll.module":   "custom.coll.module", // unknown passes through
	}
	for in, want := range tests {
		if got := r.Canonical(in); got != want {
			t.Errorf("Canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEquivalent(t *testing.T) {
	r := DefaultRegistry()
	equiv := [][2]string{
		{"command", "shell"},
		{"copy", "template"},
		{"package", "apt"},
		{"apt", "yum"},
		{"yum", "dnf"},
		{"service", "systemd"},
	}
	for _, pair := range equiv {
		if !r.Equivalent(pair[0], pair[1]) {
			t.Errorf("Equivalent(%s, %s) = false, want true", pair[0], pair[1])
		}
		if !r.Equivalent(pair[1], pair[0]) {
			t.Errorf("Equivalent(%s, %s) not symmetric", pair[1], pair[0])
		}
	}
	notEquiv := [][2]string{
		{"apt", "apt"},     // same module is not "equivalent"
		{"apt", "service"}, // different groups
		{"copy", "user"},   // no group on user
		{"apt", "nonexistent"},
	}
	for _, pair := range notEquiv {
		if r.Equivalent(pair[0], pair[1]) {
			t.Errorf("Equivalent(%s, %s) = true, want false", pair[0], pair[1])
		}
	}
}

func TestModuleParamAliases(t *testing.T) {
	r := DefaultRegistry()
	m, _ := r.Lookup("apt")
	if m.Param("state") == nil {
		t.Error("apt.state not found")
	}
	if m.Param("bogus") != nil {
		t.Error("apt.bogus found")
	}
}

func TestCatalogueWellFormed(t *testing.T) {
	for _, m := range DefaultRegistry().Modules() {
		if strings.Count(m.FQCN, ".") < 2 {
			t.Errorf("module %q is not fully qualified", m.FQCN)
		}
		if m.Description == "" {
			t.Errorf("module %q has no description", m.FQCN)
		}
		seen := map[string]bool{}
		for _, p := range m.Params {
			if seen[p.Name] {
				t.Errorf("module %q has duplicate param %q", m.FQCN, p.Name)
			}
			seen[p.Name] = true
		}
	}
}

func TestBuiltinWinsShortNames(t *testing.T) {
	// "service" must resolve to ansible.builtin.service, not win_service.
	r := DefaultRegistry()
	m, ok := r.Lookup("service")
	if !ok || m.FQCN != "ansible.builtin.service" {
		t.Errorf("service resolved to %v", m)
	}
}

func TestKeywords(t *testing.T) {
	for _, kw := range []string{"when", "loop", "become", "register", "notify", "tags", "ignore_errors"} {
		if !IsTaskKeyword(kw) {
			t.Errorf("IsTaskKeyword(%q) = false", kw)
		}
	}
	for _, kw := range []string{"hosts", "tasks", "vars", "gather_facts", "serial", "roles"} {
		if !IsPlayKeyword(kw) {
			t.Errorf("IsPlayKeyword(%q) = false", kw)
		}
	}
	for _, kw := range []string{"block", "rescue", "always"} {
		if !IsBlockKeyword(kw) {
			t.Errorf("IsBlockKeyword(%q) = false", kw)
		}
	}
	if IsTaskKeyword("apt") || IsPlayKeyword("shell") || IsBlockKeyword("when") {
		t.Error("module/keyword confusion")
	}
	if !IsLoopKeyword("with_items") || IsLoopKeyword("when") {
		t.Error("IsLoopKeyword broken")
	}
}
