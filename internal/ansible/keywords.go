package ansible

// Keyword describes a play- or task-level keyword: a key that influences
// execution (conditionals, loops, privilege escalation, ...) rather than
// naming a module.
type Keyword struct {
	Name string
	Type ParamType
}

// taskKeywords are the keywords accepted on a task (a superset also applies
// to blocks). The catalogue follows the Ansible playbook keyword reference.
var taskKeywords = []Keyword{
	{"name", StrParam},
	{"when", AnyParam}, // string or list of strings
	{"loop", AnyParam}, // list or template string
	{"with_items", AnyParam},
	{"with_dict", AnyParam},
	{"with_fileglob", AnyParam},
	{"loop_control", DictParam},
	{"register", StrParam},
	{"become", BoolParam},
	{"become_user", StrParam},
	{"become_method", StrParam},
	{"notify", AnyParam}, // string or list
	{"tags", AnyParam},   // string or list
	{"vars", DictParam},
	{"environment", DictParam},
	{"delegate_to", StrParam},
	{"delegate_facts", BoolParam},
	{"run_once", BoolParam},
	{"ignore_errors", BoolParam},
	{"ignore_unreachable", BoolParam},
	{"failed_when", AnyParam},
	{"changed_when", AnyParam},
	{"until", StrParam},
	{"retries", IntParam},
	{"delay", IntParam},
	{"no_log", BoolParam},
	{"check_mode", BoolParam},
	{"diff", BoolParam},
	{"any_errors_fatal", BoolParam},
	{"throttle", IntParam},
	{"timeout", IntParam},
	{"remote_user", StrParam},
	{"connection", StrParam},
	{"collections", ListParam},
	{"module_defaults", DictParam},
	{"args", DictParam},
	{"action", StrParam},
	{"listen", AnyParam}, // handler-only: string or list
	{"first_available_file", ListParam},
}

// blockKeywords are the keys that define an Ansible block task.
var blockKeywords = []Keyword{
	{"block", ListParam},
	{"rescue", ListParam},
	{"always", ListParam},
}

// playKeywords are the keywords accepted at the top level of a play.
var playKeywords = []Keyword{
	{"name", StrParam},
	{"hosts", AnyParam}, // string or list
	{"tasks", ListParam},
	{"pre_tasks", ListParam},
	{"post_tasks", ListParam},
	{"handlers", ListParam},
	{"roles", ListParam},
	{"vars", DictParam},
	{"vars_files", ListParam},
	{"vars_prompt", ListParam},
	{"gather_facts", BoolParam},
	{"gather_subset", ListParam},
	{"become", BoolParam},
	{"become_user", StrParam},
	{"become_method", StrParam},
	{"remote_user", StrParam},
	{"connection", StrParam},
	{"serial", AnyParam}, // int, percentage string, or list
	{"strategy", StrParam},
	{"max_fail_percentage", IntParam},
	{"any_errors_fatal", BoolParam},
	{"ignore_errors", BoolParam},
	{"ignore_unreachable", BoolParam},
	{"force_handlers", BoolParam},
	{"run_once", BoolParam},
	{"tags", AnyParam},
	{"environment", DictParam},
	{"collections", ListParam},
	{"module_defaults", DictParam},
	{"order", StrParam},
	{"port", IntParam},
	{"throttle", IntParam},
	{"timeout", IntParam},
	{"no_log", BoolParam},
	{"check_mode", BoolParam},
	{"diff", BoolParam},
	{"debugger", StrParam},
}

var (
	taskKeywordSet  = keywordSet(taskKeywords)
	blockKeywordSet = keywordSet(blockKeywords)
	playKeywordSet  = keywordSet(playKeywords)
)

func keywordSet(kws []Keyword) map[string]Keyword {
	m := make(map[string]Keyword, len(kws))
	for _, k := range kws {
		m[k.Name] = k
	}
	return m
}

// IsTaskKeyword reports whether name is a task-level keyword.
func IsTaskKeyword(name string) bool {
	_, ok := taskKeywordSet[name]
	return ok
}

// IsBlockKeyword reports whether name defines a block section (block,
// rescue, always).
func IsBlockKeyword(name string) bool {
	_, ok := blockKeywordSet[name]
	return ok
}

// IsPlayKeyword reports whether name is a play-level keyword.
func IsPlayKeyword(name string) bool {
	_, ok := playKeywordSet[name]
	return ok
}

// TaskKeyword returns the keyword spec for a task-level keyword.
func TaskKeyword(name string) (Keyword, bool) {
	k, ok := taskKeywordSet[name]
	return k, ok
}

// PlayKeyword returns the keyword spec for a play-level keyword.
func PlayKeyword(name string) (Keyword, bool) {
	k, ok := playKeywordSet[name]
	return k, ok
}

// IsLoopKeyword reports whether name is one of the looping keywords
// (loop, with_items, with_dict, with_fileglob).
func IsLoopKeyword(name string) bool {
	switch name {
	case "loop", "with_items", "with_dict", "with_fileglob":
		return true
	}
	return false
}
