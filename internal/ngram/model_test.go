package ngram

import (
	"math"
	"math/rand"
	"testing"
)

// toy corpus over a tiny vocabulary (ids 0..9).
func toySeqs() [][]int {
	return [][]int{
		{1, 2, 3, 4, 5},
		{1, 2, 3, 4, 6},
		{1, 2, 3, 4, 5},
		{7, 8, 9, 1, 2},
		{1, 2, 3, 4, 5, 1, 2, 3},
	}
}

func trainToy(t *testing.T, order int) *Model {
	t.Helper()
	m, err := Train(toySeqs(), order, 10)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10); err == nil {
		t.Error("order 0 accepted")
	}
	if _, err := New(3, 0); err == nil {
		t.Error("vocab 0 accepted")
	}
}

func TestProbDistributionSumsToOne(t *testing.T) {
	m := trainToy(t, 3)
	contexts := [][]int{
		{},
		{1},
		{1, 2},
		{2, 3},
		{9, 9}, // unseen context
		{7, 8},
	}
	for _, ctx := range contexts {
		sum := 0.0
		for tok := 0; tok < m.VocabSize(); tok++ {
			p := m.Prob(ctx, tok)
			if p < 0 || p > 1 {
				t.Fatalf("P(%d|%v) = %v out of range", tok, ctx, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("sum P(.|%v) = %v, want 1", ctx, sum)
		}
	}
}

func TestProbFavorsObserved(t *testing.T) {
	m := trainToy(t, 3)
	// After (2,3), token 4 always follows in the corpus.
	if p4, p9 := m.Prob([]int{2, 3}, 4), m.Prob([]int{2, 3}, 9); p4 <= p9 {
		t.Errorf("P(4|2,3)=%v <= P(9|2,3)=%v", p4, p9)
	}
	// Unseen context backs off to unigram-ish behaviour: frequent token 1
	// should beat rare token 6.
	if p1, p6 := m.Prob([]int{9, 9}, 1), m.Prob([]int{9, 9}, 6); p1 <= p6 {
		t.Errorf("backoff: P(1)=%v <= P(6)=%v", p1, p6)
	}
}

func TestGreedyGenerationFollowsCorpus(t *testing.T) {
	m := trainToy(t, 3)
	out := m.Generate([]int{1, 2}, 3, GenOptions{StopToken: -1})
	if len(out) != 3 {
		t.Fatalf("generated %d tokens, want 3", len(out))
	}
	if out[0] != 3 || out[1] != 4 || out[2] != 5 {
		t.Errorf("greedy continuation of [1 2] = %v, want [3 4 5]", out)
	}
}

func TestGenerateStopToken(t *testing.T) {
	m := trainToy(t, 3)
	out := m.Generate([]int{1, 2}, 10, GenOptions{StopToken: 4})
	if len(out) == 0 || out[len(out)-1] != 4 {
		t.Errorf("generation did not stop at token 4: %v", out)
	}
}

func TestGenerateStopFunc(t *testing.T) {
	m := trainToy(t, 3)
	out := m.Generate([]int{1, 2}, 10, GenOptions{
		StopToken: -1,
		Stop:      func(g []int) bool { return len(g) >= 2 },
	})
	if len(out) != 2 {
		t.Errorf("stop func ignored: %v", out)
	}
}

func TestGenerateEmptyModel(t *testing.T) {
	m, err := New(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if out := m.Generate([]int{1, 2}, 5, GenOptions{}); len(out) != 0 {
		t.Errorf("empty model generated %v", out)
	}
}

func TestSamplingDeterministicWithSeed(t *testing.T) {
	m := trainToy(t, 3)
	gen := func() []int {
		return m.Generate([]int{1}, 5, GenOptions{
			Temperature: 0.8, TopK: 3, StopToken: -1,
			Rand: rand.New(rand.NewSource(42)),
		})
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different samples: %v vs %v", a, b)
		}
	}
}

func TestPerplexityLowerOnTrainingData(t *testing.T) {
	m := trainToy(t, 3)
	train := []int{1, 2, 3, 4, 5}
	shuffled := []int{5, 3, 1, 4, 2}
	if pt, ps := m.Perplexity(train), m.Perplexity(shuffled); pt >= ps {
		t.Errorf("perplexity(train)=%v >= perplexity(shuffled)=%v", pt, ps)
	}
}

func TestMoreDataImprovesModel(t *testing.T) {
	// The core effect the paper measures: domain data improves the model.
	test := []int{1, 2, 3, 4, 5}
	small, err := Train(toySeqs()[:1], 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	big := trainToy(t, 3)
	if pb, psm := big.Perplexity(test), small.Perplexity(test); pb >= psm {
		t.Errorf("more in-domain data did not help: big=%v small=%v", pb, psm)
	}
}

func TestHigherOrderCapturesLongerPatterns(t *testing.T) {
	seqs := [][]int{{1, 2, 3, 4}, {5, 2, 3, 6}, {1, 2, 3, 4}, {5, 2, 3, 6}}
	uni, _ := Train(seqs, 1, 8)
	tri, _ := Train(seqs, 4, 8)
	test := []int{1, 2, 3, 4}
	if pu, pt := uni.Perplexity(test), tri.Perplexity(test); pt >= pu {
		t.Errorf("higher order not better: order4=%v order1=%v", pt, pu)
	}
}

func TestOutOfRangeTokens(t *testing.T) {
	m := trainToy(t, 2)
	if m.Prob([]int{1}, -1) != 0 || m.Prob([]int{1}, 99) != 0 {
		t.Error("out-of-range token has nonzero probability")
	}
	// Add must ignore out-of-range tokens without panicking.
	m.Add([]int{-5, 3, 500})
}

func TestContextsGrowsWithOrder(t *testing.T) {
	m1 := trainToy(t, 1)
	m3 := trainToy(t, 3)
	if m3.Contexts() <= m1.Contexts() {
		t.Errorf("contexts: order3=%d <= order1=%d", m3.Contexts(), m1.Contexts())
	}
}

func TestLogProbFinite(t *testing.T) {
	m := trainToy(t, 3)
	lp := m.LogProb([]int{9, 9, 9, 0, 0})
	if math.IsInf(lp, 0) || math.IsNaN(lp) {
		t.Errorf("LogProb = %v", lp)
	}
	if lp >= 0 {
		t.Errorf("LogProb = %v, want negative", lp)
	}
}
