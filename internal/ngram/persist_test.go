package ngram

import (
	"bytes"
	"math"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := trainToy(t, 3)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Order() != m.Order() || back.VocabSize() != m.VocabSize() {
		t.Fatalf("shape changed: %d/%d vs %d/%d", back.Order(), back.VocabSize(), m.Order(), m.VocabSize())
	}
	if back.Contexts() != m.Contexts() {
		t.Errorf("contexts %d != %d", back.Contexts(), m.Contexts())
	}
	// Probabilities identical for a spread of contexts/tokens.
	contexts := [][]int{{}, {1}, {1, 2}, {9, 9}}
	for _, ctx := range contexts {
		for tok := 0; tok < 10; tok++ {
			a, b := m.Prob(ctx, tok), back.Prob(ctx, tok)
			if math.Abs(a-b) > 1e-15 {
				t.Fatalf("P(%d|%v): %v != %v", tok, ctx, a, b)
			}
		}
	}
	// Generation identical.
	ga := m.Generate([]int{1, 2}, 5, GenOptions{StopToken: -1})
	gb := back.Generate([]int{1, 2}, 5, GenOptions{StopToken: -1})
	if len(ga) != len(gb) {
		t.Fatalf("generation lengths differ: %v vs %v", ga, gb)
	}
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("generation differs: %v vs %v", ga, gb)
		}
	}
	// The reloaded model remains trainable.
	back.Add([]int{5, 6, 7})
	if back.Contexts() <= m.Contexts() {
		t.Error("reloaded model did not accept new counts")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSaveLoadEmptyModel(t *testing.T) {
	m, err := New(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p := back.Prob(nil, 1); math.Abs(p-0.2) > 1e-12 {
		t.Errorf("empty model prob = %v, want uniform 0.2", p)
	}
	back.Add([]int{1, 2, 3}) // must not panic (unigram alias restored)
	if back.Contexts() == 0 {
		t.Error("reloaded empty model not trainable")
	}
}
