package ngram

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the gob wire format: order, vocabulary and the per-level
// context tables flattened to exported types.
type snapshot struct {
	Order     int
	VocabSize int
	// Levels[k] maps packed contexts of length k to continuation counts.
	Levels []map[string]map[int]int
}

// Save serialises the model with encoding/gob.
func (m *Model) Save(w io.Writer) error {
	snap := snapshot{Order: m.order, VocabSize: m.vocabSize}
	for _, level := range m.ctx {
		flat := make(map[string]map[int]int, len(level))
		for key, c := range level {
			counts := make(map[int]int, len(c.counts))
			for tok, n := range c.counts {
				counts[tok] = n
			}
			flat[key] = counts
		}
		snap.Levels = append(snap.Levels, flat)
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Load restores a model saved by Save.
func Load(r io.Reader) (*Model, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("ngram: decode: %w", err)
	}
	m, err := New(snap.Order, snap.VocabSize)
	if err != nil {
		return nil, err
	}
	if len(snap.Levels) != snap.Order {
		return nil, fmt.Errorf("ngram: snapshot has %d levels, order %d", len(snap.Levels), snap.Order)
	}
	for k, flat := range snap.Levels {
		level := make(map[string]*continuations, len(flat))
		for key, counts := range flat {
			c := &continuations{counts: make(map[int]int, len(counts))}
			for tok, n := range counts {
				c.counts[tok] = n
				c.total += n
			}
			level[key] = c
		}
		m.ctx[k] = level
	}
	// Restore the unigram alias.
	if c, ok := m.ctx[0][""]; ok {
		m.unigram = c
	} else {
		m.ctx[0][""] = m.unigram
	}
	return m, nil
}
