// Package ngram implements an interpolated backoff n-gram language model
// with Witten-Bell smoothing over token ids.
//
// In this reproduction the n-gram model is the fast, CPU-trainable stand-in
// for the paper's 350M-parameter decoder models whenever seven model
// variants must be pre-trained and fine-tuned inside a single benchmark run:
// like the transformer it models next-token distributions learned from a
// corpus, so its output quality responds to the composition of the training
// data in the same direction the paper measures. The pure-Go transformer in
// internal/neural is the architecture-faithful counterpart.
package ngram

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Model is a Witten-Bell interpolated n-gram LM. Create with New, feed with
// Add (or Train), then Generate/Prob/Perplexity. Training mutates; inference
// methods are safe for concurrent use once training is done.
type Model struct {
	order     int
	vocabSize int
	// ctx[k] maps a packed context of length k to its continuation counts.
	ctx []map[string]*continuations
	// capacity knob for Generate candidate sets.
	unigram *continuations
}

// continuations holds the observed next-token counts after one context.
type continuations struct {
	counts map[int]int
	total  int
}

func (c *continuations) add(tok int) {
	c.counts[tok]++
	c.total++
}

// New creates an empty model of the given order (n-gram length, >= 1) over a
// vocabulary of vocabSize ids.
func New(order, vocabSize int) (*Model, error) {
	if order < 1 {
		return nil, fmt.Errorf("ngram: order %d < 1", order)
	}
	if vocabSize < 1 {
		return nil, fmt.Errorf("ngram: vocabSize %d < 1", vocabSize)
	}
	m := &Model{order: order, vocabSize: vocabSize, ctx: make([]map[string]*continuations, order)}
	for k := 0; k < order; k++ {
		m.ctx[k] = make(map[string]*continuations)
	}
	m.unigram = &continuations{counts: make(map[int]int)}
	m.ctx[0][""] = m.unigram
	return m, nil
}

// Train builds a model from token sequences (one per document).
func Train(seqs [][]int, order, vocabSize int) (*Model, error) {
	m, err := New(order, vocabSize)
	if err != nil {
		return nil, err
	}
	for _, s := range seqs {
		m.Add(s)
	}
	return m, nil
}

// Order returns the n-gram order.
func (m *Model) Order() int { return m.order }

// VocabSize returns the vocabulary size.
func (m *Model) VocabSize() int { return m.vocabSize }

// Contexts returns the total number of stored contexts (a size measure: the
// n-gram analogue of parameter count).
func (m *Model) Contexts() int {
	n := 0
	for _, c := range m.ctx {
		n += len(c)
	}
	return n
}

// Add accumulates counts from one token sequence.
func (m *Model) Add(seq []int) {
	for i, tok := range seq {
		if tok < 0 || tok >= m.vocabSize {
			continue
		}
		for k := 0; k < m.order; k++ {
			if i-k < 0 {
				break
			}
			key := packContext(seq[i-k : i])
			c := m.ctx[k][key]
			if c == nil {
				c = &continuations{counts: make(map[int]int)}
				m.ctx[k][key] = c
			}
			c.add(tok)
		}
	}
}

// packContext encodes a context id slice as a compact string key.
func packContext(ids []int) string {
	buf := make([]byte, 0, len(ids)*3)
	for _, id := range ids {
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16))
	}
	return string(buf)
}

// Prob returns P(tok | context) under Witten-Bell interpolation, backing off
// from the longest usable context suffix down to the uniform distribution.
func (m *Model) Prob(context []int, tok int) float64 {
	if tok < 0 || tok >= m.vocabSize {
		return 0
	}
	return m.probAt(context, tok, m.maxUsableOrder(context))
}

// maxUsableOrder returns the longest context length to start from.
func (m *Model) maxUsableOrder(context []int) int {
	k := m.order - 1
	if len(context) < k {
		k = len(context)
	}
	return k
}

// probAt computes the interpolated probability using context suffix length k.
func (m *Model) probAt(context []int, tok, k int) float64 {
	if k < 0 {
		return 1 / float64(m.vocabSize) // uniform base distribution
	}
	c := m.ctx[k][packContext(context[len(context)-k:])]
	lower := m.probAt(context, tok, k-1)
	if c == nil || c.total == 0 {
		return lower
	}
	types := float64(len(c.counts))
	total := float64(c.total)
	// Witten-Bell: lambda mass proportional to the number of distinct
	// continuation types.
	return (float64(c.counts[tok]) + types*lower) / (total + types)
}

// LogProb returns the total natural-log probability of a sequence, each
// token conditioned on all preceding ones.
func (m *Model) LogProb(seq []int) float64 {
	sum := 0.0
	for i, tok := range seq {
		p := m.Prob(seq[:i], tok)
		if p <= 0 {
			p = 1e-12
		}
		sum += math.Log(p)
	}
	return sum
}

// Perplexity returns exp(-LogProb/len) for a sequence.
func (m *Model) Perplexity(seq []int) float64 {
	if len(seq) == 0 {
		return math.Inf(1)
	}
	return math.Exp(-m.LogProb(seq) / float64(len(seq)))
}

// GenOptions control decoding.
type GenOptions struct {
	// Temperature 0 (or TopK 1) means greedy decoding. Higher flattens.
	Temperature float64
	// TopK restricts sampling to the k most probable candidates (0 = all).
	TopK int
	// Stop halts generation when it returns true for the token emitted so
	// far; it may be nil.
	Stop func(generated []int) bool
	// StopToken halts generation when emitted (set to -1 to disable).
	StopToken int
	// Rand supplies randomness for sampling; nil means greedy.
	Rand *rand.Rand
}

// Generate extends prefix by up to maxNew tokens, returning only the new
// tokens. Decoding is greedy unless options request sampling.
func (m *Model) Generate(prefix []int, maxNew int, opts GenOptions) []int {
	seq := append([]int(nil), prefix...)
	var out []int
	for len(out) < maxNew {
		tok, ok := m.nextToken(seq, opts)
		if !ok {
			break
		}
		out = append(out, tok)
		seq = append(seq, tok)
		if opts.StopToken != 0 && tok == opts.StopToken {
			break
		}
		if opts.Stop != nil && opts.Stop(out) {
			break
		}
	}
	return out
}

// candidate is one possible next token with its interpolated probability.
type candidate struct {
	tok int
	p   float64
}

// nextToken picks the next token. Candidate tokens are the union of observed
// continuations along the backoff chain, scored with the full interpolated
// probability; the uniform floor never wins, so generation stays on corpus
// vocabulary, which is what greedy decoding over the full softmax would pick
// anyway.
func (m *Model) nextToken(seq []int, opts GenOptions) (int, bool) {
	cands := m.candidates(seq)
	if len(cands) == 0 {
		return 0, false
	}
	if opts.Rand == nil || opts.Temperature <= 0 {
		best := cands[0]
		for _, c := range cands[1:] {
			if c.p > best.p || (c.p == best.p && c.tok < best.tok) {
				best = c
			}
		}
		return best.tok, true
	}
	// Temperature sampling over (optionally top-k) candidates.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].p != cands[j].p {
			return cands[i].p > cands[j].p
		}
		return cands[i].tok < cands[j].tok
	})
	if opts.TopK > 0 && len(cands) > opts.TopK {
		cands = cands[:opts.TopK]
	}
	sum := 0.0
	weights := make([]float64, len(cands))
	for i, c := range cands {
		w := math.Pow(c.p, 1/opts.Temperature)
		weights[i] = w
		sum += w
	}
	r := opts.Rand.Float64() * sum
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return cands[i].tok, true
		}
	}
	return cands[len(cands)-1].tok, true
}

// LongestContext returns the length of the longest context suffix of seq
// with observed continuations, along with those continuation counts and
// their total. k is -1 when nothing matches at any level (empty model).
// The returned map is the model's internal count table; callers must not
// modify it.
func (m *Model) LongestContext(seq []int) (k int, counts map[int]int, total int) {
	for k = m.maxUsableOrder(seq); k >= 0; k-- {
		c := m.ctx[k][packContext(seq[len(seq)-k:])]
		if c != nil && c.total > 0 {
			return k, c.counts, c.total
		}
	}
	return -1, nil, 0
}

// Candidates returns the distinct observed continuation tokens along the
// backoff chain for the given sequence, the natural candidate set for
// greedy decoding or for interpolating two models.
func (m *Model) Candidates(seq []int) []int {
	cands := m.candidates(seq)
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.tok
	}
	return out
}

// candidates gathers observed continuations along the backoff chain and
// scores each with the fully interpolated probability.
func (m *Model) candidates(seq []int) []candidate {
	seen := make(map[int]bool)
	var cands []candidate
	for k := m.maxUsableOrder(seq); k >= 0; k-- {
		c := m.ctx[k][packContext(seq[len(seq)-k:])]
		if c == nil {
			continue
		}
		for tok := range c.counts {
			if seen[tok] {
				continue
			}
			seen[tok] = true
			cands = append(cands, candidate{tok: tok, p: m.Prob(seq, tok)})
		}
		// The longest two matched levels provide plenty of candidates;
		// going all the way to unigram adds the whole vocabulary.
		if len(cands) >= 64 && k <= m.maxUsableOrder(seq)-1 {
			break
		}
	}
	return cands
}
