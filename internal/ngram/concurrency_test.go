package ngram

import (
	"sync"
	"testing"
)

// TestConcurrentInference pins down the package contract the serve layer
// depends on: once training stops, Prob/Perplexity/Generate/Candidates are
// pure reads over the frozen count maps and safe to share across
// goroutines. Run under -race this fails if any inference path mutates the
// model.
func TestConcurrentInference(t *testing.T) {
	seqs := [][]int{
		{1, 2, 3, 4, 5},
		{1, 2, 3, 5, 6},
		{2, 3, 4, 1, 2, 3},
		{6, 5, 4, 3, 2, 1},
	}
	m, err := Train(seqs, 3, 8)
	if err != nil {
		t.Fatal(err)
	}

	probe := []int{1, 2, 3}
	wantProb := m.Prob(probe, 4)
	wantPPL := m.Perplexity(seqs[0])
	wantGen := m.Generate(probe, 4, GenOptions{StopToken: -1})

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := m.Prob(probe, 4); got != wantProb {
					t.Errorf("Prob = %v, want %v", got, wantProb)
					return
				}
				if got := m.Perplexity(seqs[0]); got != wantPPL {
					t.Errorf("Perplexity = %v, want %v", got, wantPPL)
					return
				}
				got := m.Generate(probe, 4, GenOptions{StopToken: -1})
				if len(got) != len(wantGen) {
					t.Errorf("Generate = %v, want %v", got, wantGen)
					return
				}
				for j := range got {
					if got[j] != wantGen[j] {
						t.Errorf("Generate = %v, want %v", got, wantGen)
						return
					}
				}
				m.Candidates(probe)
			}
		}()
	}
	wg.Wait()
}
