// Package retrieval implements an IDF-weighted nearest-neighbour index over
// token sequences. It supplies the memorisation channel of the model zoo:
// large models that saw (parts of) the evaluation distribution at training
// time reproduce whole completions verbatim — the signature the paper
// observes on Codex ("the exact match is the highest of all models tested,
// which indicates that Codex likely saw large portions of our Galaxy
// dataset"). An ensemble of an n-gram model and this index reproduces that
// behaviour honestly: the index can only return items that were actually in
// its training data.
package retrieval

import (
	"math"
	"sort"
)

// Entry is one indexed key/value pair: a prompt-like key and the completion
// associated with it.
type Entry struct {
	Key   []int
	Value []int
}

// Match is one retrieval result.
type Match struct {
	// Index is the position of the matched entry (see Entry).
	Index int
	// Score is the cosine similarity in [0, 1].
	Score float64
}

// Index is a bag-of-tokens cosine index with IDF weighting. Add entries,
// then call Build before querying. The zero value is not usable; use New.
// Add and Build mutate; after Build, Query and Best are pure reads and safe
// for concurrent use (see TestConcurrentQueries).
type Index struct {
	entries  []Entry
	counts   []map[int]int   // per-entry token counts
	postings map[int][]int32 // token -> entry ids containing it (deduped)
	idf      map[int]float64
	norms    []float64
	built    bool
}

// New returns an empty index.
func New() *Index {
	return &Index{postings: make(map[int][]int32)}
}

// Add registers a key/value pair. Build must be called (again) afterwards.
func (ix *Index) Add(key, value []int) {
	id := int32(len(ix.entries))
	ix.entries = append(ix.entries, Entry{Key: key, Value: value})
	c := tokenCounts(key)
	ix.counts = append(ix.counts, c)
	for tok := range c {
		ix.postings[tok] = append(ix.postings[tok], id)
	}
	ix.built = false
}

// Len returns the number of indexed entries.
func (ix *Index) Len() int { return len(ix.entries) }

// Entry returns the i-th entry.
func (ix *Index) Entry(i int) Entry { return ix.entries[i] }

// Build computes IDF weights and vector norms. It must be called after the
// last Add and before the first Query.
func (ix *Index) Build() {
	n := float64(len(ix.entries))
	ix.idf = make(map[int]float64, len(ix.postings))
	for tok, ids := range ix.postings {
		ix.idf[tok] = math.Log(1 + n/float64(len(ids)))
	}
	ix.norms = make([]float64, len(ix.entries))
	for i := range ix.entries {
		s := 0.0
		for tok, c := range ix.counts[i] {
			w := float64(c) * ix.idf[tok]
			s += w * w
		}
		ix.norms[i] = math.Sqrt(s)
	}
	ix.built = true
}

// Query returns the k best matches for a key, ordered by descending score.
// It panics if Build has not been called, which is a programming error.
func (ix *Index) Query(key []int, k int) []Match {
	if !ix.built {
		panic("retrieval: Query before Build")
	}
	if len(ix.entries) == 0 || len(key) == 0 || k <= 0 {
		return nil
	}
	q := tokenCounts(key)
	qnorm := 0.0
	for tok, c := range q {
		w := float64(c) * ix.idf[tok] // unseen tokens have idf 0
		qnorm += w * w
	}
	if qnorm == 0 {
		return nil
	}
	qnorm = math.Sqrt(qnorm)

	scores := make(map[int32]float64)
	for tok, qc := range q {
		idf := ix.idf[tok]
		if idf == 0 {
			continue
		}
		qw := float64(qc) * idf
		for _, id := range ix.postings[tok] {
			scores[id] += qw * float64(ix.counts[id][tok]) * idf
		}
	}
	matches := make([]Match, 0, len(scores))
	for id, dot := range scores {
		den := qnorm * ix.norms[id]
		if den == 0 {
			continue
		}
		matches = append(matches, Match{Index: int(id), Score: dot / den})
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Score != matches[j].Score {
			return matches[i].Score > matches[j].Score
		}
		return matches[i].Index < matches[j].Index
	})
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches
}

// Best returns the single best match, or ok=false when nothing matches.
func (ix *Index) Best(key []int) (Match, bool) {
	m := ix.Query(key, 1)
	if len(m) == 0 {
		return Match{}, false
	}
	return m[0], true
}

func tokenCounts(seq []int) map[int]int {
	m := make(map[int]int, len(seq))
	for _, t := range seq {
		m[t]++
	}
	return m
}
