package retrieval

import (
	"math/rand"
	"testing"
)

func buildToy(t *testing.T) *Index {
	t.Helper()
	ix := New()
	// Keys use distinctive tokens; token 1 and 2 are "common words".
	ix.Add([]int{1, 2, 10, 11, 12}, []int{100}) // doc 0
	ix.Add([]int{1, 2, 20, 21, 22}, []int{200}) // doc 1
	ix.Add([]int{1, 2, 30, 31, 32}, []int{300}) // doc 2
	ix.Build()
	return ix
}

func TestExactKeyRetrievesItself(t *testing.T) {
	ix := buildToy(t)
	m, ok := ix.Best([]int{1, 2, 20, 21, 22})
	if !ok || m.Index != 1 {
		t.Fatalf("Best = %+v, %v", m, ok)
	}
	if m.Score < 0.999 {
		t.Errorf("exact-key score = %v, want ~1", m.Score)
	}
	if got := ix.Entry(m.Index).Value[0]; got != 200 {
		t.Errorf("value = %d", got)
	}
}

func TestPartialOverlapRanks(t *testing.T) {
	ix := buildToy(t)
	// Query shares 2 distinctive tokens with doc 0, none with others.
	ms := ix.Query([]int{10, 11, 99}, 3)
	if len(ms) == 0 || ms[0].Index != 0 {
		t.Fatalf("Query = %+v", ms)
	}
	for _, m := range ms[1:] {
		if m.Score >= ms[0].Score {
			t.Errorf("ranking broken: %+v", ms)
		}
	}
}

func TestCommonTokensAreDownweighted(t *testing.T) {
	ix := buildToy(t)
	// Tokens 1,2 appear in every doc; a query of only common tokens should
	// score lower against doc 0 than a query with distinctive overlap.
	common := ix.Query([]int{1, 2}, 1)
	distinct := ix.Query([]int{10, 11}, 1)
	if len(common) == 0 || len(distinct) == 0 {
		t.Fatal("no results")
	}
	if common[0].Score >= distinct[0].Score {
		t.Errorf("IDF weighting broken: common %v >= distinct %v", common[0].Score, distinct[0].Score)
	}
}

func TestUnseenTokensNoMatch(t *testing.T) {
	ix := buildToy(t)
	if ms := ix.Query([]int{77, 88}, 5); len(ms) != 0 {
		t.Errorf("unseen-token query returned %+v", ms)
	}
	if _, ok := ix.Best(nil); ok {
		t.Error("empty query matched")
	}
}

func TestScoresBounded(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ix := New()
	for i := 0; i < 50; i++ {
		key := make([]int, r.Intn(20)+1)
		for j := range key {
			key[j] = r.Intn(30)
		}
		ix.Add(key, []int{i})
	}
	ix.Build()
	for i := 0; i < 100; i++ {
		q := make([]int, r.Intn(20)+1)
		for j := range q {
			q[j] = r.Intn(40)
		}
		for _, m := range ix.Query(q, 10) {
			if m.Score < -1e-9 || m.Score > 1+1e-9 {
				t.Fatalf("score %v out of [0,1]", m.Score)
			}
		}
	}
}

func TestQueryBeforeBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on Query before Build")
		}
	}()
	ix := New()
	ix.Add([]int{1}, []int{2})
	ix.Query([]int{1}, 1)
}

func TestKLimit(t *testing.T) {
	ix := buildToy(t)
	if got := len(ix.Query([]int{1, 2}, 2)); got != 2 {
		t.Errorf("k=2 returned %d", got)
	}
	if ix.Len() != 3 {
		t.Errorf("Len = %d", ix.Len())
	}
}

func TestRebuildAfterAdd(t *testing.T) {
	ix := buildToy(t)
	ix.Add([]int{40, 41, 42}, []int{400})
	ix.Build()
	m, ok := ix.Best([]int{40, 41, 42})
	if !ok || ix.Entry(m.Index).Value[0] != 400 {
		t.Errorf("new entry not retrievable: %+v %v", m, ok)
	}
}
