package retrieval

import (
	"sync"
	"testing"
)

// TestConcurrentQueries pins down the package contract the serve layer
// depends on: after Build, the index (entries, IDF table, norms) is frozen
// and Query/Best are pure reads, safe to share across goroutines. Run under
// -race this fails if a lookup mutates the index.
func TestConcurrentQueries(t *testing.T) {
	ix := New()
	ix.Add([]int{1, 2, 3}, []int{10, 11})
	ix.Add([]int{2, 3, 4}, []int{12})
	ix.Add([]int{5, 6}, []int{13, 14})
	ix.Add([]int{1, 6, 7}, []int{15})
	ix.Build()

	key := []int{1, 2, 6}
	want := ix.Query(key, 3)
	wantBest, wantOK := ix.Best(key)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				got := ix.Query(key, 3)
				if len(got) != len(want) {
					t.Errorf("Query returned %d matches, want %d", len(got), len(want))
					return
				}
				for j := range got {
					if got[j].Score != want[j].Score {
						t.Errorf("Query[%d].Score = %v, want %v", j, got[j].Score, want[j].Score)
						return
					}
				}
				best, ok := ix.Best(key)
				if ok != wantOK || best.Score != wantBest.Score {
					t.Errorf("Best = %+v/%v, want %+v/%v", best, ok, wantBest, wantOK)
					return
				}
			}
		}()
	}
	wg.Wait()
}
