// Package tokenizer implements a trainable byte-level byte-pair-encoding
// (BPE) tokenizer of the kind used by CodeGen, the checkpoint family the
// Wisdom models extend. The base alphabet is the 256 byte values, so any
// input round-trips exactly; merges are learned from a corpus; special
// tokens (the file separator used during pre-training context packing, and
// padding/end-of-text) live outside the byte alphabet.
package tokenizer

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Special token names. They are appended after the byte alphabet and any
// learned merges, and are never produced by Encode on plain text.
const (
	// SepToken separates packed files in a pre-training stream.
	SepToken = "<|sep|>"
	// EndToken marks end-of-generation.
	EndToken = "<|endoftext|>"
	// PadToken pads batches to a fixed length.
	PadToken = "<|pad|>"
)

// Tokenizer is a byte-level BPE codec. The zero value is not usable; create
// one with Train or Load.
type Tokenizer struct {
	vocab   []string       // id -> token bytes (as string); specials last
	index   map[string]int // token bytes -> id
	ranks   map[[2]int]int // pair of ids -> merge priority (lower = earlier)
	merged  map[[2]int]int // pair of ids -> resulting id
	special map[string]int // special token name -> id
}

// Train learns a BPE vocabulary of the requested size from the corpus.
// vocabSize counts everything: the 256 byte tokens, the learned merges and
// the 3 special tokens; it must be at least 259.
func Train(corpus []string, vocabSize int) (*Tokenizer, error) {
	const reserved = 256 + 3
	if vocabSize < reserved {
		return nil, fmt.Errorf("tokenizer: vocabSize %d < minimum %d", vocabSize, reserved)
	}
	t := &Tokenizer{
		index:   make(map[string]int),
		ranks:   make(map[[2]int]int),
		merged:  make(map[[2]int]int),
		special: make(map[string]int),
	}
	for b := 0; b < 256; b++ {
		tok := string([]byte{byte(b)})
		t.index[tok] = b
		t.vocab = append(t.vocab, tok)
	}

	// Pre-tokenise the corpus into words and count word frequencies; BPE
	// merges never cross word boundaries, which keeps training fast and
	// tokens aligned with YAML structure.
	wordFreq := make(map[string]int)
	for _, doc := range corpus {
		for _, w := range splitWords(doc) {
			wordFreq[w]++
		}
	}
	type word struct {
		ids  []int
		freq int
	}
	words := make([]word, 0, len(wordFreq))
	for w, f := range wordFreq {
		ids := make([]int, len(w))
		for i := 0; i < len(w); i++ {
			ids[i] = int(w[i])
		}
		words = append(words, word{ids: ids, freq: f})
	}
	// Deterministic order so training is reproducible across map iteration.
	sort.Slice(words, func(i, j int) bool {
		return lessIDs(words[i].ids, words[j].ids)
	})

	nMerges := vocabSize - reserved
	for m := 0; m < nMerges; m++ {
		// Count adjacent pairs.
		pairFreq := make(map[[2]int]int)
		for _, w := range words {
			for i := 0; i+1 < len(w.ids); i++ {
				pairFreq[[2]int{w.ids[i], w.ids[i+1]}] += w.freq
			}
		}
		best, bestFreq := [2]int{-1, -1}, 0
		for pr, f := range pairFreq {
			if f > bestFreq || (f == bestFreq && lessPair(pr, best)) {
				best, bestFreq = pr, f
			}
		}
		if bestFreq < 2 {
			break // nothing worth merging
		}
		newTok := t.vocab[best[0]] + t.vocab[best[1]]
		newID := len(t.vocab)
		t.vocab = append(t.vocab, newTok)
		t.index[newTok] = newID
		t.ranks[best] = m
		t.merged[best] = newID
		// Apply the merge to every word.
		for wi := range words {
			words[wi].ids = applyMerge(words[wi].ids, best, newID)
		}
	}

	for _, name := range []string{SepToken, EndToken, PadToken} {
		id := len(t.vocab)
		t.vocab = append(t.vocab, name)
		t.index[name] = id
		t.special[name] = id
	}
	return t, nil
}

// lessIDs orders id slices lexicographically.
func lessIDs(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func lessPair(a, b [2]int) bool {
	if b[0] < 0 {
		return true
	}
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

func applyMerge(ids []int, pair [2]int, newID int) []int {
	out := ids[:0]
	for i := 0; i < len(ids); i++ {
		if i+1 < len(ids) && ids[i] == pair[0] && ids[i+1] == pair[1] {
			out = append(out, newID)
			i++
			continue
		}
		out = append(out, ids[i])
	}
	return out
}

// splitWords pre-tokenises text GPT-2 style: runs of letters/digits form one
// word with any single preceding space attached; whitespace and punctuation
// split into their own words. Newlines are kept as separate words so YAML
// line structure survives.
func splitWords(s string) []string {
	var words []string
	i := 0
	for i < len(s) {
		c := s[i]
		start := i
		switch {
		case c == '\n':
			i++
		case c == ' ':
			// A space followed by a word-char is attached to that word.
			j := i
			for j < len(s) && s[j] == ' ' {
				j++
			}
			if j < len(s) && isWordByte(s[j]) && j == i+1 {
				i = j
				for i < len(s) && isWordByte(s[i]) {
					i++
				}
			} else {
				i = j
			}
		case isWordByte(c):
			for i < len(s) && isWordByte(s[i]) {
				i++
			}
		default:
			for i < len(s) && !isWordByte(s[i]) && s[i] != ' ' && s[i] != '\n' {
				i++
			}
		}
		words = append(words, s[start:i])
	}
	return words
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c >= 0x80
}

// Encode tokenises text into ids. Special-token strings in the text are NOT
// treated specially; use Sep/End/Pad to append control ids.
func (t *Tokenizer) Encode(s string) []int {
	var out []int
	for _, w := range splitWords(s) {
		out = append(out, t.encodeWord(w)...)
	}
	return out
}

func (t *Tokenizer) encodeWord(w string) []int {
	ids := make([]int, len(w))
	for i := 0; i < len(w); i++ {
		ids[i] = int(w[i])
	}
	// Repeatedly apply the lowest-rank applicable merge.
	for len(ids) > 1 {
		bestRank, bestAt := int(^uint(0)>>1), -1
		for i := 0; i+1 < len(ids); i++ {
			if r, ok := t.ranks[[2]int{ids[i], ids[i+1]}]; ok && r < bestRank {
				bestRank, bestAt = r, i
			}
		}
		if bestAt < 0 {
			break
		}
		pair := [2]int{ids[bestAt], ids[bestAt+1]}
		ids = applyMerge(ids, pair, t.merged[pair])
	}
	return ids
}

// Decode reconstructs the exact text for a sequence of ids. Special tokens
// decode to their printable names.
func (t *Tokenizer) Decode(ids []int) string {
	var sb strings.Builder
	for _, id := range ids {
		if id >= 0 && id < len(t.vocab) {
			sb.WriteString(t.vocab[id])
		}
	}
	return sb.String()
}

// Token returns the byte string for one id.
func (t *Tokenizer) Token(id int) string {
	if id < 0 || id >= len(t.vocab) {
		return ""
	}
	return t.vocab[id]
}

// VocabSize returns the total vocabulary size including specials.
func (t *Tokenizer) VocabSize() int { return len(t.vocab) }

// Sep returns the id of the file-separator token.
func (t *Tokenizer) Sep() int { return t.special[SepToken] }

// End returns the id of the end-of-text token.
func (t *Tokenizer) End() int { return t.special[EndToken] }

// Pad returns the id of the padding token.
func (t *Tokenizer) Pad() int { return t.special[PadToken] }

// IsSpecial reports whether id is one of the control tokens.
func (t *Tokenizer) IsSpecial(id int) bool {
	for _, sid := range t.special {
		if sid == id {
			return true
		}
	}
	return false
}

// persisted is the JSON wire format of a tokenizer.
type persisted struct {
	Vocab  []string `json:"vocab"`
	Merges [][2]int `json:"merges"` // in rank order
}

// MarshalJSON serialises the tokenizer (vocabulary and ordered merges).
func (t *Tokenizer) MarshalJSON() ([]byte, error) {
	merges := make([][2]int, len(t.ranks))
	for pr, rank := range t.ranks {
		merges[rank] = pr
	}
	return json.Marshal(persisted{Vocab: t.vocab, Merges: merges})
}

// UnmarshalJSON restores a tokenizer serialised by MarshalJSON.
func (t *Tokenizer) UnmarshalJSON(data []byte) error {
	var p persisted
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	if len(p.Vocab) < 259 {
		return fmt.Errorf("tokenizer: truncated vocabulary (%d entries)", len(p.Vocab))
	}
	t.vocab = p.Vocab
	t.index = make(map[string]int, len(p.Vocab))
	for i, tok := range p.Vocab {
		t.index[tok] = i
	}
	t.ranks = make(map[[2]int]int, len(p.Merges))
	t.merged = make(map[[2]int]int, len(p.Merges))
	for rank, pr := range p.Merges {
		t.ranks[pr] = rank
		t.merged[pr] = 256 + rank
	}
	t.special = map[string]int{
		SepToken: len(p.Vocab) - 3,
		EndToken: len(p.Vocab) - 2,
		PadToken: len(p.Vocab) - 1,
	}
	return nil
}
