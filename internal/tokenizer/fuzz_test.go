package tokenizer

import (
	"sync"
	"testing"
)

// fuzzTok trains one small tokenizer shared by every fuzz execution: BPE
// training is deterministic, so sharing it keeps the target fast without
// losing coverage.
var fuzzTok = sync.OnceValue(func() *Tokenizer {
	corpus := []string{
		"- name: install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n",
		"- name: start service\n  ansible.builtin.service:\n    name: nginx\n    state: started\n",
		"- name: open firewall port\n  ansible.posix.firewalld:\n    port: 443/tcp\n",
	}
	t, err := Train(corpus, 300)
	if err != nil {
		panic(err)
	}
	return t
})

// FuzzEncode asserts the byte-level BPE invariants on arbitrary input: the
// 256-byte base vocabulary makes Decode(Encode(s)) == s for every string,
// and every emitted id must be a real vocabulary entry.
func FuzzEncode(f *testing.F) {
	f.Add("- name: install nginx\n  ansible.builtin.apt:\n    name: nginx\n")
	f.Add("")
	f.Add(" leading and trailing spaces ")
	f.Add("unicode: καλημέρα 世界 🚀")
	f.Add("\x00\x01\xfe\xff raw bytes")
	f.Add("tabs\tand\r\nwindows line endings")
	f.Add("port: 443/tcp state=present enabled=yes")
	f.Fuzz(func(t *testing.T, s string) {
		tok := fuzzTok()
		ids := tok.Encode(s)
		for i, id := range ids {
			if id < 0 || id >= tok.VocabSize() {
				t.Fatalf("id %d at %d out of vocab [0,%d)", id, i, tok.VocabSize())
			}
			if tok.IsSpecial(id) {
				t.Fatalf("Encode emitted special token %d for plain text", id)
			}
		}
		if got := tok.Decode(ids); got != s {
			t.Fatalf("round trip changed the text:\n in: %q\nout: %q", s, got)
		}
	})
}
