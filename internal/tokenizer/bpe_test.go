package tokenizer

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

var trainCorpus = []string{
	"- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n",
	"- name: Start nginx\n  ansible.builtin.service:\n    name: nginx\n    state: started\n",
	"- name: Copy config\n  ansible.builtin.copy:\n    src: nginx.conf\n    dest: /etc/nginx/nginx.conf\n",
	"- hosts: all\n  tasks:\n    - name: install package\n      ansible.builtin.package:\n        name: httpd\n        state: latest\n",
}

func trainSmall(t *testing.T) *Tokenizer {
	t.Helper()
	tok, err := Train(trainCorpus, 400)
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

func TestTrainMinSize(t *testing.T) {
	if _, err := Train(trainCorpus, 100); err == nil {
		t.Error("Train accepted vocabSize below the byte alphabet")
	}
	tok, err := Train(trainCorpus, 259)
	if err != nil {
		t.Fatal(err)
	}
	if tok.VocabSize() != 259 {
		t.Errorf("VocabSize = %d, want 259 (bytes + specials, no merges)", tok.VocabSize())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tok := trainSmall(t)
	for _, s := range []string{
		"",
		"hello world",
		"- name: Install nginx\n",
		"ansible.builtin.apt",
		"unicode: héllo → 世界",
		"tabs\tand\nnewlines\n\n",
		"state: present",
	} {
		if got := tok.Decode(tok.Encode(s)); got != s {
			t.Errorf("round trip of %q = %q", s, got)
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	tok := trainSmall(t)
	f := func(s string) bool {
		return tok.Decode(tok.Encode(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMergesCompress(t *testing.T) {
	tok := trainSmall(t)
	text := trainCorpus[0]
	ids := tok.Encode(text)
	if len(ids) >= len(text) {
		t.Errorf("no compression: %d tokens for %d bytes", len(ids), len(text))
	}
	// A frequent domain word should be few tokens.
	nameIDs := tok.Encode("name")
	if len(nameIDs) > 2 {
		t.Errorf("'name' takes %d tokens, expected it to be merged", len(nameIDs))
	}
}

func TestSpecialTokens(t *testing.T) {
	tok := trainSmall(t)
	ids := map[string]int{"sep": tok.Sep(), "end": tok.End(), "pad": tok.Pad()}
	seen := map[int]bool{}
	for name, id := range ids {
		if !tok.IsSpecial(id) {
			t.Errorf("%s id %d not special", name, id)
		}
		if seen[id] {
			t.Errorf("duplicate special id %d", id)
		}
		seen[id] = true
	}
	// Specials never come out of Encode on plain text containing their names.
	for _, id := range tok.Encode(SepToken + EndToken) {
		if tok.IsSpecial(id) {
			t.Error("Encode produced a special token from plain text")
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	a, err := Train(trainCorpus, 350)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(trainCorpus, 350)
	if err != nil {
		t.Fatal(err)
	}
	text := strings.Join(trainCorpus, "")
	ai, bi := a.Encode(text), b.Encode(text)
	if len(ai) != len(bi) {
		t.Fatalf("different encodings: %d vs %d tokens", len(ai), len(bi))
	}
	for i := range ai {
		if ai[i] != bi[i] {
			t.Fatalf("training not deterministic at token %d", i)
		}
	}
}

func TestSaveLoad(t *testing.T) {
	tok := trainSmall(t)
	data, err := json.Marshal(tok)
	if err != nil {
		t.Fatal(err)
	}
	var back Tokenizer
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.VocabSize() != tok.VocabSize() {
		t.Fatalf("vocab size %d != %d", back.VocabSize(), tok.VocabSize())
	}
	text := trainCorpus[1] + " extra text"
	a, b := tok.Encode(text), back.Encode(text)
	if len(a) != len(b) {
		t.Fatalf("encodings differ after reload: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("token %d differs after reload", i)
		}
	}
	if back.Decode(b) != text {
		t.Error("decode after reload broken")
	}
	if back.Sep() != tok.Sep() || back.End() != tok.End() || back.Pad() != tok.Pad() {
		t.Error("special ids changed after reload")
	}
}

func TestTokenAccessor(t *testing.T) {
	tok := trainSmall(t)
	if tok.Token(int('a')) != "a" {
		t.Errorf("Token('a') = %q", tok.Token(int('a')))
	}
	if tok.Token(-1) != "" || tok.Token(tok.VocabSize()) != "" {
		t.Error("out-of-range Token not empty")
	}
}

func TestSplitWords(t *testing.T) {
	tests := map[string][]string{
		"a b":         {"a", " b"},
		"name: value": {"name", ":", " value"},
		"  indented":  {"  ", "indented"},
		"x\ny":        {"x", "\n", "y"},
		"a_b2 c":      {"a_b2", " c"},
		"{{ var }}":   {"{{", " var", " ", "}}"},
	}
	for in, want := range tests {
		got := splitWords(in)
		if len(got) != len(want) {
			t.Errorf("splitWords(%q) = %q, want %q", in, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("splitWords(%q)[%d] = %q, want %q", in, i, got[i], want[i])
			}
		}
	}
	// Invariant: concatenation reproduces the input.
	for _, in := range []string{"", "  a  b  ", "::x--y\n\n z", "héllo wörld"} {
		if got := strings.Join(splitWords(in), ""); got != in {
			t.Errorf("splitWords(%q) lost content: %q", in, got)
		}
	}
}
