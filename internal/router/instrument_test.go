// Metrics lifecycle tests: Instrument wires the fleet-level and per-backend
// series, a runtime join registers the new backend's series, and a remove
// retires them so the export never accumulates departed fleet members.

package router

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"wisdom/internal/observe"
	"wisdom/internal/serve"
)

func scrape(t *testing.T, reg *observe.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

func TestInstrumentMembershipLifecycle(t *testing.T) {
	rt, reps := startFleet(t, 2, Options{})
	reg := observe.NewRegistry()
	rt.Instrument(reg)
	rt.Instrument(nil) // nil registry: a no-op

	out := scrape(t, reg)
	for _, want := range []string{
		"wisdom_router_membership_epoch",
		`wisdom_router_backends{state="active"} 2`,
		`wisdom_router_backends{state="draining"} 0`,
		"wisdom_router_joins_total 0",
		"wisdom_router_draining_inflight 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("initial scrape missing %q:\n%s", want, out)
		}
	}
	for _, rep := range reps {
		if !strings.Contains(out, fmt.Sprintf("wisdom_router_backend_alive{backend=%q} 1", rep.addr)) {
			t.Errorf("scrape missing liveness for %s:\n%s", rep.addr, out)
		}
		if !strings.Contains(out, fmt.Sprintf("wisdom_router_ring_share{backend=%q}", rep.addr)) {
			t.Errorf("scrape missing ring share for %s:\n%s", rep.addr, out)
		}
	}

	// A forwarded request is counted on exactly the backend that answered.
	if got := rt.Predict("", "hello"); !strings.Contains(got, "hello") {
		t.Fatalf("Predict = %q", got)
	}
	out = scrape(t, reg)
	counted := 0
	for _, rep := range reps {
		if strings.Contains(out, fmt.Sprintf("wisdom_router_backend_requests_total{backend=%q} 1", rep.addr)) {
			counted++
		}
	}
	if counted != 1 {
		t.Errorf("request counted on %d backends, want exactly 1:\n%s", counted, out)
	}

	// A runtime join registers the new backend's series...
	extra := startReplica(t, "extra", "", serve.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Join(ctx, extra.addr); err != nil {
		t.Fatalf("Join: %v", err)
	}
	out = scrape(t, reg)
	if !strings.Contains(out, fmt.Sprintf("wisdom_router_backend_alive{backend=%q} 1", extra.addr)) {
		t.Errorf("joined backend not instrumented:\n%s", out)
	}
	if !strings.Contains(out, "wisdom_router_joins_total 1") {
		t.Errorf("join not counted:\n%s", out)
	}

	// ...a drain shows on the by-state fleet gauge...
	if err := rt.Drain(extra.addr); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	out = scrape(t, reg)
	if !strings.Contains(out, `wisdom_router_backends{state="draining"} 1`) {
		t.Errorf("draining backend not gauged:\n%s", out)
	}

	// ...and a remove retires every per-backend series.
	if err := rt.Remove(ctx, extra.addr); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	out = scrape(t, reg)
	if strings.Contains(out, fmt.Sprintf("backend=%q", extra.addr)) {
		t.Errorf("removed backend still exported:\n%s", out)
	}
	for _, want := range []string{
		"wisdom_router_drains_total 1",
		"wisdom_router_removes_total 1",
		`wisdom_router_backends{state="active"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("post-remove scrape missing %q:\n%s", want, out)
		}
	}
}

func TestBackendsAndOwner(t *testing.T) {
	rt, reps := startFleet(t, 3, Options{})
	addrs := rt.Backends()
	if len(addrs) != 3 {
		t.Fatalf("Backends = %v, want 3 entries", addrs)
	}
	if !sort.StringsAreSorted(addrs) {
		t.Errorf("Backends not sorted: %v", addrs)
	}
	known := byAddr(reps)
	for _, a := range addrs {
		if known[a] == nil {
			t.Errorf("Backends reported unknown address %s", a)
		}
	}

	addr, ok := rt.Owner(serve.Request{Prompt: "who owns me"})
	if !ok || known[addr] == nil {
		t.Fatalf("Owner = %q, %v", addr, ok)
	}
	// The session ID, not the content, picks a session request's owner.
	s1, ok1 := rt.Owner(serve.Request{SessionID: "sess", Prompt: "a"})
	s2, ok2 := rt.Owner(serve.Request{SessionID: "sess", Prompt: "b"})
	if !ok1 || !ok2 || s1 != s2 {
		t.Errorf("session owner unstable across prompts: %q vs %q", s1, s2)
	}
}

// TestHeartbeatLoopMarksDead exercises the background sweep loop itself —
// every other test drives CheckBackends explicitly. The loop is wall-clock
// driven by design, so this test polls for convergence under a bounded
// deadline; it is a liveness check, not a hot assertion.
func TestHeartbeatLoopMarksDead(t *testing.T) {
	var addrs []string
	var reps []*replica
	for i := 0; i < 2; i++ {
		r := startReplica(t, fmt.Sprintf("hb%d", i), "", serve.Options{})
		reps = append(reps, r)
		addrs = append(addrs, r.addr)
	}
	rt, err := New(addrs, Options{HeartbeatInterval: 2 * time.Millisecond, DeadAfter: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()

	reps[0].stop(t)
	deadline := time.Now().Add(10 * time.Second)
	for rt.Ring().Alive(reps[0].addr) {
		if time.Now().After(deadline) {
			t.Fatal("background heartbeat never marked the stopped replica dead")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !rt.Ring().Alive(reps[1].addr) {
		t.Error("surviving replica marked dead by the sweep")
	}
}
