// Backend state: one entry per replica, holding the connection pool the
// router forwards through, the circuit breaker guarding the replica, the
// heartbeat bookkeeping that decides ring liveness, and the per-backend
// counters exported as metrics.

package router

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"wisdom/internal/observe"
	"wisdom/internal/resilience"
	"wisdom/internal/serve"
)

// backend is the router's view of one replica.
type backend struct {
	addr    string
	breaker *resilience.Breaker
	wrap    func(net.Conn) net.Conn // forwarding-connection hook (fault injection); nil in production
	timeout time.Duration           // per-round-trip I/O deadline on forwarded calls
	maxIdle int

	// Connection pool: serve.Client serialises round trips on one
	// connection, so concurrent forwards to one backend each check out
	// their own client and return it when done. Broken clients are
	// discarded at the failure site, never pooled.
	poolMu sync.Mutex
	idle   []*serve.Client

	// Heartbeat state, touched only by the heartbeat sweep (one goroutine
	// at a time; hbMu guards against overlapping manual CheckBackends
	// calls). The heartbeat dials its own undecorated connection — fault
	// injection on the forwarding path must not shake the liveness verdict.
	hbMu     sync.Mutex
	hbClient *serve.Client
	hbFails  int

	alive    atomic.Bool
	draining atomic.Bool // set once by Drain/Remove; a draining backend never serves new placements

	// In-flight forward accounting for graceful removal: beginForward /
	// endForward bracket every forwarded exchange, and awaitIdle blocks a
	// Remove until the count hits zero. Waiter registration and the final
	// decrement both run under drainMu so a waiter can never miss the
	// wakeup for a decrement that raced its registration.
	inflight    atomic.Int64
	drainMu     sync.Mutex
	drainWaiter chan struct{} // lazily created; closed (and cleared) when inflight reaches 0

	// Per-backend counters (live regardless of instrumentation).
	requests   atomic.Uint64      // forwards answered by this backend
	errors     atomic.Uint64      // forward attempts that failed (transport or shed)
	spillovers atomic.Uint64      // forwards served here because an earlier ring node failed
	latency    *observe.Histogram // nil until Instrument
}

func newBackend(addr string, cfg resilience.BreakerConfig, wrap func(net.Conn) net.Conn, timeout time.Duration, maxIdle int) *backend {
	b := &backend{
		addr:    addr,
		breaker: resilience.NewBreaker(cfg),
		wrap:    wrap,
		timeout: timeout,
		maxIdle: maxIdle,
	}
	b.alive.Store(true) // optimistic until the first heartbeat verdict
	return b
}

// beginForward records one in-flight forwarded exchange.
func (b *backend) beginForward() { b.inflight.Add(1) }

// endForward retires one in-flight exchange, waking any Remove blocked in
// awaitIdle when the count reaches zero.
func (b *backend) endForward() {
	if b.inflight.Add(-1) != 0 {
		return
	}
	b.drainMu.Lock()
	w := b.drainWaiter
	b.drainWaiter = nil
	b.drainMu.Unlock()
	if w != nil {
		close(w)
	}
}

// awaitIdle blocks until the backend has no in-flight forwards or ctx
// expires. The check-then-register loop runs under drainMu, mirroring
// endForward's decrement-then-close, so a wakeup is never lost: either the
// waiter sees inflight==0 directly, or it registers the channel before the
// final endForward collects it.
func (b *backend) awaitIdle(ctx context.Context) error {
	for {
		b.drainMu.Lock()
		if b.inflight.Load() == 0 {
			b.drainMu.Unlock()
			return nil
		}
		if b.drainWaiter == nil {
			b.drainWaiter = make(chan struct{})
		}
		w := b.drainWaiter
		b.drainMu.Unlock()
		select {
		case <-w:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// get checks out a pooled client, dialing a fresh one when the pool is
// empty. The caller must hand the client back with put (healthy) or
// discard (broken).
func (b *backend) get() (*serve.Client, error) {
	b.poolMu.Lock()
	if n := len(b.idle); n > 0 {
		c := b.idle[n-1]
		b.idle = b.idle[:n-1]
		b.poolMu.Unlock()
		return c, nil
	}
	b.poolMu.Unlock()
	var wrap func(net.Conn) net.Conn
	if b.wrap != nil {
		wrap = b.wrap
	}
	c, err := serve.DialWith(b.addr, wrap)
	if err != nil {
		return nil, err
	}
	if b.timeout > 0 {
		c.SetTimeout(b.timeout)
	}
	return c, nil
}

// put returns a healthy client to the pool (closing it when the pool is
// full or the client broke since checkout).
func (b *backend) put(c *serve.Client) {
	if c.Broken() {
		c.Close()
		return
	}
	b.poolMu.Lock()
	if len(b.idle) < b.maxIdle {
		b.idle = append(b.idle, c)
		b.poolMu.Unlock()
		return
	}
	b.poolMu.Unlock()
	c.Close()
}

// discard closes a condemned client.
func (b *backend) discard(c *serve.Client) { c.Close() }

// closeIdle closes every pooled connection and the heartbeat client.
func (b *backend) closeIdle() {
	b.poolMu.Lock()
	idle := b.idle
	b.idle = nil
	b.poolMu.Unlock()
	for _, c := range idle {
		c.Close()
	}
	b.hbMu.Lock()
	if b.hbClient != nil {
		b.hbClient.Close()
		b.hbClient = nil
	}
	b.hbMu.Unlock()
}

// heartbeat performs one health round trip, returning whether the replica
// answered and the updated count of consecutive failures (zero on success).
// It maintains its own dedicated connection, redialing after any failure so
// a half-dead connection cannot wedge the liveness verdict.
func (b *backend) heartbeat(timeout time.Duration) (ok bool, fails int) {
	b.hbMu.Lock()
	defer b.hbMu.Unlock()
	if b.hbClient == nil {
		c, err := serve.Dial(b.addr)
		if err != nil {
			b.hbFails++
			return false, b.hbFails
		}
		if timeout > 0 {
			c.SetTimeout(timeout)
		}
		b.hbClient = c
	}
	resp, err := b.hbClient.Health()
	if err != nil || resp.Status != "ok" {
		b.hbClient.Close()
		b.hbClient = nil
		b.hbFails++
		return false, b.hbFails
	}
	b.hbFails = 0
	return true, 0
}

// stats fetches the replica's own counter snapshot over a pooled
// connection (RPC stats op); ok is false when the replica is unreachable
// or predates the op.
func (b *backend) stats() (serve.Stats, bool) {
	c, err := b.get()
	if err != nil {
		return serve.Stats{}, false
	}
	st, err := c.Stats()
	if err != nil {
		if c.Broken() {
			b.discard(c)
		} else {
			b.put(c)
		}
		return serve.Stats{}, false
	}
	b.put(c)
	return st, true
}
