// Membership control-plane tests: runtime join/drain/remove against real
// in-process replicas, the session ownership tracker behind the cold-start
// check, and the router's AdminHandler implementation. Synchronisation is
// by channel signal (replicaModel.awaitBlocked) — no wall-clock sleeps on
// hot assertions.

package router

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"wisdom/internal/serve"
)

// TestMembershipJoinServesTraffic joins a fourth replica at runtime and
// proves it takes ring ownership: the epoch bumps, the member table lists
// it active, and a prompt it owns is answered by it.
func TestMembershipJoinServesTraffic(t *testing.T) {
	rt, _ := startFleet(t, 3, Options{})
	joiner := startReplica(t, "joiner", "", serve.Options{})

	before := rt.MembershipEpoch()
	if err := rt.Join(context.Background(), joiner.addr); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if got := rt.MembershipEpoch(); got != before+1 {
		t.Errorf("epoch = %d after join, want %d", got, before+1)
	}
	if got := rt.Joins(); got != 1 {
		t.Errorf("Joins() = %d, want 1", got)
	}

	found := false
	for _, m := range rt.Members() {
		if m.Addr == joiner.addr {
			found = true
			if m.State != memberActive {
				t.Errorf("joiner state = %q, want %q", m.State, memberActive)
			}
			if !m.Alive {
				t.Error("joiner not alive after warm-up heartbeat")
			}
			if m.RingShare <= 0 {
				t.Errorf("joiner ring share = %v, want > 0", m.RingShare)
			}
		}
	}
	if !found {
		t.Fatalf("joiner %s missing from Members(): %+v", joiner.addr, rt.Members())
	}

	// Find a prompt the joiner owns and forward it: the answer must carry
	// the joiner's name.
	prompt := ownedPrompt(t, rt.ring, joiner.addr)
	resp, err := rt.PredictRoute(context.Background(), serve.Request{Prompt: prompt})
	if err != nil {
		t.Fatalf("PredictRoute: %v", err)
	}
	if want := joiner.model.answer(prompt); resp.Suggestion != want {
		t.Fatalf("owned prompt answered %q, want the joiner's %q", resp.Suggestion, want)
	}
}

// ownedPrompt finds a prompt whose affinity key the given backend owns.
func ownedPrompt(t testing.TB, ring *Ring, addr string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		p := fmt.Sprintf("task-%d", i)
		if owner, ok := ring.Lookup(affinityKey(serve.Request{Prompt: p})); ok && owner == addr {
			return p
		}
	}
	t.Fatalf("no prompt owned by %s in 10000 tries", addr)
	return ""
}

// TestMembershipJoinRejectsUnhealthy joins an address nothing listens on:
// the warm-up round trip fails, the join is rejected with ErrJoinUnhealthy,
// and neither the ring nor the member table changed.
func TestMembershipJoinRejectsUnhealthy(t *testing.T) {
	rt, _ := startFleet(t, 2, Options{HeartbeatTimeout: 200 * time.Millisecond})
	before := rt.MembershipEpoch()
	err := rt.Join(context.Background(), "127.0.0.1:1") // reserved port, nothing listens
	if !errors.Is(err, ErrJoinUnhealthy) {
		t.Fatalf("Join(unreachable) = %v, want ErrJoinUnhealthy", err)
	}
	if got := rt.MembershipEpoch(); got != before {
		t.Errorf("epoch moved %d -> %d on a rejected join", before, got)
	}
	if got := len(rt.Members()); got != 2 {
		t.Errorf("members = %d after rejected join, want 2", got)
	}
	if got := rt.Joins(); got != 0 {
		t.Errorf("Joins() = %d after rejected join, want 0", got)
	}
}

// TestMembershipJoinDuplicate rejects joining an address already in the
// fleet.
func TestMembershipJoinDuplicate(t *testing.T) {
	rt, reps := startFleet(t, 2, Options{})
	if err := rt.Join(context.Background(), reps[0].addr); !errors.Is(err, ErrBackendExists) {
		t.Fatalf("Join(existing) = %v, want ErrBackendExists", err)
	}
	if err := rt.Join(context.Background(), "  "); err == nil {
		t.Fatal("Join(blank) succeeded, want error")
	}
}

// TestMembershipDrain drains one backend of three: it leaves the ring (its
// prompts reroute), stays in the member table as draining, and a second
// drain is a no-op.
func TestMembershipDrain(t *testing.T) {
	rt, reps := startFleet(t, 3, Options{})
	target := reps[0]
	prompt := ownedPrompt(t, rt.ring, target.addr)

	before := rt.MembershipEpoch()
	if err := rt.Drain(target.addr); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := rt.MembershipEpoch(); got != before+1 {
		t.Errorf("epoch = %d after drain, want %d", got, before+1)
	}
	if got := rt.Drains(); got != 1 {
		t.Errorf("Drains() = %d, want 1", got)
	}

	// The drained backend's prompt now lands elsewhere.
	resp, err := rt.PredictRoute(context.Background(), serve.Request{Prompt: prompt})
	if err != nil {
		t.Fatalf("PredictRoute after drain: %v", err)
	}
	if strings.HasPrefix(resp.Suggestion, target.name+"|") {
		t.Fatalf("drained backend %s still receives new placements", target.name)
	}

	// Still a member, now draining.
	var st string
	for _, m := range rt.Members() {
		if m.Addr == target.addr {
			st = m.State
		}
	}
	if st != memberDraining {
		t.Errorf("drained backend state = %q, want %q", st, memberDraining)
	}

	// Idempotent: a second drain changes nothing.
	if err := rt.Drain(target.addr); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
	if got := rt.MembershipEpoch(); got != before+1 {
		t.Errorf("epoch = %d after idempotent drain, want %d", got, before+1)
	}

	// Unknown address is an error.
	if err := rt.Drain("10.0.0.1:1"); !errors.Is(err, ErrUnknownBackend) {
		t.Errorf("Drain(unknown) = %v, want ErrUnknownBackend", err)
	}
}

// TestMembershipDrainLastBackendRefused refuses to drain the only active
// backend — a fleet with zero placeable backends answers nothing.
func TestMembershipDrainLastBackendRefused(t *testing.T) {
	rt, reps := startFleet(t, 2, Options{})
	if err := rt.Drain(reps[0].addr); err != nil {
		t.Fatalf("first drain: %v", err)
	}
	if err := rt.Drain(reps[1].addr); !errors.Is(err, ErrLastBackend) {
		t.Fatalf("Drain(last active) = %v, want ErrLastBackend", err)
	}
	if err := rt.Remove(context.Background(), reps[1].addr); !errors.Is(err, ErrLastBackend) {
		t.Fatalf("Remove(last active) = %v, want ErrLastBackend", err)
	}
}

// TestMembershipRemoveWaitsForInflight parks a forward on the victim, calls
// Remove concurrently, and proves Remove does not complete until the
// forward finishes — then the backend is gone from the member table and its
// pooled connections are closed.
func TestMembershipRemoveWaitsForInflight(t *testing.T) {
	rt, reps := startFleet(t, 3, Options{})
	victim := replicaOwning(t, rt, reps, "block")

	// Park one forward on the victim.
	done := make(chan error, 1)
	go func() {
		_, err := rt.PredictRoute(context.Background(), serve.Request{Prompt: "block"})
		done <- err
	}()
	victim.model.awaitBlocked(t)

	removed := make(chan error, 1)
	go func() { removed <- rt.Remove(context.Background(), victim.addr) }()

	// Remove must be parked on the in-flight forward. Poll the membership
	// table: the victim must still be present (draining) while blocked.
	select {
	case err := <-removed:
		t.Fatalf("Remove returned (%v) while a forward was still in flight", err)
	case <-time.After(50 * time.Millisecond):
		// Still waiting — the expected state. This sleep bounds how long we
		// give a buggy Remove to return early; it is not a hot assertion.
	}
	if b := rt.backendFor(victim.addr); b == nil {
		t.Fatal("victim vanished from the backend table while in flight")
	} else if got := b.inflight.Load(); got != 1 {
		t.Fatalf("victim inflight = %d while parked, want 1", got)
	}

	victim.model.unblock()
	if err := <-done; err != nil {
		t.Fatalf("in-flight forward failed during remove: %v", err)
	}
	if err := <-removed; err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if got := rt.Removes(); got != 1 {
		t.Errorf("Removes() = %d, want 1", got)
	}
	for _, m := range rt.Members() {
		if m.Addr == victim.addr {
			t.Fatalf("removed backend %s still in Members()", victim.addr)
		}
	}
	if rt.backendFor(victim.addr) != nil {
		t.Fatal("removed backend still in the backend table")
	}
}

// replicaOwning returns the replica owning the given prompt.
func replicaOwning(t testing.TB, rt *Router, reps []*replica, prompt string) *replica {
	t.Helper()
	owner, ok := rt.ring.Lookup(affinityKey(serve.Request{Prompt: prompt}))
	if !ok {
		t.Fatal("empty ring")
	}
	for _, r := range reps {
		if r.addr == owner {
			return r
		}
	}
	t.Fatalf("owner %s not among replicas", owner)
	return nil
}

// TestMembershipRemoveCtxBound bounds Remove by context: with a forward
// parked forever, a context deadline unwedges the caller with an error and
// the backend stays (draining) in the table.
func TestMembershipRemoveCtxBound(t *testing.T) {
	rt, reps := startFleet(t, 3, Options{})
	victim := replicaOwning(t, rt, reps, "block")

	go func() {
		_, _ = rt.PredictRoute(context.Background(), serve.Request{Prompt: "block"})
	}()
	victim.model.awaitBlocked(t)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := rt.Remove(ctx, victim.addr); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Remove with expired ctx = %v, want DeadlineExceeded", err)
	}
	if rt.backendFor(victim.addr) == nil {
		t.Fatal("backend removed despite the bounded wait failing")
	}
	victim.model.unblock()
}

// TestMembershipRejoinAfterRemove removes a backend and joins it back:
// the rejoin succeeds and the backend serves its owned prompts again.
func TestMembershipRejoinAfterRemove(t *testing.T) {
	rt, reps := startFleet(t, 3, Options{})
	target := reps[2]
	if err := rt.Remove(context.Background(), target.addr); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := rt.Join(context.Background(), target.addr); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	prompt := ownedPrompt(t, rt.ring, target.addr)
	resp, err := rt.PredictRoute(context.Background(), serve.Request{Prompt: prompt})
	if err != nil {
		t.Fatalf("PredictRoute after rejoin: %v", err)
	}
	if want := target.model.answer(prompt); resp.Suggestion != want {
		t.Fatalf("rejoined backend's prompt answered %q, want %q", resp.Suggestion, want)
	}
}

// TestMembershipConcurrentChurn hammers Join/Drain/Remove from
// many goroutines; the invariant is freedom from deadlock and a consistent
// final table (run under -race to catch data races).
func TestMembershipConcurrentChurn(t *testing.T) {
	rt, _ := startFleet(t, 3, Options{HeartbeatTimeout: 200 * time.Millisecond})
	extras := make([]*replica, 4)
	for i := range extras {
		extras[i] = startReplica(t, fmt.Sprintf("extra%d", i), "", serve.Options{})
	}
	var wg sync.WaitGroup
	for _, e := range extras {
		e := e
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				_ = rt.Join(context.Background(), e.addr)
				_ = rt.Remove(context.Background(), e.addr)
			}
		}()
	}
	wg.Wait()
	// Every extra ended removed (the last op per goroutine); the core fleet
	// is intact.
	if got := len(rt.Members()); got != 3 {
		t.Fatalf("members = %d after churn, want the 3 originals: %+v", got, rt.Members())
	}
}

// TestSessionResetOnOwnerChange routes a session, drains its owner so the
// ring moves it, and checks the next request is stamped session_reset: the
// replica cold-starts instead of resuming another conversation's state.
func TestSessionResetOnOwnerChange(t *testing.T) {
	rt, reps := startFleet(t, 3, Options{})
	const sid = "sess-move"
	req := serve.Request{Prompt: "hello", SessionID: sid}
	ownerAddr, _ := rt.ring.Lookup(affinityKey(req))
	var owner *replica
	for _, r := range reps {
		if r.addr == ownerAddr {
			owner = r
		}
	}
	if owner == nil {
		t.Fatalf("session owner %s not among replicas", ownerAddr)
	}

	// First request seats the session on its owner.
	if _, err := rt.PredictRoute(context.Background(), req); err != nil {
		t.Fatalf("first session request: %v", err)
	}
	if got := rt.SessionMoves(); got != 0 {
		t.Fatalf("SessionMoves = %d after first contact, want 0", got)
	}

	// Drain the owner: the session's arcs move to a successor.
	if err := rt.Drain(owner.addr); err != nil {
		t.Fatalf("Drain(owner): %v", err)
	}
	if _, err := rt.PredictRoute(context.Background(), req); err != nil {
		t.Fatalf("post-drain session request: %v", err)
	}
	if got := rt.SessionMoves(); got != 1 {
		t.Errorf("SessionMoves = %d after the owner drained, want 1", got)
	}

	// Steady state on the new owner: no further resets.
	if _, err := rt.PredictRoute(context.Background(), req); err != nil {
		t.Fatalf("steady-state session request: %v", err)
	}
	if got := rt.SessionMoves(); got != 1 {
		t.Errorf("SessionMoves = %d in steady state, want still 1", got)
	}
}

// TestSessionTrackerBounds exercises the LRU bound: beyond capacity the
// least-recently routed session is forgotten, and a forgotten session does
// not report a move.
func TestSessionTrackerBounds(t *testing.T) {
	var tr sessionTracker
	tr.init(2)
	tr.note("a", "x", 1)
	tr.note("b", "x", 1)
	if !tr.movedTo("a", "y", 1) {
		t.Error("tracked session a should report a move to a different addr")
	}
	if tr.movedTo("a", "x", 1) {
		t.Error("tracked session a reports a move to its own addr")
	}
	// Same addr under a newer epoch: still not a move (addr comparison).
	if tr.movedTo("a", "x", 2) {
		t.Error("same-addr lookup under a new epoch is not a move")
	}
	// movedTo does not bump recency, so "a" (noted first) is still the LRU
	// entry; noting "c" past capacity evicts it.
	tr.note("c", "x", 1)
	if tr.movedTo("a", "y", 1) {
		t.Error("evicted session should not report a move")
	}
	if tr.movedTo("never-seen", "y", 1) {
		t.Error("untracked session reports a move")
	}
}

// TestHandleAdminDispatch drives the AdminHandler seam directly: status
// lists members; join/drain/remove mutate; errors surface as status=error
// with the message, and every response carries the post-action epoch and
// table.
func TestHandleAdminDispatch(t *testing.T) {
	rt, reps := startFleet(t, 3, Options{HeartbeatTimeout: 200 * time.Millisecond})
	joiner := startReplica(t, "joiner", "", serve.Options{})
	ctx := context.Background()

	st := rt.HandleAdmin(ctx, serve.AdminRequest{Action: serve.AdminStatus})
	if st.Status != "ok" || len(st.Members) != 3 || st.Epoch != rt.MembershipEpoch() {
		t.Fatalf("status response = %+v, want ok with 3 members at the current epoch", st)
	}

	jr := rt.HandleAdmin(ctx, serve.AdminRequest{Action: serve.AdminJoin, Backend: joiner.addr})
	if jr.Status != "ok" || len(jr.Members) != 4 {
		t.Fatalf("join response = %+v, want ok with 4 members", jr)
	}

	dr := rt.HandleAdmin(ctx, serve.AdminRequest{Action: serve.AdminDrain, Backend: reps[0].addr})
	if dr.Status != "ok" {
		t.Fatalf("drain response = %+v", dr)
	}

	rm := rt.HandleAdmin(ctx, serve.AdminRequest{Action: serve.AdminRemove, Backend: reps[0].addr})
	if rm.Status != "ok" || len(rm.Members) != 3 {
		t.Fatalf("remove response = %+v, want ok with 3 members", rm)
	}

	bad := rt.HandleAdmin(ctx, serve.AdminRequest{Action: serve.AdminJoin, Backend: "127.0.0.1:1"})
	if bad.Status != "error" || bad.Error == "" {
		t.Fatalf("failed join response = %+v, want status=error with a message", bad)
	}
	if len(bad.Members) != 3 {
		t.Errorf("error response carries %d members, want the table anyway", len(bad.Members))
	}

	unk := rt.HandleAdmin(ctx, serve.AdminRequest{Action: "explode"})
	if unk.Status != "error" {
		t.Fatalf("unknown action response = %+v, want status=error", unk)
	}
}

// TestMembershipStatsState checks AggregateStats reports per-backend state
// (active/draining) and keeps draining backends in the fleet view.
func TestMembershipStatsState(t *testing.T) {
	rt, reps := startFleet(t, 3, Options{})
	if err := rt.Drain(reps[1].addr); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	stats := rt.AggregateStats(serve.Stats{}).(FleetStats)
	if len(stats.Backends) != 3 {
		t.Fatalf("stats cover %d backends, want 3 (draining stays visible)", len(stats.Backends))
	}
	states := map[string]string{}
	for _, b := range stats.Backends {
		states[b.Addr] = b.State
	}
	if states[reps[1].addr] != memberDraining {
		t.Errorf("drained backend state = %q, want %q", states[reps[1].addr], memberDraining)
	}
	if states[reps[0].addr] != memberActive {
		t.Errorf("active backend state = %q, want %q", states[reps[0].addr], memberActive)
	}
}
