// Benchmarks backing BENCH_PR9.json: router-forwarded throughput over a
// single replica and a 3-replica fleet, plus the steady-state spillover
// path (dead owner with an open breaker, request served by the ring
// successor). Replicas are real in-process serve instances reached over
// loopback TCP, so every op pays the full RPC round trip.

package router

import (
	"context"
	"fmt"
	"testing"
	"time"

	"wisdom/internal/resilience"
	"wisdom/internal/serve"
)

// benchRouterUnary drives distinct-key unary requests through a router over
// n replicas. Forwarding is I/O-bound, so the benchmark fans out 8
// goroutines per proc to keep backend workers busy even at GOMAXPROCS=1.
func benchRouterUnary(b *testing.B, n int) {
	rt, _ := startFleet(b, n, Options{})
	reqs := make([]serve.Request, 256)
	for i := range reqs {
		reqs[i] = serve.Request{Prompt: fmt.Sprintf("bench-%04d", i)}
	}
	ctx := context.Background()
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := rt.PredictRoute(ctx, reqs[i%len(reqs)]); err != nil {
				b.Errorf("PredictRoute: %v", err)
				return
			}
			i++
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

func BenchmarkRouterUnary1(b *testing.B) { benchRouterUnary(b, 1) }
func BenchmarkRouterUnary3(b *testing.B) { benchRouterUnary(b, 3) }

// BenchmarkRouterSpillover measures the spillover path in steady state: the
// key's ring owner is down and its breaker is open, so every request skips
// the owner and is served by the next live ring node. The delta against
// BenchmarkRouterUnary3 is the per-request cost of failing over.
func BenchmarkRouterSpillover(b *testing.B) {
	rt, reps := startFleet(b, 3, Options{
		Breaker: resilience.BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour},
	})
	victim := reps[0]
	req := serve.Request{Prompt: promptOwnedBy(b, rt, victim.addr)}
	victim.stop(b)
	ctx := context.Background()
	// One warm-up request pays the dial failure and opens the breaker.
	if _, err := rt.PredictRoute(ctx, req); err != nil {
		b.Fatalf("warm-up PredictRoute: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.PredictRoute(ctx, req); err != nil {
			b.Fatalf("PredictRoute: %v", err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	if got := rt.Spillovers(); got == 0 {
		b.Fatal("benchmark never spilled over")
	}
}
