// Deterministic ring tests. The hash function is platform-stable by
// construction (FNV-1a + a fixed finalizer), so these tests pin exact
// shard counts and exact key movements — any change to the hashing or
// lookup rules shows up as a hard diff, not a flaky bound.

package router

import (
	"fmt"
	"math"
	"testing"
)

var ringNodes = []string{"10.0.0.1:9000", "10.0.0.2:9000", "10.0.0.3:9000"}

func buildRing(t testing.TB, nodes ...string) *Ring {
	t.Helper()
	r := NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// testKey makes the i'th deterministic request key.
func testKey(i int) string { return fmt.Sprintf("key-%04d", i) }

// assignments maps each of the first n test keys to its ring owner.
func assignments(t *testing.T, r *Ring, n int) map[string]string {
	t.Helper()
	owners := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := testKey(i)
		node, ok := r.Lookup(k)
		if !ok {
			t.Fatalf("Lookup(%q): no live node on a fully-live ring", k)
		}
		owners[k] = node
	}
	return owners
}

// TestRingDistributionBalance shards 1k sequential keys over 3 nodes and
// pins the exact per-node counts; the max/min bound additionally documents
// the balance guarantee the pinned numbers happen to satisfy.
func TestRingDistributionBalance(t *testing.T) {
	r := buildRing(t, ringNodes...)
	counts := map[string]int{}
	for k, node := range assignments(t, r, 1000) {
		_ = k
		counts[node]++
	}
	want := map[string]int{
		"10.0.0.1:9000": 351,
		"10.0.0.2:9000": 364,
		"10.0.0.3:9000": 285,
	}
	for node, w := range want {
		if counts[node] != w {
			t.Errorf("node %s owns %d of 1000 keys, want exactly %d", node, counts[node], w)
		}
	}
	min, max := 1000, 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max > 2*min {
		t.Errorf("distribution too skewed: max %d > 2*min %d", max, min)
	}
}

// TestRingJoinMovesOnlyToJoiner pins the exact number of keys that move
// when a fourth node joins, and requires every moved key to have moved TO
// the joiner — the defining property of consistent hashing (an unrelated
// pair of nodes never exchanges keys on a join).
func TestRingJoinMovesOnlyToJoiner(t *testing.T) {
	r := buildRing(t, ringNodes...)
	before := assignments(t, r, 1000)
	const joiner = "10.0.0.4:9000"
	r.Add(joiner)
	moved := 0
	for i := 0; i < 1000; i++ {
		k := testKey(i)
		node, _ := r.Lookup(k)
		if node == before[k] {
			continue
		}
		moved++
		if node != joiner {
			t.Fatalf("key %q moved %s -> %s on join; keys may only move to the joiner %s", k, before[k], node, joiner)
		}
	}
	if moved != 239 {
		t.Errorf("join moved %d of 1000 keys, want exactly 239 (~1/4 of the keyspace)", moved)
	}
}

// TestRingLeaveMovesOnlyOrphans pins the exact number of keys that move
// when a node is removed: precisely the removed node's keys, nothing else.
func TestRingLeaveMovesOnlyOrphans(t *testing.T) {
	r := buildRing(t, ringNodes...)
	before := assignments(t, r, 1000)
	const removed = "10.0.0.2:9000"
	r.Remove(removed)
	moved := 0
	for i := 0; i < 1000; i++ {
		k := testKey(i)
		node, _ := r.Lookup(k)
		if node == removed {
			t.Fatalf("key %q still owned by removed node %s", k, removed)
		}
		if node != before[k] {
			moved++
			if before[k] != removed {
				t.Fatalf("key %q moved %s -> %s, but only keys of the removed node %s may move", k, before[k], node, removed)
			}
		}
	}
	if moved != 364 {
		t.Errorf("leave moved %d keys, want exactly 364 (= the removed node's pinned share)", moved)
	}
}

// TestRingDeadNodeRangeSnapsBack marks a node dead (heartbeat semantics:
// points stay, ownership skips), checks only its keys move, then revives it
// and requires every assignment to return exactly to the original — no
// residual movement after a flap.
func TestRingDeadNodeRangeSnapsBack(t *testing.T) {
	r := buildRing(t, ringNodes...)
	before := assignments(t, r, 1000)
	const dead = "10.0.0.3:9000"
	r.SetAlive(dead, false)
	for i := 0; i < 1000; i++ {
		k := testKey(i)
		node, ok := r.Lookup(k)
		if !ok || node == dead {
			t.Fatalf("key %q resolved to %q (ok=%v) while %s is dead", k, node, ok, dead)
		}
		if before[k] != dead && node != before[k] {
			t.Fatalf("key %q moved %s -> %s, but only the dead node's keys may move", k, before[k], node)
		}
	}
	r.SetAlive(dead, true)
	after := assignments(t, r, 1000)
	for k, node := range after {
		if node != before[k] {
			t.Fatalf("key %q owned by %s after revival, was %s before the flap", k, node, before[k])
		}
	}
}

// TestRingSuccessorsOrder checks the spillover candidate list: the owner
// leads, entries are distinct, liveness filters, and SuccessorsAll ignores
// liveness.
func TestRingSuccessorsOrder(t *testing.T) {
	r := buildRing(t, ringNodes...)
	const key = "key-0001"
	owner, ok := r.Lookup(key)
	if !ok {
		t.Fatal("no owner on live ring")
	}
	succ := r.Successors(key, 0)
	if len(succ) != len(ringNodes) {
		t.Fatalf("Successors(0) = %v, want all %d nodes", succ, len(ringNodes))
	}
	if succ[0] != owner {
		t.Fatalf("Successors[0] = %s, want owner %s", succ[0], owner)
	}
	seen := map[string]bool{}
	for _, n := range succ {
		if seen[n] {
			t.Fatalf("duplicate node %s in successor list %v", n, succ)
		}
		seen[n] = true
	}

	// Killing the owner promotes the old second candidate.
	r.SetAlive(owner, false)
	promoted, ok := r.Lookup(key)
	if !ok || promoted != succ[1] {
		t.Fatalf("after owner death Lookup = %q (ok=%v), want promoted successor %s", promoted, ok, succ[1])
	}
	live := r.Successors(key, 0)
	for _, n := range live {
		if n == owner {
			t.Fatalf("dead node %s still in live successor list %v", owner, live)
		}
	}
	all := r.SuccessorsAll(key, 0)
	if len(all) != len(ringNodes) {
		t.Fatalf("SuccessorsAll = %v, want every node regardless of liveness", all)
	}
}

// TestRingOwnership checks the keyspace-share invariants behind the
// ring-share gauge: live shares sum to 1, dead nodes own nothing, and a
// lone node owns everything (including the single-point edge case).
func TestRingOwnership(t *testing.T) {
	r := buildRing(t, ringNodes...)
	own := r.Ownership()
	sum := 0.0
	for node, share := range own {
		if share <= 0 {
			t.Errorf("node %s owns share %v, want > 0", node, share)
		}
		sum += share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("live shares sum to %v, want 1", sum)
	}

	r.SetAlive("10.0.0.1:9000", false)
	own = r.Ownership()
	if _, ok := own["10.0.0.1:9000"]; ok {
		t.Errorf("dead node still holds ownership share %v", own["10.0.0.1:9000"])
	}
	sum = 0.0
	for _, share := range own {
		sum += share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("live shares sum to %v after a death, want 1", sum)
	}

	solo := NewRing(1) // one node, one point: exercises the 2^64-arc edge case
	solo.Add("only")
	if share := solo.Ownership()["only"]; share != 1 {
		t.Errorf("single-point ring: sole node owns %v, want 1", share)
	}

	if n := len(NewRing(0).Ownership()); n != 0 {
		t.Errorf("empty ring ownership has %d entries, want 0", n)
	}
	allDead := buildRing(t, "a", "b")
	allDead.SetAlive("a", false)
	allDead.SetAlive("b", false)
	if n := len(allDead.Ownership()); n != 0 {
		t.Errorf("all-dead ring ownership has %d entries, want 0", n)
	}
}

// TestRingEmptyAndUnknown covers the degenerate paths: lookups on an empty
// ring, duplicate Add, unknown Remove/SetAlive.
func TestRingEmptyAndUnknown(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Lookup("k"); ok {
		t.Error("Lookup on empty ring reported a node")
	}
	if s := r.Successors("k", 3); s != nil {
		t.Errorf("Successors on empty ring = %v, want nil", s)
	}
	r.Remove("ghost")         // no-op
	r.SetAlive("ghost", true) // no-op
	if r.Alive("ghost") {
		t.Error("unknown node reported alive")
	}

	r.Add("a")
	r.Add("a") // duplicate must not double the vnode share
	own := r.Ownership()
	if math.Abs(own["a"]-1) > 1e-9 {
		t.Errorf("after duplicate Add, node owns %v, want 1", own["a"])
	}
	if got := len(r.Nodes()); got != 1 {
		t.Errorf("after duplicate Add, ring has %d nodes, want 1", got)
	}
}

// FuzzRingLookup drives the ring with arbitrary key bytes and a liveness
// mask: Lookup must never panic, must return a live node whenever one
// exists, must agree with Successors[0], and Successors must stay
// duplicate-free.
func FuzzRingLookup(f *testing.F) {
	f.Add("key-0001", uint8(0b111))
	f.Add("", uint8(0))
	f.Add("\x00\xff\x00", uint8(0b010))
	f.Add("session:abc", uint8(0b101))
	f.Fuzz(func(t *testing.T, key string, liveMask uint8) {
		r := buildRing(t, ringNodes...)
		anyLive := false
		for i, n := range ringNodes {
			alive := liveMask&(1<<i) != 0
			r.SetAlive(n, alive)
			anyLive = anyLive || alive
		}
		node, ok := r.Lookup(key)
		if ok != anyLive {
			t.Fatalf("Lookup ok=%v with liveMask %03b", ok, liveMask)
		}
		succ := r.Successors(key, 0)
		if anyLive {
			if !r.Alive(node) {
				t.Fatalf("Lookup returned dead node %s", node)
			}
			if len(succ) == 0 || succ[0] != node {
				t.Fatalf("Successors %v disagrees with Lookup %s", succ, node)
			}
		} else if len(succ) != 0 {
			t.Fatalf("Successors on all-dead ring = %v, want empty", succ)
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("duplicate %s in successors %v", n, succ)
			}
			seen[n] = true
			if !r.Alive(n) {
				t.Fatalf("dead node %s in live successors %v", n, succ)
			}
		}
		if all := r.SuccessorsAll(key, 0); len(all) != len(ringNodes) {
			t.Fatalf("SuccessorsAll = %v, want all %d nodes", all, len(ringNodes))
		}
	})
}
