// Membership control plane: runtime join, drain and removal of backends,
// the session ownership tracker behind the cold-start check, and the
// router's implementation of the serve package's AdminHandler seam. The
// serve layer owns decoding, validation and token authentication of admin
// requests; this file owns what they mean.

package router

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"wisdom/internal/serve"
)

// Membership states reported in admin and stats payloads.
const (
	memberActive   = "active"
	memberDraining = "draining"
)

// DefaultSessionTrack is how many sessions the router's ownership tracker
// remembers. A session evicted from the tracker loses move detection until
// its next request re-seats it — an accepted tradeoff for a hard memory
// bound (entries are ~100 bytes).
const DefaultSessionTrack = 65536

// Membership error taxonomy, matched by errors.Is through the admin
// surface's wrapped errors (docs/PROTOCOL.md §7).
var (
	// ErrUnknownBackend: the action targets an address the router does not
	// currently hold.
	ErrUnknownBackend = errors.New("router: unknown backend")
	// ErrBackendExists: a join targets an address already present (or mid-
	// join).
	ErrBackendExists = errors.New("router: backend already present")
	// ErrLastBackend: draining or removing the target would leave the
	// fleet without any active backend.
	ErrLastBackend = errors.New("router: cannot drain the last active backend")
	// ErrJoinUnhealthy: the joining backend failed its warm-up health
	// check, so it never took ring ownership.
	ErrJoinUnhealthy = errors.New("router: joining backend failed its health check")
)

// MembershipEpoch returns the current membership epoch (see Ring.Epoch):
// bumped by every join, leave and liveness flip, and echoed through admin
// responses so operators can correlate observations.
func (r *Router) MembershipEpoch() uint64 { return r.ring.Epoch() }

// SessionMoves returns how many session requests the router cold-started
// because their ring owner changed.
func (r *Router) SessionMoves() uint64 { return r.sessionMoves.Load() }

// Joins returns how many backends joined the fleet at runtime.
func (r *Router) Joins() uint64 { return r.joins.Load() }

// Drains returns how many drains were initiated at runtime.
func (r *Router) Drains() uint64 { return r.drains.Load() }

// Removes returns how many backends completed removal at runtime.
func (r *Router) Removes() uint64 { return r.removes.Load() }

// Join adds a backend to the fleet at runtime. The backend is warmed
// before it takes ring ownership: one health round trip must succeed —
// proving the replica reachable and answering, and priming the heartbeat
// connection the liveness sweep will reuse — or the join is rejected and
// nothing changes. On success the ring epoch bumps and the new backend
// immediately owns its arcs (exactly the joiner's arcs move; every other
// assignment is untouched).
func (r *Router) Join(ctx context.Context, addr string) error {
	addr = strings.TrimSpace(addr)
	if addr == "" {
		return errors.New("router: empty backend address")
	}
	r.backMu.Lock()
	if _, ok := r.backends[addr]; ok {
		r.backMu.Unlock()
		return fmt.Errorf("%w: %s", ErrBackendExists, addr)
	}
	if r.joining[addr] {
		r.backMu.Unlock()
		return fmt.Errorf("%w: %s (join in progress)", ErrBackendExists, addr)
	}
	r.joining[addr] = true
	r.backMu.Unlock()

	// Warm-up runs outside the lock — it is network I/O — with the
	// joining set holding the address against concurrent joins.
	b := r.newBackendFor(addr)
	ok, _ := b.heartbeat(r.opts.HeartbeatTimeout)

	r.backMu.Lock()
	delete(r.joining, addr)
	if !ok || ctx.Err() != nil {
		r.backMu.Unlock()
		b.closeIdle()
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("router: join %s: %w", addr, err)
		}
		return fmt.Errorf("%w: %s", ErrJoinUnhealthy, addr)
	}
	r.backends[addr] = b
	r.backMu.Unlock()
	r.ring.Add(addr)
	r.joins.Add(1)
	r.instMu.Lock()
	if reg := r.inst; reg != nil {
		r.instrumentBackend(reg, addr)
	}
	r.instMu.Unlock()
	return nil
}

// Drain begins a backend's departure: it leaves the ring immediately — new
// placements skip it, its arcs move to its ring successors, the epoch
// bumps — while in-flight forwards and pooled connections stay untouched.
// A draining backend still answers the work it already holds; Remove
// completes the departure. Draining an already-draining backend is a
// no-op; draining the last active backend is refused, because a fleet
// with zero placeable backends answers nothing.
func (r *Router) Drain(addr string) error {
	addr = strings.TrimSpace(addr)
	r.backMu.Lock()
	b := r.backends[addr]
	if b == nil {
		r.backMu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownBackend, addr)
	}
	if b.draining.Load() {
		r.backMu.Unlock()
		return nil
	}
	active := 0
	for _, other := range r.backends {
		if !other.draining.Load() {
			active++
		}
	}
	if active <= 1 {
		r.backMu.Unlock()
		return fmt.Errorf("%w: %s", ErrLastBackend, addr)
	}
	b.draining.Store(true)
	r.backMu.Unlock()
	r.ring.Remove(addr)
	r.drains.Add(1)
	return nil
}

// Remove completes a backend's departure: drain (if not already draining),
// wait — bounded by ctx — until the backend's in-flight forwards hit
// zero, then close its connections, forget it, and retire its metric
// series. A request that raced the removal either finishes on its own
// connection first or fails and spills to the ring successors, so traffic
// never observes a half-removed backend.
func (r *Router) Remove(ctx context.Context, addr string) error {
	addr = strings.TrimSpace(addr)
	if err := r.Drain(addr); err != nil {
		return err
	}
	b := r.backendFor(addr)
	if b == nil {
		return nil // a concurrent Remove already finished the job
	}
	if err := b.awaitIdle(ctx); err != nil {
		return fmt.Errorf("router: remove %s: waiting for in-flight forwards: %w", addr, err)
	}
	r.backMu.Lock()
	if r.backends[addr] != b {
		r.backMu.Unlock()
		return nil // lost the race to another Remove
	}
	delete(r.backends, addr)
	r.backMu.Unlock()
	b.closeIdle()
	r.removes.Add(1)
	r.instMu.Lock()
	if reg := r.inst; reg != nil {
		r.unregisterBackend(reg, addr)
	}
	r.instMu.Unlock()
	return nil
}

// Members returns the membership table, sorted by address — the payload of
// an admin status exchange.
func (r *Router) Members() []serve.AdminMember {
	share := r.ring.Ownership()
	backends := r.snapshotBackends()
	addrs := make([]string, 0, len(backends))
	for addr := range backends {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	out := make([]serve.AdminMember, 0, len(addrs))
	for _, addr := range addrs {
		b := backends[addr]
		state := memberActive
		if b.draining.Load() {
			state = memberDraining
		}
		out = append(out, serve.AdminMember{
			Addr:      addr,
			State:     state,
			Alive:     b.alive.Load(),
			Inflight:  b.inflight.Load(),
			RingShare: share[addr],
		})
	}
	return out
}

// HandleAdmin satisfies serve.AdminHandler: it runs one authenticated,
// validated admin request against the membership state machine. Every
// response — success or failure — carries the post-action epoch and
// membership table, so a mutation doubles as a status read.
func (r *Router) HandleAdmin(ctx context.Context, req serve.AdminRequest) serve.AdminResponse {
	var err error
	switch req.Action {
	case serve.AdminStatus:
		// membership table only
	case serve.AdminJoin:
		err = r.Join(ctx, req.Backend)
	case serve.AdminDrain:
		err = r.Drain(req.Backend)
	case serve.AdminRemove:
		err = r.Remove(ctx, req.Backend)
	default:
		err = fmt.Errorf("router: unknown admin action %q", req.Action)
	}
	resp := serve.AdminResponse{
		Status:  "ok",
		Epoch:   r.ring.Epoch(),
		Members: r.Members(),
	}
	if err != nil {
		resp.Status = "error"
		resp.Error = err.Error()
	}
	return resp
}

// ---- session ownership tracking ----

// sessionTracker remembers, for a bounded set of recently routed sessions,
// which backend last served each session and under which membership epoch.
// It backs the cold-start check: a session request about to be forwarded
// to a backend other than its remembered one gets SessionReset stamped on,
// because the receiving replica's retained state (empty or stale) does not
// belong to this conversation.
type sessionTracker struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*sessionEntry
	order   *list.List // front = most recently routed; back evicts first
}

// sessionEntry is one tracked session's placement.
type sessionEntry struct {
	addr  string
	epoch uint64
	elem  *list.Element // holds the session id for eviction
}

func (t *sessionTracker) init(capacity int) {
	if capacity <= 0 {
		capacity = DefaultSessionTrack
	}
	t.cap = capacity
	t.entries = make(map[string]*sessionEntry)
	t.order = list.New()
}

// movedTo reports whether forwarding session sid to addr changes the
// backend serving the session. The stored epoch is the fast path: an entry
// recorded under the current membership epoch whose address already equals
// addr cannot have moved (same snapshot, same hash, same owner), so the
// common steady-state request exits on two comparisons. An untracked
// session (first contact, or evicted) reports false — there is no known
// prior placement to contradict.
func (t *sessionTracker) movedTo(sid, addr string, epoch uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[sid]
	if e == nil {
		return false
	}
	if e.epoch == epoch && e.addr == addr {
		return false
	}
	return e.addr != addr
}

// note records that sid was just served by addr under epoch, bumping the
// session's recency and evicting the least-recently routed session beyond
// capacity.
func (t *sessionTracker) note(sid, addr string, epoch uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.entries[sid]; e != nil {
		e.addr, e.epoch = addr, epoch
		t.order.MoveToFront(e.elem)
		return
	}
	e := &sessionEntry{addr: addr, epoch: epoch}
	e.elem = t.order.PushFront(sid)
	t.entries[sid] = e
	if len(t.entries) > t.cap {
		oldest := t.order.Back()
		t.order.Remove(oldest)
		delete(t.entries, oldest.Value.(string))
	}
}
