// Property-based ring membership tests (satellite of the dynamic-membership
// PR): seeded random interleavings of Add/Remove/SetAlive drive the
// copy-on-write ring through hundreds of epochs while invariants that the
// pinned-example tests cannot cover are asserted after every step:
//
//  1. every key has exactly one live owner whenever any live node exists;
//  2. Ownership is a probability distribution over live nodes (sums to 1);
//  3. keys that move between consecutive epochs move only because of the
//     node that changed — a join steals keys only for itself, a leave or
//     death reassigns only the departed node's keys, and nobody else's
//     assignment is touched (the minimal-movement contract);
//  4. the epoch is strictly monotonic and bumps exactly on effective
//     mutations.

package router

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// propKeys returns the fixed key population the properties are checked
// over.
func propKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

// ownershipTable maps every key to its current owner ("" when the ring has
// no live node).
func ownershipTable(ring *Ring, keys []string) map[string]string {
	table := make(map[string]string, len(keys))
	for _, k := range keys {
		if owner, ok := ring.Lookup(k); ok {
			table[k] = owner
		} else {
			table[k] = ""
		}
	}
	return table
}

// ringOp is one membership mutation in a generated sequence.
type ringOp struct {
	kind string // "add", "remove", "revive", "kill"
	node string
}

// TestRingMembershipProperties runs 5 seeded random operation sequences,
// asserting the ownership invariants after every mutation.
func TestRingMembershipProperties(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			checkRingProperties(t, seed, 120, 1000)
		})
	}
}

// checkRingProperties drives one seeded sequence of steps mutations over a
// pool of candidate nodes, verifying the invariants after each.
func checkRingProperties(t *testing.T, seed int64, steps, nkeys int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	keys := propKeys(nkeys)
	ring := NewRing(0)

	pool := make([]string, 10)
	for i := range pool {
		pool[i] = fmt.Sprintf("10.0.0.%d:9000", i+1)
	}
	member := map[string]bool{} // node currently on the ring
	alive := map[string]bool{}  // node's liveness flag (only meaningful while member)

	// Start from a small live fleet so early steps have owners.
	for _, n := range pool[:3] {
		ring.Add(n)
		member[n], alive[n] = true, true
	}

	prev := ownershipTable(ring, keys)
	prevEpoch := ring.Epoch()

	for step := 0; step < steps; step++ {
		op := pickOp(rng, pool, member, alive)
		effective := applyOp(ring, op, member, alive)

		epoch := ring.Epoch()
		if effective {
			if epoch != prevEpoch+1 {
				t.Fatalf("step %d (%s %s): epoch %d -> %d, want exactly +1 per effective mutation",
					step, op.kind, op.node, prevEpoch, epoch)
			}
		} else if epoch != prevEpoch {
			t.Fatalf("step %d (%s %s): no-op mutation bumped epoch %d -> %d",
				step, op.kind, op.node, prevEpoch, epoch)
		}

		liveCount := 0
		for n := range member {
			if alive[n] {
				liveCount++
			}
		}

		cur := ownershipTable(ring, keys)

		// Invariant 1: with any live node, every key resolves to exactly one
		// live owner; with none, every lookup fails.
		for _, k := range keys {
			owner := cur[k]
			if liveCount == 0 {
				if owner != "" {
					t.Fatalf("step %d: key %s owned by %s with zero live nodes", step, k, owner)
				}
				continue
			}
			if owner == "" {
				t.Fatalf("step %d (%s %s): key %s has no owner with %d live nodes",
					step, op.kind, op.node, k, liveCount)
			}
			if !member[owner] || !alive[owner] {
				t.Fatalf("step %d: key %s owned by %s (member=%v alive=%v)",
					step, k, owner, member[owner], alive[owner])
			}
		}

		// Invariant 2: Ownership is a distribution over exactly the live
		// members.
		share := ring.Ownership()
		if liveCount > 0 {
			sum := 0.0
			for n, s := range share {
				if s < 0 {
					t.Fatalf("step %d: negative share %v for %s", step, s, n)
				}
				if s > 0 && (!member[n] || !alive[n]) {
					t.Fatalf("step %d: dead/absent node %s owns share %v", step, n, s)
				}
				sum += s
			}
			if math.Abs(sum-1.0) > 1e-9 {
				t.Fatalf("step %d: ownership sums to %v, want 1", step, sum)
			}
		}

		// Invariant 3: minimal movement. Any key whose owner changed must
		// involve the mutated node on one side of the move.
		for _, k := range keys {
			if prev[k] == cur[k] {
				continue
			}
			if prev[k] != op.node && cur[k] != op.node {
				t.Fatalf("step %d (%s %s): key %s moved %s -> %s — neither side is the mutated node",
					step, op.kind, op.node, k, prev[k], cur[k])
			}
			// Directionality: a join/revive only gains keys; a leave/death
			// only sheds them.
			switch op.kind {
			case "add", "revive":
				if prev[k] == op.node {
					t.Fatalf("step %d (%s %s): key %s left the node that just joined", step, op.kind, op.node, k)
				}
			case "remove", "kill":
				if cur[k] == op.node {
					t.Fatalf("step %d (%s %s): key %s moved onto the node that just left", step, op.kind, op.node, k)
				}
			}
		}

		prev, prevEpoch = cur, epoch
	}
}

// pickOp chooses a membership mutation that is possible in the current
// state, biased so the ring keeps a few members most of the time.
func pickOp(rng *rand.Rand, pool []string, member, alive map[string]bool) ringOp {
	for {
		node := pool[rng.Intn(len(pool))]
		switch rng.Intn(4) {
		case 0: // add
			if !member[node] {
				return ringOp{"add", node}
			}
		case 1: // remove
			if member[node] {
				return ringOp{"remove", node}
			}
		case 2: // kill (heartbeat death)
			if member[node] && alive[node] {
				return ringOp{"kill", node}
			}
		case 3: // revive
			if member[node] && !alive[node] {
				return ringOp{"revive", node}
			}
		}
	}
}

// applyOp applies op to both the ring and the model state, reporting
// whether the mutation was effective (should bump the epoch).
func applyOp(ring *Ring, op ringOp, member, alive map[string]bool) bool {
	switch op.kind {
	case "add":
		ring.Add(op.node)
		member[op.node], alive[op.node] = true, true
		return true
	case "remove":
		ring.Remove(op.node)
		delete(member, op.node)
		delete(alive, op.node)
		return true
	case "kill":
		// pickOp only kills a live member, so the flip is always effective.
		ring.SetAlive(op.node, false)
		alive[op.node] = false
		return true
	case "revive":
		ring.SetAlive(op.node, true)
		alive[op.node] = true
		return true
	}
	return false
}

// TestRingEpochSemantics pins the epoch contract the membership layer
// depends on: effective mutations bump it by one, no-ops leave it alone.
func TestRingEpochSemantics(t *testing.T) {
	ring := NewRing(8)
	e0 := ring.Epoch()

	ring.Add("a")
	if got := ring.Epoch(); got != e0+1 {
		t.Fatalf("epoch after Add = %d, want %d", got, e0+1)
	}
	ring.Add("a") // duplicate: no-op
	if got := ring.Epoch(); got != e0+1 {
		t.Fatalf("epoch after duplicate Add = %d, want unchanged %d", got, e0+1)
	}
	ring.SetAlive("a", true) // already alive: no-op
	if got := ring.Epoch(); got != e0+1 {
		t.Fatalf("epoch after no-op SetAlive = %d, want unchanged %d", got, e0+1)
	}
	ring.SetAlive("a", false)
	if got := ring.Epoch(); got != e0+2 {
		t.Fatalf("epoch after liveness flip = %d, want %d", got, e0+2)
	}
	ring.Remove("missing") // unknown: no-op
	if got := ring.Epoch(); got != e0+2 {
		t.Fatalf("epoch after Remove(unknown) = %d, want unchanged %d", got, e0+2)
	}
	ring.Remove("a")
	if got := ring.Epoch(); got != e0+3 {
		t.Fatalf("epoch after Remove = %d, want %d", got, e0+3)
	}
}

// TestRingLookupEpochConsistency checks LookupEpoch returns an owner and
// epoch from one atomic snapshot: under concurrent mutation, a (node,
// epoch) observation must match what a ring frozen at that epoch would
// answer. Here we verify the sequential contract: the epoch reported
// matches Epoch() when the ring is quiescent and changes with it.
func TestRingLookupEpochConsistency(t *testing.T) {
	ring := NewRing(0)
	ring.Add("a")
	ring.Add("b")

	node1, epoch1, ok := ring.LookupEpoch("some-key")
	if !ok {
		t.Fatal("LookupEpoch on a live ring failed")
	}
	if epoch1 != ring.Epoch() {
		t.Fatalf("LookupEpoch epoch = %d, Epoch() = %d", epoch1, ring.Epoch())
	}
	if direct, _ := ring.Lookup("some-key"); direct != node1 {
		t.Fatalf("LookupEpoch owner %s disagrees with Lookup %s", node1, direct)
	}

	ring.Add("c")
	_, epoch2, _ := ring.LookupEpoch("some-key")
	if epoch2 != epoch1+1 {
		t.Fatalf("epoch after mutation = %d, want %d", epoch2, epoch1+1)
	}
}
