// Router: the sharded-serving frontend model. A *Router implements the
// serve package's RoutingStreamingPredictor and StatsAggregator seams, so a
// serve.Server wraps it exactly like a local model — cache, singleflight,
// pool, HTTP/SSE/RPC surface and graceful drain all come from serve — while
// every prediction fans out to the backend fleet through the hash ring.

package router

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wisdom/internal/observe"
	"wisdom/internal/resilience"
	"wisdom/internal/serve"
)

// Defaults for the zero value of each Options field.
const (
	// DefaultHeartbeatInterval is how often the background sweep health-checks
	// every backend.
	DefaultHeartbeatInterval = 2 * time.Second
	// DefaultHeartbeatTimeout bounds one health round trip.
	DefaultHeartbeatTimeout = time.Second
	// DefaultDeadAfter is how many consecutive heartbeat failures mark a
	// backend dead on the ring.
	DefaultDeadAfter = 2
	// DefaultForwardTimeout bounds each forwarded round trip (per frame gap
	// for streams, matching serve.Client.SetTimeout semantics).
	DefaultForwardTimeout = 30 * time.Second
	// DefaultMaxIdle is the per-backend idle-connection pool size.
	DefaultMaxIdle = 4
)

// ErrNoBackend is returned when a request exhausted its spillover candidate
// list without any backend delivering an answer. The wrapping serve.Server
// surfaces it as a 503 / stream error like any other model failure.
var ErrNoBackend = errors.New("router: no backend answered")

// Options tune a Router. The zero value of each field selects the
// documented default.
type Options struct {
	// VNodes is the number of virtual nodes per backend on the hash ring
	// (default DefaultVNodes).
	VNodes int
	// HeartbeatInterval is the background health-sweep period (default
	// DefaultHeartbeatInterval). Negative disables the background loop —
	// tests then drive sweeps explicitly via CheckBackends.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout bounds one health round trip (default
	// DefaultHeartbeatTimeout).
	HeartbeatTimeout time.Duration
	// DeadAfter is how many consecutive heartbeat failures mark a backend
	// dead, moving its ring range to its successors (default
	// DefaultDeadAfter). A single success marks it live again.
	DeadAfter int
	// MaxSpill caps how many backends one request may try: the ring owner
	// plus up to MaxSpill-1 successors. Zero means no cap (try every live
	// node); negative disables spillover entirely (owner only).
	MaxSpill int
	// ForwardTimeout bounds each forwarded round trip (default
	// DefaultForwardTimeout); for streams it bounds each frame gap.
	ForwardTimeout time.Duration
	// Breaker configures the per-backend circuit breaker (zero value =
	// resilience defaults).
	Breaker resilience.BreakerConfig
	// MaxIdle is the per-backend idle-connection pool size (default
	// DefaultMaxIdle).
	MaxIdle int
	// Wrap, when non-nil, decorates every forwarding connection to addr
	// before use — the transport seam for the resilience fault injector.
	// Heartbeat connections are deliberately NOT wrapped: chaos on the data
	// path must not shake the liveness verdict.
	Wrap func(addr string, c net.Conn) net.Conn
}

func (o Options) withDefaults() Options {
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = DefaultHeartbeatTimeout
	}
	if o.DeadAfter <= 0 {
		o.DeadAfter = DefaultDeadAfter
	}
	if o.ForwardTimeout <= 0 {
		o.ForwardTimeout = DefaultForwardTimeout
	}
	if o.MaxIdle <= 0 {
		o.MaxIdle = DefaultMaxIdle
	}
	return o
}

// Router shards requests across a fleet of backend replicas by consistent
// hashing, with per-backend circuit breakers, spillover to ring successors
// on failure, heartbeat-driven liveness, fleet-wide stats aggregation, and
// runtime membership: backends Join, Drain and Remove while traffic flows
// (see ARCHITECTURE.md "Dynamic membership"). Wrap it in a serve.Server to
// expose the full HTTP+RPC surface, including the authenticated admin
// surface through the serve.AdminHandler seam. Safe for concurrent use;
// Close releases its connections and stops the heartbeat loop.
type Router struct {
	opts Options
	ring *Ring

	// Fleet membership. backMu guards the map and the joining set; the
	// forwarding path takes only the read lock (per-address lookups), and
	// the ring itself is copy-on-write, so lookups never wait on a
	// membership mutation's network I/O.
	backMu   sync.RWMutex
	backends map[string]*backend
	joining  map[string]bool // addresses mid-Join (warm-up in progress)

	// sessions remembers which backend last served each session and under
	// which membership epoch, so a session whose ring owner changed is
	// cold-started on its new replica instead of silently resuming against
	// state the replica never had.
	sessions sessionTracker

	// instMu/inst retain the Instrument registry so backends joining later
	// get their per-backend series registered too.
	instMu sync.Mutex
	inst   *observe.Registry

	spillovers   atomic.Uint64
	joins        atomic.Uint64
	drains       atomic.Uint64
	removes      atomic.Uint64
	sessionMoves atomic.Uint64

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New builds a Router over the given backend RPC addresses (duplicates are
// collapsed) and, unless opts.HeartbeatInterval is negative, starts the
// background heartbeat loop. Backends start optimistically alive; the first
// sweep corrects that within DeadAfter*HeartbeatInterval.
func New(addrs []string, opts Options) (*Router, error) {
	opts = opts.withDefaults()
	r := &Router{
		opts:     opts,
		ring:     NewRing(opts.VNodes),
		backends: make(map[string]*backend),
		joining:  make(map[string]bool),
		stop:     make(chan struct{}),
	}
	r.sessions.init(0)
	for _, addr := range addrs {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		if _, ok := r.backends[addr]; ok {
			continue
		}
		r.backends[addr] = r.newBackendFor(addr)
		r.ring.Add(addr)
	}
	if len(r.backends) == 0 {
		return nil, errors.New("router: no backend addresses")
	}
	if opts.HeartbeatInterval > 0 {
		r.wg.Add(1)
		go r.heartbeatLoop()
	}
	return r, nil
}

// newBackendFor builds the backend record for addr, applying the router's
// connection-wrap hook, timeout and pool size.
func (r *Router) newBackendFor(addr string) *backend {
	var wrap func(net.Conn) net.Conn
	if r.opts.Wrap != nil {
		a := addr
		wrap = func(c net.Conn) net.Conn { return r.opts.Wrap(a, c) }
	}
	return newBackend(addr, r.opts.Breaker, wrap, r.opts.ForwardTimeout, r.opts.MaxIdle)
}

// backendFor resolves an address to its live backend record (nil when the
// backend has been removed).
func (r *Router) backendFor(addr string) *backend {
	r.backMu.RLock()
	b := r.backends[addr]
	r.backMu.RUnlock()
	return b
}

// snapshotBackends returns the current backend records keyed by address.
func (r *Router) snapshotBackends() map[string]*backend {
	r.backMu.RLock()
	out := make(map[string]*backend, len(r.backends))
	for a, b := range r.backends {
		out[a] = b
	}
	r.backMu.RUnlock()
	return out
}

// Close stops the heartbeat loop and closes every pooled connection. In-
// flight forwards finish on their own connections; Close does not wait for
// them (the wrapping serve.Server's drain already does).
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
	for _, b := range r.snapshotBackends() {
		b.closeIdle()
	}
}

// Ring returns the router's hash ring (read-mostly; exported for tests and
// operational introspection).
func (r *Router) Ring() *Ring { return r.ring }

// Backends returns the configured backend addresses, sorted.
func (r *Router) Backends() []string { return r.ring.Nodes() }

// Spillovers returns how many requests were answered by a backend other
// than their ring owner.
func (r *Router) Spillovers() uint64 { return r.spillovers.Load() }

// Owner returns the backend that currently owns req's affinity key (the
// session ID when set, the content key otherwise). ok is false when no live
// backend exists. Introspection for tests and placement debugging; the
// forwarding path resolves ownership per request on its own.
func (r *Router) Owner(req serve.Request) (addr string, ok bool) {
	return r.ring.Lookup(affinityKey(req))
}

// affinityKey is what a request hashes on: the session ID when present (all
// requests of one editing session land on the replica holding its warm
// prefix KV state), otherwise the content key (identical stateless requests
// land on one replica, whose cache and singleflight see all duplicates).
// The prefix byte keeps the two namespaces disjoint; the NUL separators
// keep ("ab","c") distinct from ("a","bc").
func affinityKey(req serve.Request) string {
	if req.SessionID != "" {
		return "s\x00" + req.SessionID
	}
	return "k\x00" + req.Context + "\x00" + req.Prompt
}

// candidates returns the backends a request may try, in ring order from its
// owner. When the heartbeat has marked the whole fleet dead the unfiltered
// ring is returned instead: attempting a dead backend cannot make a total
// outage worse, and succeeds whenever the verdict was stale.
func (r *Router) candidates(key string) []string {
	n := r.opts.MaxSpill // 0 = all
	if r.opts.MaxSpill < 0 {
		n = 1
	}
	cands := r.ring.Successors(key, n)
	if len(cands) == 0 {
		cands = r.ring.SuccessorsAll(key, n)
	}
	return cands
}

// Predict satisfies serve.Predictor. The wrapping serve.Server always
// prefers PredictRoute; this path exists only for direct library use.
func (r *Router) Predict(context, prompt string) string {
	resp, err := r.PredictRoute(contextBG(), serve.Request{Context: context, Prompt: prompt})
	if err != nil {
		return ""
	}
	return resp.Suggestion
}

// contextBG avoids shadowing the context package by the Predict parameter
// name (the serve.Predictor signature fixes it).
func contextBG() context.Context { return context.Background() }

// PredictRoute forwards one unary request to its ring owner, spilling to
// successors when the owner is breaker-open, unreachable, or sheds.
// Unary retries across backends are safe — predictions are idempotent and
// nothing has been delivered to the client until the router returns.
func (r *Router) PredictRoute(ctx context.Context, req serve.Request) (serve.Response, error) {
	req.Op = ""     // forwarded as a plain unary predict regardless of inbound op
	req.Admin = nil // admin requests are handled by the router, never forwarded
	key := affinityKey(req)
	var lastErr error
	for i, addr := range r.candidates(key) {
		if err := ctx.Err(); err != nil {
			return serve.Response{}, err
		}
		b := r.backendFor(addr)
		if b == nil {
			continue // removed after the candidate list was snapshotted
		}
		if !b.breaker.Allow() {
			lastErr = fmt.Errorf("router: backend %s: %w", addr, resilience.ErrBreakerOpen)
			continue
		}
		fwd := r.stampSession(req, addr)
		b.beginForward()
		resp, err := r.forwardUnary(b, fwd)
		b.endForward()
		if err == nil {
			r.settleSession(req, fwd, addr)
			if i > 0 {
				r.spillovers.Add(1)
				b.spillovers.Add(1)
			}
			return resp, nil
		}
		lastErr = fmt.Errorf("router: backend %s: %w", addr, err)
	}
	if lastErr == nil {
		lastErr = ErrNoBackend
	}
	return serve.Response{}, lastErr
}

// stampSession prepares req for forwarding to addr: when the request is
// session-affine and the ownership check says addr is not the backend that
// last served the session, SessionReset is set so the replica cold-starts
// its per-session state instead of resuming a prefix it never held (or
// held for a conversation that has since continued elsewhere).
func (r *Router) stampSession(req serve.Request, addr string) serve.Request {
	if req.SessionID != "" && r.sessions.movedTo(req.SessionID, addr, r.ring.Epoch()) {
		req.SessionReset = true
	}
	return req
}

// settleSession records a successful session forward: the tracker learns
// the serving backend and epoch, and a forced cold start (reset injected by
// the router, not requested by the client) counts as a session move.
func (r *Router) settleSession(orig, fwd serve.Request, addr string) {
	if orig.SessionID == "" {
		return
	}
	if fwd.SessionReset && !orig.SessionReset {
		r.sessionMoves.Add(1)
	}
	r.sessions.note(orig.SessionID, addr, r.ring.Epoch())
}

// forwardUnary performs one breaker-accounted round trip against b. Breaker
// protocol: the caller has already taken Allow()==true, so exactly one
// Record happens on every path. A transport failure (broken connection,
// dial error) records a breaker failure; a server-delivered error on a
// healthy connection — overload shed, unknown op — records a success,
// because the replica is up and answering even while refusing work.
func (r *Router) forwardUnary(b *backend, req serve.Request) (serve.Response, error) {
	c, err := b.get()
	if err != nil {
		b.errors.Add(1)
		b.breaker.Record(err)
		return serve.Response{}, err
	}
	start := time.Now()
	resp, err := c.Predict(req)
	if err != nil {
		b.errors.Add(1)
		if c.Broken() {
			b.discard(c)
			b.breaker.Record(err)
		} else {
			b.put(c)
			b.breaker.Record(nil)
		}
		return serve.Response{}, err
	}
	b.put(c)
	b.requests.Add(1)
	if h := b.latency; h != nil {
		h.Observe(time.Since(start).Seconds())
	}
	b.breaker.Record(nil)
	return resp, nil
}

// PredictStreamRoute forwards one streamed request through the ring.
// Spillover happens only before the first delta: once a backend has started
// streaming, the client has rendered output, so replaying on a successor
// would duplicate it — a mid-stream failure is terminal instead.
func (r *Router) PredictStreamRoute(ctx context.Context, req serve.Request, emit func(delta string)) (serve.Response, error) {
	req.Admin = nil // admin requests are handled by the router, never forwarded
	key := affinityKey(req)
	var lastErr error
	for i, addr := range r.candidates(key) {
		if err := ctx.Err(); err != nil {
			return serve.Response{}, err
		}
		b := r.backendFor(addr)
		if b == nil {
			continue // removed after the candidate list was snapshotted
		}
		if !b.breaker.Allow() {
			lastErr = fmt.Errorf("router: backend %s: %w", addr, resilience.ErrBreakerOpen)
			continue
		}
		fwd := r.stampSession(req, addr)
		b.beginForward()
		resp, started, err := r.forwardStream(ctx, b, fwd, emit)
		b.endForward()
		if err == nil {
			r.settleSession(req, fwd, addr)
			if i > 0 {
				r.spillovers.Add(1)
				b.spillovers.Add(1)
			}
			return resp, nil
		}
		if started {
			// Deltas already reached the client; never replay.
			return serve.Response{}, fmt.Errorf("router: backend %s: %w", addr, err)
		}
		lastErr = fmt.Errorf("router: backend %s: %w", addr, err)
	}
	if lastErr == nil {
		lastErr = ErrNoBackend
	}
	return serve.Response{}, lastErr
}

// forwardStream runs one streamed exchange against b, reporting whether any
// delta was emitted. Cancellation propagates by closing the backend
// connection — the backend's RPC watchdog sees the disconnect and cancels
// its decode, preserving disconnect-cancels-decode through the router tier.
func (r *Router) forwardStream(ctx context.Context, b *backend, req serve.Request, emit func(delta string)) (resp serve.Response, started bool, err error) {
	c, err := b.get()
	if err != nil {
		b.errors.Add(1)
		b.breaker.Record(err)
		return serve.Response{}, false, err
	}

	watchDone := make(chan struct{})
	watchExited := make(chan struct{})
	var cancelled atomic.Bool
	go func() {
		defer close(watchExited)
		select {
		case <-ctx.Done():
			cancelled.Store(true)
			c.Close()
		case <-watchDone:
		}
	}()

	start := time.Now()
	resp, err = c.PredictStream(req, func(d string) {
		started = true
		emit(d)
	})
	close(watchDone)
	<-watchExited

	if err != nil {
		b.errors.Add(1)
		if cancelled.Load() {
			// The client went away; the failure is ours, not the backend's.
			b.discard(c)
			b.breaker.Record(nil)
			return serve.Response{}, started, ctx.Err()
		}
		if c.Broken() {
			b.discard(c)
			b.breaker.Record(err)
		} else {
			b.put(c)
			b.breaker.Record(nil)
		}
		return serve.Response{}, started, err
	}
	b.put(c)
	b.requests.Add(1)
	if h := b.latency; h != nil {
		h.Observe(time.Since(start).Seconds())
	}
	b.breaker.Record(nil)
	return resp, started, nil
}

// heartbeatLoop sweeps the fleet every HeartbeatInterval until Close.
func (r *Router) heartbeatLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.CheckBackends()
		}
	}
}

// CheckBackends runs one heartbeat sweep over every backend: a replica that
// answers the RPC health op is (re)marked live immediately; one that fails
// DeadAfter consecutive sweeps is marked dead, moving its ring range to its
// successors. Exported so tests (and operators via SIGUSR-style tooling)
// can force a sweep instead of waiting out the interval.
func (r *Router) CheckBackends() {
	for addr, b := range r.snapshotBackends() {
		if b.draining.Load() {
			continue // off the ring already; Remove owns its lifecycle
		}
		ok, fails := b.heartbeat(r.opts.HeartbeatTimeout)
		switch {
		case ok:
			if !b.alive.Load() {
				b.alive.Store(true)
				r.ring.SetAlive(addr, true)
			}
		case fails >= r.opts.DeadAfter:
			if b.alive.Load() {
				b.alive.Store(false)
				r.ring.SetAlive(addr, false)
			}
		}
	}
}

// BackendStats is one backend's row in the aggregated fleet snapshot.
type BackendStats struct {
	// Addr is the backend's RPC address (its ring node name).
	Addr string `json:"addr"`
	// Alive is the heartbeat verdict.
	Alive bool `json:"alive"`
	// State is the membership state: "active" (on the ring) or "draining"
	// (leaving; finishing in-flight work, taking no new placements).
	State string `json:"state"`
	// Breaker is the circuit-breaker position: closed, half-open or open.
	Breaker string `json:"breaker"`
	// RingShare is the fraction of the hash keyspace this backend currently
	// owns (zero when dead).
	RingShare float64 `json:"ring_share"`
	// Requests counts forwards answered by this backend.
	Requests uint64 `json:"requests"`
	// Errors counts forward attempts against this backend that failed.
	Errors uint64 `json:"errors"`
	// Spillovers counts forwards this backend absorbed for failed ring
	// predecessors.
	Spillovers uint64 `json:"spillovers"`
	// Stats is the backend's own counter snapshot (RPC stats op); nil when
	// the backend was unreachable at aggregation time.
	Stats *serve.Stats `json:"stats,omitempty"`
}

// FleetStats is the aggregated /v1/stats payload a router serves: the
// router process's local counters, the element-wise sum of every reachable
// backend's counters, and a per-backend breakdown.
type FleetStats struct {
	// Router is the router process's own serve.Stats (its cache,
	// singleflight and pool sit in front of the ring).
	Router serve.Stats `json:"router"`
	// Fleet sums every reachable backend's counters element-wise; its Model
	// field is "fleet".
	Fleet serve.Stats `json:"fleet"`
	// Backends lists each backend's row, sorted by address.
	Backends []BackendStats `json:"backends"`
	// Spillovers counts requests answered by a backend other than their
	// ring owner.
	Spillovers uint64 `json:"spillovers"`
}

// AggregateStats satisfies serve.StatsAggregator: the wrapping server's
// /v1/stats widens to the fleet view. Each backend is scraped over RPC at
// call time; unreachable backends contribute a row with Stats nil and are
// excluded from the fleet sum.
func (r *Router) AggregateStats(local serve.Stats) any {
	fleet := FleetStats{Router: local, Spillovers: r.spillovers.Load()}
	fleet.Fleet.Model = "fleet"
	share := r.ring.Ownership()
	backends := r.snapshotBackends()
	addrs := make([]string, 0, len(backends))
	for addr := range backends {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		b := backends[addr]
		state := memberActive
		if b.draining.Load() {
			state = memberDraining
		}
		row := BackendStats{
			Addr:       addr,
			Alive:      b.alive.Load(),
			State:      state,
			Breaker:    b.breaker.State().String(),
			RingShare:  share[addr],
			Requests:   b.requests.Load(),
			Errors:     b.errors.Load(),
			Spillovers: b.spillovers.Load(),
		}
		if st, ok := b.stats(); ok {
			row.Stats = &st
			addStats(&fleet.Fleet, st)
		}
		fleet.Backends = append(fleet.Backends, row)
	}
	return fleet
}

// addStats element-wise sums src's counters and gauges into dst, then
// recomputes the derived ratios from the summed numerators/denominators.
func addStats(dst *serve.Stats, src serve.Stats) {
	dst.Requests += src.Requests
	dst.PoolWorkers += src.PoolWorkers
	dst.PoolActive += src.PoolActive
	dst.PoolQueued += src.PoolQueued
	dst.ShedRequests += src.ShedRequests
	dst.ActiveStreams += src.ActiveStreams
	dst.CancelledStrms += src.CancelledStrms
	dst.CacheEnabled = dst.CacheEnabled || src.CacheEnabled
	dst.CacheEntries += src.CacheEntries
	dst.CacheHits += src.CacheHits
	dst.CacheMisses += src.CacheMisses
	dst.CacheEvictions += src.CacheEvictions
	if total := dst.CacheHits + dst.CacheMisses; total > 0 {
		dst.HitRate = float64(dst.CacheHits) / float64(total)
	}
	dst.SessionsEnabled = dst.SessionsEnabled || src.SessionsEnabled
	dst.SessionsActive += src.SessionsActive
	dst.SessionEvictions += src.SessionEvictions
	dst.AbandonedWaiters += src.AbandonedWaiters
	dst.SchedEnabled = dst.SchedEnabled || src.SchedEnabled
	dst.SchedMaxBatch += src.SchedMaxBatch
	dst.SchedActive += src.SchedActive
	dst.SchedQueued += src.SchedQueued
	dst.SchedAdmitted += src.SchedAdmitted
	dst.SchedRetired += src.SchedRetired
	// SchedOccupancy and SessionReuseRatio are per-replica ratios whose
	// numerators are not exported; a request-weighted mean is the closest
	// honest aggregate.
	if dst.Requests > 0 {
		wDst := float64(dst.Requests-src.Requests) / float64(dst.Requests)
		wSrc := float64(src.Requests) / float64(dst.Requests)
		dst.SchedOccupancy = dst.SchedOccupancy*wDst + src.SchedOccupancy*wSrc
		dst.SessionReuseRatio = dst.SessionReuseRatio*wDst + src.SessionReuseRatio*wSrc
	}
}

// Instrument registers the router's fleet metrics on reg:
//
//	wisdom_router_spillover_total                  — requests served off-owner
//	wisdom_router_membership_epoch                 — current ring epoch
//	wisdom_router_backends{state}                  — backend count by membership state
//	wisdom_router_joins_total                      — backends joined at runtime
//	wisdom_router_removes_total                    — backends removed at runtime
//	wisdom_router_session_moves_total              — sessions cold-started after owner change
//	wisdom_router_draining_inflight                — in-flight forwards on draining backends
//	wisdom_router_backend_requests_total{backend}  — per-backend forwards
//	wisdom_router_backend_errors_total{backend}    — per-backend failures
//	wisdom_router_backend_latency_seconds{backend} — forward latency histogram
//	wisdom_router_backend_alive{backend}           — heartbeat verdict (0/1)
//	wisdom_router_ring_share{backend}              — fraction of keyspace owned
//	wisdom_breaker_state{backend}                  — breaker position (resilience)
//
// Backends that join later are instrumented at join time; a removed
// backend's series are unregistered so the export does not accumulate
// departed fleet members. Call at most once per registry, before serving.
func (r *Router) Instrument(reg *observe.Registry) {
	if reg == nil {
		return
	}
	r.instMu.Lock()
	r.inst = reg
	r.instMu.Unlock()
	reg.CounterFunc("wisdom_router_spillover_total",
		"Requests answered by a backend other than their ring owner.",
		func() float64 { return float64(r.spillovers.Load()) })
	reg.GaugeFunc("wisdom_router_membership_epoch",
		"Membership epoch: bumped by every join, leave and liveness flip.",
		func() float64 { return float64(r.ring.Epoch()) })
	reg.CounterFunc("wisdom_router_joins_total",
		"Backends joined at runtime through the admin surface.",
		func() float64 { return float64(r.joins.Load()) })
	reg.CounterFunc("wisdom_router_drains_total",
		"Backends put into the draining state through the admin surface.",
		func() float64 { return float64(r.drains.Load()) })
	reg.CounterFunc("wisdom_router_removes_total",
		"Backends removed at runtime through the admin surface.",
		func() float64 { return float64(r.removes.Load()) })
	reg.CounterFunc("wisdom_router_session_moves_total",
		"Session requests cold-started because their ring owner changed.",
		func() float64 { return float64(r.sessionMoves.Load()) })
	reg.GaugeFunc("wisdom_router_draining_inflight",
		"In-flight forwards still pending on draining backends.",
		func() float64 {
			var n int64
			for _, b := range r.snapshotBackends() {
				if b.draining.Load() {
					n += b.inflight.Load()
				}
			}
			return float64(n)
		})
	for _, state := range []string{memberActive, memberDraining} {
		s := state
		reg.GaugeFunc("wisdom_router_backends",
			"Fleet size by membership state.",
			func() float64 {
				var n int
				for _, b := range r.snapshotBackends() {
					if (s == memberDraining) == b.draining.Load() {
						n++
					}
				}
				return float64(n)
			}, observe.Label{Key: "state", Value: s})
	}
	for _, addr := range r.ring.Nodes() {
		r.instrumentBackend(reg, addr)
	}
}

// instrumentBackend registers (or, after a re-join, re-binds) the
// per-backend series for addr. Every callback resolves the backend through
// the membership map at sample time rather than capturing the record:
// registry re-registration keeps the first callback, so a capture would pin
// a removed backend's counters forever if the address later re-joined.
func (r *Router) instrumentBackend(reg *observe.Registry, addr string) {
	label := observe.Label{Key: "backend", Value: addr}
	reg.CounterFunc("wisdom_router_backend_requests_total",
		"Forwarded requests answered per backend.",
		func() float64 {
			if b := r.backendFor(addr); b != nil {
				return float64(b.requests.Load())
			}
			return 0
		}, label)
	reg.CounterFunc("wisdom_router_backend_errors_total",
		"Failed forward attempts per backend.",
		func() float64 {
			if b := r.backendFor(addr); b != nil {
				return float64(b.errors.Load())
			}
			return 0
		}, label)
	if b := r.backendFor(addr); b != nil {
		buckets := []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}
		// Same name+buckets → the registry returns the existing series on
		// re-join, so the histogram keeps accumulating across a leave/join.
		b.latency = reg.Histogram("wisdom_router_backend_latency_seconds",
			"Forward round-trip latency per backend.", buckets, label)
		resilience.InstrumentBreaker(reg, addr, b.breaker)
	}
	reg.GaugeFunc("wisdom_router_backend_alive",
		"Heartbeat verdict per backend: 1 live, 0 dead.",
		func() float64 {
			if b := r.backendFor(addr); b != nil && b.alive.Load() {
				return 1
			}
			return 0
		}, label)
	reg.GaugeFunc("wisdom_router_ring_share",
		"Fraction of the hash keyspace each live backend owns.",
		func() float64 { return r.ring.Ownership()[addr] }, label)
}

// unregisterBackend retires a removed backend's per-backend metric series
// so the export does not accumulate departed fleet members — and so a
// later re-join of the same address registers fresh callbacks bound to the
// new backend record (the registry keeps the first callback otherwise).
func (r *Router) unregisterBackend(reg *observe.Registry, addr string) {
	label := observe.Label{Key: "backend", Value: addr}
	for _, name := range []string{
		"wisdom_router_backend_requests_total",
		"wisdom_router_backend_errors_total",
		"wisdom_router_backend_latency_seconds",
		"wisdom_router_backend_alive",
		"wisdom_router_ring_share",
		"wisdom_breaker_state",
	} {
		reg.Unregister(name, label)
	}
}
