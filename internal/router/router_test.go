// Router unit tests against real in-process serve replicas: affinity,
// spillover, breaker accounting, heartbeat-driven liveness, and fleet
// stats aggregation.

package router

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"wisdom/internal/resilience"
	"wisdom/internal/serve"
)

// replicaModel is the backend model: answers carry the replica's name so a
// test can tell which backend served. Prompt "block" signals arrival on
// started, then parks until release — tests synchronise on the signal
// instead of sleeping, so nothing here depends on wall-clock timing.
type replicaModel struct {
	name    string
	gate    chan struct{}
	started chan struct{} // one send per "block" prompt reaching the model
	release sync.Once
}

// unblock releases every parked "block" call (idempotent).
func (m *replicaModel) unblock() { m.release.Do(func() { close(m.gate) }) }

// awaitBlocked waits until one "block" prompt has reached the model — the
// deterministic replacement for "sleep and hope the forward arrived".
func (m *replicaModel) awaitBlocked(t testing.TB) {
	t.Helper()
	select {
	case <-m.started:
	case <-time.After(5 * time.Second):
		t.Fatal("no block prompt reached the replica within 5s")
	}
}

func (m *replicaModel) park() {
	if m.gate == nil {
		return
	}
	select {
	case m.started <- struct{}{}:
	default: // a test that never waits must not wedge the replica
	}
	<-m.gate
}

func (m *replicaModel) answer(prompt string) string { return m.name + "|" + prompt }

func (m *replicaModel) Predict(c, prompt string) string {
	if prompt == "block" {
		m.park()
	}
	return m.answer(prompt)
}

func (m *replicaModel) PredictStream(ctx context.Context, c, prompt string, emit func(string)) string {
	if prompt == "block" {
		m.park()
	}
	emit(m.name + "|")
	emit(prompt)
	return m.answer(prompt)
}

// replica is one in-process backend.
type replica struct {
	name  string
	addr  string
	srv   *serve.Server
	model *replicaModel
	ln    net.Listener
}

func (r *replica) stop(t testing.TB) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := r.srv.Shutdown(ctx); err != nil {
		t.Logf("replica %s shutdown: %v", r.name, err)
	}
}

// startReplica boots a serve replica on a loopback port. Passing addr ""
// picks a fresh port; passing a previous replica's addr restarts "the same"
// backend (heartbeat-recovery tests).
func startReplica(t testing.TB, name, addr string, opts serve.Options) *replica {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	if opts.Workers == 0 {
		opts.Workers = 4 // GOMAXPROCS may be 1; forwarding tests need real concurrency
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	m := &replicaModel{name: name, gate: make(chan struct{}), started: make(chan struct{}, 64)}
	srv := serve.NewServerWithOptions(m, name, opts)
	go func() { _ = srv.ServeRPC(ln) }()
	r := &replica{name: name, addr: ln.Addr().String(), srv: srv, model: m, ln: ln}
	t.Cleanup(func() { m.unblock(); r.stop(t) })
	return r
}

// startFleet boots n replicas plus a router over them (background heartbeat
// disabled — tests drive sweeps explicitly).
func startFleet(t testing.TB, n int, ropts Options) (*Router, []*replica) {
	t.Helper()
	var reps []*replica
	var addrs []string
	for i := 0; i < n; i++ {
		r := startReplica(t, fmt.Sprintf("rep%d", i), "", serve.Options{})
		reps = append(reps, r)
		addrs = append(addrs, r.addr)
	}
	if ropts.HeartbeatInterval == 0 {
		ropts.HeartbeatInterval = -1
	}
	rt, err := New(addrs, ropts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt, reps
}

// byAddr maps replica addresses to replicas.
func byAddr(reps []*replica) map[string]*replica {
	m := make(map[string]*replica, len(reps))
	for _, r := range reps {
		m[r.addr] = r
	}
	return m
}

// promptOwnedBy finds a prompt whose content affinity key is owned by addr.
func promptOwnedBy(t testing.TB, rt *Router, addr string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		p := fmt.Sprintf("prompt-%d", i)
		if owner, ok := rt.Ring().Lookup(affinityKey(serve.Request{Prompt: p})); ok && owner == addr {
			return p
		}
	}
	t.Fatalf("no prompt hashes to %s", addr)
	return ""
}

func TestRouterKeyAffinity(t *testing.T) {
	rt, reps := startFleet(t, 3, Options{})
	owners := byAddr(reps)

	// The same key always lands on its ring owner.
	req := serve.Request{Prompt: "install nginx", Context: "- hosts: web\n"}
	ownerAddr, _ := rt.Ring().Lookup(affinityKey(req))
	want := owners[ownerAddr].model.answer(req.Prompt)
	for i := 0; i < 10; i++ {
		resp, err := rt.PredictRoute(context.Background(), req)
		if err != nil {
			t.Fatalf("PredictRoute: %v", err)
		}
		if resp.Suggestion != want {
			t.Fatalf("request %d answered by %q, want owner's answer %q", i, resp.Suggestion, want)
		}
	}
	if got := rt.Spillovers(); got != 0 {
		t.Errorf("spillovers = %d on a healthy fleet, want 0", got)
	}

	// Distinct keys spread over more than one backend.
	served := map[string]bool{}
	for i := 0; i < 30; i++ {
		resp, err := rt.PredictRoute(context.Background(), serve.Request{Prompt: fmt.Sprintf("task-%d", i)})
		if err != nil {
			t.Fatalf("PredictRoute: %v", err)
		}
		served[strings.SplitN(resp.Suggestion, "|", 2)[0]] = true
	}
	if len(served) < 2 {
		t.Errorf("30 distinct keys all served by %v, want spread over >= 2 backends", served)
	}
}

func TestRouterSessionAffinity(t *testing.T) {
	rt, _ := startFleet(t, 3, Options{})
	const sid = "session-affinity-1"
	ownerAddr, _ := rt.Ring().Lookup(affinityKey(serve.Request{SessionID: sid}))
	for i := 0; i < 10; i++ {
		// Different prompts, same session: must stay on the session's owner.
		req := serve.Request{Prompt: fmt.Sprintf("edit step %d", i), SessionID: sid}
		if _, err := rt.PredictRoute(context.Background(), req); err != nil {
			t.Fatalf("PredictRoute: %v", err)
		}
		if gotAddr, _ := rt.Ring().Lookup(affinityKey(req)); gotAddr != ownerAddr {
			t.Fatalf("session key moved owners: %s vs %s", gotAddr, ownerAddr)
		}
	}
	// All ten landed on one backend: exactly one replica counted requests.
	fleet := rt.AggregateStats(serve.Stats{}).(FleetStats)
	withTraffic := 0
	for _, row := range fleet.Backends {
		if row.Requests > 0 {
			withTraffic++
			if row.Addr != ownerAddr {
				t.Errorf("session traffic landed on %s, want owner %s", row.Addr, ownerAddr)
			}
		}
	}
	if withTraffic != 1 {
		t.Errorf("session traffic spread over %d backends, want 1", withTraffic)
	}
}

func TestRouterStreamAffinityAndContent(t *testing.T) {
	rt, reps := startFleet(t, 3, Options{})
	owners := byAddr(reps)
	req := serve.Request{Prompt: "stream me"}
	ownerAddr, _ := rt.Ring().Lookup(affinityKey(req))
	want := owners[ownerAddr].model.answer(req.Prompt)

	var deltas []string
	resp, err := rt.PredictStreamRoute(context.Background(), req, func(d string) { deltas = append(deltas, d) })
	if err != nil {
		t.Fatalf("PredictStreamRoute: %v", err)
	}
	if resp.Suggestion != want {
		t.Fatalf("final = %q, want %q", resp.Suggestion, want)
	}
	if got := strings.Join(deltas, ""); got != want {
		t.Fatalf("deltas concatenate to %q, want %q (no duplication, no loss)", got, want)
	}
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas %q, want the replica's 2", len(deltas), deltas)
	}
}

func TestRouterSpilloverOnDeadBackend(t *testing.T) {
	rt, reps := startFleet(t, 3, Options{
		Breaker: resilience.BreakerConfig{FailureThreshold: 3, Cooldown: time.Minute},
	})
	victim := reps[0]
	prompt := promptOwnedBy(t, rt, victim.addr)
	victim.stop(t)

	// The owner is down but still marked live (no heartbeat ran): every
	// request must spill to the ring successor and still succeed.
	for i := 0; i < 3; i++ {
		resp, err := rt.PredictRoute(context.Background(), serve.Request{Prompt: prompt})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if strings.HasPrefix(resp.Suggestion, victim.name+"|") {
			t.Fatalf("request %d answered by the dead backend", i)
		}
	}
	if got := rt.Spillovers(); got != 3 {
		t.Errorf("spillovers = %d, want 3", got)
	}
	// Three consecutive transport failures tripped the victim's breaker.
	if st := rt.backends[victim.addr].breaker.State(); st != resilience.Open {
		t.Errorf("victim breaker = %v after 3 transport failures, want open", st)
	}
	// With the breaker open the victim is skipped without a connection
	// attempt; requests still succeed via the successor.
	if _, err := rt.PredictRoute(context.Background(), serve.Request{Prompt: prompt}); err != nil {
		t.Fatalf("request with open breaker: %v", err)
	}
}

func TestRouterOverloadShedSpillsWithoutTrippingBreaker(t *testing.T) {
	// The victim owner has one worker and no queue: a second concurrent
	// request sheds immediately with a server-delivered 503-equivalent.
	victim := startReplica(t, "victim", "", serve.Options{Workers: 1, QueueDepth: -1, QueueTimeout: -1})
	other := startReplica(t, "other", "", serve.Options{})
	rt, err := New([]string{victim.addr, other.addr}, Options{
		HeartbeatInterval: -1,
		Breaker:           resilience.BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	prompt := promptOwnedBy(t, rt, victim.addr)

	// Occupy the victim's only worker with a parked direct request.
	c, err := serve.Dial(victim.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	blocked := make(chan error, 1)
	go func() {
		_, err := c.Predict(serve.Request{Prompt: "block"})
		blocked <- err
	}()
	victim.model.awaitBlocked(t)

	resp, err := rt.PredictRoute(context.Background(), serve.Request{Prompt: prompt})
	if err != nil {
		t.Fatalf("PredictRoute during overload: %v", err)
	}
	if !strings.HasPrefix(resp.Suggestion, "other|") {
		t.Fatalf("overloaded request answered %q, want spill to other", resp.Suggestion)
	}
	if got := rt.Spillovers(); got != 1 {
		t.Errorf("spillovers = %d, want 1", got)
	}
	// A shed on a healthy connection is the replica refusing work, not
	// failing: even with FailureThreshold 1 the breaker must stay closed.
	if st := rt.backends[victim.addr].breaker.State(); st != resilience.Closed {
		t.Errorf("victim breaker = %v after an overload shed, want closed", st)
	}

	victim.model.unblock()
	if err := <-blocked; err != nil {
		t.Fatalf("parked request: %v", err)
	}
}

func TestRouterHeartbeatDeathAndRecovery(t *testing.T) {
	rt, reps := startFleet(t, 3, Options{DeadAfter: 2, HeartbeatTimeout: 500 * time.Millisecond})
	victim := reps[0]
	prompt := promptOwnedBy(t, rt, victim.addr)

	// Healthy sweep: everyone stays live.
	rt.CheckBackends()
	if !rt.Ring().Alive(victim.addr) {
		t.Fatal("victim dead after a healthy sweep")
	}

	victim.stop(t)
	rt.CheckBackends()
	if !rt.Ring().Alive(victim.addr) {
		t.Fatal("victim marked dead after 1 failed sweep, want DeadAfter=2")
	}
	rt.CheckBackends()
	if rt.Ring().Alive(victim.addr) {
		t.Fatal("victim still live after DeadAfter failed sweeps")
	}

	// The dead node's keys now route to the successor as their primary:
	// no spillover is counted and no connection to the corpse is attempted.
	before := rt.Spillovers()
	if _, err := rt.PredictRoute(context.Background(), serve.Request{Prompt: prompt}); err != nil {
		t.Fatalf("request after death: %v", err)
	}
	if got := rt.Spillovers(); got != before {
		t.Errorf("spillovers grew %d -> %d for a rebalanced key, want unchanged", before, got)
	}

	// Restart on the same address: one successful sweep revives it.
	revived := startReplica(t, "rep0b", victim.addr, serve.Options{})
	rt.CheckBackends()
	if !rt.Ring().Alive(victim.addr) {
		t.Fatal("victim still dead after recovery sweep")
	}
	resp, err := rt.PredictRoute(context.Background(), serve.Request{Prompt: prompt})
	if err != nil {
		t.Fatalf("request after recovery: %v", err)
	}
	if !strings.HasPrefix(resp.Suggestion, revived.name+"|") {
		t.Errorf("recovered key answered %q, want owner %s", resp.Suggestion, revived.name)
	}
}

func TestRouterAllBackendsDown(t *testing.T) {
	rep := startReplica(t, "solo", "", serve.Options{})
	rt, err := New([]string{rep.addr}, Options{HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	rep.stop(t)
	if _, err := rt.PredictRoute(context.Background(), serve.Request{Prompt: "x"}); err == nil {
		t.Fatal("PredictRoute succeeded with the whole fleet down")
	}
	var deltas int
	if _, err := rt.PredictStreamRoute(context.Background(), serve.Request{Prompt: "x"}, func(string) { deltas++ }); err == nil {
		t.Fatal("PredictStreamRoute succeeded with the whole fleet down")
	}
	if deltas != 0 {
		t.Fatalf("%d deltas delivered from a dead fleet, want 0", deltas)
	}
}

func TestRouterAggregateStats(t *testing.T) {
	rt, _ := startFleet(t, 3, Options{})
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := rt.PredictRoute(context.Background(), serve.Request{Prompt: fmt.Sprintf("agg-%d", i)}); err != nil {
			t.Fatalf("PredictRoute: %v", err)
		}
	}
	local := serve.Stats{Model: "router", Requests: n}
	fleet, ok := rt.AggregateStats(local).(FleetStats)
	if !ok {
		t.Fatalf("AggregateStats returned %T, want FleetStats", rt.AggregateStats(local))
	}
	if fleet.Router.Model != "router" || fleet.Router.Requests != n {
		t.Errorf("router row = %+v, want the local stats passed in", fleet.Router)
	}
	if fleet.Fleet.Model != "fleet" {
		t.Errorf("fleet model = %q, want fleet", fleet.Fleet.Model)
	}
	if fleet.Fleet.Requests != n {
		t.Errorf("fleet requests = %d, want sum of replicas = %d", fleet.Fleet.Requests, n)
	}
	if len(fleet.Backends) != 3 {
		t.Fatalf("backends rows = %d, want 3", len(fleet.Backends))
	}
	var rowSum, fwdSum uint64
	var shareSum float64
	for _, row := range fleet.Backends {
		if row.Stats == nil {
			t.Fatalf("backend %s has no stats snapshot", row.Addr)
		}
		rowSum += uint64(row.Stats.Requests)
		fwdSum += row.Requests
		shareSum += row.RingShare
		if !row.Alive {
			t.Errorf("backend %s reported dead on a healthy fleet", row.Addr)
		}
		if row.Breaker != "closed" {
			t.Errorf("backend %s breaker = %q, want closed", row.Addr, row.Breaker)
		}
	}
	if rowSum != n {
		t.Errorf("sum of per-backend replica requests = %d, want %d", rowSum, n)
	}
	if fwdSum != n {
		t.Errorf("sum of router forward counters = %d, want %d", fwdSum, n)
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Errorf("ring shares sum to %v, want 1", shareSum)
	}
}

func TestRouterPredictorFace(t *testing.T) {
	rt, _ := startFleet(t, 2, Options{})
	got := rt.Predict("- hosts: all\n", "simple task")
	if !strings.Contains(got, "|simple task") {
		t.Errorf("Predict = %q, want a replica answer", got)
	}
}

func TestRouterStreamCancellationPropagates(t *testing.T) {
	// A parked backend stream plus a cancelled router context: the router
	// must close the backend connection and return promptly with ctx.Err().
	rep := startReplica(t, "hangrep", "", serve.Options{})
	rt, err := New([]string{rep.addr}, Options{HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := rt.PredictStreamRoute(ctx, serve.Request{Prompt: "block"}, func(string) {})
		done <- err
	}()
	rep.model.awaitBlocked(t) // the forward has reached the backend
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled stream returned nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled stream did not return within 2s")
	}
}
