// Chaos tests: the resilience fault injector sits between the router and
// one backend's transport, injecting latency, hangs, resets and corrupt
// frames. The contract under chaos: faults trip that backend's breaker,
// requests spill to the ring successor and still succeed, and a client
// never receives a corrupt or duplicated completion.

package router

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"wisdom/internal/resilience"
	"wisdom/internal/serve"
)

// chaosFleet boots 3 replicas and a router whose connections to the owner
// of the returned prompt run through the scripted injector; every other
// backend is fault-free. The heartbeat stays disabled so liveness cannot
// mask the data-path faults under test.
func chaosFleet(t *testing.T, inj *resilience.Injector, breaker resilience.BreakerConfig) (rt *Router, reps []*replica, victim *replica, prompt string) {
	t.Helper()
	var addrs []string
	for i := 0; i < 3; i++ {
		r := startReplica(t, fmt.Sprintf("rep%d", i), "", serve.Options{})
		reps = append(reps, r)
		addrs = append(addrs, r.addr)
	}
	// Resolve the victim before building the router: ring placement is a
	// pure function of the address set, so a scratch ring agrees with the
	// router's.
	prompt = "chaos-task"
	scratch := NewRing(0)
	for _, a := range addrs {
		scratch.Add(a)
	}
	ownerAddr, _ := scratch.Lookup(affinityKey(serve.Request{Prompt: prompt}))
	for _, r := range reps {
		if r.addr == ownerAddr {
			victim = r
		}
	}

	rt, err := New(addrs, Options{
		HeartbeatInterval: -1,
		ForwardTimeout:    300 * time.Millisecond, // bounds the hang fault
		Breaker:           breaker,
		Wrap: func(addr string, c net.Conn) net.Conn {
			if addr == ownerAddr {
				return inj.WrapConn(c)
			}
			return c
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt, reps, victim, prompt
}

// TestRouterChaosUnaryFaults scripts latency → hang → reset → corrupt
// against the owner: latency is absorbed (no spill), each hard fault spills
// to the successor with an uncorrupted answer, and the third hard fault
// trips the breaker so the fourth request skips the owner without a
// connection attempt.
func TestRouterChaosUnaryFaults(t *testing.T) {
	inj := resilience.NewScript(
		resilience.FaultLatency,
		resilience.FaultHang,
		resilience.FaultError,
		resilience.FaultCorrupt,
	)
	rt, reps, victim, prompt := chaosFleet(t, inj, resilience.BreakerConfig{FailureThreshold: 3, Cooldown: time.Minute})

	// Exchange 1: latency only — the owner still answers, no spillover.
	resp, err := rt.PredictRoute(context.Background(), serve.Request{Prompt: prompt})
	if err != nil {
		t.Fatalf("latency request: %v", err)
	}
	if resp.Suggestion != victim.model.answer(prompt) {
		t.Fatalf("latency request answered %q, want the owner's %q", resp.Suggestion, victim.model.answer(prompt))
	}
	if got := rt.Spillovers(); got != 0 {
		t.Fatalf("spillovers = %d after a latency-only fault, want 0", got)
	}

	// Exchanges 2-4: hang, reset, corrupt — every request must spill and
	// deliver an exact, uncorrupted answer from a non-victim replica.
	for i := 0; i < 3; i++ {
		resp, err := rt.PredictRoute(context.Background(), serve.Request{Prompt: prompt})
		if err != nil {
			t.Fatalf("fault request %d: %v", i, err)
		}
		server := strings.SplitN(resp.Suggestion, "|", 2)[0]
		if server == victim.name {
			t.Fatalf("fault request %d answered by the faulted owner", i)
		}
		found := false
		for _, r := range reps {
			if r.name == server && resp.Suggestion == r.model.answer(prompt) {
				found = true
			}
		}
		if !found {
			t.Fatalf("fault request %d answered %q — not any replica's exact answer (corruption?)", i, resp.Suggestion)
		}
	}
	if got := rt.Spillovers(); got != 3 {
		t.Errorf("spillovers = %d after 3 hard faults, want 3", got)
	}
	if st := rt.backends[victim.addr].breaker.State(); st != resilience.Open {
		t.Errorf("victim breaker = %v after 3 transport faults, want open", st)
	}

	// Breaker open: the owner is skipped outright; the request still spills
	// and succeeds, and the injector sees no further exchange.
	before := inj.Injected(resilience.FaultNone)
	if _, err := rt.PredictRoute(context.Background(), serve.Request{Prompt: prompt}); err != nil {
		t.Fatalf("request with open breaker: %v", err)
	}
	if got := inj.Injected(resilience.FaultNone); got != before {
		t.Errorf("open breaker still let %d exchanges reach the victim transport", got-before)
	}
	if got := rt.Spillovers(); got != 4 {
		t.Errorf("spillovers = %d, want 4", got)
	}

	// Every scripted fault actually fired.
	for _, f := range []resilience.Fault{resilience.FaultLatency, resilience.FaultHang, resilience.FaultError, resilience.FaultCorrupt} {
		if got := inj.Injected(f); got != 1 {
			t.Errorf("fault %v fired %d times, want 1", f, got)
		}
	}
}

// TestRouterChaosStreamIntegrity scripts corrupt → hang against the owner
// on the streamed path: both faults strike before the first delta, so the
// stream spills to the successor, and the delivered delta sequence must
// reassemble to exactly one copy of the final answer — never corrupt,
// never duplicated.
func TestRouterChaosStreamIntegrity(t *testing.T) {
	inj := resilience.NewScript(resilience.FaultCorrupt, resilience.FaultHang)
	rt, reps, victim, prompt := chaosFleet(t, inj, resilience.BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute})

	for i := 0; i < 2; i++ {
		var deltas []string
		resp, err := rt.PredictStreamRoute(context.Background(), serve.Request{Prompt: prompt}, func(d string) {
			deltas = append(deltas, d)
		})
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		server := strings.SplitN(resp.Suggestion, "|", 2)[0]
		if server == victim.name {
			t.Fatalf("stream %d served by the faulted owner", i)
		}
		var want string
		for _, r := range reps {
			if r.name == server {
				want = r.model.answer(prompt)
			}
		}
		if want == "" || resp.Suggestion != want {
			t.Fatalf("stream %d final %q is not any replica's exact answer", i, resp.Suggestion)
		}
		joined := strings.Join(deltas, "")
		if joined != want {
			t.Fatalf("stream %d deltas reassemble to %q, want exactly %q (no corruption)", i, joined, want)
		}
		if strings.Count(joined, prompt) != 1 {
			t.Fatalf("stream %d delivered %d copies of the completion, want exactly 1", i, strings.Count(joined, prompt))
		}
	}
	if got := rt.Spillovers(); got != 2 {
		t.Errorf("spillovers = %d, want 2", got)
	}
	if st := rt.backends[victim.addr].breaker.State(); st != resilience.Open {
		t.Errorf("victim breaker = %v after 2 stream faults (threshold 2), want open", st)
	}
	if inj.Injected(resilience.FaultCorrupt) != 1 || inj.Injected(resilience.FaultHang) != 1 {
		t.Errorf("fault counts corrupt=%d hang=%d, want 1 and 1",
			inj.Injected(resilience.FaultCorrupt), inj.Injected(resilience.FaultHang))
	}
}

// TestRouterChaosMembershipChurn runs a sustained mixed unary/stream burst
// while the fleet churns underneath it — a fourth replica joins, one
// replica drains and is removed, another is killed outright — all with a
// seeded random fault injector corrupting one backend's transport the whole
// time. The burst and the churn synchronise on completed-request counts
// (never wall-clock sleeps), and the breaker clock is a ManualClock
// advanced at each churn phase so cooldown behaviour is deterministic.
// Invariants: zero failed requests, every answer byte-exact from some
// replica, every stream's deltas reassemble to exactly one copy of its
// final answer, and the post-churn membership table is exactly the
// surviving fleet.
func TestRouterChaosMembershipChurn(t *testing.T) {
	inj := resilience.NewRandom(7, resilience.FaultConfig{PError: 0.3, PHang: 0.1, PCorrupt: 0.2})
	clock := resilience.NewManualClock()
	rt, reps, victim, _ := chaosFleet(t, inj, resilience.BreakerConfig{
		FailureThreshold: 3, Cooldown: time.Second, Now: clock.Now,
	})
	// The two fault-free original replicas: one drains out, one is killed.
	var leaver, casualty *replica
	for _, r := range reps {
		if r == victim {
			continue
		}
		if leaver == nil {
			leaver = r
		} else {
			casualty = r
		}
	}
	joiner := startReplica(t, "joiner", "", serve.Options{})
	epoch0 := rt.MembershipEpoch()

	const workers, perWorker = 4, 30
	total := workers * perWorker
	progress := make(chan struct{}, total)
	type result struct {
		prompt, answer, joined string
		stream                 bool
		err                    error
	}
	results := make(chan result, total)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				prompt := fmt.Sprintf("churn-%d-%d", w, i)
				req := serve.Request{Prompt: prompt}
				var res result
				res.prompt = prompt
				if i%2 == 0 {
					resp, err := rt.PredictRoute(context.Background(), req)
					res.answer, res.err = resp.Suggestion, err
				} else {
					res.stream = true
					var deltas []string
					resp, err := rt.PredictStreamRoute(context.Background(), req, func(d string) {
						deltas = append(deltas, d)
					})
					res.answer, res.joined, res.err = resp.Suggestion, strings.Join(deltas, ""), err
				}
				results <- res
				progress <- struct{}{}
			}
		}()
	}

	// The churn driver paces itself on completed requests, so every phase
	// lands mid-burst regardless of machine speed.
	awaitCompleted := func(n int) {
		for i := 0; i < n; i++ {
			<-progress
		}
	}
	churnErr := make(chan error, 1)
	go func() {
		awaitCompleted(20)
		if err := rt.Join(context.Background(), joiner.addr); err != nil {
			churnErr <- fmt.Errorf("join: %w", err)
			return
		}
		clock.Advance(2 * time.Second) // any open breaker may re-probe
		awaitCompleted(20)
		if err := rt.Drain(leaver.addr); err != nil {
			churnErr <- fmt.Errorf("drain: %w", err)
			return
		}
		if err := rt.Remove(context.Background(), leaver.addr); err != nil {
			churnErr <- fmt.Errorf("remove: %w", err)
			return
		}
		clock.Advance(2 * time.Second)
		awaitCompleted(20)
		// Kill without ceremony: the replica leaves the network but stays on
		// the ring, so its arcs survive only through breaker + spillover.
		casualty.stop(t)
		churnErr <- nil
	}()

	wg.Wait()
	close(results)
	if err := <-churnErr; err != nil {
		t.Fatal(err)
	}

	// Every request succeeded with some replica's exact answer; streams
	// reassembled without tearing or duplication.
	all := append(append([]*replica{}, reps...), joiner)
	servedBy := map[string]int{}
	for res := range results {
		if res.err != nil {
			t.Fatalf("request %q failed during churn: %v", res.prompt, res.err)
		}
		server := strings.SplitN(res.answer, "|", 2)[0]
		servedBy[server]++
		exact := false
		for _, r := range all {
			if r.name == server && res.answer == r.model.answer(res.prompt) {
				exact = true
			}
		}
		if !exact {
			t.Fatalf("request %q answered %q — not any replica's exact answer (corruption?)", res.prompt, res.answer)
		}
		if res.stream {
			if res.joined != res.answer {
				t.Fatalf("stream %q deltas reassemble to %q, want exactly %q", res.prompt, res.joined, res.answer)
			}
			if strings.Count(res.joined, res.prompt) != 1 {
				t.Fatalf("stream %q delivered %d copies of the completion, want exactly 1",
					res.prompt, strings.Count(res.joined, res.prompt))
			}
		}
	}
	if servedBy[joiner.name] == 0 {
		t.Error("the joined replica never served a request across 60 post-join requests")
	}

	// Exactly two ring mutations happened: the join and the drain (removal
	// and the kill do not touch the ring again).
	if got := rt.MembershipEpoch(); got != epoch0+2 {
		t.Errorf("membership epoch advanced %d -> %d, want exactly +2 (join, drain)", epoch0, got)
	}
	members := rt.Members()
	if len(members) != 3 {
		t.Fatalf("post-churn members = %d, want 3 (victim, casualty, joiner): %+v", len(members), members)
	}
	for _, m := range members {
		if m.Addr == leaver.addr {
			t.Errorf("removed backend %s still in the membership table", leaver.addr)
		}
		if m.State != "active" {
			t.Errorf("post-churn member %s state = %q, want active", m.Addr, m.State)
		}
	}
	// The injector genuinely exercised the data path.
	faults := inj.Injected(resilience.FaultError) + inj.Injected(resilience.FaultHang) + inj.Injected(resilience.FaultCorrupt)
	if faults == 0 {
		t.Error("the fault injector never fired — the chaos test tested nothing")
	}
}

// TestRouterChaosRandomSustained drives 60 requests through a seeded
// random injector on the owner's transport (error/hang/corrupt mixed in at
// high probability). Whatever the pattern, the invariant holds: every
// request eventually succeeds with some replica's exact answer — the
// breaker and spillover absorb the chaos without surfacing one failure.
func TestRouterChaosRandomSustained(t *testing.T) {
	inj := resilience.NewRandom(42, resilience.FaultConfig{PError: 0.3, PHang: 0.1, PCorrupt: 0.2})
	// Cooldown shorter than the run so the breaker also exercises
	// half-open probes against the still-faulty transport.
	rt, reps, _, prompt := chaosFleet(t, inj, resilience.BreakerConfig{FailureThreshold: 2, Cooldown: 100 * time.Millisecond})

	exact := map[string]bool{}
	for _, r := range reps {
		exact[r.model.answer(prompt)] = true
	}
	for i := 0; i < 60; i++ {
		resp, err := rt.PredictRoute(context.Background(), serve.Request{Prompt: prompt})
		if err != nil {
			t.Fatalf("request %d failed despite spillover: %v", i, err)
		}
		if !exact[resp.Suggestion] {
			t.Fatalf("request %d answered %q — not any replica's exact answer", i, resp.Suggestion)
		}
	}
}
