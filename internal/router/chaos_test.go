// Chaos tests: the resilience fault injector sits between the router and
// one backend's transport, injecting latency, hangs, resets and corrupt
// frames. The contract under chaos: faults trip that backend's breaker,
// requests spill to the ring successor and still succeed, and a client
// never receives a corrupt or duplicated completion.

package router

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"wisdom/internal/resilience"
	"wisdom/internal/serve"
)

// chaosFleet boots 3 replicas and a router whose connections to the owner
// of the returned prompt run through the scripted injector; every other
// backend is fault-free. The heartbeat stays disabled so liveness cannot
// mask the data-path faults under test.
func chaosFleet(t *testing.T, inj *resilience.Injector, breaker resilience.BreakerConfig) (rt *Router, reps []*replica, victim *replica, prompt string) {
	t.Helper()
	var addrs []string
	for i := 0; i < 3; i++ {
		r := startReplica(t, fmt.Sprintf("rep%d", i), "", serve.Options{})
		reps = append(reps, r)
		addrs = append(addrs, r.addr)
	}
	// Resolve the victim before building the router: ring placement is a
	// pure function of the address set, so a scratch ring agrees with the
	// router's.
	prompt = "chaos-task"
	scratch := NewRing(0)
	for _, a := range addrs {
		scratch.Add(a)
	}
	ownerAddr, _ := scratch.Lookup(affinityKey(serve.Request{Prompt: prompt}))
	for _, r := range reps {
		if r.addr == ownerAddr {
			victim = r
		}
	}

	rt, err := New(addrs, Options{
		HeartbeatInterval: -1,
		ForwardTimeout:    300 * time.Millisecond, // bounds the hang fault
		Breaker:           breaker,
		Wrap: func(addr string, c net.Conn) net.Conn {
			if addr == ownerAddr {
				return inj.WrapConn(c)
			}
			return c
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt, reps, victim, prompt
}

// TestRouterChaosUnaryFaults scripts latency → hang → reset → corrupt
// against the owner: latency is absorbed (no spill), each hard fault spills
// to the successor with an uncorrupted answer, and the third hard fault
// trips the breaker so the fourth request skips the owner without a
// connection attempt.
func TestRouterChaosUnaryFaults(t *testing.T) {
	inj := resilience.NewScript(
		resilience.FaultLatency,
		resilience.FaultHang,
		resilience.FaultError,
		resilience.FaultCorrupt,
	)
	rt, reps, victim, prompt := chaosFleet(t, inj, resilience.BreakerConfig{FailureThreshold: 3, Cooldown: time.Minute})

	// Exchange 1: latency only — the owner still answers, no spillover.
	resp, err := rt.PredictRoute(context.Background(), serve.Request{Prompt: prompt})
	if err != nil {
		t.Fatalf("latency request: %v", err)
	}
	if resp.Suggestion != victim.model.answer(prompt) {
		t.Fatalf("latency request answered %q, want the owner's %q", resp.Suggestion, victim.model.answer(prompt))
	}
	if got := rt.Spillovers(); got != 0 {
		t.Fatalf("spillovers = %d after a latency-only fault, want 0", got)
	}

	// Exchanges 2-4: hang, reset, corrupt — every request must spill and
	// deliver an exact, uncorrupted answer from a non-victim replica.
	for i := 0; i < 3; i++ {
		resp, err := rt.PredictRoute(context.Background(), serve.Request{Prompt: prompt})
		if err != nil {
			t.Fatalf("fault request %d: %v", i, err)
		}
		server := strings.SplitN(resp.Suggestion, "|", 2)[0]
		if server == victim.name {
			t.Fatalf("fault request %d answered by the faulted owner", i)
		}
		found := false
		for _, r := range reps {
			if r.name == server && resp.Suggestion == r.model.answer(prompt) {
				found = true
			}
		}
		if !found {
			t.Fatalf("fault request %d answered %q — not any replica's exact answer (corruption?)", i, resp.Suggestion)
		}
	}
	if got := rt.Spillovers(); got != 3 {
		t.Errorf("spillovers = %d after 3 hard faults, want 3", got)
	}
	if st := rt.backends[victim.addr].breaker.State(); st != resilience.Open {
		t.Errorf("victim breaker = %v after 3 transport faults, want open", st)
	}

	// Breaker open: the owner is skipped outright; the request still spills
	// and succeeds, and the injector sees no further exchange.
	before := inj.Injected(resilience.FaultNone)
	if _, err := rt.PredictRoute(context.Background(), serve.Request{Prompt: prompt}); err != nil {
		t.Fatalf("request with open breaker: %v", err)
	}
	if got := inj.Injected(resilience.FaultNone); got != before {
		t.Errorf("open breaker still let %d exchanges reach the victim transport", got-before)
	}
	if got := rt.Spillovers(); got != 4 {
		t.Errorf("spillovers = %d, want 4", got)
	}

	// Every scripted fault actually fired.
	for _, f := range []resilience.Fault{resilience.FaultLatency, resilience.FaultHang, resilience.FaultError, resilience.FaultCorrupt} {
		if got := inj.Injected(f); got != 1 {
			t.Errorf("fault %v fired %d times, want 1", f, got)
		}
	}
}

// TestRouterChaosStreamIntegrity scripts corrupt → hang against the owner
// on the streamed path: both faults strike before the first delta, so the
// stream spills to the successor, and the delivered delta sequence must
// reassemble to exactly one copy of the final answer — never corrupt,
// never duplicated.
func TestRouterChaosStreamIntegrity(t *testing.T) {
	inj := resilience.NewScript(resilience.FaultCorrupt, resilience.FaultHang)
	rt, reps, victim, prompt := chaosFleet(t, inj, resilience.BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute})

	for i := 0; i < 2; i++ {
		var deltas []string
		resp, err := rt.PredictStreamRoute(context.Background(), serve.Request{Prompt: prompt}, func(d string) {
			deltas = append(deltas, d)
		})
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		server := strings.SplitN(resp.Suggestion, "|", 2)[0]
		if server == victim.name {
			t.Fatalf("stream %d served by the faulted owner", i)
		}
		var want string
		for _, r := range reps {
			if r.name == server {
				want = r.model.answer(prompt)
			}
		}
		if want == "" || resp.Suggestion != want {
			t.Fatalf("stream %d final %q is not any replica's exact answer", i, resp.Suggestion)
		}
		joined := strings.Join(deltas, "")
		if joined != want {
			t.Fatalf("stream %d deltas reassemble to %q, want exactly %q (no corruption)", i, joined, want)
		}
		if strings.Count(joined, prompt) != 1 {
			t.Fatalf("stream %d delivered %d copies of the completion, want exactly 1", i, strings.Count(joined, prompt))
		}
	}
	if got := rt.Spillovers(); got != 2 {
		t.Errorf("spillovers = %d, want 2", got)
	}
	if st := rt.backends[victim.addr].breaker.State(); st != resilience.Open {
		t.Errorf("victim breaker = %v after 2 stream faults (threshold 2), want open", st)
	}
	if inj.Injected(resilience.FaultCorrupt) != 1 || inj.Injected(resilience.FaultHang) != 1 {
		t.Errorf("fault counts corrupt=%d hang=%d, want 1 and 1",
			inj.Injected(resilience.FaultCorrupt), inj.Injected(resilience.FaultHang))
	}
}

// TestRouterChaosRandomSustained drives 60 requests through a seeded
// random injector on the owner's transport (error/hang/corrupt mixed in at
// high probability). Whatever the pattern, the invariant holds: every
// request eventually succeeds with some replica's exact answer — the
// breaker and spillover absorb the chaos without surfacing one failure.
func TestRouterChaosRandomSustained(t *testing.T) {
	inj := resilience.NewRandom(42, resilience.FaultConfig{PError: 0.3, PHang: 0.1, PCorrupt: 0.2})
	// Cooldown shorter than the run so the breaker also exercises
	// half-open probes against the still-faulty transport.
	rt, reps, _, prompt := chaosFleet(t, inj, resilience.BreakerConfig{FailureThreshold: 2, Cooldown: 100 * time.Millisecond})

	exact := map[string]bool{}
	for _, r := range reps {
		exact[r.model.answer(prompt)] = true
	}
	for i := 0; i < 60; i++ {
		resp, err := rt.PredictRoute(context.Background(), serve.Request{Prompt: prompt})
		if err != nil {
			t.Fatalf("request %d failed despite spillover: %v", i, err)
		}
		if !exact[resp.Suggestion] {
			t.Fatalf("request %d answered %q — not any replica's exact answer", i, resp.Suggestion)
		}
	}
}
