// Package router implements the sharded serving frontend: a router tier
// that speaks the existing HTTP+RPC surface (by implementing the serve
// package's routing-predictor seams) and fans requests out to a fleet of
// backend replicas over the binary RPC protocol.
//
// # Sharding
//
// Requests shard by consistent hashing: the affinity key — session_id when
// present, otherwise the request's context+prompt — hashes onto a ring of
// virtual nodes, and the first live backend clockwise owns the request.
// Hashing the session key keeps every request of one editing session on one
// replica, so that replica's per-session prefix KV cache stays warm;
// hashing the content key keeps identical stateless requests on one
// replica, so its response cache and singleflight group see all the
// duplicates.
//
// # Failure handling
//
// Each backend is guarded by its own circuit breaker (internal/resilience)
// and watched by a lightweight heartbeat reusing the RPC health op. A
// request whose owner is breaker-open, heartbeat-dead, unreachable, or
// shedding under overload spills over to the next node on the ring
// (wisdom_router_spillover_total); a replica that dies is removed from the
// ring ownership within the heartbeat window and its key range rebalances
// to its successors with minimal movement everywhere else. Streamed
// requests spill only before their first delta — a started stream is never
// replayed, because the client has already rendered its output.
//
// # Dynamic membership
//
// The fleet is not fixed at startup: backends join, drain and leave at
// runtime through an authenticated admin surface (HTTP /admin/backends and
// the RPC "admin" op — see docs/PROTOCOL.md §7). Every membership mutation
// publishes a new immutable ring snapshot under a bumped epoch, so in-
// flight lookups never lock against membership changes; removal goes
// through a drain state that first takes the backend out of the ring and
// then waits for its in-flight forwards to finish before closing
// connections; and a session whose ring owner changed across epochs is
// detected by an ownership-epoch check and cold-started on its new replica
// instead of silently resuming against state the replica never had. See
// ARCHITECTURE.md "Dynamic membership".
//
// # Placement in the serve stack
//
// The router reuses the serve package's admission stack unchanged: a
// serve.Server wraps a *Router exactly as it wraps a local model, so the
// response cache and singleflight group coalesce duplicate traffic before
// it crosses the network, the worker pool bounds concurrent forwards, and
// the HTTP/SSE/RPC surface — including overload shedding and graceful
// drain — is byte-identical to a replica's (docs/PROTOCOL.md: the router
// is protocol-transparent). /v1/stats widens to the aggregated fleet view
// through the serve.StatsAggregator seam.
package router

import (
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultVNodes is the number of virtual nodes each backend contributes to
// the hash ring when Options.VNodes is zero. More virtual nodes flatten the
// ownership distribution at the cost of a larger (still tiny) ring table.
const DefaultVNodes = 128

// Ring is a consistent hash ring with per-node liveness. Keys hash to the
// first live node clockwise from their point, so marking a node dead moves
// only that node's key range (to its ring successors) and leaves every
// other assignment untouched — which is exactly the property that keeps
// replica caches warm across fleet changes.
//
// Membership is copy-on-write: every mutation (Add, Remove, SetAlive)
// builds a fresh immutable snapshot and publishes it atomically under a
// bumped epoch, so lookups are lock-free — an in-flight Lookup reads one
// consistent snapshot and never blocks on (or is blocked by) a concurrent
// join, drain or leave. The zero value is not usable; call NewRing. All
// methods are safe for concurrent use.
type Ring struct {
	mu     sync.Mutex // serialises mutations; reads never take it
	vnodes int
	state  atomic.Pointer[ringState]
}

// ringState is one immutable membership snapshot. Mutations clone it and
// swap the pointer; readers load it once and work on a consistent view.
type ringState struct {
	epoch  uint64
	points []ringPoint     // sorted by hash, ascending
	alive  map[string]bool // node -> liveness
}

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring; each added node will contribute vnodes
// virtual points (<= 0 selects DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes}
	r.state.Store(&ringState{alive: map[string]bool{}})
	return r
}

// hashKey positions a request key on the ring: FNV-1a (64-bit, fixed
// across platforms, so shard assignments are stable and tests can pin
// exact key movements) pushed through an avalanche finalizer. The
// finalizer matters: raw FNV-1a places inputs that differ only in a short
// suffix — sequential request keys, one node's vnode indices — within a
// few multiples of the FNV prime (~2^40) of each other, clustering them
// into a sliver of the 2^64 ring and collapsing the shard distribution.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// vnodeHash positions one of a node's virtual points on the ring.
func vnodeHash(node string, i int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	// Two separator bytes keep "node" + index unambiguous ("n1"/11 vs
	// "n11"/1) without formatting allocations.
	h.Write([]byte{0xff, byte(i >> 8), byte(i)})
	return mix64(h.Sum64())
}

// mix64 is the MurmurHash3 64-bit finalizer: a bijective avalanche step
// that spreads nearby inputs across the full keyspace.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// clone copies the current state for mutation; callers hold r.mu.
func (r *Ring) clone() *ringState {
	cur := r.state.Load()
	next := &ringState{
		epoch:  cur.epoch,
		points: append([]ringPoint(nil), cur.points...),
		alive:  make(map[string]bool, len(cur.alive)+1),
	}
	for n, a := range cur.alive {
		next.alive[n] = a
	}
	return next
}

// Epoch returns the membership epoch: a counter bumped by every effective
// mutation (Add, Remove, SetAlive that changed liveness). Two lookups under
// the same epoch are guaranteed to have used the same membership snapshot,
// which is what the router's session ownership check relies on.
func (r *Ring) Epoch() uint64 { return r.state.Load().epoch }

// Add inserts a node (initially alive). Adding an existing node is a no-op,
// so a config reload cannot double a node's ring share.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.state.Load()
	if _, ok := cur.alive[node]; ok {
		return
	}
	next := r.clone()
	next.alive[node] = true
	for i := 0; i < r.vnodes; i++ {
		next.points = append(next.points, ringPoint{hash: vnodeHash(node, i), node: node})
	}
	sort.Slice(next.points, func(a, b int) bool { return next.points[a].hash < next.points[b].hash })
	next.epoch++
	r.state.Store(next)
}

// Remove deletes a node and all its virtual points. Removing an unknown
// node is a no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.state.Load()
	if _, ok := cur.alive[node]; !ok {
		return
	}
	next := r.clone()
	delete(next.alive, node)
	kept := next.points[:0]
	for _, p := range next.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	next.points = kept
	next.epoch++
	r.state.Store(next)
}

// SetAlive marks a node live or dead. A dead node keeps its ring points but
// stops owning keys: lookups skip to its successors until it recovers, at
// which point its original range snaps back (no rehash, no residual
// movement). Unknown nodes and no-op transitions are ignored (the epoch
// only advances when ownership actually changed).
func (r *Ring) SetAlive(node string, alive bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.state.Load()
	if was, ok := cur.alive[node]; !ok || was == alive {
		return
	}
	next := r.clone()
	next.alive[node] = alive
	next.epoch++
	r.state.Store(next)
}

// Alive reports whether the node is currently marked live (false for
// unknown nodes).
func (r *Ring) Alive(node string) bool {
	return r.state.Load().alive[node]
}

// Nodes returns every node on the ring, sorted, live or not.
func (r *Ring) Nodes() []string {
	st := r.state.Load()
	nodes := make([]string, 0, len(st.alive))
	for n := range st.alive {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return nodes
}

// Lookup returns the live owner of key: the first live node clockwise from
// the key's ring position. ok is false when no live node exists.
func (r *Ring) Lookup(key string) (node string, ok bool) {
	nodes := r.state.Load().successors(key, 1, true)
	if len(nodes) == 0 {
		return "", false
	}
	return nodes[0], true
}

// LookupEpoch is Lookup plus the epoch of the snapshot that resolved it —
// one atomic read, so the pair is consistent even while membership mutates
// concurrently. The router's session ownership check uses it to decide
// whether a session's owner may have changed since its previous request.
func (r *Ring) LookupEpoch(key string) (node string, epoch uint64, ok bool) {
	st := r.state.Load()
	nodes := st.successors(key, 1, true)
	if len(nodes) == 0 {
		return "", st.epoch, false
	}
	return nodes[0], st.epoch, true
}

// Successors returns up to n distinct live nodes in ring order starting at
// key's owner — the spillover candidate list: index 0 is the owner, each
// later entry is the node the key range would move to if everything before
// it failed. n <= 0 returns every live node.
func (r *Ring) Successors(key string, n int) []string {
	return r.state.Load().successors(key, n, true)
}

// SuccessorsAll is Successors without the liveness filter: every node in
// ring order from the key's position. The router uses it as the
// last-resort candidate list when the heartbeat has marked the whole fleet
// dead — attempting a dead backend cannot make a total outage worse, and
// succeeds when the heartbeat verdict was stale.
func (r *Ring) SuccessorsAll(key string, n int) []string {
	return r.state.Load().successors(key, n, false)
}

func (st *ringState) successors(key string, n int, liveOnly bool) []string {
	if len(st.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(st.alive) {
		n = len(st.alive)
	}
	h := hashKey(key)
	// First point with hash >= h, wrapping to 0 past the top of the ring.
	start := sort.Search(len(st.points), func(i int) bool { return st.points[i].hash >= h })
	seen := make(map[string]bool, n)
	var out []string
	for i := 0; i < len(st.points) && len(out) < n; i++ {
		p := st.points[(start+i)%len(st.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		if liveOnly && !st.alive[p.node] {
			continue
		}
		out = append(out, p.node)
	}
	return out
}

// Ownership returns the fraction of the hash keyspace each live node owns
// (first-live-node-clockwise semantics, matching Lookup). Dead nodes own
// nothing; the fractions of live nodes sum to 1. An empty map means no live
// node exists. Exported for the ring-share gauge and for balance tests.
func (r *Ring) Ownership() map[string]float64 {
	st := r.state.Load()
	out := make(map[string]float64)
	if len(st.points) == 0 {
		return out
	}
	anyAlive := false
	for _, ok := range st.alive {
		if ok {
			anyAlive = true
			break
		}
	}
	if !anyAlive {
		return out
	}
	// ownerAt resolves the live owner of the arc ending at point i.
	ownerAt := func(i int) string {
		for j := 0; j < len(st.points); j++ {
			p := st.points[(i+j)%len(st.points)]
			if st.alive[p.node] {
				return p.node
			}
		}
		return "" // unreachable: anyAlive checked above
	}
	if len(st.points) == 1 {
		// A single point owns the whole ring; the arc arithmetic below
		// would compute 2^64 mod 2^64 = 0 for it.
		out[ownerAt(0)] = 1
		return out
	}
	const whole = float64(1<<63) * 2 // 2^64 as float64
	for i := range st.points {
		var arc uint64
		if i == 0 {
			// Wrap-around arc: from the last point through 2^64-1 and 0 to
			// the first point.
			arc = st.points[0].hash - st.points[len(st.points)-1].hash // wraps mod 2^64
		} else {
			arc = st.points[i].hash - st.points[i-1].hash
		}
		out[ownerAt(i)] += float64(arc) / whole
	}
	return out
}
