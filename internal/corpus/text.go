package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// NaturalText generates a paragraph of natural-language prose, the "Pile"
// stand-in. Sentences come from a small template grammar biased toward the
// technical register of the real Pile.
func NaturalText(r *rand.Rand) string {
	v := &vocab{r: r}
	n := 3 + r.Intn(6)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(sentence(v))
	}
	sb.WriteByte('\n')
	return sb.String()
}

var sentenceSubjects = []string{
	"The system", "Our team", "The deployment process", "This service",
	"The operator", "A scheduled job", "The monitoring stack", "The database",
	"Each node", "The configuration", "The release pipeline", "An administrator",
}

var sentenceVerbs = []string{
	"manages", "updates", "monitors", "restarts", "provisions", "validates",
	"deploys", "configures", "archives", "replicates", "schedules", "audits",
}

var sentenceObjects = []string{
	"the web servers", "incoming requests", "the package repositories",
	"user accounts", "log files", "network interfaces", "storage volumes",
	"the certificate store", "backup snapshots", "container images",
	"firewall rules", "system services",
}

var sentenceTails = []string{
	"every night", "on demand", "across the cluster", "without downtime",
	"before each release", "in the staging environment", "automatically",
	"when the load increases", "under supervision", "for compliance reasons",
}

func sentence(v *vocab) string {
	s := fmt.Sprintf("%s %s %s %s.", v.pick(sentenceSubjects), v.pick(sentenceVerbs),
		v.pick(sentenceObjects), v.pick(sentenceTails))
	return s
}

// Language identifies a source-code flavour for the BigQuery stand-in.
type Language int

// The six languages of the CodeGen BigQuery corpus.
const (
	LangC Language = iota
	LangCpp
	LangGo
	LangJava
	LangJavaScript
	LangPython
)

var langNames = map[Language]string{
	LangC: "c", LangCpp: "cpp", LangGo: "go", LangJava: "java",
	LangJavaScript: "javascript", LangPython: "python",
}

// Name returns the lowercase language name.
func (l Language) Name() string { return langNames[l] }

var funcNames = []string{
	"parse_config", "send_request", "load_data", "process_items",
	"validate_input", "connect_db", "format_output", "retry_call",
	"read_file", "compute_hash", "merge_results", "init_logger",
}

var varIdents = []string{"result", "data", "items", "count", "value", "buf", "conf", "resp"}

// Code generates a small source snippet in the given language.
func Code(r *rand.Rand, lang Language) string {
	v := &vocab{r: r}
	fn := v.pick(funcNames)
	a, b := v.pick(varIdents), v.pick(varIdents)
	n := r.Intn(90) + 10
	switch lang {
	case LangPython:
		return fmt.Sprintf(`def %s(%s):
    """Process %s and return the result."""
    %s = []
    for item in %s:
        if item is not None:
            %s.append(item * %d)
    return %s
`, fn, a, a, b, a, b, n, b)
	case LangGo:
		return fmt.Sprintf(`// %s processes %s and returns the result.
func %s(%s []int) []int {
	var %s []int
	for _, item := range %s {
		if item > %d {
			%s = append(%s, item)
		}
	}
	return %s
}
`, fn, a, fn, a, b, a, n, b, b, b)
	case LangJava:
		return fmt.Sprintf(`public class Processor {
    public int %s(int[] %s) {
        int %s = 0;
        for (int item : %s) {
            %s += item %% %d;
        }
        return %s;
    }
}
`, fn, a, b, a, b, n, b)
	case LangJavaScript:
		return fmt.Sprintf(`function %s(%s) {
  const %s = %s.filter((item) => item > %d);
  return %s.map((item) => item * 2);
}
module.exports = { %s };
`, fn, a, b, a, n, b, fn)
	case LangCpp:
		return fmt.Sprintf(`#include <vector>
std::vector<int> %s(const std::vector<int>& %s) {
    std::vector<int> %s;
    for (auto item : %s) {
        if (item > %d) %s.push_back(item);
    }
    return %s;
}
`, fn, a, b, a, n, b, b)
	default: // C
		return fmt.Sprintf(`int %s(const int *%s, int len) {
    int %s = 0;
    for (int i = 0; i < len; i++) {
        if (%s[i] > %d) %s++;
    }
    return %s;
}
`, fn, a, b, a, n, b, b)
	}
}

// RandomCode generates a snippet in a random language.
func RandomCode(r *rand.Rand) string {
	return Code(r, Language(r.Intn(6)))
}
