package corpus

import (
	"fmt"
	"math/rand"

	"wisdom/internal/yaml"
)

// blockRate is the fraction of role tasks rendered as block/rescue tasks —
// the Ansible Blocks coverage the paper lists as future work; kept low to
// match their rarity in Galaxy.
const blockRate = 0.04

// RoleTaskFile generates a role-style list of tasks (the dominant Ansible
// file kind in Galaxy) and returns its YAML source.
func RoleTaskFile(r *rand.Rand, st Style) string {
	n := 2 + r.Intn(6)
	return roleTaskFileN(r, st, n)
}

func roleTaskFileN(r *rand.Rand, st Style, n int) string {
	v := &vocab{r: r}
	seq := yaml.Sequence()
	for i := 0; i < n; i++ {
		if v.chance(blockRate) {
			seq.Items = append(seq.Items, blockTask(r, st))
			continue
		}
		seq.Items = append(seq.Items, renderTask(r, drawTask(r), st))
	}
	return yaml.MarshalDocument(seq)
}

// blockTask renders a block/rescue task: an attempted task with a debug
// fallback, the dominant block pattern in real roles.
func blockTask(r *rand.Rand, st Style) *yaml.Node {
	v := &vocab{r: r}
	attempt := renderTask(r, drawTask(r), st)
	inner := attempt.Get("name")
	name := "Attempt risky change"
	if inner != nil {
		name = inner.Value + " with fallback"
	}
	rescueTask := yaml.Mapping().
		Set("name", yaml.ScalarTyped("Report failure", yaml.StrTag, yaml.Plain)).
		Set("ansible.builtin.debug", m("msg", "task failed, continuing"))
	task := yaml.Mapping()
	task.Set("name", yaml.ScalarTyped(name, yaml.StrTag, yaml.Plain))
	task.Set("block", yaml.Sequence(attempt))
	task.Set("rescue", yaml.Sequence(rescueTask))
	if v.chance(0.3) {
		task.Set("when", yaml.ScalarTyped(v.pick(whenConditions), yaml.StrTag, yaml.Plain))
	}
	return task
}

// Playbook generates a playbook. Mirroring the paper's observation about
// Galaxy, most generated playbooks are small: one play with one or two
// tasks dominates; some carry handlers and vars.
func Playbook(r *rand.Rand, st Style) string {
	v := &vocab{r: r}
	pb := yaml.Sequence()
	pb.Items = append(pb.Items, playNode(r, v, st))
	if v.chance(0.07) {
		pb.Items = append(pb.Items, playNode(r, v, st))
	}
	return yaml.MarshalDocument(pb)
}

func playNode(r *rand.Rand, v *vocab, st Style) *yaml.Node {
	play := yaml.Mapping()
	if v.chance(0.8) {
		play.Set("name", yaml.ScalarTyped(playName(v), yaml.StrTag, yaml.Plain))
	}
	play.Set("hosts", yaml.ScalarTyped(v.pick(hostPatterns), yaml.StrTag, yaml.Plain))
	if v.chance(0.35) {
		play.Set("become", yaml.BoolScalar(true))
	}
	if v.chance(0.25) {
		play.Set("gather_facts", yaml.BoolScalar(v.chance(0.3)))
	}
	if v.chance(0.2) {
		vars := yaml.Mapping()
		for i := 0; i < 1+r.Intn(3); i++ {
			vars.Set(v.pick(varNames), yaml.IntScalar(r.Intn(1000)))
		}
		play.Set("vars", vars)
	}
	// Task count skews tiny, as the paper notes of Galaxy playbooks —
	// but a quarter of playbooks carry more than two tasks, the slice
	// that feeds the PB+NL→T generation type.
	nTasks := 1
	switch {
	case v.chance(0.25):
		nTasks = 3 + r.Intn(3)
	case v.chance(0.45):
		nTasks = 2
	}
	tasks := yaml.Sequence()
	var handlerDrafts []taskDraft
	for i := 0; i < nTasks; i++ {
		d := drawTask(r)
		t := renderTask(r, d, st)
		if notify := t.Get("notify"); notify != nil && notify.Kind == yaml.ScalarNode {
			handlerDrafts = append(handlerDrafts, handlerFor(notify.Value))
		}
		tasks.Items = append(tasks.Items, t)
	}
	play.Set("tasks", tasks)
	if len(handlerDrafts) > 0 {
		handlers := yaml.Sequence()
		for _, d := range handlerDrafts {
			h := yaml.Mapping()
			h.Set("name", yaml.ScalarTyped(d.name, yaml.StrTag, yaml.Plain))
			h.Set(d.fqcn, d.args)
			handlers.Items = append(handlers.Items, h)
		}
		play.Set("handlers", handlers)
	}
	return play
}

// handlerFor builds the restart handler matching a notify value like
// "restart nginx".
func handlerFor(notify string) taskDraft {
	svc := shortPath(notify) // last word
	for i := len(notify) - 1; i >= 0; i-- {
		if notify[i] == ' ' {
			svc = notify[i+1:]
			break
		}
	}
	if svc == "systemd" || notify == "reload systemd" {
		return taskDraft{name: notify, fqcn: "ansible.builtin.systemd",
			args: m("daemon_reload", true)}
	}
	state := "restarted"
	if len(notify) >= 6 && notify[:6] == "reload" {
		state = "reloaded"
	}
	return taskDraft{name: notify, fqcn: "ansible.builtin.service",
		args: m("name", svc, "state", state)}
}

func playName(v *vocab) string {
	verbs := []string{"Configure", "Deploy", "Provision", "Set up", "Bootstrap", "Harden", "Update"}
	things := []string{"web servers", "database servers", "application nodes", "the monitoring stack",
		"load balancers", "docker hosts", "the staging environment", "worker nodes"}
	return fmt.Sprintf("%s %s", v.pick(verbs), v.pick(things))
}

// AnsibleFile generates one Ansible file: a playbook with probability
// pbRatio, otherwise a role task file.
func AnsibleFile(r *rand.Rand, st Style, pbRatio float64) (text string, isPlaybook bool) {
	if r.Float64() < pbRatio {
		return Playbook(r, st), true
	}
	return RoleTaskFile(r, st), false
}

var roleNames = []string{
	"common", "nginx", "postgresql", "docker", "monitoring", "firewall",
	"users", "backup", "hardening", "redis", "haproxy", "app_deploy",
}

var galaxyPlatforms = []string{"Ubuntu", "EL", "Debian", "Fedora"}
var galaxyTags = []string{"web", "database", "system", "networking", "security", "monitoring", "cloud"}

// Role generates a complete Galaxy-style role: tasks/main.yml, usually a
// handlers file, and the defaults/meta files the paper's pipeline filters
// out ("we extracted only playbooks containing tasks, and lists of tasks
// from roles" — this generator supplies the files that extraction must
// skip). Paths are rooted at roles/<name>/.
func Role(r *rand.Rand, name string, st Style) []File {
	v := &vocab{r: r}
	base := "roles/" + name + "/"
	files := []File{{
		Source: "galaxy",
		Path:   base + "tasks/main.yml",
		Kind:   AnsibleTasks,
		Text:   RoleTaskFile(r, st),
	}}
	if v.chance(0.6) {
		handlers := yaml.Sequence()
		for i := 0; i < 1+r.Intn(2); i++ {
			d := handlerFor(v.pick(notifyHandlers))
			h := yaml.Mapping().
				Set("name", yaml.ScalarTyped(d.name, yaml.StrTag, yaml.Plain)).
				Set(d.fqcn, d.args)
			handlers.Items = append(handlers.Items, h)
		}
		files = append(files, File{
			Source: "galaxy",
			Path:   base + "handlers/main.yml",
			Kind:   AnsibleTasks,
			Text:   yaml.MarshalDocument(handlers),
		})
	}
	if v.chance(0.7) {
		defaults := yaml.Mapping()
		for i := 0; i < 1+r.Intn(4); i++ {
			defaults.Set(name+"_"+v.pick(varNames), yaml.IntScalar(r.Intn(1000)))
		}
		files = append(files, File{
			Source: "galaxy",
			Path:   base + "defaults/main.yml",
			Kind:   GenericYAML,
			Text:   yaml.MarshalDocument(defaults),
		})
	}
	meta := yaml.Mapping().Set("galaxy_info", yaml.Mapping().
		Set("author", yaml.Scalar(v.pick(users))).
		Set("description", yaml.Scalar("Role to manage "+name)).
		Set("license", yaml.Scalar(v.pick([]string{"MIT", "GPL-3.0", "Apache-2.0"}))).
		Set("min_ansible_version", yaml.ScalarTyped("2.9", yaml.StrTag, yaml.SingleQuoted)).
		Set("platforms", yaml.Sequence(yaml.Mapping().
			Set("name", yaml.Scalar(v.pick(galaxyPlatforms))).
			Set("versions", seqOf("all")))).
		Set("galaxy_tags", seqOf(v.pick(galaxyTags))))
	files = append(files, File{
		Source: "galaxy",
		Path:   base + "meta/main.yml",
		Kind:   GenericYAML,
		Text:   yaml.MarshalDocument(meta),
	})
	return files
}

// GalaxyRoles generates n complete roles (each 2-4 files).
func GalaxyRoles(seed int64, n int) []File {
	r := rand.New(rand.NewSource(seed))
	var files []File
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s%02d", roleNames[r.Intn(len(roleNames))], i)
		files = append(files, Role(r, name, GalaxyStyle)...)
	}
	return files
}
