// Package corpus generates the synthetic training corpora that substitute
// the paper's crawled datasets (GitHub, GitLab, Google BigQuery, Ansible
// Galaxy): Ansible-YAML playbooks and role task files, generic YAML
// (Kubernetes-, CI- and compose-style), natural-language text ("Pile-sim")
// and multi-language source code ("BigQuery-sim" / "BigPython-sim").
//
// All generators are deterministic given a seed. The Ansible generator
// builds tasks from the module catalogue with realistic parameter values and
// natural-language "name" fields whose wording correlates with the task body
// — the property the fine-tuning task (NL -> Ansible) depends on.
package corpus

import "math/rand"

// vocab holds the shared value pools that parameter generators draw from.
type vocab struct {
	r *rand.Rand
}

func (v *vocab) pick(items []string) string { return items[v.r.Intn(len(items))] }

func (v *vocab) chance(p float64) bool { return v.r.Float64() < p }

var packages = []string{
	"nginx", "httpd", "apache2", "postgresql", "mariadb-server", "redis",
	"docker-ce", "git", "curl", "wget", "vim", "htop", "unzip", "jq",
	"python3", "python3-pip", "nodejs", "openjdk-11-jdk", "golang",
	"openssh-server", "fail2ban", "ufw", "firewalld", "chrony", "rsync",
	"haproxy", "keepalived", "memcached", "rabbitmq-server", "prometheus",
	"grafana", "zabbix-agent", "telegraf", "collectd", "logrotate",
}

var services = []string{
	"nginx", "httpd", "postgresql", "mariadb", "redis", "docker", "sshd",
	"firewalld", "chronyd", "haproxy", "memcached", "rabbitmq-server",
	"prometheus", "grafana-server", "crond", "rsyslog", "NetworkManager",
}

var pipPackages = []string{
	"requests", "flask", "django", "ansible", "boto3", "pyyaml", "jinja2",
	"numpy", "pandas", "psycopg2-binary", "gunicorn", "celery",
}

var npmPackages = []string{
	"express", "pm2", "typescript", "webpack", "eslint", "yarn", "lodash",
}

var users = []string{
	"deploy", "app", "www-data", "postgres", "redis", "jenkins", "ansible",
	"backup", "monitor", "devops", "admin", "ci",
}

var groups = []string{
	"wheel", "docker", "sudo", "www-data", "app", "deploy", "adm",
}

var configPaths = []string{
	"/etc/nginx/nginx.conf", "/etc/nginx/conf.d/default.conf",
	"/etc/httpd/conf/httpd.conf", "/etc/postgresql/postgresql.conf",
	"/etc/redis/redis.conf", "/etc/ssh/sshd_config", "/etc/hosts",
	"/etc/fstab", "/etc/sysctl.conf", "/etc/logrotate.d/app",
	"/etc/haproxy/haproxy.cfg", "/etc/prometheus/prometheus.yml",
	"/etc/default/app", "/etc/systemd/system/app.service",
}

var templateSrcs = []string{
	"nginx.conf.j2", "app.conf.j2", "httpd.conf.j2", "redis.conf.j2",
	"haproxy.cfg.j2", "prometheus.yml.j2", "env.j2", "motd.j2",
	"sshd_config.j2", "app.service.j2",
}

var directories = []string{
	"/opt/app", "/var/www/html", "/var/log/app", "/srv/data",
	"/etc/app/conf.d", "/home/deploy/releases", "/var/backups/db",
	"/usr/local/bin", "/var/run/app", "/opt/scripts",
}

var fileModes = []string{"0644", "0640", "0600", "0755", "0750", "0700"}

var repos = []string{
	"https://github.com/example/app.git",
	"https://github.com/example/infra.git",
	"https://git.example.com/ops/deploy.git",
	"https://github.com/acme/webapp.git",
	"https://gitlab.com/example/service.git",
}

var urls = []string{
	"https://releases.example.com/app/latest.tar.gz",
	"https://dl.example.org/tools/cli-linux-amd64",
	"https://artifacts.example.com/pkg/agent.rpm",
	"https://download.example.net/archive/bundle.zip",
	"https://get.example.io/install.sh",
}

var hostPatterns = []string{
	"all", "webservers", "dbservers", "localhost", "app", "workers",
	"loadbalancers", "monitoring", "staging", "production",
}

var domains = []string{
	"example.com", "internal.example.com", "app.example.org",
	"api.example.net", "db01.example.com",
}

var shellCommands = []string{
	"systemctl daemon-reload",
	"update-ca-certificates",
	"ldconfig",
	"sysctl --system",
	"nginx -t",
	"apachectl configtest",
	"certbot renew --quiet",
	"pg_ctl reload",
	"redis-cli ping",
	"/usr/local/bin/backup.sh",
	"make install",
	"pip install --upgrade pip",
	"curl -fsSL https://get.example.io/install.sh | sh",
	"echo never > /sys/kernel/mm/transparent_hugepage/enabled",
}

var cronJobs = []string{
	"/usr/local/bin/backup.sh", "/opt/scripts/cleanup.sh",
	"/usr/bin/certbot renew --quiet", "/opt/scripts/rotate-logs.sh",
	"/usr/local/bin/healthcheck.sh",
}

var sysctlKeys = []string{
	"net.ipv4.ip_forward", "vm.swappiness", "fs.file-max",
	"net.core.somaxconn", "net.ipv4.tcp_tw_reuse", "vm.max_map_count",
}

var firewallServices = []string{"http", "https", "ssh", "postgresql", "redis", "nfs"}

var ports = []string{"80", "443", "22", "5432", "6379", "8080", "9090", "3000", "8443"}

var timezones = []string{"UTC", "Europe/Berlin", "America/New_York", "Asia/Tokyo"}

var dbNames = []string{"appdb", "users", "inventory", "metrics", "orders", "sessions"}

var containerImages = []string{
	"nginx:stable", "redis:7", "postgres:15", "grafana/grafana:latest",
	"prom/prometheus:latest", "registry.example.com/app:v2",
}

var varNames = []string{
	"app_version", "deploy_env", "http_port", "max_connections",
	"enable_tls", "db_host", "cache_size_mb", "worker_count",
	"backup_retention_days", "app_user",
}

var vyosHostnames = []string{"vyos-core", "vyos-edge", "vyos-lab", "vyos-changed"}

var whenConditions = []string{
	"ansible_os_family == 'Debian'",
	"ansible_os_family == 'RedHat'",
	"ansible_distribution == 'Ubuntu'",
	"app_enabled | bool",
	"inventory_hostname in groups['webservers']",
	"result is changed",
	"not skip_install | default(false)",
	"ansible_memtotal_mb > 2048",
}

var tagValues = []string{
	"install", "config", "deploy", "security", "monitoring", "backup",
	"web", "db", "network", "bootstrap",
}

var notifyHandlers = []string{
	"restart nginx", "restart httpd", "reload systemd", "restart app",
	"restart postgresql", "reload firewall", "restart redis",
}

var registerNames = []string{
	"result", "install_result", "cmd_output", "stat_result", "check",
	"service_status", "download_result",
}
