package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"wisdom/internal/yaml"
)

// GenYAML generates one non-Ansible YAML document of a random flavour:
// Kubernetes manifests, CI pipelines, compose files, app configs, Ansible
// inventories, Prometheus alert rules and Helm-style values files — the
// kinds that dominate generic YAML on GitHub and BigQuery.
func GenYAML(r *rand.Rand) string {
	switch r.Intn(7) {
	case 0:
		return k8sManifest(r)
	case 1:
		return ciPipeline(r)
	case 2:
		return composeFile(r)
	case 3:
		return inventoryFile(r)
	case 4:
		return prometheusRules(r)
	case 5:
		return helmValues(r)
	default:
		return appConfig(r)
	}
}

var k8sKinds = []string{"Deployment", "Service", "ConfigMap", "StatefulSet"}
var appNames = []string{"web", "api", "worker", "cache", "frontend", "ingest", "auth", "billing"}
var namespaces = []string{"default", "prod", "staging", "monitoring", "infra"}

func k8sManifest(r *rand.Rand) string {
	v := &vocab{r: r}
	app := v.pick(appNames)
	kind := v.pick(k8sKinds)
	doc := yaml.Mapping()
	meta := yaml.Mapping().
		Set("name", yaml.Scalar(app)).
		Set("namespace", yaml.Scalar(v.pick(namespaces)))

	switch kind {
	case "Service":
		doc.Set("apiVersion", yaml.Scalar("v1"))
		doc.Set("kind", yaml.Scalar(kind))
		doc.Set("metadata", meta)
		port := 8000 + r.Intn(1000)
		spec := yaml.Mapping().
			Set("selector", yaml.Mapping().Set("app", yaml.Scalar(app))).
			Set("ports", yaml.Sequence(yaml.Mapping().
				Set("port", yaml.IntScalar(port)).
				Set("targetPort", yaml.IntScalar(port))))
		doc.Set("spec", spec)
	case "ConfigMap":
		doc.Set("apiVersion", yaml.Scalar("v1"))
		doc.Set("kind", yaml.Scalar(kind))
		doc.Set("metadata", meta)
		data := yaml.Mapping().
			Set("LOG_LEVEL", yaml.ScalarTyped(v.pick([]string{"info", "debug", "warn"}), yaml.StrTag, yaml.Plain)).
			Set("MAX_CONNECTIONS", yaml.ScalarTyped(fmt.Sprint(50+r.Intn(200)), yaml.StrTag, yaml.DoubleQuoted))
		doc.Set("data", data)
	default: // Deployment / StatefulSet
		doc.Set("apiVersion", yaml.Scalar("apps/v1"))
		doc.Set("kind", yaml.Scalar(kind))
		doc.Set("metadata", meta)
		container := yaml.Mapping().
			Set("name", yaml.Scalar(app)).
			Set("image", yaml.Scalar(v.pick(containerImages))).
			Set("ports", yaml.Sequence(yaml.Mapping().Set("containerPort", yaml.IntScalar(8000+r.Intn(1000)))))
		if v.chance(0.5) {
			container.Set("resources", yaml.Mapping().
				Set("limits", yaml.Mapping().
					Set("memory", yaml.Scalar(fmt.Sprintf("%dMi", 128*(1+r.Intn(8))))).
					Set("cpu", yaml.Scalar(fmt.Sprintf("%dm", 100*(1+r.Intn(10)))))))
		}
		spec := yaml.Mapping().
			Set("replicas", yaml.IntScalar(1+r.Intn(5))).
			Set("selector", yaml.Mapping().Set("matchLabels", yaml.Mapping().Set("app", yaml.Scalar(app)))).
			Set("template", yaml.Mapping().
				Set("metadata", yaml.Mapping().Set("labels", yaml.Mapping().Set("app", yaml.Scalar(app)))).
				Set("spec", yaml.Mapping().Set("containers", yaml.Sequence(container))))
		doc.Set("spec", spec)
	}
	return yaml.MarshalDocument(doc)
}

var ciJobs = []string{"build", "test", "lint", "deploy", "release", "docs"}
var ciImages = []string{"golang:1.22", "python:3.11", "node:20", "ubuntu:22.04", "alpine:3.19"}

func ciPipeline(r *rand.Rand) string {
	v := &vocab{r: r}
	doc := yaml.Mapping()
	doc.Set("stages", seqOf("build", "test", "deploy"))
	n := 2 + r.Intn(3)
	used := map[string]bool{}
	for i := 0; i < n; i++ {
		job := v.pick(ciJobs)
		if used[job] {
			continue
		}
		used[job] = true
		spec := yaml.Mapping().
			Set("stage", yaml.Scalar(stageOf(job))).
			Set("image", yaml.Scalar(v.pick(ciImages))).
			Set("script", seqOf(scriptFor(v, job)...))
		if v.chance(0.3) {
			spec.Set("only", seqOf("main"))
		}
		doc.Set(job, spec)
	}
	return yaml.Marshal(doc)
}

func stageOf(job string) string {
	switch job {
	case "deploy", "release":
		return "deploy"
	case "test", "lint":
		return "test"
	}
	return "build"
}

func scriptFor(v *vocab, job string) []string {
	switch job {
	case "build":
		return []string{"make build"}
	case "test":
		return []string{"make test", "make coverage"}
	case "lint":
		return []string{"make lint"}
	case "deploy":
		return []string{"./scripts/deploy.sh " + v.pick(namespaces)}
	case "release":
		return []string{"make release"}
	default:
		return []string{"make docs"}
	}
}

func composeFile(r *rand.Rand) string {
	v := &vocab{r: r}
	doc := yaml.Mapping()
	doc.Set("version", yaml.ScalarTyped("3.8", yaml.StrTag, yaml.SingleQuoted))
	servicesNode := yaml.Mapping()
	n := 1 + r.Intn(3)
	used := map[string]bool{}
	for i := 0; i < n; i++ {
		name := v.pick(appNames)
		if used[name] {
			continue
		}
		used[name] = true
		svc := yaml.Mapping().
			Set("image", yaml.Scalar(v.pick(containerImages))).
			Set("restart", yaml.Scalar("unless-stopped"))
		if v.chance(0.6) {
			p := v.pick(ports)
			svc.Set("ports", seqOf(p+":"+p))
		}
		if v.chance(0.4) {
			env := yaml.Mapping().Set("TZ", yaml.Scalar(v.pick(timezones)))
			svc.Set("environment", env)
		}
		servicesNode.Set(name, svc)
	}
	doc.Set("services", servicesNode)
	return yaml.Marshal(doc)
}

// inventoryFile generates an Ansible inventory in YAML form — generic YAML
// from the pipeline's point of view (inventories hold no tasks), yet full of
// the hostnames and group names that surround real Ansible work.
func inventoryFile(r *rand.Rand) string {
	v := &vocab{r: r}
	hostsFor := func(prefix string, n int) *yaml.Node {
		hosts := yaml.Mapping()
		for i := 1; i <= n; i++ {
			h := yaml.Mapping()
			h.Set("ansible_host", yaml.Scalar(fmt.Sprintf("10.0.%d.%d", r.Intn(16), 10+i)))
			if v.chance(0.3) {
				h.Set("ansible_user", yaml.Scalar(v.pick(users)))
			}
			hosts.Set(fmt.Sprintf("%s%02d", prefix, i), h)
		}
		return hosts
	}
	groupsNode := yaml.Mapping()
	used := map[string]bool{}
	for i := 0; i < 2+r.Intn(2); i++ {
		g := v.pick([]string{"webservers", "dbservers", "workers", "monitoring", "loadbalancers"})
		if used[g] {
			continue
		}
		used[g] = true
		group := yaml.Mapping().Set("hosts", hostsFor(g[:3], 1+r.Intn(3)))
		if v.chance(0.4) {
			group.Set("vars", yaml.Mapping().Set(v.pick(varNames), yaml.IntScalar(r.Intn(100))))
		}
		groupsNode.Set(g, group)
	}
	doc := yaml.Mapping().Set("all", yaml.Mapping().Set("children", groupsNode))
	return yaml.Marshal(doc)
}

// prometheusRules generates a Prometheus alerting-rules file.
func prometheusRules(r *rand.Rand) string {
	v := &vocab{r: r}
	alerts := []struct{ name, expr, severity string }{
		{"HighCPU", "avg(rate(node_cpu_seconds_total[5m])) > 0.9", "warning"},
		{"DiskFull", "node_filesystem_avail_bytes / node_filesystem_size_bytes < 0.1", "critical"},
		{"ServiceDown", "up == 0", "critical"},
		{"HighMemory", "node_memory_MemAvailable_bytes < 268435456", "warning"},
		{"SlowRequests", "histogram_quantile(0.99, http_request_duration_seconds_bucket) > 2", "warning"},
	}
	rules := yaml.Sequence()
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		a := alerts[r.Intn(len(alerts))]
		rule := yaml.Mapping().
			Set("alert", yaml.Scalar(a.name)).
			Set("expr", yaml.Scalar(a.expr)).
			Set("for", yaml.Scalar(fmt.Sprintf("%dm", 1+r.Intn(15)))).
			Set("labels", yaml.Mapping().Set("severity", yaml.Scalar(a.severity)))
		if v.chance(0.5) {
			rule.Set("annotations", yaml.Mapping().
				Set("summary", yaml.Scalar(a.name+" on {{ $labels.instance }}")))
		}
		rules.Items = append(rules.Items, rule)
	}
	group := yaml.Mapping().
		Set("name", yaml.Scalar(v.pick(appNames)+".rules")).
		Set("rules", rules)
	doc := yaml.Mapping().Set("groups", yaml.Sequence(group))
	return yaml.Marshal(doc)
}

// helmValues generates a Helm-chart-style values file.
func helmValues(r *rand.Rand) string {
	v := &vocab{r: r}
	doc := yaml.Mapping()
	doc.Set("replicaCount", yaml.IntScalar(1+r.Intn(5)))
	img := v.pick(containerImages)
	var repo, tag string
	if i := strings.IndexByte(img, ':'); i >= 0 {
		repo, tag = img[:i], img[i+1:]
	} else {
		repo, tag = img, "latest"
	}
	doc.Set("image", yaml.Mapping().
		Set("repository", yaml.Scalar(repo)).
		Set("tag", yaml.Scalar(tag)).
		Set("pullPolicy", yaml.Scalar(v.pick([]string{"IfNotPresent", "Always"}))))
	if v.chance(0.6) {
		doc.Set("service", yaml.Mapping().
			Set("type", yaml.Scalar(v.pick([]string{"ClusterIP", "NodePort", "LoadBalancer"}))).
			Set("port", yaml.IntScalar(8000+r.Intn(1000))))
	}
	if v.chance(0.5) {
		doc.Set("resources", yaml.Mapping().
			Set("requests", yaml.Mapping().
				Set("cpu", yaml.Scalar(fmt.Sprintf("%dm", 100*(1+r.Intn(5))))).
				Set("memory", yaml.Scalar(fmt.Sprintf("%dMi", 64*(1+r.Intn(8)))))))
	}
	if v.chance(0.4) {
		doc.Set("ingress", yaml.Mapping().
			Set("enabled", yaml.BoolScalar(v.chance(0.7))).
			Set("host", yaml.Scalar(v.pick(domains))))
	}
	doc.Set("nodeSelector", yaml.Mapping())
	return yaml.Marshal(doc)
}

func appConfig(r *rand.Rand) string {
	v := &vocab{r: r}
	doc := yaml.Mapping()
	doc.Set("server", yaml.Mapping().
		Set("host", yaml.Scalar("0.0.0.0")).
		Set("port", yaml.IntScalar(8000+r.Intn(1000))).
		Set("workers", yaml.IntScalar(1+r.Intn(8))))
	doc.Set("logging", yaml.Mapping().
		Set("level", yaml.Scalar(v.pick([]string{"info", "debug", "warning"}))).
		Set("file", yaml.Scalar("/var/log/app/app.log")))
	if v.chance(0.5) {
		doc.Set("database", yaml.Mapping().
			Set("host", yaml.Scalar(v.pick(domains))).
			Set("name", yaml.Scalar(v.pick(dbNames))).
			Set("pool_size", yaml.IntScalar(5+r.Intn(20))))
	}
	if v.chance(0.3) {
		doc.Set("features", seqOf("metrics", "tracing"))
	}
	return yaml.MarshalDocument(doc)
}
