package corpus

import (
	"math/rand"
	"strings"
	"testing"

	"wisdom/internal/ansible"
	"wisdom/internal/yaml"
)

func TestRoleTaskFileParsesAndValidates(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	v := ansible.NewValidator()
	for i := 0; i < 100; i++ {
		src := RoleTaskFile(r, GalaxyStyle)
		n, err := yaml.Parse(src)
		if err != nil {
			t.Fatalf("generated task file does not parse: %v\n%s", err, src)
		}
		if !ansible.LooksLikeTaskList(n) {
			t.Fatalf("not a task list:\n%s", src)
		}
		// Galaxy-style output must be schema-clean: it is the vetted corpus.
		if errs := v.ValidateTaskList(n); len(errs) != 0 {
			t.Fatalf("galaxy-style task file fails schema: %v\n%s", errs, src)
		}
	}
}

func TestPlaybookParsesAndValidates(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	v := ansible.NewValidator()
	for i := 0; i < 100; i++ {
		src := Playbook(r, GalaxyStyle)
		n, err := yaml.Parse(src)
		if err != nil {
			t.Fatalf("generated playbook does not parse: %v\n%s", err, src)
		}
		if !ansible.LooksLikePlaybook(n) {
			t.Fatalf("not a playbook:\n%s", src)
		}
		if errs := v.ValidatePlaybook(n); len(errs) != 0 {
			t.Fatalf("galaxy-style playbook fails schema: %v\n%s", errs, src)
		}
	}
}

func TestCrawlStyleStillParses(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		src := RoleTaskFile(r, CrawlStyle)
		if _, err := yaml.Parse(src); err != nil {
			t.Fatalf("crawl-style file does not parse: %v\n%s", err, src)
		}
	}
}

func TestCrawlStyleContainsLegacyForms(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	legacy, short := 0, 0
	for i := 0; i < 200; i++ {
		src := RoleTaskFile(r, CrawlStyle)
		if strings.Contains(src, "state=") || strings.Contains(src, "name=") {
			legacy++
		}
		if strings.Contains(src, "\n  apt:") || strings.Contains(src, "\n  service:") ||
			strings.Contains(src, "\n  copy:") || strings.Contains(src, "\n  file:") {
			short++
		}
	}
	if legacy == 0 {
		t.Error("crawl style never produced legacy k=v arguments")
	}
	if short == 0 {
		t.Error("crawl style never produced short module names")
	}
}

func TestGalaxyStyleIsFullyQualified(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		src := RoleTaskFile(r, GalaxyStyle)
		if strings.Contains(src, "state=") {
			t.Fatalf("galaxy style produced legacy k=v:\n%s", src)
		}
	}
}

func TestTasksHaveNames(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		src := RoleTaskFile(r, GalaxyStyle)
		n, err := yaml.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range n.Items {
			name := task.Get("name")
			if name == nil || name.Value == "" {
				t.Fatalf("task without name:\n%s", src)
			}
			// The name must be the FIRST key: the prompt formulation
			// depends on it.
			if task.Keys[0].Value != "name" {
				t.Fatalf("name is not the first key:\n%s", src)
			}
		}
	}
}

func TestGenericYAMLParses(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		src := GenYAML(r)
		if _, err := yaml.Parse(src); err != nil {
			t.Fatalf("generic YAML does not parse: %v\n%s", err, src)
		}
	}
}

func TestGenericYAMLIsNotAnsible(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		src := GenYAML(r)
		n, err := yaml.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if ansible.LooksLikePlaybook(n) || ansible.LooksLikeTaskList(n) {
			t.Fatalf("generic YAML looks like Ansible:\n%s", src)
		}
	}
}

func TestNaturalTextShape(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	text := NaturalText(r)
	if !strings.HasSuffix(text, "\n") || !strings.Contains(text, ". ") && strings.Count(text, ".") < 2 {
		t.Errorf("odd prose: %q", text)
	}
	if strings.Contains(text, ":") {
		t.Errorf("prose contains YAML-ish colon usage: %q", text)
	}
}

func TestCodeLanguages(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	markers := map[Language]string{
		LangPython:     "def ",
		LangGo:         "func ",
		LangJava:       "public ",
		LangJavaScript: "function ",
		LangCpp:        "#include",
		LangC:          "int ",
	}
	for lang, marker := range markers {
		code := Code(r, lang)
		if !strings.Contains(code, marker) {
			t.Errorf("%s code lacks marker %q:\n%s", lang.Name(), marker, code)
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a := Galaxy(42, 20)
	b := Galaxy(42, 20)
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i].Text != b[i].Text || a[i].Path != b[i].Path {
			t.Fatalf("file %d differs across same-seed runs", i)
		}
	}
	c := Galaxy(43, 20)
	same := 0
	for i := range a {
		if a[i].Text == c[i].Text {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical corpus")
	}
}

func TestCorpusContainsDuplicates(t *testing.T) {
	files := GitHubGBQAnsible(11, 300)
	seen := map[string]bool{}
	dups := 0
	for _, f := range files {
		if seen[f.Text] {
			dups++
		}
		seen[f.Text] = true
	}
	if dups == 0 {
		t.Error("crawl corpus contains no duplicates; dedup stage untestable")
	}
}

func TestPileSimComposition(t *testing.T) {
	files := PileSim(12, 1000)
	var nl, yamlish, ans int
	for _, f := range files {
		switch {
		case f.Kind == NaturalTextKind:
			nl++
		case f.IsAnsible():
			ans++
		case f.Kind == GenericYAML:
			yamlish++
		}
	}
	if nl < 800 {
		t.Errorf("pile-sim NL fraction too low: %d/1000", nl)
	}
	if ans == 0 || yamlish == 0 {
		t.Errorf("pile-sim lacks YAML admixture: ansible=%d generic=%d", ans, yamlish)
	}
	if ans > yamlish {
		t.Errorf("pile-sim has more Ansible (%d) than generic YAML (%d)", ans, yamlish)
	}
}

func TestBigQuerySimComposition(t *testing.T) {
	files := BigQuerySim(13, 1000)
	langs := map[string]int{}
	var code int
	for _, f := range files {
		if f.Kind == SourceCode {
			code++
			i := strings.LastIndexByte(f.Path, '.')
			langs[f.Path[i+1:]]++
		}
	}
	if code < 700 {
		t.Errorf("bigquery-sim code fraction too low: %d/1000", code)
	}
	if len(langs) != 6 {
		t.Errorf("bigquery-sim languages = %v, want 6", langs)
	}
}

func TestBigPythonOnlyPython(t *testing.T) {
	for _, f := range BigPythonSim(14, 50) {
		if f.Kind != SourceCode || !strings.HasSuffix(f.Path, ".py") {
			t.Fatalf("non-python file in bigpython-sim: %+v", f.Path)
		}
	}
}

func TestScaledCounts(t *testing.T) {
	c := ScaledCounts(100)
	if c.Galaxy != 1120 || c.GitLab != 640 || c.GitHubAnsible != 11000 || c.GitHubGeneric != 22000 {
		t.Errorf("counts = %+v", c)
	}
	// Ratios from Table 1 must be preserved.
	if c.GitHubGeneric != 2*c.GitHubAnsible {
		t.Error("generic:ansible ratio broken")
	}
	z := ScaledCounts(0)
	if z.Galaxy != 112_000 {
		t.Errorf("factor<1 not clamped: %+v", z)
	}
}

func TestPlaybookTaskCountSkew(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	small, large := 0, 0
	for i := 0; i < 200; i++ {
		src := Playbook(r, GalaxyStyle)
		n, err := yaml.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		tasks := n.Items[0].Get("tasks")
		if tasks.Len() <= 2 {
			small++
		} else {
			large++
		}
	}
	if small < large*2 {
		t.Errorf("playbooks not skewed small: %d small vs %d large", small, large)
	}
}

func TestHandlersMatchNotify(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	found := false
	for i := 0; i < 300 && !found; i++ {
		src := Playbook(r, GalaxyStyle)
		n, err := yaml.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, play := range n.Items {
			handlers := play.Get("handlers")
			if handlers == nil {
				continue
			}
			found = true
			// Every notify must have a matching handler name.
			names := map[string]bool{}
			for _, h := range handlers.Items {
				names[h.Get("name").Value] = true
			}
			for _, task := range play.Get("tasks").Items {
				if nt := task.Get("notify"); nt != nil && nt.Kind == yaml.ScalarNode {
					if !names[nt.Value] {
						t.Fatalf("notify %q has no handler in:\n%s", nt.Value, src)
					}
				}
			}
		}
	}
	if !found {
		t.Error("no playbook with handlers generated in 300 tries")
	}
}

func TestRoleStructure(t *testing.T) {
	files := GalaxyRoles(17, 30)
	var tasks, handlers, defaults, meta int
	v := ansible.NewValidator()
	for _, f := range files {
		n, err := yaml.Parse(f.Text)
		if err != nil {
			t.Fatalf("%s does not parse: %v", f.Path, err)
		}
		switch {
		case strings.Contains(f.Path, "/tasks/"):
			tasks++
			if f.Kind != AnsibleTasks {
				t.Errorf("%s kind = %v", f.Path, f.Kind)
			}
			if errs := v.ValidateTaskList(n); len(errs) != 0 {
				t.Errorf("%s fails schema: %v", f.Path, errs)
			}
		case strings.Contains(f.Path, "/handlers/"):
			handlers++
			if errs := v.ValidateTaskList(n); len(errs) != 0 {
				t.Errorf("%s fails schema: %v", f.Path, errs)
			}
		case strings.Contains(f.Path, "/defaults/"):
			defaults++
			if f.Kind != GenericYAML || n.Kind != yaml.MappingNode {
				t.Errorf("%s: kind %v node %v", f.Path, f.Kind, n.Kind)
			}
		case strings.Contains(f.Path, "/meta/"):
			meta++
			if n.Get("galaxy_info") == nil {
				t.Errorf("%s lacks galaxy_info", f.Path)
			}
		default:
			t.Errorf("unexpected path %s", f.Path)
		}
	}
	if tasks != 30 || meta != 30 {
		t.Errorf("tasks=%d meta=%d, want 30 each", tasks, meta)
	}
	if handlers == 0 || defaults == 0 {
		t.Errorf("handlers=%d defaults=%d, want > 0", handlers, defaults)
	}
}
