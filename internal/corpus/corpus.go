package corpus

import (
	"fmt"
	"math/rand"
)

// Kind classifies the content of one generated file.
type Kind int

const (
	// AnsibleTasks is a role-style task list file.
	AnsibleTasks Kind = iota
	// AnsiblePlaybook is a playbook file.
	AnsiblePlaybook
	// GenericYAML is non-Ansible YAML.
	GenericYAML
	// NaturalTextKind is natural-language prose.
	NaturalTextKind
	// SourceCode is a source snippet in one of six languages.
	SourceCode
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case AnsibleTasks:
		return "ansible-tasks"
	case AnsiblePlaybook:
		return "ansible-playbook"
	case GenericYAML:
		return "generic-yaml"
	case NaturalTextKind:
		return "natural-text"
	case SourceCode:
		return "source-code"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// File is one generated corpus file with its crawl metadata.
type File struct {
	// Source names the simulated origin: galaxy, gitlab, github+gbq, pile,
	// bigquery, bigpython.
	Source string
	// Path is a synthetic repository-relative path.
	Path string
	// Kind classifies the content.
	Kind Kind
	// Text is the file content.
	Text string
}

// IsAnsible reports whether the file holds Ansible-YAML.
func (f File) IsAnsible() bool { return f.Kind == AnsibleTasks || f.Kind == AnsiblePlaybook }

// IsYAML reports whether the file holds YAML of any kind.
func (f File) IsYAML() bool { return f.IsAnsible() || f.Kind == GenericYAML }

// dupRate is the fraction of crawled files that are exact duplicates of an
// earlier file, exercising the pipeline's dedup stage (the real crawl
// contains heavy duplication; a low rate keeps generation cheap).
const dupRate = 0.04

// ansibleFiles generates n Ansible files in the given style.
func ansibleFiles(r *rand.Rand, source string, n int, st Style, pbRatio, dup float64) []File {
	files := make([]File, 0, n)
	for i := 0; i < n; i++ {
		if dup > 0 && len(files) > 4 && r.Float64() < dup {
			// Exact duplicate of an earlier file under a new path.
			orig := files[r.Intn(len(files))]
			files = append(files, File{Source: source, Path: dupPath(orig.Path, i), Kind: orig.Kind, Text: orig.Text})
			continue
		}
		text, isPB := AnsibleFile(r, st, pbRatio)
		kind, path := AnsibleTasks, fmt.Sprintf("roles/role%03d/tasks/main.yml", i)
		if isPB {
			kind, path = AnsiblePlaybook, fmt.Sprintf("playbooks/site%03d.yml", i)
		}
		files = append(files, File{Source: source, Path: path, Kind: kind, Text: text})
	}
	return files
}

func dupPath(p string, i int) string { return fmt.Sprintf("mirror%03d/%s", i, p) }

// Galaxy generates the fine-tuning corpus: vetted, standardised Ansible
// files in the Galaxy style (FQCN module names, no legacy forms). Roughly a
// quarter of the files come from complete roles — tasks plus the handlers,
// defaults and meta files the extraction stage must filter out, as the
// paper describes of real Galaxy content.
func Galaxy(seed int64, n int) []File {
	r := rand.New(rand.NewSource(seed))
	roleFiles := GalaxyRoles(seed+1, n/10)
	if len(roleFiles) > n {
		roleFiles = roleFiles[:n]
	}
	rest := ansibleFiles(r, "galaxy", n-len(roleFiles), GalaxyStyle, 0.2, dupRate)
	return append(roleFiles, rest...)
}

// GitLabAnsible generates the GitLab pre-training slice: crawl-style
// Ansible.
func GitLabAnsible(seed int64, n int) []File {
	r := rand.New(rand.NewSource(seed))
	return ansibleFiles(r, "gitlab", n, CrawlStyle, 0.2, dupRate)
}

// GitHubGBQAnsible generates the GitHub+BigQuery Ansible pre-training slice.
func GitHubGBQAnsible(seed int64, n int) []File {
	r := rand.New(rand.NewSource(seed))
	return ansibleFiles(r, "github+gbq", n, CrawlStyle, 0.2, dupRate)
}

// GitHubGBQGeneric generates the GitHub+BigQuery generic-YAML slice.
func GitHubGBQGeneric(seed int64, n int) []File {
	r := rand.New(rand.NewSource(seed))
	files := make([]File, 0, n)
	for i := 0; i < n; i++ {
		files = append(files, File{
			Source: "github+gbq",
			Path:   fmt.Sprintf("configs/cfg%04d.yaml", i),
			Kind:   GenericYAML,
			Text:   GenYAML(r),
		})
	}
	return files
}

// PileSim generates the natural-language-dominated pre-training corpus that
// stands in for the Pile: mostly prose, with the small YAML admixture the
// paper reports (the Pile contains ~25K Ansible and ~600K generic YAML
// files among hundreds of millions of documents).
func PileSim(seed int64, n int) []File {
	r := rand.New(rand.NewSource(seed))
	files := make([]File, 0, n)
	for i := 0; i < n; i++ {
		roll := r.Float64()
		var f File
		switch {
		case roll < 0.90:
			f = File{Source: "pile", Path: fmt.Sprintf("text/doc%05d.txt", i), Kind: NaturalTextKind, Text: NaturalText(r)}
		case roll < 0.97:
			f = File{Source: "pile", Path: fmt.Sprintf("text/cfg%05d.yaml", i), Kind: GenericYAML, Text: GenYAML(r)}
		default:
			text, isPB := AnsibleFile(r, CrawlStyle, 0.2)
			kind := AnsibleTasks
			if isPB {
				kind = AnsiblePlaybook
			}
			f = File{Source: "pile", Path: fmt.Sprintf("text/ans%05d.yml", i), Kind: kind, Text: text}
		}
		files = append(files, f)
	}
	return files
}

// BigQuerySim generates the multi-language code corpus standing in for the
// BigQuery slice of CodeGen-Multi's training data: mostly source code, with
// the structured-config admixture real code repositories carry.
func BigQuerySim(seed int64, n int) []File {
	r := rand.New(rand.NewSource(seed))
	files := make([]File, 0, n)
	for i := 0; i < n; i++ {
		roll := r.Float64()
		var f File
		switch {
		case roll < 0.80:
			lang := Language(r.Intn(6))
			f = File{Source: "bigquery", Path: fmt.Sprintf("src/f%05d.%s", i, lang.Name()), Kind: SourceCode, Text: Code(r, lang)}
		case roll < 0.95:
			f = File{Source: "bigquery", Path: fmt.Sprintf("src/cfg%05d.yaml", i), Kind: GenericYAML, Text: GenYAML(r)}
		default:
			text, isPB := AnsibleFile(r, CrawlStyle, 0.2)
			kind := AnsibleTasks
			if isPB {
				kind = AnsiblePlaybook
			}
			f = File{Source: "bigquery", Path: fmt.Sprintf("src/ans%05d.yml", i), Kind: kind, Text: text}
		}
		files = append(files, f)
	}
	return files
}

// BigPythonSim generates the Python-only corpus standing in for BigPython.
func BigPythonSim(seed int64, n int) []File {
	r := rand.New(rand.NewSource(seed))
	files := make([]File, 0, n)
	for i := 0; i < n; i++ {
		files = append(files, File{
			Source: "bigpython",
			Path:   fmt.Sprintf("py/f%05d.py", i),
			Kind:   SourceCode,
			Text:   Code(r, LangPython),
		})
	}
	return files
}

// SourceCounts mirrors Table 1 of the paper: file counts per data source at
// the reproduction's scale factor.
type SourceCounts struct {
	Galaxy        int // Ansible, fine-tuning
	GitLab        int // Ansible, pre-training
	GitHubAnsible int // Ansible, pre-training
	GitHubGeneric int // generic YAML, pre-training
}

// ScaledCounts returns the paper's Table 1 file counts divided by factor
// (e.g. factor 100 turns 112K Galaxy files into 1120).
func ScaledCounts(factor int) SourceCounts {
	if factor < 1 {
		factor = 1
	}
	return SourceCounts{
		Galaxy:        112_000 / factor,
		GitLab:        64_000 / factor,
		GitHubAnsible: 1_100_000 / factor,
		GitHubGeneric: 2_200_000 / factor,
	}
}
