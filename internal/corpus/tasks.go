package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"wisdom/internal/yaml"
)

// taskDraft is a generated task before style rendering.
type taskDraft struct {
	name string
	fqcn string
	args *yaml.Node
	// handler marks drafts that make sense as handlers (service restarts).
	handler bool
}

// recipe generates one kind of task.
type recipe struct {
	weight int
	gen    func(v *vocab) taskDraft
}

func m(pairs ...any) *yaml.Node {
	n := yaml.Mapping()
	for i := 0; i+1 < len(pairs); i += 2 {
		key := pairs[i].(string)
		switch val := pairs[i+1].(type) {
		case string:
			n.Set(key, yaml.ScalarTyped(val, yaml.StrTag, yaml.Plain))
		case int:
			n.Set(key, yaml.IntScalar(val))
		case bool:
			n.Set(key, yaml.BoolScalar(val))
		case *yaml.Node:
			n.Set(key, val)
		}
	}
	return n
}

func seqOf(items ...string) *yaml.Node {
	s := yaml.Sequence()
	for _, it := range items {
		s.Items = append(s.Items, yaml.ScalarTyped(it, yaml.StrTag, yaml.Plain))
	}
	return s
}

// recipes is the weighted catalogue of task generators. Weights roughly
// follow the module frequencies of public Ansible content: package
// management, files, services and commands dominate.
var recipes = []recipe{
	{8, func(v *vocab) taskDraft { // apt
		pkg := v.pick(packages)
		state := v.pick([]string{"present", "present", "latest", "absent"})
		args := m("name", pkg, "state", state)
		if v.chance(0.5) {
			args.Set("update_cache", yaml.BoolScalar(true))
		}
		return taskDraft{name: pkgName(v, pkg, state), fqcn: "ansible.builtin.apt", args: args}
	}},
	{6, func(v *vocab) taskDraft { // yum
		pkg := v.pick(packages)
		state := v.pick([]string{"present", "latest", "absent"})
		return taskDraft{name: pkgName(v, pkg, state), fqcn: "ansible.builtin.yum",
			args: m("name", pkg, "state", state)}
	}},
	{4, func(v *vocab) taskDraft { // dnf
		pkg := v.pick(packages)
		state := v.pick([]string{"present", "latest"})
		return taskDraft{name: pkgName(v, pkg, state), fqcn: "ansible.builtin.dnf",
			args: m("name", pkg, "state", state)}
	}},
	{4, func(v *vocab) taskDraft { // package (generic)
		pkg := v.pick(packages)
		state := v.pick([]string{"present", "latest"})
		return taskDraft{name: pkgName(v, pkg, state), fqcn: "ansible.builtin.package",
			args: m("name", pkg, "state", state)}
	}},
	{3, func(v *vocab) taskDraft { // pip
		pkg := v.pick(pipPackages)
		return taskDraft{name: fmt.Sprintf("Install %s python package", pkg), fqcn: "ansible.builtin.pip",
			args: m("name", pkg, "state", "present")}
	}},
	{8, func(v *vocab) taskDraft { // service
		svc := v.pick(services)
		state := v.pick([]string{"started", "started", "restarted", "stopped", "reloaded"})
		args := m("name", svc, "state", state)
		if state == "started" && v.chance(0.7) {
			args.Set("enabled", yaml.BoolScalar(true))
		}
		return taskDraft{name: svcName(v, svc, state), fqcn: "ansible.builtin.service",
			args: args, handler: state == "restarted" || state == "reloaded"}
	}},
	{5, func(v *vocab) taskDraft { // systemd
		svc := v.pick(services)
		state := v.pick([]string{"started", "restarted"})
		args := m("name", svc, "state", state)
		if v.chance(0.5) {
			args.Set("daemon_reload", yaml.BoolScalar(true))
		}
		if v.chance(0.5) {
			args.Set("enabled", yaml.BoolScalar(true))
		}
		return taskDraft{name: svcName(v, svc, state), fqcn: "ansible.builtin.systemd",
			args: args, handler: state == "restarted"}
	}},
	{7, func(v *vocab) taskDraft { // copy
		dest := v.pick(configPaths)
		args := m("src", strings.TrimSuffix(v.pick(templateSrcs), ".j2"), "dest", dest,
			"owner", "root", "group", "root", "mode", v.pick(fileModes))
		return taskDraft{name: fmt.Sprintf("Copy %s", shortPath(dest)), fqcn: "ansible.builtin.copy", args: args}
	}},
	{7, func(v *vocab) taskDraft { // template
		src := v.pick(templateSrcs)
		dest := v.pick(configPaths)
		args := m("src", src, "dest", dest, "mode", v.pick(fileModes))
		if v.chance(0.3) {
			args.Set("backup", yaml.BoolScalar(true))
		}
		return taskDraft{name: fmt.Sprintf("Deploy %s from template", shortPath(dest)),
			fqcn: "ansible.builtin.template", args: args}
	}},
	{7, func(v *vocab) taskDraft { // file
		path := v.pick(directories)
		state := v.pick([]string{"directory", "directory", "absent", "touch"})
		args := m("path", path, "state", state)
		if state == "directory" {
			args.Set("owner", yaml.Scalar(v.pick(users)))
			args.Set("mode", yaml.ScalarTyped(v.pick(fileModes), yaml.StrTag, yaml.SingleQuoted))
		}
		var name string
		switch state {
		case "directory":
			name = fmt.Sprintf("Create %s directory", path)
		case "absent":
			name = fmt.Sprintf("Remove %s", path)
		default:
			name = fmt.Sprintf("Touch %s", path)
		}
		return taskDraft{name: name, fqcn: "ansible.builtin.file", args: args}
	}},
	{5, func(v *vocab) taskDraft { // lineinfile
		path := v.pick(configPaths)
		key := v.pick([]string{"PermitRootLogin no", "MaxClients 256", "listen_addresses = '*'", "maxmemory 512mb"})
		args := m("path", path, "line", key, "regexp", "^"+strings.SplitN(key, " ", 2)[0])
		return taskDraft{name: fmt.Sprintf("Set %s in %s", strings.SplitN(key, " ", 2)[0], shortPath(path)),
			fqcn: "ansible.builtin.lineinfile", args: args}
	}},
	{6, func(v *vocab) taskDraft { // command / shell
		cmd := v.pick(shellCommands)
		fqcn := "ansible.builtin.command"
		if strings.ContainsAny(cmd, "|>&") {
			fqcn = "ansible.builtin.shell"
		} else if v.chance(0.4) {
			fqcn = "ansible.builtin.shell"
		}
		return taskDraft{name: fmt.Sprintf("Run %s", strings.Fields(cmd)[0]), fqcn: fqcn,
			args: yaml.ScalarTyped(cmd, yaml.StrTag, yaml.Plain)}
	}},
	{4, func(v *vocab) taskDraft { // user
		u := v.pick(users)
		args := m("name", u, "state", "present", "shell", "/bin/bash")
		if v.chance(0.5) {
			args.Set("groups", seqOf(v.pick(groups)))
			args.Set("append", yaml.BoolScalar(true))
		}
		return taskDraft{name: fmt.Sprintf("Create %s user", u), fqcn: "ansible.builtin.user", args: args}
	}},
	{2, func(v *vocab) taskDraft { // group
		g := v.pick(groups)
		return taskDraft{name: fmt.Sprintf("Ensure %s group exists", g), fqcn: "ansible.builtin.group",
			args: m("name", g, "state", "present")}
	}},
	{4, func(v *vocab) taskDraft { // git
		repo := v.pick(repos)
		dest := v.pick(directories)
		args := m("repo", repo, "dest", dest, "version", v.pick([]string{"main", "master", "v1.2.0", "stable"}))
		return taskDraft{name: fmt.Sprintf("Clone %s", repoName(repo)), fqcn: "ansible.builtin.git", args: args}
	}},
	{4, func(v *vocab) taskDraft { // get_url
		url := v.pick(urls)
		dest := v.pick(directories)
		args := m("url", url, "dest", dest, "mode", v.pick(fileModes))
		return taskDraft{name: fmt.Sprintf("Download %s", urlName(url)), fqcn: "ansible.builtin.get_url", args: args}
	}},
	{2, func(v *vocab) taskDraft { // unarchive
		url := v.pick(urls)
		dest := v.pick(directories)
		args := m("src", url, "dest", dest, "remote_src", true)
		return taskDraft{name: fmt.Sprintf("Extract %s to %s", urlName(url), dest),
			fqcn: "ansible.builtin.unarchive", args: args}
	}},
	{3, func(v *vocab) taskDraft { // cron
		job := v.pick(cronJobs)
		args := m("name", fmt.Sprintf("run %s", shortPath(job)), "job", job,
			"minute", fmt.Sprint(v.r.Intn(60)), "hour", fmt.Sprint(v.r.Intn(24)), "user", "root")
		return taskDraft{name: fmt.Sprintf("Schedule %s cron job", shortPath(job)),
			fqcn: "ansible.builtin.cron", args: args}
	}},
	{3, func(v *vocab) taskDraft { // sysctl
		key := v.pick(sysctlKeys)
		val := fmt.Sprint(v.r.Intn(3))
		args := m("name", key, "value", val, "sysctl_set", true)
		return taskDraft{name: fmt.Sprintf("Set %s kernel parameter", key), fqcn: "ansible.posix.sysctl", args: args}
	}},
	{3, func(v *vocab) taskDraft { // firewalld
		svc := v.pick(firewallServices)
		args := m("service", svc, "permanent", true, "state", "enabled", "immediate", true)
		return taskDraft{name: fmt.Sprintf("Allow %s through the firewall", svc),
			fqcn: "ansible.posix.firewalld", args: args}
	}},
	{2, func(v *vocab) taskDraft { // ufw
		port := v.pick(ports)
		args := m("rule", "allow", "port", port, "proto", "tcp")
		return taskDraft{name: fmt.Sprintf("Open port %s with ufw", port), fqcn: "community.general.ufw", args: args}
	}},
	{2, func(v *vocab) taskDraft { // timezone
		tz := v.pick(timezones)
		return taskDraft{name: fmt.Sprintf("Set timezone to %s", tz), fqcn: "community.general.timezone",
			args: m("name", tz)}
	}},
	{2, func(v *vocab) taskDraft { // hostname
		h := v.pick(domains)
		return taskDraft{name: fmt.Sprintf("Set hostname to %s", h), fqcn: "ansible.builtin.hostname",
			args: m("name", h)}
	}},
	{3, func(v *vocab) taskDraft { // debug
		msg := v.pick([]string{"Deployment complete", "Starting configuration", "Database ready",
			"Service healthy", "Backup finished"})
		return taskDraft{name: fmt.Sprintf("Print status message"), fqcn: "ansible.builtin.debug",
			args: m("msg", msg)}
	}},
	{3, func(v *vocab) taskDraft { // set_fact
		vn := v.pick(varNames)
		args := yaml.Mapping()
		args.Set(vn, yaml.IntScalar(v.r.Intn(100)))
		return taskDraft{name: fmt.Sprintf("Set %s fact", vn), fqcn: "ansible.builtin.set_fact", args: args}
	}},
	{2, func(v *vocab) taskDraft { // wait_for
		port := v.pick(ports)
		args := m("port", atoiNode(port), "delay", 5, "timeout", 300)
		return taskDraft{name: fmt.Sprintf("Wait for port %s to open", port),
			fqcn: "ansible.builtin.wait_for", args: args}
	}},
	{2, func(v *vocab) taskDraft { // stat
		path := v.pick(configPaths)
		return taskDraft{name: fmt.Sprintf("Check whether %s exists", shortPath(path)),
			fqcn: "ansible.builtin.stat", args: m("path", path)}
	}},
	{2, func(v *vocab) taskDraft { // uri
		url := "https://" + v.pick(domains) + "/health"
		args := m("url", url, "method", "GET", "status_code", atoiListNode("200"))
		return taskDraft{name: "Check application health endpoint", fqcn: "ansible.builtin.uri", args: args}
	}},
	{2, func(v *vocab) taskDraft { // mysql_db
		db := v.pick(dbNames)
		return taskDraft{name: fmt.Sprintf("Create %s mysql database", db), fqcn: "community.mysql.mysql_db",
			args: m("name", db, "state", "present")}
	}},
	{2, func(v *vocab) taskDraft { // postgresql_db
		db := v.pick(dbNames)
		return taskDraft{name: fmt.Sprintf("Create %s postgresql database", db),
			fqcn: "community.postgresql.postgresql_db", args: m("name", db, "state", "present", "owner", v.pick(users))}
	}},
	{2, func(v *vocab) taskDraft { // docker_container
		img := v.pick(containerImages)
		cname := strings.SplitN(strings.SplitN(img, ":", 2)[0], "/", 2)[0]
		args := m("name", cname, "image", img, "state", "started", "restart_policy", "always")
		return taskDraft{name: fmt.Sprintf("Start %s container", cname),
			fqcn: "community.docker.docker_container", args: args}
	}},
	{2, func(v *vocab) taskDraft { // apt_repository
		repo := v.pick([]string{"ppa:deadsnakes/ppa", "deb https://download.docker.com/linux/ubuntu focal stable",
			"deb https://packages.grafana.com/oss/deb stable main"})
		return taskDraft{name: "Add package repository", fqcn: "ansible.builtin.apt_repository",
			args: m("repo", repo, "state", "present")}
	}},
	{2, func(v *vocab) taskDraft { // authorized_key
		u := v.pick(users)
		args := m("user", u, "key", "{{ lookup('file', 'files/id_rsa.pub') }}", "state", "present")
		return taskDraft{name: fmt.Sprintf("Install ssh key for %s", u),
			fqcn: "ansible.posix.authorized_key", args: args}
	}},
	{1, func(v *vocab) taskDraft { // vyos_facts (network corner of Galaxy)
		return taskDraft{name: "Get config for VyOS devices", fqcn: "vyos.vyos.vyos_facts",
			args: m("gather_subset", "all")}
	}},
	{1, func(v *vocab) taskDraft { // vyos_config
		h := v.pick(vyosHostnames)
		args := m("backup", true, "lines", seqOf("set system host-name "+h))
		return taskDraft{name: "Update the hostname", fqcn: "vyos.vyos.vyos_config", args: args}
	}},
	{1, func(v *vocab) taskDraft { // reboot
		return taskDraft{name: "Reboot the machine", fqcn: "ansible.builtin.reboot",
			args: m("reboot_timeout", 600)}
	}},
	{2, func(v *vocab) taskDraft { // Fig. 1 of the paper: install sshd
		return taskDraft{name: "Install SSH server", fqcn: "ansible.builtin.apt",
			args: m("name", "openssh-server", "state", "present")}
	}},
	{2, func(v *vocab) taskDraft { // Fig. 1 of the paper: start sshd
		return taskDraft{name: "Start SSH server", fqcn: "ansible.builtin.service",
			args: m("name", "ssh", "state", "started")}
	}},
	{1, func(v *vocab) taskDraft { // modprobe
		mod := v.pick([]string{"br_netfilter", "overlay", "ip_vs", "nf_conntrack"})
		return taskDraft{name: fmt.Sprintf("Load %s kernel module", mod),
			fqcn: "community.general.modprobe", args: m("name", mod, "state", "present")}
	}},
}

var recipeTotalWeight = func() int {
	t := 0
	for _, r := range recipes {
		t += r.weight
	}
	return t
}()

func atoiNode(s string) *yaml.Node {
	return &yaml.Node{Kind: yaml.ScalarNode, Value: s, Tag: yaml.IntTag}
}

func atoiListNode(s string) *yaml.Node {
	return yaml.Sequence(atoiNode(s))
}

func pkgName(v *vocab, pkg, state string) string {
	switch state {
	case "absent":
		return fmt.Sprintf("Remove %s package", pkg)
	case "latest":
		return v.pick([]string{
			fmt.Sprintf("Ensure %s is at the latest version", pkg),
			fmt.Sprintf("Upgrade %s to the latest version", pkg),
		})
	default:
		return v.pick([]string{
			fmt.Sprintf("Install %s", pkg),
			fmt.Sprintf("Install %s package", pkg),
			fmt.Sprintf("Ensure %s is installed", pkg),
		})
	}
}

func svcName(v *vocab, svc, state string) string {
	switch state {
	case "restarted":
		return fmt.Sprintf("Restart %s", svc)
	case "stopped":
		return fmt.Sprintf("Stop %s service", svc)
	case "reloaded":
		return fmt.Sprintf("Reload %s", svc)
	default:
		return v.pick([]string{
			fmt.Sprintf("Start %s", svc),
			fmt.Sprintf("Start and enable %s", svc),
			fmt.Sprintf("Ensure %s is running", svc),
		})
	}
}

func shortPath(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i < 0 || i+1 >= len(p) {
		return p
	}
	return p[i+1:]
}

func repoName(repo string) string {
	s := strings.TrimSuffix(repo, ".git")
	return shortPath(s) + " repository"
}

func urlName(u string) string { return shortPath(u) }

// drawTask generates one random task draft.
func drawTask(r *rand.Rand) taskDraft {
	v := &vocab{r: r}
	w := r.Intn(recipeTotalWeight)
	for _, rec := range recipes {
		if w < rec.weight {
			return rec.gen(v)
		}
		w -= rec.weight
	}
	return recipes[0].gen(v)
}

// Style controls the surface form of generated Ansible YAML.
type Style struct {
	// FQCN uses fully qualified module names (the Galaxy standard form);
	// otherwise short names are used where possible.
	FQCN bool
	// LegacyKV renders some module arguments in the historical
	// "k1=v1 k2=v2" string form (pre-training crawl noise).
	LegacyKV float64
	// KeywordRate is the chance a task carries extra execution keywords.
	KeywordRate float64
}

// GalaxyStyle is the vetted, standardised form of fine-tuning data.
var GalaxyStyle = Style{FQCN: true, LegacyKV: 0, KeywordRate: 0.35}

// CrawlStyle is the noisier pre-training form.
var CrawlStyle = Style{FQCN: false, LegacyKV: 0.15, KeywordRate: 0.35}

// renderTask converts a draft into a task mapping node in the given style.
func renderTask(r *rand.Rand, d taskDraft, st Style) *yaml.Node {
	v := &vocab{r: r}
	task := yaml.Mapping()
	task.Set("name", yaml.ScalarTyped(d.name, yaml.StrTag, yaml.Plain))
	key := d.fqcn
	if !st.FQCN && strings.HasPrefix(key, "ansible.builtin.") && v.chance(0.7) {
		key = strings.TrimPrefix(key, "ansible.builtin.")
	}
	args := d.args
	if st.LegacyKV > 0 && v.chance(st.LegacyKV) && args != nil && args.Kind == yaml.MappingNode && flatScalarArgs(args) {
		args = yaml.ScalarTyped(kvString(args), yaml.StrTag, yaml.Plain)
	}
	task.Set(key, args)

	if v.chance(st.KeywordRate) {
		decorateTask(v, task, d)
	}
	return task
}

// flatScalarArgs reports whether every argument value is a scalar, the
// precondition for legacy k=v rendering.
func flatScalarArgs(args *yaml.Node) bool {
	for _, val := range args.Values {
		if val.Kind != yaml.ScalarNode {
			return false
		}
	}
	return true
}

func kvString(args *yaml.Node) string {
	var parts []string
	for i, k := range args.Keys {
		val := args.Values[i].Value
		if strings.ContainsRune(val, ' ') {
			val = "'" + val + "'"
		}
		parts = append(parts, k.Value+"="+val)
	}
	return strings.Join(parts, " ")
}

// decorateTask adds 1-2 execution keywords appropriate for the draft.
func decorateTask(v *vocab, task *yaml.Node, d taskDraft) {
	n := 1
	if v.chance(0.3) {
		n = 2
	}
	for i := 0; i < n; i++ {
		switch v.r.Intn(6) {
		case 0:
			task.Set("become", yaml.BoolScalar(true))
		case 1:
			task.Set("when", yaml.ScalarTyped(v.pick(whenConditions), yaml.StrTag, yaml.Plain))
		case 2:
			task.Set("tags", seqOf(v.pick(tagValues)))
		case 3:
			task.Set("register", yaml.Scalar(v.pick(registerNames)))
		case 4:
			if d.fqcn != "ansible.builtin.service" && d.fqcn != "ansible.builtin.systemd" {
				task.Set("notify", yaml.ScalarTyped(v.pick(notifyHandlers), yaml.StrTag, yaml.Plain))
			} else {
				task.Set("become", yaml.BoolScalar(true))
			}
		case 5:
			task.Set("ignore_errors", yaml.BoolScalar(true))
		}
	}
}
