package wisdom

import (
	"wisdom/internal/dataset"
	"wisdom/internal/metrics"
)

// EvalResult aggregates the four paper metrics overall and per generation
// type (Tables 3-5 rows).
type EvalResult struct {
	Overall metrics.Report
	ByType  map[dataset.GenType]metrics.Report
}

// evalPair is one scored prediction.
type evalPair struct {
	typ      dataset.GenType
	predBody string // completion text (compared by EM/BLEU)
	refBody  string
	predDoc  string // reassembled document (AnsibleAware/SchemaCorrect)
	refDoc   string
}

// Evaluate runs the model over up to limit test samples (0 = all) and
// scores them with the paper's protocol: generated task completions are
// truncated to the first task; playbook generations are not truncated;
// Exact Match and BLEU compare the completion against the reference body,
// while Ansible Aware and Schema Correct operate on the reassembled
// document.
func Evaluate(m *Model, test []dataset.Sample, limit int) EvalResult {
	return EvaluateWithAware(m, test, limit, metrics.NewAnsibleAware())
}

// EvaluateWithAware is Evaluate with a caller-configured Ansible Aware
// metric (e.g. with the insertion-penalty extension enabled).
func EvaluateWithAware(m *Model, test []dataset.Sample, limit int, aware *metrics.AnsibleAware) EvalResult {
	if limit > 0 && len(test) > limit {
		test = test[:limit]
	}
	pairs := make([]evalPair, 0, len(test))
	for _, s := range test {
		completion := m.GenerateSample(s)
		indent := dataset.NameLineIndent(s.NameLine)
		if s.Type != dataset.NLtoPB {
			completion = dataset.TruncateFirstTask(completion, indent)
		}
		pairs = append(pairs, evalPair{
			typ:      s.Type,
			predBody: completion,
			refBody:  s.Target,
			predDoc:  assemble(s, completion, indent),
			refDoc:   assemble(s, s.Target, indent),
		})
	}
	res := EvalResult{ByType: make(map[dataset.GenType]metrics.Report)}
	res.Overall = score(pairs, aware)
	for _, t := range []dataset.GenType{dataset.NLtoPB, dataset.NLtoT, dataset.PBNLtoT, dataset.TNLtoT} {
		var sub []evalPair
		for _, p := range pairs {
			if p.typ == t {
				sub = append(sub, p)
			}
		}
		if len(sub) > 0 {
			res.ByType[t] = score(sub, aware)
		}
	}
	return res
}

// assemble reconstructs the comparable document for structural metrics:
// for tasks, the de-indented single task (name line + body); for playbooks,
// the whole document including the context header.
func assemble(s dataset.Sample, body string, indent int) string {
	if s.Type == dataset.NLtoPB {
		return s.Context + s.NameLine + "\n" + body
	}
	return dataset.StripIndent(dataset.ReassembleTask(s, body), indent)
}

// score aggregates the four metrics over a pair set.
func score(pairs []evalPair, aware *metrics.AnsibleAware) metrics.Report {
	if len(pairs) == 0 {
		return metrics.Report{}
	}
	e := metrics.NewEvaluator()
	var r metrics.Report
	r.Count = len(pairs)
	predBodies := make([]string, len(pairs))
	refBodies := make([]string, len(pairs))
	var awareSum float64
	for i, p := range pairs {
		predBodies[i], refBodies[i] = p.predBody, p.refBody
		if metrics.ExactMatch(p.predBody, p.refBody) {
			r.ExactMatch++
		}
		if e.SchemaCorrect(p.predDoc) {
			r.SchemaCorrect++
		}
		awareSum += aware.Score(p.predDoc, p.refDoc)
	}
	n := float64(len(pairs))
	r.ExactMatch = 100 * r.ExactMatch / n
	r.SchemaCorrect = 100 * r.SchemaCorrect / n
	r.AnsibleAware = 100 * awareSum / n
	r.BLEU = metrics.BLEU(predBodies, refBodies)
	return r
}
