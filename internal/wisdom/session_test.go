package wisdom

import (
	"context"
	"strings"
	"testing"

	"wisdom/internal/neural"
)

// TestPredictSessionMatchesPredict is the session-layer correctness
// invariant: PredictSession with any session id — cold, warm extension,
// replayed — returns byte-identical output to the stateless Predict.
func TestPredictSessionMatchesPredict(t *testing.T) {
	m := streamTestModel(t)
	if !m.EnableSessions(neural.SessionCacheConfig{}) {
		t.Fatal("EnableSessions returned false on a NeuralLM model")
	}

	// The keystroke pattern: successive prompts share a growing prefix.
	for _, prompt := range []string{"Insta", "Install ngi", "Install nginx", "Install nginx"} {
		want := m.Predict("", prompt)
		if got := m.PredictSession("editor-1", "", prompt); got != want {
			t.Errorf("PredictSession(%q) = %q, want Predict's %q", prompt, got, want)
		}
	}

	// A warm session must actually have reused prefix state by now.
	enabled, active, _, ratio := m.SessionStats()
	if !enabled || active == 0 {
		t.Errorf("SessionStats = enabled=%v active=%d, want enabled with a live session", enabled, active)
	}
	if ratio <= 0 {
		t.Errorf("prefix reuse ratio = %v, want > 0 after repeated shared-prefix requests", ratio)
	}
}

// TestPredictStreamSessionMatchesStream checks the streamed session variant
// keeps the emission contract: concatenated deltas equal the final answer,
// which equals the stateless PredictStream's.
func TestPredictStreamSessionMatchesStream(t *testing.T) {
	m := streamTestModel(t)
	if !m.EnableSessions(neural.SessionCacheConfig{}) {
		t.Fatal("EnableSessions returned false on a NeuralLM model")
	}
	want := m.PredictStream(context.Background(), "", "Install nginx", func(string) {})

	for i := 0; i < 2; i++ { // second pass hits warm session state
		var sb strings.Builder
		got := m.PredictStreamSession(context.Background(), "editor-2", "", "Install nginx", func(d string) {
			sb.WriteString(d)
		})
		if got != want {
			t.Errorf("pass %d: PredictStreamSession = %q, want %q", i, got, want)
		}
		if sb.String() != got {
			t.Errorf("pass %d: deltas = %q, final = %q", i, sb.String(), got)
		}
	}
}

// TestPredictSessionEmptyIDStateless checks an empty session id keeps the
// plain Complete path and leaves no session state behind.
func TestPredictSessionEmptyIDStateless(t *testing.T) {
	m := streamTestModel(t)
	if !m.EnableSessions(neural.SessionCacheConfig{}) {
		t.Fatal("EnableSessions returned false on a NeuralLM model")
	}
	want := m.Predict("", "Install nginx")
	if got := m.PredictSession("", "", "Install nginx"); got != want {
		t.Errorf("PredictSession(\"\") = %q, want %q", got, want)
	}
	if _, active, _, _ := m.SessionStats(); active != 0 {
		t.Errorf("active sessions = %d after empty-id request, want 0", active)
	}
}

// TestEnableSessionsNGram checks the n-gram zoo reports sessions unavailable:
// count-based decoders hold no reusable decode state.
func TestEnableSessionsNGram(t *testing.T) {
	r := getRig(t)
	m := pretrain(t, r, WisdomAnsibleMulti)
	if _, ok := m.LM.(*NeuralLM); ok {
		t.Skip("test model unexpectedly neural")
	}
	if m.EnableSessions(neural.SessionCacheConfig{}) {
		t.Error("EnableSessions returned true on an n-gram LM")
	}
	if enabled, _, _, _ := m.SessionStats(); enabled {
		t.Error("SessionStats reports enabled on an n-gram LM")
	}
	// PredictSession still answers — statelessly — instead of failing.
	want := m.Predict("", "install nginx")
	if got := m.PredictSession("editor-3", "", "install nginx"); got != want {
		t.Errorf("PredictSession on n-gram = %q, want %q", got, want)
	}
}
