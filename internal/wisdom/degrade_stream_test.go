package wisdom

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// streamStubPredictor is a controllable streaming tier: it emits its answer
// in per-line deltas, can park mid-stream, and can fail after starting.
type streamStubPredictor struct {
	text      string
	delayHead time.Duration // wait before the first delta
	parkAfter int           // park after N deltas until gate closes (0: never)
	failAfter int           // panic after N deltas (0: never)
	gate      chan struct{}
	calls     atomic.Int64
}

func newStreamStub(text string) *streamStubPredictor {
	return &streamStubPredictor{text: text, gate: make(chan struct{})}
}

func (s *streamStubPredictor) answer(prompt string) string {
	return s.text + ": " + prompt + "\n  line2\n  line3\n"
}

func (s *streamStubPredictor) Predict(c, prompt string) string {
	s.calls.Add(1)
	return s.answer(prompt)
}

func (s *streamStubPredictor) PredictStream(ctx context.Context, c, prompt string, emit func(string)) string {
	s.calls.Add(1)
	if s.delayHead > 0 {
		time.Sleep(s.delayHead)
	}
	final := s.answer(prompt)
	n := 0
	for _, l := range strings.SplitAfter(final, "\n") {
		if l == "" {
			continue
		}
		emit(l)
		n++
		if s.failAfter > 0 && n == s.failAfter {
			panic("stream stub forced mid-stream failure")
		}
		if s.parkAfter > 0 && n == s.parkAfter {
			<-s.gate
		}
	}
	return final
}

func TestChainStreamHealthyPrimary(t *testing.T) {
	primary, fallback := newStreamStub("neural"), newStreamStub("ngram")
	c := NewChain(primary, fallback, nil, ChainConfig{Timeout: 200 * time.Millisecond})
	var sb strings.Builder
	out, degraded := c.PredictStreamDegraded(context.Background(), "", "install nginx",
		func(d string) { sb.WriteString(d) })
	if degraded {
		t.Fatal("healthy primary stream tagged degraded")
	}
	if out != primary.answer("install nginx") {
		t.Fatalf("out = %q", out)
	}
	if sb.String() != out {
		t.Fatalf("deltas %q != final %q", sb.String(), out)
	}
	if fallback.calls.Load() != 0 {
		t.Fatal("fallback ran although the primary streamed")
	}
}

// TestChainStreamSilentTimeoutFallsBack: a primary that produces no delta
// within the tier budget is abandoned; the fallback streams instead and the
// answer is clean (nothing from the primary reached the wire).
func TestChainStreamSilentTimeoutFallsBack(t *testing.T) {
	primary, fallback := newStreamStub("neural"), newStreamStub("ngram")
	primary.delayHead = time.Second
	c := NewChain(primary, fallback, nil, ChainConfig{Timeout: 20 * time.Millisecond})
	var sb strings.Builder
	out, degraded := c.PredictStreamDegraded(context.Background(), "", "x",
		func(d string) { sb.WriteString(d) })
	if !degraded {
		t.Fatal("fallback answer not tagged degraded")
	}
	if out != fallback.answer("x") {
		t.Fatalf("out = %q", out)
	}
	if sb.String() != out {
		t.Fatalf("deltas %q != final %q — late primary deltas leaked?", sb.String(), out)
	}
}

// TestChainStreamStartedTierOwnsRequest: a primary that has emitted is
// waited out past the tier timeout instead of being abandoned (its partial
// answer is on the wire; switching tiers would interleave different text).
func TestChainStreamStartedTierOwnsRequest(t *testing.T) {
	primary, fallback := newStreamStub("neural"), newStreamStub("ngram")
	primary.parkAfter = 1
	c := NewChain(primary, fallback, nil, ChainConfig{Timeout: 20 * time.Millisecond})
	go func() {
		time.Sleep(80 * time.Millisecond) // well past the tier timeout
		close(primary.gate)
	}()
	var sb strings.Builder
	out, degraded := c.PredictStreamDegraded(context.Background(), "", "x",
		func(d string) { sb.WriteString(d) })
	if degraded {
		t.Fatal("slow-but-streaming primary tagged degraded")
	}
	if out != primary.answer("x") || sb.String() != out {
		t.Fatalf("out = %q, deltas = %q", out, sb.String())
	}
	if fallback.calls.Load() != 0 {
		t.Fatal("fallback ran although the primary owned the stream")
	}
}

// TestChainStreamMidStreamFailurePoisons: a primary that dies after
// emitting poisons the stream — the fallback still answers (unary, nothing
// more emitted) and the caller reconciles via the returned answer.
func TestChainStreamMidStreamFailurePoisons(t *testing.T) {
	primary, fallback := newStreamStub("neural"), newStreamStub("ngram")
	primary.failAfter = 1
	c := NewChain(primary, fallback, nil, ChainConfig{Timeout: 100 * time.Millisecond})
	var sb strings.Builder
	out, degraded := c.PredictStreamDegraded(context.Background(), "", "x",
		func(d string) { sb.WriteString(d) })
	if !degraded {
		t.Fatal("fallback answer not tagged degraded")
	}
	if out != fallback.answer("x") {
		t.Fatalf("out = %q, want the fallback's answer", out)
	}
	// The poisoned stream stops at the primary's first delta; the
	// fallback's text must NOT have been appended to the stream.
	if got := sb.String(); strings.Contains(got, "ngram") {
		t.Fatalf("fallback text leaked into a poisoned stream: %q", got)
	}
	if !strings.HasPrefix(sb.String(), "neural: x\n") {
		t.Fatalf("stream = %q", sb.String())
	}
}

// TestChainStreamRetrievalTier: with both generative tiers down, retrieval
// emits its whole answer as one delta.
func TestChainStreamRetrievalTier(t *testing.T) {
	primary := newStreamStub("neural")
	primary.delayHead = time.Second
	retr := func(c, p string) (string, bool) { return "- name: " + p + " (memorised)\n", true }
	c := NewChain(primary, nil, retr, ChainConfig{Timeout: 10 * time.Millisecond})
	var deltas []string
	out, degraded := c.PredictStreamDegraded(context.Background(), "", "x",
		func(d string) { deltas = append(deltas, d) })
	if !degraded {
		t.Fatal("retrieval answer not tagged degraded")
	}
	if len(deltas) != 1 || deltas[0] != out {
		t.Fatalf("deltas = %q, want the whole retrieval answer at once", deltas)
	}
}

// TestChainStreamUnaryPrimary: a tier without a streaming implementation
// answers through its unary Predict and emits once on success.
func TestChainStreamUnaryPrimary(t *testing.T) {
	primary := newStub("neural")
	c := NewChain(primary, nil, nil, ChainConfig{Timeout: 100 * time.Millisecond})
	var deltas []string
	out, degraded := c.PredictStreamDegraded(context.Background(), "", "x",
		func(d string) { deltas = append(deltas, d) })
	if degraded {
		t.Fatal("healthy unary primary tagged degraded")
	}
	if len(deltas) != 1 || deltas[0] != out {
		t.Fatalf("deltas = %q, out = %q", deltas, out)
	}
}
