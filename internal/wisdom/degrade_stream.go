package wisdom

import (
	"context"
	"sync"
	"time"
)

// PredictStream implements StreamPredictor on the degradation chain,
// discarding the degradation flag (callers that care use
// PredictStreamDegraded).
func (c *Chain) PredictStream(ctx context.Context, yamlCtx, prompt string, emit func(delta string)) string {
	out, _ := c.PredictStreamDegraded(ctx, yamlCtx, prompt, emit)
	return out
}

// PredictStreamDegraded streams one request through the chain: the tier
// that answers is the tier that streams, and the returned flag tags the
// stream degraded when that tier was not the primary.
//
// Tier hand-off interacts with streaming in one way the unary path never
// sees: a tier that has already emitted deltas cannot be abandoned, because
// its partial output is on the wire and a lower tier would answer with
// different bytes. The per-tier timeout therefore bounds a tier's time to
// FIRST output: a tier that times out silent is abandoned exactly like the
// unary chain abandons it, while a tier that is already streaming owns the
// request and the chain waits for it to finish (generation is finite
// compute, and the caller's ctx still cancels the decode loop itself). A
// tier that fails after streaming started poisons the stream — lower tiers
// then answer unary-style, nothing more is emitted, and the caller's
// delta/answer comparison surfaces the rewrite.
func (c *Chain) PredictStreamDegraded(ctx context.Context, yamlCtx, prompt string, emit func(delta string)) (string, bool) {
	clean := true // no tier has emitted and then failed
	b := c.cfg.Breaker
	if b == nil || b.Allow() {
		out, started, err := callTierStream(ctx, c.primary, yamlCtx, prompt, c.cfg.Timeout, emit)
		if b != nil {
			b.Record(err)
		}
		if err == nil {
			return out, false
		}
		if started {
			clean = false
		}
	}
	tierEmit := emit
	if !clean {
		tierEmit = func(string) {}
	}
	if c.fallback != nil {
		out, started, err := callTierStream(ctx, c.fallback, yamlCtx, prompt, c.cfg.Timeout, tierEmit)
		if err == nil {
			c.degraded("fallback")
			return out, true
		}
		if started {
			clean = false
			tierEmit = func(string) {}
		}
	}
	if c.retrieve != nil {
		if out, ok := c.retrieve(yamlCtx, prompt); ok {
			c.degraded("retrieval")
			// Retrieval is instantaneous: the whole answer goes out as one
			// delta (when the stream is still clean).
			tierEmit(out)
			return out, true
		}
	}
	c.degraded("none")
	return "", true
}

// emitGate serialises a tier's emissions against the chain's abandonment
// decision: once tryAbandon wins, every later delta from the abandoned
// goroutine is discarded instead of interleaving with the next tier's
// stream; once a delta has gone out, tryAbandon loses and the tier keeps
// the request.
type emitGate struct {
	mu        sync.Mutex
	started   bool
	abandoned bool
	emit      func(string)
}

func (g *emitGate) send(d string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.abandoned {
		return
	}
	g.started = true
	g.emit(d)
}

// tryAbandon marks the gate abandoned unless streaming already started,
// reporting whether abandonment won.
func (g *emitGate) tryAbandon() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.started {
		return false
	}
	g.abandoned = true
	return true
}

func (g *emitGate) hasStarted() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.started
}

// callTierStream runs one tier's streaming prediction bounded by the
// timeout in the way the Chain doc describes: silent tiers are abandoned on
// timeout (their late deltas discarded), streaming tiers are waited out.
// Tiers without a streaming implementation run their unary Predict and emit
// the whole answer as one delta on success. started reports whether any
// delta reached the caller's emit.
func callTierStream(ctx context.Context, p Predictor, yamlCtx, prompt string,
	timeout time.Duration, emit func(string)) (out string, started bool, err error) {
	type result struct {
		out string
		err error
	}
	gate := &emitGate{emit: emit}
	ch := make(chan result, 1) // buffered: an abandoned tier still exits
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- result{err: errPanic}
			}
		}()
		if sp, ok := p.(StreamPredictor); ok {
			ch <- result{out: sp.PredictStream(ctx, yamlCtx, prompt, gate.send)}
			return
		}
		o := p.Predict(yamlCtx, prompt)
		gate.send(o)
		ch <- result{out: o}
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	deadline := t.C
	for {
		select {
		case r := <-ch:
			return r.out, gate.hasStarted(), r.err
		case <-deadline:
			if gate.tryAbandon() {
				return "", false, errTimeout
			}
			// The tier is mid-stream and owns the request; wait it out.
			deadline = nil
		}
	}
}
