package wisdom

import (
	"context"
	"math/rand"

	"wisdom/internal/neural"
)

// schedOpts builds the GenOptions a continuous-batched decode must run with
// so its output is byte-identical to the serial Complete/CompleteStream
// paths: same stop conditions and, when sampling, a per-request source
// seeded exactly as Complete seeds one.
func (g *NeuralLM) schedOpts(stop func([]int) bool, stopToken int, onToken func(int), cancel <-chan struct{}) neural.GenOptions {
	opts := neural.GenOptions{
		Stop: stop, StopToken: stopToken,
		Temperature: g.Temperature, TopK: g.TopK,
		OnToken: onToken, Cancel: cancel,
	}
	if g.Temperature > 0 {
		opts.Rand = rand.New(rand.NewSource(g.Seed))
	}
	return opts
}

// EnableScheduler attaches a continuous-batching decode engine to the
// transformer and reports whether it did: one persistent scheduling loop
// owns the step batch, admits queued requests into free slots and retires
// finished ones at every step boundary, so concurrent Predict traffic
// shares the batched kernels without waiting out the longest request of a
// micro-batch. Only transformer-backed models (NeuralLM) can batch steps;
// on the n-gram zoo this is a no-op returning false. Call once, after
// training and before serving traffic.
func (m *Model) EnableScheduler(cfg neural.EngineConfig) bool {
	if nl, ok := m.LM.(*NeuralLM); ok {
		nl.engine = nl.Model.NewEngine(cfg)
		return true
	}
	return false
}

// scheduler returns the attached decode engine, or nil when EnableScheduler
// was never called (or the LM cannot batch).
func (m *Model) scheduler() *neural.Engine {
	if nl, ok := m.LM.(*NeuralLM); ok {
		return nl.engine
	}
	return nil
}

// SchedStats reports the decode engine's scheduling counters for the
// serving layer's metrics: whether the scheduler is enabled, the configured
// step-batch capacity, current active/queued sequences, and the cumulative
// admitted/retired/step/row-step counts (rowSteps/(steps*maxBatch) is the
// engine's batch occupancy). All zeros when disabled.
func (m *Model) SchedStats() (enabled bool, maxBatch, active, queued int, admitted, retired, steps, rowSteps uint64) {
	e := m.scheduler()
	if e == nil {
		return false, 0, 0, 0, 0, 0, 0, 0
	}
	st := e.Stats()
	return true, st.MaxBatch, st.Active, st.Queued, st.Admitted, st.Retired, st.Steps, st.RowSteps
}

// SetSchedQueueWaitObserver registers a hook receiving each admitted
// request's queue wait in seconds (the serving layer points a histogram
// here). No-op when the scheduler is disabled.
func (m *Model) SetSchedQueueWaitObserver(fn func(waitSeconds float64)) {
	if e := m.scheduler(); e != nil {
		e.SetQueueWaitObserver(fn)
	}
}

// CloseScheduler drains the decode engine — accepted requests complete, new
// ones are rejected — and stops its scheduling loop, bounded by ctx. No-op
// when the scheduler is disabled.
func (m *Model) CloseScheduler(ctx context.Context) error {
	if e := m.scheduler(); e != nil {
		return e.Close(ctx)
	}
	return nil
}

// PredictSched answers one request like Predict — identical output for
// identical inputs — but decodes through the continuous-batching engine:
// the request joins the shared step batch at the next step boundary instead
// of decoding alone. It fails fast with the engine's overload error
// (classified Overloaded() for the serving layer) when the admission queue
// is full, and with neural.ErrEngineClosed during shutdown. Without an
// attached scheduler it falls back to the serial Predict path.
func (m *Model) PredictSched(ctx context.Context, yamlCtx, prompt string) (string, error) {
	e := m.scheduler()
	if e == nil {
		return m.Predict(yamlCtx, prompt), nil
	}
	s, nameLine, indent := m.predictSample(yamlCtx, prompt)
	plan := m.planSample(s)
	if plan.done {
		return m.finishPredict(s, nameLine, indent, plan.text), nil
	}
	nl := m.LM.(*NeuralLM)
	out, err := e.Generate(ctx, plan.prefix, plan.maxNew,
		nl.schedOpts(plan.stop, plan.stopToken, nil, nil))
	if err != nil {
		return "", err
	}
	return m.finishPredict(s, nameLine, indent, m.finishSample(out)), nil
}

// PredictStreamSched is PredictStream decoding through the
// continuous-batching engine, with the same emission contract: the name
// line first, then each committed body line, then the reconciling tail.
// Admission is checked before any byte is emitted, so an overload rejection
// returns the engine's error with nothing sent and the caller can shed the
// request cleanly. A cancelled ctx retires the sequence at the next step
// boundary; the partial answer assembled so far is returned.
func (m *Model) PredictStreamSched(ctx context.Context, yamlCtx, prompt string, emit func(delta string)) (string, error) {
	e := m.scheduler()
	if e == nil {
		return m.PredictStream(ctx, yamlCtx, prompt, emit), nil
	}
	s, nameLine, indent := m.predictSample(yamlCtx, prompt)
	plan := m.planSample(s)
	if plan.done {
		final := m.finishPredict(s, nameLine, indent, plan.text)
		emit(final)
		return final, nil
	}

	asm := &streamAssembler{indent: indent, emit: emit}
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	nl := m.LM.(*NeuralLM)
	// Submit before emitting anything: a queue-full rejection must leave the
	// stream untouched. Decoding may start before this goroutine emits the
	// name line, so the token hook parks on begun until begin has run; that
	// stalls only this sequence's relay goroutine, never the engine loop.
	// Wait returns only after the hook has seen every token, so the
	// assembler is safe to read afterwards.
	begun := make(chan struct{})
	onToken := func(tok int) { <-begun; asm.onToken(m, tok) }
	tk, err := e.Submit(ctx, plan.prefix, plan.maxNew,
		nl.schedOpts(plan.stop, plan.stopToken, onToken, cancel))
	if err != nil {
		return "", err
	}
	asm.begin(nameLine)
	close(begun)
	out := tk.Wait()
	final := m.finishPredict(s, nameLine, indent, m.finishSample(out))
	asm.finalize(final)
	return final, nil
}
