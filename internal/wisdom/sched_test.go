package wisdom

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"wisdom/internal/neural"
)

// TestPredictSchedMatchesPredict is the scheduler-layer correctness
// invariant: a request decoded through the continuous-batching engine
// returns byte-identical output to the serial Predict, including under
// concurrent traffic sharing the step batch.
func TestPredictSchedMatchesPredict(t *testing.T) {
	m := streamTestModel(t)
	want := m.Predict("", "Install nginx")

	if !m.EnableScheduler(neural.EngineConfig{MaxBatch: 4}) {
		t.Fatal("EnableScheduler returned false on a NeuralLM model")
	}
	defer m.CloseScheduler(context.Background())

	got, err := m.PredictSched(context.Background(), "", "Install nginx")
	if err != nil {
		t.Fatalf("PredictSched: %v", err)
	}
	if got != want {
		t.Fatalf("PredictSched = %q, want Predict's %q", got, want)
	}

	// Concurrent requests share the batch; every one must still match.
	var wg sync.WaitGroup
	errs := make([]error, 8)
	outs := make([]string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = m.PredictSched(context.Background(), "", "Install nginx")
		}(i)
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent PredictSched %d: %v", i, errs[i])
		}
		if outs[i] != want {
			t.Fatalf("concurrent PredictSched %d = %q, want %q", i, outs[i], want)
		}
	}

	enabled, maxBatch, _, _, admitted, retired, steps, rowSteps := m.SchedStats()
	if !enabled || maxBatch != 4 {
		t.Fatalf("SchedStats enabled=%v maxBatch=%d, want true/4", enabled, maxBatch)
	}
	if admitted == 0 || admitted != retired || steps == 0 || rowSteps == 0 {
		t.Fatalf("SchedStats counters admitted=%d retired=%d steps=%d rowSteps=%d", admitted, retired, steps, rowSteps)
	}
}

// TestPredictStreamSchedMatchesStream checks the streamed scheduler path
// keeps the emission contract: concatenated deltas equal the final answer,
// which equals the stateless PredictStream's.
func TestPredictStreamSchedMatchesStream(t *testing.T) {
	m := streamTestModel(t)
	want := m.PredictStream(context.Background(), "", "Install nginx", func(string) {})

	if !m.EnableScheduler(neural.EngineConfig{MaxBatch: 2}) {
		t.Fatal("EnableScheduler returned false on a NeuralLM model")
	}
	defer m.CloseScheduler(context.Background())

	var sb strings.Builder
	got, err := m.PredictStreamSched(context.Background(), "", "Install nginx", func(d string) {
		sb.WriteString(d)
	})
	if err != nil {
		t.Fatalf("PredictStreamSched: %v", err)
	}
	if got != want {
		t.Fatalf("PredictStreamSched = %q, want %q", got, want)
	}
	if sb.String() != got {
		t.Fatalf("deltas = %q, final = %q", sb.String(), got)
	}
}

// TestPredictStreamSchedQueueFullEmitsNothing checks the overload path's
// stream hygiene: a rejected submission returns the engine's overload error
// with zero bytes emitted, so the serving layer can shed it as if it never
// started.
func TestPredictStreamSchedQueueFullEmitsNothing(t *testing.T) {
	m := streamTestModel(t)
	if !m.EnableScheduler(neural.EngineConfig{MaxBatch: 1, Queue: 1}) {
		t.Fatal("EnableScheduler returned false on a NeuralLM model")
	}
	defer m.CloseScheduler(context.Background())

	// Saturate the single slot and the queue with cancellable requests.
	hold, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.PredictSched(hold, "", "Install nginx")
		}()
	}
	// Submit until one request observes the saturated queue; each attempt
	// either lands (the pool drained) or is the rejection we want.
	var rejected error
	emitted := ""
	for try := 0; try < 200 && rejected == nil; try++ {
		_, err := m.PredictStreamSched(context.Background(), "", "Install nginx", func(d string) {
			emitted += d
		})
		if err != nil {
			rejected = err
			if emitted != "" {
				t.Fatalf("rejected stream emitted %q, want nothing", emitted)
			}
			var ov interface{ Overloaded() bool }
			if !errors.As(err, &ov) || !ov.Overloaded() {
				t.Fatalf("rejection %v does not classify as Overloaded", err)
			}
		}
		emitted = ""
	}
	cancel()
	wg.Wait()
	if rejected == nil {
		t.Skip("queue never saturated on this host; overload path covered elsewhere")
	}
}

// TestEnableSchedulerNGram checks the n-gram zoo reports the scheduler
// unavailable and PredictSched still answers serially.
func TestEnableSchedulerNGram(t *testing.T) {
	r := getRig(t)
	m := pretrain(t, r, WisdomAnsibleMulti)
	if _, ok := m.LM.(*NeuralLM); ok {
		t.Skip("test model unexpectedly neural")
	}
	if m.EnableScheduler(neural.EngineConfig{}) {
		t.Error("EnableScheduler returned true on an n-gram LM")
	}
	if enabled, _, _, _, _, _, _, _ := m.SchedStats(); enabled {
		t.Error("SchedStats reports enabled on an n-gram LM")
	}
	want := m.Predict("", "install nginx")
	got, err := m.PredictSched(context.Background(), "", "install nginx")
	if err != nil {
		t.Fatalf("PredictSched fallback: %v", err)
	}
	if got != want {
		t.Errorf("PredictSched on n-gram = %q, want %q", got, want)
	}
	if err := m.CloseScheduler(context.Background()); err != nil {
		t.Errorf("CloseScheduler on n-gram: %v", err)
	}
}

// TestCloseSchedulerRejectsNew checks shutdown semantics: after
// CloseScheduler, new scheduled requests fail with the engine's closed
// error instead of hanging.
func TestCloseSchedulerRejectsNew(t *testing.T) {
	m := streamTestModel(t)
	if !m.EnableScheduler(neural.EngineConfig{MaxBatch: 2}) {
		t.Fatal("EnableScheduler returned false on a NeuralLM model")
	}
	if _, err := m.PredictSched(context.Background(), "", "Install nginx"); err != nil {
		t.Fatalf("PredictSched before close: %v", err)
	}
	if err := m.CloseScheduler(context.Background()); err != nil {
		t.Fatalf("CloseScheduler: %v", err)
	}
	if _, err := m.PredictSched(context.Background(), "", "Install nginx"); err == nil {
		t.Fatal("PredictSched after CloseScheduler succeeded, want error")
	}
}
