package wisdom

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wisdom/internal/resilience"
)

// stubPredictor is a controllable tier: it answers with its fixed text, and
// can be made to block (simulating a hung or over-budget primary) or panic.
type stubPredictor struct {
	text  string
	block atomic.Bool
	panik atomic.Bool
	calls atomic.Int64
	gate  chan struct{} // blocked calls wait here
}

func newStub(text string) *stubPredictor {
	return &stubPredictor{text: text, gate: make(chan struct{})}
}

func (s *stubPredictor) Predict(context, prompt string) string {
	s.calls.Add(1)
	if s.panik.Load() {
		panic("stub predictor forced panic")
	}
	if s.block.Load() {
		<-s.gate
	}
	return s.text + ": " + prompt
}

func TestChainHealthyPrimaryNotDegraded(t *testing.T) {
	primary, fallback := newStub("neural"), newStub("ngram")
	c := NewChain(primary, fallback, nil, ChainConfig{Timeout: 100 * time.Millisecond})
	out, degraded := c.PredictDegraded("", "install nginx")
	if degraded {
		t.Fatal("healthy primary answer tagged degraded")
	}
	if out != "neural: install nginx" {
		t.Fatalf("out = %q", out)
	}
	if fallback.calls.Load() != 0 {
		t.Fatal("fallback ran although the primary answered")
	}
}

func TestChainPrimaryTimeoutFallsBack(t *testing.T) {
	primary, fallback := newStub("neural"), newStub("ngram")
	primary.block.Store(true)
	defer close(primary.gate)
	var tiers []string
	c := NewChain(primary, fallback, nil, ChainConfig{
		Timeout:   10 * time.Millisecond,
		OnDegrade: func(tier string) { tiers = append(tiers, tier) },
	})
	out, degraded := c.PredictDegraded("", "restart sshd")
	if !degraded {
		t.Fatal("fallback answer not tagged degraded")
	}
	if out != "ngram: restart sshd" {
		t.Fatalf("out = %q", out)
	}
	if len(tiers) != 1 || tiers[0] != "fallback" {
		t.Fatalf("OnDegrade tiers = %v, want [fallback]", tiers)
	}
}

func TestChainPrimaryPanicFallsBack(t *testing.T) {
	primary, fallback := newStub("neural"), newStub("ngram")
	primary.panik.Store(true)
	c := NewChain(primary, fallback, nil, ChainConfig{Timeout: 100 * time.Millisecond})
	out, degraded := c.PredictDegraded("", "x")
	if !degraded || out != "ngram: x" {
		t.Fatalf("out = %q degraded = %v, want fallback answer degraded", out, degraded)
	}
}

func TestChainRetrievalLastResort(t *testing.T) {
	primary := newStub("neural")
	primary.block.Store(true)
	defer close(primary.gate)
	var tier string
	c := NewChain(primary, nil, func(context, prompt string) (string, bool) {
		return "- name: " + prompt + "\n  memorised: true", true
	}, ChainConfig{Timeout: 10 * time.Millisecond, OnDegrade: func(s string) { tier = s }})
	out, degraded := c.PredictDegraded("", "open port 443")
	if !degraded || !strings.Contains(out, "memorised") {
		t.Fatalf("out = %q degraded = %v", out, degraded)
	}
	if tier != "retrieval" {
		t.Fatalf("tier = %q, want retrieval", tier)
	}
}

func TestChainAllTiersExhausted(t *testing.T) {
	primary := newStub("neural")
	primary.block.Store(true)
	defer close(primary.gate)
	var tier string
	c := NewChain(primary, nil, nil, ChainConfig{Timeout: 5 * time.Millisecond, OnDegrade: func(s string) { tier = s }})
	out, degraded := c.PredictDegraded("", "x")
	if out != "" || !degraded || tier != "none" {
		t.Fatalf("out=%q degraded=%v tier=%q, want empty degraded none", out, degraded, tier)
	}
}

// TestChainBreakerOpensAndRecovers is the acceptance scenario: repeated
// primary failures open the breaker (requests served degraded without
// touching the primary), the breaker half-opens after the cooldown, a
// successful probe closes it, and primary answers resume undegraded.
func TestChainBreakerOpensAndRecovers(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(0, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	primary, fallback := newStub("neural"), newStub("ngram")
	b := resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         time.Minute,
		Now:              clock,
	})
	c := NewChain(primary, fallback, nil, ChainConfig{Timeout: 10 * time.Millisecond, Breaker: b})

	// Phase 1: the primary hangs; three timeouts trip the breaker.
	primary.block.Store(true)
	for i := 0; i < 3; i++ {
		out, degraded := c.PredictDegraded("", "p")
		if !degraded || out != "ngram: p" {
			t.Fatalf("request %d: out=%q degraded=%v, want degraded fallback", i, out, degraded)
		}
	}
	if b.State() != resilience.Open {
		t.Fatalf("breaker = %v after %d timeouts, want open", b.State(), 3)
	}

	// Phase 2: while open, the primary is never called; answers stay
	// degraded even though the primary has recovered.
	close(primary.gate)
	primary.block.Store(false)
	before := primary.calls.Load()
	for i := 0; i < 5; i++ {
		if _, degraded := c.PredictDegraded("", "q"); !degraded {
			t.Fatalf("request %d served undegraded through an open breaker", i)
		}
	}
	if got := primary.calls.Load(); got != before {
		t.Fatalf("open breaker let %d calls through to the primary", got-before)
	}

	// Phase 3: cooldown elapses; the half-open probe reaches the healthy
	// primary, succeeds, and closes the breaker.
	advance(time.Minute)
	out, degraded := c.PredictDegraded("", "r")
	if degraded || out != "neural: r" {
		t.Fatalf("probe: out=%q degraded=%v, want undegraded primary", out, degraded)
	}
	if b.State() != resilience.Closed {
		t.Fatalf("breaker = %v after successful probe, want closed", b.State())
	}
	out, degraded = c.PredictDegraded("", "s")
	if degraded || out != "neural: s" {
		t.Fatalf("post-recovery: out=%q degraded=%v", out, degraded)
	}
}

// TestChainConcurrent drives a chain whose primary intermittently hangs from
// many goroutines under -race: every answer must come from a legal tier.
func TestChainConcurrent(t *testing.T) {
	primary, fallback := newStub("neural"), newStub("ngram")
	b := resilience.NewBreaker(resilience.BreakerConfig{FailureThreshold: 2, Cooldown: time.Millisecond})
	c := NewChain(primary, fallback, nil, ChainConfig{Timeout: 5 * time.Millisecond, Breaker: b})

	var flip atomic.Int64
	done := make(chan struct{})
	go func() { // toggle primary health while requests are in flight
		defer close(done)
		for i := 0; i < 20; i++ {
			primary.block.Store(i%2 == 0)
			flip.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
		primary.block.Store(false)
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				out, degraded := c.PredictDegraded("", "t")
				switch {
				case !degraded && out != "neural: t":
					t.Errorf("undegraded answer %q not from primary", out)
				case degraded && out != "ngram: t" && out != "":
					t.Errorf("degraded answer %q not from fallback", out)
				}
			}
		}()
	}
	wg.Wait()
	<-done
	close(primary.gate) // release any still-blocked abandoned goroutines
}

// TestModelChainRealTiers exercises NewModelChain with real models: a
// hanging primary wrapper around a trained model degrades to the trained
// n-gram fallback, and the retrieval tier answers when both generative
// tiers are out.
func TestModelChainRealTiers(t *testing.T) {
	r := getRig(t)
	pre := pretrain(t, r, WisdomAnsibleMulti)
	primary, err := Finetune(pre, r.pipe.Train, FinetuneConfig{Window: 1024})
	if err != nil {
		t.Fatal(err)
	}
	fallback := primary

	// Healthy chain: primary (here the fine-tuned n-gram standing in for
	// the transformer tier) answers undegraded.
	c := NewModelChain(primary, fallback, ChainConfig{Timeout: 5 * time.Second})
	out, degraded := c.PredictDegraded("", "install nginx")
	if degraded {
		t.Fatal("healthy model chain degraded")
	}
	if !strings.HasPrefix(out, "- name: install nginx") {
		t.Fatalf("out = %q", out)
	}

	// Same chain with the primary hung: the fallback model answers, tagged
	// degraded, with the same shape of suggestion.
	hung := newStub("never")
	hung.block.Store(true)
	defer close(hung.gate)
	c2 := NewChain(hung, fallback, primary.RetrievalPredict, ChainConfig{Timeout: 10 * time.Millisecond})
	out2, degraded2 := c2.PredictDegraded("", "install nginx")
	if !degraded2 {
		t.Fatal("fallback answer not degraded")
	}
	if !strings.HasPrefix(out2, "- name: install nginx") {
		t.Fatalf("degraded out = %q", out2)
	}
	if out2 != out {
		// Both tiers are the same trained model here, so the degraded
		// answer must match the healthy one token for token.
		t.Fatalf("fallback diverged from identical model: %q vs %q", out2, out)
	}

	// Retrieval-only last resort: no generative tier at all.
	c3 := NewChain(hung, nil, primary.RetrievalPredict, ChainConfig{Timeout: 10 * time.Millisecond})
	out3, degraded3 := c3.PredictDegraded("", "install nginx")
	if !degraded3 {
		t.Fatal("retrieval answer not degraded")
	}
	if out3 != "" && !strings.HasPrefix(out3, "- name: install nginx") {
		t.Fatalf("retrieval out = %q", out3)
	}
}
