package wisdom

import (
	"bytes"
	"testing"
)

func TestSaveLoadPretrained(t *testing.T) {
	r := getRig(t)
	m := pretrain(t, r, WisdomAnsible) // plain NgramLM
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != m.Name || back.CtxWindow != m.CtxWindow || back.FewShotHint != m.FewShotHint {
		t.Errorf("policy fields changed: %+v vs %+v", back.Name, m.Name)
	}
	for _, s := range r.pipe.Test[:5] {
		a, b := m.GenerateSample(s), back.GenerateSample(s)
		if a != b {
			t.Fatalf("generation changed after reload:\n%q\n%q", a, b)
		}
	}
}

func TestSaveLoadFinetuned(t *testing.T) {
	r := getRig(t)
	pre := pretrain(t, r, WisdomAnsibleMulti) // blend-backed
	ft, err := Finetune(pre, r.pipe.Train, FinetuneConfig{Window: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ft.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Retr == nil || back.Retr.Len() != ft.Retr.Len() {
		t.Fatalf("memory lost: %v", back.Retr)
	}
	if back.RetrThreshold != ft.RetrThreshold {
		t.Errorf("threshold changed: %v vs %v", back.RetrThreshold, ft.RetrThreshold)
	}
	for _, s := range r.pipe.Test[:5] {
		a, b := ft.GenerateSample(s), back.GenerateSample(s)
		if a != b {
			t.Fatalf("fine-tuned generation changed after reload:\n%q\n%q", a, b)
		}
	}
	// Predict path works end to end on the reloaded model.
	out := back.Predict("", "Install nginx")
	if out != ft.Predict("", "Install nginx") {
		t.Error("Predict changed after reload")
	}
}

func TestSaveNeuralBackedFails(t *testing.T) {
	r := getRig(t)
	m := &Model{Name: "x", Tok: r.tok, LM: &NeuralLM{}}
	var buf bytes.Buffer
	if err := m.Save(&buf); err == nil {
		t.Error("neural-backed save should direct callers to neural.Model.Save")
	}
}

func TestLoadModelGarbage(t *testing.T) {
	if _, err := LoadModel(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("garbage accepted")
	}
}
