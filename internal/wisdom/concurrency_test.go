package wisdom

import (
	"sync"
	"testing"
)

// TestConcurrentPredictMatchesSerial is the contract the serve package's
// worker pool relies on: a fine-tuned *Model is frozen, so concurrent
// Predict calls — spanning the blended n-gram scorer, retrieval memory,
// lexical reranker and post-processing — must be race-free and return
// exactly what serial calls return. Each Complete call derives its own
// rand and coverage state, which is what this test (under -race) proves.
func TestConcurrentPredictMatchesSerial(t *testing.T) {
	r := getRig(t)
	pre := pretrain(t, r, WisdomAnsibleMulti)
	ft, err := Finetune(pre, r.pipe.Train, FinetuneConfig{Window: 1024})
	if err != nil {
		t.Fatal(err)
	}

	playbook := "---\n- hosts: all\n  tasks:\n"
	cases := []struct{ ctx, prompt string }{
		{"", "Install nginx"},
		{playbook, "Install nginx"},
		{"", "Restart the web service"},
		{playbook, "Copy configuration files"},
	}
	want := make([]string, len(cases))
	for i, c := range cases {
		want[i] = ft.Predict(c.ctx, c.prompt)
	}

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				i := (w + rep) % len(cases)
				if got := ft.Predict(cases[i].ctx, cases[i].prompt); got != want[i] {
					t.Errorf("concurrent Predict(%q) diverged:\n got %q\nwant %q",
						cases[i].prompt, got, want[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
