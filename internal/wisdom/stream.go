package wisdom

import (
	"context"
	"math/rand"
	"strings"

	"wisdom/internal/dataset"
	"wisdom/internal/neural"
)

// StreamGenerator is implemented by generators whose decode loop can emit
// tokens as they are produced instead of buffering them until the end
// (NeuralLM over the transformer's KV-cached engine). onToken receives each
// generated token id the moment it is picked; cancel, when closed, aborts
// the decode at the next step and returns the tokens produced so far. The
// returned tokens are exactly what Complete with the same arguments would
// produce — streaming never changes the output.
type StreamGenerator interface {
	Generator
	CompleteStream(cancel <-chan struct{}, prefix, prompt []int, maxNew int,
		stop func(generated []int) bool, stopToken int, onToken func(tok int)) []int
}

// CompleteStream implements StreamGenerator on the transformer's cached
// decode engine: tokens leave the loop through onToken as they are chosen,
// and a closed cancel channel stops the generation (the serving layer wires
// a dropped client connection here so abandoned streams stop burning a
// worker slot).
func (g *NeuralLM) CompleteStream(cancel <-chan struct{}, prefix, _ []int, maxNew int,
	stop func([]int) bool, stopToken int, onToken func(int)) []int {
	opts := neural.GenOptions{
		Stop: stop, StopToken: stopToken,
		Temperature: g.Temperature, TopK: g.TopK,
		OnToken: onToken, Cancel: cancel,
	}
	if g.Temperature > 0 {
		opts.Rand = rand.New(rand.NewSource(g.Seed))
	}
	return g.Model.GenerateCached(prefix, maxNew, opts)
}

// StreamPredictor is the streaming face of a predictor: PredictStream
// answers one request like Predict, but delivers the answer incrementally
// through emit while generation is still in flight. Both *Model and *Chain
// implement it.
//
// The contract emit-side: deltas are emitted in order, their concatenation
// is a prefix of the final answer at every point in time, and in the normal
// case the concatenation of all deltas equals the returned answer exactly.
// When late post-processing rewrites the answer (the schema-fallback path),
// the emitted prefix may disagree with the return value; callers that
// forward deltas to a client compare the two and send a corrected terminal
// message (see serve's "replaced" flag). A cancelled ctx stops the
// underlying generation; the partial answer assembled so far is returned.
type StreamPredictor interface {
	Predictor
	PredictStream(ctx context.Context, context, prompt string, emit func(delta string)) string
}

// PredictStream implements StreamPredictor: Predict's exact answer,
// delivered incrementally. The name line is emitted immediately (the
// time-to-first-token of every streamed completion is one prompt render,
// not one generation), then each completed body line as soon as the decode
// loop has produced it and the post-processing filters have committed to
// it, then whatever tail the final validation pass adds.
//
// Emission goes through an incremental re-run of the unary path's
// line-level filters (CutRepeatedLines, dataset.TruncateFirstTask), so a
// line is only emitted once no future token can remove it — which is what
// makes the concatenated deltas byte-identical to Predict's answer. The
// one rewrite those filters cannot predict is the schema-validation
// fallback (an invalid body is replaced wholesale by the nearest memorised
// completion); when that fires, emission stops and the caller reconciles
// against the returned answer.
func (m *Model) PredictStream(ctx context.Context, yamlCtx, prompt string, emit func(delta string)) string {
	return m.predictStreamSession(ctx, "", yamlCtx, prompt, emit)
}

// predictStreamSession is the shared core of PredictStream and
// PredictStreamSession: one streamed prediction, optionally keyed to a
// session whose retained prefix KV state the decode can reuse (sessionID ==
// "" decodes stateless).
func (m *Model) predictStreamSession(ctx context.Context, sessionID, yamlCtx, prompt string, emit func(delta string)) string {
	s, nameLine, indent := m.predictSample(yamlCtx, prompt)
	plan := m.planSample(s)
	if plan.done {
		// Retrieval hit: the whole answer exists before any decoding.
		final := m.finishPredict(s, nameLine, indent, plan.text)
		emit(final)
		return final
	}

	asm := &streamAssembler{indent: indent, emit: emit}
	asm.begin(nameLine)

	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	onToken := func(tok int) { asm.onToken(m, tok) }
	var out []int
	if sg, ok := m.LM.(SessionGenerator); ok && sessionID != "" {
		out, _ = sg.CompleteSession(sessionID, cancel, plan.prefix, plan.prompt, plan.maxNew,
			plan.stop, plan.stopToken, onToken)
	} else if sg, ok := m.LM.(StreamGenerator); ok {
		out = sg.CompleteStream(cancel, plan.prefix, plan.prompt, plan.maxNew,
			plan.stop, plan.stopToken, onToken)
	} else {
		// Non-streaming LM (the n-gram zoo): the name line already went out;
		// the body follows in one piece. Sub-second n-gram decodes gain
		// nothing from per-token emission.
		out = m.LM.Complete(plan.prefix, plan.prompt, plan.maxNew, plan.stop, plan.stopToken)
	}
	final := m.finishPredict(s, nameLine, indent, m.finishSample(out))
	asm.finalize(final)
	return final
}

// streamAssembler incrementally re-runs the line-level post-processing of
// the unary Predict path over the raw decoded stream and emits every line
// the filters have irrevocably committed to. Both filters decide a line's
// fate from that line and the ones before it only (CutRepeatedLines cuts at
// the first repeated complete line, TruncateFirstTask at the first blank or
// dedented one), so a committed line can never be retracted by later
// tokens; the trailing incomplete line — and any trailing special-token
// text the final pass trims — is held back until the next newline or the
// end of generation.
type streamAssembler struct {
	indent int
	emit   func(string)

	raw      strings.Builder // decoded tokens so far
	sent     string          // emitted so far (nameLine + committed body lines)
	head     string          // nameLine + "\n"
	diverged bool            // incremental and final output disagreed; stop emitting
}

// begin emits the answer's guaranteed first bytes: the rendered name line.
func (a *streamAssembler) begin(nameLine string) {
	a.head = nameLine + "\n"
	a.sent = a.head
	a.emit(a.head)
}

// onToken accumulates one decoded token and emits newly committed lines.
func (a *streamAssembler) onToken(m *Model, tok int) {
	if a.diverged {
		return
	}
	text := m.Tok.Token(tok)
	a.raw.WriteString(text)
	if strings.IndexByte(text, '\n') < 0 {
		return
	}
	raw := a.raw.String()
	complete := raw[:strings.LastIndexByte(raw, '\n')+1]
	body := dataset.TruncateFirstTask(CutRepeatedLines(complete), a.indent)
	cand := a.head + body
	if !strings.HasPrefix(cand, a.sent) {
		a.diverged = true
		return
	}
	if delta := cand[len(a.sent):]; delta != "" {
		a.sent += delta
		a.emit(delta)
	}
}

// finalize reconciles the stream against the authoritative unary answer:
// the unemitted tail goes out as the last delta. When the final answer
// rewrote already-emitted text (the validation-fallback path), nothing more
// is emitted — the caller detects the mismatch by comparing its
// concatenated deltas with the returned answer.
func (a *streamAssembler) finalize(final string) {
	if a.diverged || !strings.HasPrefix(final, a.sent) {
		a.diverged = true
		return
	}
	if rest := final[len(a.sent):]; rest != "" {
		a.sent = final
		a.emit(rest)
	}
}
