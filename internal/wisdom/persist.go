package wisdom

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"

	"wisdom/internal/dataset"
	"wisdom/internal/lexical"
	"wisdom/internal/ngram"
	"wisdom/internal/tokenizer"
)

// modelSnapshot is the gob wire format of a full Model: the tokenizer (as
// its JSON form), the language-model component (one or two n-gram tables
// plus lexical channels), the optional memory, and the policy fields.
type modelSnapshot struct {
	Name          string
	Kind          string // "ngram" or "blend"
	CtxWindow     int
	Style         int
	FewShotHint   bool
	RetrThreshold float64

	Tokenizer []byte // tokenizer JSON

	Primary    []byte // ngram gob
	Base       []byte // ngram gob (blend only)
	LexPrimary []byte // lexical gob (may be empty)
	LexBase    []byte // lexical gob (blend only, may be empty)
	Weight     float64

	MemKeys    [][]int
	MemCtx     [][]int
	MemValues  [][]int
	MemIndents []int
}

// Save serialises the model. Only n-gram-backed models (plain or blended)
// are supported; neural-backed models persist through neural.Model.Save.
func (m *Model) Save(w io.Writer) error {
	snap := modelSnapshot{
		Name:          m.Name,
		CtxWindow:     m.CtxWindow,
		Style:         int(m.Style),
		FewShotHint:   m.FewShotHint,
		RetrThreshold: m.RetrThreshold,
		Weight:        1,
	}
	tokJSON, err := json.Marshal(m.Tok)
	if err != nil {
		return fmt.Errorf("wisdom: save tokenizer: %w", err)
	}
	snap.Tokenizer = tokJSON

	encodeNgram := func(lm *ngram.Model) ([]byte, error) {
		var buf bytes.Buffer
		if err := lm.Save(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	encodeLex := func(lx *lexical.Model) ([]byte, error) {
		if lx == nil {
			return nil, nil
		}
		var buf bytes.Buffer
		if err := lx.Save(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}

	switch lm := m.LM.(type) {
	case *NgramLM:
		snap.Kind = "ngram"
		if snap.Primary, err = encodeNgram(lm.Model); err != nil {
			return err
		}
		if snap.LexPrimary, err = encodeLex(lm.Lex); err != nil {
			return err
		}
	case *blendLM:
		snap.Kind = "blend"
		snap.Weight = lm.weight
		if snap.Primary, err = encodeNgram(lm.primary); err != nil {
			return err
		}
		if snap.Base, err = encodeNgram(lm.base); err != nil {
			return err
		}
		if snap.LexPrimary, err = encodeLex(lm.lexPrimary); err != nil {
			return err
		}
		if snap.LexBase, err = encodeLex(lm.lexBase); err != nil {
			return err
		}
	default:
		return fmt.Errorf("wisdom: cannot save %T-backed model", m.LM)
	}

	if m.Retr != nil {
		for i := 0; i < m.Retr.Len(); i++ {
			e := m.Retr.ix.Entry(i)
			snap.MemKeys = append(snap.MemKeys, e.Key)
			snap.MemValues = append(snap.MemValues, e.Value)
			snap.MemCtx = append(snap.MemCtx, bagToSlice(m.Retr.ctxBags[i]))
			snap.MemIndents = append(snap.MemIndents, m.Retr.indents[i])
		}
	}
	return gob.NewEncoder(w).Encode(snap)
}

func bagToSlice(bag map[int]bool) []int {
	out := make([]int, 0, len(bag))
	for t := range bag {
		out = append(out, t)
	}
	return out
}

// LoadModel restores a model saved by Save.
func LoadModel(r io.Reader) (*Model, error) {
	var snap modelSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("wisdom: decode: %w", err)
	}
	var tok tokenizer.Tokenizer
	if err := json.Unmarshal(snap.Tokenizer, &tok); err != nil {
		return nil, fmt.Errorf("wisdom: tokenizer: %w", err)
	}

	decodeNgram := func(data []byte) (*ngram.Model, error) {
		return ngram.Load(bytes.NewReader(data))
	}
	decodeLex := func(data []byte) (*lexical.Model, error) {
		if len(data) == 0 {
			return nil, nil
		}
		return lexical.Load(bytes.NewReader(data))
	}

	m := &Model{
		Name:          snap.Name,
		Tok:           &tok,
		CtxWindow:     snap.CtxWindow,
		Style:         dataset.PromptStyle(snap.Style),
		FewShotHint:   snap.FewShotHint,
		RetrThreshold: snap.RetrThreshold,
	}
	switch snap.Kind {
	case "ngram":
		lm, err := decodeNgram(snap.Primary)
		if err != nil {
			return nil, err
		}
		lex, err := decodeLex(snap.LexPrimary)
		if err != nil {
			return nil, err
		}
		m.LM = &NgramLM{Model: lm, Lex: lex}
	case "blend":
		primary, err := decodeNgram(snap.Primary)
		if err != nil {
			return nil, err
		}
		base, err := decodeNgram(snap.Base)
		if err != nil {
			return nil, err
		}
		lexPrimary, err := decodeLex(snap.LexPrimary)
		if err != nil {
			return nil, err
		}
		lexBase, err := decodeLex(snap.LexBase)
		if err != nil {
			return nil, err
		}
		m.LM = &blendLM{
			primary: primary, base: base, weight: snap.Weight,
			lexPrimary: lexPrimary, lexBase: lexBase,
		}
	default:
		return nil, fmt.Errorf("wisdom: unknown model kind %q", snap.Kind)
	}

	if len(snap.MemKeys) > 0 {
		mem := NewMemory()
		for i := range snap.MemKeys {
			mem.Add(snap.MemKeys[i], snap.MemCtx[i], snap.MemValues[i], snap.MemIndents[i])
		}
		mem.Build()
		m.Retr = mem
	}
	return m, nil
}
