package wisdom

import (
	"strings"
	"sync"
	"testing"

	"wisdom/internal/ansible"
	"wisdom/internal/corpus"
	"wisdom/internal/dataset"
	"wisdom/internal/tokenizer"
	"wisdom/internal/yaml"
)

// testRig caches the expensive shared fixtures across tests.
type testRig struct {
	corp  *Corpora
	tok   *tokenizer.Tokenizer
	pipe  *dataset.Pipeline
	limit int
}

var (
	rigOnce sync.Once
	rig     *testRig
)

func getRig(t *testing.T) *testRig {
	t.Helper()
	rigOnce.Do(func() {
		cfg := CorporaConfig{Seed: 3, Pile: 250, BigQuery: 250, BigPython: 120, GitLab: 40, GitHub: 400, Generic: 700}
		corp := BuildCorpora(cfg)
		tok, err := TrainTokenizer(corp, 2048)
		if err != nil {
			panic(err)
		}
		pipe := dataset.BuildPipeline(corpus.Galaxy(77, 220), 5)
		rig = &testRig{corp: corp, tok: tok, pipe: pipe, limit: 40}
	})
	if rig == nil {
		t.Fatal("rig init failed")
	}
	return rig
}

func pretrain(t *testing.T, r *testRig, id VariantID) *Model {
	t.Helper()
	v, ok := VariantByID(id)
	if !ok {
		t.Fatalf("unknown variant %s", id)
	}
	var leak []dataset.Sample
	if v.Retrieval {
		// Codex-sim "saw" a slice of Galaxy, including test-set files.
		leak = append(leak, rigLeak(r)...)
	}
	m, err := Pretrain(v, r.corp, r.tok, 2048, leak)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// rigLeak exposes some of the pipeline's own samples (train + test) to the
// Codex-sim retrieval channel, the leakage the paper hypothesises.
func rigLeak(r *testRig) []dataset.Sample {
	var leak []dataset.Sample
	leak = append(leak, r.pipe.Train...)
	for i, s := range r.pipe.Test {
		if i%4 == 0 { // "large portions", not all
			leak = append(leak, s)
		}
	}
	return leak
}

func TestVariantsTable2(t *testing.T) {
	vs := Variants()
	if len(vs) != 8 {
		t.Fatalf("zoo has %d variants, want 8", len(vs))
	}
	byID := map[VariantID]Variant{}
	for _, v := range vs {
		byID[v.ID] = v
	}
	// Table 2 checkmark matrix.
	checks := []struct {
		id                             VariantID
		pile, bq, py, ansible, generic bool
	}{
		{CodeGenNL, true, false, false, false, false},
		{CodeGenMulti, true, true, false, false, false},
		{CodeGenMono, true, true, true, false, false},
		{WisdomAnsible, false, false, false, true, false},
		{WisdomYaml, false, false, false, true, true},
		{WisdomAnsibleMulti, true, true, false, true, false},
		{WisdomYamlMulti, true, true, false, true, true},
	}
	for _, c := range checks {
		v := byID[c.id]
		if v.Pile != c.pile || v.BigQuery != c.bq || v.BigPython != c.py ||
			v.AnsibleYAML != c.ansible || v.GenericYAML != c.generic {
			t.Errorf("%s dataset row = %+v, want %+v", c.id, v, c)
		}
	}
	if !byID[CodexDavinci].Retrieval {
		t.Error("codex-sim lacks the retrieval channel")
	}
}

func TestPipelineSamplesAvailable(t *testing.T) {
	r := getRig(t)
	if len(r.pipe.Train) < 100 || len(r.pipe.Test) < 20 {
		t.Fatalf("pipeline too small: train=%d test=%d", len(r.pipe.Train), len(r.pipe.Test))
	}
}

func TestFewShotWisdomBeatsNL(t *testing.T) {
	// The paper's central few-shot claim (Table 3): YAML pre-training
	// beats NL-only pre-training on every structural metric.
	r := getRig(t)
	nl := pretrain(t, r, CodeGenNL)
	wis := pretrain(t, r, WisdomAnsible)
	resNL := Evaluate(nl, r.pipe.Test, r.limit)
	resWis := Evaluate(wis, r.pipe.Test, r.limit)
	t.Logf("CodeGen-NL:     %+v", resNL.Overall)
	t.Logf("Wisdom-Ansible: %+v", resWis.Overall)
	if resWis.Overall.BLEU <= resNL.Overall.BLEU {
		t.Errorf("BLEU: wisdom %v <= nl %v", resWis.Overall.BLEU, resNL.Overall.BLEU)
	}
	if resWis.Overall.AnsibleAware <= resNL.Overall.AnsibleAware {
		t.Errorf("AnsibleAware: wisdom %v <= nl %v", resWis.Overall.AnsibleAware, resNL.Overall.AnsibleAware)
	}
	if resWis.Overall.SchemaCorrect < resNL.Overall.SchemaCorrect {
		t.Errorf("SchemaCorrect: wisdom %v < nl %v", resWis.Overall.SchemaCorrect, resNL.Overall.SchemaCorrect)
	}
}

func TestCodexHighExactMatch(t *testing.T) {
	// Table 3: Codex has the highest EM of the few-shot models (leakage).
	r := getRig(t)
	codex := pretrain(t, r, CodexDavinci)
	multi := pretrain(t, r, CodeGenMulti)
	resCodex := Evaluate(codex, r.pipe.Test, r.limit)
	resMulti := Evaluate(multi, r.pipe.Test, r.limit)
	t.Logf("Codex-sim EM=%v  Multi EM=%v", resCodex.Overall.ExactMatch, resMulti.Overall.ExactMatch)
	if resCodex.Overall.ExactMatch <= resMulti.Overall.ExactMatch {
		t.Errorf("codex EM %v <= codegen-multi EM %v", resCodex.Overall.ExactMatch, resMulti.Overall.ExactMatch)
	}
}

func TestFinetuningBoosts(t *testing.T) {
	// Table 4 vs Table 3: fine-tuning largely boosts every metric.
	r := getRig(t)
	pre := pretrain(t, r, CodeGenMulti)
	few := Evaluate(pre, r.pipe.Test, r.limit)
	ft, err := Finetune(pre, r.pipe.Train, FinetuneConfig{Window: 1024})
	if err != nil {
		t.Fatal(err)
	}
	tuned := Evaluate(ft, r.pipe.Test, r.limit)
	t.Logf("few-shot:   %+v", few.Overall)
	t.Logf("fine-tuned: %+v", tuned.Overall)
	if tuned.Overall.BLEU <= few.Overall.BLEU {
		t.Errorf("BLEU: tuned %v <= few-shot %v", tuned.Overall.BLEU, few.Overall.BLEU)
	}
	if tuned.Overall.AnsibleAware <= few.Overall.AnsibleAware {
		t.Errorf("AnsibleAware: tuned %v <= few-shot %v", tuned.Overall.AnsibleAware, few.Overall.AnsibleAware)
	}
	if tuned.Overall.ExactMatch < few.Overall.ExactMatch {
		t.Errorf("EM: tuned %v < few-shot %v", tuned.Overall.ExactMatch, few.Overall.ExactMatch)
	}
}

func TestDataFractionMonotone(t *testing.T) {
	// Table 4 bottom: more fine-tuning data, better scores.
	r := getRig(t)
	var last float64 = -1
	for _, frac := range []float64{0.1, 1.0} {
		pre := pretrain(t, r, CodeGenMulti)
		ft, err := Finetune(pre, r.pipe.Train, FinetuneConfig{Window: 1024, Fraction: frac})
		if err != nil {
			t.Fatal(err)
		}
		res := Evaluate(ft, r.pipe.Test, r.limit)
		t.Logf("fraction %v: BLEU %v", frac, res.Overall.BLEU)
		if res.Overall.BLEU < last {
			t.Errorf("BLEU decreased with more data: %v -> %v", last, res.Overall.BLEU)
		}
		last = res.Overall.BLEU
	}
}

func TestPrefixPromptWorse(t *testing.T) {
	// Table 4: the name-completion formulation beats the prefix baseline.
	r := getRig(t)
	pre := pretrain(t, r, CodeGenMulti)
	name, err := Finetune(pre, r.pipe.Train, FinetuneConfig{Window: 1024})
	if err != nil {
		t.Fatal(err)
	}
	pre2 := pretrain(t, r, CodeGenMulti)
	prefix, err := Finetune(pre2, r.pipe.Train, FinetuneConfig{Window: 1024, Style: dataset.PrefixPrompt})
	if err != nil {
		t.Fatal(err)
	}
	resName := Evaluate(name, r.pipe.Test, r.limit)
	resPrefix := Evaluate(prefix, r.pipe.Test, r.limit)
	t.Logf("name-completion BLEU=%v  prefix BLEU=%v", resName.Overall.BLEU, resPrefix.Overall.BLEU)
	if resName.Overall.BLEU <= resPrefix.Overall.BLEU {
		t.Errorf("prompt formulation effect missing: name %v <= prefix %v",
			resName.Overall.BLEU, resPrefix.Overall.BLEU)
	}
}

func TestPredictProducesValidTask(t *testing.T) {
	r := getRig(t)
	pre := pretrain(t, r, WisdomAnsibleMulti)
	ft, err := Finetune(pre, r.pipe.Train, FinetuneConfig{Window: 1024})
	if err != nil {
		t.Fatal(err)
	}
	out := ft.Predict("", "Install nginx")
	if !strings.HasPrefix(out, "- name: Install nginx\n") {
		t.Fatalf("Predict output lacks name line:\n%s", out)
	}
	node, err := yaml.Parse(out)
	if err != nil {
		t.Fatalf("Predict output does not parse: %v\n%s", err, out)
	}
	v := ansible.NewValidator()
	if errs := v.ValidateTaskList(node); len(errs) != 0 {
		t.Errorf("Predict output fails schema: %v\n%s", errs, out)
	}
	if !strings.Contains(out, "nginx") || !strings.Contains(out, ":") {
		t.Errorf("suspicious prediction:\n%s", out)
	}
}

func TestEvaluatePerTypeBreakdown(t *testing.T) {
	r := getRig(t)
	pre := pretrain(t, r, CodeGenMulti)
	ft, err := Finetune(pre, r.pipe.Train, FinetuneConfig{Window: 1024})
	if err != nil {
		t.Fatal(err)
	}
	res := Evaluate(ft, r.pipe.Test, 0)
	total := 0
	for _, rep := range res.ByType {
		total += rep.Count
	}
	if total != res.Overall.Count {
		t.Errorf("per-type counts %d != overall %d", total, res.Overall.Count)
	}
	if res.Overall.Count != len(r.pipe.Test) {
		t.Errorf("evaluated %d, want all %d", res.Overall.Count, len(r.pipe.Test))
	}
}

func TestStopFuncStopsAtDedent(t *testing.T) {
	r := getRig(t)
	m := &Model{Tok: r.tok}
	stop := m.stopFunc(dataset.TNLtoT, 0)
	// A completion that dedents to a new task must stop (checked at a
	// multiple of 8 tokens).
	ids := r.tok.Encode("  mod:\n    a: 1\n- name: next\n  x:\n    b: 2\n    c: 3\n    d: 4\n")
	for len(ids)%8 != 0 {
		ids = append(ids, r.tok.Encode(" ")...)
	}
	if !stop(ids) {
		t.Error("stopFunc did not stop after dedent")
	}
	short := r.tok.Encode("  mod:")
	if stop(short) && len(short)%8 == 0 {
		t.Error("stopFunc stopped before any complete line")
	}
}

func TestFinetuneRequiresNgram(t *testing.T) {
	r := getRig(t)
	m := &Model{Tok: r.tok, LM: &NeuralLM{}}
	if _, err := Finetune(m, r.pipe.Train, FinetuneConfig{}); err == nil {
		t.Error("Finetune accepted a neural base")
	}
	empty := &Model{Tok: r.tok, LM: &blendLM{}}
	if _, err := Finetune(empty, r.pipe.Train, FinetuneConfig{}); err == nil {
		t.Error("Finetune accepted an empty blend base")
	}
}

func TestFinetuneWithValidation(t *testing.T) {
	r := getRig(t)
	pre := pretrain(t, r, CodeGenMulti)
	m, validBLEU, err := FinetuneWithValidation(pre, r.pipe.Train, r.pipe.Valid,
		FinetuneConfig{Window: 1024}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || validBLEU <= 0 {
		t.Fatalf("selection failed: %v %v", m, validBLEU)
	}
	// The selected model must be at least as good on validation as a fixed
	// default fine-tune.
	fixed, err := Finetune(pre, r.pipe.Train, FinetuneConfig{Window: 1024})
	if err != nil {
		t.Fatal(err)
	}
	fixedBLEU := Evaluate(fixed, r.pipe.Valid, 30).Overall.BLEU
	if validBLEU < fixedBLEU-1e-9 {
		t.Errorf("selected valid BLEU %.2f below fixed %.2f", validBLEU, fixedBLEU)
	}
	// And it still works on test.
	res := Evaluate(m, r.pipe.Test, 20)
	if res.Overall.BLEU <= 0 {
		t.Error("selected model scores zero on test")
	}
}
