// Package wisdom implements the paper's primary contribution: the Ansible
// Wisdom natural-language → Ansible-YAML generation system. It ties the
// substrates together — tokenizer, language models (n-gram and transformer),
// retrieval, the dataset pipeline and the metrics — into pre-training,
// fine-tuning, generation and evaluation, and defines the model zoo of
// Table 2 (CodeGen-NL/-Multi/-Mono, Codex, and the four Wisdom variants).
package wisdom

import (
	"math"
	"math/rand"
	"sort"
	"strings"

	"wisdom/internal/ansible"
	"wisdom/internal/dataset"
	"wisdom/internal/lexical"
	"wisdom/internal/neural"
	"wisdom/internal/ngram"
	"wisdom/internal/retrieval"
	"wisdom/internal/tokenizer"
	"wisdom/internal/yaml"
)

// Generator is the decoding interface a language model must provide. The
// prompt tokens are passed separately so conditioned models (n-gram +
// lexical channel) can attend to them over any distance, the way the
// paper's transformers attend to the name line.
type Generator interface {
	// Complete extends prefix by up to maxNew tokens. prompt carries the
	// NL intent tokens (may be nil). stop (optional) halts generation
	// early; stopToken (when >= 0) halts on that token.
	Complete(prefix, prompt []int, maxNew int, stop func(generated []int) bool, stopToken int) []int
}

// BatchGenerator is implemented by generators that can decode several
// sequences together (the transformer's batched step kernels). All slices
// are indexed per sequence; each row must produce exactly what a serial
// Complete call with the same arguments would. Rows may have different
// prefixes, budgets, and stop functions.
type BatchGenerator interface {
	Generator
	CompleteBatch(prefixes, prompts [][]int, maxNew []int, stops []func(generated []int) bool, stopToken int) [][]int
}

// promptTokens encodes a natural-language prompt for the lexical channel:
// the original tokens plus, when different, the lower-cased tokens, so
// "Start SSH server" associates with bodies written as "ssh" while exact
// case matches keep their full weight.
func promptTokens(tok *tokenizer.Tokenizer, prompt string) []int {
	ids := tok.Encode(prompt)
	if lower := strings.ToLower(prompt); lower != prompt {
		ids = append(ids, tok.Encode(lower)...)
	}
	return ids
}

// memoryKey encodes a prompt for the nearest-neighbour memory. Keys are
// case-folded: the user's intent is the same whether they type "Install
// nginx" or "INSTALL NGINX", and case-insensitive keying is what makes the
// memory robust to the letter-case perturbations the paper's limitations
// section asks about.
func memoryKey(tok *tokenizer.Tokenizer, prompt string) []int {
	return tok.Encode(strings.ToLower(prompt))
}

// decodeGreedy runs a generic greedy decoding loop over a next-token
// chooser.
func decodeGreedy(next func(seq []int) (int, bool), prefix []int, maxNew int, stop func([]int) bool, stopToken int) []int {
	seq := append([]int(nil), prefix...)
	var out []int
	for len(out) < maxNew {
		tok, ok := next(seq)
		if !ok {
			break
		}
		out = append(out, tok)
		seq = append(seq, tok)
		if stopToken >= 0 && tok == stopToken {
			break
		}
		if stop != nil && stop(out) {
			break
		}
	}
	return out
}

// NgramLM adapts an ngram.Model to the Generator interface, optionally
// conditioned on the prompt through a lexical translation channel.
type NgramLM struct {
	*ngram.Model
	// Lex, when non-nil, rescores candidates by their prompt affinity.
	Lex *lexical.Model
	// LexWeight scales the affinity term (default 1 when Lex is set).
	LexWeight float64
	// Temperature/TopK/Seed enable sampling; zero values mean greedy.
	Temperature float64
	TopK        int
	Seed        int64
}

// Complete implements Generator.
func (g *NgramLM) Complete(prefix, prompt []int, maxNew int, stop func([]int) bool, stopToken int) []int {
	if g.Lex != nil && g.Lex.Trained() && len(prompt) > 0 {
		w := g.LexWeight
		if w == 0 {
			w = 1
		}
		cov := newCoverage(len(prefix))
		next := func(seq []int) (int, bool) {
			// Interpolated decoding: candidates from the whole backoff
			// chain scored by the smoothed probability plus prompt
			// affinity. Pre-trained models decode this way because their
			// crawl-style corpora only partially match the standardised
			// test formatting; smoothing over all orders is what lets them
			// generalise across the style gap (fine-tuned models, whose
			// counts match the target style exactly, use longest-match
			// decoding instead — see blendLM).
			return argmaxCandidate(g.Model.Candidates(seq), func(tok int) float64 {
				p := g.Model.Prob(seq, tok)
				if p <= 0 {
					return math.Inf(-1)
				}
				return math.Log(p) + w*shapeAffinity(g.Lex.Affinity(prompt, tok), cov, seq, tok, g.Model.VocabSize())
			})
		}
		return decodeGreedy(next, prefix, maxNew, stop, stopToken)
	}
	opts := ngram.GenOptions{Stop: stop, StopToken: stopToken, Temperature: g.Temperature, TopK: g.TopK}
	if g.Temperature > 0 {
		opts.Rand = rand.New(rand.NewSource(g.Seed))
	}
	return g.Model.Generate(prefix, maxNew, opts)
}

// defaultLexWeight scales the lexical-affinity term against the n-gram
// log-probability during decoding. Values near 2 let the prompt's content
// words override the corpus-frequency prior at value positions (which is
// what attention does in the real model) while structural positions, where
// affinities are ~0, stay governed by the n-gram.
const defaultLexWeight = 2.0

// shapeAffinity turns a raw lexical affinity into the decoding bonus:
// positive affinities are damped by coverage (no repeated boosting);
// negative affinities pass through, suppressing content unrelated to the
// prompt. Special control tokens (the trailing vocabulary ids: separator,
// end-of-text, pad) are exempt — they never appear in bodies, so the
// channel has no signal about them, and suppressing them would prevent the
// model from ever ending a completion.
func shapeAffinity(a float64, cov *coverage, seq []int, tok, vocabSize int) float64 {
	if tok >= vocabSize-3 {
		return 0
	}
	if a > 0 {
		return cov.damp(seq, tok) * a
	}
	return a
}

// coverage implements the coverage damping of prompt-affinity rescoring: a
// token's positive affinity bonus decays with each time the token has
// already been emitted, preventing the degenerate loops that pure affinity
// boosting causes (the n-gram analogue of attention coverage in NMT).
type coverage struct {
	prefixLen int
}

func newCoverage(prefixLen int) *coverage { return &coverage{prefixLen: prefixLen} }

// damp returns the multiplier for tok's positive affinity given the tokens
// generated so far in seq (everything past the original prefix).
func (c *coverage) damp(seq []int, tok int) float64 {
	n := 0
	for _, t := range seq[c.prefixLen:] {
		if t == tok {
			n++
		}
	}
	switch n {
	case 0:
		return 1
	case 1:
		return 0.25
	default:
		return 0
	}
}

// chooseCandidate picks the next token from scored candidates: greedy when
// rng is nil or temperature <= 0, otherwise softmax sampling over the top-k
// scores at the given temperature.
func chooseCandidate(cands []int, score func(int) float64, temperature float64, topK int, rng *rand.Rand) (int, bool) {
	if rng == nil || temperature <= 0 {
		return argmaxCandidate(cands, score)
	}
	type scored struct {
		tok int
		s   float64
	}
	all := make([]scored, 0, len(cands))
	for _, tok := range cands {
		if v := score(tok); !math.IsInf(v, -1) {
			all = append(all, scored{tok, v})
		}
	}
	if len(all) == 0 {
		return 0, false
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].tok < all[j].tok
	})
	if topK > 0 && len(all) > topK {
		all = all[:topK]
	}
	maxs := all[0].s
	sum := 0.0
	ws := make([]float64, len(all))
	for i, c := range all {
		w := math.Exp((c.s - maxs) / temperature)
		ws[i] = w
		sum += w
	}
	r := rng.Float64() * sum
	for i, w := range ws {
		r -= w
		if r <= 0 {
			return all[i].tok, true
		}
	}
	return all[len(all)-1].tok, true
}

// argmaxCandidate picks the highest-scoring candidate (ties break on the
// smaller token id for determinism).
func argmaxCandidate(cands []int, score func(int) float64) (int, bool) {
	best, bestS := -1, math.Inf(-1)
	for _, tok := range cands {
		s := score(tok)
		if s > bestS || (s == bestS && best >= 0 && tok < best) {
			best, bestS = tok, s
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// NeuralLM adapts a neural.Model to the Generator interface. The prompt is
// ignored: the transformer attends to it natively within the prefix.
type NeuralLM struct {
	*neural.Model
	Temperature float64
	TopK        int
	Seed        int64
	// sessions, when set via EnableSessions, retains per-session decode
	// state so CompleteSession can reuse a shared token prefix.
	sessions *neural.SessionCache
	// engine, when set via EnableScheduler, continuous-batches concurrent
	// decodes through one persistent scheduling loop.
	engine *neural.Engine
}

// Complete implements Generator. Decoding uses the KV cache, which is
// bit-identical to the full forward pass but linear per token.
func (g *NeuralLM) Complete(prefix, _ []int, maxNew int, stop func([]int) bool, stopToken int) []int {
	opts := neural.GenOptions{Stop: stop, StopToken: stopToken, Temperature: g.Temperature, TopK: g.TopK}
	if g.Temperature > 0 {
		opts.Rand = rand.New(rand.NewSource(g.Seed))
	}
	return g.Model.GenerateCached(prefix, maxNew, opts)
}

// CompleteBatch implements BatchGenerator on the transformer's batched
// decode engine. Each row gets its own sampling source seeded exactly as a
// serial Complete call would, so batched and serial outputs are identical
// row for row.
func (g *NeuralLM) CompleteBatch(prefixes, _ [][]int, maxNew []int, stops []func([]int) bool, stopToken int) [][]int {
	reqs := make([]neural.BatchRequest, len(prefixes))
	for i := range prefixes {
		opts := neural.GenOptions{StopToken: stopToken, Temperature: g.Temperature, TopK: g.TopK}
		if stops != nil {
			opts.Stop = stops[i]
		}
		if g.Temperature > 0 {
			opts.Rand = rand.New(rand.NewSource(g.Seed))
		}
		reqs[i] = neural.BatchRequest{Prefix: prefixes[i], MaxNew: maxNew[i], Opts: opts}
	}
	return g.Model.GenerateBatch(reqs)
}

// Model is one NL→Ansible generation system: a tokenizer, a language model,
// an optional retrieval component, and the prompt/window policy.
//
// Once built (Pretrain/Finetune/LoadModel), a Model is frozen: Predict,
// GenerateSample and Evaluate read immutable state and derive any
// per-generation randomness and coverage tracking locally, so one Model
// instance serves concurrent requests without locking — the contract the
// serve package's worker pool relies on (see
// TestConcurrentPredictMatchesSerial).
type Model struct {
	// Name identifies the variant (Table 2 row).
	Name string
	// Tok is the BPE tokenizer shared by the zoo.
	Tok *tokenizer.Tokenizer
	// LM is the generative component.
	LM Generator
	// Retr, when non-nil, supplies memorised completions (the Codex
	// signature, and the fine-tuned nearest-neighbour memory); used when
	// its prompt similarity beats RetrThreshold.
	Retr *Memory
	// RetrThreshold is the minimum prompt similarity for a retrieval hit.
	RetrThreshold float64
	// CtxWindow is the inference context window in tokens; longer inputs
	// are left-truncated, as in the paper.
	CtxWindow int
	// Style selects the prompt formulation (name-completion vs prefix).
	Style dataset.PromptStyle
	// FewShotHint prepends "Ansible\n" on empty-context prompts, the trick
	// the paper applies to CodeGen and Codex in the few-shot setting.
	FewShotHint bool
	// MaxNewTask / MaxNewPlaybook bound generation length in tokens.
	MaxNewTask     int
	MaxNewPlaybook int
}

// defaultMax fills unset generation budgets.
func (m *Model) defaults() (maxTask, maxPB int) {
	maxTask, maxPB = m.MaxNewTask, m.MaxNewPlaybook
	if maxTask == 0 {
		maxTask = 120
	}
	if maxPB == 0 {
		maxPB = 300
	}
	return maxTask, maxPB
}

// genPlan is the resolved decoding work of one sample: either a completion
// already answered without the LM (retrieval hit) or the Complete call that
// still has to run.
type genPlan struct {
	done      bool
	text      string // valid when done
	prefix    []int
	prompt    []int
	maxNew    int
	stop      func([]int) bool
	stopToken int
}

// planSample runs everything in GenerateSample that precedes the LM call:
// prompt rendering, the retrieval channel, and context truncation.
func (m *Model) planSample(s dataset.Sample) genPlan {
	maxTask, maxPB := m.defaults()
	maxNew := maxTask
	if s.Type == dataset.NLtoPB {
		maxNew = maxPB
	}

	input := dataset.RenderInput(s, m.Style)
	if m.FewShotHint && s.Context == "" {
		input = dataset.FewShotPrefix + input
	}

	// Retrieval channel: a sufficiently similar memorised prompt returns
	// its stored completion verbatim.
	if m.Retr != nil {
		promptIDs := memoryKey(m.Tok, s.Prompt)
		ctxIDs := dataset.LeftTruncate(m.Tok.Encode(s.Context), m.CtxWindow/2)
		if val, srcIndent, ok := m.Retr.Lookup(promptIDs, ctxIDs, m.RetrThreshold); ok {
			body := m.Tok.Decode(val)
			return genPlan{done: true,
				text: dataset.ShiftIndent(body, srcIndent, dataset.NameLineIndent(s.NameLine))}
		}
	}

	ids := m.Tok.Encode(input)
	budget := m.CtxWindow - maxNew
	if budget < 8 {
		budget = 8
	}
	ids = dataset.LeftTruncate(ids, budget)

	indent := dataset.NameLineIndent(s.NameLine)
	return genPlan{
		prefix:    ids,
		prompt:    promptTokens(m.Tok, s.Prompt),
		maxNew:    maxNew,
		stop:      m.stopFunc(s.Type, indent),
		stopToken: m.Tok.Sep(),
	}
}

// finishSample turns the LM's raw token output into completion text.
func (m *Model) finishSample(out []int) string {
	text := m.Tok.Decode(out)
	text = strings.TrimSuffix(text, tokenizer.SepToken)
	text = strings.TrimSuffix(text, tokenizer.EndToken)
	return CutRepeatedLines(text)
}

// GenerateSample produces the completion text for one evaluation sample:
// the body the model writes after the name line (or after the prefix-style
// prompt). The output is raw; use dataset.TruncateFirstTask for task types.
func (m *Model) GenerateSample(s dataset.Sample) string {
	p := m.planSample(s)
	if p.done {
		return p.text
	}
	return m.finishSample(m.LM.Complete(p.prefix, p.prompt, p.maxNew, p.stop, p.stopToken))
}

// GenerateSamples resolves a batch of samples in one call. Samples answered
// by retrieval return immediately; the rest decode together through the
// LM's batched path when it implements BatchGenerator (the transformer),
// and serially otherwise (the n-gram zoo). Outputs are identical to calling
// GenerateSample per sample, in order.
func (m *Model) GenerateSamples(samples []dataset.Sample) []string {
	res := make([]string, len(samples))
	plans := make([]genPlan, len(samples))
	var pending []int
	for i, s := range samples {
		plans[i] = m.planSample(s)
		if plans[i].done {
			res[i] = plans[i].text
		} else {
			pending = append(pending, i)
		}
	}
	if len(pending) == 0 {
		return res
	}
	if bg, ok := m.LM.(BatchGenerator); ok && len(pending) > 1 {
		prefixes := make([][]int, len(pending))
		prompts := make([][]int, len(pending))
		maxNew := make([]int, len(pending))
		stops := make([]func([]int) bool, len(pending))
		for j, i := range pending {
			p := &plans[i]
			prefixes[j], prompts[j], maxNew[j], stops[j] = p.prefix, p.prompt, p.maxNew, p.stop
		}
		outs := bg.CompleteBatch(prefixes, prompts, maxNew, stops, plans[pending[0]].stopToken)
		for j, i := range pending {
			res[i] = m.finishSample(outs[j])
		}
		return res
	}
	for _, i := range pending {
		p := &plans[i]
		res[i] = m.finishSample(m.LM.Complete(p.prefix, p.prompt, p.maxNew, p.stop, p.stopToken))
	}
	return res
}

// CutRepeatedLines truncates a completion at the first exactly-repeated
// complete line, the guard against degenerate repetition loops (repeated
// mapping keys cannot occur in valid YAML at one level, and repeated lines
// across levels are vanishingly rare in real tasks).
func CutRepeatedLines(text string) string {
	lines := strings.Split(text, "\n")
	seen := make(map[string]bool, len(lines))
	for i, l := range lines {
		if i == len(lines)-1 && !strings.HasSuffix(text, "\n") {
			break // incomplete trailing line
		}
		if strings.TrimSpace(l) == "" {
			continue
		}
		if seen[l] {
			return strings.Join(lines[:i], "\n") + "\n"
		}
		seen[l] = true
	}
	return text
}

// Memory is a nearest-neighbour store over (prompt, context) → completion
// examples. Lookup keys on prompt cosine similarity and re-ranks the
// qualifying hits by context overlap; the context view is truncated to the
// model's window, which is how the paper's context-window ablation
// manifests in this channel.
type Memory struct {
	ix      *retrieval.Index
	ctxBags []map[int]bool
	indents []int
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{ix: retrieval.New()} }

// Add stores one example; indent is the source sample's task indentation,
// so retrieved bodies can be re-indented when spliced into a differently
// nested context.
func (mem *Memory) Add(promptIDs, ctxIDs, value []int, indent int) {
	mem.ix.Add(promptIDs, value)
	mem.ctxBags = append(mem.ctxBags, tokenBag(ctxIDs))
	mem.indents = append(mem.indents, indent)
}

// Build finalises the memory; call after the last Add.
func (mem *Memory) Build() { mem.ix.Build() }

// Len returns the number of stored examples.
func (mem *Memory) Len() int { return mem.ix.Len() }

// Lookup returns the completion whose prompt matches with similarity >=
// threshold, breaking ties between similar prompts by context overlap, along
// with the indentation the stored body was written at.
func (mem *Memory) Lookup(promptIDs, ctxIDs []int, threshold float64) (value []int, indent int, ok bool) {
	hits := mem.ix.Query(promptIDs, 8)
	qBag := tokenBag(ctxIDs)
	bestIdx, bestScore := -1, -1.0
	for _, h := range hits {
		if h.Score < threshold {
			break // hits are sorted by score
		}
		// Prompt similarity dominates; context overlap breaks ties.
		score := h.Score + 0.05*jaccard(qBag, mem.ctxBags[h.Index])
		if score > bestScore {
			bestIdx, bestScore = h.Index, score
		}
	}
	if bestIdx < 0 {
		return nil, 0, false
	}
	return mem.ix.Entry(bestIdx).Value, mem.indents[bestIdx], true
}

func tokenBag(ids []int) map[int]bool {
	bag := make(map[int]bool, len(ids))
	for _, id := range ids {
		bag[id] = true
	}
	return bag
}

func jaccard(a, b map[int]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for t := range a {
		if b[t] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// stopFunc halts generation once the decoded completion has clearly left
// the snippet being generated: a dedent to or beyond the task's own indent
// (task types), or a blank line (both), or a second document marker
// (playbooks).
func (m *Model) stopFunc(t dataset.GenType, indent int) func([]int) bool {
	return func(generated []int) bool {
		if len(generated)%8 != 0 {
			return false // only inspect every 8 tokens; decoding is O(n)
		}
		text := m.Tok.Decode(generated)
		nl := strings.LastIndexByte(text, '\n')
		if nl < 0 {
			return false
		}
		complete := text[:nl]
		for _, line := range strings.Split(complete, "\n") {
			if strings.TrimSpace(line) == "" {
				return true
			}
			if t != dataset.NLtoPB {
				ind := len(line) - len(strings.TrimLeft(line, " "))
				if ind <= indent {
					return true
				}
			}
			if t == dataset.NLtoPB && strings.HasPrefix(line, "---") {
				return true
			}
		}
		return false
	}
}

// Predict generates a completion for a natural-language prompt with an
// optional Ansible context, the public one-shot API used by the serving
// layer and the examples. The context must be a (possibly empty) sequence
// of tasks or a playbook prefix; the prompt becomes the new task's name.
//
// Unlike the raw evaluation path, Predict post-processes its suggestion the
// way a product deployment would (the paper's ethics section anticipates
// "basic post-processing analysis" before productisation): when the sampled
// body is empty or fails the strict schema, the nearest memorised
// completion is offered instead, if one exists at all.
func (m *Model) Predict(context, prompt string) string {
	s, nameLine, indent := m.predictSample(context, prompt)
	return m.finishPredict(s, nameLine, indent, m.GenerateSample(s))
}

// PredictBatch answers several independent requests in one decode: the
// underlying sequences advance together through the transformer's batched
// step kernels (serial per request for non-batching LMs). Outputs are
// identical to calling Predict per request, in order. contexts and prompts
// must have equal length.
func (m *Model) PredictBatch(contexts, prompts []string) []string {
	samples := make([]dataset.Sample, len(prompts))
	nameLines := make([]string, len(prompts))
	indents := make([]int, len(prompts))
	for i := range prompts {
		samples[i], nameLines[i], indents[i] = m.predictSample(contexts[i], prompts[i])
	}
	raws := m.GenerateSamples(samples)
	res := make([]string, len(prompts))
	for i := range raws {
		res[i] = m.finishPredict(samples[i], nameLines[i], indents[i], raws[i])
	}
	return res
}

// predictSample builds the evaluation sample behind one Predict request.
func (m *Model) predictSample(context, prompt string) (dataset.Sample, string, int) {
	indent := 0
	if strings.Contains(context, "tasks:") {
		indent = 4
	}
	nameLine := strings.Repeat(" ", indent) + "- name: " + prompt
	s := dataset.Sample{
		Type:     dataset.TNLtoT,
		Context:  context,
		Prompt:   prompt,
		NameLine: nameLine,
	}
	if context == "" {
		s.Type = dataset.NLtoT
	}
	return s, nameLine, indent
}

// finishPredict applies Predict's product post-processing to a raw sampled
// completion: first-task truncation, schema validation, and the memorised
// fallback for invalid bodies.
func (m *Model) finishPredict(s dataset.Sample, nameLine string, indent int, raw string) string {
	body := dataset.TruncateFirstTask(raw, indent)
	if !m.bodyValid(nameLine, body, indent) {
		if fallback, ok := m.nearestBody(s, indent); ok && m.bodyValid(nameLine, fallback, indent) {
			body = fallback
		}
	}
	return nameLine + "\n" + body
}

// bodyValid reports whether name line + body parses and passes the strict
// task schema.
func (m *Model) bodyValid(nameLine, body string, indent int) bool {
	if strings.TrimSpace(body) == "" {
		return false
	}
	text := dataset.StripIndent(nameLine+"\n"+body, indent)
	node, err := yaml.Parse(text)
	if err != nil {
		return false
	}
	return ansible.NewValidator().Valid(node)
}

// nearestBody returns the closest memorised completion for the sample's
// prompt with a permissive threshold, re-indented to the requested nesting.
func (m *Model) nearestBody(s dataset.Sample, indent int) (string, bool) {
	if m.Retr == nil {
		return "", false
	}
	promptIDs := memoryKey(m.Tok, s.Prompt)
	ctxIDs := dataset.LeftTruncate(m.Tok.Encode(s.Context), m.CtxWindow/2)
	val, srcIndent, ok := m.Retr.Lookup(promptIDs, ctxIDs, 0.3)
	if !ok {
		return "", false
	}
	return dataset.ShiftIndent(m.Tok.Decode(val), srcIndent, indent), true
}
