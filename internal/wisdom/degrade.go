package wisdom

import (
	"time"

	"wisdom/internal/resilience"
)

// Predictor is the one-shot prediction interface the degradation chain
// composes (the same shape the serve package consumes); *Model satisfies it.
type Predictor interface {
	Predict(context, prompt string) string
}

// ChainConfig tunes a degradation Chain. The zero value of each field
// selects the documented default.
type ChainConfig struct {
	// Timeout bounds each generative tier's Predict call; a tier that
	// exceeds it is abandoned and the next tier answers (default 1s).
	Timeout time.Duration
	// Breaker, when set, guards the primary tier: while it is open the
	// chain skips straight to the fallback, and primary outcomes
	// (success / timeout / panic) feed it. Per-backend: use one breaker
	// per chain.
	Breaker *resilience.Breaker
	// OnDegrade, when set, observes every degraded answer with the tier
	// that served it ("fallback", "retrieval" or "none"); the serving
	// layer hangs its wisdom_degraded_responses_total counter here.
	OnDegrade func(tier string)
}

// Chain is the graceful-degradation path of the serving stack: a primary
// predictor (the expensive, best-quality model — the transformer tier), a
// cheaper generative fallback (the n-gram tier), and a retrieval-only last
// resort. A request flows down the chain when the tier above it times out,
// panics, or is circuit-broken; any answer not produced by the primary is
// degraded, which the serving layer surfaces as "degraded":true so clients
// can tell a best-effort suggestion from a first-class one.
//
// The chain is safe for concurrent use when its tiers are (every predictor
// in this repository is — inference reads frozen state only). A timed-out
// tier's goroutine is abandoned, not cancelled: generation is pure
// compute with no cancellation points, so the result is discarded when it
// eventually lands and the goroutine exits. That briefly costs a worker's
// worth of CPU beyond the pool bound — the standard hedging trade.
type Chain struct {
	primary  Predictor
	fallback Predictor
	retrieve func(context, prompt string) (string, bool)
	cfg      ChainConfig
}

// NewChain composes a degradation chain. fallback and retrieve may each be
// nil; a chain with neither answers "" once the primary fails, still tagged
// degraded.
func NewChain(primary Predictor, fallback Predictor, retrieve func(context, prompt string) (string, bool), cfg ChainConfig) *Chain {
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	return &Chain{primary: primary, fallback: fallback, retrieve: retrieve, cfg: cfg}
}

// NewModelChain wires the standard chain for a served model: primary's full
// prediction path, fallback's (when non-nil), and the retrieval memory of
// whichever model has one (primary preferred — its memory is the fine-tuned
// one) as the last resort.
func NewModelChain(primary, fallback *Model, cfg ChainConfig) *Chain {
	var retrieve func(context, prompt string) (string, bool)
	switch {
	case primary.Retr != nil:
		retrieve = primary.RetrievalPredict
	case fallback != nil && fallback.Retr != nil:
		retrieve = fallback.RetrievalPredict
	}
	var fb Predictor
	if fallback != nil {
		fb = fallback
	}
	return NewChain(primary, fb, retrieve, cfg)
}

// Breaker returns the breaker guarding the primary tier (nil when unset).
func (c *Chain) Breaker() *resilience.Breaker { return c.cfg.Breaker }

// Predict implements the serving predictor interface, discarding the
// degradation flag (callers that care use PredictDegraded).
func (c *Chain) Predict(context, prompt string) string {
	out, _ := c.PredictDegraded(context, prompt)
	return out
}

// PredictDegraded answers one request through the chain and reports whether
// the answer came from a degraded tier.
func (c *Chain) PredictDegraded(context, prompt string) (string, bool) {
	b := c.cfg.Breaker
	if b == nil || b.Allow() {
		out, err := callTier(c.primary, context, prompt, c.cfg.Timeout)
		if b != nil {
			b.Record(err)
		}
		if err == nil {
			return out, false
		}
	}
	if c.fallback != nil {
		if out, err := callTier(c.fallback, context, prompt, c.cfg.Timeout); err == nil {
			c.degraded("fallback")
			return out, true
		}
	}
	if c.retrieve != nil {
		if out, ok := c.retrieve(context, prompt); ok {
			c.degraded("retrieval")
			return out, true
		}
	}
	c.degraded("none")
	return "", true
}

func (c *Chain) degraded(tier string) {
	if c.cfg.OnDegrade != nil {
		c.cfg.OnDegrade(tier)
	}
}

// tierError is a chain-internal failure of one tier.
type tierError string

func (e tierError) Error() string { return string(e) }

const (
	errTimeout = tierError("wisdom: predictor tier timed out")
	errPanic   = tierError("wisdom: predictor tier panicked")
)

// callTier runs one tier's Predict bounded by the timeout. The call runs on
// its own goroutine; on timeout the goroutine is abandoned and its eventual
// result discarded (see the Chain doc comment for the trade).
func callTier(p Predictor, context, prompt string, timeout time.Duration) (string, error) {
	type result struct {
		out string
		err error
	}
	ch := make(chan result, 1) // buffered: an abandoned tier still exits
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- result{err: errPanic}
			}
		}()
		ch <- result{out: p.Predict(context, prompt)}
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.out, r.err
	case <-t.C:
		return "", errTimeout
	}
}

// RetrievalPredict answers a request from the nearest memorised completion
// alone, with the permissive fallback threshold and Predict's validation:
// the last-resort tier of a degradation chain. ok is false when the model
// has no retrieval memory, no neighbour qualifies, or the best neighbour
// fails the task schema.
func (m *Model) RetrievalPredict(context, prompt string) (string, bool) {
	s, nameLine, indent := m.predictSample(context, prompt)
	body, ok := m.nearestBody(s, indent)
	if !ok || !m.bodyValid(nameLine, body, indent) {
		return "", false
	}
	return nameLine + "\n" + body, true
}
