package wisdom

import (
	"fmt"
	"math"
	"math/rand"

	"wisdom/internal/corpus"
	"wisdom/internal/dataset"
	"wisdom/internal/lexical"
	"wisdom/internal/ngram"
	"wisdom/internal/tokenizer"
)

// VariantID names one row of Table 2.
type VariantID string

// The model zoo of the paper (Table 2): three CodeGen checkpoints, Codex,
// and the four Wisdom variants introduced by the paper.
const (
	CodeGenNL          VariantID = "codegen-nl"
	CodeGenMulti       VariantID = "codegen-multi"
	CodeGenMono        VariantID = "codegen-mono"
	CodexDavinci       VariantID = "codex-davinci-002"
	WisdomAnsible      VariantID = "wisdom-ansible"
	WisdomYaml         VariantID = "wisdom-yaml"
	WisdomAnsibleMulti VariantID = "wisdom-ansible-multi"
	WisdomYamlMulti    VariantID = "wisdom-yaml-multi"
)

// Variant describes a zoo member: which pre-training corpora it sees
// (Table 2 columns) and its capacity class.
type Variant struct {
	ID      VariantID
	Display string
	// Pre-training corpus mix (Table 2 checkmarks).
	Pile, BigQuery, BigPython, AnsibleYAML, GenericYAML bool
	// SizeLabel is the paper's parameter-count label.
	SizeLabel string
	// Order is the n-gram order standing in for model capacity.
	Order int
	// Retrieval enables the memorisation channel (Codex saw Galaxy).
	Retrieval bool
}

// Variants returns the zoo in the paper's Table 2/3 order.
func Variants() []Variant {
	return []Variant{
		{ID: CodeGenNL, Display: "CodeGen-NL", Pile: true, SizeLabel: "350M", Order: 6},
		{ID: CodeGenMono, Display: "CodeGen-Mono", Pile: true, BigQuery: true, BigPython: true, SizeLabel: "350M", Order: 6},
		{ID: CodeGenMulti, Display: "CodeGen-Multi", Pile: true, BigQuery: true, SizeLabel: "350M", Order: 6},
		{ID: CodexDavinci, Display: "Codex-Davinci-002", Pile: true, BigQuery: true, BigPython: true, SizeLabel: "175B", Order: 7, Retrieval: true},
		{ID: WisdomAnsible, Display: "Wisdom-Ansible", AnsibleYAML: true, SizeLabel: "350M", Order: 6},
		{ID: WisdomYaml, Display: "Wisdom-Yaml", AnsibleYAML: true, GenericYAML: true, SizeLabel: "350M", Order: 6},
		{ID: WisdomAnsibleMulti, Display: "Wisdom-Ansible-Multi", Pile: true, BigQuery: true, AnsibleYAML: true, SizeLabel: "350M", Order: 6},
		{ID: WisdomYamlMulti, Display: "Wisdom-Yaml-Multi", Pile: true, BigQuery: true, AnsibleYAML: true, GenericYAML: true, SizeLabel: "350M", Order: 6},
	}
}

// VariantByID returns the zoo entry with the given id.
func VariantByID(id VariantID) (Variant, bool) {
	for _, v := range Variants() {
		if v.ID == id {
			return v, true
		}
	}
	return Variant{}, false
}

// Corpora holds the generated pre-training corpora shared by the zoo.
type Corpora struct {
	Pile      []corpus.File
	BigQuery  []corpus.File
	BigPython []corpus.File
	// Ansible is the pre-training Ansible slice (GitLab + GitHub + GBQ).
	Ansible []corpus.File
	// Generic is the generic-YAML pre-training slice.
	Generic []corpus.File
}

// CorporaConfig sizes the generated corpora. The zero value is replaced by
// DefaultCorporaConfig.
type CorporaConfig struct {
	Seed      int64
	Pile      int
	BigQuery  int
	BigPython int
	GitLab    int
	GitHub    int
	Generic   int
}

// DefaultCorporaConfig returns corpus sizes that train all zoo members in a
// few seconds while preserving the Table 1 source ratios (GitHub Ansible ≫
// GitLab; generic ≈ 2× GitHub Ansible).
func DefaultCorporaConfig() CorporaConfig {
	return CorporaConfig{
		Seed:      1,
		Pile:      1200,
		BigQuery:  1200,
		BigPython: 600,
		GitLab:    120,
		GitHub:    2000,
		Generic:   4000,
	}
}

// BuildCorpora generates all pre-training corpora.
func BuildCorpora(cfg CorporaConfig) *Corpora {
	if cfg.Pile == 0 {
		cfg = DefaultCorporaConfig()
	}
	c := &Corpora{
		Pile:      corpus.PileSim(cfg.Seed+100, cfg.Pile),
		BigQuery:  corpus.BigQuerySim(cfg.Seed+200, cfg.BigQuery),
		BigPython: corpus.BigPythonSim(cfg.Seed+300, cfg.BigPython),
		Generic:   corpus.GitHubGBQGeneric(cfg.Seed+400, cfg.Generic),
	}
	c.Ansible = append(corpus.GitLabAnsible(cfg.Seed+500, cfg.GitLab),
		corpus.GitHubGBQAnsible(cfg.Seed+600, cfg.GitHub)...)
	return c
}

// Mix returns the deduplicated file list a variant pre-trains on.
func (c *Corpora) Mix(v Variant) []corpus.File {
	var files []corpus.File
	if v.Pile {
		files = append(files, c.Pile...)
	}
	if v.BigQuery {
		files = append(files, c.BigQuery...)
	}
	if v.BigPython {
		files = append(files, c.BigPython...)
	}
	if v.AnsibleYAML {
		files = append(files, c.Ansible...)
	}
	if v.GenericYAML {
		files = append(files, c.Generic...)
	}
	return dataset.DedupFiles(files)
}

// All returns every corpus file, the tokenizer-training mixture.
func (c *Corpora) All() []corpus.File {
	var files []corpus.File
	files = append(files, c.Pile...)
	files = append(files, c.BigQuery...)
	files = append(files, c.BigPython...)
	files = append(files, c.Ansible...)
	files = append(files, c.Generic...)
	return files
}

// TrainTokenizer fits the shared BPE tokenizer on a sample of all corpora.
func TrainTokenizer(c *Corpora, vocabSize int) (*tokenizer.Tokenizer, error) {
	files := c.All()
	texts := make([]string, 0, len(files))
	for i, f := range files {
		// A systematic sample keeps tokenizer training fast.
		if i%3 == 0 {
			texts = append(texts, f.Text)
		}
	}
	return tokenizer.Train(texts, vocabSize)
}

// Pretrain builds the pre-trained (few-shot) model for a variant: an n-gram
// LM over the variant's corpus mix. Variants that combine a CodeGen-style
// base corpus with YAML ("initialised with the weights of CodeGen-Multi and
// extended the pre-training") are modelled as continued training: the YAML
// counts form the dominant recent model, blended with the frozen base —
// exactly the recency effect checkpoint continuation has, rather than a
// diluting union. CodeGen/Codex variants get the "Ansible\n" few-shot hint
// the paper applies; Codex additionally gets the retrieval channel over the
// Galaxy slice it "likely saw" (leak), which reproduces its outlier Exact
// Match.
func Pretrain(v Variant, c *Corpora, tok *tokenizer.Tokenizer, ctxWindow int, leak []dataset.Sample) (*Model, error) {
	continued := v.AnsibleYAML && (v.Pile || v.BigQuery || v.BigPython)

	var baseFiles, recentFiles []corpus.File
	if continued {
		baseVariant := v
		baseVariant.AnsibleYAML, baseVariant.GenericYAML = false, false
		baseFiles = c.Mix(baseVariant)
		recentVariant := Variant{AnsibleYAML: true, GenericYAML: v.GenericYAML}
		recentFiles = c.Mix(recentVariant)
	} else {
		recentFiles = c.Mix(v)
	}

	train := func(files []corpus.File) (*ngram.Model, *lexical.Model, error) {
		lm, err := ngram.New(v.Order, tok.VocabSize())
		if err != nil {
			return nil, nil, err
		}
		// The lexical channel learns prompt→body statistics from whatever
		// name/body pairs exist in the corpus — none for pure NL/code
		// corpora, plenty for the Ansible corpora. This is where the
		// paper's data-mix orderings come from.
		lex := lexical.New(tok.VocabSize())
		for _, f := range files {
			ids := tok.Encode(f.Text)
			lm.Add(append(ids, tok.Sep()))
			if f.IsAnsible() {
				for _, sm := range dataset.ExtractSamples(f) {
					lex.AddPair(promptTokens(tok, sm.Prompt), tok.Encode(sm.Target))
				}
			}
		}
		return lm, lex, nil
	}

	recentLM, recentLex, err := train(recentFiles)
	if err != nil {
		return nil, err
	}
	var gen Generator = &NgramLM{Model: recentLM, Lex: recentLex}
	if continued {
		baseLM, baseLex, err := train(baseFiles)
		if err != nil {
			return nil, err
		}
		// The base stays almost silent (continued training overwrites it)
		// but still supplies fallback knowledge for unseen contexts and
		// extra lexical pairs from its Ansible admixture.
		gen = &blendLM{
			primary: recentLM, base: baseLM, weight: 0.98,
			lexPrimary: recentLex, lexBase: baseLex,
			baseMargin: 2, interpolated: true,
		}
	}
	m := &Model{
		Name:        v.Display + " " + v.SizeLabel,
		Tok:         tok,
		LM:          gen,
		CtxWindow:   ctxWindow,
		Style:       dataset.NameCompletion,
		FewShotHint: !isWisdom(v.ID),
	}
	if v.Retrieval && len(leak) > 0 {
		m.Retr = buildMemory(tok, leak, ctxWindow)
		m.RetrThreshold = 0.98
	}
	return m, nil
}

func isWisdom(id VariantID) bool {
	switch id {
	case WisdomAnsible, WisdomYaml, WisdomAnsibleMulti, WisdomYamlMulti:
		return true
	}
	return false
}

// FinetuneConfig controls fine-tuning.
type FinetuneConfig struct {
	// Window is the context window in tokens (512/1024/2048 in Table 4);
	// it limits both the retrieval key and inference input.
	Window int
	// Style is the prompt formulation (NameCompletion, or PrefixPrompt for
	// the ablation row).
	Style dataset.PromptStyle
	// Fraction uses only the first fraction of the training samples
	// (0 < Fraction <= 1; 0 means all), the data-ablation knob.
	Fraction float64
	// Weight repeats each fine-tuning sample this many times relative to
	// pre-training counts (default 3), the "largely boost" of §Finetuning.
	Weight int
	// RetrievalThreshold for the fine-tuned nearest-neighbour memory
	// (default 0.9 on prompt cosine similarity).
	RetrievalThreshold float64
}

// Finetune adapts a pre-trained model to the NL→Ansible task: the LM keeps
// training on the rendered samples, and a nearest-neighbour memory over the
// fine-tuning set (window-truncated keys) provides the strong
// prompt-conditioned behaviour fine-tuning creates.
func Finetune(pre *Model, train []dataset.Sample, cfg FinetuneConfig) (*Model, error) {
	// The fine-tuning base is the pre-trained count table and lexical
	// channel: directly for plain variants, or the dominant (recent)
	// component for continued-pretraining variants, whose original base
	// corpus contributes negligibly after two rounds of continuation.
	var baseLM *ngram.Model
	var baseLex *lexical.Model
	switch lm := pre.LM.(type) {
	case *NgramLM:
		baseLM, baseLex = lm.Model, lm.Lex
	case *blendLM:
		baseLM, baseLex = lm.primary, lm.lexPrimary
	default:
		return nil, fmt.Errorf("wisdom: finetune requires an n-gram base model")
	}
	if baseLM == nil {
		return nil, fmt.Errorf("wisdom: finetune base model is empty")
	}
	if cfg.Window == 0 {
		cfg.Window = 1024
	}
	if cfg.Weight == 0 {
		cfg.Weight = 3
	}
	if cfg.RetrievalThreshold == 0 {
		cfg.RetrievalThreshold = 0.9
	}
	if cfg.Fraction > 0 && cfg.Fraction < 1 {
		n := int(float64(len(train)) * cfg.Fraction)
		if n < 1 {
			n = 1
		}
		train = train[:n]
	}

	// Train a task-specialised model on the rendered samples and
	// interpolate with the frozen pre-trained base at generation time —
	// the n-gram analogue of initialising fine-tuning from a pre-trained
	// checkpoint: the base's knowledge keeps contributing wherever the
	// fine-tuning counts are thin, so better pre-training still shows
	// after fine-tuning (the effect Table 4 measures across variants).
	ft, err := ngram.New(baseLM.Order(), baseLM.VocabSize())
	if err != nil {
		return nil, err
	}
	ftLex := lexical.New(baseLM.VocabSize())
	for _, s := range train {
		text := dataset.RenderFull(s, cfg.Style)
		ids := pre.Tok.Encode(text)
		ids = dataset.LeftTruncate(ids, cfg.Window)
		for i := 0; i < cfg.Weight; i++ {
			ft.Add(append(ids, pre.Tok.Sep()))
		}
		ftLex.AddPair(promptTokens(pre.Tok, s.Prompt), pre.Tok.Encode(s.Target))
	}

	m := &Model{
		Name: pre.Name + " (fine-tuned)",
		Tok:  pre.Tok,
		LM: &blendLM{
			primary: ft, base: baseLM, weight: 0.85,
			lexPrimary: ftLex, lexBase: baseLex,
		},
		CtxWindow: cfg.Window,
		Style:     cfg.Style,
	}
	// The nearest-neighbour memory implements the name-anchored completion
	// of Eq. 2: a memorised body can be spliced in exactly because the
	// name line marks where the body starts. The prefix formulation has no
	// such anchor, so the ablation row runs without it — one of the two
	// mechanisms behind the formulation's large win in Table 4.
	if cfg.Style == dataset.NameCompletion {
		m.Retr = buildMemory(pre.Tok, train, cfg.Window)
		m.RetrThreshold = cfg.RetrievalThreshold
	}
	return m, nil
}

// FinetuneWithValidation fine-tunes once per candidate blend weight and
// keeps the model with the best validation BLEU — the reproduction's
// analogue of the paper's checkpoint selection ("We used the BLEU score on
// the validation set to determine the best checkpoint"): the n-gram has no
// training epochs, so the selected hyperparameter is the base/fine-tuned
// interpolation weight instead.
func FinetuneWithValidation(pre *Model, train, valid []dataset.Sample, cfg FinetuneConfig, validLimit int) (*Model, float64, error) {
	weights := []float64{0.7, 0.85, 0.95}
	var best *Model
	bestBLEU := -1.0
	for _, w := range weights {
		m, err := Finetune(pre, train, cfg)
		if err != nil {
			return nil, 0, err
		}
		if blend, ok := m.LM.(*blendLM); ok {
			blend.weight = w
		}
		res := Evaluate(m, valid, validLimit)
		if res.Overall.BLEU > bestBLEU {
			best, bestBLEU = m, res.Overall.BLEU
		}
	}
	return best, bestBLEU, nil
}

// SetSampling switches a model's language-model component from greedy
// decoding to temperature sampling (topK 0 samples over all candidates).
// The retrieval memory is unaffected: memorised completions stay exact.
func SetSampling(m *Model, temperature float64, topK int, seed int64) {
	switch lm := m.LM.(type) {
	case *NgramLM:
		lm.Temperature, lm.TopK, lm.Seed = temperature, topK, seed
	case *blendLM:
		lm.temperature, lm.topK, lm.seed = temperature, topK, seed
	case *NeuralLM:
		lm.Temperature, lm.TopK, lm.Seed = temperature, topK, seed
	}
}

// buildMemory indexes samples by prompt with window-limited context bags.
func buildMemory(tok *tokenizer.Tokenizer, samples []dataset.Sample, window int) *Memory {
	mem := NewMemory()
	for _, s := range samples {
		ctx := dataset.LeftTruncate(tok.Encode(s.Context), window/2)
		mem.Add(memoryKey(tok, s.Prompt), ctx, tok.Encode(s.Target), dataset.NameLineIndent(s.NameLine))
	}
	mem.Build()
	return mem
}

// blendLM decodes greedily from the token-level interpolation
// weight*P_finetuned + (1-weight)*P_pretrained, with both lexical channels
// (fine-tuned and pre-trained) conditioning on the prompt, so the
// pre-trained base keeps contributing after fine-tuning — the n-gram
// analogue of initialising from a checkpoint.
type blendLM struct {
	primary    *ngram.Model
	base       *ngram.Model
	weight     float64
	lexPrimary *lexical.Model
	lexBase    *lexical.Model
	// baseMargin is how many context tokens longer the base's match must
	// be before it may supply the candidate set. Fine-tuned models use 0
	// (the pre-trained base genuinely helps wherever it matches longer);
	// continued pre-training uses a positive margin, because continuation
	// training overwrites the base's behaviour except where the recent
	// data has nothing at all.
	baseMargin int
	// interpolated switches decoding from longest-match to smoothed
	// interpolation over the union candidate set. Pre-trained models
	// decode interpolated (their crawl-style counts only partially match
	// the standardised test formatting, and smoothing bridges the style
	// gap); fine-tuned models decode longest-match (their counts match the
	// target style exactly, and the crisper structure wins).
	interpolated bool
	// temperature/topK/seed enable sampling instead of greedy decoding.
	temperature float64
	topK        int
	seed        int64
}

// Complete implements Generator.
func (b *blendLM) Complete(prefix, prompt []int, maxNew int, stop func([]int) bool, stopToken int) []int {
	cov := newCoverage(len(prefix))
	var rng *rand.Rand
	if b.temperature > 0 {
		rng = rand.New(rand.NewSource(b.seed))
	}
	if b.interpolated {
		next := func(seq []int) (int, bool) {
			seen := make(map[int]bool)
			var cands []int
			for _, tok := range b.primary.Candidates(seq) {
				if !seen[tok] {
					seen[tok] = true
					cands = append(cands, tok)
				}
			}
			for _, tok := range b.base.Candidates(seq) {
				if !seen[tok] {
					seen[tok] = true
					cands = append(cands, tok)
				}
			}
			return chooseCandidate(cands, func(tok int) float64 {
				pr := b.weight*b.primary.Prob(seq, tok) + (1-b.weight)*b.base.Prob(seq, tok)
				if pr <= 0 {
					return math.Inf(-1)
				}
				// Pre-trained decoding uses the plain affinity weight, like
				// NgramLM's interpolated path.
				a := 0.0
				if b.lexPrimary != nil && b.lexPrimary.Trained() {
					a += b.weight * b.lexPrimary.Affinity(prompt, tok)
				}
				if b.lexBase != nil && b.lexBase.Trained() {
					a += (1 - b.weight) * b.lexBase.Affinity(prompt, tok)
				}
				return math.Log(pr) + shapeAffinity(a, cov, seq, tok, b.primary.VocabSize())
			}, b.temperature, b.topK, rng)
		}
		return decodeGreedy(next, prefix, maxNew, stop, stopToken)
	}
	next := func(seq []int) (int, bool) {
		// Longest-match decoding across the two count tables: the model
		// that has seen the longer context suffix supplies the candidate
		// set (ties go to the fine-tuned counts, which dominate behaviour
		// after fine-tuning, as in the paper); the lexical channels then
		// select prompt-appropriate content among the candidates.
		kp, pCounts, pTotal := b.primary.LongestContext(seq)
		kb, bCounts, bTotal := b.base.LongestContext(seq)
		counts, total := pCounts, pTotal
		if kb > kp+b.baseMargin {
			counts, total = bCounts, bTotal
		}
		if total == 0 {
			if bTotal == 0 {
				return 0, false
			}
			counts, total = bCounts, bTotal
		}
		cands := make([]int, 0, len(counts))
		for tok := range counts {
			cands = append(cands, tok)
		}
		return chooseCandidate(cands, func(tok int) float64 {
			score := math.Log(float64(counts[tok]) / float64(total))
			return score + b.affinityBonus(prompt, cov, seq, tok)
		}, b.temperature, b.topK, rng)
	}
	return decodeGreedy(next, prefix, maxNew, stop, stopToken)
}

// affinityBonus blends both lexical channels and applies coverage shaping.
func (b *blendLM) affinityBonus(prompt []int, cov *coverage, seq []int, tok int) float64 {
	if len(prompt) == 0 {
		return 0
	}
	a := 0.0
	if b.lexPrimary != nil && b.lexPrimary.Trained() {
		a += b.weight * b.lexPrimary.Affinity(prompt, tok)
	}
	if b.lexBase != nil && b.lexBase.Trained() {
		a += (1 - b.weight) * b.lexBase.Affinity(prompt, tok)
	}
	return defaultLexWeight * shapeAffinity(a, cov, seq, tok, b.primary.VocabSize())
}
