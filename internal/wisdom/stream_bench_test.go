package wisdom

import (
	"context"
	"sync"
	"testing"
	"time"
)

// The streaming benchmarks back BENCH_PR6.json: they measure what a
// streaming client experiences — time to the first delta (reported as
// ttft-ns/op) — against the total generation latency (ns/op), on the same
// model the unary benchmark runs. The point of streaming is the gap
// between the two: the first committed line leaves the decode loop long
// before the last token lands.

var (
	benchStreamOnce  sync.Once
	benchStreamModel *Model
)

func benchModel(b *testing.B) *Model {
	b.Helper()
	benchStreamOnce.Do(func() { benchStreamModel = streamTestModel(b) })
	return benchStreamModel
}

// BenchmarkPredictStream runs the streamed prediction path end to end;
// ns/op is the full generation, ttft-ns/op the wait for the first delta
// (the prompt-derived name line, emitted before decoding starts), and
// first-body-ns/op the wait for the first *generated* delta — the honest
// time-to-first-token of the model itself.
func BenchmarkPredictStream(b *testing.B) {
	m := benchModel(b)
	ctx := context.Background()
	var ttft, firstBody time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		n := 0
		m.PredictStream(ctx, "", "Install nginx", func(string) {
			n++
			switch n {
			case 1:
				ttft += time.Since(start)
			case 2:
				firstBody += time.Since(start)
			}
		})
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(ttft.Nanoseconds())/float64(b.N), "ttft-ns/op")
		b.ReportMetric(float64(firstBody.Nanoseconds())/float64(b.N), "first-body-ns/op")
	}
}

// BenchmarkPredictUnary is the buffered baseline on the same model: the
// client sees nothing until the whole answer is ready, so its effective
// time-to-first-byte IS the total latency.
func BenchmarkPredictUnary(b *testing.B) {
	m := benchModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict("", "Install nginx")
	}
}
