package wisdom

import (
	"strings"
	"testing"

	"wisdom/internal/dataset"
	"wisdom/internal/neural"
	"wisdom/internal/tokenizer"
)

// TestNeuralBackedModel wires the transformer into the wisdom.Model
// generation pipeline: the architecture-faithful path of the reproduction.
func TestNeuralBackedModel(t *testing.T) {
	// A tiny memorisable corpus: one task pattern repeated.
	task := "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n"
	texts := []string{task, task, task, task}
	tok, err := tokenizer.Train(texts, 300)
	if err != nil {
		t.Fatal(err)
	}
	const ctx = 64
	nm, err := neural.NewModel(neural.Config{
		Vocab: tok.VocabSize(), Ctx: ctx, Dim: 32, Heads: 2, Layers: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	seqs := dataset.PackFiles(tok, texts, ctx)
	nm.Train(seqs, neural.TrainConfig{Epochs: 120, LR: 3e-3, BatchSize: 4, Seed: 1})

	m := &Model{
		Name:      "neural-test",
		Tok:       tok,
		LM:        &NeuralLM{Model: nm},
		CtxWindow: ctx,
		Style:     dataset.NameCompletion,
		// Leave room for the completion inside the tiny context.
		MaxNewTask: 28,
	}
	s := dataset.Sample{
		Type:     dataset.NLtoT,
		Prompt:   "Install nginx",
		NameLine: "- name: Install nginx",
	}
	out := m.GenerateSample(s)
	if !strings.Contains(out, "ansible.builtin.apt") {
		t.Errorf("neural-backed generation did not reproduce the memorised task:\n%q", out)
	}
	if !strings.Contains(out, "nginx") {
		t.Errorf("completion lost the package name:\n%q", out)
	}
}

func TestNgramLMSamplingPath(t *testing.T) {
	// The unconditioned (no-lexical) path with temperature sampling.
	r := getRig(t)
	m := pretrain(t, r, CodeGenNL)
	ng := m.LM.(*NgramLM)
	sampling := &NgramLM{Model: ng.Model, Temperature: 0.8, TopK: 10, Seed: 3}
	prefix := r.tok.Encode("- name: Install nginx\n")
	a := sampling.Complete(prefix, nil, 20, nil, -1)
	b := sampling.Complete(prefix, nil, 20, nil, -1)
	if len(a) == 0 {
		t.Fatal("sampling produced nothing")
	}
	// Same seed: reproducible.
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed sampling diverged")
		}
	}
}

func TestDefaultCorporaConfig(t *testing.T) {
	cfg := DefaultCorporaConfig()
	if cfg.Generic != 2*cfg.GitHub {
		t.Errorf("generic:github ratio = %d:%d, want 2:1", cfg.Generic, cfg.GitHub)
	}
	if cfg.GitHub <= cfg.GitLab {
		t.Error("github should dwarf gitlab, as in Table 1")
	}
	// Zero config falls back to defaults inside BuildCorpora.
	c := BuildCorpora(CorporaConfig{})
	if len(c.Pile) != cfg.Pile || len(c.Generic) != cfg.Generic {
		t.Errorf("zero-config corpora sized %d/%d, want %d/%d",
			len(c.Pile), len(c.Generic), cfg.Pile, cfg.Generic)
	}
}
