package wisdom

import (
	"context"
	"math/rand"

	"wisdom/internal/neural"
)

// SessionGenerator is implemented by generators that can keep per-session
// decode state alive across requests (NeuralLM over the transformer's
// SessionCache): CompleteSession behaves exactly like CompleteStream with
// the same arguments — byte-identical output — but when sessionID names a
// session whose previous request shares a token prefix with this one, only
// the changed suffix is re-stepped. reused reports how many prefix positions
// were served from the retained state.
type SessionGenerator interface {
	Generator
	CompleteSession(sessionID string, cancel <-chan struct{}, prefix, prompt []int, maxNew int,
		stop func(generated []int) bool, stopToken int, onToken func(tok int)) (out []int, reused int)
}

// EnableSessions attaches a per-session prefix KV cache to the transformer
// so CompleteSession can reuse decode state across requests. Call once,
// after training and before serving traffic.
func (g *NeuralLM) EnableSessions(cfg neural.SessionCacheConfig) {
	g.sessions = g.Model.NewSessionCache(cfg)
}

// Sessions returns the session cache attached by EnableSessions (nil when
// sessions are disabled).
func (g *NeuralLM) Sessions() *neural.SessionCache { return g.sessions }

// CompleteSession implements SessionGenerator. Without an attached session
// cache (or with an empty id) it decodes exactly like CompleteStream.
func (g *NeuralLM) CompleteSession(sessionID string, cancel <-chan struct{}, prefix, _ []int, maxNew int,
	stop func([]int) bool, stopToken int, onToken func(int)) ([]int, int) {
	opts := neural.GenOptions{
		Stop: stop, StopToken: stopToken,
		Temperature: g.Temperature, TopK: g.TopK,
		OnToken: onToken, Cancel: cancel,
	}
	if g.Temperature > 0 {
		opts.Rand = rand.New(rand.NewSource(g.Seed))
	}
	if g.sessions == nil {
		return g.Model.GenerateCached(prefix, maxNew, opts), 0
	}
	return g.sessions.Generate(sessionID, prefix, maxNew, opts)
}

// EnableSessions turns on per-session prefix KV caching when the model's LM
// supports it, reporting whether it did. Only transformer-backed models
// (NeuralLM) hold reusable decode state; the n-gram zoo decodes from counts
// and has nothing to retain, so EnableSessions on those models is a no-op
// returning false.
func (m *Model) EnableSessions(cfg neural.SessionCacheConfig) bool {
	if nl, ok := m.LM.(*NeuralLM); ok {
		nl.EnableSessions(cfg)
		return true
	}
	return false
}

// SessionStats reports the session cache's health for the serving layer's
// metrics: whether sessions are enabled, how many are live (resident plus
// checked out by in-flight generations), how many states have been evicted,
// and the fraction of prefix positions served from retained state.
func (m *Model) SessionStats() (enabled bool, active int, evictions uint64, reuseRatio float64) {
	nl, ok := m.LM.(*NeuralLM)
	if !ok || nl.sessions == nil {
		return false, 0, 0, 0
	}
	sc := nl.sessions
	return true, sc.Active(), sc.Evictions(), sc.ReuseRatio()
}

// PredictSession answers one request like Predict — identical output for
// identical inputs — but keyed to a client session: the transformer's decode
// state from the session's previous request is reused, so a request whose
// rendered context shares a token prefix with the last one (the editor
// keystroke pattern) re-steps only the changed suffix. The session id is an
// opaque client-chosen affinity key; a future sharded frontend hashes it to
// route the session to the replica holding its state.
func (m *Model) PredictSession(sessionID, context, prompt string) string {
	s, nameLine, indent := m.predictSample(context, prompt)
	p := m.planSample(s)
	if p.done {
		return m.finishPredict(s, nameLine, indent, p.text)
	}
	var out []int
	if sg, ok := m.LM.(SessionGenerator); ok && sessionID != "" {
		out, _ = sg.CompleteSession(sessionID, nil, p.prefix, p.prompt, p.maxNew, p.stop, p.stopToken, nil)
	} else {
		out = m.LM.Complete(p.prefix, p.prompt, p.maxNew, p.stop, p.stopToken)
	}
	return m.finishPredict(s, nameLine, indent, m.finishSample(out))
}

// ResetSession discards whatever decode state the model retains for
// sessionID, so the session's next request cold-starts from scratch. It
// satisfies the serve package's SessionResetter seam: a sharded frontend
// sends session_reset when a session's ring owner changed, because any
// state this replica holds under that id belongs to a conversation that
// has since continued on another replica. Unknown sessions (and models
// without session state) are a no-op.
func (m *Model) ResetSession(sessionID string) {
	if nl, ok := m.LM.(*NeuralLM); ok && nl.sessions != nil {
		nl.sessions.Invalidate(sessionID)
	}
}

// PredictStreamSession is PredictStream keyed to a client session: the same
// emission contract (in-order deltas, concatenation equal to the returned
// answer unless post-processing rewrote it), with the decode reusing the
// session's retained prefix state so time-to-first-body-delta shrinks to
// O(changed suffix) on keystroke-shaped request sequences.
func (m *Model) PredictStreamSession(ctx context.Context, sessionID, yamlCtx, prompt string, emit func(delta string)) string {
	return m.predictStreamSession(ctx, sessionID, yamlCtx, prompt, emit)
}
