package wisdom

import (
	"strings"
	"testing"
)

func TestMemoryLookupThreshold(t *testing.T) {
	mem := NewMemory()
	mem.Add([]int{1, 2, 3}, nil, []int{10}, 0)
	mem.Add([]int{4, 5, 6}, nil, []int{20}, 2)
	mem.Build()

	if _, _, ok := mem.Lookup([]int{1, 2, 3}, nil, 0.99); !ok {
		t.Error("exact prompt missed")
	}
	if _, _, ok := mem.Lookup([]int{1, 9, 9}, nil, 0.99); ok {
		t.Error("weak match passed a 0.99 threshold")
	}
	if _, _, ok := mem.Lookup([]int{7, 8, 9}, nil, 0.1); ok {
		t.Error("disjoint prompt matched")
	}
}

func TestMemoryContextTieBreak(t *testing.T) {
	mem := NewMemory()
	// Same prompt, different contexts and values.
	mem.Add([]int{1, 2}, []int{100, 101}, []int{10}, 0)
	mem.Add([]int{1, 2}, []int{200, 201}, []int{20}, 0)
	mem.Build()

	val, _, ok := mem.Lookup([]int{1, 2}, []int{200, 201}, 0.9)
	if !ok || val[0] != 20 {
		t.Errorf("context tie-break failed: %v %v", val, ok)
	}
	val, _, ok = mem.Lookup([]int{1, 2}, []int{100, 101}, 0.9)
	if !ok || val[0] != 10 {
		t.Errorf("context tie-break failed: %v %v", val, ok)
	}
}

func TestMemoryReturnsIndent(t *testing.T) {
	mem := NewMemory()
	mem.Add([]int{1}, nil, []int{10}, 4)
	mem.Build()
	_, indent, ok := mem.Lookup([]int{1}, nil, 0.5)
	if !ok || indent != 4 {
		t.Errorf("indent = %d, %v", indent, ok)
	}
	if mem.Len() != 1 {
		t.Errorf("len = %d", mem.Len())
	}
}

func TestCutRepeatedLines(t *testing.T) {
	tests := []struct{ in, want string }{
		{"a: 1\nb: 2\n", "a: 1\nb: 2\n"},
		{"a: 1\na: 1\nb: 2\n", "a: 1\n"},
		{"a: 1\nb: 2\na: 1\n", "a: 1\nb: 2\n"},
		{"", ""},
		{"x: 1\nincomplete", "x: 1\nincomplete"}, // trailing partial line kept
	}
	for _, tt := range tests {
		if got := CutRepeatedLines(tt.in); got != tt.want {
			t.Errorf("CutRepeatedLines(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
	// Indented duplicates at different depths are distinct lines.
	in := "  a: 1\n    a: 1\n"
	if got := CutRepeatedLines(in); got != in {
		t.Errorf("different-indent lines wrongly deduped: %q", got)
	}
}

func TestPromptTokensCaseUnion(t *testing.T) {
	r := getRig(t)
	mixed := promptTokens(r.tok, "Start SSH Server")
	lower := promptTokens(r.tok, "start ssh server")
	if len(mixed) <= len(lower) {
		t.Errorf("mixed-case prompt should include the lowercase union: %d vs %d", len(mixed), len(lower))
	}
	// Already-lowercase prompts are not doubled.
	if len(lower) != len(r.tok.Encode("start ssh server")) {
		t.Error("lowercase prompt was doubled")
	}
}

func TestShapeAffinity(t *testing.T) {
	cov := newCoverage(0)
	const vocab = 100
	// Specials (last 3 ids) always 0.
	if shapeAffinity(5, cov, nil, vocab-1, vocab) != 0 || shapeAffinity(-5, cov, nil, vocab-3, vocab) != 0 {
		t.Error("special tokens not exempt")
	}
	// Positive affinity dampened by prior emissions.
	seq := []int{7, 7}
	if got := shapeAffinity(4, cov, seq, 7, vocab); got != 0 {
		t.Errorf("twice-emitted token bonus = %v, want 0", got)
	}
	if got := shapeAffinity(4, cov, []int{7}, 7, vocab); got != 1 {
		t.Errorf("once-emitted token bonus = %v, want 1 (0.25*4)", got)
	}
	if got := shapeAffinity(4, cov, nil, 7, vocab); got != 4 {
		t.Errorf("fresh token bonus = %v, want 4", got)
	}
	// Negative affinity passes through.
	if got := shapeAffinity(-2, cov, seq, 7, vocab); got != -2 {
		t.Errorf("negative affinity = %v, want -2", got)
	}
}

func TestGenerateSampleDeterministic(t *testing.T) {
	r := getRig(t)
	m := pretrain(t, r, WisdomAnsible)
	s := r.pipe.Test[0]
	a, b := m.GenerateSample(s), m.GenerateSample(s)
	if a != b {
		t.Errorf("generation not deterministic:\n%q\n%q", a, b)
	}
}

func TestPredictWithPlaybookContext(t *testing.T) {
	r := getRig(t)
	pre := pretrain(t, r, WisdomAnsibleMulti)
	ft, err := Finetune(pre, r.pipe.Train, FinetuneConfig{Window: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ctx := "---\n- hosts: all\n  tasks:\n"
	out := ft.Predict(ctx, "Install nginx")
	if !strings.HasPrefix(out, "    - name: Install nginx\n") {
		t.Errorf("playbook-context prediction not nested:\n%s", out)
	}
}
