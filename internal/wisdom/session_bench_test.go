package wisdom

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"wisdom/internal/dataset"
	"wisdom/internal/neural"
	"wisdom/internal/tokenizer"
)

// The session benchmarks back BENCH_PR7.json: the same keystroke exchange —
// an editor with a playbook already in the buffer, the user finishing a task
// name — once against a warm session (the previous keystroke's decode state
// is resident, only the newly typed suffix re-steps) and once stateless
// (every keystroke re-primes the whole rendered context). first-body-ns/op,
// the wait for the first generated delta, is the number an editor user feels.

var (
	benchSessionOnce  sync.Once
	benchSessionModel *Model
	benchSessionCtx   string
)

// sessionBenchModel is streamTestModel with a 256-token window, so the
// realistic case — a playbook of several accepted tasks above the cursor —
// fits in the context a cold request must re-prime.
func sessionBenchModel(b *testing.B) (*Model, string) {
	b.Helper()
	benchSessionOnce.Do(func() {
		task := "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n"
		texts := []string{task, task, task, task}
		tok, err := tokenizer.Train(texts, 300)
		if err != nil {
			b.Fatal(err)
		}
		const ctx = 256
		nm, err := neural.NewModel(neural.Config{
			Vocab: tok.VocabSize(), Ctx: ctx, Dim: 32, Heads: 2, Layers: 2, Seed: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		nm.Train(dataset.PackFiles(tok, texts, ctx), neural.TrainConfig{Epochs: 120, LR: 3e-3, BatchSize: 4, Seed: 1})
		benchSessionModel = &Model{
			Name:       "neural-session-bench",
			Tok:        tok,
			LM:         &NeuralLM{Model: nm},
			CtxWindow:  ctx,
			Style:      dataset.NameCompletion,
			MaxNewTask: 28,
		}
		benchSessionModel.EnableSessions(neural.SessionCacheConfig{})
		// The buffer above the cursor: three tasks already accepted, shaped
		// like the training corpus (bare task list) so the decode produces a
		// multi-line body for first-body-ns/op to observe.
		benchSessionCtx = strings.Repeat(task, 3)
	})
	return benchSessionModel, benchSessionCtx
}

// sessionBenchStep runs one streamed completion of the final keystroke,
// returning the waits for the first delta and the first generated delta.
func sessionBenchStep(m *Model, yamlCtx, sessionID string) (ttft, firstBody time.Duration) {
	start := time.Now()
	n := 0
	m.PredictStreamSession(context.Background(), sessionID, yamlCtx, "Install nginx", func(string) {
		n++
		switch n {
		case 1:
			ttft = time.Since(start)
		case 2:
			firstBody = time.Since(start)
		}
	})
	return ttft, firstBody
}

// BenchmarkPredictSessionWarm measures the keystroke a session exists for:
// the previous request ("Install ngin") left its decode state in the
// session, so completing "Install nginx" re-steps only the typed suffix.
// The priming keystroke runs outside the timer each iteration.
func BenchmarkPredictSessionWarm(b *testing.B) {
	m, yamlCtx := sessionBenchModel(b)
	var ttft, firstBody time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m.PredictSession("bench-editor", yamlCtx, "Install ngin") // previous keystroke
		b.StartTimer()
		t1, t2 := sessionBenchStep(m, yamlCtx, "bench-editor")
		ttft += t1
		firstBody += t2
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(ttft.Nanoseconds())/float64(b.N), "ttft-ns/op")
		b.ReportMetric(float64(firstBody.Nanoseconds())/float64(b.N), "first-body-ns/op")
	}
}

// BenchmarkPredictSessionCold is the same final keystroke without a session:
// the whole rendered context re-primes before the first generated token.
func BenchmarkPredictSessionCold(b *testing.B) {
	m, yamlCtx := sessionBenchModel(b)
	var ttft, firstBody time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1, t2 := sessionBenchStep(m, yamlCtx, "")
		ttft += t1
		firstBody += t2
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(ttft.Nanoseconds())/float64(b.N), "ttft-ns/op")
		b.ReportMetric(float64(firstBody.Nanoseconds())/float64(b.N), "first-body-ns/op")
	}
}
