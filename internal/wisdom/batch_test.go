package wisdom

import (
	"testing"

	"wisdom/internal/dataset"
	"wisdom/internal/neural"
	"wisdom/internal/tokenizer"
)

// neuralBatchModel builds a small trained transformer-backed wisdom model
// for batch-equivalence tests.
func neuralBatchModel(t *testing.T) *Model {
	t.Helper()
	texts := []string{
		"- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n",
		"- name: Start ssh\n  ansible.builtin.service:\n    name: ssh\n    state: started\n",
		"- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n",
		"- name: Start ssh\n  ansible.builtin.service:\n    name: ssh\n    state: started\n",
	}
	tok, err := tokenizer.Train(texts, 300)
	if err != nil {
		t.Fatal(err)
	}
	const ctx = 64
	nm, err := neural.NewModel(neural.Config{
		Vocab: tok.VocabSize(), Ctx: ctx, Dim: 32, Heads: 2, Layers: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	seqs := dataset.PackFiles(tok, texts, ctx)
	nm.Train(seqs, neural.TrainConfig{Epochs: 60, LR: 3e-3, BatchSize: 4, Seed: 1})
	return &Model{
		Name:       "neural-batch-test",
		Tok:        tok,
		LM:         &NeuralLM{Model: nm},
		CtxWindow:  ctx,
		Style:      dataset.NameCompletion,
		MaxNewTask: 24,
	}
}

// TestPredictBatchMatchesPredict pins the batched serving path to the
// serial one: every row of PredictBatch must equal its Predict twin.
func TestPredictBatchMatchesPredict(t *testing.T) {
	m := neuralBatchModel(t)
	contexts := []string{"", "", ""}
	prompts := []string{"Install nginx", "Start ssh", "Install nginx"}
	batched := m.PredictBatch(contexts, prompts)
	if len(batched) != len(prompts) {
		t.Fatalf("PredictBatch returned %d results for %d prompts", len(batched), len(prompts))
	}
	for i := range prompts {
		want := m.Predict(contexts[i], prompts[i])
		if batched[i] != want {
			t.Errorf("row %d:\nbatched %q\nserial  %q", i, batched[i], want)
		}
	}
}

// TestGenerateSamplesMatchesSerial checks the evaluation-side batch entry
// point, including the serial fallback for non-batching generators.
func TestGenerateSamplesMatchesSerial(t *testing.T) {
	m := neuralBatchModel(t)
	samples := []dataset.Sample{
		{Type: dataset.NLtoT, Prompt: "Install nginx", NameLine: "- name: Install nginx"},
		{Type: dataset.NLtoT, Prompt: "Start ssh", NameLine: "- name: Start ssh"},
	}
	batched := m.GenerateSamples(samples)
	for i, s := range samples {
		if want := m.GenerateSample(s); batched[i] != want {
			t.Errorf("sample %d:\nbatched %q\nserial  %q", i, batched[i], want)
		}
	}

	// A generator without CompleteBatch takes the serial loop.
	r := getRig(t)
	ng := pretrain(t, r, CodeGenNL)
	outs := ng.GenerateSamples(samples[:1])
	if len(outs) != 1 || outs[0] != ng.GenerateSample(samples[0]) {
		t.Error("serial-fallback GenerateSamples diverged from GenerateSample")
	}
}
