package wisdom

import (
	"context"
	"strings"
	"testing"

	"wisdom/internal/dataset"
	"wisdom/internal/neural"
	"wisdom/internal/tokenizer"
)

// streamTestModel trains the tiny memorisable transformer used by
// TestNeuralBackedModel: a model that reliably reproduces a multi-line task
// body, which is what streaming tests (and the TTFT benchmarks) need.
func streamTestModel(t testing.TB) *Model {
	t.Helper()
	task := "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n"
	texts := []string{task, task, task, task}
	tok, err := tokenizer.Train(texts, 300)
	if err != nil {
		t.Fatal(err)
	}
	const ctx = 64
	nm, err := neural.NewModel(neural.Config{
		Vocab: tok.VocabSize(), Ctx: ctx, Dim: 32, Heads: 2, Layers: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	seqs := dataset.PackFiles(tok, texts, ctx)
	nm.Train(seqs, neural.TrainConfig{Epochs: 120, LR: 3e-3, BatchSize: 4, Seed: 1})
	return &Model{
		Name:       "neural-stream-test",
		Tok:        tok,
		LM:         &NeuralLM{Model: nm},
		CtxWindow:  ctx,
		Style:      dataset.NameCompletion,
		MaxNewTask: 28,
	}
}

// TestPredictStreamMatchesPredict is the core streaming invariant: the
// concatenated deltas are byte-identical to the unary answer, and the
// returned final equals Predict's output.
func TestPredictStreamMatchesPredict(t *testing.T) {
	m := streamTestModel(t)
	want := m.Predict("", "Install nginx")

	var sb strings.Builder
	got := m.PredictStream(context.Background(), "", "Install nginx", func(d string) {
		sb.WriteString(d)
	})
	if got != want {
		t.Errorf("PredictStream final = %q, want Predict's %q", got, want)
	}
	if sb.String() != want {
		t.Errorf("concatenated deltas = %q, want %q", sb.String(), want)
	}
}

// TestPredictStreamIncremental asserts streaming is actually incremental:
// a multi-line completion must arrive in more than two deltas (name line,
// then committed body lines as the decode loop produces them) — two deltas
// would mean everything was buffered until the end.
func TestPredictStreamIncremental(t *testing.T) {
	m := streamTestModel(t)
	var deltas []string
	final := m.PredictStream(context.Background(), "", "Install nginx", func(d string) {
		deltas = append(deltas, d)
	})
	if n := strings.Count(final, "\n"); n < 3 {
		t.Skipf("completion too short to observe incrementality: %q", final)
	}
	if len(deltas) <= 2 {
		t.Errorf("multi-line completion arrived in %d deltas (%q); want per-line emission",
			len(deltas), deltas)
	}
	// Every prefix of the delta sequence must be a prefix of the final
	// answer (deltas are never retracted).
	sent := ""
	for _, d := range deltas {
		sent += d
		if !strings.HasPrefix(final, sent) {
			t.Fatalf("emitted prefix %q is not a prefix of final %q", sent, final)
		}
	}
}

// TestPredictStreamCancel verifies a cancelled context stops generation:
// the stream ends early and the decode loop does not run to completion.
func TestPredictStreamCancel(t *testing.T) {
	m := streamTestModel(t)
	ctx, cancel := context.WithCancel(context.Background())
	var deltas int
	m.PredictStream(ctx, "", "Install nginx", func(d string) {
		deltas++
		cancel() // first delta: the client hangs up
	})
	if deltas == 0 {
		t.Fatal("no delta emitted before cancellation")
	}
	// The answer may be partial; the important property (the decode loop
	// observed the cancel) is covered by the neural-layer cancel tests.
	// Here we only require PredictStream to return at all after cancel.
}

// TestPredictStreamNonStreamingLM covers the n-gram fallback: a Generator
// without CompleteStream still streams head + tail correctly.
func TestPredictStreamNonStreamingLM(t *testing.T) {
	r := getRig(t)
	m := pretrain(t, r, WisdomAnsibleMulti)
	want := m.Predict("", "Install nginx")
	var sb strings.Builder
	got := m.PredictStream(context.Background(), "", "Install nginx", func(d string) {
		sb.WriteString(d)
	})
	if got != want {
		t.Errorf("final = %q, want %q", got, want)
	}
	if sb.String() != want {
		t.Errorf("concatenated deltas = %q, want %q", sb.String(), want)
	}
}
