package yaml

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParseYAML drives the parser with arbitrary input: it must never
// panic, and any document it accepts must survive an encode/re-parse round
// trip — the serving layer marshals parsed suggestions back to text, so an
// accepted-but-unencodable node would corrupt output downstream.
func FuzzParseYAML(f *testing.F) {
	f.Add("- name: install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n")
	f.Add("key: value\nlist:\n  - 1\n  - 2\n")
	f.Add("a: {b: [1, 2], c: \"d\"}\n")
	f.Add("---\ndoc: 1\n---\ndoc: 2\n")
	f.Add("text: |\n  line one\n  line two\n")
	f.Add("empty:\n")
	f.Add(": novalue\n")
	f.Add("\t tab indent\n")
	f.Add("a: 'unclosed\n")
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src)
		if err != nil || n == nil {
			return
		}
		out := Marshal(n)
		if !utf8.ValidString(src) {
			// Encoding only promises round-trippable text for valid UTF-8
			// input; raw bytes may be quoted lossily.
			return
		}
		if _, err := Parse(out); err != nil {
			t.Fatalf("re-parse of encoded output failed: %v\ninput: %q\nencoded: %q", err, src, out)
		}
		_, _ = ParseAll(src) // multi-document path must not panic either
		_ = strings.TrimSpace(out)
	})
}
