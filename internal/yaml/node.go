// Package yaml implements a YAML subset parser and serializer sufficient for
// Ansible playbooks, role task files and the generic YAML documents used by
// the Wisdom corpus (Kubernetes-, CI- and compose-style files).
//
// The package is self-contained (stdlib only) and exposes an ordered node
// tree: unlike map-based YAML bindings, key order, scalar styles and resolved
// scalar tags are preserved, because the Ansible Aware metric and the Ansible
// schema validator are defined over exactly that information.
//
// Supported constructs: block mappings and sequences, flow mappings and
// sequences (including multi-line flow), plain/single-/double-quoted scalars,
// literal (|) and folded (>) block scalars with strip/keep chomping, comments,
// multi-document streams ("---" / "..."), core-schema scalar resolution
// (null, bool, int, float, str), anchors and aliases (resolved to copies at
// parse time; the encoder emits expanded documents), and "<<" merge keys.
// Custom tags are not supported; Ansible content does not use them.
package yaml

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the three structural node kinds.
type Kind int

const (
	// ScalarNode is a leaf: a string, number, boolean or null.
	ScalarNode Kind = iota
	// MappingNode is an ordered list of key/value node pairs.
	MappingNode
	// SequenceNode is an ordered list of item nodes.
	SequenceNode
)

// String returns the lower-case kind name.
func (k Kind) String() string {
	switch k {
	case ScalarNode:
		return "scalar"
	case MappingNode:
		return "mapping"
	case SequenceNode:
		return "sequence"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Style records how a scalar was written in the source, which the encoder
// reuses so round-tripped documents keep their quoting.
type Style int

const (
	// Plain is an unquoted scalar.
	Plain Style = iota
	// SingleQuoted is a scalar written inside single quotes.
	SingleQuoted
	// DoubleQuoted is a scalar written inside double quotes.
	DoubleQuoted
	// Literal is a block scalar introduced by '|'.
	Literal
	// Folded is a block scalar introduced by '>'.
	Folded
)

// Tag is the resolved core-schema type of a scalar.
type Tag int

const (
	// StrTag marks a textual scalar.
	StrTag Tag = iota
	// IntTag marks an integer scalar.
	IntTag
	// FloatTag marks a floating-point scalar.
	FloatTag
	// BoolTag marks a boolean scalar.
	BoolTag
	// NullTag marks a null scalar (including the empty value).
	NullTag
)

// String returns the short tag name as used in error messages.
func (t Tag) String() string {
	switch t {
	case StrTag:
		return "str"
	case IntTag:
		return "int"
	case FloatTag:
		return "float"
	case BoolTag:
		return "bool"
	case NullTag:
		return "null"
	}
	return fmt.Sprintf("tag(%d)", int(t))
}

// Node is one vertex of the parsed document tree.
//
// For ScalarNode, Value holds the decoded text (quotes removed, escapes
// resolved) and Tag/Style describe its resolved type and source style. For
// MappingNode, Keys[i] maps to Values[i] in document order. For SequenceNode,
// Items holds the elements in order.
type Node struct {
	Kind  Kind
	Value string
	Style Style
	Tag   Tag

	Keys   []*Node
	Values []*Node
	Items  []*Node

	// Line and Col are the 1-based source position of the node, when the
	// node came from the parser. Synthesised nodes carry zeros.
	Line, Col int
}

// Scalar returns a plain string scalar node.
func Scalar(v string) *Node { return &Node{Kind: ScalarNode, Value: v, Tag: resolveTag(v, Plain)} }

// ScalarTyped returns a scalar node with an explicit tag and style.
func ScalarTyped(v string, tag Tag, style Style) *Node {
	return &Node{Kind: ScalarNode, Value: v, Tag: tag, Style: style}
}

// IntScalar returns an integer scalar node.
func IntScalar(v int) *Node {
	return &Node{Kind: ScalarNode, Value: strconv.Itoa(v), Tag: IntTag}
}

// BoolScalar returns a boolean scalar node rendered as "true"/"false".
func BoolScalar(v bool) *Node {
	return &Node{Kind: ScalarNode, Value: strconv.FormatBool(v), Tag: BoolTag}
}

// NullScalar returns a null scalar node (rendered as an empty value).
func NullScalar() *Node { return &Node{Kind: ScalarNode, Value: "", Tag: NullTag} }

// Mapping returns an empty mapping node.
func Mapping() *Node { return &Node{Kind: MappingNode} }

// Sequence returns a sequence node holding the given items.
func Sequence(items ...*Node) *Node { return &Node{Kind: SequenceNode, Items: items} }

// Set appends (or replaces, if the key already exists) the entry for key in a
// mapping node and returns the node to allow chaining. It panics when called
// on a non-mapping, which is always a programming error.
func (n *Node) Set(key string, value *Node) *Node {
	if n.Kind != MappingNode {
		panic("yaml: Set on " + n.Kind.String() + " node")
	}
	for i, k := range n.Keys {
		if k.Kind == ScalarNode && k.Value == key {
			n.Values[i] = value
			return n
		}
	}
	n.Keys = append(n.Keys, Scalar(key))
	n.Values = append(n.Values, value)
	return n
}

// Get returns the value for key in a mapping node, or nil when absent or when
// the node is not a mapping.
func (n *Node) Get(key string) *Node {
	if n == nil || n.Kind != MappingNode {
		return nil
	}
	for i, k := range n.Keys {
		if k.Kind == ScalarNode && k.Value == key {
			return n.Values[i]
		}
	}
	return nil
}

// Has reports whether a mapping node contains key.
func (n *Node) Has(key string) bool { return n.Get(key) != nil }

// Delete removes the entry for key from a mapping node and reports whether an
// entry was removed.
func (n *Node) Delete(key string) bool {
	if n == nil || n.Kind != MappingNode {
		return false
	}
	for i, k := range n.Keys {
		if k.Kind == ScalarNode && k.Value == key {
			n.Keys = append(n.Keys[:i], n.Keys[i+1:]...)
			n.Values = append(n.Values[:i], n.Values[i+1:]...)
			return true
		}
	}
	return false
}

// Len returns the number of entries (mapping), items (sequence) or bytes
// (scalar value) of the node.
func (n *Node) Len() int {
	if n == nil {
		return 0
	}
	switch n.Kind {
	case MappingNode:
		return len(n.Keys)
	case SequenceNode:
		return len(n.Items)
	default:
		return len(n.Value)
	}
}

// IsNull reports whether the node is a null scalar.
func (n *Node) IsNull() bool { return n == nil || (n.Kind == ScalarNode && n.Tag == NullTag) }

// Bool returns the boolean value of a bool-tagged scalar; ok is false
// otherwise. YAML 1.1 forms accepted by Ansible (yes/no/on/off) resolve true.
func (n *Node) Bool() (v, ok bool) {
	if n == nil || n.Kind != ScalarNode || n.Tag != BoolTag {
		return false, false
	}
	switch strings.ToLower(n.Value) {
	case "true", "yes", "on":
		return true, true
	default:
		return false, true
	}
}

// Int returns the integer value of an int-tagged scalar; ok is false
// otherwise.
func (n *Node) Int() (int64, bool) {
	if n == nil || n.Kind != ScalarNode || n.Tag != IntTag {
		return 0, false
	}
	v, err := strconv.ParseInt(strings.ReplaceAll(n.Value, "_", ""), 0, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Float returns the floating-point value of an int- or float-tagged scalar;
// ok is false otherwise.
func (n *Node) Float() (float64, bool) {
	if n == nil || n.Kind != ScalarNode {
		return 0, false
	}
	if n.Tag != FloatTag && n.Tag != IntTag {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.ReplaceAll(n.Value, "_", ""), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Clone returns a deep copy of the node tree.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Kind: n.Kind, Value: n.Value, Style: n.Style, Tag: n.Tag, Line: n.Line, Col: n.Col}
	if len(n.Keys) > 0 {
		c.Keys = make([]*Node, len(n.Keys))
		c.Values = make([]*Node, len(n.Values))
		for i := range n.Keys {
			c.Keys[i] = n.Keys[i].Clone()
			c.Values[i] = n.Values[i].Clone()
		}
	}
	if len(n.Items) > 0 {
		c.Items = make([]*Node, len(n.Items))
		for i := range n.Items {
			c.Items[i] = n.Items[i].Clone()
		}
	}
	return c
}

// Equal reports deep structural equality of two node trees, comparing kinds,
// resolved tags and values but ignoring styles and source positions.
func (n *Node) Equal(o *Node) bool {
	if n == nil || o == nil {
		return n.IsNull() && o.IsNull()
	}
	if n.Kind != o.Kind {
		return false
	}
	switch n.Kind {
	case ScalarNode:
		if n.Tag != o.Tag {
			return false
		}
		// Null spellings ("", "~", "null") are the same value.
		return n.Tag == NullTag || n.Value == o.Value
	case MappingNode:
		if len(n.Keys) != len(o.Keys) {
			return false
		}
		for i := range n.Keys {
			if !n.Keys[i].Equal(o.Keys[i]) || !n.Values[i].Equal(o.Values[i]) {
				return false
			}
		}
		return true
	case SequenceNode:
		if len(n.Items) != len(o.Items) {
			return false
		}
		for i := range n.Items {
			if !n.Items[i].Equal(o.Items[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// resolveTag implements core-schema scalar resolution for plain scalars.
// Quoted and block scalars are always strings.
func resolveTag(v string, style Style) Tag {
	if style != Plain {
		return StrTag
	}
	switch v {
	case "", "~", "null", "Null", "NULL":
		return NullTag
	case "true", "True", "TRUE", "false", "False", "FALSE",
		"yes", "Yes", "YES", "no", "No", "NO",
		"on", "On", "ON", "off", "Off", "OFF":
		return BoolTag
	}
	if isInt(v) {
		return IntTag
	}
	if isFloat(v) {
		return FloatTag
	}
	return StrTag
}

func isInt(s string) bool {
	t := strings.TrimPrefix(strings.TrimPrefix(s, "-"), "+")
	if t == "" {
		return false
	}
	if strings.HasPrefix(t, "0x") || strings.HasPrefix(t, "0X") {
		_, err := strconv.ParseInt(t[2:], 16, 64)
		return err == nil
	}
	if strings.HasPrefix(t, "0o") || strings.HasPrefix(t, "0O") {
		_, err := strconv.ParseInt(t[2:], 8, 64)
		return err == nil
	}
	digits := 0
	for i, r := range t {
		if r == '_' && i > 0 && i < len(t)-1 {
			continue // interior underscores group digits (YAML 1.1 style)
		}
		if r < '0' || r > '9' {
			return false
		}
		digits++
	}
	return digits > 0
}

func isFloat(s string) bool {
	t := strings.TrimPrefix(strings.TrimPrefix(s, "-"), "+")
	switch t {
	case ".inf", ".Inf", ".INF", ".nan", ".NaN", ".NAN":
		return true
	}
	if !strings.ContainsAny(t, ".eE") {
		return false
	}
	// Reject version-like strings ("1.2.3") and lone dots.
	if strings.Count(t, ".") > 1 || t == "." {
		return false
	}
	_, err := strconv.ParseFloat(t, 64)
	return err == nil
}
