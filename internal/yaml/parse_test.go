package yaml

import (
	"reflect"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Node {
	t.Helper()
	n, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return n
}

func TestParseScalarTags(t *testing.T) {
	tests := []struct {
		src string
		tag Tag
		val string
	}{
		{"hello", StrTag, "hello"},
		{"42", IntTag, "42"},
		{"-17", IntTag, "-17"},
		{"0x1F", IntTag, "0x1F"},
		{"3.14", FloatTag, "3.14"},
		{"-2.5e3", FloatTag, "-2.5e3"},
		{".inf", FloatTag, ".inf"},
		{"true", BoolTag, "true"},
		{"no", BoolTag, "no"},
		{"null", NullTag, "null"},
		{"~", NullTag, "~"},
		{"1.2.3", StrTag, "1.2.3"},
		{"hello world", StrTag, "hello world"},
		{"'quoted'", StrTag, "quoted"},
		{`"esc\nape"`, StrTag, "esc\nape"},
		{"'it''s'", StrTag, "it's"},
	}
	for _, tt := range tests {
		n := mustParse(t, tt.src)
		if n.Kind != ScalarNode {
			t.Errorf("Parse(%q): kind = %v, want scalar", tt.src, n.Kind)
			continue
		}
		if n.Tag != tt.tag || n.Value != tt.val {
			t.Errorf("Parse(%q) = (%v, %q), want (%v, %q)", tt.src, n.Tag, n.Value, tt.tag, tt.val)
		}
	}
}

func TestParseBlockMapping(t *testing.T) {
	n := mustParse(t, "name: install nginx\nstate: present\ncount: 3\n")
	if n.Kind != MappingNode || n.Len() != 3 {
		t.Fatalf("got %v with %d entries, want mapping of 3", n.Kind, n.Len())
	}
	if got := n.Get("name").Value; got != "install nginx" {
		t.Errorf("name = %q", got)
	}
	if v, ok := n.Get("count").Int(); !ok || v != 3 {
		t.Errorf("count = %d, %v", v, ok)
	}
}

func TestParseNestedMapping(t *testing.T) {
	src := `apt:
  name: nginx
  state: present
notify: restart
`
	n := mustParse(t, src)
	apt := n.Get("apt")
	if apt == nil || apt.Kind != MappingNode {
		t.Fatalf("apt = %v", apt)
	}
	if got := apt.Get("state").Value; got != "present" {
		t.Errorf("apt.state = %q", got)
	}
	if got := n.Get("notify").Value; got != "restart" {
		t.Errorf("notify = %q", got)
	}
}

func TestParseBlockSequence(t *testing.T) {
	n := mustParse(t, "- one\n- two\n- three\n")
	if n.Kind != SequenceNode || len(n.Items) != 3 {
		t.Fatalf("got %v/%d", n.Kind, len(n.Items))
	}
	if n.Items[1].Value != "two" {
		t.Errorf("item[1] = %q", n.Items[1].Value)
	}
}

func TestParseSequenceOfMappings(t *testing.T) {
	src := `- name: Install SSH server
  ansible.builtin.apt:
    name: openssh-server
    state: present
- name: Start SSH server
  ansible.builtin.service:
    name: ssh
    state: started
`
	n := mustParse(t, src)
	if n.Kind != SequenceNode || len(n.Items) != 2 {
		t.Fatalf("got %v with %d items", n.Kind, len(n.Items))
	}
	first := n.Items[0]
	if first.Kind != MappingNode {
		t.Fatalf("first item kind = %v", first.Kind)
	}
	if got := first.Get("name").Value; got != "Install SSH server" {
		t.Errorf("name = %q", got)
	}
	apt := first.Get("ansible.builtin.apt")
	if apt == nil || apt.Get("state").Value != "present" {
		t.Errorf("apt = %v", apt)
	}
}

func TestParseAnsiblePlaybook(t *testing.T) {
	// The exact playbook from Fig. 1 of the paper.
	src := `---
- hosts: servers
  tasks:
    - name: Install SSH server
      ansible.builtin.apt:
        name: openssh-server
        state: present
    - name: Start SSH server
      ansible.builtin.service:
        name: ssh
        state: started
`
	n := mustParse(t, src)
	if n.Kind != SequenceNode || len(n.Items) != 1 {
		t.Fatalf("playbook root = %v/%d", n.Kind, n.Len())
	}
	play := n.Items[0]
	if play.Get("hosts").Value != "servers" {
		t.Errorf("hosts = %q", play.Get("hosts").Value)
	}
	tasks := play.Get("tasks")
	if tasks == nil || tasks.Kind != SequenceNode || len(tasks.Items) != 2 {
		t.Fatalf("tasks = %v", tasks)
	}
	if tasks.Items[1].Get("ansible.builtin.service").Get("name").Value != "ssh" {
		t.Error("second task service name mismatch")
	}
}

func TestParseSequenceAtKeyIndent(t *testing.T) {
	// Ansible style commonly puts the sequence at the same indent as its key.
	src := `tasks:
- name: a
- name: b
`
	n := mustParse(t, src)
	tasks := n.Get("tasks")
	if tasks == nil || tasks.Kind != SequenceNode || len(tasks.Items) != 2 {
		t.Fatalf("tasks = %+v", tasks)
	}
}

func TestParseFlowCollections(t *testing.T) {
	n := mustParse(t, `config: {a: 1, b: [x, y], c: {d: true}}`)
	c := n.Get("config")
	if c.Kind != MappingNode || c.Len() != 3 {
		t.Fatalf("config = %v/%d", c.Kind, c.Len())
	}
	if v, _ := c.Get("a").Int(); v != 1 {
		t.Errorf("a = %v", c.Get("a"))
	}
	b := c.Get("b")
	if b.Kind != SequenceNode || len(b.Items) != 2 || b.Items[0].Value != "x" {
		t.Errorf("b = %v", b)
	}
	if v, _ := c.Get("c").Get("d").Bool(); !v {
		t.Errorf("c.d = %v", c.Get("c").Get("d"))
	}
}

func TestParseMultilineFlow(t *testing.T) {
	src := `with_items: [one,
  two,
  three]
`
	n := mustParse(t, src)
	items := n.Get("with_items")
	if items == nil || items.Kind != SequenceNode || len(items.Items) != 3 {
		t.Fatalf("with_items = %v", items)
	}
}

func TestParseEmptyFlow(t *testing.T) {
	n := mustParse(t, "a: {}\nb: []\n")
	if n.Get("a").Kind != MappingNode || n.Get("a").Len() != 0 {
		t.Errorf("a = %v", n.Get("a"))
	}
	if n.Get("b").Kind != SequenceNode || n.Get("b").Len() != 0 {
		t.Errorf("b = %v", n.Get("b"))
	}
}

func TestParseLiteralBlockScalar(t *testing.T) {
	src := `script: |
  line one
  line two
next: value
`
	n := mustParse(t, src)
	if got := n.Get("script").Value; got != "line one\nline two\n" {
		t.Errorf("script = %q", got)
	}
	if got := n.Get("next").Value; got != "value" {
		t.Errorf("next = %q", got)
	}
}

func TestParseLiteralStripChomp(t *testing.T) {
	src := "cmd: |-\n  echo hi\n"
	n := mustParse(t, src)
	if got := n.Get("cmd").Value; got != "echo hi" {
		t.Errorf("cmd = %q", got)
	}
}

func TestParseLiteralInteriorStructure(t *testing.T) {
	// Lines inside a literal block must not be parsed as structure.
	src := `content: |
  key: value
  - item
after: done
`
	n := mustParse(t, src)
	if got := n.Get("content").Value; got != "key: value\n- item\n" {
		t.Errorf("content = %q", got)
	}
	if n.Get("after").Value != "done" {
		t.Errorf("after = %q", n.Get("after").Value)
	}
}

func TestParseFoldedScalar(t *testing.T) {
	src := `desc: >
  folded text
  joins lines
`
	n := mustParse(t, src)
	if got := n.Get("desc").Value; got != "folded text joins lines\n" {
		t.Errorf("desc = %q", got)
	}
}

func TestParseComments(t *testing.T) {
	src := `# leading comment
name: value # trailing comment
# interior
state: present
`
	n := mustParse(t, src)
	if got := n.Get("name").Value; got != "value" {
		t.Errorf("name = %q", got)
	}
	if got := n.Get("state").Value; got != "present" {
		t.Errorf("state = %q", got)
	}
}

func TestParseHashInsideQuotes(t *testing.T) {
	n := mustParse(t, `msg: 'color: #fff is not a comment'`)
	if got := n.Get("msg").Value; got != "color: #fff is not a comment" {
		t.Errorf("msg = %q", got)
	}
}

func TestParseColonInValue(t *testing.T) {
	n := mustParse(t, "url: http://example.com:8080/path\n")
	if got := n.Get("url").Value; got != "http://example.com:8080/path" {
		t.Errorf("url = %q", got)
	}
}

func TestParseMultiDocument(t *testing.T) {
	src := "---\na: 1\n---\nb: 2\n...\n---\nc: 3\n"
	docs, err := ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("got %d docs", len(docs))
	}
	if v, _ := docs[2].Get("c").Int(); v != 3 {
		t.Errorf("third doc c = %v", docs[2].Get("c"))
	}
}

func TestParseEmptyDocument(t *testing.T) {
	n := mustParse(t, "")
	if !n.IsNull() {
		t.Errorf("empty doc = %+v, want null", n)
	}
	n = mustParse(t, "# only a comment\n")
	if !n.IsNull() {
		t.Errorf("comment-only doc = %+v, want null", n)
	}
}

func TestParseNullValues(t *testing.T) {
	n := mustParse(t, "a:\nb: ~\nc: null\n")
	for _, k := range []string{"a", "b", "c"} {
		if !n.Get(k).IsNull() {
			t.Errorf("%s = %+v, want null", k, n.Get(k))
		}
	}
}

func TestParseNestedSequences(t *testing.T) {
	src := `- - inner1
  - inner2
- flat
`
	n := mustParse(t, src)
	if n.Kind != SequenceNode || len(n.Items) != 2 {
		t.Fatalf("root = %v/%d", n.Kind, n.Len())
	}
	inner := n.Items[0]
	if inner.Kind != SequenceNode || len(inner.Items) != 2 || inner.Items[1].Value != "inner2" {
		t.Errorf("inner = %+v", inner)
	}
}

func TestParseSequenceItemOnOwnLine(t *testing.T) {
	src := `-
  name: task
- second
`
	n := mustParse(t, src)
	if len(n.Items) != 2 {
		t.Fatalf("items = %d", len(n.Items))
	}
	if n.Items[0].Get("name").Value != "task" {
		t.Errorf("first = %+v", n.Items[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"a: 'unterminated\n",
		"a: \"unterminated\n",
		"a: [1, 2\n", // never closed, EOF
		"key: value\n    stray: deep\n  other: wrong\n", // inconsistent indent under scalar value
		"a: 1\na: 2\n", // duplicate key
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("ok: 1\nbad: 'x\n")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("err = %T %v", err, err)
	}
	if se.Line != 2 {
		t.Errorf("line = %d, want 2", se.Line)
	}
	if !strings.Contains(se.Error(), "line 2") {
		t.Errorf("message %q lacks position", se.Error())
	}
}

func TestParseDashValueDocument(t *testing.T) {
	// "--- value" on the marker line.
	docs, err := ParseAll("--- 42\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 {
		t.Fatalf("docs = %d", len(docs))
	}
	if v, ok := docs[0].Int(); !ok || v != 42 {
		t.Errorf("doc = %+v", docs[0])
	}
}

func TestToGoRoundTrip(t *testing.T) {
	src := `name: web
replicas: 3
enabled: true
ratio: 0.5
tags:
  - a
  - b
meta:
  owner: ops
`
	n := mustParse(t, src)
	got := ToGo(n)
	want := map[string]any{
		"name":     "web",
		"replicas": int64(3),
		"enabled":  true,
		"ratio":    0.5,
		"tags":     []any{"a", "b"},
		"meta":     map[string]any{"owner": "ops"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ToGo = %#v, want %#v", got, want)
	}
}

func TestNodeHelpers(t *testing.T) {
	m := Mapping().Set("a", IntScalar(1)).Set("b", Scalar("x"))
	if m.Len() != 2 || !m.Has("a") || m.Has("zz") {
		t.Error("Set/Has/Len broken")
	}
	m.Set("a", IntScalar(9))
	if v, _ := m.Get("a").Int(); v != 9 || m.Len() != 2 {
		t.Error("Set replace broken")
	}
	if !m.Delete("a") || m.Has("a") || m.Delete("a") {
		t.Error("Delete broken")
	}
	c := m.Clone()
	c.Set("b", Scalar("changed"))
	if m.Get("b").Value != "x" {
		t.Error("Clone is shallow")
	}
}

func TestNodeEqual(t *testing.T) {
	a := mustParse(t, "x: 1\ny: [a, b]\n")
	b := mustParse(t, "x: 1\ny:\n  - a\n  - b\n")
	if !a.Equal(b) {
		t.Error("structurally equal trees reported unequal")
	}
	c := mustParse(t, "x: 2\ny: [a, b]\n")
	if a.Equal(c) {
		t.Error("different trees reported equal")
	}
	// Tag-sensitive: string "1" != int 1.
	d := mustParse(t, "x: '1'\ny: [a, b]\n")
	if a.Equal(d) {
		t.Error("int 1 equal to string '1'")
	}
}

func TestParseAnchorAlias(t *testing.T) {
	src := `defaults: &defaults
  owner: root
  mode: '0644'
copy1: *defaults
copy2: *defaults
`
	n := mustParse(t, src)
	for _, k := range []string{"defaults", "copy1", "copy2"} {
		v := n.Get(k)
		if v == nil || v.Kind != MappingNode || v.Get("owner").Value != "root" {
			t.Fatalf("%s = %+v", k, v)
		}
	}
	// Aliases are copies: mutating one must not affect the others.
	n.Get("copy1").Set("owner", Scalar("app"))
	if n.Get("copy2").Get("owner").Value != "root" {
		t.Error("alias nodes share storage")
	}
}

func TestParseInlineAnchor(t *testing.T) {
	src := "a: &x hello\nb: *x\n"
	n := mustParse(t, src)
	if n.Get("a").Value != "hello" || n.Get("b").Value != "hello" {
		t.Errorf("a=%q b=%q", n.Get("a").Value, n.Get("b").Value)
	}
}

func TestParseSequenceAlias(t *testing.T) {
	src := `common: &pkgs
  - curl
  - git
install: *pkgs
`
	n := mustParse(t, src)
	inst := n.Get("install")
	if inst == nil || inst.Kind != SequenceNode || len(inst.Items) != 2 || inst.Items[1].Value != "git" {
		t.Fatalf("install = %+v", inst)
	}
}

func TestParseMergeKey(t *testing.T) {
	src := `base: &base
  owner: root
  group: root
  mode: '0644'
special:
  <<: *base
  mode: '0600'
  path: /etc/secret
`
	n := mustParse(t, src)
	sp := n.Get("special")
	if sp == nil {
		t.Fatal("special missing")
	}
	if got := sp.Get("mode").Value; got != "0600" {
		t.Errorf("explicit key did not override merge: mode = %q", got)
	}
	if got := sp.Get("owner").Value; got != "root" {
		t.Errorf("merged key missing: owner = %q", got)
	}
	if sp.Has("<<") {
		t.Error("merge key leaked into the mapping")
	}
	if sp.Len() != 4 { // mode, path, owner, group
		t.Errorf("special has %d keys: %v", sp.Len(), keysOfNode(sp))
	}
}

func TestParseMergeKeyList(t *testing.T) {
	src := `a: &a
  x: 1
b: &b
  y: 2
merged:
  <<: [*a, *b]
  z: 3
`
	n := mustParse(t, src)
	m := n.Get("merged")
	if v, _ := m.Get("x").Int(); v != 1 {
		t.Errorf("x = %v", m.Get("x"))
	}
	if v, _ := m.Get("y").Int(); v != 2 {
		t.Errorf("y = %v", m.Get("y"))
	}
	if v, _ := m.Get("z").Int(); v != 3 {
		t.Errorf("z = %v", m.Get("z"))
	}
}

func TestParseUnknownAlias(t *testing.T) {
	if _, err := Parse("a: *nope\n"); err == nil {
		t.Error("unknown alias accepted")
	}
}

func TestParseMergeNonMapping(t *testing.T) {
	if _, err := Parse("a: &a 5\nb:\n  <<: *a\n"); err == nil {
		t.Error("scalar merge accepted")
	}
}

func TestAnchorAcrossDocuments(t *testing.T) {
	// Anchors persist across the stream (our parser scopes them to the
	// stream, which is a superset of the spec's per-document scope and
	// harmless for the corpora involved).
	docs, err := ParseAll("---\na: &v 42\n---\nb: *v\n")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := docs[1].Get("b").Int(); v != 42 {
		t.Errorf("b = %v", docs[1].Get("b"))
	}
}

func TestGlobPatternNotAnchor(t *testing.T) {
	// A value starting with '*' that is not a valid anchor name must stay
	// a plain scalar (e.g. glob patterns).
	n := mustParse(t, "pattern: '*.yml'\n")
	if n.Get("pattern").Value != "*.yml" {
		t.Errorf("pattern = %q", n.Get("pattern").Value)
	}
	// And an unquoted glob with a dot is not an anchor name either.
	n = mustParse(t, "files: *invalid-ë\n")
	_ = n // any parse result is fine as long as it does not panic
}

func keysOfNode(n *Node) []string {
	var out []string
	for _, k := range n.Keys {
		out = append(out, k.Value)
	}
	return out
}
