package yaml

import (
	"strings"
	"testing"
)

func TestKindTagStrings(t *testing.T) {
	if ScalarNode.String() != "scalar" || MappingNode.String() != "mapping" || SequenceNode.String() != "sequence" {
		t.Error("Kind.String wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind empty")
	}
	for tag, want := range map[Tag]string{
		StrTag: "str", IntTag: "int", FloatTag: "float", BoolTag: "bool", NullTag: "null",
	} {
		if tag.String() != want {
			t.Errorf("Tag %v = %q, want %q", tag, tag.String(), want)
		}
	}
	if Tag(42).String() == "" {
		t.Error("unknown tag empty")
	}
}

func TestScalarAccessors(t *testing.T) {
	// Bool on YAML 1.1 forms.
	for _, form := range []string{"yes", "on", "True", "TRUE"} {
		n := mustParse(t, "v: "+form+"\n").Get("v")
		if v, ok := n.Bool(); !ok || !v {
			t.Errorf("Bool(%q) = %v, %v", form, v, ok)
		}
	}
	for _, form := range []string{"no", "off", "False"} {
		n := mustParse(t, "v: "+form+"\n").Get("v")
		if v, ok := n.Bool(); !ok || v {
			t.Errorf("Bool(%q) = %v, %v", form, v, ok)
		}
	}
	// Bool on non-bool: not ok.
	if _, ok := mustParse(t, "v: hello\n").Get("v").Bool(); ok {
		t.Error("Bool on string ok")
	}
	// Int with underscores and hex.
	if v, ok := mustParse(t, "v: 1_000\n").Get("v").Int(); !ok || v != 1000 {
		t.Errorf("Int(1_000) = %v, %v", v, ok)
	}
	if v, ok := mustParse(t, "v: 0x1F\n").Get("v").Int(); !ok || v != 31 {
		t.Errorf("Int(0x1F) = %v, %v", v, ok)
	}
	// Float from int scalar.
	if v, ok := mustParse(t, "v: 3\n").Get("v").Float(); !ok || v != 3 {
		t.Errorf("Float(3) = %v, %v", v, ok)
	}
	if v, ok := mustParse(t, "v: 2.5\n").Get("v").Float(); !ok || v != 2.5 {
		t.Errorf("Float(2.5) = %v, %v", v, ok)
	}
	if _, ok := mustParse(t, "v: text\n").Get("v").Float(); ok {
		t.Error("Float on string ok")
	}
	// Len on scalar counts bytes; on nil 0.
	if mustParse(t, "v: abc\n").Get("v").Len() != 3 {
		t.Error("scalar Len wrong")
	}
	var nilNode *Node
	if nilNode.Len() != 0 {
		t.Error("nil Len wrong")
	}
}

func TestEqualKindMismatch(t *testing.T) {
	a := mustParse(t, "v: 1\n")
	b := mustParse(t, "- 1\n")
	if a.Equal(b) {
		t.Error("mapping equal to sequence")
	}
	// nil vs non-null.
	var n *Node
	if n.Equal(Scalar("x")) {
		t.Error("nil equal to scalar")
	}
	if !n.Equal(NullScalar()) {
		t.Error("nil not equal to null scalar")
	}
	// Different mapping lengths.
	c := mustParse(t, "a: 1\nb: 2\n")
	d := mustParse(t, "a: 1\n")
	if c.Equal(d) {
		t.Error("different-size mappings equal")
	}
	// Different sequence lengths.
	e := mustParse(t, "- 1\n- 2\n")
	f := mustParse(t, "- 1\n")
	if e.Equal(f) {
		t.Error("different-size sequences equal")
	}
}

func TestDoubleQuotedEscapes(t *testing.T) {
	tests := map[string]string{
		`v: "tab\there"`:     "tab\there",
		`v: "nl\nline"`:      "nl\nline",
		`v: "cr\rret"`:       "cr\rret",
		`v: "back\\slash"`:   `back\slash`,
		`v: "quote\"inside"`: `quote"inside`,
		`v: "hex\x41char"`:   "hexAchar",
		`v: "uniécode"`:      "uniécode",
		`v: "nul\0byte"`:     "nul\x00byte",
	}
	for src, want := range tests {
		n := mustParse(t, src+"\n")
		if got := n.Get("v").Value; got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
	for _, bad := range []string{
		`v: "dangling\"` + "\n",
		`v: "badesc\q"` + "\n",
		`v: "shorthex\x4"` + "\n",
		`v: "shortuni\u00"` + "\n",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted invalid escape", bad)
		}
	}
}

func TestFlowQuotedStrings(t *testing.T) {
	n := mustParse(t, `v: {a: 'single q', b: "double q", c: [x, 'y, z']}`+"\n")
	c := n.Get("v")
	if c.Get("a").Value != "single q" || c.Get("b").Value != "double q" {
		t.Errorf("flow quoted = %v / %v", c.Get("a"), c.Get("b"))
	}
	list := c.Get("c")
	if len(list.Items) != 2 || list.Items[1].Value != "y, z" {
		t.Errorf("quoted comma in flow list = %+v", list)
	}
}

func TestFlowSinglePairMappings(t *testing.T) {
	n := mustParse(t, "pairs: [a: 1, b: 2]\n")
	pairs := n.Get("pairs")
	if pairs.Kind != SequenceNode || len(pairs.Items) != 2 {
		t.Fatalf("pairs = %+v", pairs)
	}
	if v, _ := pairs.Items[0].Get("a").Int(); v != 1 {
		t.Errorf("first pair = %v", pairs.Items[0])
	}
}

func TestFlowErrors(t *testing.T) {
	bad := []string{
		"v: {a: 1 b: 2}\n",    // missing comma
		"v: {a: 'unclosed}\n", // unterminated quote in flow
		"v: [\"unclosed]\n",   // unterminated double quote in flow
		"v: {}} \n",           // trailing content: brace depth mismatch is caught as trailing
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestMarshalSequenceItems(t *testing.T) {
	// Sequence items of every shape: nested seq, empty map, empty seq,
	// block text, null.
	seq := Sequence(
		Sequence(Scalar("x")),
		Mapping(),
		Sequence(),
		ScalarTyped("line1\nline2\n", StrTag, Literal),
		NullScalar(),
	)
	out := Marshal(seq)
	back, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if !seq.Equal(back) {
		t.Errorf("round trip changed:\n%s", out)
	}
}

func TestMarshalNonScalarKey(t *testing.T) {
	// Degenerate mapping keys must not panic.
	m := Mapping()
	m.Keys = append(m.Keys, Sequence(Scalar("k")))
	m.Values = append(m.Values, Scalar("v"))
	out := Marshal(m)
	if !strings.Contains(out, ":") {
		t.Errorf("weird key output: %q", out)
	}
}

func TestEncodeQuotedControlChars(t *testing.T) {
	n := Mapping().Set("k", ScalarTyped("bell\x07beep", StrTag, Plain))
	out := Marshal(n)
	back, err := Parse(out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if back.Get("k").Value != "bell\x07beep" {
		t.Errorf("control char lost: %q", back.Get("k").Value)
	}
}

func TestBracketDepthQuotes(t *testing.T) {
	if bracketDepth(`{a: "}未closed"`) != 1 {
		t.Error("quoted brace counted")
	}
	if bracketDepth(`[1, 2]`) != 0 {
		t.Error("balanced text nonzero")
	}
	if bracketDepth(`{'}': [`) != 2 {
		t.Error("single-quoted brace counted")
	}
}

func TestMultilineFlowMapping(t *testing.T) {
	src := "cfg: {a: 1,\n  b: 2,\n  c: [3,\n   4]}\n"
	n := mustParse(t, src)
	cfg := n.Get("cfg")
	if cfg.Len() != 3 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if items := cfg.Get("c").Items; len(items) != 2 {
		t.Errorf("c = %+v", items)
	}
}

func TestSetPanicsOnNonMapping(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set on sequence did not panic")
		}
	}()
	Sequence().Set("k", Scalar("v"))
}
