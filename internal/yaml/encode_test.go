package yaml

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMarshalScalarQuoting(t *testing.T) {
	tests := []struct {
		node *Node
		want string
	}{
		{Scalar("plain"), "plain\n"},
		{ScalarTyped("true", StrTag, Plain), "'true'\n"}, // string that looks like bool
		{ScalarTyped("123", StrTag, Plain), "'123'\n"},   // string that looks like int
		{ScalarTyped("", StrTag, Plain), "''\n"},         // empty string
		{BoolScalar(true), "true\n"},
		{IntScalar(42), "42\n"},
		{NullScalar(), "null\n"},
		{Scalar("has: colon"), "'has: colon'\n"},
		{Scalar("- leading dash"), "'- leading dash'\n"},
		{Scalar("#comment-like"), "'#comment-like'\n"},
	}
	for _, tt := range tests {
		if got := Marshal(tt.node); got != tt.want {
			t.Errorf("Marshal(%+v) = %q, want %q", tt.node, got, tt.want)
		}
	}
}

func TestMarshalMapping(t *testing.T) {
	m := Mapping().
		Set("name", Scalar("install nginx")).
		Set("state", Scalar("present")).
		Set("update_cache", BoolScalar(true))
	want := "name: install nginx\nstate: present\nupdate_cache: true\n"
	if got := Marshal(m); got != want {
		t.Errorf("Marshal = %q, want %q", got, want)
	}
}

func TestMarshalNested(t *testing.T) {
	task := Mapping().
		Set("name", Scalar("Install SSH server")).
		Set("ansible.builtin.apt", Mapping().
			Set("name", Scalar("openssh-server")).
			Set("state", Scalar("present")))
	pb := Sequence(Mapping().
		Set("hosts", Scalar("servers")).
		Set("tasks", Sequence(task)))
	got := MarshalDocument(pb)
	want := `---
- hosts: servers
  tasks:
    - name: Install SSH server
      ansible.builtin.apt:
        name: openssh-server
        state: present
`
	if got != want {
		t.Errorf("Marshal playbook:\n%s\nwant:\n%s", got, want)
	}
}

func TestMarshalParseRoundTripFixed(t *testing.T) {
	srcs := []string{
		"a: 1\n",
		"- x\n- y\n",
		"m:\n  n:\n    - 1\n    - 2\n",
		"script: |\n  line1\n  line2\n",
		"empty: {}\nlist: []\n",
		"quoted: 'a: b'\n",
		"multi: |-\n  a\n  b\n",
	}
	for _, src := range srcs {
		n1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		out := Marshal(n1)
		n2, err := Parse(out)
		if err != nil {
			t.Fatalf("re-Parse of %q (from %q): %v", out, src, err)
		}
		if !n1.Equal(n2) {
			t.Errorf("round-trip changed value: %q -> %q", src, out)
		}
	}
}

// genNode builds a random node tree for property testing.
func genNode(r *rand.Rand, depth int) *Node {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(6) {
		case 0:
			return IntScalar(r.Intn(2000) - 1000)
		case 1:
			return BoolScalar(r.Intn(2) == 0)
		case 2:
			return NullScalar()
		case 3:
			// Tricky strings.
			tricky := []string{
				"true", "123", "3.14", "null", "", "a: b", "#x", "- y",
				"it's", `quote"inside`, "trailing ", " leading",
				"http://host:80", "a\nb\nc\n", "multi\nline", "x\n\ny\n",
			}
			return ScalarTyped(tricky[r.Intn(len(tricky))], StrTag, Plain)
		default:
			letters := "abcdefghij_-. "
			n := r.Intn(12) + 1
			var sb strings.Builder
			for i := 0; i < n; i++ {
				sb.WriteByte(letters[r.Intn(len(letters))])
			}
			v := strings.TrimSpace(sb.String())
			if v == "" {
				v = "x"
			}
			return ScalarTyped(v, StrTag, Plain)
		}
	}
	if r.Intn(2) == 0 {
		m := Mapping()
		for i := 0; i < r.Intn(4)+1; i++ {
			m.Set("key"+string(rune('a'+i)), genNode(r, depth-1))
		}
		return m
	}
	s := Sequence()
	for i := 0; i < r.Intn(4)+1; i++ {
		s.Items = append(s.Items, genNode(r, depth-1))
	}
	return s
}

func TestMarshalParseRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		n1 := genNode(r, 4)
		out := Marshal(n1)
		n2, err := Parse(out)
		if err != nil {
			t.Fatalf("iteration %d: re-parse of\n%s\nfailed: %v", i, out, err)
		}
		if !n1.Equal(n2) {
			t.Fatalf("iteration %d: round trip changed tree.\nmarshalled:\n%s\noriginal: %+v\nreparsed: %+v",
				i, out, n1, n2)
		}
	}
}

func TestQuickScalarStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		// Arbitrary strings, as long as they are valid UTF-8 without
		// carriage returns (the parser normalises \r\n), must round-trip.
		if strings.ContainsRune(s, '\r') {
			return true
		}
		n := ScalarTyped(s, StrTag, Plain)
		out := Marshal(Mapping().Set("k", n))
		parsed, err := Parse(out)
		if err != nil {
			return false
		}
		got := parsed.Get("k")
		return got != nil && got.Value == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := genNode(r, 4)
	a, b := Marshal(n), Marshal(n)
	if a != b {
		t.Error("Marshal is not deterministic")
	}
}

func TestFromGoSortedKeys(t *testing.T) {
	n := FromGo(map[string]any{"z": 1, "a": 2, "m": 3})
	if n.Keys[0].Value != "a" || n.Keys[1].Value != "m" || n.Keys[2].Value != "z" {
		t.Errorf("keys not sorted: %v %v %v", n.Keys[0].Value, n.Keys[1].Value, n.Keys[2].Value)
	}
}

func TestFromGoToGo(t *testing.T) {
	in := map[string]any{
		"s":    "str",
		"i":    int64(5),
		"f":    1.5,
		"b":    true,
		"null": nil,
		"list": []any{"x", int64(1)},
	}
	out := ToGo(FromGo(in))
	m, ok := out.(map[string]any)
	if !ok {
		t.Fatalf("out = %T", out)
	}
	if m["s"] != "str" || m["i"] != int64(5) || m["f"] != 1.5 || m["b"] != true || m["null"] != nil {
		t.Errorf("round trip = %#v", m)
	}
}
