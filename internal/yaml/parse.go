package yaml

import (
	"fmt"
	"strconv"
	"strings"
)

// SyntaxError describes a parse failure with its 1-based source position.
type SyntaxError struct {
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("yaml: line %d: %s", e.Line, e.Msg)
}

// Parse parses a source holding exactly one YAML document and returns its
// root node. An empty (or comment-only) source yields a null scalar root.
func Parse(src string) (*Node, error) {
	docs, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	switch len(docs) {
	case 0:
		return NullScalar(), nil
	case 1:
		return docs[0], nil
	default:
		return nil, &SyntaxError{Line: 1, Msg: fmt.Sprintf("expected one document, found %d", len(docs))}
	}
}

// ParseAll parses a multi-document YAML stream and returns one root node per
// document. Documents are separated by "---"; an optional trailing "..."
// terminates a document.
func ParseAll(src string) ([]*Node, error) {
	p := &parser{anchors: make(map[string]*Node)}
	p.split(src)
	var docs []*Node
	for !p.eof() {
		// Skip blank lines, comments and document markers between docs.
		ln := p.peek()
		switch {
		case ln.text == "---" || strings.HasPrefix(ln.text, "--- "):
			if ln.text == "---" {
				p.next()
				continue
			}
			// "--- value" puts the root value on the marker line.
			rest := strings.TrimPrefix(ln.text, "--- ")
			p.lines[p.pos].text = rest
			p.lines[p.pos].indent = ln.indent + 4
		case ln.text == "...":
			p.next()
			continue
		}
		node, err := p.parseValue(0)
		if err != nil {
			return nil, err
		}
		docs = append(docs, node)
	}
	return docs, nil
}

// line is one physical source line with its indentation precomputed.
type line struct {
	num    int
	indent int
	text   string // content after the indent, trailing newline removed
}

type parser struct {
	raw     []string // every physical line, for block-scalar bodies
	lines   []line   // structural lines only
	pos     int
	anchors map[string]*Node
}

// split breaks the source into structural lines, dropping blank and
// comment-only lines (their positions never affect block structure for the
// subset we accept: block scalars re-read raw lines, see parseBlockScalar).
func (p *parser) split(src string) {
	p.raw = strings.Split(src, "\n")
	for i, r := range p.raw {
		r = strings.TrimRight(r, "\r")
		trimmed := strings.TrimLeft(r, " ")
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		p.lines = append(p.lines, line{num: i + 1, indent: len(r) - len(trimmed), text: trimmed})
	}
}

func (p *parser) eof() bool  { return p.pos >= len(p.lines) }
func (p *parser) peek() line { return p.lines[p.pos] }
func (p *parser) next() line { l := p.lines[p.pos]; p.pos++; return l }
func (p *parser) errf(l line, format string, args ...any) error {
	return &SyntaxError{Line: l.num, Col: l.indent + 1, Msg: fmt.Sprintf(format, args...)}
}

// parseValue parses the block node that starts at the current line, which
// must be indented at least minIndent columns.
func (p *parser) parseValue(minIndent int) (*Node, error) {
	if p.eof() {
		return NullScalar(), nil
	}
	ln := p.peek()
	if ln.indent < minIndent {
		return NullScalar(), nil
	}
	if ln.text == "-" || strings.HasPrefix(ln.text, "- ") {
		return p.parseBlockSeq(ln.indent)
	}
	if key, _, ok := splitKey(ln.text); ok && key != "" {
		return p.parseBlockMap(ln.indent)
	}
	// Scalar or flow collection on its own line.
	p.next()
	return p.parseInline(ln, ln.text)
}

// parseBlockSeq parses consecutive "- ..." items at exactly the given indent.
func (p *parser) parseBlockSeq(indent int) (*Node, error) {
	seq := &Node{Kind: SequenceNode, Line: p.peek().num, Col: indent + 1}
	for !p.eof() {
		ln := p.peek()
		if ln.indent != indent || (ln.text != "-" && !strings.HasPrefix(ln.text, "- ")) {
			if ln.indent > indent {
				return nil, p.errf(ln, "unexpected indentation inside sequence")
			}
			break
		}
		if ln.text == "-" {
			// Item body on following more-indented lines (or null).
			p.next()
			item, err := p.parseChild(indent)
			if err != nil {
				return nil, err
			}
			seq.Items = append(seq.Items, item)
			continue
		}
		// "- content": re-enter the parser with the dash stripped, so that
		// "- key: v" parses as a mapping whose first line sits at the dash
		// column + 2. Nested "- - x" recurses naturally.
		rest := ln.text[1:]
		trimmed := strings.TrimLeft(rest, " ")
		p.lines[p.pos].text = trimmed
		p.lines[p.pos].indent = ln.indent + 1 + (len(rest) - len(trimmed))
		item, err := p.parseValue(indent + 1)
		if err != nil {
			return nil, err
		}
		seq.Items = append(seq.Items, item)
	}
	return seq, nil
}

// parseChild parses the node nested under a construct whose own line sits at
// parentIndent; a child must be indented strictly deeper, otherwise the value
// is null.
func (p *parser) parseChild(parentIndent int) (*Node, error) {
	if p.eof() || p.peek().indent <= parentIndent {
		return NullScalar(), nil
	}
	return p.parseValue(parentIndent + 1)
}

// parseBlockMap parses consecutive "key: value" entries at the given indent.
func (p *parser) parseBlockMap(indent int) (*Node, error) {
	m := &Node{Kind: MappingNode, Line: p.peek().num, Col: indent + 1}
	startLine := p.peek()
	var merges []*Node
	for !p.eof() {
		ln := p.peek()
		if ln.indent != indent {
			if ln.indent > indent {
				return nil, p.errf(ln, "unexpected indentation inside mapping")
			}
			break
		}
		if ln.text == "-" || strings.HasPrefix(ln.text, "- ") {
			break
		}
		keyText, rest, ok := splitKey(ln.text)
		if !ok {
			break
		}
		p.next()
		keyNode, err := parseScalarToken(keyText, ln)
		if err != nil {
			return nil, err
		}
		keyNode.Line, keyNode.Col = ln.num, ln.indent+1
		if keyNode.Value != mergeKey {
			for _, k := range m.Keys {
				if k.Value == keyNode.Value && k.Kind == ScalarNode {
					return nil, p.errf(ln, "duplicate mapping key %q", keyNode.Value)
				}
			}
		}
		var val *Node
		if rest == "" {
			// Value nested on following lines; a sequence may sit at the
			// same indent as its key (common Ansible style) or deeper.
			if !p.eof() && p.peek().indent == indent &&
				(p.peek().text == "-" || strings.HasPrefix(p.peek().text, "- ")) {
				val, err = p.parseBlockSeq(indent)
			} else {
				val, err = p.parseChild(indent)
			}
		} else {
			val, err = p.parseInline(ln, rest)
		}
		if err != nil {
			return nil, err
		}
		if keyNode.Value == mergeKey {
			merges = append(merges, val)
			continue
		}
		m.Keys = append(m.Keys, keyNode)
		m.Values = append(m.Values, val)
	}
	if err := applyMerges(m, merges, p, startLine); err != nil {
		return nil, err
	}
	return m, nil
}

// mergeKey is the YAML merge-key indicator ("<<: *defaults").
const mergeKey = "<<"

// applyMerges folds merge-key values into the mapping: entries from the
// merged mapping(s) are appended unless an explicit key overrides them, per
// the YAML merge-key specification.
func applyMerges(m *Node, merges []*Node, p *parser, ln line) error {
	for _, merge := range merges {
		var sources []*Node
		switch {
		case merge == nil:
			continue
		case merge.Kind == MappingNode:
			sources = []*Node{merge}
		case merge.Kind == SequenceNode:
			sources = merge.Items
		default:
			return p.errf(ln, "merge key value must be a mapping or list of mappings")
		}
		for _, src := range sources {
			if src == nil || src.Kind != MappingNode {
				return p.errf(ln, "merge key value must be a mapping or list of mappings")
			}
			for i, k := range src.Keys {
				if k.Kind == ScalarNode && m.Has(k.Value) {
					continue // explicit keys win
				}
				m.Keys = append(m.Keys, k.Clone())
				m.Values = append(m.Values, src.Values[i].Clone())
			}
		}
	}
	return nil
}

// anchorToken splits "&name rest"; ok is false when text is not an anchor.
func anchorToken(text string) (name, rest string, ok bool) {
	if len(text) < 2 || text[0] != '&' {
		return "", "", false
	}
	end := 1
	for end < len(text) && text[end] != ' ' {
		end++
	}
	name = text[1:end]
	if !isAnchorName(name) {
		return "", "", false
	}
	return name, strings.TrimSpace(text[end:]), true
}

// isAnchorName accepts the identifier-like anchor names YAML uses.
func isAnchorName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			continue
		}
		return false
	}
	return true
}

// parseInline parses a value that begins on the already-consumed line ln:
// a flow collection, a block-scalar header, or a single-line scalar.
func (p *parser) parseInline(ln line, text string) (*Node, error) {
	text = strings.TrimSpace(text)
	if text == "" {
		return &Node{Kind: ScalarNode, Tag: NullTag, Line: ln.num}, nil
	}
	// Anchor: "&name value" anchors the value; "&name" alone anchors the
	// nested block that follows on deeper-indented lines.
	if name, rest, ok := anchorToken(text); ok {
		var n *Node
		var err error
		if rest == "" {
			n, err = p.parseChild(ln.indent)
		} else {
			n, err = p.parseInline(ln, rest)
		}
		if err != nil {
			return nil, err
		}
		p.anchors[name] = n
		return n, nil
	}
	// Alias: "*name" resolves to a copy of the anchored node.
	if len(text) > 1 && text[0] == '*' && isAnchorName(text[1:]) {
		n, ok := p.anchors[text[1:]]
		if !ok {
			return nil, p.errf(ln, "unknown alias *%s", text[1:])
		}
		return n.Clone(), nil
	}
	switch text[0] {
	case '|', '>':
		return p.parseBlockScalar(ln, text)
	case '{', '[':
		joined := text
		for bracketDepth(joined) != 0 {
			if p.eof() {
				return nil, p.errf(ln, "unterminated flow collection")
			}
			joined += " " + p.next().text
		}
		n, rest, err := p.parseFlow(joined, ln)
		if err != nil {
			return nil, err
		}
		rest = strings.TrimSpace(rest)
		if rest != "" && !strings.HasPrefix(rest, "#") {
			return nil, p.errf(ln, "trailing content %q after flow collection", rest)
		}
		return n, nil
	}
	n, err := parseScalarToken(stripComment(text), ln)
	if err != nil {
		return nil, err
	}
	n.Line, n.Col = ln.num, ln.indent+1
	return n, nil
}

// parseBlockScalar parses a literal (|) or folded (>) block scalar whose
// header is on line ln. Blank interior lines matter, so it re-reads the raw
// source lines between the header and the next structural line.
func (p *parser) parseBlockScalar(ln line, header string) (*Node, error) {
	style := Literal
	if header[0] == '>' {
		style = Folded
	}
	chomp := byte(0) // 0 = clip, '-' = strip, '+' = keep
	explicitIndent := 0
	for _, c := range header[1:] {
		switch {
		case c == '-' || c == '+':
			chomp = byte(c)
		case c >= '1' && c <= '9':
			explicitIndent = int(c - '0')
		case c == ' ' || c == '#':
			// Trailing comment on the header line.
		}
		if c == ' ' || c == '#' {
			break
		}
	}

	// The body is every following raw line that is blank or indented
	// strictly deeper than the header line. Raw lines are used because the
	// structural pass cannot see inside a block scalar (its lines may look
	// like mappings or comments) and because interior blank lines matter.
	end := ln.num // 0-based index of first candidate body line
	for end < len(p.raw) {
		r := strings.TrimRight(p.raw[end], "\r")
		t := strings.TrimLeft(r, " ")
		if t == "" {
			end++
			continue
		}
		if len(r)-len(t) <= ln.indent {
			break
		}
		end++
	}
	var body []string
	for i := ln.num; i < end; i++ {
		body = append(body, strings.TrimRight(p.raw[i], "\r"))
	}
	// Fix the block indent from the first non-blank body line (or the
	// explicit indicator relative to the header's indent).
	blockIndent := -1
	if explicitIndent > 0 {
		blockIndent = ln.indent + explicitIndent
	} else {
		for _, b := range body {
			if strings.TrimSpace(b) == "" {
				continue
			}
			blockIndent = len(b) - len(strings.TrimLeft(b, " "))
			break
		}
	}
	var content []string
	for _, b := range body {
		if strings.TrimSpace(b) == "" {
			content = append(content, "")
			continue
		}
		if blockIndent >= 0 && len(b) >= blockIndent {
			content = append(content, b[blockIndent:])
		} else {
			content = append(content, strings.TrimLeft(b, " "))
		}
	}
	// Advance past the structural lines that fell inside the body window.
	for !p.eof() && p.peek().num <= end {
		p.next()
	}

	text := assembleBlockScalar(content, style, chomp)
	return &Node{Kind: ScalarNode, Value: text, Style: style, Tag: StrTag, Line: ln.num, Col: ln.indent + 1}, nil
}

// assembleBlockScalar joins block-scalar content lines per the style and
// chomping indicator.
func assembleBlockScalar(lines []string, style Style, chomp byte) string {
	// Drop trailing blank lines but remember how many for keep-chomping.
	trailing := 0
	for len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
		trailing++
	}
	var sb strings.Builder
	if style == Literal {
		for i, l := range lines {
			if i > 0 {
				sb.WriteByte('\n')
			}
			sb.WriteString(l)
		}
	} else {
		prevBlank := false
		for i, l := range lines {
			if l == "" {
				sb.WriteByte('\n')
				prevBlank = true
				continue
			}
			if i > 0 && !prevBlank {
				sb.WriteByte(' ')
			}
			sb.WriteString(l)
			prevBlank = false
		}
	}
	switch chomp {
	case '-':
		return sb.String()
	case '+':
		return sb.String() + strings.Repeat("\n", trailing+1)
	default:
		if sb.Len() == 0 {
			return ""
		}
		return sb.String() + "\n"
	}
}

// splitKey splits "key: rest" at the first unquoted, top-level ": " (or a
// trailing ":"). ok is false when the line is not a mapping entry.
func splitKey(text string) (key, rest string, ok bool) {
	inSingle, inDouble := false, false
	depth := 0
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case inSingle:
			if c == '\'' {
				inSingle = false
			}
		case inDouble:
			if c == '\\' {
				i++
			} else if c == '"' {
				inDouble = false
			}
		case c == '\'':
			inSingle = true
		case c == '"':
			inDouble = true
		case c == '{' || c == '[':
			depth++
		case c == '}' || c == ']':
			depth--
		case c == '#' && i > 0 && text[i-1] == ' ' && depth == 0:
			// Comment starts; no key separator found before it.
			return "", "", false
		case c == ':' && depth == 0:
			if i+1 == len(text) {
				return strings.TrimSpace(text[:i]), "", true
			}
			if text[i+1] == ' ' {
				return strings.TrimSpace(text[:i]), strings.TrimSpace(text[i+1:]), true
			}
		}
	}
	return "", "", false
}

// stripComment removes an unquoted trailing comment (" #...") from a plain
// scalar line.
func stripComment(text string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case inSingle:
			if c == '\'' {
				inSingle = false
			}
		case inDouble:
			if c == '\\' {
				i++
			} else if c == '"' {
				inDouble = false
			}
		case c == '\'':
			inSingle = true
		case c == '"':
			inDouble = true
		case c == '#' && i > 0 && (text[i-1] == ' ' || text[i-1] == '\t'):
			return strings.TrimRight(text[:i], " \t")
		}
	}
	return text
}

// parseScalarToken decodes a single scalar token: quoted, or plain.
func parseScalarToken(tok string, ln line) (*Node, error) {
	tok = strings.TrimSpace(tok)
	if tok == "" {
		return &Node{Kind: ScalarNode, Tag: NullTag}, nil
	}
	switch tok[0] {
	case '\'':
		if len(tok) < 2 || tok[len(tok)-1] != '\'' {
			return nil, &SyntaxError{Line: ln.num, Msg: "unterminated single-quoted scalar"}
		}
		v := strings.ReplaceAll(tok[1:len(tok)-1], "''", "'")
		return &Node{Kind: ScalarNode, Value: v, Style: SingleQuoted, Tag: StrTag}, nil
	case '"':
		if len(tok) < 2 || tok[len(tok)-1] != '"' {
			return nil, &SyntaxError{Line: ln.num, Msg: "unterminated double-quoted scalar"}
		}
		v, err := unescapeDouble(tok[1 : len(tok)-1])
		if err != nil {
			return nil, &SyntaxError{Line: ln.num, Msg: err.Error()}
		}
		return &Node{Kind: ScalarNode, Value: v, Style: DoubleQuoted, Tag: StrTag}, nil
	}
	return &Node{Kind: ScalarNode, Value: tok, Tag: resolveTag(tok, Plain)}, nil
}

// unescapeDouble resolves the escape sequences permitted in double-quoted
// scalars.
func unescapeDouble(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			sb.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("dangling escape in double-quoted scalar")
		}
		switch s[i] {
		case 'n':
			sb.WriteByte('\n')
		case 't':
			sb.WriteByte('\t')
		case 'r':
			sb.WriteByte('\r')
		case '0':
			sb.WriteByte(0)
		case '\\':
			sb.WriteByte('\\')
		case '"':
			sb.WriteByte('"')
		case 'x':
			if i+2 >= len(s) {
				return "", fmt.Errorf("truncated \\x escape")
			}
			v, err := strconv.ParseUint(s[i+1:i+3], 16, 8)
			if err != nil {
				return "", fmt.Errorf("invalid \\x escape: %v", err)
			}
			sb.WriteByte(byte(v))
			i += 2
		case 'u':
			if i+4 >= len(s) {
				return "", fmt.Errorf("truncated \\u escape")
			}
			v, err := strconv.ParseUint(s[i+1:i+5], 16, 32)
			if err != nil {
				return "", fmt.Errorf("invalid \\u escape: %v", err)
			}
			sb.WriteRune(rune(v))
			i += 4
		default:
			return "", fmt.Errorf("unknown escape \\%c", s[i])
		}
	}
	return sb.String(), nil
}

// bracketDepth returns the net open-bracket depth of text, ignoring brackets
// inside quotes; used to join multi-line flow collections.
func bracketDepth(text string) int {
	inSingle, inDouble := false, false
	depth := 0
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case inSingle:
			if c == '\'' {
				inSingle = false
			}
		case inDouble:
			if c == '\\' {
				i++
			} else if c == '"' {
				inDouble = false
			}
		case c == '\'':
			inSingle = true
		case c == '"':
			inDouble = true
		case c == '{' || c == '[':
			depth++
		case c == '}' || c == ']':
			depth--
		}
	}
	return depth
}

// parseFlow parses a flow value ({...}, [...], or a flow scalar) from the
// start of text, returning the node and the unconsumed remainder.
func (p *parser) parseFlow(text string, ln line) (*Node, string, error) {
	text = strings.TrimLeft(text, " ")
	if text == "" {
		return &Node{Kind: ScalarNode, Tag: NullTag}, "", nil
	}
	switch text[0] {
	case '{':
		return p.parseFlowMap(text[1:], ln)
	case '[':
		return p.parseFlowSeq(text[1:], ln)
	case '\'':
		end := findSingleEnd(text)
		if end < 0 {
			return nil, "", &SyntaxError{Line: ln.num, Msg: "unterminated single-quoted scalar in flow"}
		}
		n, err := parseScalarToken(text[:end+1], ln)
		return n, text[end+1:], err
	case '"':
		end := findDoubleEnd(text)
		if end < 0 {
			return nil, "", &SyntaxError{Line: ln.num, Msg: "unterminated double-quoted scalar in flow"}
		}
		n, err := parseScalarToken(text[:end+1], ln)
		return n, text[end+1:], err
	}
	// Plain flow scalar: up to , } ] or ": ".
	for i := 0; i < len(text); i++ {
		c := text[i]
		if c == ',' || c == '}' || c == ']' {
			n, err := p.flowScalar(text[:i], ln)
			return n, text[i:], err
		}
		if c == ':' && (i+1 == len(text) || text[i+1] == ' ' || text[i+1] == ',' || text[i+1] == '}') {
			n, err := p.flowScalar(text[:i], ln)
			return n, text[i:], err
		}
	}
	n, err := p.flowScalar(text, ln)
	return n, "", err
}

// flowScalar decodes a plain flow token, resolving aliases.
func (p *parser) flowScalar(tok string, ln line) (*Node, error) {
	trimmed := strings.TrimSpace(tok)
	if len(trimmed) > 1 && trimmed[0] == '*' && isAnchorName(trimmed[1:]) {
		n, ok := p.anchors[trimmed[1:]]
		if !ok {
			return nil, p.errf(ln, "unknown alias %s", trimmed)
		}
		return n.Clone(), nil
	}
	return parseScalarToken(tok, ln)
}

func findSingleEnd(text string) int {
	for i := 1; i < len(text); i++ {
		if text[i] == '\'' {
			if i+1 < len(text) && text[i+1] == '\'' {
				i++
				continue
			}
			return i
		}
	}
	return -1
}

func findDoubleEnd(text string) int {
	for i := 1; i < len(text); i++ {
		if text[i] == '\\' {
			i++
			continue
		}
		if text[i] == '"' {
			return i
		}
	}
	return -1
}

func (p *parser) parseFlowMap(text string, ln line) (*Node, string, error) {
	m := &Node{Kind: MappingNode, Line: ln.num}
	rest := strings.TrimLeft(text, " ")
	for {
		if rest == "" {
			return nil, "", &SyntaxError{Line: ln.num, Msg: "unterminated flow mapping"}
		}
		if rest[0] == '}' {
			return m, rest[1:], nil
		}
		key, r2, err := p.parseFlow(rest, ln)
		if err != nil {
			return nil, "", err
		}
		rest = strings.TrimLeft(r2, " ")
		var val *Node
		if strings.HasPrefix(rest, ":") {
			val, r2, err = p.parseFlow(rest[1:], ln)
			if err != nil {
				return nil, "", err
			}
			rest = strings.TrimLeft(r2, " ")
		} else {
			val = NullScalar()
		}
		// Same duplicate-key rule as block mappings; without it a flow
		// document like {a, a} parses but re-encodes to an invalid block
		// mapping.
		if key.Kind == ScalarNode && key.Value != mergeKey {
			for _, k := range m.Keys {
				if k.Kind == ScalarNode && k.Value == key.Value {
					return nil, "", &SyntaxError{Line: ln.num, Msg: fmt.Sprintf("duplicate mapping key %q", key.Value)}
				}
			}
		}
		m.Keys = append(m.Keys, key)
		m.Values = append(m.Values, val)
		switch {
		case strings.HasPrefix(rest, ","):
			rest = strings.TrimLeft(rest[1:], " ")
		case strings.HasPrefix(rest, "}"):
			return m, rest[1:], nil
		default:
			return nil, "", &SyntaxError{Line: ln.num, Msg: fmt.Sprintf("expected ',' or '}' in flow mapping, found %q", rest)}
		}
	}
}

func (p *parser) parseFlowSeq(text string, ln line) (*Node, string, error) {
	s := &Node{Kind: SequenceNode, Line: ln.num}
	rest := strings.TrimLeft(text, " ")
	for {
		if rest == "" {
			return nil, "", &SyntaxError{Line: ln.num, Msg: "unterminated flow sequence"}
		}
		if rest[0] == ']' {
			return s, rest[1:], nil
		}
		item, r2, err := p.parseFlow(rest, ln)
		if err != nil {
			return nil, "", err
		}
		rest = strings.TrimLeft(r2, " ")
		// A flow sequence may contain single-pair mappings: [a: b, c: d].
		if strings.HasPrefix(rest, ":") && item.Kind == ScalarNode {
			var val *Node
			val, r2, err = p.parseFlow(rest[1:], ln)
			if err != nil {
				return nil, "", err
			}
			rest = strings.TrimLeft(r2, " ")
			pair := Mapping()
			pair.Keys = append(pair.Keys, item)
			pair.Values = append(pair.Values, val)
			item = pair
		}
		s.Items = append(s.Items, item)
		switch {
		case strings.HasPrefix(rest, ","):
			rest = strings.TrimLeft(rest[1:], " ")
		case strings.HasPrefix(rest, "]"):
			return s, rest[1:], nil
		default:
			return nil, "", &SyntaxError{Line: ln.num, Msg: fmt.Sprintf("expected ',' or ']' in flow sequence, found %q", rest)}
		}
	}
}
