package yaml

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Marshal serializes a node tree to YAML text in the Ansible style the paper
// standardises on: two-space indentation, block collections, sequences
// indented under their key, and minimal quoting that preserves each scalar's
// resolved tag.
func Marshal(n *Node) string {
	var sb strings.Builder
	writeNode(&sb, n, 0, false)
	out := sb.String()
	if out != "" && !strings.HasSuffix(out, "\n") {
		out += "\n"
	}
	return out
}

// MarshalDocument serializes a node tree as a full document with the leading
// "---" directives-end marker used by Ansible playbooks.
func MarshalDocument(n *Node) string {
	return "---\n" + Marshal(n)
}

const indentStep = 2

func writeNode(sb *strings.Builder, n *Node, indent int, inline bool) {
	if n == nil {
		n = NullScalar()
	}
	switch n.Kind {
	case ScalarNode:
		sb.WriteString(encodeScalar(n, indent))
		sb.WriteByte('\n')
	case MappingNode:
		if len(n.Keys) == 0 {
			sb.WriteString("{}\n")
			return
		}
		for i, k := range n.Keys {
			if i > 0 || !inline {
				sb.WriteString(strings.Repeat(" ", indent))
			}
			sb.WriteString(encodeKey(k))
			sb.WriteString(":")
			writeChild(sb, n.Values[i], indent)
		}
	case SequenceNode:
		if len(n.Items) == 0 {
			sb.WriteString("[]\n")
			return
		}
		for i, item := range n.Items {
			if i > 0 || !inline {
				sb.WriteString(strings.Repeat(" ", indent))
			}
			sb.WriteString("- ")
			writeItem(sb, item, indent+indentStep)
		}
	}
}

// writeChild writes a mapping value: scalars stay on the key's line, nested
// collections move to following indented lines.
func writeChild(sb *strings.Builder, v *Node, indent int) {
	if v == nil {
		v = NullScalar()
	}
	switch {
	case v.Kind == ScalarNode && v.Tag == NullTag && v.Value == "":
		sb.WriteByte('\n')
	case v.Kind == ScalarNode && isBlockText(v):
		sb.WriteByte(' ')
		writeBlockScalar(sb, v, indent+indentStep)
	case v.Kind == ScalarNode:
		sb.WriteByte(' ')
		sb.WriteString(encodeScalar(v, indent+indentStep))
		sb.WriteByte('\n')
	case v.Kind == MappingNode && len(v.Keys) == 0:
		sb.WriteString(" {}\n")
	case v.Kind == SequenceNode && len(v.Items) == 0:
		sb.WriteString(" []\n")
	default:
		sb.WriteByte('\n')
		writeNode(sb, v, indent+indentStep, false)
	}
}

// writeItem writes a sequence item whose content begins right after "- ".
func writeItem(sb *strings.Builder, item *Node, indent int) {
	if item == nil {
		item = NullScalar()
	}
	switch {
	case item.Kind == ScalarNode && isBlockText(item):
		// The header sits virtually at this item's content column, so the
		// body must be indented one step deeper to parse back.
		writeBlockScalar(sb, item, indent+indentStep)
	case item.Kind == ScalarNode:
		sb.WriteString(encodeScalar(item, indent))
		sb.WriteByte('\n')
	case item.Kind == MappingNode && len(item.Keys) == 0:
		sb.WriteString("{}\n")
	case item.Kind == SequenceNode && len(item.Items) == 0:
		sb.WriteString("[]\n")
	default:
		writeNode(sb, item, indent, true)
	}
}

// writeBlockScalar emits a multi-line scalar in literal (|) form, choosing
// the chomping indicator that round-trips the exact value. Values without any
// newline fall back to a quoted scalar.
func writeBlockScalar(sb *strings.Builder, n *Node, indent int) {
	text := n.Value
	if !strings.Contains(text, "\n") {
		sb.WriteString(encodeQuoted(text))
		sb.WriteByte('\n')
		return
	}
	body := strings.TrimRight(text, "\n")
	trailing := len(text) - len(body) // newlines after the last content line
	var chomp string
	switch trailing {
	case 0:
		chomp = "-"
	case 1:
		chomp = ""
	default:
		chomp = "+"
	}
	sb.WriteString("|" + chomp + "\n")
	for _, l := range strings.Split(body, "\n") {
		if l == "" {
			sb.WriteByte('\n')
			continue
		}
		sb.WriteString(strings.Repeat(" ", indent))
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	// Keep-chomping re-adds the blank lines beyond the first newline.
	for i := 1; i < trailing; i++ {
		sb.WriteByte('\n')
	}
}

// isBlockText reports whether a scalar should be emitted as a block scalar:
// either it was one in the source, or it is a multi-line string.
func isBlockText(n *Node) bool {
	if n.Style == Literal || n.Style == Folded {
		return true
	}
	return n.Tag == StrTag && strings.Contains(n.Value, "\n")
}

// encodeKey renders a mapping key, quoting when required.
func encodeKey(k *Node) string {
	if k == nil || k.Kind != ScalarNode {
		return encodeQuoted(fmt.Sprintf("%v", k))
	}
	return encodeScalar(k, 0)
}

// encodeScalar renders a single-line scalar, preserving the resolved tag:
// a *string* that looks like a bool/number/null is quoted so it stays a
// string, while genuinely typed scalars stay plain.
func encodeScalar(n *Node, indent int) string {
	v := n.Value
	switch n.Tag {
	case NullTag:
		if v == "" {
			return "null"
		}
		return v
	case BoolTag, IntTag, FloatTag:
		return v
	}
	if strings.Contains(v, "\n") {
		// Reached only for positions that cannot hold a block scalar
		// (e.g. mapping keys); escape instead.
		return encodeQuoted(v)
	}
	if n.Style == SingleQuoted {
		return "'" + strings.ReplaceAll(v, "'", "''") + "'"
	}
	if n.Style == DoubleQuoted || needsQuoting(v) {
		return encodeQuoted(v)
	}
	return v
}

// needsQuoting reports whether a plain rendering of v would fail to parse
// back as the same string.
func needsQuoting(v string) bool {
	if v == "" {
		return true
	}
	if resolveTag(v, Plain) != StrTag {
		return true
	}
	switch v[0] {
	case '-', '?', ':', ',', '[', ']', '{', '}', '#', '&', '*', '!', '|', '>', '\'', '"', '%', '@', '`', ' ':
		return true
	}
	if strings.HasSuffix(v, " ") || strings.HasSuffix(v, ":") {
		return true
	}
	if strings.Contains(v, ": ") || strings.Contains(v, " #") {
		return true
	}
	for i := 0; i < len(v); i++ {
		if v[i] < 0x20 {
			return true
		}
	}
	return false
}

// encodeQuoted renders v as a quoted scalar, preferring single quotes and
// falling back to double quotes when control characters require escapes.
func encodeQuoted(v string) string {
	if !strings.ContainsAny(v, "\n\t\r") && isPrintable(v) {
		return "'" + strings.ReplaceAll(v, "'", "''") + "'"
	}
	var sb strings.Builder
	sb.WriteByte('"')
	for _, r := range v {
		switch r {
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		case '\r':
			sb.WriteString(`\r`)
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		default:
			if r < 0x20 {
				sb.WriteString(fmt.Sprintf(`\x%02x`, r))
			} else {
				sb.WriteRune(r)
			}
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

func isPrintable(v string) bool {
	for _, r := range v {
		if r < 0x20 {
			return false
		}
	}
	return true
}

// FromGo converts a Go value into a node tree. Maps are emitted with sorted
// keys so output is deterministic; use *Node directly (or OrderedMap) when
// key order matters. Supported inputs: nil, bool, int/int64, float64, string,
// []any, map[string]any and *Node (passed through).
func FromGo(v any) *Node {
	switch x := v.(type) {
	case nil:
		return NullScalar()
	case *Node:
		return x
	case bool:
		return BoolScalar(x)
	case int:
		return IntScalar(x)
	case int64:
		return &Node{Kind: ScalarNode, Value: strconv.FormatInt(x, 10), Tag: IntTag}
	case float64:
		return &Node{Kind: ScalarNode, Value: strconv.FormatFloat(x, 'g', -1, 64), Tag: FloatTag}
	case string:
		return &Node{Kind: ScalarNode, Value: x, Tag: StrTag}
	case []any:
		s := Sequence()
		for _, item := range x {
			s.Items = append(s.Items, FromGo(item))
		}
		return s
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		m := Mapping()
		for _, k := range keys {
			m.Set(k, FromGo(x[k]))
		}
		return m
	default:
		return Scalar(fmt.Sprintf("%v", v))
	}
}

// ToGo converts a node tree into plain Go values: nil, bool, int64, float64,
// string, []any and map[string]any (losing key order).
func ToGo(n *Node) any {
	if n == nil {
		return nil
	}
	switch n.Kind {
	case ScalarNode:
		switch n.Tag {
		case NullTag:
			return nil
		case BoolTag:
			b, _ := n.Bool()
			return b
		case IntTag:
			if v, ok := n.Int(); ok {
				return v
			}
			return n.Value
		case FloatTag:
			if v, ok := n.Float(); ok {
				return v
			}
			return n.Value
		default:
			return n.Value
		}
	case SequenceNode:
		out := make([]any, len(n.Items))
		for i, item := range n.Items {
			out[i] = ToGo(item)
		}
		return out
	case MappingNode:
		out := make(map[string]any, len(n.Keys))
		for i, k := range n.Keys {
			out[keyString(k)] = ToGo(n.Values[i])
		}
		return out
	}
	return nil
}

func keyString(k *Node) string {
	if k == nil {
		return ""
	}
	return k.Value
}
