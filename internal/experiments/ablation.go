package experiments

import (
	"fmt"
	"strings"

	"wisdom/internal/dataset"
	"wisdom/internal/metrics"
	"wisdom/internal/wisdom"
)

// AblationRow is one metric-design ablation result.
type AblationRow struct {
	Name   string
	Report metrics.Report
}

// InsertionPenaltyAblation evaluates the fine-tuned Table 4 model under the
// Ansible Aware metric with increasing insertion penalties — the study the
// paper's metric section defers ("we plan to investigate the impact of
// including an insertion penalty"). Only the Ansible Aware column responds;
// the other metrics are penalty-independent and act as controls.
func (s *Suite) InsertionPenaltyAblation() ([]AblationRow, error) {
	m, err := s.Finetuned(table4Spec{
		id: wisdom.CodeGenMulti, size: "350M", window: 1024, style: dataset.NameCompletion,
	})
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, penalty := range []float64{0, 0.05, 0.1, 0.25} {
		aware := metrics.NewAnsibleAware()
		aware.InsertionPenalty = penalty
		res := wisdom.EvaluateWithAware(m, s.Pipe.Test, s.Cfg.EvalLimit, aware)
		rows = append(rows, AblationRow{
			Name:   fmt.Sprintf("penalty %.2f", penalty),
			Report: res.Overall,
		})
	}
	return rows, nil
}

// FormatAblation renders the ablation table.
func FormatAblation(rows []AblationRow) string {
	var sb strings.Builder
	sb.WriteString("Insertion-penalty ablation of the Ansible Aware metric (fine-tuned CodeGen-Multi)\n")
	fmt.Fprintf(&sb, "%-16s %7s %7s %7s %8s\n", "Setting", "Schema", "EM", "BLEU", "Aware")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %7.2f %7.2f %7.2f %8.2f\n", r.Name,
			r.Report.SchemaCorrect, r.Report.ExactMatch, r.Report.BLEU, r.Report.AnsibleAware)
	}
	return sb.String()
}

// DecodingAblation compares greedy decoding (the paper's evaluation setting)
// with temperature sampling on the fine-tuned model — the paper notes "we
// would expect some improvement by using random sampling or beam search
// decoding"; at this reproduction's scale greedy is usually the stronger
// setting, and the ablation quantifies the gap.
func (s *Suite) DecodingAblation() ([]AblationRow, error) {
	m, err := s.Finetuned(table4Spec{
		id: wisdom.CodeGenMulti, size: "350M", window: 1024, style: dataset.NameCompletion,
	})
	if err != nil {
		return nil, err
	}
	rows := []AblationRow{}
	greedy := wisdom.Evaluate(m, s.Pipe.Test, s.Cfg.EvalLimit)
	rows = append(rows, AblationRow{Name: "greedy", Report: greedy.Overall})

	// Sampling applies to the fallback generation path; the retrieval
	// memory stays deterministic, as it would in a deployed system.
	for _, temp := range []float64{0.5, 1.0} {
		sampled, err := s.Finetuned(table4Spec{
			id: wisdom.CodeGenMulti, size: "350M", window: 1024, style: dataset.NameCompletion,
		})
		if err != nil {
			return nil, err
		}
		wisdom.SetSampling(sampled, temp, 8, s.Cfg.Seed)
		res := wisdom.Evaluate(sampled, s.Pipe.Test, s.Cfg.EvalLimit)
		rows = append(rows, AblationRow{Name: fmt.Sprintf("sampling T=%.1f", temp), Report: res.Overall})
	}
	return rows, nil
}
