// Package experiments regenerates every table and figure of the paper's
// evaluation section at the reproduction's scale: Table 1 (dataset
// construction), Table 2 (model/dataset matrix), Table 3 (few-shot results),
// Table 4 (fine-tuned results and ablations), Table 5 (per-generation-type
// breakdown), Figure 2 (the four generation types) and the pre-training
// section's throughput comparison. The drivers are shared by the bench_test
// harness and the wisdom-bench command.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"wisdom/internal/corpus"
	"wisdom/internal/dataset"
	"wisdom/internal/metrics"
	"wisdom/internal/neural"
	"wisdom/internal/observe"
	"wisdom/internal/tokenizer"
	"wisdom/internal/wisdom"
)

// Config sizes an experiment run. All generators are seeded, so a Config
// determines results exactly.
type Config struct {
	Seed int64
	// Corpora sizes the five pre-training corpora.
	Corpora wisdom.CorporaConfig
	// VocabSize of the shared BPE tokenizer.
	VocabSize int
	// GalaxyFiles is the raw size of the fine-tuning crawl.
	GalaxyFiles int
	// EvalLimit caps evaluated test samples per table row (0 = all).
	EvalLimit int
	// LeakEvery leaks every n-th test sample to the Codex-sim retrieval
	// channel (the "Codex likely saw large portions of Galaxy" effect);
	// 0 disables leakage.
	LeakEvery int
}

// Default returns the configuration used by the committed experiment runs:
// large enough for stable orderings, small enough that the full suite runs
// in minutes on a laptop.
func Default() Config {
	return Config{
		Seed: 7,
		Corpora: wisdom.CorporaConfig{
			Seed:      7,
			Pile:      800,
			BigQuery:  800,
			BigPython: 400,
			GitLab:    80,
			GitHub:    1200,
			Generic:   2400,
		},
		VocabSize:   2048,
		GalaxyFiles: 500,
		EvalLimit:   200,
		LeakEvery:   8,
	}
}

// Quick returns a reduced configuration for smoke tests and -short benches.
func Quick() Config {
	return Config{
		Seed: 7,
		Corpora: wisdom.CorporaConfig{
			Seed: 7, Pile: 250, BigQuery: 250, BigPython: 120,
			GitLab: 40, GitHub: 400, Generic: 800,
		},
		VocabSize:   2048,
		GalaxyFiles: 220,
		EvalLimit:   40,
		LeakEvery:   8,
	}
}

// Suite holds the shared fixtures of one experiment run.
type Suite struct {
	Cfg     Config
	Corpora *wisdom.Corpora
	Tok     *tokenizer.Tokenizer
	Pipe    *dataset.Pipeline
	// Trace, when non-nil, times every suite stage (corpora build,
	// tokenizer training, per-table model builds and evaluations). A nil
	// tracer is a no-op, so results are identical either way.
	Trace *observe.Tracer
	leak  []dataset.Sample
}

// NewSuite builds corpora, tokenizer and the fine-tuning pipeline.
func NewSuite(cfg Config) (*Suite, error) { return NewSuiteTraced(cfg, nil) }

// NewSuiteTraced is NewSuite with per-stage span timing on tr (which may be
// nil).
func NewSuiteTraced(cfg Config, tr *observe.Tracer) (*Suite, error) {
	s := &Suite{Cfg: cfg, Trace: tr}
	sp := tr.Start("suite.corpora")
	s.Corpora = wisdom.BuildCorpora(cfg.Corpora)
	sp.End()
	sp = tr.Start("suite.tokenizer")
	tok, err := wisdom.TrainTokenizer(s.Corpora, cfg.VocabSize)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("experiments: tokenizer: %w", err)
	}
	s.Tok = tok
	sp = tr.Start("suite.pipeline")
	s.Pipe = dataset.BuildPipeline(corpus.Galaxy(cfg.Seed+900, cfg.GalaxyFiles), cfg.Seed)
	sp.End()
	if cfg.LeakEvery > 0 {
		// Codex-sim "saw large portions" of Galaxy, diluted among billions
		// of other files: a slice of the training split plus a slice of
		// the test split leaks into its memory.
		for i, sm := range s.Pipe.Train {
			if i%5 == 0 {
				s.leak = append(s.leak, sm)
			}
		}
		for i, sm := range s.Pipe.Test {
			if i%cfg.LeakEvery == 0 {
				s.leak = append(s.leak, sm)
			}
		}
	}
	return s, nil
}

// Row is one table line: a model plus its four metric scores.
type Row struct {
	Model  string
	Size   string
	Window int
	Report metrics.Report
}

// Format renders rows as an aligned text table matching the paper's column
// order (Schema Correct, EM, BLEU, Ansible Aware).
func Format(title string, rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-34s %-6s %-7s %7s %7s %7s %8s\n",
		"Model", "Size", "Window", "Schema", "EM", "BLEU", "Aware")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-34s %-6s %-7d %7.2f %7.2f %7.2f %8.2f\n",
			r.Model, r.Size, r.Window,
			r.Report.SchemaCorrect, r.Report.ExactMatch, r.Report.BLEU, r.Report.AnsibleAware)
	}
	return sb.String()
}

// ---- Table 1 ----

// Table1Row is one dataset-construction line.
type Table1Row struct {
	Source    string
	FileCount int
	// AfterDedup is the count surviving exact-match deduplication, an
	// extension over the paper's table (which reports raw counts).
	AfterDedup int
	YAMLType   string
	Usage      string
}

// Table1 regenerates the dataset-size table: file counts per source with
// the Table 1 ratios, at this run's scale.
func (s *Suite) Table1() []Table1Row {
	defer s.Trace.Start("table1").End()
	galaxy := corpus.Galaxy(s.Cfg.Seed+900, s.Cfg.GalaxyFiles)
	gitlab := corpus.GitLabAnsible(s.Cfg.Corpora.Seed+500, s.Cfg.Corpora.GitLab)
	github := corpus.GitHubGBQAnsible(s.Cfg.Corpora.Seed+600, s.Cfg.Corpora.GitHub)
	generic := corpus.GitHubGBQGeneric(s.Cfg.Corpora.Seed+400, s.Cfg.Corpora.Generic)
	row := func(name string, files []corpus.File, yamlType, usage string) Table1Row {
		return Table1Row{
			Source:     name,
			FileCount:  len(files),
			AfterDedup: len(dataset.DedupFiles(files)),
			YAMLType:   yamlType,
			Usage:      usage,
		}
	}
	return []Table1Row{
		row("Galaxy", galaxy, "Ansible", "FT"),
		row("GitLab", gitlab, "Ansible", "PT"),
		row("GitHub + GBQ", github, "Ansible", "PT"),
		row("GitHub + GBQ", generic, "Generic", "PT"),
	}
}

// ---- Table 2 ----

// Table2 returns the model/pre-training-dataset matrix.
func (s *Suite) Table2() []wisdom.Variant { return wisdom.Variants() }

// FormatTable2 renders the Table 2 checkmark matrix.
func FormatTable2(vs []wisdom.Variant) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2: model names and associated pre-training datasets\n")
	fmt.Fprintf(&sb, "%-22s %-5s %-8s %-9s %-12s %-12s\n",
		"Model", "Pile", "BigQuery", "BigPython", "AnsibleYAML", "GenericYAML")
	mark := func(b bool) string {
		if b {
			return "x"
		}
		return "-"
	}
	for _, v := range vs {
		fmt.Fprintf(&sb, "%-22s %-5s %-8s %-9s %-12s %-12s\n", v.Display,
			mark(v.Pile), mark(v.BigQuery), mark(v.BigPython), mark(v.AnsibleYAML), mark(v.GenericYAML))
	}
	return sb.String()
}

// ---- Table 3 ----

// table3Spec describes one few-shot row.
type table3Spec struct {
	id     wisdom.VariantID
	size   string
	order  int
	window int
}

// table3Rows lists the paper's Table 3 rows in order: the three CodeGen
// 350M checkpoints, the CodeGen-Multi scale sweep, Codex, and the four
// Wisdom variants. Larger "sizes" map to higher n-gram orders.
func table3Rows() []table3Spec {
	return []table3Spec{
		{wisdom.CodeGenNL, "350M", 0, 2048},
		{wisdom.CodeGenMono, "350M", 0, 2048},
		{wisdom.CodeGenMulti, "350M", 0, 2048},
		{wisdom.CodeGenMulti, "2.7B", 7, 2048},
		{wisdom.CodeGenMulti, "6B", 8, 2048},
		{wisdom.CodexDavinci, "175B", 0, 2048},
		{wisdom.WisdomAnsibleMulti, "350M", 0, 1024},
		{wisdom.WisdomYamlMulti, "350M", 0, 1024},
		{wisdom.WisdomAnsible, "350M", 0, 1024},
		{wisdom.WisdomYaml, "350M", 0, 1024},
	}
}

// Pretrained builds the few-shot model for a Table 3 row.
func (s *Suite) Pretrained(id wisdom.VariantID, size string, order, window int) (*wisdom.Model, error) {
	v, ok := wisdom.VariantByID(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown variant %q", id)
	}
	if order > 0 {
		v.Order = order
	}
	if size != "" {
		v.SizeLabel = size
	}
	var leak []dataset.Sample
	if v.Retrieval {
		leak = s.leak
	}
	defer s.Trace.Start("pretrain").End()
	return wisdom.Pretrain(v, s.Corpora, s.Tok, window, leak)
}

// Table3 evaluates every few-shot row.
func (s *Suite) Table3() ([]Row, error) {
	defer s.Trace.Start("table3").End()
	var rows []Row
	for _, spec := range table3Rows() {
		m, err := s.Pretrained(spec.id, spec.size, spec.order, spec.window)
		if err != nil {
			return nil, err
		}
		sp := s.Trace.Start("evaluate")
		res := wisdom.Evaluate(m, s.Pipe.Test, s.Cfg.EvalLimit)
		sp.End()
		rows = append(rows, Row{Model: displayName(spec.id), Size: spec.size, Window: spec.window, Report: res.Overall})
	}
	return rows, nil
}

func displayName(id wisdom.VariantID) string {
	v, _ := wisdom.VariantByID(id)
	return v.Display
}

// ---- Table 4 ----

// table4Spec describes one fine-tuned row.
type table4Spec struct {
	label    string
	id       wisdom.VariantID
	size     string
	order    int
	window   int
	style    dataset.PromptStyle
	fraction float64
}

func table4Rows() []table4Spec {
	return []table4Spec{
		{"CodeGen-Multi", wisdom.CodeGenMulti, "350M", 0, 512, dataset.NameCompletion, 0},
		{"CodeGen-Multi", wisdom.CodeGenMulti, "350M", 0, 1024, dataset.NameCompletion, 0},
		{"CodeGen-Multi", wisdom.CodeGenMulti, "350M", 0, 2048, dataset.NameCompletion, 0},
		{"CodeGen-Multi", wisdom.CodeGenMulti, "2.7B", 7, 1024, dataset.NameCompletion, 0},
		{"CodeGen-Multi-prefix", wisdom.CodeGenMulti, "350M", 0, 1024, dataset.PrefixPrompt, 0},
		{"Wisdom-Ansible-Multi", wisdom.WisdomAnsibleMulti, "350M", 0, 1024, dataset.NameCompletion, 0},
		{"Wisdom-Yaml-Multi", wisdom.WisdomYamlMulti, "350M", 0, 1024, dataset.NameCompletion, 0},
		{"Wisdom-Ansible", wisdom.WisdomAnsible, "350M", 0, 1024, dataset.NameCompletion, 0},
		{"Wisdom-Yaml", wisdom.WisdomYaml, "350M", 0, 1024, dataset.NameCompletion, 0},
		{"Wisdom-Ansible-Multi -50", wisdom.WisdomAnsibleMulti, "350M", 0, 1024, dataset.NameCompletion, 0.5},
		{"Wisdom-Ansible-Multi -20", wisdom.WisdomAnsibleMulti, "350M", 0, 1024, dataset.NameCompletion, 0.2},
		{"Wisdom-Ansible-Multi -10", wisdom.WisdomAnsibleMulti, "350M", 0, 1024, dataset.NameCompletion, 0.1},
	}
}

// Finetuned builds a fine-tuned model for one Table 4 configuration.
func (s *Suite) Finetuned(spec table4Spec) (*wisdom.Model, error) {
	pre, err := s.Pretrained(spec.id, spec.size, spec.order, spec.window)
	if err != nil {
		return nil, err
	}
	defer s.Trace.Start("finetune").End()
	return wisdom.Finetune(pre, s.Pipe.Train, wisdom.FinetuneConfig{
		Window:   spec.window,
		Style:    spec.style,
		Fraction: spec.fraction,
	})
}

// Table4 evaluates every fine-tuned row.
func (s *Suite) Table4() ([]Row, error) {
	defer s.Trace.Start("table4").End()
	var rows []Row
	for _, spec := range table4Rows() {
		m, err := s.Finetuned(spec)
		if err != nil {
			return nil, err
		}
		sp := s.Trace.Start("evaluate")
		res := wisdom.Evaluate(m, s.Pipe.Test, s.Cfg.EvalLimit)
		sp.End()
		rows = append(rows, Row{Model: spec.label, Size: spec.size, Window: spec.window, Report: res.Overall})
	}
	return rows, nil
}

// ---- Table 5 ----

// Table5Row is one generation-type line.
type Table5Row struct {
	Type   string
	Report metrics.Report
}

// Table5 fine-tunes CodeGen-Multi (the paper's Table 5 model) and breaks
// the evaluation down per generation type, evaluating the full test set.
func (s *Suite) Table5() ([]Table5Row, error) {
	defer s.Trace.Start("table5").End()
	m, err := s.Finetuned(table4Spec{
		id: wisdom.CodeGenMulti, size: "350M", window: 1024, style: dataset.NameCompletion,
	})
	if err != nil {
		return nil, err
	}
	sp := s.Trace.Start("evaluate")
	res := wisdom.Evaluate(m, s.Pipe.Test, 0)
	sp.End()
	rows := []Table5Row{{Type: "ALL", Report: res.Overall}}
	order := []dataset.GenType{dataset.NLtoPB, dataset.NLtoT, dataset.PBNLtoT, dataset.TNLtoT}
	for _, t := range order {
		if rep, ok := res.ByType[t]; ok {
			rows = append(rows, Table5Row{Type: t.String(), Report: rep})
		}
	}
	return rows, nil
}

// FormatTable5 renders the per-type breakdown.
func FormatTable5(rows []Table5Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 5: breakdown per generation type (CodeGen-Multi fine-tuned)\n")
	fmt.Fprintf(&sb, "%-10s %7s %7s %7s %7s %8s\n", "Type", "Count", "Schema", "EM", "BLEU", "Aware")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %7d %7.2f %7.2f %7.2f %8.2f\n",
			r.Type, r.Report.Count, r.Report.SchemaCorrect, r.Report.ExactMatch, r.Report.BLEU, r.Report.AnsibleAware)
	}
	return sb.String()
}

// ---- Figure 2 ----

// Figure2 returns one extracted sample per generation type, reproducing the
// paper's Fig. 2 listings from this run's own corpus.
func (s *Suite) Figure2() map[dataset.GenType]dataset.Sample {
	out := make(map[dataset.GenType]dataset.Sample, 4)
	for _, sm := range append(append([]dataset.Sample{}, s.Pipe.Train...), s.Pipe.Test...) {
		if _, ok := out[sm.Type]; !ok {
			out[sm.Type] = sm
		}
		if len(out) == 4 {
			break
		}
	}
	return out
}

// ---- throughput (pre-training section) ----

// ThroughputResult compares generation speed of a small and a large
// transformer, the basis of the paper's 350M-vs-2.7B model-size choice
// ("the 350M model was ~1.9x faster than the 2.7B").
type ThroughputResult struct {
	SmallTokensPerSec float64
	LargeTokensPerSec float64
	Ratio             float64
}

// Throughput builds two neural models in the paper's size relation and
// measures greedy-decoding tokens/second for each.
func (s *Suite) Throughput() (ThroughputResult, error) {
	defer s.Trace.Start("throughput").End()
	small, err := neural.NewModel(neural.Config{Vocab: 512, Ctx: 64, Dim: 96, Heads: 4, Layers: 4, Seed: 1})
	if err != nil {
		return ThroughputResult{}, err
	}
	large, err := neural.NewModel(neural.Config{Vocab: 512, Ctx: 64, Dim: 120, Heads: 4, Layers: 5, Seed: 1})
	if err != nil {
		return ThroughputResult{}, err
	}
	measure := func(m *neural.Model) float64 {
		prefix := []int{1, 2, 3, 4, 5, 6, 7, 8}
		const tokens = 48
		start := time.Now()
		out := m.GenerateCached(prefix, tokens, neural.GenOptions{StopToken: -1})
		elapsed := time.Since(start).Seconds()
		if elapsed <= 0 {
			return 0
		}
		return float64(len(out)) / elapsed
	}
	res := ThroughputResult{
		SmallTokensPerSec: measure(small),
		LargeTokensPerSec: measure(large),
	}
	if res.LargeTokensPerSec > 0 {
		res.Ratio = res.SmallTokensPerSec / res.LargeTokensPerSec
	}
	return res, nil
}

// ---- decode engine (serving section) ----

// DecodeEngineRow reports the emitted-token throughput of one decode path
// on the benchmark model (the small Throughput configuration).
type DecodeEngineRow struct {
	Path         string
	TokensPerSec float64
}

// DecodeEngine measures every decode path of the engine on one model:
// the full-forward loop, the KV-cached loop, cached beam search, and the
// batched multi-sequence path. Beam reports emitted tokens/second (it does
// width× the internal work per emitted token); the batched row reports the
// aggregate across its sequences, which is the serving-relevant rate.
func (s *Suite) DecodeEngine() ([]DecodeEngineRow, error) {
	defer s.Trace.Start("decode_engine").End()
	m, err := neural.NewModel(neural.Config{Vocab: 512, Ctx: 64, Dim: 96, Heads: 4, Layers: 4, Seed: 1})
	if err != nil {
		return nil, err
	}
	prefix := []int{1, 2, 3, 4, 5, 6, 7, 8}
	const maxNew = 48
	rate := func(tokens int, elapsed time.Duration) float64 {
		if sec := elapsed.Seconds(); sec > 0 {
			return float64(tokens) / sec
		}
		return 0
	}
	var rows []DecodeEngineRow
	add := func(path string, f func() int) {
		start := time.Now()
		tokens := f()
		rows = append(rows, DecodeEngineRow{Path: path, TokensPerSec: rate(tokens, time.Since(start))})
	}
	add("generate full-forward", func() int {
		return len(m.Generate(prefix, maxNew, neural.GenOptions{StopToken: -1}))
	})
	add("generate kv-cached", func() int {
		return len(m.GenerateCached(prefix, maxNew, neural.GenOptions{StopToken: -1}))
	})
	add("beam w=4 kv-cached", func() int {
		return len(m.GenerateBeam(prefix, maxNew, neural.BeamOptions{Width: 4, StopToken: -1}))
	})
	add("batch x8 kv-cached", func() int {
		reqs := make([]neural.BatchRequest, 8)
		for i := range reqs {
			p := append(append([]int(nil), prefix...), i+1)
			reqs[i] = neural.BatchRequest{Prefix: p, MaxNew: maxNew, Opts: neural.GenOptions{StopToken: -1}}
		}
		total := 0
		for _, out := range m.GenerateBatch(reqs) {
			total += len(out)
		}
		return total
	})
	return rows, nil
}

// SortRowsByBLEU returns a copy of rows sorted by descending BLEU, a helper
// for shape assertions.
func SortRowsByBLEU(rows []Row) []Row {
	out := append([]Row(nil), rows...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Report.BLEU > out[j].Report.BLEU })
	return out
}
