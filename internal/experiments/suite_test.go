package experiments

import (
	"strings"
	"sync"
	"testing"

	"wisdom/internal/dataset"
	"wisdom/internal/wisdom"
)

var (
	suiteOnce sync.Once
	suite     *Suite
	suiteErr  error
)

func quickSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = NewSuite(Quick())
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suite
}

func TestTable1RatiosAndDedup(t *testing.T) {
	s := quickSuite(t)
	rows := s.Table1()
	if len(rows) != 4 {
		t.Fatalf("table 1 has %d rows, want 4", len(rows))
	}
	byUsage := map[string]int{}
	for _, r := range rows {
		if r.FileCount <= 0 {
			t.Errorf("%s: zero files", r.Source)
		}
		if r.AfterDedup > r.FileCount {
			t.Errorf("%s: dedup grew the corpus", r.Source)
		}
		if r.FileCount >= 100 && r.AfterDedup == r.FileCount {
			t.Errorf("%s: dedup removed nothing (dups exist by construction)", r.Source)
		}
		byUsage[r.Usage] += r.FileCount
	}
	if byUsage["FT"] == 0 || byUsage["PT"] == 0 {
		t.Errorf("usages = %v", byUsage)
	}
	// Table 1 shape: generic YAML ~2x the GitHub Ansible slice.
	if rows[3].FileCount != 2*rows[2].FileCount {
		t.Errorf("generic (%d) != 2x github ansible (%d)", rows[3].FileCount, rows[2].FileCount)
	}
	// GitHub >> GitLab.
	if rows[2].FileCount <= rows[1].FileCount {
		t.Errorf("github (%d) <= gitlab (%d)", rows[2].FileCount, rows[1].FileCount)
	}
}

func TestTable2Matrix(t *testing.T) {
	s := quickSuite(t)
	out := FormatTable2(s.Table2())
	for _, want := range []string{"CodeGen-NL", "Codex-Davinci-002", "Wisdom-Yaml-Multi", "BigPython"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 2 output missing %q:\n%s", want, out)
		}
	}
	if len(s.Table2()) != 8 {
		t.Errorf("zoo size = %d", len(s.Table2()))
	}
}

func TestTable3Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full table 3 in short mode")
	}
	s := quickSuite(t)
	rows, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + Format("Table 3 (few-shot)", rows))
	if len(rows) != 10 {
		t.Fatalf("table 3 has %d rows, want 10", len(rows))
	}
	byModel := map[string]Row{}
	for _, r := range rows {
		key := r.Model + " " + r.Size
		byModel[key] = r
		if r.Report.Count == 0 {
			t.Errorf("%s: empty evaluation", key)
		}
	}
	nl := byModel["CodeGen-NL 350M"]
	multi := byModel["CodeGen-Multi 350M"]
	codex := byModel["Codex-Davinci-002 175B"]
	wam := byModel["Wisdom-Ansible-Multi 350M"]

	// Paper shape: NL is the weakest on BLEU and Ansible Aware.
	for key, r := range byModel {
		if key == "CodeGen-NL 350M" {
			continue
		}
		if r.Report.AnsibleAware < nl.Report.AnsibleAware {
			t.Errorf("%s AnsibleAware %.2f < CodeGen-NL %.2f", key, r.Report.AnsibleAware, nl.Report.AnsibleAware)
		}
	}
	// Every Wisdom variant beats every CodeGen variant on Ansible Aware
	// (the paper's central few-shot claim); Codex is excluded since its
	// leak-driven score tops the paper's own Table 3 as well.
	for key, r := range byModel {
		if !strings.HasPrefix(key, "Wisdom") {
			continue
		}
		for ckey, cr := range byModel {
			if !strings.HasPrefix(ckey, "CodeGen") {
				continue
			}
			// A small tolerance absorbs quick-scale sampling noise; the
			// committed default-scale run shows the strict ordering.
			if r.Report.AnsibleAware < cr.Report.AnsibleAware-2 {
				t.Errorf("%s AnsibleAware %.2f below %s %.2f", key, r.Report.AnsibleAware, ckey, cr.Report.AnsibleAware)
			}
		}
	}
	_ = wam
	// Codex has the highest EM (leakage signature).
	for key, r := range byModel {
		if key == "Codex-Davinci-002 175B" {
			continue
		}
		if r.Report.ExactMatch > codex.Report.ExactMatch {
			t.Errorf("%s EM %.2f exceeds Codex %.2f", key, r.Report.ExactMatch, codex.Report.ExactMatch)
		}
	}
	// Multi beats NL (code pre-training helps).
	if multi.Report.BLEU <= nl.Report.BLEU {
		t.Errorf("CodeGen-Multi BLEU %.2f <= CodeGen-NL %.2f", multi.Report.BLEU, nl.Report.BLEU)
	}
}

func TestTable4Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full table 4 in short mode")
	}
	s := quickSuite(t)
	rows, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + Format("Table 4 (fine-tuned)", rows))
	if len(rows) != 12 {
		t.Fatalf("table 4 has %d rows, want 12", len(rows))
	}
	find := func(label string, window int) Row {
		for _, r := range rows {
			if r.Model == label && r.Window == window {
				return r
			}
		}
		t.Fatalf("row %q/%d missing", label, window)
		return Row{}
	}
	w512 := find("CodeGen-Multi", 512)
	w1024 := find("CodeGen-Multi", 1024)
	prefix := find("CodeGen-Multi-prefix", 1024)
	wam := find("Wisdom-Ansible-Multi", 1024)
	f50 := find("Wisdom-Ansible-Multi -50", 1024)
	f10 := find("Wisdom-Ansible-Multi -10", 1024)

	// Context window: 512 no better than 1024.
	if w512.Report.BLEU > w1024.Report.BLEU+2 {
		t.Errorf("window 512 BLEU %.2f notably exceeds 1024 %.2f", w512.Report.BLEU, w1024.Report.BLEU)
	}
	// Prompt formulation: name-completion beats the prefix baseline.
	if prefix.Report.BLEU >= w1024.Report.BLEU {
		t.Errorf("prefix BLEU %.2f >= name-completion %.2f", prefix.Report.BLEU, w1024.Report.BLEU)
	}
	if prefix.Report.ExactMatch > w1024.Report.ExactMatch {
		t.Errorf("prefix EM %.2f > name-completion %.2f", prefix.Report.ExactMatch, w1024.Report.ExactMatch)
	}
	// Data fraction monotone (with slack for noise): 10% <= 50% <= 100%.
	if f10.Report.BLEU > f50.Report.BLEU+2 || f50.Report.BLEU > wam.Report.BLEU+2 {
		t.Errorf("data fraction not monotone: 10%%=%.2f 50%%=%.2f 100%%=%.2f",
			f10.Report.BLEU, f50.Report.BLEU, wam.Report.BLEU)
	}
	// Wisdom-Ansible-Multi is the best fine-tuned variant on BLEU.
	for _, r := range rows {
		if strings.HasPrefix(r.Model, "Wisdom") && !strings.Contains(r.Model, "-Multi") {
			if r.Report.BLEU > wam.Report.BLEU+2 {
				t.Errorf("%s BLEU %.2f exceeds Wisdom-Ansible-Multi %.2f", r.Model, r.Report.BLEU, wam.Report.BLEU)
			}
		}
	}
}

func TestTable4BeatsTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-table comparison in short mode")
	}
	s := quickSuite(t)
	pre, err := s.Pretrained(wisdom.CodeGenMulti, "350M", 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	few := wisdom.Evaluate(pre, s.Pipe.Test, s.Cfg.EvalLimit)
	ft, err := s.Finetuned(table4Spec{id: wisdom.CodeGenMulti, size: "350M", window: 1024})
	if err != nil {
		t.Fatal(err)
	}
	tuned := wisdom.Evaluate(ft, s.Pipe.Test, s.Cfg.EvalLimit)
	// "both BLEU and Ansible Aware scores increase by ~30 points": demand
	// at least a 15-point boost at this scale.
	if tuned.Overall.BLEU < few.Overall.BLEU+15 {
		t.Errorf("fine-tuning boost too small: %.2f -> %.2f", few.Overall.BLEU, tuned.Overall.BLEU)
	}
	if tuned.Overall.AnsibleAware < few.Overall.AnsibleAware+15 {
		t.Errorf("aware boost too small: %.2f -> %.2f", few.Overall.AnsibleAware, tuned.Overall.AnsibleAware)
	}
}

func TestTable5Breakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("table 5 in short mode")
	}
	s := quickSuite(t)
	rows, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatTable5(rows))
	if rows[0].Type != "ALL" {
		t.Fatalf("first row = %q", rows[0].Type)
	}
	byType := map[string]Table5Row{}
	for _, r := range rows[1:] {
		byType[r.Type] = r
	}
	// Count shape (Table 5): T+NL->T dominates; NL->PB is the rarest.
	tn := byType["T+NL->T"]
	pb := byType["NL->PB"]
	nt := byType["NL->T"]
	if tn.Report.Count <= nt.Report.Count {
		t.Errorf("T+NL->T count %d <= NL->T %d", tn.Report.Count, nt.Report.Count)
	}
	if pb.Report.Count >= tn.Report.Count {
		t.Errorf("NL->PB count %d >= T+NL->T %d", pb.Report.Count, tn.Report.Count)
	}
	// Quality shapes are asserted only for types with enough samples to be
	// statistically meaningful at this scale; the committed default-scale
	// run in EXPERIMENTS.md covers the full ordering.
	const minCount = 8
	for name, r := range byType {
		if name == "NL->PB" || r.Report.Count < minCount || pb.Report.Count < minCount {
			continue
		}
		if r.Report.BLEU < pb.Report.BLEU {
			t.Errorf("%s BLEU %.2f below NL->PB %.2f", name, r.Report.BLEU, pb.Report.BLEU)
		}
	}
	// Context helps: the dominant context-conditioned type beats NL->T, or
	// at least comes close (sampling noise allowed at quick scale).
	if tn.Report.Count >= minCount && nt.Report.Count >= minCount {
		if tn.Report.BLEU < nt.Report.BLEU-12 {
			t.Errorf("context did not help: T+NL->T %.2f far below NL->T %.2f",
				tn.Report.BLEU, nt.Report.BLEU)
		}
	}
}

func TestFigure2CoversAllTypes(t *testing.T) {
	s := quickSuite(t)
	samples := s.Figure2()
	for _, typ := range []dataset.GenType{dataset.NLtoPB, dataset.NLtoT, dataset.PBNLtoT, dataset.TNLtoT} {
		sm, ok := samples[typ]
		if !ok {
			t.Errorf("no sample for %v", typ)
			continue
		}
		if sm.Prompt == "" || sm.Target == "" {
			t.Errorf("%v: incomplete sample %+v", typ, sm)
		}
	}
}

func TestThroughputSmallFaster(t *testing.T) {
	s := quickSuite(t)
	res, err := s.Throughput()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("small %.1f tok/s, large %.1f tok/s, ratio %.2fx", res.SmallTokensPerSec, res.LargeTokensPerSec, res.Ratio)
	if res.Ratio <= 1 {
		t.Errorf("small model not faster: ratio %.2f", res.Ratio)
	}
	if res.Ratio > 6 {
		t.Errorf("size ratio implausibly large: %.2f", res.Ratio)
	}
}

func TestFormatRows(t *testing.T) {
	out := Format("Title", []Row{{Model: "m", Size: "350M", Window: 1024}})
	if !strings.Contains(out, "Title") || !strings.Contains(out, "350M") {
		t.Errorf("format output: %s", out)
	}
}

func TestDefaultAndQuickConfigs(t *testing.T) {
	d, q := Default(), Quick()
	if d.Corpora.Pile <= q.Corpora.Pile {
		t.Error("default should be larger than quick")
	}
	if d.VocabSize < 259 || q.VocabSize < 259 {
		t.Error("vocab too small")
	}
	if d.Corpora.Generic != 2*d.Corpora.GitHub+0 {
		t.Errorf("default corpora break the Table 1 generic:ansible ratio: %d vs %d", d.Corpora.Generic, d.Corpora.GitHub)
	}
}

func TestSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity in short mode")
	}
	s := quickSuite(t)
	rows, err := s.Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatSensitivity(rows))
	if len(rows) < 5 || rows[0].Perturbation != "baseline" {
		t.Fatalf("rows = %+v", rows)
	}
	base := rows[0].Report
	if base.BLEU <= 0 {
		t.Fatal("baseline BLEU is zero")
	}
	for _, r := range rows[1:] {
		// No perturbation should *improve* the model materially, and none
		// should zero it out: robustness sits in between.
		if r.Report.BLEU > base.BLEU+5 {
			t.Errorf("%s improved BLEU from %.2f to %.2f", r.Perturbation, base.BLEU, r.Report.BLEU)
		}
		if r.Report.BLEU < base.BLEU*0.3 {
			t.Errorf("%s collapsed BLEU from %.2f to %.2f", r.Perturbation, base.BLEU, r.Report.BLEU)
		}
	}
}

func TestInsertionPenaltyAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in short mode")
	}
	s := quickSuite(t)
	rows, err := s.InsertionPenaltyAblation()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatAblation(rows))
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Ansible Aware must be monotonically non-increasing with the penalty;
	// the controls (Schema, EM, BLEU) must be identical across settings.
	base := rows[0].Report
	prev := base.AnsibleAware
	for _, r := range rows[1:] {
		if r.Report.AnsibleAware > prev+1e-9 {
			t.Errorf("%s increased Ansible Aware: %.2f -> %.2f", r.Name, prev, r.Report.AnsibleAware)
		}
		prev = r.Report.AnsibleAware
		if r.Report.BLEU != base.BLEU || r.Report.ExactMatch != base.ExactMatch || r.Report.SchemaCorrect != base.SchemaCorrect {
			t.Errorf("%s changed a penalty-independent metric", r.Name)
		}
	}
	if rows[len(rows)-1].Report.AnsibleAware >= base.AnsibleAware {
		t.Error("the strongest penalty had no effect at all")
	}
}

func TestDecodingAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("decoding ablation in short mode")
	}
	s := quickSuite(t)
	rows, err := s.DecodingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Name != "greedy" {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		t.Logf("%-16s BLEU %.2f Schema %.2f", r.Name, r.Report.BLEU, r.Report.SchemaCorrect)
		if r.Report.Count == 0 || r.Report.BLEU <= 0 {
			t.Errorf("%s: empty evaluation", r.Name)
		}
	}
	// At this scale greedy should not be dramatically worse than sampling.
	if rows[1].Report.BLEU > rows[0].Report.BLEU+10 {
		t.Errorf("sampling unexpectedly dominant: %v vs %v", rows[1].Report.BLEU, rows[0].Report.BLEU)
	}
}
