package experiments

import (
	"fmt"
	"strings"

	"wisdom/internal/dataset"
	"wisdom/internal/metrics"
	"wisdom/internal/wisdom"
)

// SensitivityRow is one perturbation's aggregate result.
type SensitivityRow struct {
	Perturbation string
	Report       metrics.Report
}

// perturbation rewrites evaluation samples without touching references.
type perturbation struct {
	name  string
	apply func(dataset.Sample) dataset.Sample
}

// perturbations probes the robustness axes the paper's limitations section
// names: letter case of the prompt, quoting style in the context, and
// whitespace noise. References stay untouched, so any metric drop is the
// model's sensitivity, not a scoring artefact.
func perturbations() []perturbation {
	return []perturbation{
		{"baseline", func(s dataset.Sample) dataset.Sample { return s }},
		{"prompt lower-case", func(s dataset.Sample) dataset.Sample {
			return reprompt(s, strings.ToLower(s.Prompt))
		}},
		{"prompt UPPER-CASE", func(s dataset.Sample) dataset.Sample {
			return reprompt(s, strings.ToUpper(s.Prompt))
		}},
		{"prompt title case", func(s dataset.Sample) dataset.Sample {
			words := strings.Fields(s.Prompt)
			for i, w := range words {
				if len(w) > 0 {
					words[i] = strings.ToUpper(w[:1]) + w[1:]
				}
			}
			return reprompt(s, strings.Join(words, " "))
		}},
		{"context quote swap", func(s dataset.Sample) dataset.Sample {
			s.Context = strings.ReplaceAll(s.Context, "'", "\"")
			return s
		}},
		{"context trailing spaces", func(s dataset.Sample) dataset.Sample {
			lines := strings.Split(s.Context, "\n")
			for i, l := range lines {
				if l != "" {
					lines[i] = l + "  "
				}
			}
			s.Context = strings.Join(lines, "\n")
			return s
		}},
	}
}

// reprompt rewrites the prompt and its name line consistently.
func reprompt(s dataset.Sample, prompt string) dataset.Sample {
	indent := dataset.NameLineIndent(s.NameLine)
	s.Prompt = prompt
	s.NameLine = strings.Repeat(" ", indent) + "- name: " + prompt
	return s
}

// Sensitivity fine-tunes the paper's Table 4/5 model and evaluates it under
// each perturbation — the prompt-robustness analysis the paper's
// limitations section calls for.
func (s *Suite) Sensitivity() ([]SensitivityRow, error) {
	m, err := s.Finetuned(table4Spec{
		id: wisdom.CodeGenMulti, size: "350M", window: 1024, style: dataset.NameCompletion,
	})
	if err != nil {
		return nil, err
	}
	test := s.Pipe.Test
	if s.Cfg.EvalLimit > 0 && len(test) > s.Cfg.EvalLimit {
		test = test[:s.Cfg.EvalLimit]
	}
	var rows []SensitivityRow
	for _, p := range perturbations() {
		perturbed := make([]dataset.Sample, len(test))
		for i, sm := range test {
			perturbed[i] = p.apply(sm)
			// The reference target stays the original one.
			perturbed[i].Target = sm.Target
		}
		res := wisdom.Evaluate(m, perturbed, 0)
		rows = append(rows, SensitivityRow{Perturbation: p.name, Report: res.Overall})
	}
	return rows, nil
}

// FormatSensitivity renders the sensitivity table.
func FormatSensitivity(rows []SensitivityRow) string {
	var sb strings.Builder
	sb.WriteString("Prompt/context sensitivity (fine-tuned CodeGen-Multi)\n")
	fmt.Fprintf(&sb, "%-26s %7s %7s %7s %8s\n", "Perturbation", "Schema", "EM", "BLEU", "Aware")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-26s %7.2f %7.2f %7.2f %8.2f\n", r.Perturbation,
			r.Report.SchemaCorrect, r.Report.ExactMatch, r.Report.BLEU, r.Report.AnsibleAware)
	}
	return sb.String()
}
