package experiments

import (
	"strings"
	"testing"

	"wisdom/internal/observe"
)

// TestSuiteTraced asserts that the traced constructor times every build
// stage and that tracing does not perturb the deterministic fixtures.
func TestSuiteTraced(t *testing.T) {
	reg := observe.NewRegistry()
	tr := observe.NewTracer(reg, nil)
	traced, err := NewSuiteTraced(Quick(), tr)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewSuite(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.Pipe.Train) != len(plain.Pipe.Train) || len(traced.Pipe.Test) != len(plain.Pipe.Test) {
		t.Errorf("tracing changed the pipeline: %d/%d vs %d/%d",
			len(traced.Pipe.Train), len(traced.Pipe.Test), len(plain.Pipe.Train), len(plain.Pipe.Test))
	}

	traced.Table1()

	seen := map[string]bool{}
	for _, r := range tr.Recent() {
		seen[r.Name] = true
	}
	for _, stage := range []string{"suite.corpora", "suite.tokenizer", "suite.pipeline", "table1"} {
		if !seen[stage] {
			t.Errorf("stage %q not traced (saw %v)", stage, seen)
		}
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `wisdom_span_duration_seconds_count{span="suite.corpora"} 1`) {
		t.Errorf("span histogram missing:\n%s", sb.String())
	}
}
