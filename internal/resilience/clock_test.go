package resilience

import (
	"sync"
	"testing"
	"time"
)

func TestManualClockAdvanceAndSet(t *testing.T) {
	c := NewManualClock()
	start := c.Now()
	if start.IsZero() {
		t.Fatal("NewManualClock started at the zero time")
	}
	if !c.Now().Equal(start) {
		t.Error("clock moved without Advance")
	}

	c.Advance(3 * time.Second)
	if got := c.Now().Sub(start); got != 3*time.Second {
		t.Errorf("after Advance(3s): %v elapsed, want 3s", got)
	}
	c.Advance(-time.Hour) // negative: ignored, time never runs backwards
	if got := c.Now().Sub(start); got != 3*time.Second {
		t.Errorf("negative Advance moved the clock: %v elapsed", got)
	}

	c.Set(start.Add(10 * time.Second))
	if got := c.Now().Sub(start); got != 10*time.Second {
		t.Errorf("after Set(+10s): %v elapsed, want 10s", got)
	}
	c.Set(start) // earlier than current: ignored
	if got := c.Now().Sub(start); got != 10*time.Second {
		t.Errorf("backwards Set moved the clock: %v elapsed", got)
	}
}

func TestManualClockZeroValue(t *testing.T) {
	var c ManualClock
	if !c.Now().IsZero() {
		t.Errorf("zero-value clock reads %v, want the zero time", c.Now())
	}
	c.Advance(time.Minute)
	if got := c.Now(); !got.Equal(time.Time{}.Add(time.Minute)) {
		t.Errorf("zero-value clock after Advance(1m) = %v", got)
	}
}

func TestManualClockConcurrent(t *testing.T) {
	c := NewManualClock()
	start := c.Now()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Advance(time.Millisecond)
				_ = c.Now()
			}
		}()
	}
	wg.Wait()
	if got, want := c.Now().Sub(start), 8*1000*time.Millisecond; got != want {
		t.Errorf("concurrent advances lost time: %v elapsed, want %v", got, want)
	}
}
