package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker cooldown tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

var errBackend = errors.New("backend down")

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         time.Minute,
		Now:              clk.Now,
	})

	if b.State() != Closed {
		t.Fatalf("initial state = %v, want closed", b.State())
	}

	// Two failures and a success: the consecutive counter resets.
	for _, err := range []error{errBackend, errBackend, nil} {
		if !b.Allow() {
			t.Fatal("closed breaker refused a request")
		}
		b.Record(err)
	}
	if b.State() != Closed {
		t.Fatalf("state after recovery = %v, want closed", b.State())
	}

	// Three consecutive failures trip it.
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Record(errBackend)
	}
	if b.State() != Open {
		t.Fatalf("state after threshold = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}

	// Cooldown elapses: exactly one probe is admitted.
	clk.Advance(time.Minute)
	if !b.Allow() {
		t.Fatal("breaker did not half-open after the cooldown")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state after first post-cooldown Allow = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe fails: back to open, a fresh cooldown starts.
	b.Record(errBackend)
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	clk.Advance(30 * time.Second)
	if b.Allow() {
		t.Fatal("reopened breaker admitted a request before the new cooldown elapsed")
	}

	// Second cooldown elapses; this probe succeeds and the breaker closes.
	clk.Advance(31 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not half-open after the second cooldown")
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("recovered breaker refused a request")
	}
	b.Record(nil)
}

func TestBreakerHalfOpenProbeBudget(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		Cooldown:         time.Second,
		HalfOpenProbes:   2,
		SuccessThreshold: 2,
		Now:              clk.Now,
	})
	b.Allow()
	b.Record(errBackend)
	clk.Advance(time.Second)

	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open breaker refused probes inside the budget")
	}
	if b.Allow() {
		t.Fatal("half-open breaker exceeded the probe budget")
	}
	b.Record(nil)
	if b.State() != HalfOpen {
		t.Fatalf("state after 1/2 successes = %v, want half-open", b.State())
	}
	// The finished probe frees a slot for another trial request.
	if !b.Allow() {
		t.Fatal("half-open breaker refused a probe after one completed")
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("state after 2 successes = %v, want closed", b.State())
	}
}

func TestBreakerIgnoresLateResultsWhileOpen(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second, Now: clk.Now})
	b.Allow()
	b.Allow() // two calls in flight
	b.Record(errBackend)
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	b.Record(nil) // late success from the second call must not close it
	if b.State() != Open {
		t.Fatalf("late success changed state to %v", b.State())
	}
}

// TestBreakerConcurrent hammers Allow/Record from many goroutines so the
// race detector sees every lock path; the invariant checked is just that the
// final state is a legal one.
func TestBreakerConcurrent(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 4, Cooldown: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if b.Allow() {
					if (g+i)%3 == 0 {
						b.Record(errBackend)
					} else {
						b.Record(nil)
					}
				}
				b.State()
			}
		}(g)
	}
	wg.Wait()
	if s := b.State(); s != Closed && s != Open && s != HalfOpen {
		t.Fatalf("illegal final state %d", s)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Closed: "closed", HalfOpen: "half-open", Open: "open", State(9): "unknown"} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}
