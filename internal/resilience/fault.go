package resilience

import (
	"errors"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"
)

// Fault is one injectable transport failure mode.
type Fault int

const (
	// FaultNone passes the exchange through untouched.
	FaultNone Fault = iota
	// FaultError fails the exchange's first write with ErrInjected and
	// closes the underlying connection, as a mid-exchange network reset
	// would.
	FaultError
	// FaultLatency delays the exchange's first write by the injector's
	// configured latency, then proceeds normally.
	FaultLatency
	// FaultHang lets the request out but never delivers the response: reads
	// block until the connection is closed or its read deadline expires.
	FaultHang
	// FaultCorrupt flips the first byte of the exchange's first write. On
	// the framed RPC transport that write is the 4-byte length prefix, so
	// the peer sees an insane frame length and drops the connection — the
	// canonical corrupt-frame failure.
	FaultCorrupt
)

// String implements fmt.Stringer.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultError:
		return "error"
	case FaultLatency:
		return "latency"
	case FaultHang:
		return "hang"
	case FaultCorrupt:
		return "corrupt"
	}
	return "unknown"
}

// ErrInjected is the synthetic transport error produced by FaultError.
var ErrInjected = errors.New("resilience: injected transport fault")

// FaultConfig tunes the random-mode injector: each probability is the
// per-exchange chance of that fault, evaluated in the order error, hang,
// corrupt, latency (at most one fault per exchange).
type FaultConfig struct {
	PError, PHang, PCorrupt, PLatency float64
	// Latency is the delay injected by FaultLatency (default 10ms).
	Latency time.Duration
}

// Injector decides which fault, if any, each transport exchange suffers. It
// is deterministic in both modes: a scripted injector replays an explicit
// fault sequence (then runs clean), and a random injector draws from a
// seeded source, so a fixed seed reproduces the exact same fault pattern.
// One injector may wrap any number of connections; the script/source is
// shared and consumed in exchange order across all of them.
//
// An exchange is a write burst and the reads that follow it: the first
// Write after a Read (or after dialing) consumes the next fault decision,
// and that decision governs the connection until the next exchange starts.
// On the serve RPC framing, one exchange is exactly one request/response
// round trip.
type Injector struct {
	mu      sync.Mutex
	script  []Fault
	cursor  int
	rng     *rand.Rand
	cfg     FaultConfig
	latency time.Duration
	counts  map[Fault]int
}

// NewScript builds an injector that replays the given faults, one per
// exchange, then injects nothing.
func NewScript(faults ...Fault) *Injector {
	return &Injector{script: faults, latency: 10 * time.Millisecond, counts: make(map[Fault]int)}
}

// NewRandom builds an injector drawing faults from a seeded source.
func NewRandom(seed int64, cfg FaultConfig) *Injector {
	lat := cfg.Latency
	if lat <= 0 {
		lat = 10 * time.Millisecond
	}
	return &Injector{rng: rand.New(rand.NewSource(seed)), cfg: cfg, latency: lat, counts: make(map[Fault]int)}
}

// next consumes one fault decision.
func (in *Injector) next() Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	f := FaultNone
	switch {
	case in.rng != nil:
		switch r := in.rng.Float64(); {
		case r < in.cfg.PError:
			f = FaultError
		case r < in.cfg.PError+in.cfg.PHang:
			f = FaultHang
		case r < in.cfg.PError+in.cfg.PHang+in.cfg.PCorrupt:
			f = FaultCorrupt
		case r < in.cfg.PError+in.cfg.PHang+in.cfg.PCorrupt+in.cfg.PLatency:
			f = FaultLatency
		}
	case in.cursor < len(in.script):
		f = in.script[in.cursor]
		in.cursor++
	}
	in.counts[f]++
	return f
}

// Injected returns how many exchanges have suffered the given fault.
func (in *Injector) Injected(f Fault) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[f]
}

// WrapConn wraps a connection so that every exchange over it consults the
// injector. It is the transport hook the serve package accepts on both the
// client (dial hook) and the server (Options.ConnHook) side.
func (in *Injector) WrapConn(c net.Conn) net.Conn {
	return &faultConn{Conn: c, in: in, closed: make(chan struct{})}
}

// faultConn applies one injector decision per exchange to a wrapped
// connection.
type faultConn struct {
	net.Conn
	in *Injector

	mu           sync.Mutex
	writing      bool // inside a write burst (fault already drawn)
	pending      Fault
	readDeadline time.Time

	closeOnce sync.Once
	closed    chan struct{}
}

// Write consults the injector at the start of each exchange (the first
// write after a read) and applies the drawn fault: error closes the
// connection, latency sleeps once, corrupt flips a byte of the first frame.
func (fc *faultConn) Write(b []byte) (int, error) {
	fc.mu.Lock()
	if !fc.writing {
		fc.writing = true
		fc.pending = fc.in.next()
	}
	f := fc.pending
	fc.mu.Unlock()

	switch f {
	case FaultError:
		fc.Close()
		return 0, ErrInjected
	case FaultLatency:
		fc.setPending(FaultNone) // delay once, then run clean
		time.Sleep(fc.in.latencyFor())
	case FaultCorrupt:
		fc.setPending(FaultNone) // corrupt the first write only
		mangled := make([]byte, len(b))
		copy(mangled, b)
		if len(mangled) > 0 {
			mangled[0] ^= 0xff
		}
		return fc.Conn.Write(mangled)
	}
	return fc.Conn.Write(b)
}

// Read delivers the peer's bytes unless the exchange drew FaultHang, in
// which case the response never arrives: the read blocks until the
// connection closes or its deadline expires.
func (fc *faultConn) Read(b []byte) (int, error) {
	fc.mu.Lock()
	fc.writing = false
	f := fc.pending
	deadline := fc.readDeadline
	fc.mu.Unlock()

	if f == FaultHang {
		// The response never arrives: block until the connection is closed
		// or the client's read deadline gives up on it.
		var expire <-chan time.Time
		if !deadline.IsZero() {
			t := time.NewTimer(time.Until(deadline))
			defer t.Stop()
			expire = t.C
		}
		select {
		case <-fc.closed:
			return 0, net.ErrClosed
		case <-expire:
			return 0, os.ErrDeadlineExceeded
		}
	}
	return fc.Conn.Read(b)
}

func (fc *faultConn) setPending(f Fault) {
	fc.mu.Lock()
	fc.pending = f
	fc.mu.Unlock()
}

// SetDeadline records the read half for hang emulation and forwards to the
// wrapped connection.
func (fc *faultConn) SetDeadline(t time.Time) error {
	fc.mu.Lock()
	fc.readDeadline = t
	fc.mu.Unlock()
	return fc.Conn.SetDeadline(t)
}

// SetReadDeadline records the deadline for hang emulation and forwards to
// the wrapped connection.
func (fc *faultConn) SetReadDeadline(t time.Time) error {
	fc.mu.Lock()
	fc.readDeadline = t
	fc.mu.Unlock()
	return fc.Conn.SetReadDeadline(t)
}

// Close releases any hung reads and closes the wrapped connection exactly
// once; later calls are no-ops.
func (fc *faultConn) Close() error {
	var err error
	fc.closeOnce.Do(func() {
		close(fc.closed)
		err = fc.Conn.Close()
	})
	return err
}

// latencyFor returns the configured latency injection.
func (in *Injector) latencyFor() time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.latency
}
