package resilience

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// echoPair returns a client conn wrapped by the injector, connected over
// TCP loopback to a server that echoes every byte back. TCP (not net.Pipe)
// because the echo must buffer a whole write burst without a reader.
func echoPair(t *testing.T, in *Injector) net.Conn {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		server, err := ln.Accept()
		if err != nil {
			return
		}
		defer server.Close()
		io.Copy(server, server)
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := in.WrapConn(client)
	t.Cleanup(func() { c.Close() })
	return c
}

func TestScriptCleanExchangePassesThrough(t *testing.T) {
	c := echoPair(t, NewScript()) // empty script: always clean
	msg := []byte("hello")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("echo = %q, want %q", buf, msg)
	}
}

func TestScriptErrorFault(t *testing.T) {
	in := NewScript(FaultError)
	c := echoPair(t, in)
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = %v, want ErrInjected", err)
	}
	if got := in.Injected(FaultError); got != 1 {
		t.Fatalf("Injected(FaultError) = %d, want 1", got)
	}
	// The connection was closed by the fault, as a reset would.
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("Read on a reset connection succeeded")
	}
}

func TestScriptCorruptFlipsFirstByteOnce(t *testing.T) {
	in := NewScript(FaultCorrupt)
	c := echoPair(t, in)
	// Exchange 1: corrupted. The wrapper must not mutate the caller's buffer.
	msg := []byte{0x01, 0x02}
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	if msg[0] != 0x01 {
		t.Fatal("injector mutated the caller's write buffer")
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x01^0xff || buf[1] != 0x02 {
		t.Fatalf("echoed %v, want first byte flipped only", buf)
	}
	// Exchange 2: the script is exhausted, bytes flow untouched.
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("second exchange = %v, want clean %v", buf, msg)
	}
}

func TestScriptLatencyDelaysExchange(t *testing.T) {
	in := NewScript(FaultLatency)
	in.latency = 30 * time.Millisecond
	c := echoPair(t, in)
	start := time.Now()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("exchange took %v, want >= 30ms of injected latency", d)
	}
}

func TestScriptHangHonorsReadDeadline(t *testing.T) {
	in := NewScript(FaultHang)
	c := echoPair(t, in)
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	_, err := c.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Read under hang = %v, want deadline exceeded", err)
	}
}

func TestScriptHangReleasedByClose(t *testing.T) {
	in := NewScript(FaultHang)
	c := echoPair(t, in)
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	c.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("Read after close = %v, want net.ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("hung read was not released by Close")
	}
}

func TestScriptConsumesOneFaultPerExchange(t *testing.T) {
	in := NewScript(FaultNone, FaultCorrupt, FaultNone)
	c := echoPair(t, in)
	buf := make([]byte, 4)
	for i := 0; i < 3; i++ {
		// Two writes in one burst consume a single decision (the framed
		// transport writes header and payload separately).
		if _, err := c.Write([]byte("ab")); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write([]byte("cd")); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Fatal(err)
		}
		wantCorrupt := i == 1
		if gotCorrupt := buf[0] != 'a'; gotCorrupt != wantCorrupt {
			t.Fatalf("exchange %d corrupt = %v, want %v (buf %q)", i, gotCorrupt, wantCorrupt, buf)
		}
	}
	if got := in.Injected(FaultNone); got != 2 {
		t.Fatalf("clean exchanges = %d, want 2", got)
	}
}

func TestRandomInjectorDeterministicPerSeed(t *testing.T) {
	draw := func(seed int64) []Fault {
		in := NewRandom(seed, FaultConfig{PError: 0.3, PHang: 0.1, PCorrupt: 0.1, PLatency: 0.2})
		var seq []Fault
		for i := 0; i < 64; i++ {
			seq = append(seq, in.next())
		}
		return seq
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	saw := make(map[Fault]bool)
	for _, f := range a {
		saw[f] = true
	}
	for _, f := range []Fault{FaultNone, FaultError} {
		if !saw[f] {
			t.Errorf("64 draws at these probabilities never produced %v", f)
		}
	}
}

func TestFaultString(t *testing.T) {
	want := map[Fault]string{
		FaultNone: "none", FaultError: "error", FaultLatency: "latency",
		FaultHang: "hang", FaultCorrupt: "corrupt", Fault(99): "unknown",
	}
	for f, s := range want {
		if f.String() != s {
			t.Errorf("Fault(%d).String() = %q, want %q", f, f.String(), s)
		}
	}
}
