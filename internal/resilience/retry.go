package resilience

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy tunes a Retrier. The zero value of each field selects the
// documented default.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, the first included
	// (default 3; 1 means no retrying).
	MaxAttempts int
	// BaseDelay is the backoff ceiling before the first retry; the ceiling
	// doubles each further attempt (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling (default 2s).
	MaxDelay time.Duration
	// AttemptTimeout bounds each individual attempt via the context handed
	// to the operation (0: attempts inherit the caller's deadline only).
	AttemptTimeout time.Duration
	// Seed seeds the jitter source, making delay sequences reproducible.
	Seed int64
	// Retryable classifies errors; a nil function retries everything.
	// Non-retryable errors are returned immediately.
	Retryable func(error) bool
	// OnRetry, when set, observes every scheduled retry (metrics hook).
	OnRetry func(attempt int, delay time.Duration, err error)
	// Sleep is the delay function; tests inject a recorder. Defaults to a
	// context-aware sleep.
	Sleep func(context.Context, time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return p
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Retrier runs operations under a RetryPolicy with exponential backoff and
// full jitter: before attempt n the delay is uniform in [0, min(MaxDelay,
// BaseDelay·2ⁿ⁻¹)]. Full jitter decorrelates the retry storms that
// synchronized backoff creates when many clients fail at once — the
// standard result from the AWS architecture blog the policy is named after.
// A Retrier is safe for concurrent use; the jitter source is shared and
// seeded, so a single-goroutine test sees a reproducible delay sequence.
type Retrier struct {
	pol RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetrier builds a retrier from the policy.
func NewRetrier(pol RetryPolicy) *Retrier {
	pol = pol.withDefaults()
	return &Retrier{pol: pol, rng: rand.New(rand.NewSource(pol.Seed))}
}

// jitter draws the delay before the retry numbered attempt (1-based).
func (r *Retrier) jitter(attempt int) time.Duration {
	ceil := r.pol.BaseDelay << (attempt - 1)
	if ceil > r.pol.MaxDelay || ceil <= 0 { // <= 0: shift overflow
		ceil = r.pol.MaxDelay
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Duration(r.rng.Int63n(int64(ceil) + 1))
}

// Do runs op until it succeeds, fails terminally, or the attempt budget is
// spent. Each attempt receives a context bounded by AttemptTimeout (when
// set) under the caller's ctx; between attempts Do backs off with full
// jitter. The error of the last attempt is returned. Do stops early when
// ctx itself ends, returning ctx.Err() if no attempt error is available.
func (r *Retrier) Do(ctx context.Context, op func(context.Context) error) error {
	var last error
	for attempt := 1; ; attempt++ {
		actx := ctx
		var cancel context.CancelFunc
		if r.pol.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, r.pol.AttemptTimeout)
		}
		last = op(actx)
		if cancel != nil {
			cancel()
		}
		if last == nil {
			return nil
		}
		if attempt >= r.pol.MaxAttempts {
			return last
		}
		if r.pol.Retryable != nil && !r.pol.Retryable(last) {
			return last
		}
		if ctx.Err() != nil {
			return last
		}
		d := r.jitter(attempt)
		if r.pol.OnRetry != nil {
			r.pol.OnRetry(attempt, d, last)
		}
		r.pol.Sleep(ctx, d)
		if ctx.Err() != nil {
			return last
		}
	}
}
