// Injectable time for deterministic tests: components in this package (and
// consumers like internal/router) take a `Now func() time.Time` seam; a
// ManualClock satisfies it with time that moves only when the test says so,
// replacing wall-clock sleeps — the classic CI flake surface — with exact,
// instant advances.

package resilience

import (
	"sync"
	"time"
)

// ManualClock is a time source that advances only when told to. Feed its
// Now method to BreakerConfig.Now (or any `func() time.Time` seam) and call
// Advance to move through cooldowns and timeouts without sleeping — tests
// stay deterministic under -race on arbitrarily slow machines. Safe for
// concurrent use. The zero value starts at the zero time; NewManualClock
// picks an arbitrary fixed epoch so durations behave naturally.
type ManualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewManualClock returns a clock frozen at an arbitrary fixed instant.
func NewManualClock() *ManualClock {
	return &ManualClock{now: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// Now returns the clock's current instant. Pass the method value
// (clock.Now) wherever a `func() time.Time` is expected.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (negative d is ignored — time does
// not run backwards, matching the monotonic clock the seam replaces).
func (c *ManualClock) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Set jumps the clock to t when t is not earlier than the current instant
// (earlier instants are ignored, preserving monotonicity).
func (c *ManualClock) Set(t time.Time) {
	c.mu.Lock()
	if t.After(c.now) {
		c.now = t
	}
	c.mu.Unlock()
}
