package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

var errTransient = errors.New("transient")

func TestRetrierSucceedsAfterTransientError(t *testing.T) {
	var slept []time.Duration
	r := NewRetrier(RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		Seed:        1,
		Sleep:       func(_ context.Context, d time.Duration) { slept = append(slept, d) },
	})
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errTransient
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want success", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if len(slept) != 2 {
		t.Fatalf("backoffs = %d, want 2", len(slept))
	}
	// Full jitter: each delay is within [0, BaseDelay·2ⁿ⁻¹].
	for i, d := range slept {
		ceil := 10 * time.Millisecond << i
		if d < 0 || d > ceil {
			t.Errorf("backoff %d = %v, want within [0, %v]", i, d, ceil)
		}
	}
}

func TestRetrierExhaustsAttempts(t *testing.T) {
	r := NewRetrier(RetryPolicy{
		MaxAttempts: 3,
		Sleep:       func(context.Context, time.Duration) {},
	})
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error { calls++; return errTransient })
	if !errors.Is(err, errTransient) {
		t.Fatalf("Do = %v, want last attempt's error", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestRetrierStopsOnTerminalError(t *testing.T) {
	terminal := errors.New("bad request")
	r := NewRetrier(RetryPolicy{
		MaxAttempts: 5,
		Retryable:   func(err error) bool { return !errors.Is(err, terminal) },
		Sleep:       func(context.Context, time.Duration) {},
	})
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error { calls++; return terminal })
	if !errors.Is(err, terminal) || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want terminal error after 1", err, calls)
	}
}

func TestRetrierDeterministicJitter(t *testing.T) {
	seq := func() []time.Duration {
		var slept []time.Duration
		r := NewRetrier(RetryPolicy{
			MaxAttempts: 5,
			BaseDelay:   time.Millisecond,
			Seed:        42,
			Sleep:       func(_ context.Context, d time.Duration) { slept = append(slept, d) },
		})
		r.Do(context.Background(), func(context.Context) error { return errTransient })
		return slept
	}
	a, b := seq(), seq()
	if len(a) != 4 {
		t.Fatalf("backoffs = %d, want 4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at backoff %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRetrierJitterCeilingCapped(t *testing.T) {
	r := NewRetrier(RetryPolicy{BaseDelay: time.Second, MaxDelay: 2 * time.Second, Seed: 7})
	for attempt := 1; attempt < 70; attempt++ { // far past shift overflow
		if d := r.jitter(attempt); d < 0 || d > 2*time.Second {
			t.Fatalf("jitter(%d) = %v, want within [0, 2s]", attempt, d)
		}
	}
}

func TestRetrierHonorsCallerContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := NewRetrier(RetryPolicy{
		MaxAttempts: 10,
		Sleep:       func(context.Context, time.Duration) {},
	})
	calls := 0
	err := r.Do(ctx, func(context.Context) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return errTransient
	})
	if !errors.Is(err, errTransient) {
		t.Fatalf("Do = %v, want the attempt error", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (stop when ctx ends)", calls)
	}
}

func TestRetrierAttemptTimeout(t *testing.T) {
	r := NewRetrier(RetryPolicy{
		MaxAttempts:    2,
		AttemptTimeout: 5 * time.Millisecond,
		Sleep:          func(context.Context, time.Duration) {},
	})
	deadlines := 0
	err := r.Do(context.Background(), func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			deadlines++
		}
		<-ctx.Done() // simulate an attempt that outlives its budget
		return ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do = %v, want deadline exceeded", err)
	}
	if deadlines != 2 {
		t.Fatalf("attempts with a deadline = %d, want 2", deadlines)
	}
}

func TestRetrierOnRetryObserves(t *testing.T) {
	var attempts []int
	r := NewRetrier(RetryPolicy{
		MaxAttempts: 3,
		OnRetry:     func(attempt int, _ time.Duration, err error) { attempts = append(attempts, attempt) },
		Sleep:       func(context.Context, time.Duration) {},
	})
	r.Do(context.Background(), func(context.Context) error { return errTransient })
	if len(attempts) != 2 || attempts[0] != 1 || attempts[1] != 2 {
		t.Fatalf("OnRetry attempts = %v, want [1 2]", attempts)
	}
}
