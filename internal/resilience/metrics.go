package resilience

import "wisdom/internal/observe"

// InstrumentBreaker exposes a breaker's state on the registry as the
// wisdom_breaker_state gauge, labelled by backend: 0 closed, 1 half-open,
// 2 open (higher = less healthy). A nil registry or breaker is a no-op.
func InstrumentBreaker(reg *observe.Registry, backend string, b *Breaker) {
	if reg == nil || b == nil {
		return
	}
	reg.GaugeFunc("wisdom_breaker_state",
		"Circuit breaker position: 0 closed, 1 half-open, 2 open.",
		func() float64 { return float64(b.State()) },
		observe.Label{Key: "backend", Value: backend})
}
