// Package resilience implements the failure-path building blocks of the
// serving stack: a deterministic, seedable fault-injection layer for testing
// the transport, a retrier with exponential backoff and full jitter, and a
// three-state circuit breaker. The serve package wires them into the RPC
// client and the wisdom package into the predictor degradation chain; every
// failure mode those layers claim to handle is provable on demand by
// replaying a fault script through these injectors in a -race test.
//
// The package is deliberately policy-only: nothing here knows about frames,
// predictors or HTTP. That keeps each piece independently testable with a
// fake clock and a scripted fault sequence, and lets the same breaker guard
// a remote backend (serve.RetryClient) and a local one (wisdom.Chain).
package resilience

import (
	"errors"
	"sync"
	"time"
)

// State is a circuit breaker's position. The numeric values are stable and
// exported as the wisdom_breaker_state gauge: higher means less healthy.
type State int32

const (
	// Closed passes every request through; consecutive failures are counted.
	Closed State = 0
	// HalfOpen admits a bounded number of trial requests after the cooldown;
	// their outcomes decide between Closed and Open.
	HalfOpen State = 1
	// Open fails every request fast until the cooldown elapses.
	Open State = 2
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	}
	return "unknown"
}

// ErrBreakerOpen is returned (or surfaced by callers) when the breaker
// refuses a request without attempting the backend.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerConfig tunes a Breaker. The zero value of each field selects the
// documented default.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip the breaker
	// from Closed to Open (default 5).
	FailureThreshold int
	// Cooldown is how long the breaker stays Open before admitting
	// half-open trial requests (default 5s).
	Cooldown time.Duration
	// HalfOpenProbes bounds concurrent trial requests while HalfOpen
	// (default 1).
	HalfOpenProbes int
	// SuccessThreshold is how many trial successes close the breaker again
	// (default 1).
	SuccessThreshold int
	// Now is the clock; tests inject a fake one. Default time.Now.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.SuccessThreshold <= 0 {
		c.SuccessThreshold = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a three-state circuit breaker guarding one backend. It is safe
// for concurrent use. The protocol is: call Allow before the backend call;
// when Allow returns true, the call must be followed by exactly one Record
// with the outcome. When Allow returns false the backend must not be
// called (fail fast, typically degrading or returning ErrBreakerOpen).
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     State
	fails     int // consecutive failures while Closed
	successes int // trial successes while HalfOpen
	probes    int // trial requests in flight while HalfOpen
	openedAt  time.Time
}

// NewBreaker builds a breaker in the Closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may proceed to the backend. While Open it
// returns false until the cooldown elapses, at which point the breaker
// half-opens and admits up to HalfOpenProbes trial requests.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = HalfOpen
		b.successes = 0
		b.probes = 1
		return true
	default: // HalfOpen
		if b.probes >= b.cfg.HalfOpenProbes {
			return false
		}
		b.probes++
		return true
	}
}

// Record reports the outcome of a call previously admitted by Allow. A nil
// err counts as success. Outcomes of calls admitted before the breaker
// tripped (late results arriving while Open) are discarded so they cannot
// shorten or extend the cooldown.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if err == nil {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.trip()
		}
	case HalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if err != nil {
			b.trip()
			return
		}
		b.successes++
		if b.successes >= b.cfg.SuccessThreshold {
			b.state = Closed
			b.fails = 0
		}
	case Open:
		// Late result from before the trip: ignore.
	}
}

// trip moves to Open and stamps the cooldown start; callers hold mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.cfg.Now()
	b.fails = 0
	b.probes = 0
	b.successes = 0
}

// State returns the breaker's current position. An Open breaker whose
// cooldown has elapsed still reports Open until the next Allow call
// half-opens it — state transitions happen on the request path, never on a
// timer.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
