package lexical

import (
	"math"
	"testing"
)

// build trains a model where prompt token 1 predicts body token 10, and
// prompt token 2 predicts body token 20; token 5 is a structural token that
// appears with everything.
func build() *Model {
	m := New(32)
	for i := 0; i < 20; i++ {
		m.AddPair([]int{1}, []int{5, 10})
		m.AddPair([]int{2}, []int{5, 20})
	}
	return m
}

func TestProbFavorsAssociated(t *testing.T) {
	m := build()
	if p10, p20 := m.Prob([]int{1}, 10), m.Prob([]int{1}, 20); p10 <= p20 {
		t.Errorf("P(10|1)=%v <= P(20|1)=%v", p10, p20)
	}
	if p20, p10 := m.Prob([]int{2}, 20), m.Prob([]int{2}, 10); p20 <= p10 {
		t.Errorf("P(20|2)=%v <= P(10|2)=%v", p20, p10)
	}
}

func TestAffinitySigns(t *testing.T) {
	m := build()
	if a := m.Affinity([]int{1}, 10); a <= 0 {
		t.Errorf("affinity of associated token = %v, want > 0", a)
	}
	if a := m.Affinity([]int{1}, 20); a >= 0 {
		t.Errorf("affinity of disfavoured token = %v, want < 0", a)
	}
	// Structural token 5 appears with every prompt: affinity near 0.
	if a := math.Abs(m.Affinity([]int{1}, 5)); a > 0.3 {
		t.Errorf("structural-token affinity = %v, want ~0", a)
	}
}

func TestUnseenPromptBacksOff(t *testing.T) {
	m := build()
	// Prompt token 9 was never seen: probabilities equal the unigram.
	for _, tok := range []int{5, 10, 20} {
		got := m.Prob([]int{9}, tok)
		want := m.uniProb(tok)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("P(%d|unseen) = %v, want unigram %v", tok, got, want)
		}
		if a := m.Affinity([]int{9}, tok); math.Abs(a) > 1e-9 {
			t.Errorf("affinity under unseen prompt = %v, want 0", a)
		}
	}
}

func TestEmptyPrompt(t *testing.T) {
	m := build()
	if m.Prob(nil, 10) != m.uniProb(10) {
		t.Error("empty prompt should return unigram")
	}
}

func TestUntrainedModel(t *testing.T) {
	m := New(16)
	if m.Trained() {
		t.Error("empty model reports trained")
	}
	if p := m.Prob([]int{1}, 2); math.Abs(p-1.0/16) > 1e-12 {
		t.Errorf("untrained prob = %v, want uniform", p)
	}
	if a := m.Affinity([]int{1}, 2); a != 0 {
		t.Errorf("untrained affinity = %v", a)
	}
}

func TestOutOfRange(t *testing.T) {
	m := build()
	if m.Prob([]int{1}, -1) != 0 || m.Prob([]int{1}, 999) != 0 {
		t.Error("out-of-range token has probability")
	}
	m.AddPair([]int{1}, []int{-7, 999}) // must not panic or corrupt
	if !m.Trained() {
		_ = m
	}
}

func TestMultiTokenPromptAverages(t *testing.T) {
	m := build()
	both := m.Prob([]int{1, 2}, 10)
	only1 := m.Prob([]int{1}, 10)
	only2 := m.Prob([]int{2}, 10)
	if both <= only2 || both >= only1 {
		t.Errorf("mixture P=%v not between %v and %v", both, only2, only1)
	}
}

func TestProbsAreProbabilities(t *testing.T) {
	m := build()
	sum := 0.0
	for tok := 0; tok < 32; tok++ {
		p := m.Prob([]int{1}, tok)
		if p < 0 || p > 1 {
			t.Fatalf("P(%d) = %v", tok, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("sum of P(.|1) = %v, want 1", sum)
	}
}
