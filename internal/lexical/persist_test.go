package lexical

import (
	"bytes"
	"math"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := build()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Trained() || back.Pairs() != m.Pairs() {
		t.Fatalf("trained=%v pairs=%d vs %d", back.Trained(), back.Pairs(), m.Pairs())
	}
	for _, prompt := range [][]int{{1}, {2}, {1, 2}, {9}} {
		for tok := 0; tok < 32; tok++ {
			a, b := m.Prob(prompt, tok), back.Prob(prompt, tok)
			if math.Abs(a-b) > 1e-15 {
				t.Fatalf("P(%d|%v): %v != %v", tok, prompt, a, b)
			}
			if math.Abs(m.Affinity(prompt, tok)-back.Affinity(prompt, tok)) > 1e-12 {
				t.Fatalf("affinity differs for %d|%v", tok, prompt)
			}
		}
	}
	back.AddPair([]int{3}, []int{30}) // remains trainable
	if back.Pairs() != m.Pairs()+1 {
		t.Error("reloaded model not trainable")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("x"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	m := New(8)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Trained() {
		t.Error("empty model reports trained after reload")
	}
	back.AddPair([]int{1}, []int{2})
	if !back.Trained() {
		t.Error("reloaded empty model not trainable")
	}
}
