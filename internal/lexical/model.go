// Package lexical implements an IBM-Model-1-style lexical translation
// channel: co-occurrence statistics between prompt tokens (an Ansible task's
// natural-language name) and completion tokens (the task body), learned from
// the name/body pairs present in a training corpus.
//
// In the reproduction's n-gram stand-in for the paper's transformers, this
// channel plays the role of attention: it carries the prompt's content
// ("postgresql", "firewall", "nginx") across the distance a low-order n-gram
// cannot, by rescoring candidate next tokens with their affinity to the
// prompt. A model pre-trained on corpora without Ansible name/body pairs
// learns no such statistics — which is precisely how the paper's data-mix
// orderings (CodeGen-NL < CodeGen-Multi < Wisdom) arise here.
package lexical

import "math"

// Model holds smoothed co-occurrence counts between prompt and body tokens.
// AddPair mutates; once training is done, Prob and Affinity are pure reads
// and safe for concurrent use (see TestConcurrentScoring).
type Model struct {
	vocab int
	// counts[p][b] is how often body token b appeared with prompt token p.
	counts map[int]map[int]int
	totals map[int]int // total body tokens seen with prompt token p
	// unigram body-token counts, the backoff distribution.
	unigram map[int]int
	uniTot  int
}

// New returns an empty model over a vocabulary of the given size.
func New(vocabSize int) *Model {
	return &Model{
		vocab:   vocabSize,
		counts:  make(map[int]map[int]int),
		totals:  make(map[int]int),
		unigram: make(map[int]int),
	}
}

// AddPair accumulates one (prompt, body) example.
func (m *Model) AddPair(prompt, body []int) {
	pset := uniq(prompt)
	for _, b := range body {
		if b < 0 || b >= m.vocab {
			continue
		}
		m.unigram[b]++
		m.uniTot++
		for _, p := range pset {
			c := m.counts[p]
			if c == nil {
				c = make(map[int]int)
				m.counts[p] = c
			}
			c[b]++
			m.totals[p]++
		}
	}
}

// Pairs returns the number of distinct prompt tokens observed.
func (m *Model) Pairs() int { return len(m.counts) }

// Trained reports whether the model has seen any data.
func (m *Model) Trained() bool { return m.uniTot > 0 }

// uniProb is the unigram backoff probability of a body token.
func (m *Model) uniProb(tok int) float64 {
	if m.uniTot == 0 {
		return 1 / float64(m.vocab)
	}
	// Add-one smoothing over the vocabulary.
	return (float64(m.unigram[tok]) + 1) / (float64(m.uniTot) + float64(m.vocab))
}

// Prob returns the translation probability P(tok | prompt): the mean of the
// per-prompt-token Witten-Bell-smoothed conditional probabilities, backing
// off to the body unigram for unseen prompt tokens.
func (m *Model) Prob(prompt []int, tok int) float64 {
	if tok < 0 || tok >= m.vocab {
		return 0
	}
	base := m.uniProb(tok)
	pset := uniq(prompt)
	if len(pset) == 0 {
		return base
	}
	sum := 0.0
	for _, p := range pset {
		c, ok := m.counts[p]
		if !ok {
			sum += base
			continue
		}
		total := float64(m.totals[p])
		types := float64(len(c))
		sum += (float64(c[tok]) + types*base) / (total + types)
	}
	return sum / float64(len(pset))
}

// Affinity returns the pointwise association between the prompt and a
// candidate token: the maximum over the prompt's *observed* tokens of
// log(P(tok|p) / P(tok)). Using the best-aligned prompt word rather than
// the mean follows the IBM Model 1 alignment view — each body token is
// explained by one prompt word — and keeps the discriminative word's signal
// undiluted by the prompt's function words. The result is positive when
// some prompt word makes the token more likely than its base rate, ~0 for
// prompt-neutral tokens (indentation, colons), negative when every observed
// prompt word disfavours it, and 0 when no prompt word was ever seen.
func (m *Model) Affinity(prompt []int, tok int) float64 {
	base := m.uniProb(tok)
	if base <= 0 {
		return 0
	}
	best := math.Inf(-1)
	seen := false
	for _, p := range uniq(prompt) {
		c, ok := m.counts[p]
		if !ok {
			continue
		}
		seen = true
		total := float64(m.totals[p])
		types := float64(len(c))
		cond := (float64(c[tok]) + types*base) / (total + types)
		if r := math.Log(cond / base); r > best {
			best = r
		}
	}
	if !seen {
		return 0
	}
	return best
}

func uniq(ids []int) []int {
	seen := make(map[int]bool, len(ids))
	out := make([]int, 0, len(ids))
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
