package lexical

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the gob wire format of a lexical model.
type snapshot struct {
	Vocab   int
	Counts  map[int]map[int]int
	Totals  map[int]int
	Unigram map[int]int
	UniTot  int
}

// Save serialises the model with encoding/gob.
func (m *Model) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(snapshot{
		Vocab:   m.vocab,
		Counts:  m.counts,
		Totals:  m.totals,
		Unigram: m.unigram,
		UniTot:  m.uniTot,
	})
}

// Load restores a model saved by Save.
func Load(r io.Reader) (*Model, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("lexical: decode: %w", err)
	}
	if snap.Vocab < 1 {
		return nil, fmt.Errorf("lexical: invalid vocabulary size %d", snap.Vocab)
	}
	m := New(snap.Vocab)
	if snap.Counts != nil {
		m.counts = snap.Counts
	}
	if snap.Totals != nil {
		m.totals = snap.Totals
	}
	if snap.Unigram != nil {
		m.unigram = snap.Unigram
	}
	m.uniTot = snap.UniTot
	return m, nil
}
