package lexical

import (
	"sync"
	"testing"
)

// TestConcurrentScoring pins down the package contract the serve layer
// depends on: after the AddPair calls end, the co-occurrence tables are
// frozen and Prob/Affinity are pure reads, safe to call from any number of
// goroutines. Run under -race this fails if scoring mutates the model.
func TestConcurrentScoring(t *testing.T) {
	m := New(16)
	m.AddPair([]int{1, 2, 3}, []int{4, 5})
	m.AddPair([]int{1, 6}, []int{4, 7})
	m.AddPair([]int{2, 3}, []int{5, 8})

	prompt := []int{1, 2}
	wantProb := m.Prob(prompt, 4)
	wantAff := m.Affinity(prompt, 5)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if got := m.Prob(prompt, 4); got != wantProb {
					t.Errorf("Prob = %v, want %v", got, wantProb)
					return
				}
				if got := m.Affinity(prompt, 5); got != wantAff {
					t.Errorf("Affinity = %v, want %v", got, wantAff)
					return
				}
			}
		}()
	}
	wg.Wait()
}
