package metrics

import (
	"wisdom/internal/ansible"
	"wisdom/internal/yaml"
)

// Report aggregates the four paper metrics over an evaluation set, each
// scaled to 0..100 as reported in the paper's tables.
type Report struct {
	// SchemaCorrect is the percentage of predictions that satisfy the
	// strict Ansible schema (computed on predictions alone).
	SchemaCorrect float64
	// ExactMatch is the percentage of predictions textually identical to
	// the reference.
	ExactMatch float64
	// BLEU is corpus-level smoothed BLEU-4.
	BLEU float64
	// AnsibleAware is the mean Ansible Aware score.
	AnsibleAware float64
	// Count is the number of evaluated pairs.
	Count int
}

// Evaluator scores prediction/reference pairs with all four metrics.
type Evaluator struct {
	aware     *AnsibleAware
	validator *ansible.Validator
}

// NewEvaluator returns an evaluator with the paper's metric settings.
func NewEvaluator() *Evaluator {
	return &Evaluator{aware: NewAnsibleAware(), validator: ansible.NewValidator()}
}

// SchemaCorrect reports whether one prediction parses and satisfies the
// strict schema, the per-sample basis of the Schema Correct metric.
func (e *Evaluator) SchemaCorrect(pred string) bool {
	n, err := yaml.Parse(pred)
	if err != nil {
		return false
	}
	return e.validator.Valid(n)
}

// Score computes all per-sample metrics for one pair.
func (e *Evaluator) Score(pred, ref string) (schemaOK, exact bool, bleu, aware float64) {
	schemaOK = e.SchemaCorrect(pred)
	exact = ExactMatch(pred, ref)
	bleu = SentenceBLEU(pred, ref)
	aware = e.aware.Score(pred, ref)
	return
}

// Evaluate aggregates the corpus-level report over parallel prediction and
// reference slices, mirroring the paper's table rows.
func (e *Evaluator) Evaluate(preds, refs []string) Report {
	if len(preds) != len(refs) || len(preds) == 0 {
		return Report{}
	}
	var r Report
	r.Count = len(preds)
	var awareSum float64
	for i := range preds {
		if e.SchemaCorrect(preds[i]) {
			r.SchemaCorrect++
		}
		if ExactMatch(preds[i], refs[i]) {
			r.ExactMatch++
		}
		awareSum += e.aware.Score(preds[i], refs[i])
	}
	n := float64(r.Count)
	r.SchemaCorrect = 100 * r.SchemaCorrect / n
	r.ExactMatch = 100 * r.ExactMatch / n
	r.AnsibleAware = 100 * awareSum / n
	r.BLEU = BLEU(preds, refs)
	return r
}
