// Package metrics implements the four evaluation metrics of the paper:
// Exact Match, BLEU, and the two novel Ansible-specific metrics — Ansible
// Aware (a YAML-structure-aware similarity) and Schema Correct (strict
// schema validity of the prediction alone).
package metrics

import (
	"math"
	"strings"
)

// maxOrder is the n-gram order of BLEU (standard BLEU-4).
const maxOrder = 4

// BLEU computes the corpus-level BLEU-4 score (0..100) over prediction/
// reference pairs, with the brevity penalty computed on corpus totals and
// add-one ("ORANGE") smoothing applied to zero higher-order matches, the
// smoothing the paper cites (Lin & Och, 2004).
func BLEU(preds, refs []string) float64 {
	if len(preds) != len(refs) || len(preds) == 0 {
		return 0
	}
	matches := make([]float64, maxOrder)
	totals := make([]float64, maxOrder)
	var predLen, refLen int
	for i := range preds {
		p := bleuTokens(preds[i])
		r := bleuTokens(refs[i])
		predLen += len(p)
		refLen += len(r)
		for n := 1; n <= maxOrder; n++ {
			m, t := ngramOverlap(p, r, n)
			matches[n-1] += float64(m)
			totals[n-1] += float64(t)
		}
	}
	return bleuFromCounts(matches, totals, predLen, refLen)
}

// SentenceBLEU computes smoothed BLEU-4 for one prediction/reference pair.
func SentenceBLEU(pred, ref string) float64 {
	return BLEU([]string{pred}, []string{ref})
}

func bleuFromCounts(matches, totals []float64, predLen, refLen int) float64 {
	if predLen == 0 {
		return 0
	}
	logSum := 0.0
	for n := 0; n < maxOrder; n++ {
		m, t := matches[n], totals[n]
		if t == 0 {
			// Prediction shorter than n tokens: skip the order entirely
			// by treating it as a perfect 1/1 (contributes log 1 = 0).
			continue
		}
		if m == 0 {
			if n == 0 {
				// No unigram overlap at all: BLEU is 0 (smoothing
				// applies only to the higher orders).
				return 0
			}
			// Add-one smoothing for zero matches at higher orders.
			m, t = 1, t+1
		}
		logSum += math.Log(m / t)
	}
	precision := math.Exp(logSum / maxOrder)
	bp := 1.0
	if predLen < refLen {
		bp = math.Exp(1 - float64(refLen)/float64(predLen))
	}
	return 100 * bp * precision
}

// ngramOverlap returns (clipped matches, total prediction n-grams) for one
// order.
func ngramOverlap(pred, ref []string, n int) (match, total int) {
	if len(pred) < n {
		return 0, 0
	}
	refCounts := make(map[string]int)
	for i := 0; i+n <= len(ref); i++ {
		refCounts[strings.Join(ref[i:i+n], "\x00")]++
	}
	total = len(pred) - n + 1
	for i := 0; i+n <= len(pred); i++ {
		g := strings.Join(pred[i:i+n], "\x00")
		if refCounts[g] > 0 {
			refCounts[g]--
			match++
		}
	}
	return match, total
}

// bleuTokens tokenises code for BLEU: identifier/number runs are one token;
// every other non-space byte is its own token. Indentation is significant in
// YAML, so each run of leading spaces also forms a token.
func bleuTokens(s string) []string {
	var toks []string
	i := 0
	atLineStart := true
	for i < len(s) {
		c := s[i]
		switch {
		case c == '\n':
			toks = append(toks, "\\n")
			i++
			atLineStart = true
		case c == ' ' || c == '\t':
			j := i
			for j < len(s) && (s[j] == ' ' || s[j] == '\t') {
				j++
			}
			if atLineStart {
				toks = append(toks, s[i:j])
			}
			i = j
			atLineStart = false
		case isWordChar(c):
			j := i
			for j < len(s) && isWordChar(s[j]) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
			atLineStart = false
		default:
			toks = append(toks, string(c))
			i++
			atLineStart = false
		}
	}
	return toks
}

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c >= 0x80
}

// ExactMatch reports whether prediction and reference are identical after
// insignificant-whitespace normalisation (trailing spaces and trailing
// newlines are ignored, as both sides are standardised YAML).
func ExactMatch(pred, ref string) bool {
	return normalizeText(pred) == normalizeText(ref)
}

func normalizeText(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = strings.TrimRight(l, " \t")
	}
	return strings.Join(lines, "\n")
}
