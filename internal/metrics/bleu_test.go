package metrics

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBLEUIdentity(t *testing.T) {
	refs := []string{
		"- name: install nginx\n  apt:\n    name: nginx\n",
		"state: present",
	}
	if got := BLEU(refs, refs); got < 99.999 {
		t.Errorf("BLEU(x,x) = %v, want 100", got)
	}
}

func TestBLEUDisjoint(t *testing.T) {
	got := BLEU([]string{"aaa bbb ccc ddd"}, []string{"www xxx yyy zzz"})
	if got > 5 {
		t.Errorf("BLEU of disjoint texts = %v, want near 0", got)
	}
}

func TestBLEUBounds(t *testing.T) {
	cases := [][2]string{
		{"", "reference text"},
		{"some text", ""},
		{"partial match here", "partial match there"},
		{"a", "a b c d e f g"},
	}
	for _, c := range cases {
		got := SentenceBLEU(c[0], c[1])
		if got < 0 || got > 100 {
			t.Errorf("SentenceBLEU(%q,%q) = %v out of range", c[0], c[1], got)
		}
	}
}

func TestBLEUQuickBounds(t *testing.T) {
	f := func(a, b string) bool {
		v := SentenceBLEU(a, b)
		return v >= 0 && v <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBLEUOrderingByOverlap(t *testing.T) {
	ref := "- name: install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n"
	near := "- name: install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: latest\n"
	far := "- name: reboot host\n  ansible.builtin.reboot:\n    msg: go\n"
	bNear, bFar := SentenceBLEU(near, ref), SentenceBLEU(far, ref)
	if bNear <= bFar {
		t.Errorf("BLEU(near)=%v <= BLEU(far)=%v", bNear, bFar)
	}
	if bNear < 50 {
		t.Errorf("BLEU(near) = %v, suspiciously low", bNear)
	}
}

func TestBLEUBrevityPenalty(t *testing.T) {
	ref := "a b c d e f g h i j"
	full := "a b c d e f g h i j"
	short := "a b c d e"
	if BLEU([]string{short}, []string{ref}) >= BLEU([]string{full}, []string{ref}) {
		t.Error("brevity penalty not applied")
	}
}

func TestBLEUCorpusVsSentence(t *testing.T) {
	preds := []string{"a b c d", "x y z w"}
	refs := []string{"a b c d", "x y q w"}
	corpus := BLEU(preds, refs)
	if corpus <= 0 || corpus >= 100 {
		t.Errorf("corpus BLEU = %v", corpus)
	}
}

func TestBleuTokens(t *testing.T) {
	toks := bleuTokens("  - name: install nginx\n")
	want := []string{"  ", "-", "name", ":", "install", "nginx", "\\n"}
	if strings.Join(toks, "|") != strings.Join(want, "|") {
		t.Errorf("tokens = %v, want %v", toks, want)
	}
}

func TestBleuTokensIndentSignificant(t *testing.T) {
	a := bleuTokens("  key: v\n")
	b := bleuTokens("    key: v\n")
	if strings.Join(a, "|") == strings.Join(b, "|") {
		t.Error("different indentation produced identical token streams")
	}
}

func TestExactMatch(t *testing.T) {
	if !ExactMatch("a: 1\n", "a: 1") {
		t.Error("trailing newline should not break EM")
	}
	if !ExactMatch("a: 1  \nb: 2\n", "a: 1\nb: 2\n") {
		t.Error("trailing spaces should not break EM")
	}
	if ExactMatch("a: 1\n", "a: 2\n") {
		t.Error("different content matched")
	}
	if ExactMatch("  a: 1\n", "a: 1\n") {
		t.Error("leading indentation must be significant")
	}
}

func TestBLEUMonotoneUnderCorruption(t *testing.T) {
	// Progressively corrupting tokens should not increase BLEU.
	r := rand.New(rand.NewSource(3))
	ref := "- name: configure firewall\n  ansible.posix.firewalld:\n    service: https\n    permanent: true\n    state: enabled\n"
	words := strings.Fields(ref)
	prev := 101.0
	for corrupt := 0; corrupt <= len(words); corrupt += 3 {
		w := append([]string(nil), words...)
		for i := 0; i < corrupt && i < len(w); i++ {
			w[r.Intn(len(w))] = "ZZZ"
		}
		score := SentenceBLEU(strings.Join(w, " "), strings.Join(words, " "))
		if score > prev+1e-9 {
			t.Errorf("BLEU increased from %v to %v at corruption %d", prev, score, corrupt)
		}
		prev = score
	}
}
