package metrics

import (
	"wisdom/internal/ansible"
	"wisdom/internal/yaml"
)

// AnsibleAware computes the paper's Ansible Aware score (0..1) between a
// predicted and a target (reference) Ansible snippet, both given as parsed
// YAML nodes of the same shape class (task mapping, task list, or playbook).
//
// Per the paper's definition:
//
//   - both sides are normalised first: module names to FQCN, legacy "k=v"
//     strings to parameter dicts;
//   - a task's score is the average of the scores of the top-level key/value
//     pairs found in the *target*; keys missing from the prediction score 0,
//     keys inserted in the prediction are ignored;
//   - the "name" key is ignored, as it has no effect on execution;
//   - the score of each key/value pair is the average of its key score and
//     value score;
//   - near-equivalent modules (command/shell, copy/template, package
//     managers) receive a partial key score, averaged with the score of
//     their arguments;
//   - list and dict values are scored recursively by averaging entry/item
//     scores;
//   - a playbook's score averages its top-level pair scores, where each
//     element of a tasks section is scored as a task.
type AnsibleAware struct {
	reg *ansible.Registry
	// EquivalentModuleCredit is the partial key score for near-equivalent
	// module substitutions. The paper gives partial credit without fixing
	// the constant; 0.5 ("half a match") is used by default.
	EquivalentModuleCredit float64
	// InsertionPenalty optionally penalises keys inserted in the
	// prediction; the paper ignores insertions (penalty 0) and flags the
	// penalty as future work, which this knob implements as an extension.
	InsertionPenalty float64
}

// NewAnsibleAware returns the metric with the paper's behaviour.
func NewAnsibleAware() *AnsibleAware {
	return &AnsibleAware{reg: ansible.DefaultRegistry(), EquivalentModuleCredit: 0.5}
}

// Score compares a predicted snippet against the target snippet, both as
// YAML source text. Unparsable predictions score 0. The result is in [0,1].
func (a *AnsibleAware) Score(pred, target string) float64 {
	tn, err := yaml.Parse(target)
	if err != nil {
		return 0
	}
	pn, err := yaml.Parse(pred)
	if err != nil {
		return 0
	}
	return a.ScoreNodes(pn, tn)
}

// ScoreNodes compares parsed prediction and target nodes.
func (a *AnsibleAware) ScoreNodes(pred, target *yaml.Node) float64 {
	if target == nil {
		return 0
	}
	switch {
	case ansible.LooksLikePlaybook(target):
		return a.scorePlaybook(pred, target)
	case target.Kind == yaml.SequenceNode:
		return a.scoreTaskList(pred, target)
	case target.Kind == yaml.MappingNode:
		if pred == nil || pred.Kind != yaml.MappingNode {
			// Allow a single-item sequence prediction for a task target.
			if pred != nil && pred.Kind == yaml.SequenceNode && len(pred.Items) == 1 {
				pred = pred.Items[0]
			} else {
				return 0
			}
		}
		return a.scoreTask(pred, target)
	default:
		return a.scoreValue(pred, target)
	}
}

func (a *AnsibleAware) scorePlaybook(pred, target *yaml.Node) float64 {
	if pred == nil || pred.Kind != yaml.SequenceNode {
		return 0
	}
	if len(target.Items) == 0 {
		return 0
	}
	sum := 0.0
	for i, tplay := range target.Items {
		var pplay *yaml.Node
		if i < len(pred.Items) {
			pplay = pred.Items[i]
		}
		sum += a.scorePlay(pplay, tplay)
	}
	return sum / float64(len(target.Items))
}

func (a *AnsibleAware) scorePlay(pred, target *yaml.Node) float64 {
	if target == nil || target.Kind != yaml.MappingNode {
		return 0
	}
	if pred == nil || pred.Kind != yaml.MappingNode {
		return 0
	}
	var sum float64
	var count int
	for i, k := range target.Keys {
		key := k.Value
		if key == "name" {
			continue
		}
		count++
		pv := pred.Get(key)
		if pv == nil {
			continue // key missing from prediction: 0
		}
		tv := target.Values[i]
		var valScore float64
		if isTaskSectionKey(key) && tv != nil && tv.Kind == yaml.SequenceNode {
			valScore = a.scoreTaskList(pv, tv)
		} else {
			valScore = a.scoreValue(pv, tv)
		}
		sum += (1 + valScore) / 2 // key matched exactly + value score
	}
	if count == 0 {
		return 1
	}
	return sum / float64(count)
}

func (a *AnsibleAware) scoreTaskList(pred, target *yaml.Node) float64 {
	if pred == nil {
		return 0
	}
	if pred.Kind == yaml.MappingNode && len(target.Items) == 1 {
		// Mapping prediction for single-task target.
		return a.scoreTask(pred, target.Items[0])
	}
	if pred.Kind != yaml.SequenceNode || len(target.Items) == 0 {
		return 0
	}
	sum := 0.0
	for i, tt := range target.Items {
		var pt *yaml.Node
		if i < len(pred.Items) {
			pt = pred.Items[i]
		}
		if pt == nil || pt.Kind != yaml.MappingNode || tt == nil || tt.Kind != yaml.MappingNode {
			continue
		}
		sum += a.scoreTask(pt, tt)
	}
	return sum / float64(len(target.Items))
}

// scoreTask scores a predicted task mapping against a target task mapping.
func (a *AnsibleAware) scoreTask(pred, target *yaml.Node) float64 {
	pred = ansible.NormalizeTask(pred, a.reg)
	target = ansible.NormalizeTask(target, a.reg)

	tTask, tErr := ansible.AnalyzeTask(target, a.reg)
	pTask, pErr := ansible.AnalyzeTask(pred, a.reg)

	var sum float64
	var count int
	for i, k := range target.Keys {
		key := k.Value
		if key == "name" {
			continue
		}
		count++
		tv := target.Values[i]

		// Module key: allow equivalent-module partial credit.
		if tErr == nil && key == tTask.FQCN {
			sum += a.scoreModulePair(pTask, pErr, pred, key, tv)
			continue
		}
		pv := pred.Get(key)
		if pv == nil {
			continue
		}
		keyScore := 1.0
		var valScore float64
		if ansible.IsBlockKeyword(key) && tv != nil && tv.Kind == yaml.SequenceNode {
			valScore = a.scoreTaskList(pv, tv)
		} else {
			valScore = a.scoreValue(pv, tv)
		}
		sum += (keyScore + valScore) / 2
	}
	if count == 0 {
		return 1
	}
	score := sum / float64(count)
	if a.InsertionPenalty > 0 {
		score -= a.InsertionPenalty * float64(a.insertedKeys(pred, target))
		if score < 0 {
			score = 0
		}
	}
	return score
}

// scoreModulePair scores the target's module key/args pair against the
// prediction's module.
func (a *AnsibleAware) scoreModulePair(pTask *ansible.Task, pErr error, pred *yaml.Node, targetFQCN string, targetArgs *yaml.Node) float64 {
	// Exact module key present in prediction.
	if pv := pred.Get(targetFQCN); pv != nil {
		return (1 + a.scoreValue(pv, targetArgs)) / 2
	}
	// Equivalent module: partial key credit averaged with argument score.
	if pErr == nil && pTask.ModuleKey != "" && a.reg.Equivalent(pTask.FQCN, targetFQCN) {
		argScore := a.scoreValue(pTask.Args, targetArgs)
		return (a.EquivalentModuleCredit + argScore) / 2
	}
	return 0
}

// insertedKeys counts prediction top-level keys absent from the target
// (excluding name), for the optional insertion penalty extension.
func (a *AnsibleAware) insertedKeys(pred, target *yaml.Node) int {
	n := 0
	for _, k := range pred.Keys {
		if k.Value == "name" {
			continue
		}
		if !target.Has(k.Value) {
			n++
		}
	}
	return n
}

// scoreValue recursively scores two value nodes.
func (a *AnsibleAware) scoreValue(pred, target *yaml.Node) float64 {
	if target == nil || target.IsNull() {
		if pred == nil || pred.IsNull() {
			return 1
		}
		return 0
	}
	if pred == nil {
		return 0
	}
	switch target.Kind {
	case yaml.ScalarNode:
		if pred.Kind != yaml.ScalarNode {
			return 0
		}
		if scalarEqual(pred, target) {
			return 1
		}
		return 0
	case yaml.SequenceNode:
		if pred.Kind != yaml.SequenceNode {
			// A scalar is promoted to a single-item list by Ansible.
			if pred.Kind == yaml.ScalarNode && len(target.Items) == 1 {
				return a.scoreValue(pred, target.Items[0])
			}
			return 0
		}
		if len(target.Items) == 0 {
			if len(pred.Items) == 0 {
				return 1
			}
			return 0
		}
		sum := 0.0
		for i, tv := range target.Items {
			if i < len(pred.Items) {
				sum += a.scoreValue(pred.Items[i], tv)
			}
		}
		return sum / float64(len(target.Items))
	case yaml.MappingNode:
		if pred.Kind != yaml.MappingNode {
			return 0
		}
		if len(target.Keys) == 0 {
			if len(pred.Keys) == 0 {
				return 1
			}
			return 0
		}
		sum := 0.0
		count := 0
		for i, k := range target.Keys {
			count++
			pv := pred.Get(k.Value)
			if pv == nil {
				continue
			}
			sum += (1 + a.scoreValue(pv, target.Values[i])) / 2
		}
		return sum / float64(count)
	}
	return 0
}

// scalarEqual compares scalars by resolved value: booleans compare by truth
// value (yes == true), numbers by numeric value, strings by text.
func scalarEqual(a, b *yaml.Node) bool {
	if a.Tag == b.Tag {
		switch a.Tag {
		case yaml.BoolTag:
			av, _ := a.Bool()
			bv, _ := b.Bool()
			return av == bv
		case yaml.IntTag:
			av, aok := a.Int()
			bv, bok := b.Int()
			return aok && bok && av == bv
		case yaml.FloatTag:
			av, aok := a.Float()
			bv, bok := b.Float()
			return aok && bok && av == bv
		case yaml.NullTag:
			return true
		default:
			return a.Value == b.Value
		}
	}
	// Cross-tag: compare by raw text (e.g. '0644' string vs 0644 int is
	// still a meaningful match in Ansible usage like file modes).
	return a.Value == b.Value
}

func isTaskSectionKey(key string) bool {
	switch key {
	case "tasks", "pre_tasks", "post_tasks", "handlers":
		return true
	}
	return false
}
