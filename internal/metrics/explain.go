package metrics

import (
	"fmt"
	"sort"
	"strings"

	"wisdom/internal/ansible"
	"wisdom/internal/yaml"
)

// EditKind classifies one correction a user would have to make.
type EditKind int

const (
	// EditMissing marks a key the prediction lacks.
	EditMissing EditKind = iota
	// EditWrongValue marks a key whose value differs from the target.
	EditWrongValue
	// EditWrongModule marks a module substitution (equivalent or not).
	EditWrongModule
	// EditInserted marks a key the prediction added (not scored by the
	// paper's metric, but part of the user's view).
	EditInserted
)

// String returns the edit-kind label.
func (k EditKind) String() string {
	switch k {
	case EditMissing:
		return "missing"
	case EditWrongValue:
		return "wrong-value"
	case EditWrongModule:
		return "wrong-module"
	case EditInserted:
		return "inserted"
	}
	return fmt.Sprintf("edit(%d)", int(k))
}

// Edit is one correction: where, what kind, and the two sides.
type Edit struct {
	Path string
	Kind EditKind
	// Got is the predicted fragment (empty for missing keys).
	Got string
	// Want is the target fragment (empty for insertions).
	Want string
}

// Explanation carries the Ansible Aware score together with the edits that
// explain it — the "how many changes must be made to correct it" view the
// paper motivates the metric with.
type Explanation struct {
	Score float64
	Edits []Edit
}

// String renders the explanation as a short report.
func (e Explanation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ansible aware %.2f, %d edits\n", 100*e.Score, len(e.Edits))
	for _, ed := range e.Edits {
		switch ed.Kind {
		case EditMissing:
			fmt.Fprintf(&sb, "  %-12s %s (want %s)\n", ed.Kind, ed.Path, ed.Want)
		case EditInserted:
			fmt.Fprintf(&sb, "  %-12s %s (got %s)\n", ed.Kind, ed.Path, ed.Got)
		default:
			fmt.Fprintf(&sb, "  %-12s %s (got %s, want %s)\n", ed.Kind, ed.Path, ed.Got, ed.Want)
		}
	}
	return sb.String()
}

// Explain scores a predicted task against a target task (both single task
// mappings as YAML text) and returns the corrections behind the score.
// Unparsable predictions yield score 0 with a single whole-task edit.
func (a *AnsibleAware) Explain(pred, target string) Explanation {
	tn, err := yaml.Parse(target)
	if err != nil {
		return Explanation{}
	}
	pn, err := yaml.Parse(pred)
	if err != nil {
		return Explanation{Edits: []Edit{{Path: "$", Kind: EditWrongValue, Got: "(unparsable)", Want: "(valid YAML)"}}}
	}
	if tn.Kind == yaml.SequenceNode && len(tn.Items) == 1 {
		tn = tn.Items[0]
	}
	if pn.Kind == yaml.SequenceNode && len(pn.Items) == 1 {
		pn = pn.Items[0]
	}
	score := a.ScoreNodes(pn, tn)
	edits := a.taskEdits(pn, tn)
	return Explanation{Score: score, Edits: edits}
}

// taskEdits diffs two (normalised) task mappings into user-facing edits.
func (a *AnsibleAware) taskEdits(pred, target *yaml.Node) []Edit {
	if target == nil || target.Kind != yaml.MappingNode {
		return nil
	}
	if pred == nil || pred.Kind != yaml.MappingNode {
		return []Edit{{Path: "$", Kind: EditWrongValue, Got: "(not a task)", Want: "(task mapping)"}}
	}
	pred = ansible.NormalizeTask(pred, a.reg)
	target = ansible.NormalizeTask(target, a.reg)
	tTask, tErr := ansible.AnalyzeTask(target, a.reg)
	pTask, pErr := ansible.AnalyzeTask(pred, a.reg)

	var edits []Edit
	for i, k := range target.Keys {
		key := k.Value
		if key == "name" {
			continue
		}
		tv := target.Values[i]
		// Module key comparison with substitution awareness.
		if tErr == nil && key == tTask.FQCN {
			switch {
			case pred.Has(key):
				edits = append(edits, valueEdits(pred.Get(key), tv, "$."+key)...)
			case pErr == nil && pTask.ModuleKey != "":
				edits = append(edits, Edit{Path: "$", Kind: EditWrongModule, Got: pTask.FQCN, Want: tTask.FQCN})
				edits = append(edits, valueEdits(pTask.Args, tv, "$."+key)...)
			default:
				edits = append(edits, Edit{Path: "$." + key, Kind: EditMissing, Want: snippet(tv)})
			}
			continue
		}
		pv := pred.Get(key)
		if pv == nil {
			edits = append(edits, Edit{Path: "$." + key, Kind: EditMissing, Want: snippet(tv)})
			continue
		}
		edits = append(edits, valueEdits(pv, tv, "$."+key)...)
	}
	// Insertions (reported, though unscored by the paper's default).
	moduleKey := ""
	if pErr == nil {
		moduleKey = pTask.FQCN
	}
	targetModule := ""
	if tErr == nil {
		targetModule = tTask.FQCN
	}
	for _, k := range pred.Keys {
		key := k.Value
		if key == "name" || target.Has(key) {
			continue
		}
		if key == moduleKey && targetModule != "" {
			continue // already reported as a module substitution
		}
		edits = append(edits, Edit{Path: "$." + key, Kind: EditInserted, Got: snippet(pred.Get(key))})
	}
	sort.SliceStable(edits, func(i, j int) bool { return edits[i].Path < edits[j].Path })
	return edits
}

// valueEdits recursively diffs two value nodes.
func valueEdits(pred, target *yaml.Node, path string) []Edit {
	if target.IsNull() && pred.IsNull() {
		return nil
	}
	if pred == nil || pred.Kind != target.Kind {
		if pred != nil && pred.Kind == yaml.ScalarNode && target.Kind == yaml.SequenceNode && len(target.Items) == 1 {
			return valueEdits(pred, target.Items[0], path+"[0]")
		}
		return []Edit{{Path: path, Kind: EditWrongValue, Got: snippet(pred), Want: snippet(target)}}
	}
	switch target.Kind {
	case yaml.ScalarNode:
		if scalarEqual(pred, target) {
			return nil
		}
		return []Edit{{Path: path, Kind: EditWrongValue, Got: pred.Value, Want: target.Value}}
	case yaml.SequenceNode:
		var edits []Edit
		for i, tv := range target.Items {
			p := fmt.Sprintf("%s[%d]", path, i)
			if i >= len(pred.Items) {
				edits = append(edits, Edit{Path: p, Kind: EditMissing, Want: snippet(tv)})
				continue
			}
			edits = append(edits, valueEdits(pred.Items[i], tv, p)...)
		}
		for i := len(target.Items); i < len(pred.Items); i++ {
			edits = append(edits, Edit{Path: fmt.Sprintf("%s[%d]", path, i), Kind: EditInserted, Got: snippet(pred.Items[i])})
		}
		return edits
	case yaml.MappingNode:
		var edits []Edit
		for i, k := range target.Keys {
			p := path + "." + k.Value
			pv := pred.Get(k.Value)
			if pv == nil {
				edits = append(edits, Edit{Path: p, Kind: EditMissing, Want: snippet(target.Values[i])})
				continue
			}
			edits = append(edits, valueEdits(pv, target.Values[i], p)...)
		}
		for _, k := range pred.Keys {
			if !target.Has(k.Value) {
				edits = append(edits, Edit{Path: path + "." + k.Value, Kind: EditInserted, Got: snippet(pred.Get(k.Value))})
			}
		}
		return edits
	}
	return nil
}

// snippet renders a node compactly for edit messages.
func snippet(n *yaml.Node) string {
	if n == nil {
		return "null"
	}
	s := strings.TrimSpace(yaml.Marshal(n))
	s = strings.ReplaceAll(s, "\n", "; ")
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}
