package metrics

import (
	"strings"
	"testing"
)

func findEdit(e Explanation, kind EditKind, pathSub string) *Edit {
	for i := range e.Edits {
		if e.Edits[i].Kind == kind && strings.Contains(e.Edits[i].Path, pathSub) {
			return &e.Edits[i]
		}
	}
	return nil
}

func TestExplainIdentity(t *testing.T) {
	e := aware().Explain(refTask, refTask)
	if e.Score != 1 || len(e.Edits) != 0 {
		t.Errorf("identity explanation = %+v", e)
	}
}

func TestExplainMissingKeyword(t *testing.T) {
	pred := "ansible.builtin.apt:\n  name: nginx\n  state: present\n"
	e := aware().Explain(pred, refTask)
	if e.Score >= 1 {
		t.Errorf("score = %v", e.Score)
	}
	ed := findEdit(e, EditMissing, "become")
	if ed == nil {
		t.Fatalf("no missing-become edit: %+v", e.Edits)
	}
	if !strings.Contains(ed.Want, "true") {
		t.Errorf("want = %q", ed.Want)
	}
}

func TestExplainWrongValue(t *testing.T) {
	pred := "ansible.builtin.apt:\n  name: nginx\n  state: absent\nbecome: true\n"
	e := aware().Explain(pred, refTask)
	ed := findEdit(e, EditWrongValue, "state")
	if ed == nil {
		t.Fatalf("no wrong-value edit: %+v", e.Edits)
	}
	if ed.Got != "absent" || ed.Want != "present" {
		t.Errorf("edit = %+v", ed)
	}
}

func TestExplainModuleSubstitution(t *testing.T) {
	pred := "ansible.builtin.yum:\n  name: nginx\n  state: present\nbecome: true\n"
	e := aware().Explain(pred, refTask)
	ed := findEdit(e, EditWrongModule, "$")
	if ed == nil {
		t.Fatalf("no module edit: %+v", e.Edits)
	}
	if ed.Got != "ansible.builtin.yum" || ed.Want != "ansible.builtin.apt" {
		t.Errorf("module edit = %+v", ed)
	}
	// Arguments still compared: no spurious arg edits for identical args.
	if findEdit(e, EditWrongValue, "name") != nil {
		t.Error("identical arguments flagged")
	}
}

func TestExplainInsertion(t *testing.T) {
	pred := `ansible.builtin.apt:
  name: nginx
  state: present
become: true
register: out
`
	e := aware().Explain(pred, refTask)
	if e.Score != 1 {
		t.Errorf("insertions must not change the default score: %v", e.Score)
	}
	if findEdit(e, EditInserted, "register") == nil {
		t.Errorf("insertion not reported: %+v", e.Edits)
	}
}

func TestExplainListEdits(t *testing.T) {
	target := "ansible.builtin.user:\n  name: bob\n  groups:\n    - wheel\n    - docker\n"
	pred := "ansible.builtin.user:\n  name: bob\n  groups:\n    - wheel\n"
	e := aware().Explain(pred, target)
	if findEdit(e, EditMissing, "groups[1]") == nil {
		t.Errorf("missing list item not reported: %+v", e.Edits)
	}
}

func TestExplainUnparsable(t *testing.T) {
	e := aware().Explain("a: 'broken\n", refTask)
	if e.Score != 0 || len(e.Edits) == 0 {
		t.Errorf("unparsable explanation = %+v", e)
	}
}

func TestExplainStringRendering(t *testing.T) {
	pred := "ansible.builtin.apt:\n  name: httpd\n  state: present\n"
	e := aware().Explain(pred, refTask)
	out := e.String()
	for _, want := range []string{"ansible aware", "edits", "missing", "wrong-value"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestEditKindStrings(t *testing.T) {
	if EditMissing.String() != "missing" || EditInserted.String() != "inserted" ||
		EditWrongValue.String() != "wrong-value" || EditWrongModule.String() != "wrong-module" {
		t.Error("edit kind labels wrong")
	}
	if EditKind(9).String() == "" {
		t.Error("unknown kind empty")
	}
}
