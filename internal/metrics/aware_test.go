package metrics

import (
	"math/rand"
	"testing"

	"wisdom/internal/yaml"
)

func aware() *AnsibleAware { return NewAnsibleAware() }

const refTask = `name: Install nginx
ansible.builtin.apt:
  name: nginx
  state: present
become: true
`

func TestAwareIdentity(t *testing.T) {
	if got := aware().Score(refTask, refTask); got != 1 {
		t.Errorf("Score(x,x) = %v, want 1", got)
	}
}

func TestAwareNameIgnored(t *testing.T) {
	pred := `name: totally different description
ansible.builtin.apt:
  name: nginx
  state: present
become: true
`
	if got := aware().Score(pred, refTask); got != 1 {
		t.Errorf("different name field scored %v, want 1 (name must be ignored)", got)
	}
}

func TestAwareShortNameNormalized(t *testing.T) {
	pred := `name: Install nginx
apt:
  name: nginx
  state: present
become: true
`
	if got := aware().Score(pred, refTask); got != 1 {
		t.Errorf("short module name scored %v, want 1 (FQCN normalisation)", got)
	}
}

func TestAwareKVNormalized(t *testing.T) {
	pred := "name: x\napt: name=nginx state=present\nbecome: true\n"
	if got := aware().Score(pred, refTask); got != 1 {
		t.Errorf("k=v form scored %v, want 1", got)
	}
}

func TestAwareMissingKeyScoresZero(t *testing.T) {
	pred := `name: Install nginx
ansible.builtin.apt:
  name: nginx
  state: present
`
	// Target has 2 scorable keys (module, become); become missing -> 0.
	// Module pair perfect -> 1. Average = 0.5.
	got := aware().Score(pred, refTask)
	if got != 0.5 {
		t.Errorf("missing become scored %v, want 0.5", got)
	}
}

func TestAwareInsertionsIgnored(t *testing.T) {
	pred := `name: Install nginx
ansible.builtin.apt:
  name: nginx
  state: present
become: true
register: result
when: install_nginx
tags: web
`
	if got := aware().Score(pred, refTask); got != 1 {
		t.Errorf("inserted keys scored %v, want 1 (insertions ignored)", got)
	}
}

func TestAwareInsertionPenaltyExtension(t *testing.T) {
	a := aware()
	a.InsertionPenalty = 0.1
	pred := `ansible.builtin.apt:
  name: nginx
  state: present
become: true
register: result
`
	got := a.Score(pred, refTask)
	if got >= 1 {
		t.Errorf("insertion penalty not applied: %v", got)
	}
	if got < 0.85 {
		t.Errorf("penalty too harsh: %v", got)
	}
}

func TestAwareWrongParamValue(t *testing.T) {
	pred := `ansible.builtin.apt:
  name: nginx
  state: absent
become: true
`
	got := aware().Score(pred, refTask)
	// Module key exact (1); args: name pair=(1+1)/2=1, state pair=(1+0)/2=0.5
	// -> args=(1+0.5)/2=0.75; module pair=(1+0.75)/2=0.875; become=1.
	want := (0.875 + 1) / 2
	if !close(got, want) {
		t.Errorf("wrong state scored %v, want %v", got, want)
	}
}

func TestAwareEquivalentModulePartialCredit(t *testing.T) {
	pred := `ansible.builtin.yum:
  name: nginx
  state: present
become: true
`
	got := aware().Score(pred, refTask)
	// Module pair: (0.5 + args 1)/2 = 0.75; become 1 -> 0.875.
	if !close(got, 0.875) {
		t.Errorf("yum-for-apt scored %v, want 0.875", got)
	}
	// An unrelated module must score 0 on the module pair.
	pred2 := `ansible.builtin.service:
  name: nginx
  state: present
become: true
`
	got2 := aware().Score(pred2, refTask)
	if !close(got2, 0.5) {
		t.Errorf("service-for-apt scored %v, want 0.5", got2)
	}
	if got <= got2 {
		t.Error("equivalent module should beat unrelated module")
	}
}

func TestAwareCommandShellEquivalence(t *testing.T) {
	target := "name: run\nansible.builtin.command: /bin/cleanup\n"
	pred := "name: run\nansible.builtin.shell: /bin/cleanup\n"
	got := aware().Score(pred, target)
	// One scorable pair: (0.5 + 1)/2 = 0.75.
	if !close(got, 0.75) {
		t.Errorf("shell-for-command scored %v, want 0.75", got)
	}
}

func TestAwareListValues(t *testing.T) {
	target := `ansible.builtin.user:
  name: bob
  groups:
    - wheel
    - docker
`
	predHalf := `ansible.builtin.user:
  name: bob
  groups:
    - wheel
    - audio
`
	full := aware().Score(target, target)
	half := aware().Score(predHalf, target)
	if full != 1 {
		t.Errorf("identity = %v", full)
	}
	// groups value = (1+0)/2 = 0.5; groups pair = (1+0.5)/2 = 0.75;
	// name pair = 1; args = 0.875; module pair = (1+0.875)/2 = 0.9375.
	if !close(half, 0.9375) {
		t.Errorf("half-list scored %v, want 0.9375", half)
	}
}

func TestAwareScalarListPromotion(t *testing.T) {
	target := "ansible.builtin.apt:\n  name:\n    - nginx\n  state: present\n"
	pred := "ansible.builtin.apt:\n  name: nginx\n  state: present\n"
	if got := aware().Score(pred, target); got != 1 {
		t.Errorf("scalar-for-single-item-list scored %v, want 1", got)
	}
}

func TestAwareBoolAliases(t *testing.T) {
	target := "ansible.builtin.apt:\n  name: x\n  update_cache: true\n"
	pred := "ansible.builtin.apt:\n  name: x\n  update_cache: yes\n"
	if got := aware().Score(pred, target); got != 1 {
		t.Errorf("yes-for-true scored %v, want 1", got)
	}
}

func TestAwareTaskList(t *testing.T) {
	target := `- name: a
  ansible.builtin.yum:
    name: httpd
    state: latest
- name: b
  ansible.builtin.template:
    src: /srv/httpd.j2
    dest: /etc/httpd.conf
`
	if got := aware().Score(target, target); got != 1 {
		t.Errorf("task list identity = %v", got)
	}
	// Only the first task predicted: second contributes 0.
	predOne := `- name: a
  ansible.builtin.yum:
    name: httpd
    state: latest
`
	if got := aware().Score(predOne, target); !close(got, 0.5) {
		t.Errorf("half task list = %v, want 0.5", got)
	}
}

func TestAwarePlaybook(t *testing.T) {
	target := `- hosts: all
  gather_facts: false
  tasks:
    - name: get facts
      vyos.vyos.vyos_facts:
        gather_subset: all
`
	if got := aware().Score(target, target); got != 1 {
		t.Errorf("playbook identity = %v", got)
	}
	predWrongHosts := `- hosts: servers
  gather_facts: false
  tasks:
    - name: get facts
      vyos.vyos.vyos_facts:
        gather_subset: all
`
	got := aware().Score(predWrongHosts, target)
	// hosts pair = (1+0)/2 = 0.5, others 1 -> (0.5+1+1)/3.
	if !close(got, (0.5+2)/3) {
		t.Errorf("wrong hosts = %v, want %v", got, (0.5+2)/3)
	}
}

func TestAwareUnparsablePrediction(t *testing.T) {
	if got := aware().Score("a: 'unterminated\n", refTask); got != 0 {
		t.Errorf("unparsable prediction scored %v", got)
	}
}

func TestAwareBounds(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	snippets := []string{
		refTask,
		"- a\n- b\n",
		"ansible.builtin.debug:\n  msg: hi\n",
		"x: 1\n",
		"- hosts: all\n  tasks:\n    - ansible.builtin.setup:\n",
		"[]\n",
		"just text\n",
	}
	for i := 0; i < 200; i++ {
		p := snippets[r.Intn(len(snippets))]
		q := snippets[r.Intn(len(snippets))]
		got := aware().Score(p, q)
		if got < 0 || got > 1 {
			t.Fatalf("Score(%q,%q) = %v out of [0,1]", p, q, got)
		}
	}
}

func TestAwareReflexiveOnGenerated(t *testing.T) {
	// Any structurally valid task must score 1 against itself.
	srcs := []string{
		"name: x\nansible.builtin.file:\n  path: /tmp/a\n  state: touch\nwhen: cond\n",
		"block:\n  - ansible.builtin.debug:\n      msg: in block\nrescue:\n  - ansible.builtin.debug:\n      msg: rescued\n",
		"ansible.builtin.set_fact:\n  my_var: 42\n",
	}
	for _, s := range srcs {
		if got := aware().Score(s, s); got != 1 {
			t.Errorf("Score(x,x) = %v for %q", got, s)
		}
	}
}

func TestEvaluatorAggregate(t *testing.T) {
	e := NewEvaluator()
	refs := []string{
		"- name: a\n  ansible.builtin.yum:\n    name: httpd\n    state: latest\n",
		"- name: b\n  ansible.builtin.service:\n    name: httpd\n    state: started\n",
	}
	preds := []string{
		refs[0],                     // perfect
		"not: valid ansible task\n", // mapping but not a task
	}
	r := e.Evaluate(preds, refs)
	if r.Count != 2 {
		t.Fatalf("count = %d", r.Count)
	}
	if r.ExactMatch != 50 {
		t.Errorf("EM = %v, want 50", r.ExactMatch)
	}
	if r.SchemaCorrect != 50 {
		t.Errorf("SchemaCorrect = %v, want 50", r.SchemaCorrect)
	}
	if r.AnsibleAware <= 40 || r.AnsibleAware > 60 {
		t.Errorf("AnsibleAware = %v, want ~50", r.AnsibleAware)
	}
	if r.BLEU <= 0 || r.BLEU >= 100 {
		t.Errorf("BLEU = %v", r.BLEU)
	}
}

func TestEvaluatorSchemaCorrectIndependentOfRef(t *testing.T) {
	e := NewEvaluator()
	// Valid schema but nothing like the (irrelevant) reference.
	pred := "- name: z\n  ansible.builtin.reboot:\n    msg: bye\n"
	if !e.SchemaCorrect(pred) {
		t.Error("valid prediction rejected")
	}
	if e.SchemaCorrect("*bogus\n") {
		t.Error("garbage accepted")
	}
}

func TestScoreNodesDirect(t *testing.T) {
	tn, err := yaml.Parse(refTask)
	if err != nil {
		t.Fatal(err)
	}
	if got := aware().ScoreNodes(tn, tn); got != 1 {
		t.Errorf("ScoreNodes identity = %v", got)
	}
	if got := aware().ScoreNodes(nil, tn); got != 0 {
		t.Errorf("nil pred = %v", got)
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestEvaluatorScoreSingle(t *testing.T) {
	e := NewEvaluator()
	schemaOK, exact, bleu, awareScore := e.Score(refTask, refTask)
	if !schemaOK || !exact || bleu < 99.9 || awareScore != 1 {
		t.Errorf("identity Score = %v %v %v %v", schemaOK, exact, bleu, awareScore)
	}
	schemaOK, exact, _, _ = e.Score("*garbage\n", refTask)
	if schemaOK || exact {
		t.Errorf("garbage Score = %v %v", schemaOK, exact)
	}
}

func TestAwareScalarCrossTag(t *testing.T) {
	// Numeric values vs quoted-string spellings: same text matches across
	// tags (file modes are the canonical case).
	target := "ansible.builtin.file:\n  path: /tmp/x\n  mode: '0755'\n"
	pred := "ansible.builtin.file:\n  path: /tmp/x\n  mode: 0755\n"
	if got := aware().Score(pred, target); got != 1 {
		t.Errorf("mode 0755 vs '0755' = %v, want 1", got)
	}
	// Float equality across spellings.
	tgt := "ansible.builtin.set_fact:\n  ratio: 0.5\n"
	prd := "ansible.builtin.set_fact:\n  ratio: 0.50\n"
	if got := aware().Score(prd, tgt); got != 1 {
		t.Errorf("0.5 vs 0.50 = %v, want 1", got)
	}
}

func TestAwareValueKindMismatches(t *testing.T) {
	// Mapping predicted where scalar expected, and vice versa: 0 value
	// score but structure survives.
	target := "ansible.builtin.set_fact:\n  key: scalar\n"
	pred := "ansible.builtin.set_fact:\n  key:\n    nested: yes\n"
	got := aware().Score(pred, target)
	if got <= 0 || got >= 1 {
		t.Errorf("kind mismatch score = %v, want strictly between 0 and 1", got)
	}
	// Empty list target vs empty list prediction.
	tgt := "ansible.builtin.set_fact:\n  xs: []\n"
	if got := aware().Score(tgt, tgt); got != 1 {
		t.Errorf("empty-list identity = %v", got)
	}
	// Null target matched by null prediction.
	tn := "ansible.builtin.setup:\n"
	if got := aware().Score(tn, tn); got != 1 {
		t.Errorf("null-args identity = %v", got)
	}
}

func TestAwareNestedDictScoring(t *testing.T) {
	target := `community.docker.docker_container:
  name: web
  env:
    A: x
    B: y
`
	predHalf := `community.docker.docker_container:
  name: web
  env:
    A: x
    B: wrong
`
	full := aware().Score(target, target)
	half := aware().Score(predHalf, target)
	if full != 1 || half >= full || half <= 0.5 {
		t.Errorf("nested dict: full=%v half=%v", full, half)
	}
}
