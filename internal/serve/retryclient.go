package serve

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wisdom/internal/observe"
	"wisdom/internal/resilience"
)

// RetryOptions configure a RetryClient. The zero value of each field
// selects the documented default.
type RetryOptions struct {
	// Retries is how many additional attempts follow a failed one
	// (default 2, i.e. 3 attempts total; 0 disables retrying).
	Retries int
	// Backoff is the base backoff before the first retry; subsequent
	// ceilings double, drawn with full jitter (default 50ms).
	Backoff time.Duration
	// MaxBackoff caps the backoff ceiling (default 1s).
	MaxBackoff time.Duration
	// AttemptTimeout bounds each attempt's round-trip I/O (default 5s;
	// < 0 disables the per-attempt deadline).
	AttemptTimeout time.Duration
	// Seed seeds the jitter source (deterministic tests).
	Seed int64
	// Breaker, when set, guards this backend: attempts are not made while
	// it is open, and every attempt outcome feeds it. Per-backend: share
	// one breaker across the clients talking to one address, not across
	// addresses.
	Breaker *resilience.Breaker
	// Wrap, when set, wraps every dialed connection (fault injection).
	Wrap func(net.Conn) net.Conn
	// Dial overrides how connections are established (tests). The default
	// dials TCP to the client's address, through Wrap.
	Dial func() (*Client, error)
	// Sleep overrides the backoff sleep (tests).
	Sleep func(context.Context, time.Duration)
}

// RetryClient wraps the single-connection RPC Client with redialing,
// bounded retries (exponential backoff, full jitter, per-attempt
// deadlines) and an optional per-backend circuit breaker. The underlying
// Client fails fast with ErrClientBroken after any mid-exchange I/O error —
// by design, because the framing state is undefined; RetryClient is the
// layer that turns that fail-fast contract back into availability, by
// discarding the broken connection and redialing on the next attempt.
//
// Retried errors are transport failures and server overload sheds; other
// server-side rejections (e.g. an unknown op) are terminal. A RetryClient
// is safe for concurrent use; round trips serialise on one connection.
type RetryClient struct {
	addr    string
	opts    RetryOptions
	retrier *resilience.Retrier

	mu     sync.Mutex
	client *Client

	retries    atomic.Uint64
	retriesMet *observe.Counter
}

// NewRetryClient builds a retrying client for addr. No connection is made
// until the first call, so constructing one against a dead backend is not
// an error — the first Predict is where dialing (and redial retrying)
// happens.
func NewRetryClient(addr string, opts RetryOptions) *RetryClient {
	if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 50 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = time.Second
	}
	switch {
	case opts.AttemptTimeout < 0:
		opts.AttemptTimeout = 0
	case opts.AttemptTimeout == 0:
		opts.AttemptTimeout = 5 * time.Second
	}
	rc := &RetryClient{addr: addr, opts: opts}
	rc.retrier = resilience.NewRetrier(resilience.RetryPolicy{
		MaxAttempts: opts.Retries + 1,
		BaseDelay:   opts.Backoff,
		MaxDelay:    opts.MaxBackoff,
		Seed:        opts.Seed,
		Retryable:   retryablePredictError,
		Sleep:       opts.Sleep,
		OnRetry: func(int, time.Duration, error) {
			rc.retries.Add(1)
			if rc.retriesMet != nil {
				rc.retriesMet.Inc()
			}
		},
	})
	return rc
}

// Instrument counts this client's retries on reg as wisdom_retries_total.
// Call before traffic starts; a nil registry is a no-op.
func (rc *RetryClient) Instrument(reg *observe.Registry) {
	if reg == nil {
		return
	}
	rc.retriesMet = reg.Counter("wisdom_retries_total",
		"RPC attempts retried after a transport failure or overload shed.")
}

// Retries returns how many attempts this client has retried.
func (rc *RetryClient) Retries() uint64 { return rc.retries.Load() }

// Breaker returns the breaker guarding this backend (nil when unset).
func (rc *RetryClient) Breaker() *resilience.Breaker { return rc.opts.Breaker }

// Predict performs one prediction, retrying per the options.
func (rc *RetryClient) Predict(req Request) (Response, error) {
	return rc.PredictContext(context.Background(), req)
}

// PredictContext is Predict bounded by ctx: no attempt starts after ctx
// ends, and backoff sleeps are cut short by it.
func (rc *RetryClient) PredictContext(ctx context.Context, req Request) (Response, error) {
	var resp Response
	err := rc.retrier.Do(ctx, func(context.Context) error {
		b := rc.opts.Breaker
		if b != nil && !b.Allow() {
			return resilience.ErrBreakerOpen
		}
		r, err := rc.attempt(req)
		if b != nil {
			b.Record(err)
		}
		if err != nil {
			return err
		}
		resp = r
		return nil
	})
	return resp, err
}

// Health performs one liveness round trip, retrying per the options.
func (rc *RetryClient) Health() (OpResponse, error) {
	var resp OpResponse
	err := rc.retrier.Do(context.Background(), func(context.Context) error {
		c, err := rc.conn()
		if err != nil {
			return err
		}
		r, err := c.Health()
		if err != nil {
			rc.drop(c)
			return &transportError{err}
		}
		resp = r
		return nil
	})
	return resp, err
}

// attempt runs one prediction attempt over the current (or a fresh)
// connection, discarding the connection on transport failure.
func (rc *RetryClient) attempt(req Request) (Response, error) {
	c, err := rc.conn()
	if err != nil {
		return Response{}, err
	}
	resp, err := c.Predict(req)
	if err != nil && c.Broken() {
		// Transport failure (I/O error, deadline, corrupt frame): this
		// connection is condemned; the next attempt dials a fresh one.
		rc.drop(c)
		return Response{}, &transportError{err}
	}
	return resp, err
}

// transportError marks an attempt failure as connection-level rather than a
// server-delivered rejection, so the retry classifier need not parse
// messages: the Broken() flag at the failure site already made the call.
type transportError struct{ err error }

// Error prefixes the underlying failure so logs show the layer that failed.
func (e *transportError) Error() string { return "serve: transport failure: " + e.err.Error() }

// Unwrap exposes the underlying error to errors.Is/As chains.
func (e *transportError) Unwrap() error { return e.err }

// conn returns the live connection, dialing one if needed.
func (rc *RetryClient) conn() (*Client, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.client != nil {
		return rc.client, nil
	}
	var c *Client
	var err error
	if rc.opts.Dial != nil {
		c, err = rc.opts.Dial()
	} else {
		c, err = DialWith(rc.addr, rc.opts.Wrap)
	}
	if err != nil {
		return nil, err
	}
	if rc.opts.AttemptTimeout > 0 {
		c.SetTimeout(rc.opts.AttemptTimeout)
	}
	rc.client = c
	return c, nil
}

// drop closes and forgets a condemned connection (only if it is still the
// current one — a concurrent caller may already have redialed).
func (rc *RetryClient) drop(c *Client) {
	rc.mu.Lock()
	if rc.client == c {
		rc.client = nil
	}
	rc.mu.Unlock()
	c.Close()
}

// Close releases the current connection, if any.
func (rc *RetryClient) Close() error {
	rc.mu.Lock()
	c := rc.client
	rc.client = nil
	rc.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}

// retryablePredictError classifies one attempt's failure: transport
// failures (including injected ones and timeouts), redial failures, an
// open breaker, and server overload sheds are transient; any other
// server-side rejection (bad request, unknown op) is terminal.
func retryablePredictError(err error) bool {
	if err == nil {
		return false
	}
	var te *transportError
	switch {
	case errors.Is(err, errStreamInterrupted):
		// A stream that failed after its first delta cannot be replayed.
		return false
	case errors.As(err, &te):
		return true
	case errors.Is(err, resilience.ErrBreakerOpen):
		return true
	case strings.HasPrefix(err.Error(), "serve: "):
		// A server-delivered rejection over a healthy connection: only
		// overload sheds are worth retrying.
		return strings.Contains(err.Error(), "overloaded")
	}
	return true // dial failure or other connection-level error
}
