package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wisdom/internal/observe"
)

// sessionEchoModel implements the full session predictor surface and records
// which path each request took and under which session id.
type sessionEchoModel struct {
	enabled bool

	mu          sync.Mutex
	sessionIDs  []string // ids seen by PredictSession/PredictStreamSession
	plainCalls  int      // Predict invocations
	batchCalls  int      // PredictBatch invocations
	streamCalls int      // PredictStream invocations
	evictions   atomic.Uint64
}

func (m *sessionEchoModel) answer(prompt string) string {
	return "- name: " + prompt + "\n  ansible.builtin.debug:\n"
}

func (m *sessionEchoModel) Predict(_, prompt string) string {
	m.mu.Lock()
	m.plainCalls++
	m.mu.Unlock()
	return m.answer(prompt)
}

func (m *sessionEchoModel) PredictBatch(_, prompts []string) []string {
	m.mu.Lock()
	m.batchCalls++
	m.mu.Unlock()
	out := make([]string, len(prompts))
	for i, p := range prompts {
		out[i] = m.answer(p)
	}
	return out
}

func (m *sessionEchoModel) PredictSession(sessionID, _, prompt string) string {
	m.mu.Lock()
	m.sessionIDs = append(m.sessionIDs, sessionID)
	m.mu.Unlock()
	return m.answer(prompt)
}

func (m *sessionEchoModel) PredictStream(_ context.Context, _, prompt string, emit func(string)) string {
	m.mu.Lock()
	m.streamCalls++
	m.mu.Unlock()
	v := m.answer(prompt)
	emit(v)
	return v
}

func (m *sessionEchoModel) PredictStreamSession(_ context.Context, sessionID, _, prompt string, emit func(string)) string {
	m.mu.Lock()
	m.sessionIDs = append(m.sessionIDs, sessionID)
	m.mu.Unlock()
	v := m.answer(prompt)
	emit(v)
	return v
}

func (m *sessionEchoModel) SessionStats() (bool, int, uint64, float64) {
	return m.enabled, 3, m.evictions.Load(), 0.5
}

func (m *sessionEchoModel) seenSessions() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.sessionIDs...)
}

// TestSessionRoutedAroundBatcher checks that a session request reaches
// PredictSession directly — bypassing the micro-batcher and singleflight,
// whose shared decodes cannot carry exclusive session state — while
// sessionless requests keep the ordinary pipeline.
func TestSessionRoutedAroundBatcher(t *testing.T) {
	model := &sessionEchoModel{enabled: true}
	s := NewServerWithOptions(model, "sess-test", Options{
		Workers:     2,
		BatchWindow: 5 * time.Millisecond,
		MaxBatch:    4,
	})
	if s.batcher == nil {
		t.Fatal("batcher not enabled")
	}
	if s.session == nil {
		t.Fatal("session routing not enabled")
	}

	resp, err := s.predict(context.Background(), Request{Prompt: "p", SessionID: "abc"}, "http")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Suggestion != model.answer("p") {
		t.Errorf("suggestion = %q", resp.Suggestion)
	}
	if got := model.seenSessions(); len(got) != 1 || got[0] != "abc" {
		t.Errorf("PredictSession saw %v, want [abc]", got)
	}
	if model.plainCalls != 0 || model.batchCalls != 0 {
		t.Errorf("session request leaked into plain/batch path: %d/%d", model.plainCalls, model.batchCalls)
	}

	if _, err := s.predict(context.Background(), Request{Prompt: "q"}, "http"); err != nil {
		t.Fatal(err)
	}
	if got := model.seenSessions(); len(got) != 1 {
		t.Errorf("sessionless request reached PredictSession: %v", got)
	}
}

// TestSessionDisabledKeepsStatelessPath checks a model reporting sessions
// disabled never receives session routing, even when the client sends an id.
func TestSessionDisabledKeepsStatelessPath(t *testing.T) {
	model := &sessionEchoModel{enabled: false}
	s := NewServerWithOptions(model, "sess-off", Options{Workers: 1})
	if s.session != nil {
		t.Fatal("session routing enabled despite disabled stats")
	}
	if _, err := s.predict(context.Background(), Request{Prompt: "p", SessionID: "abc"}, "http"); err != nil {
		t.Fatal(err)
	}
	if got := model.seenSessions(); len(got) != 0 {
		t.Errorf("PredictSession called on disabled model: %v", got)
	}
	if model.plainCalls != 1 {
		t.Errorf("plain calls = %d, want 1", model.plainCalls)
	}
}

// TestSessionHeaderHTTP checks both carriers of the session key over HTTP:
// the X-Wisdom-Session header fills an empty JSON field, and the JSON field
// wins when both are present.
func TestSessionHeaderHTTP(t *testing.T) {
	model := &sessionEchoModel{enabled: true}
	srv := NewServerWithOptions(model, "m", Options{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body []byte, header string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/completions", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if header != "" {
			req.Header.Set(SessionHeader, header)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}

	body, _ := json.Marshal(Request{Prompt: "p"})
	post(body, "from-header")
	body, _ = json.Marshal(Request{Prompt: "p2", SessionID: "from-body"})
	post(body, "ignored-header")

	want := []string{"from-header", "from-body"}
	got := model.seenSessions()
	if len(got) != len(want) {
		t.Fatalf("sessions seen = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("session %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestSessionStreamRouting checks a streamed session request reaches
// PredictStreamSession with its id, and that deltas still flow.
func TestSessionStreamRouting(t *testing.T) {
	model := &sessionEchoModel{enabled: true}
	s := NewServerWithOptions(model, "m", Options{Workers: 1})
	if s.sessionStream == nil {
		t.Fatal("session stream routing not enabled")
	}
	var got string
	resp, err := s.predictStream(context.Background(), Request{Prompt: "p", SessionID: "sid"}, "http",
		func(d string) error { got += d; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got != model.answer("p") || resp.Suggestion != got {
		t.Errorf("streamed %q, final %q", got, resp.Suggestion)
	}
	if ids := model.seenSessions(); len(ids) != 1 || ids[0] != "sid" {
		t.Errorf("PredictStreamSession saw %v", ids)
	}
	if model.streamCalls != 0 {
		t.Errorf("session stream leaked into stateless PredictStream")
	}
}

// TestSessionMetricsAndStats checks the session gauges/counters registered
// by Instrument and the session fields of /v1/stats.
func TestSessionMetricsAndStats(t *testing.T) {
	model := &sessionEchoModel{enabled: true}
	model.evictions.Store(7)
	srv := NewServerWithOptions(model, "m", Options{Workers: 1})
	reg := observe.NewRegistry()
	srv.Instrument(reg)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, buf.String())
	if got := samples["wisdom_session_active"]; got != 3 {
		t.Errorf("wisdom_session_active = %v, want 3", got)
	}
	if got := samples["wisdom_session_prefix_reuse_ratio"]; got != 0.5 {
		t.Errorf("wisdom_session_prefix_reuse_ratio = %v, want 0.5", got)
	}
	if got := samples["wisdom_session_evictions_total"]; got != 7 {
		t.Errorf("wisdom_session_evictions_total = %v, want 7", got)
	}
	if _, ok := samples["wisdom_coalesce_abandoned_total"]; !ok {
		t.Error("wisdom_coalesce_abandoned_total not registered")
	}

	st := srv.Stats()
	if !st.SessionsEnabled || st.SessionsActive != 3 || st.SessionEvictions != 7 || st.SessionReuseRatio != 0.5 {
		t.Errorf("stats session fields = %+v", st)
	}
}
