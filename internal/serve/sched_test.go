package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"wisdom/internal/observe"
)

// schedOverloadErr mimics the engine's queue-full rejection: an error that
// classifies itself Overloaded() without the serve package importing neural.
type schedOverloadErr struct{}

func (schedOverloadErr) Error() string    { return "decode engine admission queue full" }
func (schedOverloadErr) Overloaded() bool { return true }

// schedEchoModel implements the scheduled predictor surface and records
// which path each request took. failWith, when set, makes the scheduled
// paths fail before emitting anything — the engine's rejection contract.
type schedEchoModel struct {
	enabled  bool
	failWith error

	mu               sync.Mutex
	plainCalls       int
	batchCalls       int
	streamCalls      int
	schedCalls       int
	schedStreamCalls int
	queueWaitObs     func(float64)
}

func (m *schedEchoModel) answer(prompt string) string {
	return "- name: " + prompt + "\n  ansible.builtin.debug:\n"
}

func (m *schedEchoModel) Predict(_, prompt string) string {
	m.mu.Lock()
	m.plainCalls++
	m.mu.Unlock()
	return m.answer(prompt)
}

func (m *schedEchoModel) PredictBatch(_, prompts []string) []string {
	m.mu.Lock()
	m.batchCalls++
	m.mu.Unlock()
	out := make([]string, len(prompts))
	for i, p := range prompts {
		out[i] = m.answer(p)
	}
	return out
}

func (m *schedEchoModel) PredictStream(_ context.Context, _, prompt string, emit func(string)) string {
	m.mu.Lock()
	m.streamCalls++
	m.mu.Unlock()
	v := m.answer(prompt)
	emit(v)
	return v
}

func (m *schedEchoModel) PredictSched(_ context.Context, _, prompt string) (string, error) {
	m.mu.Lock()
	m.schedCalls++
	m.mu.Unlock()
	if m.failWith != nil {
		return "", m.failWith
	}
	return m.answer(prompt), nil
}

func (m *schedEchoModel) PredictStreamSched(_ context.Context, _, prompt string, emit func(string)) (string, error) {
	m.mu.Lock()
	m.schedStreamCalls++
	m.mu.Unlock()
	if m.failWith != nil {
		return "", m.failWith
	}
	v := m.answer(prompt)
	emit(v)
	return v, nil
}

func (m *schedEchoModel) SchedStats() (bool, int, int, int, uint64, uint64, uint64, uint64) {
	// active 2 of maxBatch 4, 1 queued; 320 row-steps over 100 steps of a
	// 4-slot batch = 0.8 cumulative occupancy.
	return m.enabled, 4, 2, 1, 10, 8, 100, 320
}

func (m *schedEchoModel) SetSchedQueueWaitObserver(fn func(float64)) {
	m.mu.Lock()
	m.queueWaitObs = fn
	m.mu.Unlock()
}

func (m *schedEchoModel) calls() (plain, batch, stream, sched, schedStream int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.plainCalls, m.batchCalls, m.streamCalls, m.schedCalls, m.schedStreamCalls
}

// TestSchedRoutedThroughEngine checks a server over a scheduler-enabled
// model routes unary requests through PredictSched — superseding the
// micro-batcher even when batching options are set — and still caches the
// answer.
func TestSchedRoutedThroughEngine(t *testing.T) {
	model := &schedEchoModel{enabled: true}
	s := NewServerWithOptions(model, "sched-test", Options{
		Workers:     2,
		CacheSize:   8,
		BatchWindow: 5 * time.Millisecond,
		MaxBatch:    4,
	})
	if s.sched == nil || s.schedStream == nil {
		t.Fatal("scheduler routing not enabled")
	}
	if s.batcher != nil {
		t.Fatal("micro-batcher created alongside the scheduler")
	}

	resp, err := s.predict(context.Background(), Request{Prompt: "p"}, "http")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Suggestion != model.answer("p") {
		t.Errorf("suggestion = %q", resp.Suggestion)
	}
	plain, batch, _, sched, _ := model.calls()
	if sched != 1 || plain != 0 || batch != 0 {
		t.Errorf("calls plain=%d batch=%d sched=%d, want only sched=1", plain, batch, sched)
	}

	// The answer must have landed in the cache: a repeat is a cache hit that
	// never reaches the engine.
	resp, err = s.predict(context.Background(), Request{Prompt: "p"}, "http")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("repeat request missed the cache")
	}
	if _, _, _, sched, _ = model.calls(); sched != 1 {
		t.Errorf("cached repeat reached the engine: sched=%d", sched)
	}
}

// TestSchedDisabledKeepsPipeline checks a model reporting the scheduler
// disabled keeps the ordinary pipeline, micro-batcher included.
func TestSchedDisabledKeepsPipeline(t *testing.T) {
	model := &schedEchoModel{enabled: false}
	s := NewServerWithOptions(model, "sched-off", Options{
		Workers:     1,
		BatchWindow: time.Millisecond,
		MaxBatch:    2,
	})
	if s.sched != nil {
		t.Fatal("scheduler routing enabled despite disabled stats")
	}
	if s.batcher == nil {
		t.Fatal("micro-batcher not created with the scheduler disabled")
	}
	if _, err := s.predict(context.Background(), Request{Prompt: "p"}, "http"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, sched, _ := model.calls(); sched != 0 {
		t.Errorf("PredictSched called on disabled model: %d", sched)
	}
}

// TestSchedOverloadShedsAndReleasesSlot is the pool-slot accounting
// regression: a request the engine rejects (queue full) must surface as an
// overload shed AND release its worker-pool slot — a leak here would bleed
// the pool dry under sustained overload.
func TestSchedOverloadShedsAndReleasesSlot(t *testing.T) {
	model := &schedEchoModel{enabled: true, failWith: schedOverloadErr{}}
	s := NewServerWithOptions(model, "sched-shed", Options{Workers: 1, CacheSize: 8})
	if s.sched == nil {
		t.Fatal("scheduler routing not enabled")
	}

	for i := 0; i < 5; i++ {
		_, err := s.predict(context.Background(), Request{Prompt: "p"}, "http")
		if err == nil {
			t.Fatal("rejected request returned no error")
		}
		var ov interface{ Overloaded() bool }
		if !errors.As(err, &ov) || !ov.Overloaded() {
			t.Fatalf("error %v does not classify as Overloaded", err)
		}
		if got := shedReason(err); got != "overloaded" {
			t.Fatalf("shedReason = %q, want overloaded", got)
		}
	}
	if got := s.pool.Active(); got != 0 {
		t.Fatalf("pool.Active = %d after sheds, want 0 (slot leak)", got)
	}

	// Normal completions release their slot too.
	model.failWith = nil
	if _, err := s.predict(context.Background(), Request{Prompt: "q"}, "http"); err != nil {
		t.Fatal(err)
	}
	if got := s.pool.Active(); got != 0 {
		t.Fatalf("pool.Active = %d after completion, want 0", got)
	}
}

// TestSchedStreamRouting checks streamed requests decode through
// PredictStreamSched with deltas flowing, and that an engine rejection
// surfaces as a clean pre-byte shed.
func TestSchedStreamRouting(t *testing.T) {
	model := &schedEchoModel{enabled: true}
	s := NewServerWithOptions(model, "m", Options{Workers: 1})
	if s.schedStream == nil {
		t.Fatal("scheduler stream routing not enabled")
	}
	var got string
	resp, err := s.predictStream(context.Background(), Request{Prompt: "p"}, "http",
		func(d string) error { got += d; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got != model.answer("p") || resp.Suggestion != got {
		t.Errorf("streamed %q, final %q", got, resp.Suggestion)
	}
	if _, _, stream, _, schedStream := model.calls(); schedStream != 1 || stream != 0 {
		t.Errorf("stream calls stateless=%d sched=%d, want only sched=1", stream, schedStream)
	}

	// A rejection must emit nothing and release the pool slot.
	model.failWith = schedOverloadErr{}
	got = ""
	_, err = s.predictStream(context.Background(), Request{Prompt: "p2"}, "http",
		func(d string) error { got += d; return nil })
	if err == nil {
		t.Fatal("rejected stream returned no error")
	}
	if got != "" {
		t.Errorf("rejected stream emitted %q, want nothing", got)
	}
	if active := s.pool.Active(); active != 0 {
		t.Errorf("pool.Active = %d after shed stream, want 0", active)
	}
}

// TestSchedMetricsAndStats checks the scheduler gauges/counters registered
// by Instrument (including the queue-wait histogram hook) and the sched
// fields of /v1/stats.
func TestSchedMetricsAndStats(t *testing.T) {
	model := &schedEchoModel{enabled: true}
	srv := NewServerWithOptions(model, "m", Options{Workers: 1})
	reg := observe.NewRegistry()
	srv.Instrument(reg)

	if model.queueWaitObs == nil {
		t.Fatal("queue-wait observer not wired by Instrument")
	}
	model.queueWaitObs(0.25) // one histogram sample

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, buf.String())
	if got := samples["wisdom_sched_batch_occupancy"]; got != 0.5 {
		t.Errorf("wisdom_sched_batch_occupancy = %v, want 0.5 (2 of 4 slots)", got)
	}
	if got := samples["wisdom_sched_queue_depth"]; got != 1 {
		t.Errorf("wisdom_sched_queue_depth = %v, want 1", got)
	}
	if got := samples["wisdom_sched_admitted_total"]; got != 10 {
		t.Errorf("wisdom_sched_admitted_total = %v, want 10", got)
	}
	if got := samples["wisdom_sched_retired_total"]; got != 8 {
		t.Errorf("wisdom_sched_retired_total = %v, want 8", got)
	}
	if got := samples["wisdom_sched_queue_wait_seconds_count"]; got != 1 {
		t.Errorf("wisdom_sched_queue_wait_seconds_count = %v, want 1", got)
	}

	st := srv.Stats()
	if !st.SchedEnabled || st.SchedMaxBatch != 4 || st.SchedActive != 2 || st.SchedQueued != 1 {
		t.Errorf("stats sched shape fields = %+v", st)
	}
	if st.SchedAdmitted != 10 || st.SchedRetired != 8 {
		t.Errorf("stats sched counters = %+v", st)
	}
	if st.SchedOccupancy != 0.8 {
		t.Errorf("SchedOccupancy = %v, want 0.8 (320 row-steps / 100 steps * 4 slots)", st.SchedOccupancy)
	}
}
