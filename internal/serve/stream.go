// Streaming serving path: the SSE endpoint, the streamed RPC frame variant,
// and the client side of both. See docs/PROTOCOL.md for the wire format.
//
// A stream bypasses the singleflight group and the micro-batcher — each
// stream is an interactive session whose deltas belong to exactly one
// client — but still consults the response cache (a hit streams as a single
// delta) and still admits through the worker pool, BEFORE the first byte is
// written, so overload sheds a stream as a clean HTTP 503 / error frame
// rather than a torn half-stream.

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"wisdom/internal/resilience"
)

// StreamingPredictor is implemented by predictors that can emit an answer
// incrementally (*wisdom.Model, *wisdom.Chain). PredictStream must call
// emit with in-order text deltas whose concatenation is, in the normal
// case, exactly the returned answer; when late post-processing rewrites the
// answer, the return value is authoritative and the server flags the
// response "replaced" so clients re-render. Cancelling ctx must stop the
// underlying generation.
type StreamingPredictor interface {
	Predictor
	PredictStream(ctx context.Context, context, prompt string, emit func(delta string)) string
}

// StreamingDegradingPredictor is the streaming face of a degradation chain
// (*wisdom.Chain): PredictStreamDegraded additionally reports whether the
// streamed answer came from a fallback tier, which the server surfaces on
// the terminal frame exactly like the unary "degraded" flag.
type StreamingDegradingPredictor interface {
	StreamingPredictor
	PredictStreamDegraded(ctx context.Context, context, prompt string, emit func(delta string)) (suggestion string, degraded bool)
}

// RoutingStreamingPredictor is the streaming face of a routing predictor
// (*router.Router): PredictStreamRoute follows PredictStream's emission
// contract while forwarding the stream from a backend replica. An error
// before any delta has been emitted (every candidate backend dead,
// breaker-open or shedding) lets the server shed the stream cleanly; an
// error after the first delta is a mid-stream interruption the server
// surfaces as a terminal error event — never a silent truncation and never
// a replay that would duplicate already-rendered output.
type RoutingStreamingPredictor interface {
	RoutingPredictor
	PredictStreamRoute(ctx context.Context, req Request, emit func(delta string)) (Response, error)
}

// OpStream is the Request.Op selecting a streamed prediction over RPC: the
// server answers with a sequence of StreamFrame frames instead of one
// Response frame.
const OpStream = "stream"

// StreamFrame frame types.
const (
	// StreamDelta carries one incremental text delta.
	StreamDelta = "delta"
	// StreamDone terminates a successful stream; Final holds the full
	// response metadata, including the authoritative complete suggestion.
	StreamDone = "done"
	// StreamError terminates a failed stream (e.g. shed under overload);
	// the connection remains healthy and framed.
	StreamError = "error"
)

// StreamFrame is one frame of a streamed RPC response. A streamed exchange
// is one request frame followed by zero or more "delta" frames and exactly
// one terminal frame ("done" or "error"), all length-prefixed JSON like
// every other frame (see docs/PROTOCOL.md).
type StreamFrame struct {
	// Type is StreamDelta, StreamDone or StreamError.
	Type string `json:"type"`
	// Seq is the 0-based ordinal of this frame within its stream; clients
	// verify it to detect dropped or reordered frames.
	Seq int `json:"seq"`
	// Delta is the incremental text (Type == StreamDelta).
	Delta string `json:"delta,omitempty"`
	// Final is the full response metadata (Type == StreamDone).
	Final *Response `json:"final,omitempty"`
	// Error describes the failure (Type == StreamError).
	Error string `json:"error,omitempty"`
}

// sseDelta is the JSON payload of an SSE "delta" event.
type sseDelta struct {
	Text string `json:"text"`
}

// errStreamCancelled marks a stream whose client went away before the
// terminal frame; the decode loop has been cancelled and the pool slot
// freed.
var errStreamCancelled = errors.New("serve: stream cancelled by client disconnect")

// errStreamInterrupted marks a RetryClient stream that failed after deltas
// had already reached the caller. It is never retried: replaying the stream
// would duplicate output the caller has already rendered.
var errStreamInterrupted = errors.New("serve: stream interrupted mid-flight")

// interruptedStreamError classifies a mid-stream failure as terminal. The
// cause is folded in with %v, not %w, so a transportError inside cannot
// re-qualify the attempt as retryable.
func interruptedStreamError(cause error) error {
	return fmt.Errorf("%w: %v", errStreamInterrupted, cause)
}

// predictStream answers one request as a stream of deltas pushed through
// send, returning the terminal response. The contract with callers:
//
//   - A non-nil error with no delta sent means the request was shed (or
//     malformed) before the first byte — the caller can still answer with
//     a clean protocol-level rejection.
//   - send failures and ctx cancellation cancel the decode loop (freeing
//     the worker slot) and surface as errStreamCancelled.
//   - On success, the returned Response carries the authoritative full
//     suggestion; Replaced reports that it differs from the concatenated
//     deltas (late post-processing rewrote the answer) and the client
//     should re-render from Suggestion.
//
// The admission deadline bounds the wait for a worker slot only — a live
// stream is bounded by the client's patience (ctx), not the unary request
// timeout.
func (s *Server) predictStream(ctx context.Context, req Request, proto string, send func(delta string) error) (Response, error) {
	start := time.Now()
	s.activeStreams.Add(1)
	defer s.activeStreams.Add(-1)
	m := s.met
	if m != nil {
		m.streamRequestsFor(proto).Inc()
	}
	cancelled := func(err error) (Response, error) {
		s.cancelledStreams.Add(1)
		if m != nil {
			m.streamCancelledFor(proto).Inc()
		}
		s.countError(proto, "stream_cancelled")
		return Response{}, errors.Join(errStreamCancelled, err)
	}
	finishOK := func(resp Response) Response {
		s.requests.Add(1)
		resp.LatencyMS = ms(start)
		resp.Model = s.modelName
		if m != nil {
			elapsed := time.Since(start).Seconds()
			m.requestsFor(proto).Inc()
			m.durationFor(proto).Observe(elapsed)
			m.servedTokens.Add(len(strings.Fields(resp.Suggestion)))
			if resp.Degraded {
				m.degradedTotal.Inc()
			}
			if resp.Cached {
				m.cachedTotal.Inc()
			}
		}
		return resp
	}

	// Predictors without a streaming path answer through the full unary
	// pipeline (cache, singleflight, batcher, pool) and stream as a single
	// delta; sheds still happen before any byte is written.
	if s.stream == nil && s.routeStream == nil {
		resp, err := s.predict(ctx, req, proto)
		if err != nil {
			return Response{}, err
		}
		if m != nil {
			m.streamTTFT.Observe(time.Since(start).Seconds())
		}
		if resp.Suggestion != "" {
			if err := send(resp.Suggestion); err != nil {
				return cancelled(err)
			}
		}
		return resp, nil
	}

	// Cache hit: the whole answer is one delta, and time-to-first-token is
	// one cache lookup.
	key := req.Context + "\x00" + req.Prompt
	if s.cache != nil {
		if v, ok := s.cache.Get(key); ok {
			if m != nil {
				m.streamTTFT.Observe(time.Since(start).Seconds())
			}
			if v != "" {
				if err := send(v); err != nil {
					return cancelled(err)
				}
			}
			return finishOK(Response{Suggestion: v, Cached: true}), nil
		}
	}

	// Admission, bounded by the queue deadline. This happens before the
	// first byte leaves the server: a shed stream is indistinguishable on
	// the wire from a shed unary request.
	actx := ctx
	if s.reqTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, s.reqTimeout)
		defer cancel()
	}
	if s.pool != nil {
		if err := s.pool.Acquire(actx); err != nil {
			if m != nil {
				m.shedFor(proto).Inc()
			}
			s.countError(proto, shedReason(err))
			return Response{}, err
		}
		defer s.pool.Release()
	}

	// The generation context: client disconnect (ctx) or a failed delta
	// write cancels it, and the neural decode loop checks it per token, so
	// an abandoned stream stops burning its pool slot within one step.
	gctx, cancelGen := context.WithCancel(ctx)
	defer cancelGen()
	var sent strings.Builder
	var sendErr error
	first := true
	emit := func(d string) {
		// Empty deltas are suppressed: docs/PROTOCOL.md promises every
		// delta frame carries text (an empty suggestion streams as a bare
		// terminal frame).
		if d == "" || sendErr != nil {
			return
		}
		if first {
			first = false
			if m != nil {
				m.streamTTFT.Observe(time.Since(start).Seconds())
			}
		}
		if err := send(d); err != nil {
			sendErr = err
			cancelGen()
			return
		}
		sent.WriteString(d)
	}

	var final string
	var degraded bool
	switch {
	case s.routeStream != nil:
		// Routed streams forward from a backend replica's stream. A failure
		// before the first delta (no live backend, breaker-open, backend
		// shed) is a clean protocol-level rejection; after the first delta
		// it is a mid-stream interruption surfaced as a terminal error —
		// spillover never replays a started stream.
		rresp, err := s.routeStream.PredictStreamRoute(gctx, req, emit)
		if err != nil {
			if sendErr != nil {
				return cancelled(sendErr)
			}
			if first {
				if m != nil {
					m.shedFor(proto).Inc()
				}
				s.countError(proto, shedReason(err))
			} else {
				s.countError(proto, "stream_interrupted")
			}
			return Response{}, err
		}
		final, degraded = rresp.Suggestion, rresp.Degraded
	case req.SessionID != "" && s.sessionStream != nil:
		// Session streams reuse the session's retained prefix KV state —
		// time-to-first-body-delta shrinks to the changed suffix. Streams
		// already bypass singleflight and the batcher, which is exactly the
		// isolation exclusive session state needs.
		if req.SessionReset && s.sessionReset != nil {
			s.sessionReset.ResetSession(req.SessionID)
		}
		final = s.sessionStream.PredictStreamSession(gctx, req.SessionID, req.Context, req.Prompt, emit)
	case s.schedStream != nil:
		// Scheduled streams decode through the continuous-batching engine:
		// the stream joins the shared step batch at the next boundary. The
		// engine errors only before the first delta (admission queue full or
		// engine closed), so a rejection here sheds as cleanly as a pool
		// rejection — no byte has left the server.
		var err error
		final, err = s.schedStream.PredictStreamSched(gctx, req.Context, req.Prompt, emit)
		if err != nil {
			if m != nil {
				m.shedFor(proto).Inc()
			}
			s.countError(proto, shedReason(err))
			return Response{}, err
		}
	default:
		final = s.stream.PredictStream(gctx, req.Context, req.Prompt, emit)
	}

	if sendErr != nil {
		return cancelled(sendErr)
	}
	if err := ctx.Err(); err != nil {
		return cancelled(err)
	}

	// Degraded answers stay out of the cache, same as the unary path.
	if s.cache != nil && !degraded {
		s.cache.Put(key, final)
	}
	return finishOK(Response{
		Suggestion: final,
		Degraded:   degraded,
		Replaced:   sent.String() != final,
	}), nil
}

// ---- SSE (chunked HTTP) ----

// handleStreamHTTP serves POST /v1/completions/stream as a Server-Sent
// Events stream:
//
//	event: delta        data: {"text": "<incremental text>"}
//	event: done         data: <Response JSON>     (terminal, success)
//	event: error        data: {"error": "<message>"}  (terminal, failure)
//
// Requests shed under overload are rejected with a plain HTTP 503 plus
// Retry-After before any SSE byte is written; once the stream has started,
// failures are delivered as a well-formed "error" event instead.
func (s *Server) handleStreamHTTP(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeHTTPRequest(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.countError("http", "streaming_unsupported")
		http.Error(w, `{"error":"streaming unsupported by this connection"}`, http.StatusInternalServerError)
		return
	}

	started := false
	sendEvent := func(event string, payload any) error {
		if !started {
			started = true
			h := w.Header()
			h.Set("Content-Type", "text/event-stream")
			h.Set("Cache-Control", "no-cache")
			h.Set("Connection", "keep-alive")
			w.WriteHeader(http.StatusOK)
		}
		data, err := json.Marshal(payload)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return err
		}
		flusher.Flush()
		return nil
	}

	resp, err := s.predictStream(r.Context(), req, "http", func(d string) error {
		return sendEvent(StreamDelta, sseDelta{Text: d})
	})
	switch {
	case err == nil:
		_ = sendEvent(StreamDone, resp)
	case !started:
		// Shed (or otherwise failed) before the first byte: a clean
		// protocol-level rejection, never a torn SSE response.
		w.Header().Set("Retry-After", s.retryAfter())
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusServiceUnavailable)
	default:
		// Mid-stream failure (usually the client is already gone); a
		// well-formed terminal event for anyone still listening.
		_ = sendEvent(StreamError, map[string]string{"error": err.Error()})
	}
}

// decodeHTTPRequest parses one prediction request body, answering the
// protocol-level rejections (size cap, malformed JSON, empty prompt)
// itself. ok is false when a rejection has been written.
func (s *Server) decodeHTTPRequest(w http.ResponseWriter, r *http.Request) (Request, bool) {
	if r.Method != http.MethodPost {
		s.countError("http", "method_not_allowed")
		http.Error(w, `{"error":"method not allowed"}`, http.StatusMethodNotAllowed)
		return Request{}, false
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.countError("http", "body_too_large")
			http.Error(w, fmt.Sprintf(`{"error":"request body exceeds %d bytes"}`, tooLarge.Limit),
				http.StatusRequestEntityTooLarge)
			return Request{}, false
		}
		s.countError("http", "bad_json")
		http.Error(w, fmt.Sprintf(`{"error":%q}`, "bad request: "+err.Error()), http.StatusBadRequest)
		return Request{}, false
	}
	if strings.TrimSpace(req.Prompt) == "" {
		s.countError("http", "empty_prompt")
		http.Error(w, `{"error":"prompt is required"}`, http.StatusBadRequest)
		return Request{}, false
	}
	// The session key travels either in the body or as a header; the header
	// lets thin clients (curl, editor plugins reusing one request template)
	// pin a session without touching the JSON payload.
	if req.SessionID == "" {
		req.SessionID = r.Header.Get(SessionHeader)
	}
	return req, true
}

// SessionHeader is the HTTP header naming the request's decode session; the
// JSON body's session_id field wins when both are set.
const SessionHeader = "X-Wisdom-Session"

// ---- streamed RPC ----

// streamWatchInterval is how often the RPC stream watchdog wakes to check
// whether the stream has finished; it bounds both disconnect-detection
// latency and the hand-back delay before the connection's next exchange.
const streamWatchInterval = 50 * time.Millisecond

// serveStreamRPC answers one OpStream request on the persistent connection:
// delta frames as the generation produces text, then one terminal frame. A
// write failure (client gone) cancels the decode loop and condemns the
// connection; a shed stream is a single well-formed StreamError frame on a
// connection that stays healthy.
//
// Because the protocol forbids the client from sending anything between its
// request frame and the server's terminal frame, a watchdog goroutine reads
// the connection during the stream: any read result — data (a protocol
// violation) or an error (the client hung up) — cancels the decode loop, so
// a silently dropped client frees its worker slot even during a long gap
// between deltas, not just at the next failed write.
func (s *Server) serveStreamRPC(conn net.Conn, req Request) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	watchDone := make(chan struct{})
	watchExited := make(chan struct{})
	condemned := false // set only by the watchdog, read only after it exits
	go func() {
		defer close(watchExited)
		buf := make([]byte, 1)
		for {
			conn.SetReadDeadline(time.Now().Add(streamWatchInterval))
			_, err := conn.Read(buf)
			if err == nil {
				// Client data mid-stream: the framing contract is broken.
				condemned = true
				cancel()
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				select {
				case <-watchDone:
					conn.SetReadDeadline(time.Time{})
					return
				default:
					continue
				}
			}
			condemned = true // disconnect or transport failure
			cancel()
			return
		}
	}()
	// stopWatch hands the connection back to the frame loop: no terminal
	// frame is written (and no next frame read) until the watchdog has
	// stopped touching the connection.
	stopWatch := func() {
		close(watchDone)
		<-watchExited
	}

	seq := 0
	var writeErr error
	sendFrame := func(fr StreamFrame) error {
		fr.Seq = seq
		seq++
		if err := writeFrame(conn, fr); err != nil {
			writeErr = err
			return err
		}
		return nil
	}

	resp, err := s.predictStream(ctx, req, "rpc", func(d string) error {
		return sendFrame(StreamFrame{Type: StreamDelta, Delta: d})
	})
	stopWatch()
	if writeErr != nil || condemned {
		if writeErr != nil {
			return writeErr // transport gone; drop the connection
		}
		return errStreamCancelled
	}
	if err != nil {
		return sendFrame(StreamFrame{Type: StreamError, Error: err.Error()})
	}
	return sendFrame(StreamFrame{Type: StreamDone, Final: &resp})
}

// PredictStream performs one streamed prediction exchange: emit receives
// each delta as its frame arrives, and the returned Response is the
// terminal frame's authoritative metadata (check Replaced before trusting
// the concatenated deltas). A server-delivered StreamError (e.g. overload
// shed) is returned as an error with the connection still healthy; any
// transport or framing failure mid-stream breaks the client as usual.
func (c *Client) PredictStream(req Request, emit func(delta string)) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return Response{}, ErrClientBroken
	}
	req.Op = OpStream
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	if err := writeFrame(c.conn, req); err != nil {
		c.broken = true
		return Response{}, err
	}
	for seq := 0; ; seq++ {
		if c.timeout > 0 {
			// The deadline bounds each frame gap, not the whole stream: a
			// healthy stream keeps producing frames.
			c.conn.SetDeadline(time.Now().Add(c.timeout))
		}
		var fr StreamFrame
		if err := readFrame(c.conn, &fr); err != nil {
			c.broken = true
			return Response{}, err
		}
		if fr.Seq != seq {
			c.broken = true
			return Response{}, fmt.Errorf("serve: stream frame %d arrived as seq %d; protocol violation", seq, fr.Seq)
		}
		switch fr.Type {
		case StreamDelta:
			emit(fr.Delta)
		case StreamDone:
			if fr.Final == nil {
				c.broken = true
				return Response{}, errors.New("serve: stream done frame without final response; protocol violation")
			}
			return *fr.Final, nil
		case StreamError:
			return Response{}, errors.New("serve: " + fr.Error)
		default:
			c.broken = true
			return Response{}, fmt.Errorf("serve: unknown stream frame type %q; protocol violation", fr.Type)
		}
	}
}

// PredictStream performs one streamed prediction, retrying per the options
// — but only while nothing has been emitted: once a delta has reached emit,
// a failure is terminal (replaying the stream would duplicate output the
// caller has already rendered). Shed streams arrive as clean error frames
// before any delta, so the overload case retries exactly like unary
// requests.
func (rc *RetryClient) PredictStream(req Request, emit func(delta string)) (Response, error) {
	return rc.PredictStreamContext(context.Background(), req, emit)
}

// PredictStreamContext is PredictStream bounded by ctx.
func (rc *RetryClient) PredictStreamContext(ctx context.Context, req Request, emit func(delta string)) (Response, error) {
	var resp Response
	started := false
	err := rc.retrier.Do(ctx, func(context.Context) error {
		b := rc.opts.Breaker
		if b != nil && !b.Allow() {
			return resilience.ErrBreakerOpen
		}
		c, err := rc.conn()
		if err != nil {
			if b != nil {
				b.Record(err)
			}
			return err
		}
		r, err := c.PredictStream(req, func(d string) {
			started = true
			emit(d)
		})
		if b != nil {
			b.Record(err)
		}
		if err != nil {
			if c.Broken() {
				rc.drop(c)
				err = &transportError{err}
			}
			if started {
				return interruptedStreamError(err)
			}
			return err
		}
		resp = r
		return nil
	})
	return resp, err
}
