// Package serve implements the inference service of the paper's Demo/Plugin
// section: model predictions exposed over a JSON REST API and a compact
// binary RPC protocol (the stdlib substitute for the paper's GRPC
// interface), plus the response cache the paper lists as its latency
// roadmap item. The examples/editor-plugin program drives this service the
// way the paper's Visual Studio Code plugin drives theirs.
//
// # Concurrency model
//
// Every prediction flows through two layers before reaching the model:
//
//  1. A singleflight group in front of the LRU cache coalesces concurrent
//     identical requests (same context+prompt) into one model invocation
//     whose result fans out to all waiters. Without it, N simultaneous
//     misses on one key would each run a full generation with the last
//     writer winning the cache slot.
//  2. A bounded worker pool admits at most Options.Workers concurrent
//     Predict calls, with a bounded wait queue and a per-request admission
//     deadline. Requests beyond pool+queue capacity are shed with HTTP 503
//     (Retry-After) or an RPC error response instead of piling up
//     goroutines without bound.
//
// The model itself must be safe for concurrent Predict calls; *wisdom.Model
// and every Generator in this repository are (inference reads frozen counts
// and weights only — see the concurrency stress tests in each package).
//
// # Observability
//
// Instrument attaches an observe.Registry; from then on the server records
// per-request latency histograms and request/error counters per protocol,
// cache hit/miss/eviction rates, coalesced and shed request counters,
// worker-pool occupancy and queue depth gauges, and served-token
// throughput, and exposes everything at GET /metrics in the Prometheus text
// format. GET /healthz answers liveness probes whether or not metrics are
// enabled. The same metrics text is available over the RPC listener via the
// "metrics" op (Client.Metrics), so a deployment that only exposes the RPC
// port can still be scraped.
//
// # Streaming
//
// Both protocols have a streaming variant that delivers the suggestion
// incrementally while the decode loop is still running: POST
// /v1/completions/stream answers with Server-Sent Events (delta events as
// text is produced, a terminal done event carrying the full Response), and
// the RPC op "stream" answers one request frame with a sequence of
// StreamFrame frames. Streams bypass the singleflight group and the
// micro-batcher — their deltas belong to one client — but share the cache
// and the worker pool, and admission happens before the first byte is
// written so overload sheds a stream as a clean 503/error frame, never a
// torn half-stream. A client that disconnects mid-stream cancels the decode
// loop within one token, freeing its worker slot. See predictStream and
// docs/PROTOCOL.md.
//
// # Wire protocol
//
// The RPC transport is length-prefixed JSON frames over TCP: a 4-byte
// big-endian payload length followed by that many bytes of JSON, in both
// directions, with a 1 MiB frame cap. A unary exchange is one Request frame
// answered by one Response (or OpResponse) frame; a streaming exchange is
// one Request frame answered by delta StreamFrames and exactly one terminal
// frame. Frames never interleave between requests — a connection carries
// one exchange at a time. docs/PROTOCOL.md is the normative specification;
// writeFrame/readFrame are the only codec implementation and are fuzzed
// (FuzzDecodeFrame).
//
// # Lifecycle
//
// Shutdown drains the RPC side gracefully: listeners stop accepting,
// in-flight requests finish within the context's deadline, and persistent
// connections are then closed. The HTTP side is drained by the caller's
// http.Server.Shutdown (see cmd/wisdom-serve).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wisdom/internal/observe"
)

// Predictor is the model-side interface the server needs; *wisdom.Model
// satisfies it. Implementations must be safe for concurrent Predict calls:
// the server runs up to Options.Workers of them in parallel.
type Predictor interface {
	Predict(context, prompt string) string
}

// DegradingPredictor is implemented by predictors that can degrade under
// failure (*wisdom.Chain): PredictDegraded reports whether the answer came
// from a fallback tier rather than the primary model. The server surfaces
// the flag as "degraded":true, counts it on
// wisdom_degraded_responses_total, and keeps degraded answers out of the
// response cache so a recovered primary is not shadowed by stale
// best-effort suggestions.
type DegradingPredictor interface {
	Predictor
	PredictDegraded(context, prompt string) (suggestion string, degraded bool)
}

// SessionPredictor is implemented by predictors that keep per-session
// prefix KV decode state (*wisdom.Model over a transformer with sessions
// enabled): PredictSession answers exactly like Predict but reuses the
// named session's retained state, and SessionStats exposes the cache's
// health for metrics. enabled is false until sessions have been switched on
// (wisdom.Model.EnableSessions), in which case the server routes session
// requests through the ordinary unary path.
type SessionPredictor interface {
	Predictor
	PredictSession(sessionID, context, prompt string) string
	SessionStats() (enabled bool, active int, evictions uint64, reuseRatio float64)
}

// SessionResetter is implemented by session predictors that can discard
// one session's retained decode state on demand (*wisdom.Model over a
// neural session cache): ResetSession forgets whatever the server holds
// under sessionID, so the next request of that session decodes from
// scratch. The server calls it when a request arrives with SessionReset
// set — the router's ownership-epoch check injects that flag when a
// session's ring owner changed, because the state this replica retains
// (if any) belongs to a conversation that continued elsewhere. Resetting
// an unknown session is a no-op.
type SessionResetter interface {
	ResetSession(sessionID string)
}

// SessionStreamingPredictor is the streaming face of a session predictor:
// PredictStreamSession follows PredictStream's emission contract while
// reusing the named session's decode state.
type SessionStreamingPredictor interface {
	SessionPredictor
	PredictStreamSession(ctx context.Context, sessionID, context, prompt string, emit func(delta string)) string
}

// SchedPredictor is implemented by predictors that can decode through a
// continuous-batching scheduler (*wisdom.Model over a transformer with the
// scheduler enabled): PredictSched answers exactly like Predict but joins
// the engine's shared step batch instead of decoding alone, failing fast
// with an error classified Overloaded() when the admission queue is full.
// SchedStats exposes the engine's scheduling counters for metrics. enabled
// is false until the scheduler has been switched on
// (wisdom.Model.EnableScheduler), in which case the server keeps the
// ordinary pipeline.
type SchedPredictor interface {
	Predictor
	PredictSched(ctx context.Context, context, prompt string) (string, error)
	SchedStats() (enabled bool, maxBatch, active, queued int, admitted, retired, steps, rowSteps uint64)
}

// SchedStreamingPredictor is the streaming face of a scheduled predictor:
// PredictStreamSched follows PredictStream's emission contract while
// decoding through the continuous-batching engine. An error before any
// delta has been emitted (queue full, engine closed) lets the server shed
// the stream cleanly.
type SchedStreamingPredictor interface {
	SchedPredictor
	PredictStreamSched(ctx context.Context, context, prompt string, emit func(delta string)) (string, error)
}

// RoutingPredictor is implemented by predictors that answer a request by
// forwarding it to another tier instead of decoding locally
// (*router.Router): PredictRoute receives the full Request — including
// SessionID, which a sharded frontend hashes for replica affinity — and
// returns the backend's response or an error when no backend could serve it
// (every candidate dead, breaker-open, or shedding). Routing errors are
// shed-shaped: the server answers 503 with Retry-After, never a torn
// response. When the model implements this interface the server routes every
// prediction through it — after the cache and singleflight group, so
// duplicate traffic coalesces before it crosses the network, and through the
// worker pool, so a slow backend cannot absorb unbounded concurrency.
type RoutingPredictor interface {
	Predictor
	PredictRoute(ctx context.Context, req Request) (Response, error)
}

// StatsAggregator is implemented by models that can widen the /v1/stats
// snapshot beyond this process (*router.Router aggregates its whole backend
// fleet): AggregateStats receives the server's local Stats and returns the
// value to encode instead. The RPC stats op keeps returning the local
// snapshot — it is what a frontend sums over its backends.
type StatsAggregator interface {
	AggregateStats(local Stats) any
}

// schedQueueWaitObservable is the optional hook wiring the engine's
// per-request queue-wait samples into a histogram; *wisdom.Model implements
// it. Unexported: it is a metrics seam, not part of the serving contract.
type schedQueueWaitObservable interface {
	SetSchedQueueWaitObserver(fn func(waitSeconds float64))
}

// Request is one completion request: the natural-language intent plus the
// optional Ansible context preceding the cursor.
type Request struct {
	// Prompt is the task description the user typed after "- name:".
	Prompt string `json:"prompt"`
	// Context is the file content above the prompt (may be empty).
	Context string `json:"context,omitempty"`
	// Op selects the RPC operation: "" (unary predict), "stream" (streamed
	// predict, answered with StreamFrames), "metrics" (Prometheus text
	// dump) or "health". HTTP ignores it — the REST API routes by path.
	// docs/PROTOCOL.md is the normative op table.
	Op string `json:"op,omitempty"`
	// SessionID is an opaque client-chosen key naming a decode session.
	// When set (and the model holds per-session prefix KV state), the
	// request reuses the session's retained state so only the token suffix
	// that changed since the session's last request is re-decoded. Over
	// HTTP the X-Wisdom-Session header sets it when the JSON field is
	// empty. It doubles as the affinity key a sharded frontend hashes to
	// route the session to the replica holding its state. Unknown to old
	// servers, which ignore it (see docs/PROTOCOL.md versioning).
	SessionID string `json:"session_id,omitempty"`
	// SessionReset, when set on a session request, discards whatever state
	// the server retains under SessionID before answering, forcing a cold
	// start. A router injects it when the session's ring owner changed —
	// the new replica either never saw the session or holds a prefix the
	// conversation has since outgrown elsewhere, so resuming would be
	// silently wrong. Meaningless without SessionID; unknown to old
	// servers, which ignore it (the answer is byte-identical either way).
	SessionReset bool `json:"session_reset,omitempty"`
	// Admin carries a fleet-administration request when Op is OpAdmin (see
	// admin.go and docs/PROTOCOL.md §7); nil for every other op.
	Admin *AdminRequest `json:"admin,omitempty"`
}

// Response carries the suggestion back to the editor.
type Response struct {
	// Suggestion is the completed task (name line plus body).
	Suggestion string `json:"suggestion"`
	// Cached reports whether the suggestion came from the response cache.
	Cached bool `json:"cached"`
	// Coalesced reports whether the suggestion was shared from a
	// concurrent identical request's model invocation.
	Coalesced bool `json:"coalesced,omitempty"`
	// Degraded reports that the suggestion came from a fallback tier of the
	// degradation chain (the primary model timed out or its circuit breaker
	// is open); it is best-effort quality and never cached.
	Degraded bool `json:"degraded,omitempty"`
	// LatencyMS is the server-side handling time in milliseconds.
	LatencyMS float64 `json:"latency_ms"`
	// Model names the serving model.
	Model string `json:"model"`
	// Replaced is set on streamed responses whose final post-processing
	// rewrote already-streamed text (the schema-validation fallback): the
	// concatenated deltas are stale and the client should re-render from
	// Suggestion. Unary responses never set it.
	Replaced bool `json:"replaced,omitempty"`
	// Error is set (and Suggestion empty) when the request was rejected,
	// e.g. shed under overload. RPC clients surface it as an error.
	Error string `json:"error,omitempty"`
}

// OpResponse answers the non-prediction RPC ops.
type OpResponse struct {
	Status  string `json:"status,omitempty"`
	Model   string `json:"model,omitempty"`
	Metrics string `json:"metrics,omitempty"`
	// Stats carries the server's counter snapshot (op "stats"). Always the
	// local process's view — a router frontend sums this field over its
	// backends to build the fleet aggregate (see docs/PROTOCOL.md).
	Stats *Stats `json:"stats,omitempty"`
	// Admin carries the admin exchange's outcome (op "admin"); nil for
	// every other op and on admin rejections (Error is set instead).
	Admin *AdminResponse `json:"admin,omitempty"`
	Error string         `json:"error,omitempty"`
}

// OpStats is the Request.Op requesting the server's Stats snapshot over RPC
// (Client.Stats). It is how a router frontend scrapes replica counters for
// fleet-wide aggregation when replicas only expose their RPC port. Unknown
// to pre-PR9 servers, which answer it with an unknown-op error (see
// docs/PROTOCOL.md versioning).
const OpStats = "stats"

// Options configure the concurrent serving path. The zero value of each
// field selects the documented default.
type Options struct {
	// CacheSize is the LRU response-cache capacity; <= 0 disables caching.
	CacheSize int
	// Workers bounds concurrent model Predict calls (<= 0: GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker (0: 4x Workers;
	// < 0: no queue — a busy pool sheds immediately).
	QueueDepth int
	// QueueTimeout bounds how long one request may wait for admission
	// (0: 2s; < 0: no deadline, wait until the client gives up).
	QueueTimeout time.Duration
	// MaxBodyBytes caps an HTTP request body (<= 0: 1 MiB, matching the
	// RPC frame limit).
	MaxBodyBytes int64
	// BatchWindow is how long the micro-batcher holds the first request of
	// a batch to gather concurrent non-identical requests into one decode.
	// Zero disables micro-batching (the default).
	BatchWindow time.Duration
	// MaxBatch caps how many requests decode together; reaching it flushes
	// the batch immediately. <= 1 disables micro-batching.
	MaxBatch int
	// ConnHook, when set, wraps every accepted RPC connection before the
	// server reads from it — the transport seam the resilience package's
	// fault injector plugs into (resilience.Injector.WrapConn). Production
	// deployments leave it nil.
	ConnHook func(net.Conn) net.Conn
	// AdminToken authenticates fleet-administration requests (op "admin",
	// /admin/backends). Empty disables the whole admin surface — there is
	// no unauthenticated mode. Only meaningful when the model implements
	// AdminHandler (the router); replicas ignore it.
	AdminToken string
}

// DefaultQueueTimeout is the admission deadline used when Options leave
// QueueTimeout zero.
const DefaultQueueTimeout = 2 * time.Second

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case o.QueueDepth < 0:
		o.QueueDepth = 0
	case o.QueueDepth == 0:
		o.QueueDepth = 4 * o.Workers
	}
	switch {
	case o.QueueTimeout < 0:
		o.QueueTimeout = 0
	case o.QueueTimeout == 0:
		o.QueueTimeout = DefaultQueueTimeout
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = maxFrame
	}
	return o
}

// Server serves predictions over HTTP and the binary RPC protocol.
type Server struct {
	model         Predictor
	degrade       DegradingPredictor          // non-nil when model can degrade
	stream        StreamingPredictor          // non-nil when model can stream
	streamDegrade StreamingDegradingPredictor // non-nil when model streams and degrades
	session       SessionPredictor            // non-nil when model has sessions enabled
	sessionStream SessionStreamingPredictor   // non-nil when session model also streams
	sched         SchedPredictor              // non-nil when model has the scheduler enabled
	schedStream   SchedStreamingPredictor     // non-nil when scheduled model also streams
	route         RoutingPredictor            // non-nil when model forwards to a backend tier
	routeStream   RoutingStreamingPredictor   // non-nil when routing model also streams
	statsAgg      StatsAggregator             // non-nil when model widens /v1/stats
	admin         AdminHandler                // non-nil when model exposes fleet membership
	sessionReset  SessionResetter             // non-nil when model can cold-start a session
	adminToken    string                      // "" disables the admin surface
	modelName     string
	cache         *Cache
	requests      atomic.Int64 // predictions served, both protocols
	connHook      func(net.Conn) net.Conn

	// Streaming accounting (live regardless of instrumentation, so tests
	// and /v1/stats can observe stream lifecycles directly).
	activeStreams    atomic.Int64
	cancelledStreams atomic.Uint64

	// Concurrency control: flight coalesces identical in-flight requests,
	// pool bounds concurrent Predict calls. reqTimeout bounds one
	// request's admission wait (queueing plus coalesced waiting).
	flight     *Flight
	pool       *Pool
	batcher    *batcher
	reqTimeout time.Duration
	maxBody    int64

	reg *observe.Registry
	met *serverMetrics

	// RPC lifecycle: lifeMu guards the listener/connection sets and the
	// draining flag; inflight counts requests between frame-read and
	// frame-write so Shutdown can wait for them.
	lifeMu   sync.Mutex
	draining bool
	lns      map[net.Listener]struct{}
	conns    map[net.Conn]struct{}
	inflight sync.WaitGroup
}

// NewServer wraps a predictor with default concurrency options.
// cacheSize <= 0 disables the cache.
func NewServer(model Predictor, modelName string, cacheSize int) *Server {
	return NewServerWithOptions(model, modelName, Options{CacheSize: cacheSize})
}

// NewServerWithOptions wraps a predictor with explicit serving options.
func NewServerWithOptions(model Predictor, modelName string, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		model:      model,
		modelName:  modelName,
		connHook:   opts.ConnHook,
		flight:     NewFlight(),
		pool:       NewPool(opts.Workers, opts.QueueDepth, opts.QueueTimeout),
		reqTimeout: opts.QueueTimeout,
		maxBody:    opts.MaxBodyBytes,
		lns:        make(map[net.Listener]struct{}),
		conns:      make(map[net.Conn]struct{}),
	}
	if dp, ok := model.(DegradingPredictor); ok {
		s.degrade = dp
	}
	if sp, ok := model.(StreamingPredictor); ok {
		s.stream = sp
	}
	if sdp, ok := model.(StreamingDegradingPredictor); ok {
		s.streamDegrade = sdp
	}
	// Session routing only engages when the model actually holds session
	// state: a model that merely implements the interface with sessions
	// switched off keeps the ordinary stateless pipeline.
	if sp, ok := model.(SessionPredictor); ok {
		if enabled, _, _, _ := sp.SessionStats(); enabled {
			s.session = sp
			if ssp, ok := model.(SessionStreamingPredictor); ok {
				s.sessionStream = ssp
			}
			if sr, ok := model.(SessionResetter); ok {
				s.sessionReset = sr
			}
		}
	}
	// Scheduler routing engages only when the model actually runs a
	// continuous-batching engine; a model that merely implements the
	// interface with the scheduler switched off keeps the ordinary pipeline.
	if sp, ok := model.(SchedPredictor); ok {
		if enabled, _, _, _, _, _, _, _ := sp.SchedStats(); enabled {
			s.sched = sp
			if ssp, ok := model.(SchedStreamingPredictor); ok {
				s.schedStream = ssp
			}
		}
	}
	// Routing engages when the model forwards to a backend tier instead of
	// decoding locally (the router frontend): every prediction then flows
	// cache -> singleflight -> pool -> PredictRoute, and /v1/stats widens to
	// the aggregated fleet view when the model can provide one.
	if rp, ok := model.(RoutingPredictor); ok {
		s.route = rp
		if rsp, ok := model.(RoutingStreamingPredictor); ok {
			s.routeStream = rsp
		}
	}
	if sa, ok := model.(StatsAggregator); ok {
		s.statsAgg = sa
	}
	// The admin surface engages only for models with membership to
	// administer, and stays dark without a configured token (fail closed).
	if ah, ok := model.(AdminHandler); ok {
		s.admin = ah
		s.adminToken = opts.AdminToken
	}
	if opts.CacheSize > 0 {
		s.cache = NewCache(opts.CacheSize)
	}
	// Micro-batching needs a model with a batched decode path; models
	// without one keep the per-request pipeline regardless of the options.
	// The continuous-batching scheduler supersedes the micro-batcher: the
	// engine batches at step granularity, so holding requests in a window
	// to gather a batch would only add latency in front of it.
	if s.sched == nil && opts.MaxBatch > 1 && opts.BatchWindow > 0 {
		if bp, ok := model.(BatchPredictor); ok {
			s.batcher = newBatcher(opts.BatchWindow, opts.MaxBatch, s.execBatch(bp))
		}
	}
	return s
}

// execBatch returns the batcher's decode function: admit the whole batch
// through ONE worker-pool slot, record its size, and run the model's
// batched prediction. One slot per batch (not per request) keeps pool
// occupancy meaning "concurrent decodes"; fairness against unbatched
// deployments is unchanged because a batch does the work of its requests
// in one pass. Admission uses a fresh context bounded by the request
// timeout: the batch must run even if the submitting caller gave up.
func (s *Server) execBatch(bp BatchPredictor) func([]Request) ([]string, error) {
	return func(reqs []Request) ([]string, error) {
		ctx := context.Background()
		if s.reqTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.reqTimeout)
			defer cancel()
		}
		if s.pool != nil {
			if err := s.pool.Acquire(ctx); err != nil {
				return nil, err
			}
			defer s.pool.Release()
		}
		if m := s.met; m != nil {
			m.batchSize.Observe(float64(len(reqs)))
		}
		if len(reqs) == 1 {
			return []string{bp.Predict(reqs[0].Context, reqs[0].Prompt)}, nil
		}
		contexts := make([]string, len(reqs))
		prompts := make([]string, len(reqs))
		for i, r := range reqs {
			contexts[i], prompts[i] = r.Context, r.Prompt
		}
		return bp.PredictBatch(contexts, prompts), nil
	}
}

// Requests returns the number of predictions served (both protocols).
func (s *Server) Requests() int {
	return int(s.requests.Load())
}

// Pool returns the server's admission pool (occupancy introspection).
func (s *Server) Pool() *Pool { return s.pool }

// ActiveStreams returns how many streamed predictions are in flight.
func (s *Server) ActiveStreams() int { return int(s.activeStreams.Load()) }

// CancelledStreams returns how many streams were abandoned before their
// terminal frame (client disconnects and failed writes).
func (s *Server) CancelledStreams() uint64 { return s.cancelledStreams.Load() }

// ---- metrics ----

// serverMetrics holds the instruments recorded on the request hot path.
// The struct is nil when the server is not instrumented, so the disabled
// path costs one pointer test per request.
type serverMetrics struct {
	reg            *observe.Registry
	requestsHTTP   *observe.Counter
	requestsRPC    *observe.Counter
	durationHTTP   *observe.Histogram
	durationRPC    *observe.Histogram
	cachedTotal    *observe.Counter
	coalescedTotal *observe.Counter
	shedHTTP       *observe.Counter
	shedRPC        *observe.Counter
	servedTokens   *observe.Counter
	tokensPerSec   *observe.Gauge
	batchSize      *observe.Histogram
	degradedTotal  *observe.Counter

	streamTTFT          *observe.Histogram
	streamRequestsHTTP  *observe.Counter
	streamRequestsRPC   *observe.Counter
	streamCancelledHTTP *observe.Counter
	streamCancelledRPC  *observe.Counter
}

func (m *serverMetrics) requestsFor(proto string) *observe.Counter {
	if proto == "rpc" {
		return m.requestsRPC
	}
	return m.requestsHTTP
}

func (m *serverMetrics) durationFor(proto string) *observe.Histogram {
	if proto == "rpc" {
		return m.durationRPC
	}
	return m.durationHTTP
}

func (m *serverMetrics) shedFor(proto string) *observe.Counter {
	if proto == "rpc" {
		return m.shedRPC
	}
	return m.shedHTTP
}

func (m *serverMetrics) streamRequestsFor(proto string) *observe.Counter {
	if proto == "rpc" {
		return m.streamRequestsRPC
	}
	return m.streamRequestsHTTP
}

func (m *serverMetrics) streamCancelledFor(proto string) *observe.Counter {
	if proto == "rpc" {
		return m.streamCancelledRPC
	}
	return m.streamCancelledHTTP
}

// Instrument registers the server's metrics on reg and makes Handler serve
// reg at /metrics. Call it once, before traffic starts; a nil registry is
// a no-op and leaves metrics disabled.
func (s *Server) Instrument(reg *observe.Registry) {
	if reg == nil {
		return
	}
	proto := func(p string) observe.Label { return observe.Label{Key: "proto", Value: p} }
	m := &serverMetrics{
		reg: reg,
		requestsHTTP: reg.Counter("wisdom_requests_total",
			"Prediction requests served.", proto("http")),
		requestsRPC: reg.Counter("wisdom_requests_total",
			"Prediction requests served.", proto("rpc")),
		durationHTTP: reg.Histogram("wisdom_request_duration_seconds",
			"Server-side prediction latency.", observe.DefBuckets, proto("http")),
		durationRPC: reg.Histogram("wisdom_request_duration_seconds",
			"Server-side prediction latency.", observe.DefBuckets, proto("rpc")),
		cachedTotal: reg.Counter("wisdom_cached_responses_total",
			"Predictions answered from the response cache."),
		coalescedTotal: reg.Counter("wisdom_coalesced_requests_total",
			"Predictions shared from a concurrent identical request's model call."),
		shedHTTP: reg.Counter("wisdom_shed_requests_total",
			"Requests rejected by overload shedding.", proto("http")),
		shedRPC: reg.Counter("wisdom_shed_requests_total",
			"Requests rejected by overload shedding.", proto("rpc")),
		servedTokens: reg.Counter("wisdom_served_tokens_total",
			"Whitespace-delimited tokens in served suggestions."),
		tokensPerSec: reg.Gauge("wisdom_served_tokens_per_second",
			"Generation rate of the most recent uncached prediction."),
		batchSize: reg.Histogram("wisdom_batch_size",
			"Requests decoded together per micro-batch.",
			[]float64{1, 2, 4, 8, 16, 32}),
		degradedTotal: reg.Counter("wisdom_degraded_responses_total",
			"Predictions answered by a degradation-chain fallback tier."),
		streamTTFT: reg.Histogram("wisdom_stream_ttft_seconds",
			"Time from stream request arrival to its first delta (time to first token).",
			observe.DefBuckets),
		streamRequestsHTTP: reg.Counter("wisdom_stream_requests_total",
			"Streamed prediction requests started.", proto("http")),
		streamRequestsRPC: reg.Counter("wisdom_stream_requests_total",
			"Streamed prediction requests started.", proto("rpc")),
		streamCancelledHTTP: reg.Counter("wisdom_stream_cancelled_total",
			"Streams abandoned before completion (client disconnect or failed write).", proto("http")),
		streamCancelledRPC: reg.Counter("wisdom_stream_cancelled_total",
			"Streams abandoned before completion (client disconnect or failed write).", proto("rpc")),
	}
	reg.GaugeFunc("wisdom_stream_active",
		"Streamed predictions currently in flight.",
		func() float64 { return float64(s.activeStreams.Load()) })
	if fg := s.flight; fg != nil {
		reg.CounterFunc("wisdom_coalesce_abandoned_total",
			"Singleflight waiters whose context expired before the leader finished (never received a shared answer).",
			func() float64 { return float64(fg.Abandoned()) })
	}
	if sp := s.session; sp != nil {
		reg.GaugeFunc("wisdom_session_active",
			"Live decode sessions (resident prefix KV states plus states checked out by in-flight generations).",
			func() float64 { _, active, _, _ := sp.SessionStats(); return float64(active) })
		reg.GaugeFunc("wisdom_session_prefix_reuse_ratio",
			"Fraction of prefix positions served from retained session state instead of re-decoded.",
			func() float64 { _, _, _, ratio := sp.SessionStats(); return ratio })
		reg.CounterFunc("wisdom_session_evictions_total",
			"Session states evicted (LRU bound, memory cap, or idle TTL).",
			func() float64 { _, _, ev, _ := sp.SessionStats(); return float64(ev) })
	}
	if sp := s.sched; sp != nil {
		reg.GaugeFunc("wisdom_sched_batch_occupancy",
			"Fraction of the decode engine's step-batch slots holding a live sequence.",
			func() float64 {
				_, maxBatch, active, _, _, _, _, _ := sp.SchedStats()
				if maxBatch == 0 {
					return 0
				}
				return float64(active) / float64(maxBatch)
			})
		reg.GaugeFunc("wisdom_sched_queue_depth",
			"Requests waiting in the decode engine's admission queue.",
			func() float64 { _, _, _, queued, _, _, _, _ := sp.SchedStats(); return float64(queued) })
		reg.CounterFunc("wisdom_sched_admitted_total",
			"Sequences admitted into the decode engine's step batch.",
			func() float64 { _, _, _, _, admitted, _, _, _ := sp.SchedStats(); return float64(admitted) })
		reg.CounterFunc("wisdom_sched_retired_total",
			"Sequences retired from the decode engine's step batch (finished, stopped or cancelled).",
			func() float64 { _, _, _, _, _, retired, _, _ := sp.SchedStats(); return float64(retired) })
		if qo, ok := sp.(schedQueueWaitObservable); ok {
			h := reg.Histogram("wisdom_sched_queue_wait_seconds",
				"Wait between a request's submission and its admission into the step batch.",
				observe.DefBuckets)
			qo.SetSchedQueueWaitObserver(h.Observe)
		}
	}
	p := s.pool
	reg.GaugeFunc("wisdom_pool_workers",
		"Size of the inference worker pool.", func() float64 { return float64(p.Workers()) })
	reg.GaugeFunc("wisdom_pool_active_workers",
		"Predict calls currently running.", func() float64 { return float64(p.Active()) })
	reg.GaugeFunc("wisdom_pool_queue_depth",
		"Requests currently waiting for a worker.", func() float64 { return float64(p.Queued()) })
	if s.cache != nil {
		c := s.cache
		reg.CounterFunc("wisdom_cache_hits_total",
			"Response-cache hits.", func() float64 { h, _, _ := c.Stats(); return float64(h) })
		reg.CounterFunc("wisdom_cache_misses_total",
			"Response-cache misses.", func() float64 { _, m, _ := c.Stats(); return float64(m) })
		reg.CounterFunc("wisdom_cache_evictions_total",
			"Response-cache LRU evictions.", func() float64 { _, _, e := c.Stats(); return float64(e) })
		reg.GaugeFunc("wisdom_cache_entries",
			"Response-cache resident entries.", func() float64 { return float64(c.Len()) })
	}
	s.reg = reg
	s.met = m
}

// countError increments the per-protocol error counter for reason. Error
// paths are rare, so the registry's get-or-create lookup is fine here.
func (s *Server) countError(proto, reason string) {
	if s.reg == nil {
		return
	}
	s.reg.Counter("wisdom_request_errors_total", "Rejected requests.",
		observe.Label{Key: "proto", Value: proto},
		observe.Label{Key: "reason", Value: reason}).Inc()
}

// shedReason maps an admission error to the error-counter reason label.
func shedReason(err error) string {
	var ov interface{ Overloaded() bool }
	switch {
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.As(err, &ov) && ov.Overloaded():
		// The scheduler's admission queue rejected the request — same
		// overload semantics as the worker pool's, different layer.
		return "overloaded"
	case errors.Is(err, ErrQueueTimeout), errors.Is(err, context.DeadlineExceeded):
		return "queue_timeout"
	default:
		return "canceled"
	}
}

// predict answers one request, consulting the cache first, and records the
// request's signals when the server is instrumented. A non-nil error means
// the request was shed (or its client gave up) and nothing was served.
func (s *Server) predict(ctx context.Context, req Request, proto string) (Response, error) {
	start := time.Now()
	if s.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.reqTimeout)
		defer cancel()
	}

	resp, err := s.answer(ctx, req)
	if err != nil {
		if m := s.met; m != nil {
			m.shedFor(proto).Inc()
		}
		s.countError(proto, shedReason(err))
		return Response{}, err
	}
	s.requests.Add(1)
	resp.LatencyMS = ms(start)
	resp.Model = s.modelName
	if m := s.met; m != nil {
		elapsed := time.Since(start).Seconds()
		m.requestsFor(proto).Inc()
		m.durationFor(proto).Observe(elapsed)
		toks := len(strings.Fields(resp.Suggestion))
		m.servedTokens.Add(toks)
		if resp.Degraded {
			m.degradedTotal.Inc()
		}
		switch {
		case resp.Cached:
			m.cachedTotal.Inc()
		case resp.Coalesced:
			m.coalescedTotal.Inc()
		default:
			if elapsed > 0 && toks > 0 {
				m.tokensPerSec.Set(float64(toks) / elapsed)
			}
		}
	}
	return resp, nil
}

// answer resolves a request against the cache, then — coalesced with any
// concurrent identical request and admitted through the worker pool — the
// model.
func (s *Server) answer(ctx context.Context, req Request) (Response, error) {
	key := req.Context + "\x00" + req.Prompt
	if s.cache != nil {
		if v, ok := s.cache.Get(key); ok {
			return Response{Suggestion: v, Cached: true}, nil
		}
	}
	if s.route != nil {
		return s.answerRoute(ctx, req, key)
	}
	// Session requests route around singleflight and the micro-batcher: the
	// session's decode state is exclusive to one generation at a time, so
	// neither sharing a leader's answer (whose decode advances a different
	// session — or none) nor folding the request into a batch row preserves
	// the state handoff. The worker pool still bounds concurrency, and the
	// answer still lands in the response cache — session output is
	// byte-identical to stateless output for the same request.
	if req.SessionID != "" && s.session != nil {
		if s.pool != nil {
			if err := s.pool.Acquire(ctx); err != nil {
				return Response{}, err
			}
			defer s.pool.Release()
		}
		if req.SessionReset && s.sessionReset != nil {
			s.sessionReset.ResetSession(req.SessionID)
		}
		v := s.session.PredictSession(req.SessionID, req.Context, req.Prompt)
		if s.cache != nil {
			s.cache.Put(key, v)
		}
		return Response{Suggestion: v}, nil
	}
	invoke := func() (string, bool, error) {
		if s.sched != nil {
			// Continuous-batching path: the engine merges concurrent decodes
			// at step granularity, so the request goes straight in — no
			// batching window. The pool slot still bounds admitted requests
			// (one slot per scheduled row) and is released on every exit
			// path, including a queue-full shed, so a rejected request never
			// leaks capacity.
			if s.pool != nil {
				if err := s.pool.Acquire(ctx); err != nil {
					return "", false, err
				}
				defer s.pool.Release()
			}
			v, err := s.sched.PredictSched(ctx, req.Context, req.Prompt)
			if err != nil {
				return "", false, err
			}
			if s.cache != nil {
				s.cache.Put(key, v)
			}
			return v, false, nil
		}
		if s.batcher != nil {
			// Micro-batching path: the batcher gathers concurrent keys and
			// its exec function admits the whole batch through one pool
			// slot, so no slot is taken here.
			v, err := s.batcher.do(ctx, req)
			if err != nil {
				return "", false, err
			}
			if s.cache != nil {
				s.cache.Put(key, v)
			}
			return v, false, nil
		}
		if s.pool != nil {
			if err := s.pool.Acquire(ctx); err != nil {
				return "", false, err
			}
			defer s.pool.Release()
		}
		var suggestion string
		var degraded bool
		if s.degrade != nil {
			suggestion, degraded = s.degrade.PredictDegraded(req.Context, req.Prompt)
		} else {
			suggestion = s.model.Predict(req.Context, req.Prompt)
		}
		// Degraded answers stay out of the cache: they are best-effort, and
		// caching one would keep serving it after the primary recovers.
		if s.cache != nil && !degraded {
			s.cache.Put(key, suggestion)
		}
		return suggestion, degraded, nil
	}
	if s.flight == nil { // coalescing disabled (benchmark baseline)
		v, degraded, err := invoke()
		if err != nil {
			return Response{}, err
		}
		return Response{Suggestion: v, Degraded: degraded}, nil
	}
	v, degraded, coalesced, err := s.flight.DoDegraded(ctx, key, invoke)
	if err != nil {
		return Response{}, err
	}
	return Response{Suggestion: v, Coalesced: coalesced, Degraded: degraded}, nil
}

// answerRoute resolves a cache-missed request through the routing tier:
// coalesced with any concurrent identical request (so duplicate traffic
// crosses the network once), admitted through the worker pool (so a slow
// backend fleet cannot absorb unbounded router concurrency), then forwarded
// by the model's PredictRoute. Session requests bypass the singleflight
// group — mirroring the local session path — so each session's request
// reaches the replica its affinity key hashes to instead of sharing a
// leader's forward that hashed a different (or no) session.
func (s *Server) answerRoute(ctx context.Context, req Request, key string) (Response, error) {
	invoke := func() (string, bool, error) {
		if s.pool != nil {
			if err := s.pool.Acquire(ctx); err != nil {
				return "", false, err
			}
			defer s.pool.Release()
		}
		resp, err := s.route.PredictRoute(ctx, req)
		if err != nil {
			return "", false, err
		}
		// Degraded answers stay out of the cache, same as the local path.
		if s.cache != nil && !resp.Degraded {
			s.cache.Put(key, resp.Suggestion)
		}
		return resp.Suggestion, resp.Degraded, nil
	}
	if req.SessionID != "" || s.flight == nil {
		v, degraded, err := invoke()
		if err != nil {
			return Response{}, err
		}
		return Response{Suggestion: v, Degraded: degraded}, nil
	}
	v, degraded, coalesced, err := s.flight.DoDegraded(ctx, key, invoke)
	if err != nil {
		return Response{}, err
	}
	return Response{Suggestion: v, Coalesced: coalesced, Degraded: degraded}, nil
}

func ms(start time.Time) float64 { return float64(time.Since(start).Microseconds()) / 1000 }

// retryAfter derives the Retry-After guidance for a shed request from the
// server's current load instead of a hardcoded constant: the advised wait
// scales with how full the admission queue is, from 1s when the queue is
// empty (a transient spike — the client may come straight back) up to the
// full admission deadline when the queue is saturated (coming back sooner
// than that would only time out in the queue again).
func (s *Server) retryAfter() string {
	secs := 1.0
	if cap := s.pool.QueueCap(); cap > 0 {
		frac := float64(s.pool.Queued()) / float64(cap)
		if frac > 1 {
			frac = 1
		}
		if deadline := s.reqTimeout.Seconds(); deadline > 1 {
			secs += frac * (deadline - 1)
		}
	} else if deadline := s.reqTimeout.Seconds(); deadline > 1 {
		// No queue: a busy pool sheds instantly, so advise one admission
		// deadline — the bound on how long the running work can take.
		secs = deadline
	}
	return strconv.Itoa(int(math.Ceil(secs)))
}

// ---- REST ----

// Handler returns the HTTP handler exposing the REST API:
//
//	POST /v1/completions         {"prompt": ..., "context": ...} -> Response
//	POST /v1/completions/stream  same body -> Server-Sent Events stream
//	GET/POST /admin/backends     fleet membership (token-gated; admin.go)
//	GET  /v1/health       -> {"status": "ok", "model": ...}
//	GET  /healthz         -> {"status": "ok", "model": ...}   (liveness probe)
//	GET  /v1/stats        -> Stats
//	GET  /metrics         -> Prometheus text format (requires Instrument)
//
// Oversized request bodies are rejected with 413; requests shed under
// overload get 503 with a Retry-After header (on both endpoints — a shed
// stream is rejected before any SSE byte is written).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/completions", func(w http.ResponseWriter, r *http.Request) {
		req, ok := s.decodeHTTPRequest(w, r)
		if !ok {
			return
		}
		resp, err := s.predict(r.Context(), req, "http")
		if err != nil {
			w.Header().Set("Retry-After", s.retryAfter())
			http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			// Too late for a status change; the connection is gone.
			return
		}
	})
	mux.HandleFunc("/v1/completions/stream", s.handleStreamHTTP)
	mux.HandleFunc("/admin/backends", s.handleAdminHTTP)
	health := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","model":%q,"requests":%d}`+"\n", s.modelName, s.Requests())
	}
	mux.HandleFunc("/v1/health", health)
	mux.HandleFunc("/healthz", health)
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// A stats-aggregating model (the router) widens the snapshot to its
		// whole fleet; everything else serves the local counters.
		var payload any = s.Stats()
		if s.statsAgg != nil {
			payload = s.statsAgg.AggregateStats(s.Stats())
		}
		if err := json.NewEncoder(w).Encode(payload); err != nil {
			return
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if s.reg == nil {
			http.Error(w, "metrics disabled; start the server with instrumentation (wisdom-serve -metrics)", http.StatusNotFound)
			return
		}
		s.reg.Handler().ServeHTTP(w, r)
	})
	return mux
}

// Stats summarises the server's counters for the /v1/stats endpoint.
type Stats struct {
	Model          string  `json:"model"`
	Requests       int     `json:"requests"`
	PoolWorkers    int     `json:"pool_workers"`
	PoolActive     int     `json:"pool_active"`
	PoolQueued     int     `json:"pool_queued"`
	ShedRequests   uint64  `json:"shed_requests"`
	ActiveStreams  int     `json:"active_streams"`
	CancelledStrms uint64  `json:"cancelled_streams"`
	CacheEnabled   bool    `json:"cache_enabled"`
	CacheEntries   int     `json:"cache_entries"`
	CacheHits      int     `json:"cache_hits"`
	CacheMisses    int     `json:"cache_misses"`
	CacheEvictions int     `json:"cache_evictions"`
	HitRate        float64 `json:"hit_rate"`
	// Session-cache state (all zero when the model has no sessions).
	SessionsEnabled   bool    `json:"sessions_enabled"`
	SessionsActive    int     `json:"sessions_active,omitempty"`
	SessionEvictions  uint64  `json:"session_evictions,omitempty"`
	SessionReuseRatio float64 `json:"session_reuse_ratio,omitempty"`
	// AbandonedWaiters counts singleflight waiters that timed out before
	// the leader finished (they never received a shared answer).
	AbandonedWaiters uint64 `json:"abandoned_waiters,omitempty"`
	// Continuous-batching scheduler state (all zero when disabled).
	// SchedOccupancy is the cumulative batch occupancy — row-steps decoded
	// divided by total step-batch slot capacity over every step taken.
	SchedEnabled   bool    `json:"sched_enabled"`
	SchedMaxBatch  int     `json:"sched_max_batch,omitempty"`
	SchedActive    int     `json:"sched_active,omitempty"`
	SchedQueued    int     `json:"sched_queued,omitempty"`
	SchedAdmitted  uint64  `json:"sched_admitted,omitempty"`
	SchedRetired   uint64  `json:"sched_retired,omitempty"`
	SchedOccupancy float64 `json:"sched_occupancy,omitempty"`
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Model:          s.modelName,
		Requests:       s.Requests(),
		PoolWorkers:    s.pool.Workers(),
		PoolActive:     s.pool.Active(),
		PoolQueued:     s.pool.Queued(),
		ShedRequests:   s.pool.Shed(),
		ActiveStreams:  s.ActiveStreams(),
		CancelledStrms: s.CancelledStreams(),
	}
	if s.cache != nil {
		st.CacheEnabled = true
		st.CacheEntries = s.cache.Len()
		st.CacheHits, st.CacheMisses, st.CacheEvictions = s.cache.Stats()
		if total := st.CacheHits + st.CacheMisses; total > 0 {
			st.HitRate = float64(st.CacheHits) / float64(total)
		}
	}
	if s.flight != nil {
		st.AbandonedWaiters = s.flight.Abandoned()
	}
	if s.session != nil {
		st.SessionsEnabled, st.SessionsActive, st.SessionEvictions, st.SessionReuseRatio = s.session.SessionStats()
	}
	if s.sched != nil {
		var steps, rowSteps uint64
		st.SchedEnabled, st.SchedMaxBatch, st.SchedActive, st.SchedQueued,
			st.SchedAdmitted, st.SchedRetired, steps, rowSteps = s.sched.SchedStats()
		if cap := steps * uint64(st.SchedMaxBatch); cap > 0 {
			st.SchedOccupancy = float64(rowSteps) / float64(cap)
		}
	}
	return st
}

// ListenHTTP serves the REST API on addr until the listener fails.
func (s *Server) ListenHTTP(addr string) error {
	return http.ListenAndServe(addr, s.Handler())
}

// ---- binary RPC (the GRPC stand-in) ----

// The wire protocol is length-prefixed JSON frames over TCP: a 4-byte
// big-endian frame length followed by the JSON payload, in both directions;
// one request frame yields one response frame. This keeps the transport
// dependency-free while preserving the GRPC call shape (typed request,
// typed response, persistent connection, multiplexed calls in sequence).

const maxFrame = 1 << 20 // 1 MiB per frame is far beyond any playbook

// writeFrame writes one length-prefixed JSON frame. It takes an io.Writer
// (not a net.Conn) so the codec is fuzzable and transport hooks compose.
func writeFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("serve: frame of %d bytes exceeds limit", len(payload))
	}
	hdr := []byte{byte(len(payload) >> 24), byte(len(payload) >> 16), byte(len(payload) >> 8), byte(len(payload))}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// readFrame reads one length-prefixed JSON frame into v.
func readFrame(r io.Reader, v any) error {
	hdr := make([]byte, 4)
	if _, err := readFull(r, hdr); err != nil {
		return err
	}
	n := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if n <= 0 || n > maxFrame {
		return fmt.Errorf("serve: invalid frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err := readFull(r, payload); err != nil {
		return err
	}
	return json.Unmarshal(payload, v)
}

func readFull(r io.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ServeRPC accepts RPC connections on the listener until it is closed
// (Shutdown closes every registered listener).
func (s *Server) ServeRPC(ln net.Listener) error {
	s.lifeMu.Lock()
	if s.draining {
		s.lifeMu.Unlock()
		ln.Close()
		return nil
	}
	s.lns[ln] = struct{}{}
	s.lifeMu.Unlock()
	defer func() {
		s.lifeMu.Lock()
		delete(s.lns, ln)
		s.lifeMu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if s.connHook != nil {
			conn = s.connHook(conn)
		}
		s.lifeMu.Lock()
		if s.draining {
			s.lifeMu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.lifeMu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.lifeMu.Lock()
		delete(s.conns, conn)
		s.lifeMu.Unlock()
	}()
	for {
		var req Request
		if err := readFrame(conn, &req); err != nil {
			return // client closed or sent garbage; drop the connection
		}
		if !s.beginRequest() {
			return // draining: the client sees the connection close
		}
		var err error
		if req.Op == OpStream {
			err = s.serveStreamRPC(conn, req)
		} else {
			err = writeFrame(conn, s.handleRPC(req))
		}
		s.inflight.Done()
		if err != nil {
			return
		}
	}
}

// handleRPC dispatches one RPC frame by op.
func (s *Server) handleRPC(req Request) any {
	switch req.Op {
	case "":
		resp, err := s.predict(context.Background(), req, "rpc")
		if err != nil {
			return Response{Model: s.modelName, Error: err.Error()}
		}
		return resp
	case "metrics":
		var sb strings.Builder
		if s.reg == nil {
			return OpResponse{Model: s.modelName, Error: "metrics disabled"}
		}
		if err := s.reg.WritePrometheus(&sb); err != nil {
			return OpResponse{Model: s.modelName, Error: err.Error()}
		}
		return OpResponse{Model: s.modelName, Metrics: sb.String()}
	case "health":
		return OpResponse{Status: "ok", Model: s.modelName}
	case OpStats:
		st := s.Stats()
		return OpResponse{Model: s.modelName, Stats: &st}
	case OpAdmin:
		return s.handleAdminRPC(req)
	default:
		s.countError("rpc", "unknown_op")
		return OpResponse{Model: s.modelName, Error: "unknown op " + req.Op}
	}
}

// beginRequest marks one RPC request in flight unless the server is
// draining.
func (s *Server) beginRequest() bool {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// Shutdown drains the RPC side: stop accepting, let in-flight requests
// finish (bounded by ctx), then close the persistent connections. It
// returns ctx.Err() if the deadline expired before the drain completed.
// The server refuses new work afterwards.
func (s *Server) Shutdown(ctx context.Context) error {
	s.lifeMu.Lock()
	s.draining = true
	for ln := range s.lns {
		ln.Close()
	}
	s.lifeMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}

	s.lifeMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.lifeMu.Unlock()
	return err
}

// ErrClientBroken is returned by every call on a Client whose connection
// previously failed mid-exchange. The framing state of such a connection is
// undefined (a partial frame may have been written or read), so reusing it
// would desynchronise every later call; reconnect with Dial instead.
var ErrClientBroken = errors.New("serve: client connection broken by a previous I/O error; redial")

// Client is an RPC client holding one persistent connection.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	broken  bool
	timeout time.Duration // per-round-trip I/O deadline; 0 = none
}

// Dial connects an RPC client to addr.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, nil)
}

// DialWith connects an RPC client to addr and, when wrap is non-nil, runs
// the connection through it before use — the client-side transport seam for
// the resilience package's fault injector.
func DialWith(addr string, wrap func(net.Conn) net.Conn) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if wrap != nil {
		conn = wrap(conn)
	}
	return &Client{conn: conn}, nil
}

// SetTimeout bounds every subsequent round trip's I/O (write + read) by d.
// A round trip that exceeds it fails with a deadline error and, like any
// other mid-exchange failure, breaks the client. Zero disables the bound.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// Broken reports whether a previous I/O failure has condemned the
// connection (every later call fails fast with ErrClientBroken).
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// roundTrip performs one framed exchange. Any failure mid-exchange leaves
// the connection's framing state undefined, so the client marks itself
// broken and fails every later call fast instead of silently desyncing.
func (c *Client) roundTrip(req Request, resp any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return ErrClientBroken
	}
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	if err := writeFrame(c.conn, req); err != nil {
		c.broken = true
		return err
	}
	if err := readFrame(c.conn, resp); err != nil {
		c.broken = true
		return err
	}
	return nil
}

// Predict performs one prediction round trip. A server-side rejection
// (e.g. overload shedding) is returned as an error; the connection remains
// healthy in that case.
func (c *Client) Predict(req Request) (Response, error) {
	var resp Response
	if err := c.roundTrip(req, &resp); err != nil {
		return Response{}, err
	}
	if resp.Error != "" {
		return Response{}, errors.New("serve: " + resp.Error)
	}
	return resp, nil
}

// Metrics fetches the server's Prometheus text dump over RPC.
func (c *Client) Metrics() (string, error) {
	var resp OpResponse
	if err := c.roundTrip(Request{Op: "metrics"}, &resp); err != nil {
		return "", err
	}
	if resp.Error != "" {
		return "", errors.New("serve: " + resp.Error)
	}
	return resp.Metrics, nil
}

// Health performs a liveness round trip over RPC.
func (c *Client) Health() (OpResponse, error) {
	var resp OpResponse
	err := c.roundTrip(Request{Op: "health"}, &resp)
	return resp, err
}

// Stats fetches the server's counter snapshot over RPC (op "stats"). A
// server that predates the op answers with an error; the connection stays
// healthy either way.
func (c *Client) Stats() (Stats, error) {
	var resp OpResponse
	if err := c.roundTrip(Request{Op: OpStats}, &resp); err != nil {
		return Stats{}, err
	}
	if resp.Error != "" {
		return Stats{}, errors.New("serve: " + resp.Error)
	}
	if resp.Stats == nil {
		return Stats{}, errors.New("serve: stats op answered without a stats payload")
	}
	return *resp.Stats, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }
