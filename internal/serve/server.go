// Package serve implements the inference service of the paper's Demo/Plugin
// section: model predictions exposed over a JSON REST API and a compact
// binary RPC protocol (the stdlib substitute for the paper's GRPC
// interface), plus the response cache the paper lists as its latency
// roadmap item. The examples/editor-plugin program drives this service the
// way the paper's Visual Studio Code plugin drives theirs.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Predictor is the model-side interface the server needs; *wisdom.Model
// satisfies it.
type Predictor interface {
	Predict(context, prompt string) string
}

// Request is one completion request: the natural-language intent plus the
// optional Ansible context preceding the cursor.
type Request struct {
	// Prompt is the task description the user typed after "- name:".
	Prompt string `json:"prompt"`
	// Context is the file content above the prompt (may be empty).
	Context string `json:"context,omitempty"`
}

// Response carries the suggestion back to the editor.
type Response struct {
	// Suggestion is the completed task (name line plus body).
	Suggestion string `json:"suggestion"`
	// Cached reports whether the suggestion came from the response cache.
	Cached bool `json:"cached"`
	// LatencyMS is the server-side handling time in milliseconds.
	LatencyMS float64 `json:"latency_ms"`
	// Model names the serving model.
	Model string `json:"model"`
}

// Server serves predictions over HTTP and the binary RPC protocol.
type Server struct {
	model     Predictor
	modelName string
	cache     *Cache
	mu        sync.Mutex
	requests  int
}

// NewServer wraps a predictor. cacheSize <= 0 disables the cache.
func NewServer(model Predictor, modelName string, cacheSize int) *Server {
	s := &Server{model: model, modelName: modelName}
	if cacheSize > 0 {
		s.cache = NewCache(cacheSize)
	}
	return s
}

// Requests returns the number of predictions served (both protocols).
func (s *Server) Requests() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

// predict answers one request, consulting the cache first.
func (s *Server) predict(req Request) Response {
	start := time.Now()
	s.mu.Lock()
	s.requests++
	s.mu.Unlock()

	key := req.Context + "\x00" + req.Prompt
	if s.cache != nil {
		if v, ok := s.cache.Get(key); ok {
			return Response{Suggestion: v, Cached: true, LatencyMS: ms(start), Model: s.modelName}
		}
	}
	suggestion := s.model.Predict(req.Context, req.Prompt)
	if s.cache != nil {
		s.cache.Put(key, suggestion)
	}
	return Response{Suggestion: suggestion, LatencyMS: ms(start), Model: s.modelName}
}

func ms(start time.Time) float64 { return float64(time.Since(start).Microseconds()) / 1000 }

// ---- REST ----

// Handler returns the HTTP handler exposing the REST API:
//
//	POST /v1/completions  {"prompt": ..., "context": ...} -> Response
//	GET  /v1/health       -> {"status": "ok", "model": ...}
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/completions", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, `{"error":"method not allowed"}`, http.StatusMethodNotAllowed)
			return
		}
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf(`{"error":%q}`, "bad request: "+err.Error()), http.StatusBadRequest)
			return
		}
		if strings.TrimSpace(req.Prompt) == "" {
			http.Error(w, `{"error":"prompt is required"}`, http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s.predict(req)); err != nil {
			// Too late for a status change; the connection is gone.
			return
		}
	})
	mux.HandleFunc("/v1/health", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","model":%q,"requests":%d}`+"\n", s.modelName, s.Requests())
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s.Stats()); err != nil {
			return
		}
	})
	return mux
}

// Stats summarises the server's counters for the /v1/stats endpoint.
type Stats struct {
	Model        string  `json:"model"`
	Requests     int     `json:"requests"`
	CacheEnabled bool    `json:"cache_enabled"`
	CacheEntries int     `json:"cache_entries"`
	CacheHits    int     `json:"cache_hits"`
	CacheMisses  int     `json:"cache_misses"`
	HitRate      float64 `json:"hit_rate"`
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	st := Stats{Model: s.modelName, Requests: s.Requests()}
	if s.cache != nil {
		st.CacheEnabled = true
		st.CacheEntries = s.cache.Len()
		st.CacheHits, st.CacheMisses = s.cache.Stats()
		if total := st.CacheHits + st.CacheMisses; total > 0 {
			st.HitRate = float64(st.CacheHits) / float64(total)
		}
	}
	return st
}

// ListenHTTP serves the REST API on addr until the listener fails.
func (s *Server) ListenHTTP(addr string) error {
	return http.ListenAndServe(addr, s.Handler())
}

// ---- binary RPC (the GRPC stand-in) ----

// The wire protocol is length-prefixed JSON frames over TCP: a 4-byte
// big-endian frame length followed by the JSON payload, in both directions;
// one request frame yields one response frame. This keeps the transport
// dependency-free while preserving the GRPC call shape (typed request,
// typed response, persistent connection, multiplexed calls in sequence).

const maxFrame = 1 << 20 // 1 MiB per frame is far beyond any playbook

// writeFrame writes one length-prefixed JSON frame.
func writeFrame(conn net.Conn, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("serve: frame of %d bytes exceeds limit", len(payload))
	}
	hdr := []byte{byte(len(payload) >> 24), byte(len(payload) >> 16), byte(len(payload) >> 8), byte(len(payload))}
	if _, err := conn.Write(hdr); err != nil {
		return err
	}
	_, err = conn.Write(payload)
	return err
}

// readFrame reads one length-prefixed JSON frame into v.
func readFrame(conn net.Conn, v any) error {
	hdr := make([]byte, 4)
	if _, err := readFull(conn, hdr); err != nil {
		return err
	}
	n := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if n <= 0 || n > maxFrame {
		return fmt.Errorf("serve: invalid frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err := readFull(conn, payload); err != nil {
		return err
	}
	return json.Unmarshal(payload, v)
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := conn.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ServeRPC accepts RPC connections on the listener until it is closed.
func (s *Server) ServeRPC(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		var req Request
		if err := readFrame(conn, &req); err != nil {
			return // client closed or sent garbage; drop the connection
		}
		if err := writeFrame(conn, s.predict(req)); err != nil {
			return
		}
	}
}

// Client is an RPC client holding one persistent connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects an RPC client to addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Predict performs one RPC round trip.
func (c *Client) Predict(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := readFrame(c.conn, &resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }
