package serve

import (
	"context"
	"net"
	"testing"
	"time"
)

// TestClientStatsOp drives op:"stats" through the typed client helper: the
// snapshot reflects served work and the connection stays usable afterwards.
func TestClientStatsOp(t *testing.T) {
	srv := NewServerWithOptions(&echoModel{}, "m", Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.ServeRPC(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Predict(Request{Context: "ctx", Prompt: "hello"}); err != nil {
		t.Fatalf("Predict: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Requests < 1 {
		t.Errorf("stats snapshot counted %d requests, want >= 1", st.Requests)
	}
	if _, err := c.Predict(Request{Context: "ctx", Prompt: "again"}); err != nil {
		t.Errorf("connection unusable after stats op: %v", err)
	}
}
