package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wisdom/internal/observe"
)

// batchEchoModel implements BatchPredictor and records the batch sizes its
// PredictBatch/Predict calls saw.
type batchEchoModel struct {
	mu     sync.Mutex
	sizes  []int
	nCalls atomic.Int64
}

func (m *batchEchoModel) answerOne(context, prompt string) string {
	return "- name: " + prompt
}

func (m *batchEchoModel) Predict(context, prompt string) string {
	m.record(1)
	return m.answerOne(context, prompt)
}

func (m *batchEchoModel) PredictBatch(contexts, prompts []string) []string {
	m.record(len(prompts))
	out := make([]string, len(prompts))
	for i := range prompts {
		out[i] = m.answerOne(contexts[i], prompts[i])
	}
	return out
}

func (m *batchEchoModel) record(n int) {
	m.nCalls.Add(1)
	m.mu.Lock()
	m.sizes = append(m.sizes, n)
	m.mu.Unlock()
}

func (m *batchEchoModel) batchSizes() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]int(nil), m.sizes...)
}

// TestBatcherGathersConcurrentRequests drives more distinct concurrent
// requests than maxBatch through a batching server and checks that every
// caller gets its own correct answer and that at least one model call
// served multiple requests.
func TestBatcherGathersConcurrentRequests(t *testing.T) {
	model := &batchEchoModel{}
	s := NewServerWithOptions(model, "batch-test", Options{
		CacheSize:   0,
		Workers:     2,
		BatchWindow: 20 * time.Millisecond,
		MaxBatch:    4,
	})
	if s.batcher == nil {
		t.Fatal("batcher not enabled")
	}
	const N = 12
	results := make([]string, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.predict(context.Background(),
				Request{Prompt: fmt.Sprintf("task %d", i)}, "http")
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			results[i] = resp.Suggestion
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if want := fmt.Sprintf("- name: task %d", i); got != want {
			t.Errorf("request %d got %q, want %q", i, got, want)
		}
	}
	multi := false
	for _, n := range model.batchSizes() {
		if n > s.batcher.maxBatch {
			t.Errorf("batch of %d exceeds maxBatch %d", n, s.batcher.maxBatch)
		}
		if n > 1 {
			multi = true
		}
	}
	if !multi {
		t.Error("no request was ever batched with another")
	}
}

// TestBatcherSizeTriggerFlushesEarly checks that a full batch decodes
// without waiting out the window.
func TestBatcherSizeTriggerFlushesEarly(t *testing.T) {
	model := &batchEchoModel{}
	s := NewServerWithOptions(model, "batch-test", Options{
		Workers:     1,
		BatchWindow: 10 * time.Second, // would time the test out if waited on
		MaxBatch:    2,
	})
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.predict(context.Background(),
				Request{Prompt: fmt.Sprintf("p%d", i)}, "http"); err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("size-triggered flush took %v; the window timer must not gate a full batch", elapsed)
	}
}

// TestBatcherWindowTriggerFlushesLoneRequest checks that a lone request is
// answered after one window even when the batch never fills.
func TestBatcherWindowTriggerFlushesLoneRequest(t *testing.T) {
	model := &batchEchoModel{}
	s := NewServerWithOptions(model, "batch-test", Options{
		Workers:     1,
		BatchWindow: 5 * time.Millisecond,
		MaxBatch:    8,
	})
	resp, err := s.predict(context.Background(), Request{Prompt: "alone"}, "http")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Suggestion != "- name: alone" {
		t.Errorf("lone batched request answered %q", resp.Suggestion)
	}
}

// errExec simulates a batch decode failure (e.g. pool admission timeout).
func TestBatcherErrorFansOutToAllWaiters(t *testing.T) {
	boom := errors.New("decode failed")
	b := newBatcher(5*time.Millisecond, 4, func(reqs []Request) ([]string, error) {
		return nil, boom
	})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.do(context.Background(), Request{Prompt: fmt.Sprintf("p%d", i)}); !errors.Is(err, boom) {
				t.Errorf("waiter %d got %v, want the exec error", i, err)
			}
		}(i)
	}
	wg.Wait()
}

// TestBatcherCallerContextExpiry checks that an impatient caller gets its
// context error while the batch still completes for the others.
func TestBatcherCallerContextExpiry(t *testing.T) {
	release := make(chan struct{})
	b := newBatcher(time.Millisecond, 8, func(reqs []Request) ([]string, error) {
		<-release
		out := make([]string, len(reqs))
		for i, r := range reqs {
			out[i] = r.Prompt
		}
		return out, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	impatient := make(chan error, 1)
	go func() {
		_, err := b.do(ctx, Request{Prompt: "impatient"})
		impatient <- err
	}()
	patient := make(chan string, 1)
	go func() {
		v, _ := b.do(context.Background(), Request{Prompt: "patient"})
		patient <- v
	}()
	time.Sleep(10 * time.Millisecond) // let both join and the window fire
	cancel()
	if err := <-impatient; !errors.Is(err, context.Canceled) {
		t.Errorf("impatient caller got %v, want context.Canceled", err)
	}
	close(release)
	if v := <-patient; v != "patient" {
		t.Errorf("patient caller got %q", v)
	}
}

// TestBatcherDisabledByDefault: the zero Options keep the per-request path
// even for a batch-capable model.
func TestBatcherDisabledByDefault(t *testing.T) {
	s := NewServerWithOptions(&batchEchoModel{}, "m", Options{Workers: 1})
	if s.batcher != nil {
		t.Error("batcher enabled without BatchWindow/MaxBatch")
	}
	// And a non-batching model never gets one, whatever the options say.
	s = NewServerWithOptions(&echoModel{}, "m", Options{
		Workers: 1, BatchWindow: time.Millisecond, MaxBatch: 4,
	})
	if s.batcher != nil {
		t.Error("batcher enabled for a model without PredictBatch")
	}
}

// TestBatchSizeMetricRecorded checks the wisdom_batch_size histogram counts
// one observation per flushed batch.
func TestBatchSizeMetricRecorded(t *testing.T) {
	model := &batchEchoModel{}
	s := NewServerWithOptions(model, "batch-test", Options{
		Workers:     1,
		BatchWindow: 5 * time.Millisecond,
		MaxBatch:    4,
	})
	reg := observe.NewRegistry()
	s.Instrument(reg)
	if _, err := s.predict(context.Background(), Request{Prompt: "one"}, "http"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	if !strings.Contains(body, "wisdom_batch_size_count 1") {
		t.Errorf("wisdom_batch_size did not record the flush:\n%s", body)
	}
}

// TestBatchedResultsCached checks the batching path still feeds the LRU.
func TestBatchedResultsCached(t *testing.T) {
	model := &batchEchoModel{}
	s := NewServerWithOptions(model, "batch-test", Options{
		CacheSize:   8,
		Workers:     1,
		BatchWindow: time.Millisecond,
		MaxBatch:    4,
	})
	first, err := s.predict(context.Background(), Request{Prompt: "cache me"}, "http")
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.predict(context.Background(), Request{Prompt: "cache me"}, "http")
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("repeat request missed the cache")
	}
	if second.Suggestion != first.Suggestion {
		t.Errorf("cached answer %q differs from original %q", second.Suggestion, first.Suggestion)
	}
	if n := model.nCalls.Load(); n != 1 {
		t.Errorf("model invoked %d times, want 1", n)
	}
}
