package serve

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
	"unicode/utf8"
)

// FuzzDecodeFrame drives the RPC frame decoder with arbitrary bytes: it
// must reject malformed frames with an error, never panic or over-allocate
// (the length prefix is attacker-controlled on a listening socket).
func FuzzDecodeFrame(f *testing.F) {
	frame := func(payload []byte) []byte {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		return append(hdr[:], payload...)
	}
	f.Add(frame([]byte(`{"prompt":"install nginx"}`)))
	f.Add(frame([]byte(`{}`)))
	f.Add(frame([]byte(`not json`)))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})       // oversized length prefix
	f.Add([]byte{0, 0, 0, 10, 'x'})             // truncated payload
	f.Add([]byte{0, 0})                         // truncated header
	f.Add(frame(nil))                           // zero-length frame
	f.Add(append(frame([]byte(`{}`)), 0, 0, 0)) // trailing garbage
	// Streaming frames ride the same codec: request, delta, terminal and
	// error frames all must survive the decoder.
	f.Add(frame([]byte(`{"prompt":"install nginx","op":"stream"}`)))
	f.Add(frame([]byte(`{"type":"delta","seq":0,"delta":"- name: x\n"}`)))
	f.Add(frame([]byte(`{"type":"done","seq":3,"final":{"suggestion":"- name: x\n","model":"m","replaced":true}}`)))
	f.Add(frame([]byte(`{"type":"error","seq":0,"error":"serve: overloaded"}`)))
	f.Add(frame([]byte(`{"type":"done","seq":1}`))) // done without final: protocol violation, must still decode
	f.Add(frame([]byte(`{"type":"delta","seq":-1,"delta":""}`)))
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := readFrame(bytes.NewReader(data), &req); err != nil {
			return
		}
		// An accepted frame is well-formed by construction: re-encoding the
		// decoded value must produce a frame the decoder accepts again.
		var buf bytes.Buffer
		if err := writeFrame(&buf, req); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		var again Request
		if err := readFrame(bytes.NewReader(buf.Bytes()), &again); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again != req {
			t.Fatalf("round trip changed the request: %+v vs %+v", req, again)
		}
	})
}

// FuzzEncodeFrame: any JSON-encodable request must produce a frame that
// decodes back to an identical value.
func FuzzEncodeFrame(f *testing.F) {
	f.Add("install nginx", "ctx: 1\n", "")
	f.Add("", "", "health")
	f.Add("prompt with \x00 byte", "multi\nline", "metrics")
	f.Fuzz(func(t *testing.T, prompt, context, op string) {
		if !utf8.ValidString(prompt) || !utf8.ValidString(context) || !utf8.ValidString(op) {
			// encoding/json replaces invalid UTF-8 with U+FFFD, so such
			// strings legitimately do not round-trip byte-for-byte.
			return
		}
		req := Request{Prompt: prompt, Context: context, Op: op}
		var buf bytes.Buffer
		if err := writeFrame(&buf, req); err != nil {
			return // oversized frames are legitimately rejected
		}
		var got Request
		if err := readFrame(bytes.NewReader(buf.Bytes()), &got); err != nil {
			t.Fatalf("decode of encoded frame failed: %v", err)
		}
		if got != req {
			t.Fatalf("round trip changed the request: %+v vs %+v", req, got)
		}
	})
}

// FuzzDecodeStreamFrame drives the decoder through the streaming frame
// shape (which nests a *Response): arbitrary bytes must never panic, and
// any accepted StreamFrame must round-trip through the encoder unchanged.
func FuzzDecodeStreamFrame(f *testing.F) {
	frame := func(payload []byte) []byte {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		return append(hdr[:], payload...)
	}
	f.Add(frame([]byte(`{"type":"delta","seq":0,"delta":"- name: install nginx\n"}`)))
	f.Add(frame([]byte(`{"type":"done","seq":5,"final":{"suggestion":"s","cached":true,"latency_ms":1.5,"model":"m"}}`)))
	f.Add(frame([]byte(`{"type":"done","seq":2,"final":{"suggestion":"s","degraded":true,"replaced":true,"model":"m"}}`)))
	f.Add(frame([]byte(`{"type":"error","seq":0,"error":"serve: overloaded: worker pool and queue full"}`)))
	f.Add(frame([]byte(`{"type":"","seq":0}`)))
	f.Add(frame([]byte(`{"final":{}}`)))
	f.Add(frame([]byte(`not json`)))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr StreamFrame
		if err := readFrame(bytes.NewReader(data), &fr); err != nil {
			return
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, fr); err != nil {
			t.Fatalf("re-encode of accepted stream frame failed: %v", err)
		}
		var again StreamFrame
		if err := readFrame(bytes.NewReader(buf.Bytes()), &again); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		// StreamFrame nests a pointer, so equality is structural.
		if !reflect.DeepEqual(again, fr) {
			t.Fatalf("round trip changed the frame: %+v vs %+v", fr, again)
		}
	})
}
