package serve

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// BatchPredictor is implemented by models that can answer several
// independent requests in one decode (*wisdom.Model with a transformer LM).
// PredictBatch must return one suggestion per request, each identical to
// what a serial Predict call would produce.
type BatchPredictor interface {
	Predictor
	PredictBatch(contexts, prompts []string) []string
}

// batchItem is one request waiting in the micro-batch gatherer.
type batchItem struct {
	req  Request
	val  string
	err  error
	done chan struct{} // closed once val/err are set
}

// batcher gathers concurrent non-identical requests into one batched model
// invocation. The first request of a batch arms a window timer; requests
// arriving inside the window join the batch, and the batch flushes when the
// window elapses or maxBatch requests have gathered, whichever comes first.
// Identical requests never reach the batcher — the singleflight group in
// front of it coalesces them into one row.
//
// A lone request therefore pays up to one window of extra latency in
// exchange for amortising the model's weight traversal across every
// concurrent request — the standard micro-batching trade, tuned by
// -batch-window and -max-batch.
type batcher struct {
	window   time.Duration
	maxBatch int
	exec     func([]Request) ([]string, error)

	mu      sync.Mutex
	pending []*batchItem
	// gen counts flushes. The window timer captures the generation it was
	// armed for and gives up if the batch already flushed on the size
	// trigger — without this a stale timer would flush the NEXT batch early.
	gen uint64
}

func newBatcher(window time.Duration, maxBatch int, exec func([]Request) ([]string, error)) *batcher {
	return &batcher{window: window, maxBatch: maxBatch, exec: exec}
}

// do submits one request and blocks until its batch has been decoded or ctx
// expires. On ctx expiry the batch still runs — other waiters need it — but
// this caller stops waiting for the result.
func (b *batcher) do(ctx context.Context, req Request) (string, error) {
	it := &batchItem{req: req, done: make(chan struct{})}
	b.mu.Lock()
	b.pending = append(b.pending, it)
	switch n := len(b.pending); {
	case n >= b.maxBatch:
		items := b.takeLocked()
		b.mu.Unlock()
		b.flush(items) // size trigger: decode on this caller's goroutine
	case n == 1:
		gen := b.gen
		b.mu.Unlock()
		time.AfterFunc(b.window, func() { b.flushTimer(gen) })
	default:
		b.mu.Unlock()
	}
	select {
	case <-it.done:
		return it.val, it.err
	case <-ctx.Done():
		return "", ctx.Err()
	}
}

// takeLocked detaches the pending batch; the caller must hold mu.
func (b *batcher) takeLocked() []*batchItem {
	items := b.pending
	b.pending = nil
	b.gen++
	return items
}

// flushTimer is the window-elapsed trigger.
func (b *batcher) flushTimer(gen uint64) {
	b.mu.Lock()
	if b.gen != gen || len(b.pending) == 0 {
		b.mu.Unlock()
		return // this batch already flushed on the size trigger
	}
	items := b.takeLocked()
	b.mu.Unlock()
	b.flush(items)
}

// flush decodes one detached batch and fans the results out to the waiters.
// A predictor that returns the wrong number of results with a nil error is
// treated as an error for the whole batch: every waiter gets a clear failure
// instead of the serving goroutine panicking on the short slice and
// stranding them all.
func (b *batcher) flush(items []*batchItem) {
	reqs := make([]Request, len(items))
	for i, it := range items {
		reqs[i] = it.req
	}
	vals, err := b.exec(reqs)
	if err == nil && len(vals) != len(items) {
		err = fmt.Errorf("serve: batch predictor returned %d results for %d requests", len(vals), len(items))
	}
	for i, it := range items {
		if err != nil {
			it.err = err
		} else {
			it.val = vals[i]
		}
		close(it.done)
	}
}
