package serve

import (
	"context"
	"sync"
	"sync/atomic"
)

// Flight coalesces concurrent calls that share a key: the first caller
// (the leader) runs fn, everyone else waits for the leader's result, and the
// answer fans out to all of them. In front of the response cache this turns
// N simultaneous misses on one context+prompt into exactly one model
// invocation — the cache alone cannot do that, because every miss that
// arrives before the first Put runs its own generation and the last writer
// wins the slot.
//
// Flight is exported (alongside Cache and Pool) so both serving tiers share
// one implementation of the admission stack: the replica coalesces in front
// of its model, and the router tier coalesces in front of the backend ring,
// so duplicate traffic collapses before it crosses the network.
type Flight struct {
	mu sync.Mutex
	m  map[string]*flightCall
	// abandoned counts waiters whose ctx expired before the leader finished:
	// they joined a flight but never received a shared answer, so they are
	// not coalesced successes and must not inflate that metric.
	abandoned atomic.Uint64
}

// flightCall is one in-flight computation.
type flightCall struct {
	done     chan struct{} // closed when val/err are final
	val      string
	degraded bool
	err      error
	waiters  atomic.Int64 // coalesced callers currently blocked on done
}

// NewFlight builds an empty coalescing group.
func NewFlight() *Flight {
	return &Flight{m: make(map[string]*flightCall)}
}

// Do returns the result of fn for key, coalescing concurrent duplicates.
// coalesced reports whether this caller shared another caller's invocation
// rather than running fn itself. A waiter whose ctx ends before the leader
// finishes returns ctx.Err(); the leader itself is never cancelled — its
// result still lands in the cache for the next request. A leader's error
// (e.g. pool shed) fans out to every waiter, which is the behaviour that
// keeps an overloaded key from multiplying into one model call per waiter.
func (g *Flight) Do(ctx context.Context, key string, fn func() (string, error)) (val string, coalesced bool, err error) {
	val, _, coalesced, err = g.DoDegraded(ctx, key, func() (string, bool, error) {
		v, err := fn()
		return v, false, err
	})
	return val, coalesced, err
}

// DoDegraded is Do with a degradation flag threaded through: the leader's
// flag fans out to every waiter alongside the value, so a coalesced caller
// sharing a degraded answer reports it degraded too.
func (g *Flight) DoDegraded(ctx context.Context, key string, fn func() (string, bool, error)) (val string, degraded, coalesced bool, err error) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		c.waiters.Add(1)
		g.mu.Unlock()
		defer c.waiters.Add(-1)
		select {
		case <-c.done:
			return c.val, c.degraded, true, c.err
		case <-ctx.Done():
			// The waiter leaves without a shared answer: count it as
			// abandoned, not coalesced, so wisdom_coalesced_requests_total
			// only ever counts fan-outs that actually happened.
			g.abandoned.Add(1)
			return "", false, false, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.degraded, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.degraded, false, c.err
}

// Abandoned returns how many waiters left a flight on ctx expiry without
// receiving the shared answer.
func (g *Flight) Abandoned() uint64 { return g.abandoned.Load() }

// Pending returns the number of callers currently waiting on key's leader
// (zero when no flight is active). Test/metrics hook.
func (g *Flight) Pending(key string) int {
	g.mu.Lock()
	c := g.m[key]
	g.mu.Unlock()
	if c == nil {
		return 0
	}
	return int(c.waiters.Load())
}
