// Admin surface: the authenticated fleet-administration exchange that lets
// an operator add, drain and remove router backends at runtime. The serve
// layer owns decoding, validation and token authentication; the membership
// semantics live behind the AdminHandler seam (implemented by
// *router.Router). docs/PROTOCOL.md §7 is the normative specification.

package serve

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// OpAdmin is the Request.Op selecting a fleet-administration exchange. The
// request carries an AdminRequest in Request.Admin; the answer is an
// OpResponse whose Admin field holds the AdminResponse. Unknown to servers
// predating it, which answer with the standard unknown-op error (see
// docs/PROTOCOL.md versioning).
const OpAdmin = "admin"

// AdminTokenHeader is the HTTP header carrying the admin token when the
// AdminRequest.Token field is empty (mirroring the X-Wisdom-Session
// pattern: the JSON field wins when both are present).
const AdminTokenHeader = "X-Wisdom-Admin-Token"

// Admin actions accepted by ParseAdminRequest.
const (
	// AdminStatus reports the membership table without changing it.
	AdminStatus = "status"
	// AdminJoin adds a backend: it is warmed (health-checked) first and
	// takes ring ownership only after answering.
	AdminJoin = "join"
	// AdminDrain takes a backend off the ring for new placements while its
	// in-flight work finishes; the backend stays listed as "draining".
	AdminDrain = "drain"
	// AdminRemove drains a backend, waits for its in-flight forwards to
	// finish, then closes its connections and forgets it.
	AdminRemove = "remove"
)

// maxAdminBackend bounds the backend address in an admin request; real
// host:port strings are far shorter, and the cap keeps a hostile request
// from smuggling bulk data through the admin path.
const maxAdminBackend = 256

// AdminRequest is one fleet-administration request, carried in
// Request.Admin over RPC or as the POST body of /admin/backends over HTTP.
type AdminRequest struct {
	// Action selects the operation: AdminStatus (default when empty),
	// AdminJoin, AdminDrain or AdminRemove.
	Action string `json:"action,omitempty"`
	// Backend is the RPC address the action targets; required for join,
	// drain and remove, ignored for status.
	Backend string `json:"backend,omitempty"`
	// Token authenticates the request against the server's configured
	// admin token. Over HTTP the AdminTokenHeader header sets it when this
	// field is empty. Never echoed back.
	Token string `json:"token,omitempty"`
}

// AdminMember is one backend's row in the membership table an admin
// exchange returns.
type AdminMember struct {
	// Addr is the backend's RPC address (its ring node name).
	Addr string `json:"addr"`
	// State is the membership state: "active" or "draining".
	State string `json:"state"`
	// Alive is the heartbeat verdict.
	Alive bool `json:"alive"`
	// Inflight counts forwards currently running against the backend.
	Inflight int64 `json:"inflight"`
	// RingShare is the fraction of the hash keyspace the backend owns
	// (zero while draining or dead).
	RingShare float64 `json:"ring_share"`
}

// AdminResponse answers one admin exchange: the outcome plus the
// post-action membership table, so every mutation doubles as a status read.
type AdminResponse struct {
	// Status is "ok" on success, "error" otherwise.
	Status string `json:"status"`
	// Epoch is the membership epoch after the action; two responses with
	// equal epochs observed the same membership.
	Epoch uint64 `json:"epoch"`
	// Members is the membership table, sorted by address.
	Members []AdminMember `json:"members,omitempty"`
	// Error describes why the action failed (Status "error").
	Error string `json:"error,omitempty"`
}

// AdminHandler is implemented by models that expose runtime fleet
// membership (*router.Router): HandleAdmin runs one already-authenticated,
// already-validated admin request and returns the outcome with the updated
// membership table. The serve layer owns token checking — HandleAdmin is
// never called for unauthenticated requests.
type AdminHandler interface {
	HandleAdmin(ctx context.Context, req AdminRequest) AdminResponse
}

// Admin error taxonomy (docs/PROTOCOL.md §7): the serve layer's own
// rejections, distinguished so the HTTP projection can map them to status
// codes and RPC clients can classify without string matching the cause.
var (
	// errAdminUnsupported: the model behind this server has no membership
	// to administer (a plain replica, not a router).
	errAdminUnsupported = errors.New("serve: admin: not supported by this server")
	// errAdminDisabled: no admin token was configured, so the whole
	// surface is off — fail closed rather than open.
	errAdminDisabled = errors.New("serve: admin: disabled (no admin token configured)")
	// errAdminUnauthorized: token mismatch.
	errAdminUnauthorized = errors.New("serve: admin: unauthorized")
)

// ParseAdminRequest decodes one admin request body and validates it:
// unknown JSON fields are ignored (the protocol's versioning rule), the
// action is case-normalised with "" meaning status, unknown actions are
// rejected, and the mutating actions require a plausible backend address
// (non-empty, no whitespace or control characters, bounded length).
// FuzzAdminRequest holds this decoder to those rules against arbitrary
// bytes.
func ParseAdminRequest(data []byte) (AdminRequest, error) {
	var req AdminRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return AdminRequest{}, fmt.Errorf("serve: admin: bad request body: %w", err)
	}
	return NormalizeAdminRequest(req)
}

// NormalizeAdminRequest validates an already-decoded admin request and
// canonicalises it (action lower-cased, fields trimmed). It is the shared
// validation step behind ParseAdminRequest (HTTP) and the RPC admin op,
// so both surfaces enforce identical rules.
func NormalizeAdminRequest(req AdminRequest) (AdminRequest, error) {
	req.Action = strings.ToLower(strings.TrimSpace(req.Action))
	if req.Action == "" {
		req.Action = AdminStatus
	}
	req.Backend = strings.TrimSpace(req.Backend)
	switch req.Action {
	case AdminStatus:
		return req, nil
	case AdminJoin, AdminDrain, AdminRemove:
	default:
		return AdminRequest{}, fmt.Errorf("serve: admin: unknown action %q", req.Action)
	}
	if req.Backend == "" {
		return AdminRequest{}, fmt.Errorf("serve: admin: action %q requires a backend address", req.Action)
	}
	if len(req.Backend) > maxAdminBackend {
		return AdminRequest{}, fmt.Errorf("serve: admin: backend address longer than %d bytes", maxAdminBackend)
	}
	for _, c := range req.Backend {
		if c <= ' ' || c == 0x7f {
			return AdminRequest{}, fmt.Errorf("serve: admin: backend address contains whitespace or control characters")
		}
	}
	return req, nil
}

// adminDispatch authenticates and runs one admin request. Auth comes
// first and fails closed: no handler, no configured token, or a token
// mismatch all reject before any validation detail leaks.
func (s *Server) adminDispatch(ctx context.Context, req AdminRequest) (AdminResponse, error) {
	if s.admin == nil {
		return AdminResponse{}, errAdminUnsupported
	}
	if s.adminToken == "" {
		return AdminResponse{}, errAdminDisabled
	}
	if subtle.ConstantTimeCompare([]byte(req.Token), []byte(s.adminToken)) != 1 {
		return AdminResponse{}, errAdminUnauthorized
	}
	norm, err := NormalizeAdminRequest(req)
	if err != nil {
		return AdminResponse{}, err
	}
	norm.Token = "" // the handler never sees credentials
	return s.admin.HandleAdmin(ctx, norm), nil
}

// handleAdminRPC answers one op:"admin" frame.
func (s *Server) handleAdminRPC(req Request) OpResponse {
	var ar AdminRequest
	if req.Admin != nil {
		ar = *req.Admin
	}
	resp, err := s.adminDispatch(context.Background(), ar)
	if err != nil {
		s.countError("rpc", "admin_rejected")
		return OpResponse{Model: s.modelName, Error: err.Error()}
	}
	return OpResponse{Status: resp.Status, Model: s.modelName, Admin: &resp}
}

// handleAdminHTTP answers /admin/backends: GET is a status read, POST runs
// the action in the JSON body. The error taxonomy maps onto status codes —
// 400 malformed/invalid, 401 unauthorized (or surface disabled), 404 not
// supported, 405 method, 409 for a membership action the handler refused
// (unknown backend, duplicate join, last backend, drain timeout).
func (s *Server) handleAdminHTTP(w http.ResponseWriter, r *http.Request) {
	var req AdminRequest
	switch r.Method {
	case http.MethodGet:
		req = AdminRequest{Action: AdminStatus}
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, s.maxBody+1))
		if err != nil || int64(len(body)) > s.maxBody {
			s.countError("http", "admin_rejected")
			http.Error(w, `{"error":"serve: admin: request body unreadable or too large"}`, http.StatusRequestEntityTooLarge)
			return
		}
		req, err = ParseAdminRequest(body)
		if err != nil {
			s.countError("http", "admin_rejected")
			http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
			return
		}
	default:
		s.countError("http", "admin_rejected")
		http.Error(w, `{"error":"serve: admin: use GET (status) or POST (action)"}`, http.StatusMethodNotAllowed)
		return
	}
	if req.Token == "" {
		req.Token = r.Header.Get(AdminTokenHeader)
	}
	resp, err := s.adminDispatch(r.Context(), req)
	if err != nil {
		s.countError("http", "admin_rejected")
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, errAdminUnauthorized), errors.Is(err, errAdminDisabled):
			code = http.StatusUnauthorized
		case errors.Is(err, errAdminUnsupported):
			code = http.StatusNotFound
		}
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if resp.Status != "ok" {
		w.WriteHeader(http.StatusConflict)
	}
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		return
	}
}

// AdminMux returns an HTTP handler exposing only the admin surface
// (/admin/backends) — what wisdom-router serves on its dedicated -admin
// listener, so membership control can bind to an operator-only interface
// while the data plane faces the world.
func (s *Server) AdminMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/admin/backends", s.handleAdminHTTP)
	return mux
}

// Admin performs one fleet-administration exchange (op "admin") against
// the server, returning the outcome and post-action membership table. A
// server-delivered rejection (bad token, unknown backend, …) comes back
// as an error with the connection healthy, like every in-band op error.
func (c *Client) Admin(req AdminRequest) (AdminResponse, error) {
	var resp OpResponse
	if err := c.roundTrip(Request{Op: OpAdmin, Admin: &req}, &resp); err != nil {
		return AdminResponse{}, err
	}
	if resp.Error != "" {
		return AdminResponse{}, errors.New(resp.Error)
	}
	if resp.Admin == nil {
		return AdminResponse{}, errors.New("serve: admin: malformed response (no admin payload)")
	}
	return *resp.Admin, nil
}
