package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"wisdom/internal/observe"
)

// slowModel blocks until released, for shutdown-drain tests.
type slowModel struct {
	started chan struct{}
	release chan struct{}
}

func (m *slowModel) Predict(_, prompt string) string {
	m.started <- struct{}{}
	<-m.release
	return "- name: " + prompt + "\n"
}

// parsePromText is a strict reader of the Prometheus text exposition
// format: every sample line must be `name{labels} value` with a valid float
// and a preceding TYPE comment. It returns the sample map.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "" || strings.HasPrefix(line, "# HELP "):
			continue
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[fields[2]] = true
			continue
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unexpected comment %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line %q has no value", line)
		}
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		key := line[:sp]
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("sample %q: unterminated labels", line)
			}
			name = key[:i]
		}
		covered := typed[name]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if typed[strings.TrimSuffix(name, suffix)] {
				covered = true
			}
		}
		if !covered {
			t.Fatalf("sample %q has no preceding TYPE line", line)
		}
		samples[key] = val
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

func postCompletion(t *testing.T, ts *httptest.Server, prompt string) Response {
	t.Helper()
	body, _ := json.Marshal(Request{Prompt: prompt})
	resp, err := ts.Client().Post(ts.URL+"/v1/completions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestMetricsEndpoint(t *testing.T) {
	srv := NewServer(&echoModel{}, "metrics-model", 8)
	srv.Instrument(observe.NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postCompletion(t, ts, "install nginx") // miss
	postCompletion(t, ts, "install nginx") // hit

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, string(raw))

	want := map[string]float64{
		`wisdom_requests_total{proto="http"}`:                 2,
		`wisdom_request_duration_seconds_count{proto="http"}`: 2,
		`wisdom_cache_hits_total`:                             1,
		`wisdom_cache_misses_total`:                           1,
		`wisdom_cache_evictions_total`:                        0,
		`wisdom_cache_entries`:                                1,
		`wisdom_cached_responses_total`:                       1,
	}
	for k, v := range want {
		got, ok := samples[k]
		if !ok || got != v {
			t.Errorf("%s = %v (present %v), want %v", k, got, ok, v)
		}
	}
	if samples[`wisdom_served_tokens_total`] == 0 {
		t.Error("served tokens not counted")
	}
	if _, ok := samples[`wisdom_served_tokens_per_second`]; !ok {
		t.Error("tokens/sec gauge missing")
	}
}

func TestMetricsDisabled(t *testing.T) {
	srv := NewServer(&echoModel{}, "m", 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("uninstrumented /metrics status = %d, want 404", resp.StatusCode)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	srv := NewServer(&echoModel{}, "probe-model", 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(raw), `"status":"ok"`) {
		t.Errorf("healthz = %d %q", resp.StatusCode, raw)
	}
}

func TestRequestErrorCounters(t *testing.T) {
	reg := observe.NewRegistry()
	srv := NewServer(&echoModel{}, "m", 0)
	srv.Instrument(reg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := ts.Client().Post(ts.URL+"/v1/completions", "application/json", strings.NewReader(`{`))
	resp.Body.Close()
	resp, _ = ts.Client().Post(ts.URL+"/v1/completions", "application/json", strings.NewReader(`{}`))
	resp.Body.Close()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, sb.String())
	if samples[`wisdom_request_errors_total{proto="http",reason="bad_json"}`] != 1 {
		t.Errorf("bad_json not counted:\n%s", sb.String())
	}
	if samples[`wisdom_request_errors_total{proto="http",reason="empty_prompt"}`] != 1 {
		t.Errorf("empty_prompt not counted:\n%s", sb.String())
	}
}

func TestRPCMetricsOp(t *testing.T) {
	srv := NewServer(&echoModel{}, "rpc-metrics", 8)
	srv.Instrument(observe.NewRegistry())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.ServeRPC(ln) }()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Predict(Request{Prompt: "install redis"}); err != nil {
		t.Fatal(err)
	}
	health, err := c.Health()
	if err != nil || health.Status != "ok" || health.Model != "rpc-metrics" {
		t.Errorf("health = %+v, err %v", health, err)
	}
	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, text)
	if samples[`wisdom_requests_total{proto="rpc"}`] != 1 {
		t.Errorf("rpc requests = %v\n%s", samples[`wisdom_requests_total{proto="rpc"}`], text)
	}
}

func TestRPCMetricsOpDisabled(t *testing.T) {
	srv := NewServer(&echoModel{}, "m", 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.ServeRPC(ln) }()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Metrics(); err == nil {
		t.Error("metrics op on uninstrumented server did not error")
	}
}

func TestCacheEvictionCounter(t *testing.T) {
	c := NewCache(2)
	c.Put("a", "1")
	c.Put("b", "2")
	c.Put("c", "3") // evicts a
	c.Put("d", "4") // evicts b
	c.Put("d", "4") // update, no eviction
	hits, misses, evictions := c.Stats()
	if evictions != 2 {
		t.Errorf("evictions = %d, want 2", evictions)
	}
	if hits != 0 || misses != 0 {
		t.Errorf("hits/misses = %d/%d, want 0/0", hits, misses)
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing")
	}
	if _, ok := c.Get("a"); ok {
		t.Error("a should be evicted")
	}
	if _, _, e := c.Stats(); e != 2 {
		t.Errorf("Get changed evictions to %d", e)
	}
}

func TestCacheStatsConcurrent(t *testing.T) {
	c := NewCache(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := strconv.Itoa((w + i) % 10)
				c.Get(key)
				c.Put(key, "v")
			}
		}(w)
	}
	wg.Wait()
	hits, misses, _ := c.Stats()
	if hits+misses != 1600 {
		t.Errorf("lookups = %d, want 1600", hits+misses)
	}
}

func TestShutdownDrainsInflightRPC(t *testing.T) {
	model := &slowModel{started: make(chan struct{}, 1), release: make(chan struct{})}
	srv := NewServer(model, "m", 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.ServeRPC(ln) }()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type result struct {
		resp Response
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := c.Predict(Request{Prompt: "slow"})
		got <- result{resp, err}
	}()
	<-model.started // the request is now in flight

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	// Shutdown must wait for the in-flight request, not kill it.
	time.Sleep(50 * time.Millisecond)
	close(model.release)

	res := <-got
	if res.err != nil {
		t.Errorf("in-flight request failed during drain: %v", res.err)
	}
	if !strings.Contains(res.resp.Suggestion, "slow") {
		t.Errorf("suggestion = %q", res.resp.Suggestion)
	}
	if err := <-shutdownErr; err != nil {
		t.Errorf("shutdown = %v", err)
	}

	// New connections must be refused after shutdown.
	if conn, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		conn.Close()
		t.Error("listener still accepting after shutdown")
	}
}

func TestShutdownDeadline(t *testing.T) {
	model := &slowModel{started: make(chan struct{}, 1), release: make(chan struct{})}
	srv := NewServer(model, "m", 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.ServeRPC(ln) }()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go func() { _, _ = c.Predict(Request{Prompt: "stuck"}) }()
	<-model.started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Errorf("shutdown err = %v, want DeadlineExceeded", err)
	}
	close(model.release) // unblock the worker goroutine
}

func TestShutdownIdle(t *testing.T) {
	srv := NewServer(&echoModel{}, "m", 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.ServeRPC(ln) }()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("idle shutdown = %v", err)
	}
}
