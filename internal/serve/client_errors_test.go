package serve

import (
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"
)

// misbehavingServer accepts one connection, reads the client's request
// frame, then answers with whatever bytes the case script says before
// closing the connection.
func misbehavingServer(t *testing.T, respond func(conn net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Consume the request frame so the client's write completes.
		var req Request
		if err := readFrame(conn, &req); err != nil {
			return
		}
		respond(conn)
	}()
	return ln.Addr().String()
}

// frameHeader returns a length prefix declaring n payload bytes.
func frameHeader(n uint32) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], n)
	return hdr[:]
}

// TestClientErrorPaths pins the fail-fast contract: any mid-exchange
// transport failure yields an error on the call that hit it, marks the
// client broken, and every later call fails with ErrClientBroken without
// touching the network.
func TestClientErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		respond func(conn net.Conn)
	}{
		{
			// The server dies before writing anything: the client's read
			// sees EOF mid-exchange.
			name:    "conn closed before response",
			respond: func(conn net.Conn) {},
		},
		{
			// Half a length prefix, then close: short read inside the
			// header.
			name: "short header read",
			respond: func(conn net.Conn) {
				conn.Write(frameHeader(64)[:2])
			},
		},
		{
			// A complete header promising 64 bytes, then close: short read
			// inside the payload.
			name: "truncated frame payload",
			respond: func(conn net.Conn) {
				conn.Write(frameHeader(64))
				conn.Write([]byte(`{"suggestion":`))
			},
		},
		{
			// Connection dropped halfway through an otherwise valid
			// response body.
			name: "drop mid-response",
			respond: func(conn net.Conn) {
				payload := []byte(`{"suggestion":"- name: x","model":"m"}`)
				conn.Write(frameHeader(uint32(len(payload))))
				conn.Write(payload[:10])
			},
		},
		{
			// A length prefix past the frame limit: rejected before any
			// allocation.
			name: "oversized response header",
			respond: func(conn net.Conn) {
				conn.Write(frameHeader(maxFrame + 1))
			},
		},
		{
			// Well-framed garbage: the JSON decode fails after a complete
			// read, which still leaves the exchange unusable.
			name: "malformed json payload",
			respond: func(conn net.Conn) {
				payload := []byte(`not json at all`)
				conn.Write(frameHeader(uint32(len(payload))))
				conn.Write(payload)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := misbehavingServer(t, tc.respond)
			c, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			c.SetTimeout(2 * time.Second)

			if _, err := c.Predict(Request{Prompt: "p"}); err == nil {
				t.Fatal("predict over a failing transport reported success")
			} else if errors.Is(err, ErrClientBroken) {
				t.Fatalf("first failure returned ErrClientBroken (%v); that sentinel is reserved for reuse", err)
			}
			if !c.Broken() {
				t.Fatal("client not marked broken after mid-exchange failure")
			}
			// Reuse fails fast with the sentinel — no network I/O, so this
			// holds even though the server side is gone.
			for i := 0; i < 2; i++ {
				if _, err := c.Predict(Request{Prompt: "again"}); !errors.Is(err, ErrClientBroken) {
					t.Fatalf("reuse %d: err = %v, want ErrClientBroken", i, err)
				}
			}
			if _, err := c.Health(); !errors.Is(err, ErrClientBroken) {
				t.Fatalf("health on broken client: err = %v, want ErrClientBroken", err)
			}
		})
	}
}

// TestClientTimeoutBreaks: a server that answers too slowly trips the
// per-round-trip deadline, and the deadline failure condemns the
// connection like any other mid-exchange error.
func TestClientTimeoutBreaks(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	addr := misbehavingServer(t, func(conn net.Conn) {
		<-release // hold the response past the client's deadline
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(50 * time.Millisecond)

	start := time.Now()
	_, err = c.Predict(Request{Prompt: "slow"})
	if err == nil {
		t.Fatal("hung server reported success")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want a timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	if !c.Broken() {
		t.Fatal("timeout did not break the client")
	}
	if _, err := c.Predict(Request{Prompt: "x"}); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("reuse after timeout: err = %v, want ErrClientBroken", err)
	}
}
