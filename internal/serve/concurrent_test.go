package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wisdom/internal/observe"
)

// gateModel blocks every Predict until release is closed, and counts calls
// per prompt.
type gateModel struct {
	mu      sync.Mutex
	calls   map[string]int
	started chan string
	release chan struct{}
}

func newGateModel(buf int) *gateModel {
	return &gateModel{
		calls:   make(map[string]int),
		started: make(chan string, buf),
		release: make(chan struct{}),
	}
}

func (m *gateModel) Predict(_, prompt string) string {
	m.mu.Lock()
	m.calls[prompt]++
	m.mu.Unlock()
	m.started <- prompt
	<-m.release
	return "- name: " + prompt + "\n  ansible.builtin.debug:\n    msg: ok\n"
}

func (m *gateModel) callsFor(prompt string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.calls[prompt]
}

// trackModel sleeps per call and records per-key call counts plus the peak
// number of concurrent Predict invocations.
type trackModel struct {
	delay     time.Duration
	mu        sync.Mutex
	calls     map[string]int
	cur, peak int
}

func newTrackModel(delay time.Duration) *trackModel {
	return &trackModel{delay: delay, calls: make(map[string]int)}
}

func (m *trackModel) Predict(_, prompt string) string {
	m.mu.Lock()
	m.cur++
	if m.cur > m.peak {
		m.peak = m.cur
	}
	m.calls[prompt]++
	m.mu.Unlock()
	time.Sleep(m.delay)
	m.mu.Lock()
	m.cur--
	m.mu.Unlock()
	return "- name: " + prompt + "\n  ansible.builtin.debug:\n    msg: ok\n"
}

func postRaw(t *testing.T, ts *httptest.Server, req Request) (int, Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := ts.Client().Post(ts.URL+"/v1/completions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out Response
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

// TestCoalescing64 is the acceptance scenario: 64 concurrent identical
// requests produce exactly one Predict invocation, one leader response and
// 63 coalesced responses, proven by the coalesced counter.
func TestCoalescing64(t *testing.T) {
	model := newGateModel(1)
	srv := NewServerWithOptions(model, "m", Options{
		CacheSize: 16, Workers: 2, QueueDepth: 16, QueueTimeout: -1,
	})
	srv.Instrument(observe.NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 64
	prompt := "install nginx"
	key := "\x00" + prompt // empty context + separator + prompt

	results := make(chan Response, n)
	for i := 0; i < n; i++ {
		go func() {
			_, out := postRaw(t, ts, Request{Prompt: prompt})
			results <- out
		}()
	}

	// The leader is inside the model now; wait for the other 63 to join
	// its flight so none of them can race ahead to a cache hit.
	<-model.started
	deadline := time.Now().Add(10 * time.Second)
	for srv.flight.Pending(key) != n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters joined the flight", srv.flight.Pending(key), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(model.release)

	var leaders, coalesced, cached int
	for i := 0; i < n; i++ {
		out := <-results
		switch {
		case out.Cached:
			cached++
		case out.Coalesced:
			coalesced++
		default:
			leaders++
		}
	}
	if model.callsFor(prompt) != 1 {
		t.Errorf("model calls = %d, want 1", model.callsFor(prompt))
	}
	if leaders != 1 || coalesced != n-1 || cached != 0 {
		t.Errorf("leaders/coalesced/cached = %d/%d/%d, want 1/%d/0", leaders, coalesced, cached, n-1)
	}
	samples := scrapeMetrics(t, ts)
	if got := samples["wisdom_coalesced_requests_total"]; got != n-1 {
		t.Errorf("wisdom_coalesced_requests_total = %v, want %d", got, n-1)
	}
	if got := samples[`wisdom_requests_total{proto="http"}`]; got != n {
		t.Errorf("wisdom_requests_total = %v, want %d", got, n)
	}
}

func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parsePromText(t, string(text))
}

// TestOverloadSheds fills the one-worker pool with queueing disabled and
// checks that excess HTTP requests get 503 + Retry-After, excess RPC
// requests get an error response, and the server recovers afterwards.
func TestOverloadSheds(t *testing.T) {
	model := newGateModel(4)
	srv := NewServerWithOptions(model, "m", Options{
		Workers: 1, QueueDepth: -1, QueueTimeout: -1,
	})
	srv.Instrument(observe.NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.ServeRPC(ln) }()

	// Occupy the only worker.
	occupied := make(chan struct{})
	go func() {
		status, _ := postRaw(t, ts, Request{Prompt: "hold"})
		if status != http.StatusOK {
			t.Errorf("holder status = %d", status)
		}
		close(occupied)
	}()
	<-model.started

	// Distinct key: coalescing cannot save it, the pool must shed it.
	status, out := postRaw(t, ts, Request{Prompt: "shed me"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", status)
	}
	if !strings.Contains(out.Error, "overloaded") {
		t.Errorf("error = %q", out.Error)
	}

	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Predict(Request{Prompt: "shed me too"}); err == nil ||
		!strings.Contains(err.Error(), "overloaded") {
		t.Errorf("rpc shed error = %v", err)
	}

	close(model.release)
	<-occupied
	// Recovered: the same client connection still works.
	if _, err := client.Predict(Request{Prompt: "after recovery"}); err != nil {
		t.Errorf("post-recovery predict: %v", err)
	}
	samples := scrapeMetrics(t, ts)
	if got := samples[`wisdom_shed_requests_total{proto="http"}`]; got != 1 {
		t.Errorf(`shed{http} = %v, want 1`, got)
	}
	if got := samples[`wisdom_shed_requests_total{proto="rpc"}`]; got != 1 {
		t.Errorf(`shed{rpc} = %v, want 1`, got)
	}
	if st := srv.Stats(); st.ShedRequests != 2 || st.PoolWorkers != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestQueueTimeout parks a request behind a busy worker long enough to hit
// the admission deadline.
func TestQueueTimeout(t *testing.T) {
	model := newGateModel(4)
	srv := NewServerWithOptions(model, "m", Options{
		Workers: 1, QueueDepth: 8, QueueTimeout: 50 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		postRaw(t, ts, Request{Prompt: "hold"})
		close(done)
	}()
	<-model.started

	start := time.Now()
	status, out := postRaw(t, ts, Request{Prompt: "queued"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", status)
	}
	if !strings.Contains(out.Error, "deadline") && !strings.Contains(out.Error, "overloaded") {
		t.Errorf("error = %q", out.Error)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("shed took %v, deadline not enforced", waited)
	}
	close(model.release)
	<-done
}

// TestConcurrentStress hammers one server over HTTP and RPC simultaneously
// with duplicate-heavy keys. Under -race it proves the serving path and the
// predictor contract: exactly one model call per unique key (cache +
// singleflight), pool occupancy never above the worker bound, and a
// consistent Requests() count.
func TestConcurrentStress(t *testing.T) {
	const (
		workers    = 4
		uniqueKeys = 8
		clients    = 8
		perClient  = 24
	)
	model := newTrackModel(200 * time.Microsecond)
	srv := NewServerWithOptions(model, "m", Options{
		CacheSize: 64, Workers: workers, QueueDepth: 1024, QueueTimeout: -1,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.ServeRPC(ln) }()

	var wg sync.WaitGroup
	errs := make(chan error, 2*clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) { // HTTP client
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				req := Request{Prompt: fmt.Sprintf("task %d", (c+i)%uniqueKeys)}
				status, out := postRaw(t, ts, req)
				if status != http.StatusOK {
					errs <- fmt.Errorf("http status %d: %s", status, out.Error)
					return
				}
				if !strings.Contains(out.Suggestion, req.Prompt) {
					errs <- fmt.Errorf("cross-talk: %q for %q", out.Suggestion, req.Prompt)
					return
				}
			}
		}(c)
		wg.Add(1)
		go func(c int) { // RPC client
			defer wg.Done()
			cl, err := Dial(ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < perClient; i++ {
				prompt := fmt.Sprintf("task %d", (c*3+i)%uniqueKeys)
				out, err := cl.Predict(Request{Prompt: prompt})
				if err != nil {
					errs <- err
					return
				}
				if !strings.Contains(out.Suggestion, prompt) {
					errs <- fmt.Errorf("cross-talk: %q for %q", out.Suggestion, prompt)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	model.mu.Lock()
	peak := model.peak
	for key, n := range model.calls {
		if n != 1 {
			t.Errorf("model called %d times for %q, want 1", n, key)
		}
	}
	model.mu.Unlock()
	if peak > workers {
		t.Errorf("peak model concurrency = %d, want <= %d", peak, workers)
	}
	if got, want := srv.Requests(), 2*clients*perClient; got != want {
		t.Errorf("Requests() = %d, want %d", got, want)
	}
}

// TestShutdownMidBurst drains the RPC side while a duplicate-heavy burst is
// in flight: Shutdown must return cleanly within its deadline and every
// client must see either a valid response or a closed connection — never a
// hang or a desynced frame.
func TestShutdownMidBurst(t *testing.T) {
	model := newTrackModel(500 * time.Microsecond)
	srv := NewServerWithOptions(model, "m", Options{
		CacheSize: 8, Workers: 2, QueueDepth: 64, QueueTimeout: time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.ServeRPC(ln) }()

	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(ln.Addr().String())
			if err != nil {
				return // listener already closed
			}
			defer cl.Close()
			for i := 0; i < 50; i++ {
				if _, err := cl.Predict(Request{Prompt: fmt.Sprintf("burst %d", i%4)}); err != nil {
					return // connection drained away mid-burst: expected
				}
			}
		}(c)
	}

	time.Sleep(5 * time.Millisecond) // let the burst get going
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("clients still hanging after shutdown")
	}
}

// TestClientBrokenAfterIOError verifies the fail-fast client: after a
// failed exchange the connection's framing state is undefined, so every
// later call must return ErrClientBroken instead of desyncing.
func TestClientBrokenAfterIOError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Read the request frame, answer with a partial header, vanish.
		hdr := make([]byte, 4)
		if _, err := readFull(conn, hdr); err == nil {
			n := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
			_, _ = readFull(conn, make([]byte, n))
		}
		_, _ = conn.Write([]byte{0x00, 0x00}) // half a length prefix
		conn.Close()
	}()

	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Predict(Request{Prompt: "x"}); err == nil {
		t.Fatal("predict on a dying connection succeeded")
	}
	if _, err := client.Predict(Request{Prompt: "y"}); err != ErrClientBroken {
		t.Errorf("second call error = %v, want ErrClientBroken", err)
	}
	if _, err := client.Health(); err != ErrClientBroken {
		t.Errorf("health on broken client = %v, want ErrClientBroken", err)
	}
}

// TestMaxBodyRejected checks the request-size cap on the HTTP handler.
func TestMaxBodyRejected(t *testing.T) {
	srv := NewServerWithOptions(newTrackModel(0), "m", Options{MaxBodyBytes: 256})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big, _ := json.Marshal(Request{Prompt: "x", Context: strings.Repeat("a", 4096)})
	resp, err := ts.Client().Post(ts.URL+"/v1/completions", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
	// A small request still works.
	status, out := postRaw(t, ts, Request{Prompt: "small"})
	if status != http.StatusOK || !strings.Contains(out.Suggestion, "small") {
		t.Errorf("small request: status %d, %+v", status, out)
	}
}

// TestCoalescingReducesModelWork compares the seed serving path (no
// singleflight) with the coalesced path under identical duplicate-heavy
// concurrent load: the coalesced server must invoke the model strictly
// fewer times for the same number of answered requests.
func TestCoalescingReducesModelWork(t *testing.T) {
	run := func(coalesce bool) (calls int) {
		model := newTrackModel(time.Millisecond)
		srv := NewServerWithOptions(model, "m", Options{
			Workers: 4, QueueDepth: 4096, QueueTimeout: -1, // no cache: every request is a miss
		})
		if !coalesce {
			srv.flight = nil // the seed path: miss -> straight to the model
		}
		const n, keys = 96, 3
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				req := Request{Prompt: fmt.Sprintf("dup %d", i%keys)}
				if _, err := srv.predict(context.Background(), req, "http"); err != nil {
					t.Error(err)
				}
			}(i)
		}
		wg.Wait()
		model.mu.Lock()
		defer model.mu.Unlock()
		for _, c := range model.calls {
			calls += c
		}
		return calls
	}
	direct := run(false)
	coalesced := run(true)
	if coalesced >= direct {
		t.Errorf("coalesced path ran %d model calls, direct ran %d — expected strictly fewer", coalesced, direct)
	}
}

// ---- pool and singleflight unit tests ----

func TestPoolBounds(t *testing.T) {
	p := NewPool(2, 1, 50*time.Millisecond)
	ctx := context.Background()
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if p.Active() != 2 || p.Workers() != 2 {
		t.Errorf("active/workers = %d/%d", p.Active(), p.Workers())
	}

	// One waiter fits the queue and times out; a second is shed instantly.
	errc := make(chan error, 2)
	go func() { errc <- p.Acquire(ctx) }()
	for p.Queued() != 1 {
		time.Sleep(time.Millisecond)
	}
	if err := p.Acquire(ctx); err != ErrOverloaded {
		t.Errorf("queue overflow error = %v, want ErrOverloaded", err)
	}
	if err := <-errc; err != ErrQueueTimeout {
		t.Errorf("queued waiter error = %v, want ErrQueueTimeout", err)
	}
	if p.Shed() != 2 {
		t.Errorf("shed = %d, want 2", p.Shed())
	}

	// Releasing lets a fresh waiter in.
	p.Release()
	if err := p.Acquire(ctx); err != nil {
		t.Errorf("acquire after release: %v", err)
	}
}

func TestPoolContextCancel(t *testing.T) {
	p := NewPool(1, 4, 0) // no deadline: only ctx can end the wait
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- p.Acquire(ctx) }()
	for p.Queued() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestFlightGroupSequentialCallsDoNotCoalesce(t *testing.T) {
	g := NewFlight()
	calls := 0
	for i := 0; i < 3; i++ {
		v, coalesced, err := g.Do(context.Background(), "k", func() (string, error) {
			calls++
			return "v", nil
		})
		if v != "v" || coalesced || err != nil {
			t.Errorf("call %d: %q/%v/%v", i, v, coalesced, err)
		}
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3 (sequential calls each run fn)", calls)
	}
}

func TestFlightGroupErrorFansOut(t *testing.T) {
	g := NewFlight()
	started := make(chan struct{})
	release := make(chan struct{})
	leaderErr := fmt.Errorf("boom")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, coalesced, err := g.Do(context.Background(), "k", func() (string, error) {
			close(started)
			<-release
			return "", leaderErr
		})
		if coalesced || err != leaderErr {
			t.Errorf("leader: coalesced=%v err=%v", coalesced, err)
		}
	}()
	<-started
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, coalesced, err := g.Do(context.Background(), "k", func() (string, error) {
			t.Error("waiter ran fn")
			return "", nil
		})
		if !coalesced || err != leaderErr {
			t.Errorf("waiter: coalesced=%v err=%v", coalesced, err)
		}
	}()
	for g.Pending("k") != 1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
}

func TestFlightGroupWaiterContext(t *testing.T) {
	g := NewFlight()
	started := make(chan struct{})
	release := make(chan struct{})
	go g.Do(context.Background(), "k", func() (string, error) {
		close(started)
		<-release
		return "v", nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// An expired waiter leaves without the shared answer: it is abandoned,
	// not coalesced (see TestFlightAbandonedWaiterNotCoalesced).
	_, coalesced, err := g.Do(ctx, "k", func() (string, error) { return "", nil })
	if coalesced || err != context.Canceled {
		t.Errorf("coalesced=%v err=%v, want false/context.Canceled", coalesced, err)
	}
	close(release)
}

// BenchmarkDuplicateHeavyLoad measures throughput of duplicate-heavy
// concurrent load with and without request coalescing (the seed path). The
// model simulates a 1ms generation; caching is off so every request is a
// miss, which is the worst case the singleflight layer exists for.
func BenchmarkDuplicateHeavyLoad(b *testing.B) {
	for _, mode := range []string{"direct", "coalesced"} {
		b.Run(mode, func(b *testing.B) {
			model := newTrackModel(time.Millisecond)
			srv := NewServerWithOptions(model, "m", Options{
				Workers: 4, QueueDepth: 1 << 20, QueueTimeout: -1,
			})
			if mode == "direct" {
				srv.flight = nil
			}
			var n atomic.Int64
			// GOMAXPROCS goroutines would serialise on one core; the load
			// this layer exists for is many in-flight duplicates, so force a
			// wide client fan-in regardless of core count.
			b.SetParallelism(32)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(n.Add(1))
					req := Request{Prompt: fmt.Sprintf("dup %d", i%4)}
					if _, err := srv.predict(context.Background(), req, "http"); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
