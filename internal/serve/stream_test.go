package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// streamStub is a StreamingPredictor with scriptable behaviour: it emits
// lines as separate deltas, optionally parks mid-stream until its context
// is cancelled (prompt "hang"), and optionally returns a final answer that
// differs from the emitted deltas (prompt "rewrite").
type streamStub struct {
	mu      sync.Mutex
	calls   int
	started chan struct{} // closed when the first delta of a "hang" call is out
}

func (s *streamStub) finalFor(prompt string) string {
	return "- name: " + prompt + "\n  ansible.builtin.debug:\n    msg: ok\n"
}

func (s *streamStub) Predict(c, prompt string) string { return s.finalFor(prompt) }

func (s *streamStub) PredictStream(ctx context.Context, c, prompt string, emit func(string)) string {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	final := s.finalFor(prompt)
	if prompt == "rewrite" {
		emit("- name: rewrite\n")
		return final // emitted text is not a prefix of the final answer
	}
	lines := strings.SplitAfter(final, "\n")
	for i, l := range lines {
		if l == "" {
			continue
		}
		if ctx.Err() != nil {
			return final
		}
		emit(l)
		if i == 0 && prompt == "hang" {
			if s.started != nil {
				close(s.started)
			}
			<-ctx.Done() // park until the client goes away
			return final
		}
	}
	return final
}

// sseEvent is one parsed SSE event.
type sseEvent struct {
	event string
	data  string
}

// readSSE parses every event from an SSE body.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var evs []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" {
				evs = append(evs, cur)
				cur = sseEvent{}
			}
		}
	}
	return evs
}

func postStream(t *testing.T, ts *httptest.Server, req Request) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := ts.Client().Post(ts.URL+"/v1/completions/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestStreamSSEEquivalence: the concatenated delta events are byte-identical
// to the unary endpoint's suggestion, and the done event carries the full
// response metadata.
func TestStreamSSEEquivalence(t *testing.T) {
	stub := &streamStub{}
	srv := NewServer(stub, "stream-model", 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	unary := stub.Predict("", "install nginx")

	resp := postStream(t, ts, Request{Prompt: "install nginx"})
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	evs := readSSE(t, resp.Body)
	if len(evs) < 2 {
		t.Fatalf("got %d events, want deltas plus done", len(evs))
	}
	var sb strings.Builder
	for _, ev := range evs[:len(evs)-1] {
		if ev.event != StreamDelta {
			t.Fatalf("unexpected event %q before terminal", ev.event)
		}
		var d sseDelta
		if err := json.Unmarshal([]byte(ev.data), &d); err != nil {
			t.Fatal(err)
		}
		sb.WriteString(d.Text)
	}
	last := evs[len(evs)-1]
	if last.event != StreamDone {
		t.Fatalf("terminal event = %q, want done", last.event)
	}
	var final Response
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatal(err)
	}
	if sb.String() != unary {
		t.Errorf("concatenated deltas = %q, want unary answer %q", sb.String(), unary)
	}
	if final.Suggestion != unary || final.Replaced || final.Model != "stream-model" {
		t.Errorf("done response = %+v", final)
	}
	if len(evs) < 3 {
		t.Errorf("multi-line answer arrived in %d deltas; want per-line streaming", len(evs)-1)
	}
}

// TestStreamRPCEquivalence: the same invariant over the framed protocol.
func TestStreamRPCEquivalence(t *testing.T) {
	stub := &streamStub{}
	srv := NewServer(stub, "m", 0)
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	go srv.ServeRPC(ln)

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	unary := stub.Predict("", "start redis")
	var sb strings.Builder
	deltas := 0
	final, err := c.PredictStream(Request{Prompt: "start redis"}, func(d string) {
		deltas++
		sb.WriteString(d)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != unary || final.Suggestion != unary {
		t.Errorf("deltas %q / final %q, want %q", sb.String(), final.Suggestion, unary)
	}
	if deltas < 2 {
		t.Errorf("got %d delta frames, want per-line streaming", deltas)
	}
	if final.Replaced {
		t.Error("equivalent stream flagged replaced")
	}
	// The connection stays healthy for further calls, unary included.
	if _, err := c.Predict(Request{Prompt: "again"}); err != nil {
		t.Errorf("unary call after stream failed: %v", err)
	}
}

// TestStreamReplacedFlag: when the final answer rewrites streamed text, the
// terminal response is flagged so clients re-render from Suggestion.
func TestStreamReplacedFlag(t *testing.T) {
	stub := &streamStub{}
	srv := NewServer(stub, "m", 0)
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	go srv.ServeRPC(ln)
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	final, err := c.PredictStream(Request{Prompt: "rewrite"}, func(string) {})
	if err != nil {
		t.Fatal(err)
	}
	if !final.Replaced {
		t.Error("rewritten stream not flagged replaced")
	}
	if final.Suggestion != stub.finalFor("rewrite") {
		t.Errorf("final suggestion = %q", final.Suggestion)
	}
}

// TestStreamCacheHit: a cached answer streams as one delta flagged cached.
func TestStreamCacheHit(t *testing.T) {
	stub := &streamStub{}
	srv := NewServer(stub, "m", 16)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := postStream(t, ts, Request{Prompt: "install nginx"})
	io.Copy(io.Discard, first.Body)
	first.Body.Close()

	resp := postStream(t, ts, Request{Prompt: "install nginx"})
	defer resp.Body.Close()
	evs := readSSE(t, resp.Body)
	if len(evs) != 2 {
		t.Fatalf("cache hit produced %d events, want one delta plus done", len(evs))
	}
	var final Response
	if err := json.Unmarshal([]byte(evs[1].data), &final); err != nil {
		t.Fatal(err)
	}
	if !final.Cached {
		t.Error("second identical stream not served from cache")
	}
	if stub.calls != 1 {
		t.Errorf("model called %d times, want 1", stub.calls)
	}
}

// TestStreamShedBeforeFirstByte: a stream shed under overload is a plain
// HTTP 503 with Retry-After — SSE headers are never written, so there is no
// torn stream to mislead a client-side SSE parser.
func TestStreamShedBeforeFirstByte(t *testing.T) {
	stub := &streamStub{started: make(chan struct{})}
	srv := NewServerWithOptions(stub, "m", Options{
		Workers: 1, QueueDepth: -1, QueueTimeout: 50 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the only worker slot with a parked stream.
	hangCtx, cancelHang := context.WithCancel(context.Background())
	defer cancelHang()
	body, _ := json.Marshal(Request{Prompt: "hang"})
	hangReq, _ := http.NewRequestWithContext(hangCtx, http.MethodPost,
		ts.URL+"/v1/completions/stream", bytes.NewReader(body))
	hangResp, err := ts.Client().Do(hangReq)
	if err != nil {
		t.Fatal(err)
	}
	defer hangResp.Body.Close()
	<-stub.started // the slot is now held

	resp := postStream(t, ts, Request{Prompt: "shed me"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed stream missing Retry-After")
	}
	if ct := resp.Header.Get("Content-Type"); strings.Contains(ct, "event-stream") {
		t.Errorf("shed stream advertised SSE Content-Type %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(raw), "event:") {
		t.Errorf("shed response contains SSE bytes: %q", raw)
	}
}

// TestStreamDisconnectFreesPoolSlot: a client that drops mid-stream cancels
// the generation, frees its worker slot, and is counted cancelled.
func TestStreamDisconnectFreesPoolSlot(t *testing.T) {
	stub := &streamStub{started: make(chan struct{})}
	srv := NewServerWithOptions(stub, "m", Options{Workers: 1, QueueDepth: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(Request{Prompt: "hang"})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/completions/stream", bytes.NewReader(body))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	<-stub.started
	if got := srv.Pool().Active(); got != 1 {
		t.Fatalf("active workers = %d while streaming, want 1", got)
	}
	if got := srv.ActiveStreams(); got != 1 {
		t.Fatalf("active streams = %d, want 1", got)
	}

	cancel() // the editor closes the connection mid-stream
	resp.Body.Close()

	deadline := time.After(2 * time.Second)
	for srv.Pool().Active() != 0 || srv.ActiveStreams() != 0 {
		select {
		case <-deadline:
			t.Fatalf("slot not freed after disconnect: active=%d streams=%d",
				srv.Pool().Active(), srv.ActiveStreams())
		case <-time.After(5 * time.Millisecond):
		}
	}
	if got := srv.CancelledStreams(); got != 1 {
		t.Errorf("cancelled streams = %d, want 1", got)
	}
}

// TestStreamRPCDisconnectFreesPoolSlot: the same invariant over RPC — a
// dropped connection fails the next frame write, which cancels the decode.
func TestStreamRPCDisconnectFreesPoolSlot(t *testing.T) {
	stub := &streamStub{started: make(chan struct{})}
	srv := NewServerWithOptions(stub, "m", Options{Workers: 1, QueueDepth: -1})
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	go srv.ServeRPC(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, Request{Prompt: "hang", Op: OpStream}); err != nil {
		t.Fatal(err)
	}
	var fr StreamFrame
	if err := readFrame(conn, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Type != StreamDelta {
		t.Fatalf("first frame = %+v, want delta", fr)
	}
	<-stub.started
	conn.Close() // client vanishes mid-stream

	// The stub is parked between deltas, so no write will fail on its own:
	// only the server's stream watchdog (which sees the closed connection
	// on its read) can cancel the generation and free the slot.
	deadline := time.After(5 * time.Second)
	for srv.Pool().Active() != 0 {
		select {
		case <-deadline:
			t.Fatalf("slot not freed after RPC disconnect: active=%d", srv.Pool().Active())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestStreamRPCShedErrorFrame: overload over RPC is one well-formed error
// frame on a connection that stays framed and reusable.
func TestStreamRPCShedErrorFrame(t *testing.T) {
	stub := &streamStub{started: make(chan struct{})}
	srv := NewServerWithOptions(stub, "m", Options{
		Workers: 1, QueueDepth: -1, QueueTimeout: 50 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	go srv.ServeRPC(ln)

	// Park a stream over HTTP to hold the only slot.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body, _ := json.Marshal(Request{Prompt: "hang"})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/completions/stream", bytes.NewReader(body))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	<-stub.started

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.PredictStream(Request{Prompt: "shed me"}, func(d string) {
		t.Errorf("shed stream delivered delta %q", d)
	})
	if err == nil || !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("err = %v, want overload shed", err)
	}
	if c.Broken() {
		t.Error("clean shed broke the client connection")
	}
	// Free the slot; the same connection must serve the next stream.
	cancel()
	resp.Body.Close()
	deadline := time.After(2 * time.Second)
	for srv.Pool().Active() != 0 {
		select {
		case <-deadline:
			t.Fatal("slot never freed")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if _, err := c.PredictStream(Request{Prompt: "retry"}, func(string) {}); err != nil {
		t.Errorf("stream after shed failed: %v", err)
	}
}

// TestStreamUnaryFallbackPredictor: a predictor without a streaming path
// still serves the stream endpoints — one delta through the full unary
// pipeline.
func TestStreamUnaryFallbackPredictor(t *testing.T) {
	model := &echoModel{}
	srv := NewServer(model, "m", 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postStream(t, ts, Request{Prompt: "install nginx"})
	defer resp.Body.Close()
	evs := readSSE(t, resp.Body)
	if len(evs) != 2 || evs[0].event != StreamDelta || evs[1].event != StreamDone {
		t.Fatalf("events = %+v, want one delta plus done", evs)
	}
	var d sseDelta
	if err := json.Unmarshal([]byte(evs[0].data), &d); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(d.Text, "- name: install nginx") {
		t.Errorf("delta = %q", d.Text)
	}
}

// TestRetryClientStreamRetriesShed: a shed arrives before any delta, so the
// retrying client replays it like a unary shed and succeeds once capacity
// returns.
func TestRetryClientStreamRetriesShed(t *testing.T) {
	stub := &streamStub{started: make(chan struct{})}
	srv := NewServerWithOptions(stub, "m", Options{
		Workers: 1, QueueDepth: -1, QueueTimeout: 20 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	go srv.ServeRPC(ln)

	// Hold the slot, then release it when the first attempt has been shed.
	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(Request{Prompt: "hang"})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/completions/stream", bytes.NewReader(body))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	<-stub.started

	rc := NewRetryClient(ln.Addr().String(), RetryOptions{
		Retries: 4, Backoff: 30 * time.Millisecond, Seed: 1,
	})
	defer rc.Close()
	go func() {
		time.Sleep(60 * time.Millisecond)
		cancel()
		resp.Body.Close()
	}()
	var sb strings.Builder
	final, err := rc.PredictStream(Request{Prompt: "eventually"}, func(d string) {
		sb.WriteString(d)
	})
	if err != nil {
		t.Fatalf("retried stream failed: %v (retries=%d)", err, rc.Retries())
	}
	if rc.Retries() == 0 {
		t.Error("stream succeeded without retrying through the shed")
	}
	if sb.String() != final.Suggestion {
		t.Errorf("deltas %q != final %q", sb.String(), final.Suggestion)
	}
}

// TestStreamInterruptedNotRetryable: the classifier refuses to replay a
// stream that already delivered output.
func TestStreamInterruptedNotRetryable(t *testing.T) {
	err := &transportError{io.ErrUnexpectedEOF}
	if !retryablePredictError(err) {
		t.Fatal("transport error should be retryable")
	}
	wrapped := interruptedStreamError(err)
	if retryablePredictError(wrapped) {
		t.Error("mid-stream failure must not be retryable")
	}
}
