package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Pool admission errors. Both map to HTTP 503 / an RPC error response: the
// caller should back off and retry, the server is intact.
var (
	// ErrOverloaded means the worker pool and its wait queue are both
	// full; the request was shed immediately.
	ErrOverloaded = errors.New("serve: overloaded: worker pool and queue full")
	// ErrQueueTimeout means the request waited in the admission queue for
	// the full per-request deadline without a worker freeing up.
	ErrQueueTimeout = errors.New("serve: overloaded: queue wait deadline exceeded")
)

// Pool is the bounded admission controller in front of the model: at most
// Workers() Predict calls run at once, at most queueCap further requests
// wait for a slot, and everything beyond that is shed with ErrOverloaded
// instead of piling up goroutines. A waiter that outlives the configured
// deadline (or its own context) is shed too, so latency under overload is
// bounded rather than unbounded queueing delay.
type Pool struct {
	sem      chan struct{} // one token per running worker
	queueCap int
	timeout  time.Duration // max queue wait; <= 0 means wait on ctx alone
	queued   atomic.Int64
	shed     atomic.Uint64
}

// NewPool builds a pool of the given size. workers < 1 is clamped to 1.
// queueCap < 0 disables queueing (busy pool sheds immediately); timeout <= 0
// disables the queue-wait deadline.
func NewPool(workers, queueCap int, timeout time.Duration) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 0 {
		queueCap = 0
	}
	return &Pool{
		sem:      make(chan struct{}, workers),
		queueCap: queueCap,
		timeout:  timeout,
	}
}

// Acquire claims a worker slot, waiting in the bounded queue if the pool is
// busy. It returns ErrOverloaded when the queue is full, ErrQueueTimeout
// when the wait deadline expires first, or ctx.Err() when the caller's
// context ends first. Every nil return must be paired with one Release.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		return nil
	default:
	}
	// Busy: join the queue unless it is already at capacity. Add-then-check
	// keeps the bound exact under concurrent arrivals.
	if p.queued.Add(1) > int64(p.queueCap) {
		p.queued.Add(-1)
		p.shed.Add(1)
		return ErrOverloaded
	}
	defer p.queued.Add(-1)

	var deadline <-chan time.Time
	if p.timeout > 0 {
		t := time.NewTimer(p.timeout)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-deadline:
		p.shed.Add(1)
		return ErrQueueTimeout
	case <-ctx.Done():
		p.shed.Add(1)
		return ctx.Err()
	}
}

// Release returns a slot claimed by a successful Acquire.
func (p *Pool) Release() { <-p.sem }

// Workers returns the pool size.
func (p *Pool) Workers() int { return cap(p.sem) }

// QueueCap returns the admission-queue capacity.
func (p *Pool) QueueCap() int { return p.queueCap }

// Active returns the number of slots currently claimed.
func (p *Pool) Active() int { return len(p.sem) }

// Queued returns the number of requests currently waiting for a slot.
func (p *Pool) Queued() int { return int(p.queued.Load()) }

// Shed returns the total number of requests rejected by this pool.
func (p *Pool) Shed() uint64 { return p.shed.Load() }
