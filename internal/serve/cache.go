package serve

import (
	"container/list"
	"sync"
)

// Cache is a thread-safe LRU response cache, the latency optimisation the
// paper's Demo/Plugin section names for future implementations ("improving
// latency by using techniques like caching").
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[string]*list.Element

	hits, misses, evictions int
}

type cacheEntry struct {
	key   string
	value string
}

// NewCache creates an LRU cache holding up to capacity entries.
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return "", false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).value, true
}

// Put stores a value, evicting the least recently used entry when full.
func (c *Cache) Put(key, value string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).value = value
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, value: value})
	c.items[key] = el
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Len returns the current number of entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the hit, miss and eviction counters.
func (c *Cache) Stats() (hits, misses, evictions int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
