package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wisdom/internal/observe"
)

// degradingModel is a test DegradingPredictor whose health is a switch:
// healthy answers come from the "primary", degraded ones from the
// "fallback", mirroring a wisdom.Chain without the timeout machinery.
type degradingModel struct {
	degraded atomic.Bool
	calls    atomic.Int64
	gate     chan struct{} // when gateOn, PredictDegraded blocks on it
	gateOn   atomic.Bool
}

func newDegradingModel() *degradingModel {
	return &degradingModel{gate: make(chan struct{})}
}

func (m *degradingModel) Predict(context, prompt string) string {
	out, _ := m.PredictDegraded(context, prompt)
	return out
}

func (m *degradingModel) PredictDegraded(context, prompt string) (string, bool) {
	m.calls.Add(1)
	if m.gateOn.Load() {
		<-m.gate
	}
	if m.degraded.Load() {
		return "fallback: " + prompt, true
	}
	return "primary: " + prompt, false
}

// TestServerDegradedFlagAndCacheBypass: a degraded answer is tagged in the
// response, counted on wisdom_degraded_responses_total, and kept out of the
// cache — so the primary's recovery is visible on the very next request.
func TestServerDegradedFlagAndCacheBypass(t *testing.T) {
	model := newDegradingModel()
	srv := NewServerWithOptions(model, "m", Options{CacheSize: 16})
	reg := observe.NewRegistry()
	srv.Instrument(reg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Degraded phase: flag set, nothing cached, model called every time.
	model.degraded.Store(true)
	first := postCompletion(t, ts, "install nginx")
	if !first.Degraded || first.Suggestion != "fallback: install nginx" {
		t.Fatalf("degraded response = %+v", first)
	}
	second := postCompletion(t, ts, "install nginx")
	if second.Cached {
		t.Fatal("degraded answer was served from cache")
	}
	if model.calls.Load() != 2 {
		t.Fatalf("model calls = %d, want 2 (no caching while degraded)", model.calls.Load())
	}

	// Recovery: the next request reaches the healthy primary (no stale
	// degraded cache entry in the way) and its answer does get cached.
	model.degraded.Store(false)
	third := postCompletion(t, ts, "install nginx")
	if third.Degraded || third.Suggestion != "primary: install nginx" {
		t.Fatalf("post-recovery response = %+v", third)
	}
	fourth := postCompletion(t, ts, "install nginx")
	if !fourth.Cached || fourth.Degraded {
		t.Fatalf("post-recovery cached response = %+v", fourth)
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wisdom_degraded_responses_total 2") {
		t.Errorf("metrics missing degraded count:\n%s", buf.String())
	}
}

// TestServerDegradedFlagFansOutToCoalesced: when concurrent identical
// requests coalesce onto one degraded model call, every waiter sees
// "degraded":true, not just the leader.
func TestServerDegradedFlagFansOutToCoalesced(t *testing.T) {
	model := newDegradingModel()
	model.degraded.Store(true)
	model.gateOn.Store(true)
	srv := NewServerWithOptions(model, "m", Options{CacheSize: 16})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 6
	var wg sync.WaitGroup
	results := make([]Response, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = postCompletion(t, ts, "shared")
		}(i)
	}

	// Release the leader once the stragglers have had time to coalesce.
	key := "\x00" + "shared"
	deadline := time.Now().Add(2 * time.Second)
	for srv.flight.Pending(key) < n-1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	model.gateOn.Store(false)
	close(model.gate)
	wg.Wait()

	var coalesced int
	for i := 0; i < n; i++ {
		if !results[i].Degraded {
			t.Errorf("request %d lost the degraded flag (coalesced=%v)", i, results[i].Coalesced)
		}
		if results[i].Coalesced {
			coalesced++
		}
	}
	if coalesced == 0 {
		t.Error("no request coalesced; fan-out untested")
	}
	if model.calls.Load() != 1 {
		t.Errorf("model calls = %d, want 1", model.calls.Load())
	}
}

// TestRetryAfterScalesWithQueue: the Retry-After guidance grows from ~1s on
// an idle queue to the admission deadline on a saturated one, instead of
// the old hardcoded "1".
func TestRetryAfterScalesWithQueue(t *testing.T) {
	model := newDegradingModel()
	srv := NewServerWithOptions(model, "m", Options{
		Workers:      1,
		QueueDepth:   4,
		QueueTimeout: 9 * time.Second,
	})
	if got := srv.retryAfter(); got != "1" {
		t.Errorf("idle retryAfter = %q, want 1", got)
	}

	// Saturate: one request holds the worker, four more fill the queue.
	// Distinct contexts keep the requests from coalescing.
	model.gateOn.Store(true)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(Request{Prompt: "p", Context: string(rune('a' + i))})
			resp, err := ts.Client().Post(ts.URL+"/v1/completions", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.pool.Queued() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if q := srv.pool.Queued(); q != 4 {
		t.Fatalf("queued = %d, want 4", q)
	}
	// frac=1, deadline=9s: 1 + 1*(9-1) = 9.
	if got := srv.retryAfter(); got != "9" {
		t.Errorf("saturated retryAfter = %q, want 9", got)
	}
	model.gateOn.Store(false)
	close(model.gate)
	wg.Wait()

	// No queue at all: advise the admission deadline — the bound on how
	// long the running work can take.
	srv2 := NewServerWithOptions(newDegradingModel(), "m", Options{
		Workers:      1,
		QueueDepth:   -1,
		QueueTimeout: 5 * time.Second,
	})
	if got := srv2.retryAfter(); got != "5" {
		t.Errorf("queueless retryAfter = %q, want 5", got)
	}
}
