package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBatcherShortResultFansOutError pins the flush fan-out fix: a batch
// predictor that returns fewer results than requests with a nil error must
// produce a clear error on every waiter. Before the length check, flush
// indexed vals[i] past the short slice and panicked on the caller's
// goroutine, stranding every other waiter in the batch.
func TestBatcherShortResultFansOutError(t *testing.T) {
	b := newBatcher(time.Hour, 2, func(reqs []Request) ([]string, error) {
		return make([]string, len(reqs)-1), nil // one row short, no error
	})

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct prompts, so the size trigger flushes at maxBatch=2.
			_, errs[i] = b.do(context.Background(), Request{Prompt: string(rune('a' + i))})
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err == nil {
			t.Fatalf("waiter %d: got nil error for short batch result", i)
		}
		if !strings.Contains(err.Error(), "1 results for 2 requests") {
			t.Errorf("waiter %d: err = %v, want short-result message", i, err)
		}
	}
}

// TestBatcherLongResultFansOutError covers the other side of the length
// validation: extra rows are just as much a contract violation as missing
// ones, even though they never panicked.
func TestBatcherLongResultFansOutError(t *testing.T) {
	b := newBatcher(time.Millisecond, 8, func(reqs []Request) ([]string, error) {
		return make([]string, len(reqs)+3), nil
	})
	if _, err := b.do(context.Background(), Request{Prompt: "p"}); err == nil {
		t.Fatal("got nil error for oversized batch result")
	}
}

// TestFlightAbandonedWaiterNotCoalesced pins the singleflight accounting fix:
// a waiter whose ctx expires before the leader finishes must report
// coalesced=false — it never received a shared answer — and must increment
// the Abandoned counter instead of the coalesced-success metric.
func TestFlightAbandonedWaiterNotCoalesced(t *testing.T) {
	g := NewFlight()
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := g.Do(context.Background(), "k", func() (string, error) {
			close(leaderIn)
			<-release
			return "v", nil
		})
		if err != nil {
			t.Errorf("leader err = %v", err)
		}
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the waiter's ctx is already dead when it joins the flight
	val, coalesced, err := g.Do(ctx, "k", func() (string, error) {
		t.Error("abandoned waiter ran fn")
		return "", nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if coalesced {
		t.Error("abandoned waiter reported coalesced=true")
	}
	if val != "" {
		t.Errorf("abandoned waiter got val %q", val)
	}
	if got := g.Abandoned(); got != 1 {
		t.Errorf("Abandoned() = %d, want 1", got)
	}

	close(release)
	wg.Wait()

	// A waiter that does receive the shared answer stays a plain coalesced
	// success and leaves the abandoned count alone.
	if got := g.Abandoned(); got != 1 {
		t.Errorf("Abandoned() after leader done = %d, want 1", got)
	}
}
