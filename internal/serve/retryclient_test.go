package serve

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wisdom/internal/observe"
	"wisdom/internal/resilience"
)

// startRPCServer spins an RPC server on a loopback port and returns its
// address. The listener and server are torn down with the test.
func startRPCServer(t *testing.T, srv *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() { _ = srv.ServeRPC(ln) }()
	return ln.Addr().String()
}

// noSleep collapses backoff waits so retry tests run at full speed.
func noSleep(context.Context, time.Duration) {}

// TestRetryClientTransientErrorRecovers is the acceptance scenario: the
// first connection carries an injected transport error, the retry redials a
// clean connection, and the request succeeds — with the retry counted.
func TestRetryClientTransientErrorRecovers(t *testing.T) {
	srv := NewServer(&echoModel{}, "m", 0)
	addr := startRPCServer(t, srv)

	// The first dialed connection fails its first exchange; every later
	// connection is clean.
	inj := resilience.NewScript(resilience.FaultError)
	var dials int
	var mu sync.Mutex
	rc := NewRetryClient(addr, RetryOptions{
		Retries: 2,
		Seed:    1,
		Sleep:   noSleep,
		Wrap: func(c net.Conn) net.Conn {
			mu.Lock()
			dials++
			mu.Unlock()
			return inj.WrapConn(c)
		},
	})
	defer rc.Close()
	reg := observe.NewRegistry()
	rc.Instrument(reg)

	resp, err := rc.Predict(Request{Prompt: "install nginx"})
	if err != nil {
		t.Fatalf("Predict through transient fault: %v", err)
	}
	if !strings.Contains(resp.Suggestion, "install nginx") {
		t.Errorf("suggestion = %q", resp.Suggestion)
	}
	if rc.Retries() != 1 {
		t.Errorf("retries = %d, want 1", rc.Retries())
	}
	mu.Lock()
	if dials != 2 {
		t.Errorf("dials = %d, want 2 (broken connection replaced)", dials)
	}
	mu.Unlock()
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wisdom_retries_total 1") {
		t.Errorf("metrics missing retry count:\n%s", buf.String())
	}
}

// TestRetryClientCorruptFrameRecovers: a corrupted response frame breaks
// the connection mid-exchange; the retry must treat it as transport-level
// (not a server rejection) and succeed on a fresh connection.
func TestRetryClientCorruptFrameRecovers(t *testing.T) {
	srv := NewServer(&echoModel{}, "m", 0)
	addr := startRPCServer(t, srv)

	inj := resilience.NewScript(resilience.FaultCorrupt)
	first := true
	rc := NewRetryClient(addr, RetryOptions{
		Retries:        2,
		Seed:           1,
		Sleep:          noSleep,
		AttemptTimeout: 2 * time.Second,
		Wrap: func(c net.Conn) net.Conn {
			if first {
				first = false
				return inj.WrapConn(c)
			}
			return c
		},
	})
	defer rc.Close()

	resp, err := rc.Predict(Request{Prompt: "restart sshd"})
	if err != nil {
		t.Fatalf("Predict through corrupt frame: %v", err)
	}
	if !strings.Contains(resp.Suggestion, "restart sshd") {
		t.Errorf("suggestion = %q", resp.Suggestion)
	}
	if rc.Retries() == 0 {
		t.Error("corrupt frame did not register a retry")
	}
}

// TestRetryClientExhaustsAttempts: a backend that fails every exchange
// exhausts the attempt budget and surfaces the last transport error.
func TestRetryClientExhaustsAttempts(t *testing.T) {
	srv := NewServer(&echoModel{}, "m", 0)
	addr := startRPCServer(t, srv)

	inj := resilience.NewScript(
		resilience.FaultError, resilience.FaultError, resilience.FaultError)
	rc := NewRetryClient(addr, RetryOptions{
		Retries: 2,
		Seed:    1,
		Sleep:   noSleep,
		Wrap:    inj.WrapConn,
	})
	defer rc.Close()

	_, err := rc.Predict(Request{Prompt: "x"})
	if err == nil {
		t.Fatal("three faulted attempts reported success")
	}
	if !errors.Is(err, resilience.ErrInjected) {
		t.Errorf("err = %v, want wrapped ErrInjected", err)
	}
	if rc.Retries() != 2 {
		t.Errorf("retries = %d, want 2", rc.Retries())
	}
}

// TestRetryClientTerminalErrorNotRetried: a server-delivered rejection over
// a healthy connection (an unknown op) must not burn retry attempts.
func TestRetryClientTerminalErrorNotRetried(t *testing.T) {
	srv := NewServer(&echoModel{}, "m", 0)
	addr := startRPCServer(t, srv)

	rc := NewRetryClient(addr, RetryOptions{Retries: 3, Seed: 1, Sleep: noSleep})
	defer rc.Close()

	_, err := rc.Predict(Request{Op: "bogus"})
	if err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("err = %v, want server's unknown-op rejection", err)
	}
	if rc.Retries() != 0 {
		t.Errorf("terminal error retried %d times", rc.Retries())
	}
	// The connection stayed healthy, so a good request reuses it.
	if _, err := rc.Predict(Request{Prompt: "ok now"}); err != nil {
		t.Fatalf("client unusable after terminal error: %v", err)
	}
}

// TestRetryClientBreakerOpensOnDeadBackend: repeated dial failures trip the
// per-backend breaker; once open, calls fail fast with ErrBreakerOpen
// before any dial is attempted.
func TestRetryClientBreakerOpensOnDeadBackend(t *testing.T) {
	// A listener that is immediately closed: dials fail fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	b := resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         time.Hour, // no recovery during the test
	})
	var dials int
	var mu sync.Mutex
	rc := NewRetryClient(addr, RetryOptions{
		Retries: 2,
		Seed:    1,
		Sleep:   noSleep,
		Breaker: b,
		Dial: func() (*Client, error) {
			mu.Lock()
			dials++
			mu.Unlock()
			return DialWith(addr, nil)
		},
	})
	defer rc.Close()

	// One call = three attempts = three dial failures = breaker trips.
	if _, err := rc.Predict(Request{Prompt: "x"}); err == nil {
		t.Fatal("dead backend reported success")
	}
	if b.State() != resilience.Open {
		t.Fatalf("breaker = %v after repeated dial failures, want open", b.State())
	}
	mu.Lock()
	before := dials
	mu.Unlock()

	_, err = rc.Predict(Request{Prompt: "y"})
	if !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	mu.Lock()
	if dials != before {
		t.Errorf("open breaker still dialed (%d -> %d)", before, dials)
	}
	mu.Unlock()
}

// TestRetryClientConcurrent hammers one RetryClient from many goroutines
// through an intermittently faulty transport under -race.
func TestRetryClientConcurrent(t *testing.T) {
	srv := NewServer(&echoModel{}, "m", 64)
	addr := startRPCServer(t, srv)

	inj := resilience.NewRandom(7, resilience.FaultConfig{PError: 0.2})
	rc := NewRetryClient(addr, RetryOptions{
		Retries:        4,
		Seed:           7,
		Sleep:          noSleep,
		AttemptTimeout: 2 * time.Second,
		Wrap:           inj.WrapConn,
	})
	defer rc.Close()

	var wg sync.WaitGroup
	var ok atomic.Int64
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := rc.Predict(Request{Prompt: "shared prompt"}); err != nil {
					errs <- err
				} else {
					ok.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	// A call sharing a connection that a concurrent call just broke can
	// legitimately exhaust its budget, so errors are tolerated — but every
	// one must be transport-level (never a server rejection or a silent
	// misclassification), and most calls must get through.
	for err := range errs {
		var te *transportError
		if !errors.As(err, &te) {
			t.Errorf("non-transport error under contention: %v", err)
		}
	}
	if ok.Load() < 32 {
		t.Errorf("only %d/64 calls succeeded through p=0.2 faults with 4 retries", ok.Load())
	}
}

// TestRetryClientContextCancel: a cancelled context stops the attempt loop
// promptly instead of burning the full budget.
func TestRetryClientContextCancel(t *testing.T) {
	// Dead backend: every attempt fails.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rc := NewRetryClient(addr, RetryOptions{Retries: 5, Seed: 1, Sleep: noSleep})
	defer rc.Close()
	_, err = rc.PredictContext(ctx, Request{Prompt: "x"})
	if err == nil {
		t.Fatal("cancelled context reported success")
	}
	if rc.Retries() > 1 {
		t.Errorf("cancelled context still retried %d times", rc.Retries())
	}
}
