// Admin surface tests: request validation, the fail-closed auth order, the
// HTTP status-code taxonomy, and the RPC admin op — plus FuzzAdminRequest,
// which holds the decoder to its validation rules against arbitrary bytes.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
	"unicode/utf8"
)

// adminModel is a predictor with a scriptable AdminHandler: it records what
// the serve layer hands it and answers with a canned response.
type adminModel struct {
	echoModel
	last   AdminRequest
	called int
	refuse bool // answer status=error (handler-level refusal)
}

func (m *adminModel) HandleAdmin(_ context.Context, req AdminRequest) AdminResponse {
	m.called++
	m.last = req
	resp := AdminResponse{
		Status: "ok",
		Epoch:  7,
		Members: []AdminMember{
			{Addr: "127.0.0.1:9001", State: "active", Alive: true, RingShare: 0.5},
			{Addr: "127.0.0.1:9002", State: "draining", Alive: true, RingShare: 0},
		},
	}
	if m.refuse {
		resp.Status = "error"
		resp.Error = "router: unknown backend"
	}
	return resp
}

// TestNormalizeAdminRequest pins the validation rules both surfaces share:
// case/space normalisation, status as the default action, and the backend
// address constraints on mutating actions.
func TestNormalizeAdminRequest(t *testing.T) {
	long := strings.Repeat("a", maxAdminBackend+1)
	cases := []struct {
		name    string
		in      AdminRequest
		want    AdminRequest
		wantErr bool
	}{
		{name: "empty means status", in: AdminRequest{}, want: AdminRequest{Action: AdminStatus}},
		{name: "status passes backend through untouched",
			in:   AdminRequest{Action: "status", Backend: ""},
			want: AdminRequest{Action: AdminStatus}},
		{name: "action case and space normalised",
			in:   AdminRequest{Action: "  JOIN ", Backend: "127.0.0.1:9001"},
			want: AdminRequest{Action: AdminJoin, Backend: "127.0.0.1:9001"}},
		{name: "backend trimmed",
			in:   AdminRequest{Action: "drain", Backend: " 127.0.0.1:9001 "},
			want: AdminRequest{Action: AdminDrain, Backend: "127.0.0.1:9001"}},
		{name: "unknown action rejected", in: AdminRequest{Action: "explode"}, wantErr: true},
		{name: "join requires a backend", in: AdminRequest{Action: "join"}, wantErr: true},
		{name: "drain requires a backend", in: AdminRequest{Action: "drain"}, wantErr: true},
		{name: "remove requires a backend", in: AdminRequest{Action: "remove"}, wantErr: true},
		{name: "oversized backend rejected", in: AdminRequest{Action: "join", Backend: long}, wantErr: true},
		{name: "backend with inner whitespace rejected",
			in: AdminRequest{Action: "join", Backend: "127.0.0.1 :9001"}, wantErr: true},
		{name: "backend with control bytes rejected",
			in: AdminRequest{Action: "join", Backend: "127.0.0.1:\x009001"}, wantErr: true},
		{name: "token preserved",
			in:   AdminRequest{Action: "remove", Backend: "b:1", Token: "s3cret"},
			want: AdminRequest{Action: AdminRemove, Backend: "b:1", Token: "s3cret"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := NormalizeAdminRequest(tc.in)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("NormalizeAdminRequest(%+v) accepted, want error", tc.in)
				}
				return
			}
			if err != nil {
				t.Fatalf("NormalizeAdminRequest(%+v): %v", tc.in, err)
			}
			if got != tc.want {
				t.Fatalf("NormalizeAdminRequest(%+v) = %+v, want %+v", tc.in, got, tc.want)
			}
		})
	}
}

// adminPost sends one POST to /admin/backends with the given body and
// headers, returning the status code and decoded body.
func adminPost(t *testing.T, ts *httptest.Server, body string, hdr map[string]string) (int, AdminResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/admin/backends", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var ar AdminResponse
	_ = json.Unmarshal(raw, &ar)
	return resp.StatusCode, ar
}

// TestAdminHTTPStatusTaxonomy drives /admin/backends through every rejection
// class and checks the documented status codes (docs/PROTOCOL.md §7).
func TestAdminHTTPStatusTaxonomy(t *testing.T) {
	model := &adminModel{}
	srv := NewServerWithOptions(model, "m", Options{AdminToken: "s3cret", MaxBodyBytes: 1 << 10})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	auth := map[string]string{AdminTokenHeader: "s3cret"}

	// 401: no token at all, and a wrong token.
	if code, _ := adminPost(t, ts, `{"action":"status"}`, nil); code != http.StatusUnauthorized {
		t.Errorf("no token: status %d, want 401", code)
	}
	if code, _ := adminPost(t, ts, `{"action":"status"}`, map[string]string{AdminTokenHeader: "wrong"}); code != http.StatusUnauthorized {
		t.Errorf("wrong token: status %d, want 401", code)
	}
	if model.called != 0 {
		t.Fatalf("handler ran %d times for unauthenticated requests", model.called)
	}

	// 200: GET status with the token.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/admin/backends", nil)
	req.Header.Set(AdminTokenHeader, "s3cret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var got AdminResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || got.Status != "ok" || len(got.Members) != 2 || got.Epoch != 7 {
		t.Fatalf("GET status = %d %+v, want 200 with the membership table", resp.StatusCode, got)
	}
	if model.last.Action != AdminStatus {
		t.Errorf("GET dispatched action %q, want status", model.last.Action)
	}

	// 200: POST join; the handler sees a normalised request with no token.
	code, body := adminPost(t, ts, `{"action":" Join ","backend":" 127.0.0.1:9003 "}`, auth)
	if code != http.StatusOK || body.Status != "ok" {
		t.Fatalf("POST join = %d %+v, want 200 ok", code, body)
	}
	if model.last.Action != AdminJoin || model.last.Backend != "127.0.0.1:9003" {
		t.Errorf("handler saw %+v, want normalised join", model.last)
	}
	if model.last.Token != "" {
		t.Error("handler saw the credential; dispatch must clear it")
	}

	// The JSON token field wins over the header (the header is a fallback).
	if code, _ := adminPost(t, ts, `{"action":"status","token":"wrong"}`, auth); code != http.StatusUnauthorized {
		t.Errorf("JSON token should override the header: status %d, want 401", code)
	}

	// 400: malformed JSON and invalid actions.
	if code, _ := adminPost(t, ts, `{not json`, auth); code != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", code)
	}
	if code, _ := adminPost(t, ts, `{"action":"explode"}`, auth); code != http.StatusBadRequest {
		t.Errorf("unknown action: status %d, want 400", code)
	}
	if code, _ := adminPost(t, ts, `{"action":"join"}`, auth); code != http.StatusBadRequest {
		t.Errorf("join without backend: status %d, want 400", code)
	}

	// 405: only GET and POST exist.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/admin/backends", nil)
	req.Header.Set(AdminTokenHeader, "s3cret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: status %d, want 405", resp.StatusCode)
	}

	// 413: body beyond MaxBodyBytes.
	big := `{"action":"status","backend":"` + strings.Repeat("x", 2<<10) + `"}`
	if code, _ := adminPost(t, ts, big, auth); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", code)
	}

	// 409: an authenticated, valid action the membership layer refused.
	model.refuse = true
	code, body = adminPost(t, ts, `{"action":"drain","backend":"127.0.0.1:9009"}`, auth)
	if code != http.StatusConflict || body.Status != "error" || body.Error == "" {
		t.Errorf("refused action = %d %+v, want 409 with the handler's error", code, body)
	}
}

// TestAdminHTTPDisabledAndUnsupported covers the two dark-surface cases:
// a server with a handler but no token answers 401 (disabled, fail closed);
// a server whose model has no membership at all answers 404 — in both cases
// before any validation detail leaks.
func TestAdminHTTPDisabledAndUnsupported(t *testing.T) {
	// Handler present, no token configured: the whole surface is off.
	dark := NewServerWithOptions(&adminModel{}, "m", Options{})
	ts := httptest.NewServer(dark.Handler())
	defer ts.Close()
	if code, _ := adminPost(t, ts, `{"action":"status"}`, map[string]string{AdminTokenHeader: "anything"}); code != http.StatusUnauthorized {
		t.Errorf("disabled surface: status %d, want 401", code)
	}

	// Plain replica: no membership to administer.
	plain := NewServerWithOptions(&echoModel{}, "m", Options{AdminToken: "s3cret"})
	ts2 := httptest.NewServer(plain.Handler())
	defer ts2.Close()
	if code, _ := adminPost(t, ts2, `{"action":"status"}`, map[string]string{AdminTokenHeader: "s3cret"}); code != http.StatusNotFound {
		t.Errorf("unsupported surface: status %d, want 404", code)
	}
}

// TestAdminMuxServesOnlyAdmin checks the dedicated operator mux exposes
// /admin/backends and nothing else (no completions on the admin port).
func TestAdminMuxServesOnlyAdmin(t *testing.T) {
	srv := NewServerWithOptions(&adminModel{}, "m", Options{AdminToken: "s3cret"})
	ts := httptest.NewServer(srv.AdminMux())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/admin/backends", nil)
	req.Header.Set(AdminTokenHeader, "s3cret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("admin mux status read: %d, want 200", resp.StatusCode)
	}

	other, err := http.Post(ts.URL+"/v1/completions", "application/json", bytes.NewReader([]byte(`{"prompt":"x"}`)))
	if err != nil {
		t.Fatal(err)
	}
	other.Body.Close()
	if other.StatusCode != http.StatusNotFound {
		t.Errorf("admin mux served /v1/completions with %d, want 404", other.StatusCode)
	}
}

// TestAdminRPC exercises op:"admin" end to end over a real RPC connection:
// an authenticated exchange succeeds; a rejected one comes back as an
// in-band error with the connection still healthy.
func TestAdminRPC(t *testing.T) {
	model := &adminModel{}
	srv := NewServerWithOptions(model, "m", Options{AdminToken: "s3cret"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.ServeRPC(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Admin(AdminRequest{Action: AdminDrain, Backend: "127.0.0.1:9002", Token: "s3cret"})
	if err != nil {
		t.Fatalf("Admin: %v", err)
	}
	if resp.Status != "ok" || len(resp.Members) != 2 {
		t.Fatalf("Admin = %+v, want ok with the membership table", resp)
	}
	if model.last.Action != AdminDrain || model.last.Token != "" {
		t.Errorf("handler saw %+v, want drain with the token cleared", model.last)
	}

	// Bad token: an in-band rejection, not a transport failure …
	if _, err := c.Admin(AdminRequest{Action: AdminStatus, Token: "wrong"}); err == nil {
		t.Fatal("Admin with a bad token succeeded")
	}
	// … so the same connection still serves the next exchange.
	if resp, err = c.Admin(AdminRequest{Token: "s3cret"}); err != nil || resp.Status != "ok" {
		t.Fatalf("connection unhealthy after an in-band rejection: %+v, %v", resp, err)
	}

	// An op:"admin" frame with no admin payload is a plain (rejected)
	// status request — never a panic.
	var op OpResponse
	if err := c.roundTrip(Request{Op: OpAdmin}, &op); err != nil {
		t.Fatalf("bare admin frame: %v", err)
	}
	if op.Error == "" {
		t.Error("bare admin frame (no token) accepted, want an in-band error")
	}
}

// FuzzAdminRequest holds ParseAdminRequest to its contract on arbitrary
// bytes: it never panics; whatever it accepts is canonical (normalising
// again changes nothing) and satisfies the documented validation rules.
func FuzzAdminRequest(f *testing.F) {
	f.Add([]byte(`{"action":"status"}`))
	f.Add([]byte(`{"action":"join","backend":"127.0.0.1:9001"}`))
	f.Add([]byte(`{"action":"drain","backend":"127.0.0.1:9001","token":"s3cret"}`))
	f.Add([]byte(`{"action":"remove","backend":"b"}`))
	f.Add([]byte(`{"action":" JOIN ","backend":" b:1 "}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"unknown_field":true}`))
	f.Add([]byte(`{"action":"explode"}`))
	f.Add([]byte(`{"action":"join","backend":""}`))
	f.Add([]byte(`{"action":"join","backend":"` + strings.Repeat("a", 300) + `"}`))
	f.Add([]byte(`{"action":"join","backend":"with space:1"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("{\"action\":\"join\",\"backend\":\"\\u0000:1\"}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseAdminRequest(data)
		if err != nil {
			return
		}
		// Accepted requests are canonical: normalising again is a fixpoint.
		again, err := NormalizeAdminRequest(req)
		if err != nil {
			t.Fatalf("accepted request %+v fails re-normalisation: %v", req, err)
		}
		if again != req {
			t.Fatalf("normalisation is not a fixpoint: %+v -> %+v", req, again)
		}
		// The documented invariants of an accepted request.
		switch req.Action {
		case AdminStatus:
		case AdminJoin, AdminDrain, AdminRemove:
			if req.Backend == "" {
				t.Fatalf("accepted mutating request with empty backend: %+v", req)
			}
			if len(req.Backend) > maxAdminBackend {
				t.Fatalf("accepted oversized backend (%d bytes)", len(req.Backend))
			}
			for _, c := range req.Backend {
				if c <= ' ' || c == 0x7f {
					t.Fatalf("accepted backend with whitespace/control byte: %q", req.Backend)
				}
			}
		default:
			t.Fatalf("accepted unknown action %q", req.Action)
		}
		if req.Action != strings.ToLower(req.Action) {
			t.Fatalf("accepted non-canonical action %q", req.Action)
		}
		if !utf8.ValidString(req.Backend) {
			// json.Unmarshal replaces invalid sequences, so an accepted
			// backend is always valid UTF-8; anything else is a decoder bug.
			t.Fatalf("accepted backend with invalid UTF-8: %q", req.Backend)
		}
	})
}
